#!/usr/bin/env bash
# clang-format over every C++ source in the repo.
#   scripts/format.sh          rewrite files in place
#   scripts/format.sh --check  fail (exit 1) if any file needs reformatting
# Skips with a notice (exit 0) when no clang-format binary is available, so
# the hook is safe to wire into environments without LLVM installed.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
for arg in "$@"; do
  case "$arg" in
    --check) CHECK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if ! command -v clang-format > /dev/null 2>&1; then
  echo "format.sh: clang-format not found; skipping (install LLVM to enable)"
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.h')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "format.sh: no C++ sources found"
  exit 0
fi

if [[ "$CHECK" == 1 ]]; then
  clang-format --dry-run --Werror "${files[@]}"
  echo "format.sh: all ${#files[@]} files clean"
else
  clang-format -i "${files[@]}"
  echo "format.sh: formatted ${#files[@]} files"
fi
