#!/usr/bin/env bash
# Regenerates every table, figure and ablation of the paper reproduction.
# Outputs land in results/ (one .txt per harness) plus combined logs.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
RESULTS_DIR=${RESULTS_DIR:-results}

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure | tee test_output.txt

mkdir -p "$RESULTS_DIR"
echo "== benches =="
: > bench_output.txt
for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "--- $name ---"
  if [ "$name" = "micro_benchmarks" ]; then
    "$b" --benchmark_min_time=0.05 | tee "$RESULTS_DIR/$name.txt"
  else
    "$b" | tee "$RESULTS_DIR/$name.txt"
  fi
  cat "$RESULTS_DIR/$name.txt" >> bench_output.txt
done

echo "== examples =="
for e in quickstart shared_scan_wordcount tpch_selection cluster_simulation \
         aggregation_query generated_corpus_scan; do
  echo "--- $e ---"
  "$BUILD_DIR/examples/$e" | tee "$RESULTS_DIR/example_$e.txt"
done

echo "done; see $RESULTS_DIR/, test_output.txt, bench_output.txt"
