#!/usr/bin/env bash
# Full pre-merge check matrix.
#
#   scripts/check.sh                 tier-1 (warnings-as-errors build + ctest)
#                                    then Release build + bench smoke
#   scripts/check.sh --skip-release  tier-1 only
#   scripts/check.sh --asan          ASan build + ctest   (build-asan/)
#   scripts/check.sh --ubsan         UBSan build + ctest  (build-ubsan/)
#   scripts/check.sh --tsan          TSan build + ctest   (build-tsan/)
#   scripts/check.sh --tidy          clang-tidy over every TU (build-tidy/)
#   scripts/check.sh --lint          build + run s3lint over the whole tree
#   scripts/check.sh --lockcheck     build + run s3lockcheck (whole-project
#                                    lock-order, rank-order, and
#                                    blocking-under-lock analysis) over src/
#   scripts/check.sh --viewcheck     build + run s3viewcheck (whole-project
#                                    arena/view lifetime and escape
#                                    analysis: dangling views, append-after-
#                                    read, views escaping their arena,
#                                    cross-thread view capture) over src/
#   scripts/check.sh --trace         trace smoke: capture a Chrome trace from
#                                    the wordcount example, validate it with
#                                    s3trace, and fail if enabling the tracer
#                                    slows BM_MapRunnerEndToEnd by >5%
#   scripts/check.sh --chaos         failure-domain matrix: run the chaos
#                                    suite plain and under ASan, then the
#                                    chaos_recovery example over a fixed seed
#                                    matrix with s3trace --validate on each
#                                    captured trace
#   scripts/check.sh --bench-smoke   run the locality-engine micro-benchmarks
#                                    (pinned pool, tokenizer, threaded map
#                                    path) once each, fail on zero throughput
#                                    or a benchmark error, and re-check the
#                                    5% trace-overhead budget
#   scripts/check.sh --flight        flight-recorder smoke: crash the
#                                    s3crashtest fixture three ways (check
#                                    failure, lock-rank inversion, stale
#                                    view), require each dump to parse via
#                                    `s3trace postmortem` and to name the
#                                    in-flight batch, then fail if the
#                                    always-on recorder slows
#                                    BM_MapRunnerEndToEnd by >2%
#   scripts/check.sh --storm         admission-storm matrix: run the 24-seed
#                                    arrival-storm suite plain and under
#                                    TSan, then drive the s3d_service
#                                    example at 4x overload and leave its
#                                    admission-latency Prometheus snapshot
#                                    in build/storm-admission.prom (CI
#                                    uploads it as an artifact)
#   scripts/check.sh --all           tier-1 + lint + lockcheck
#                                    + viewcheck + asan
#                                    + ubsan + tsan
#                                    + tidy + format check + Release smoke
#                                    + trace smoke + bench smoke + flight
#                                    smoke + chaos matrix + storm matrix
#
# Sanitizer modes build tests only (benches/examples are covered by the
# default mode) so the instrumented builds stay fast. --tidy and the format
# check degrade to a notice when the LLVM binaries are not installed.
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_RELEASE=0
declare -a MODES=()
for arg in "$@"; do
  case "$arg" in
    --skip-release) SKIP_RELEASE=1 ;;
    --asan) MODES+=(asan) ;;
    --ubsan) MODES+=(ubsan) ;;
    --tsan) MODES+=(tsan) ;;
    --tidy) MODES+=(tidy) ;;
    --lint) MODES+=(lint) ;;
    --lockcheck) MODES+=(lockcheck) ;;
    --viewcheck) MODES+=(viewcheck) ;;
    --trace) MODES+=(trace) ;;
    --chaos) MODES+=(chaos) ;;
    --bench-smoke) MODES+=(bench-smoke) ;;
    --flight) MODES+=(flight) ;;
    --storm) MODES+=(storm) ;;
    --all) MODES+=(tier1 lint lockcheck viewcheck asan ubsan tsan tidy format release trace bench-smoke flight chaos storm) ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
# No explicit mode: the classic tier-1 (+ Release unless skipped) flow.
if [[ ${#MODES[@]} -eq 0 ]]; then
  MODES=(tier1)
  [[ "$SKIP_RELEASE" == 1 ]] || MODES+=(release)
fi

bench_median_ns() {  # <S3_TRACE value> -> median cpu time (ns) on stdout
  S3_TRACE="$1" ./build/bench/micro_benchmarks \
    --benchmark_filter='^BM_MapRunnerEndToEnd/4$' \
    --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
    --benchmark_format=csv 2> /dev/null \
    | awk -F, '/_median/ { print $4; exit }'
}

bench_median_flight_ns() {  # <S3_FLIGHT value> -> median cpu time (ns)
  # Release build: the 2% always-on budget is a claim about optimized
  # builds; debug timings include unoptimized atomics and would gate on
  # a cost no deployment pays.
  S3_FLIGHT="$1" S3_TRACE=0 ./build-release/bench/micro_benchmarks \
    --benchmark_filter='^BM_MapRunnerEndToEnd/4$' \
    --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
    --benchmark_format=csv 2> /dev/null \
    | awk -F, '/_median/ { print $4; exit }'
}

run_sanitized() {  # <name> <S3_SANITIZE value>
  local name="$1" value="$2"
  echo "=== ${name}: build + ctest (S3_SANITIZE=${value}) ==="
  cmake -B "build-${name}" -S . \
    -DS3_SANITIZE="${value}" \
    -DS3_WARNINGS_AS_ERRORS=ON \
    -DS3_BUILD_BENCHMARKS=OFF -DS3_BUILD_EXAMPLES=OFF
  cmake --build "build-${name}" -j
  (cd "build-${name}" && ctest --output-on-failure -j)
}

for mode in "${MODES[@]}"; do
  case "$mode" in
    tier1)
      echo "=== tier-1: configure + build (warnings as errors) + ctest ==="
      cmake -B build -S . -DS3_WARNINGS_AS_ERRORS=ON
      cmake --build build -j
      (cd build && ctest --output-on-failure -j)
      ;;
    asan) run_sanitized asan address ;;
    ubsan) run_sanitized ubsan undefined ;;
    tsan) run_sanitized tsan thread ;;
    tidy)
      echo "=== clang-tidy over all TUs ==="
      if ! command -v clang-tidy > /dev/null 2>&1; then
        echo "check.sh: clang-tidy not found; skipping (install LLVM)"
        continue
      fi
      cmake -B build-tidy -S . -DS3_ENABLE_CLANG_TIDY=ON \
        -DS3_WARNINGS_AS_ERRORS=ON
      cmake --build build-tidy -j
      echo "check.sh: clang-tidy reported zero errors"
      ;;
    lint)
      echo "=== s3lint: project-specific static analysis ==="
      cmake -B build -S . -DS3_WARNINGS_AS_ERRORS=ON
      cmake --build build -j --target s3lint
      ./build/tools/s3lint --root=.
      ;;
    lockcheck)
      echo "=== s3lockcheck: whole-project lock-order analysis ==="
      cmake -B build -S . -DS3_WARNINGS_AS_ERRORS=ON
      cmake --build build -j --target s3lockcheck
      ./build/tools/s3lockcheck --root=.
      ;;
    viewcheck)
      echo "=== s3viewcheck: whole-project arena/view lifetime analysis ==="
      cmake -B build -S . -DS3_WARNINGS_AS_ERRORS=ON
      cmake --build build -j --target s3viewcheck
      ./build/tools/s3viewcheck --root=.
      ;;
    format)
      scripts/format.sh --check
      ;;
    trace)
      echo "=== trace: capture + validate a Chrome trace from the example ==="
      cmake -B build -S . -DS3_WARNINGS_AS_ERRORS=ON
      cmake --build build -j \
        --target shared_scan_wordcount s3trace micro_benchmarks
      trace_out="build/trace-smoke.json"
      ./build/examples/shared_scan_wordcount --trace-out="${trace_out}"
      ./build/tools/s3trace --validate "${trace_out}"
      ./build/tools/s3trace "${trace_out}"
      echo "=== trace: BM_MapRunnerEndToEnd overhead, traced vs untraced ==="
      untraced="$(bench_median_ns 0)"
      traced="$(bench_median_ns 1)"
      awk -v off="$untraced" -v on="$traced" 'BEGIN {
        pct = (on - off) / off * 100.0
        printf "untraced median %.0f ns, traced median %.0f ns, ", off, on
        printf "overhead %+.2f%% (budget 5%%)\n", pct
        if (pct > 5.0) {
          print "check.sh: tracing overhead exceeds the 5% budget" \
            > "/dev/stderr"
          exit 1
        }
      }'
      ;;
    chaos)
      echo "=== chaos: failure-domain suite, plain + ASan ==="
      cmake -B build -S . -DS3_WARNINGS_AS_ERRORS=ON
      cmake --build build -j --target s3_chaos_tests chaos_recovery s3trace
      ./build/tests/s3_chaos_tests
      cmake -B build-asan -S . \
        -DS3_SANITIZE=address \
        -DS3_WARNINGS_AS_ERRORS=ON \
        -DS3_BUILD_BENCHMARKS=OFF -DS3_BUILD_EXAMPLES=OFF
      cmake --build build-asan -j --target s3_chaos_tests
      ./build-asan/tests/s3_chaos_tests
      echo "=== chaos: seeded recovery example + trace validation ==="
      for seed in 1 2 5 11 23; do
        trace_out="build/chaos-smoke-${seed}.json"
        # S3_CRASH_DIR: if a seeded run dies, its flight-recorder dump
        # lands in build/ where CI uploads it next to the traces.
        S3_CRASH_DIR=build ./build/examples/chaos_recovery \
          --seed="${seed}" --trace-out="${trace_out}"
        ./build/tools/s3trace --validate "${trace_out}"
      done
      ;;
    bench-smoke)
      echo "=== bench-smoke: locality-engine micro-benchmarks run once ==="
      cmake -B build -S . -DS3_WARNINGS_AS_ERRORS=ON
      cmake --build build -j --target micro_benchmarks
      # One pass over every new engine benchmark; CSV columns are
      # name,iterations,real_time,cpu_time,unit,bytes/s,items/s,label,err,...
      # Every row must report a positive throughput and no error.
      ./build/bench/micro_benchmarks \
        --benchmark_filter='BM_(PinnedPoolSubmit|Tokenize|MapRunnerEndToEndThreads|ShuffleSortAndGroup)' \
        --benchmark_min_time=0.01 --benchmark_format=csv 2> /dev/null \
        | awk -F, '
          /^"?BM_/ {
            rows++
            throughput = ($6 != "" ? $6 : $7) + 0
            if (throughput <= 0 || $9 != "") {
              printf "bench-smoke: %s reported no throughput\n", $1 \
                > "/dev/stderr"
              bad = 1
            }
          }
          END {
            if (rows == 0) {
              print "bench-smoke: benchmark filter matched nothing" \
                > "/dev/stderr"
              exit 1
            }
            printf "bench-smoke: %d benchmark rows, all positive\n", rows
            exit bad
          }'
      echo "=== bench-smoke: trace-overhead budget re-check ==="
      untraced="$(bench_median_ns 0)"
      traced="$(bench_median_ns 1)"
      awk -v off="$untraced" -v on="$traced" 'BEGIN {
        pct = (on - off) / off * 100.0
        printf "untraced median %.0f ns, traced median %.0f ns, ", off, on
        printf "overhead %+.2f%% (budget 5%%)\n", pct
        if (pct > 5.0) {
          print "check.sh: tracing overhead exceeds the 5% budget" \
            > "/dev/stderr"
          exit 1
        }
      }'
      ;;
    flight)
      echo "=== flight: induced crashes must produce parseable dumps ==="
      cmake -B build -S . -DS3_WARNINGS_AS_ERRORS=ON
      cmake --build build -j --target s3crashtest s3trace s3top
      cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
      cmake --build build-release -j --target micro_benchmarks
      rm -f build/s3-crash-*.txt
      for crash_mode in check lockrank view; do
        set +e
        S3_CRASH_DIR=build ./build/tools/s3crashtest "${crash_mode}" \
          2> /dev/null
        crash_status=$?
        set -e
        if [[ "${crash_status}" -eq 0 ]]; then
          echo "flight: ${crash_mode} skipped (validator compiled out)"
          continue
        fi
        dump="$(ls -t build/s3-crash-*.txt | head -1)"
        postmortem="build/postmortem-${crash_mode}.txt"
        ./build/tools/s3trace postmortem "${dump}" > "${postmortem}"
        # The witness: the dump must name the batch that was in flight.
        grep -q 'batch=42' "${postmortem}"
        echo "flight: ${crash_mode} crash -> ${dump} (parseable, batch=42)"
      done
      echo "=== flight: BM_MapRunnerEndToEnd overhead, recorder on vs off ==="
      # Interleaved min-of-medians: single medians swing +/-10% on noisy
      # hosts, which would make a 2% budget flaky. The min over alternating
      # runs estimates the quiet-machine cost of each configuration.
      flight_off=""
      flight_on=""
      for _ in 1 2 3; do
        off_run="$(bench_median_flight_ns 0)"
        on_run="$(bench_median_flight_ns 1)"
        flight_off="$(awk -v a="$flight_off" -v b="$off_run" \
          'BEGIN { print (a == "" || b + 0 < a + 0) ? b : a }')"
        flight_on="$(awk -v a="$flight_on" -v b="$on_run" \
          'BEGIN { print (a == "" || b + 0 < a + 0) ? b : a }')"
      done
      awk -v off="$flight_off" -v on="$flight_on" 'BEGIN {
        pct = (on - off) / off * 100.0
        printf "flight-off median %.0f ns, flight-on median %.0f ns, ", \
          off, on
        printf "overhead %+.2f%% (budget 2%%)\n", pct
        if (pct > 2.0) {
          print "check.sh: flight-recorder overhead exceeds the 2% budget" \
            > "/dev/stderr"
          exit 1
        }
      }'
      ;;
    storm)
      echo "=== storm: 24-seed arrival-storm matrix, plain ==="
      cmake -B build -S . -DS3_WARNINGS_AS_ERRORS=ON
      cmake --build build -j \
        --target s3_service_tests s3_storm_tests s3d_service s3top
      ./build/tests/s3_service_tests
      ./build/tests/s3_storm_tests
      echo "=== storm: s3d_service at 4x overload + admission snapshot ==="
      # The snapshot is the CI artifact: admission-latency quantiles plus
      # the per-tenant gauges, rendered by s3top for a human-readable log.
      ./build/examples/s3d_service --tenants=3 --arrival-rate=8 \
        --duration=6 --overload=4 \
        --snapshot-out=build/storm-admission.prom
      ./build/tools/s3top --once build/storm-admission.prom
      grep -q 's3_service_admission_latency_ns' build/storm-admission.prom
      echo "=== storm: service + storm suites under TSan ==="
      cmake -B build-tsan -S . \
        -DS3_SANITIZE=thread \
        -DS3_WARNINGS_AS_ERRORS=ON \
        -DS3_BUILD_BENCHMARKS=OFF -DS3_BUILD_EXAMPLES=OFF
      cmake --build build-tsan -j \
        --target s3_service_tests s3_storm_tests s3_tsan_stress_tests
      ./build-tsan/tests/s3_service_tests
      ./build-tsan/tests/s3_storm_tests
      ./build-tsan/tests/s3_tsan_stress_tests \
        --gtest_filter='TsanStressTest.Service*'
      ;;
    release)
      echo "=== Release build ==="
      cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
      cmake --build build-release -j
      echo "=== micro-benchmark smoke (hot-path benches must still run) ==="
      ./build-release/bench/micro_benchmarks \
        --benchmark_min_time=0.01 \
        --benchmark_filter='BM_(MapRunnerEndToEnd|HashCombine|SortedRunMerge|ShuffleSortAndGroup|SharedScanReader)'
      ;;
  esac
done

echo "=== check.sh: all green (${MODES[*]}) ==="
