#!/usr/bin/env bash
# Full pre-merge check: tier-1 verify (Debug-default build + ctest), then a
# Release build with a micro-benchmark smoke run so Release-only regressions
# and bench bit-rot are caught. Usage: scripts/check.sh [--skip-release]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_RELEASE=0
for arg in "$@"; do
  case "$arg" in
    --skip-release) SKIP_RELEASE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "$SKIP_RELEASE" == 1 ]]; then
  echo "=== skipping Release build + bench smoke (--skip-release) ==="
  exit 0
fi

echo "=== Release build ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j

echo "=== micro-benchmark smoke (hot-path benches must still run) ==="
./build-release/bench/micro_benchmarks \
  --benchmark_min_time=0.01 \
  --benchmark_filter='BM_(MapRunnerEndToEnd|HashCombine|SortedRunMerge|ShuffleSortAndGroup|SharedScanReader)'

echo "=== check.sh: all green ==="
