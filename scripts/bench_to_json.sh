#!/usr/bin/env bash
# Runs the engine micro-benchmarks and appends one structured entry to
# BENCH_engine.json, including a flight-recorder overhead A/B
# (S3_FLIGHT=0 vs S3_FLIGHT=1) on BM_MapRunnerEndToEnd/4 so the
# "always-on costs <=2%" claim has a recorded measurement per PR.
#
# Usage: scripts/bench_to_json.sh [--pr N] [--engine LABEL] [--note TEXT]
#                                 [--build DIR] [--reps N]
#
# The entry records items_per_second medians for the end-to-end map path
# and the shuffle path, plus the flight on/off cpu-time medians. Run it
# from a quiet machine: the JSON is history, not a one-shot gate (the
# gate lives in scripts/check.sh --flight).
set -euo pipefail
cd "$(dirname "$0")/.."

PR=9
ENGINE="flight (always-on flight recorder, correlation ids threaded through the engine)"
NOTE=""
BUILD=build-release
REPS=3
AB_REPS=5

while [[ $# -gt 0 ]]; do
  case "$1" in
    --pr) PR="$2"; shift 2 ;;
    --engine) ENGINE="$2"; shift 2 ;;
    --note) NOTE="$2"; shift 2 ;;
    --build) BUILD="$2"; shift 2 ;;
    --reps) REPS="$2"; shift 2 ;;
    *) echo "bench_to_json.sh: unknown argument $1" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" -j --target micro_benchmarks > /dev/null

BENCH="$BUILD/bench/micro_benchmarks"
MAIN_CSV="$(mktemp)"
OFF_CSV="$(mktemp)"
ON_CSV="$(mktemp)"
trap 'rm -f "$MAIN_CSV" "$OFF_CSV" "$ON_CSV"' EXIT

echo "bench_to_json: main sweep (${REPS} repetitions) ..." >&2
S3_TRACE=0 "$BENCH" \
  --benchmark_filter='^BM_MapRunnerEndToEnd/(1|4|10)$|^BM_ShuffleSortAndGroup/(4096|65536)$' \
  --benchmark_repetitions="$REPS" --benchmark_report_aggregates_only=true \
  --benchmark_format=csv 2> /dev/null > "$MAIN_CSV"

echo "bench_to_json: flight-recorder A/B (${AB_REPS} repetitions each) ..." >&2
S3_TRACE=0 S3_FLIGHT=0 "$BENCH" \
  --benchmark_filter='^BM_MapRunnerEndToEnd/4$' \
  --benchmark_repetitions="$AB_REPS" --benchmark_report_aggregates_only=true \
  --benchmark_format=csv 2> /dev/null > "$OFF_CSV"
S3_TRACE=0 S3_FLIGHT=1 "$BENCH" \
  --benchmark_filter='^BM_MapRunnerEndToEnd/4$' \
  --benchmark_repetitions="$AB_REPS" --benchmark_report_aggregates_only=true \
  --benchmark_format=csv 2> /dev/null > "$ON_CSV"

PR="$PR" ENGINE="$ENGINE" NOTE="$NOTE" \
MAIN_CSV="$MAIN_CSV" OFF_CSV="$OFF_CSV" ON_CSV="$ON_CSV" \
python3 - << 'PYEOF'
import csv, datetime, json, os

def rows(path):
    with open(path) as f:
        lines = [ln for ln in f if not ln.startswith("#")]
    # google-benchmark CSV: everything before the header line is preamble.
    start = next(i for i, ln in enumerate(lines) if ln.startswith("name,"))
    return list(csv.DictReader(lines[start:]))

def medians(path, column):
    out = {}
    for row in rows(path):
        name = row["name"]
        if name.endswith("_median") and row.get(column):
            out[name[: -len("_median")]] = float(row[column])
    return out

records = {k: round(v) for k, v in medians(os.environ["MAIN_CSV"],
                                           "items_per_second").items()}
off = medians(os.environ["OFF_CSV"], "cpu_time")["BM_MapRunnerEndToEnd/4"]
on = medians(os.environ["ON_CSV"], "cpu_time")["BM_MapRunnerEndToEnd/4"]

entry = {
    "pr": int(os.environ["PR"]),
    "date": datetime.date.today().isoformat(),
    "engine": os.environ["ENGINE"],
    "records_per_sec": records,
    "flight_overhead": {
        "benchmark": "BM_MapRunnerEndToEnd/4",
        "median_cpu_ns_flight_off": round(off),
        "median_cpu_ns_flight_on": round(on),
        "overhead_pct": round((on - off) / off * 100.0, 2),
        "budget_pct": 2.0,
    },
}
if os.environ["NOTE"]:
    entry["note"] = os.environ["NOTE"]

with open("BENCH_engine.json") as f:
    doc = json.load(f)
doc["history"].append(entry)
with open("BENCH_engine.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(json.dumps(entry, indent=2))
print("bench_to_json: appended entry to BENCH_engine.json")
PYEOF
