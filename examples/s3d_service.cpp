// s3d: the resident shared-scan service. Instead of replaying a pre-declared
// job list (shared_scan_wordcount.cpp), this example keeps a RealDriver
// resident behind a SubmissionService front door while submitter threads
// pour a seeded arrival storm at it: per-tenant token buckets throttle,
// lanes bound queueing, and under overload the deadline-aware shedder drops
// the newest lowest-priority work — every admitted job still completes with
// exactly the answer a solo run would produce.
//
// Knobs:
//   --tenants=N        tenants in the storm (default 3)
//   --arrival-rate=R   aggregate offered load, jobs per virtual second
//                      (default 6)
//   --duration=S       virtual arrival window in seconds (default 8)
//   --overload=F       offered load vs. token capacity; >1 forces
//                      retry/shed traffic (default 2)
//   --submitters=N     submitter threads (default 2)
//   --seed=S           storm seed (default 1)
//   --retries=N        modeled retry attempts per throttled submission,
//                      re-offered at arrival + backoff hint (default 2)
//
// Pass --snapshot-out=<path> and point `s3top <path>` at it to watch the
// service section (admission rates, per-tenant queue/inflight gauges,
// admission-latency quantiles) live; --trace-out=<path> captures the
// journal's service_admitted/service_rejected/service_shed events.
#include <cstdio>
#include <thread>
#include <vector>

#include "chaos/arrival_storm.h"
#include "core/s3.h"

namespace {

using namespace s3;

const char* kPrefixes = "abcdefghijklmnopqrstuvwxyz";

service::Submission make_submission(const chaos::StormArrival& arrival,
                                    FileId file) {
  service::Submission s;
  s.tenant = arrival.tenant;
  s.spec = workloads::make_wordcount_job(
      arrival.job, file,
      std::string(1, kPrefixes[arrival.job.value() % 26]),
      /*reduce_tasks=*/2);
  s.arrival = arrival.arrival;
  s.priority = arrival.priority;
  s.deadline = arrival.deadline;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  obs::TraceSession trace_session(flags);
  obs::SnapshotExporter snapshot_exporter(flags);
  obs::install_crash_handler();

  chaos::StormOptions sopts;
  sopts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  sopts.tenants = static_cast<std::size_t>(flags.get_int("tenants", 3));
  sopts.duration = flags.get_double("duration", 8.0);
  sopts.overload_factor = flags.get_double("overload", 2.0);
  const double rate = flags.get_double("arrival-rate", 6.0);
  sopts.jobs = static_cast<std::size_t>(rate * sopts.duration);
  sopts.quota_flaps = 2;
  const chaos::StormPlan plan(sopts);

  // World: one 24-block corpus everyone scans; the S3 scheduler shares it.
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(4, 2);
  sched::FileCatalog catalog;
  dfs::PlacementTopology ptopo;
  for (const auto& node : topology.nodes()) {
    ptopo.nodes.push_back({node.id, node.rack});
  }
  dfs::RoundRobinPlacement placement(ptopo);
  workloads::TextCorpusGenerator corpus;
  const FileId file = corpus
                          .generate_file(ns, store, placement, "corpus.txt",
                                         /*num_blocks=*/24, ByteSize::kib(32))
                          .value();
  catalog.add(file, 24);

  service::SubmissionService service({/*global_queue_bound=*/32, {}});
  for (const auto& tenant : plan.tenants()) {
    if (auto s = service.register_tenant(tenant.id, tenant.name, tenant.quota);
        !s.is_ok()) {
      std::printf("ERROR: %s\n", s.message().c_str());
      return 1;
    }
  }

  auto scheduler = workloads::make_s3(catalog, topology, /*segment_blocks=*/8);
  engine::LocalEngineOptions eopts;
  eopts.map_workers = 4;
  eopts.reduce_workers = 2;
  engine::LocalEngine engine(ns, store, eopts);
  core::RealDriver driver(ns, engine, catalog, {/*time_scale=*/2e4});

  // Resident loop on its own thread; submitters feed it concurrently.
  StatusOr<core::RealRunResult> result = Status::internal("not run");
  std::thread resident([&] { result = driver.run_service(*scheduler, service); });

  const int retries = static_cast<int>(flags.get_int("retries", 2));
  const std::size_t submitters =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   flags.get_int("submitters", 2)));
  std::size_t flap_cursor = 0;
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      for (std::size_t i = s; i < plan.arrivals().size(); i += submitters) {
        const chaos::StormArrival& arrival = plan.arrivals()[i];
        service::Submission sub = make_submission(arrival, file);
        for (int attempt = 0; attempt <= retries; ++attempt) {
          const service::AdmissionDecision d = service.submit(sub);
          if (d.code != service::AdmitCode::kRetryAfter) break;
          // Modeled backoff: re-offer at the hinted virtual time. Nothing
          // sleeps — the virtual timeline absorbs the wait.
          sub.arrival += d.retry_after;
        }
      }
    });
  }
  // Quota flaps land from the main thread while the storm is in flight.
  for (; flap_cursor < plan.flaps().size(); ++flap_cursor) {
    const chaos::QuotaFlap& flap = plan.flaps()[flap_cursor];
    (void)service.set_quota(flap.tenant, flap.quota, flap.at);
  }
  for (auto& t : threads) t.join();
  service.close();
  resident.join();

  if (!result.is_ok()) {
    std::printf("ERROR: %s\n", result.status().message().c_str());
    return 1;
  }
  const service::SubmissionService::Counts counts = service.counts();
  metrics::TableWriter table({"submitted", "admitted", "retry_after",
                              "rejected", "shed", "dispatched", "finished"});
  table.add_row({std::to_string(counts.submitted),
                 std::to_string(counts.admitted),
                 std::to_string(counts.retry_after),
                 std::to_string(counts.rejected), std::to_string(counts.shed),
                 std::to_string(counts.dispatched),
                 std::to_string(counts.finished)});
  std::printf("s3d storm: %zu tenants, %zu planned arrivals, overload x%.1f\n%s",
              plan.tenants().size(), plan.arrivals().size(),
              sopts.overload_factor, table.render().c_str());
  const auto& run = result.value();
  if (counts.dispatched > 0) {
    std::printf("\ndispatched jobs ran in %zu shared batches; "
                "TET %.1f virt s, ART %.1f virt s, %llu/%llu physical/logical "
                "blocks\n",
                run.batches_run, run.summary.tet, run.summary.art,
                static_cast<unsigned long long>(run.scan.blocks_physical),
                static_cast<unsigned long long>(run.scan.blocks_logical));
  }
  std::printf("every admitted job completed; %zu submissions were shed under "
              "overload and answered with typed rejections, not queue bloat.\n",
              service.shed_log().size());
  return 0;
}
