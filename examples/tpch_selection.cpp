// Structured-data processing (paper §V-G): SQL-like selection queries over a
// TPC-H lineitem table stored in the DFS, executed for real through the
// MapReduce engine under the S3 scheduler.
//
//   SELECT l_orderkey, l_quantity, l_extendedprice
//   FROM   lineitem
//   WHERE  l_quantity <= VAL;
//
// Three queries with different VAL arrive at different times and share the
// table scan.
#include <cstdio>

#include "core/s3.h"

int main() {
  using namespace s3;

  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(4, 2);
  dfs::PlacementTopology ptopo;
  for (const auto& node : topology.nodes()) {
    ptopo.nodes.push_back({node.id, node.rack});
  }
  dfs::RoundRobinPlacement placement(ptopo);

  workloads::tpch::LineitemGenerator generator;
  const FileId table =
      generator
          .generate_file(ns, store, placement, "lineitem.tbl",
                         /*num_blocks=*/16, ByteSize::kib(32))
          .value();
  std::printf("lineitem: %s in %zu blocks\n",
              ns.file_size(table).to_string().c_str(),
              ns.file(table).blocks.size());

  sched::FileCatalog catalog;
  catalog.add(table, 16);

  // Three selections: 10 %, 30 % and 100 % selectivity.
  struct Query {
    int max_quantity;
    double arrival;
  };
  const Query queries[] = {{5, 0.0}, {15, 1.0}, {50, 2.0}};
  std::vector<core::RealJob> jobs;
  for (std::uint64_t q = 0; q < 3; ++q) {
    jobs.push_back({workloads::tpch::make_selection_job(
                        JobId(q), table, queries[q].max_quantity,
                        /*reduce_tasks=*/4),
                    queries[q].arrival, 0});
  }

  engine::LocalEngineOptions eopts;
  eopts.map_workers = 4;
  eopts.reduce_workers = 2;
  engine::LocalEngine engine(ns, store, eopts);
  core::RealDriver driver(ns, engine, catalog, {/*time_scale=*/1e5});
  auto s3 = workloads::make_s3(catalog, topology, /*segment_blocks=*/4);
  auto result = driver.run(*s3, std::move(jobs)).value();

  metrics::TableWriter out({"query", "predicate", "rows selected",
                            "selectivity", "response (virt s)"});
  const auto total_rows =
      static_cast<double>(result.counters.at(JobId(2)).map_input_records);
  for (std::uint64_t q = 0; q < 3; ++q) {
    const auto& rows = result.outputs.at(JobId(q)).output;
    double response = 0.0;
    for (const auto& record : result.job_records) {
      if (record.id == JobId(q)) response = record.response_time();
    }
    out.add_row({"Q" + std::to_string(q),
                 "l_quantity <= " + std::to_string(queries[q].max_quantity),
                 std::to_string(rows.size()),
                 format_double(100.0 * static_cast<double>(rows.size()) /
                                   total_rows,
                               1) +
                     "%",
                 format_double(response, 1)});
  }
  std::printf("%s", out.render().c_str());
  std::printf("shared scan: %llu physical block reads for %llu logical "
              "scans across the three queries\n",
              static_cast<unsigned long long>(result.scan.blocks_physical),
              static_cast<unsigned long long>(result.scan.blocks_logical));

  // Show a couple of selected rows from the most selective query.
  const auto& selective = result.outputs.at(JobId(0)).output;
  std::printf("\nsample of Q0 output (orderkey:linenumber -> quantity|price):\n");
  for (std::size_t i = 0; i < selective.size() && i < 4; ++i) {
    std::printf("  %s -> %s\n", selective[i].key.c_str(),
                selective[i].value.c_str());
  }
  return 0;
}
