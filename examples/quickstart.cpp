// Quickstart: the smallest complete S3 program.
//
// 1. Build an in-memory DFS and generate a small synthetic text corpus.
// 2. Define two wordcount jobs that arrive 2 (virtual) seconds apart.
// 3. Run them under the S3 shared-scan scheduler on the real multi-threaded
//    engine, and print each job's top words plus the sharing statistics.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "core/s3.h"

int main() {
  using namespace s3;

  // --- 1. A 16-block in-memory file of Zipf-distributed text. ---
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(/*nodes=*/4,
                                                          /*racks=*/2);
  dfs::PlacementTopology ptopo;
  for (const auto& node : topology.nodes()) {
    ptopo.nodes.push_back({node.id, node.rack});
  }
  dfs::RoundRobinPlacement placement(ptopo);
  workloads::TextCorpusGenerator corpus;
  const FileId file =
      corpus
          .generate_file(ns, store, placement, "books.txt", /*num_blocks=*/16,
                         ByteSize::kib(16))
          .value();
  std::printf("generated %s across %zu blocks\n",
              ns.file_size(file).to_string().c_str(),
              ns.file(file).blocks.size());

  // --- 2. Two pattern-wordcount jobs arriving at different times. ---
  sched::FileCatalog catalog;
  catalog.add(file, ns.file(file).num_blocks());
  std::vector<core::RealJob> jobs;
  jobs.push_back({workloads::make_wordcount_job(JobId(0), file, "a",
                                                /*reduce_tasks=*/4),
                  /*arrival=*/0.0, /*priority=*/0});
  jobs.push_back({workloads::make_wordcount_job(JobId(1), file, "b", 4),
                  /*arrival=*/2.0, 0});

  // --- 3. Run under S3: 4-block segments, real threaded execution. ---
  engine::LocalEngineOptions eopts;
  eopts.map_workers = 4;
  eopts.reduce_workers = 2;
  engine::LocalEngine engine(ns, store, eopts);
  core::RealDriver driver(ns, engine, catalog,
                          {/*time_scale=*/1e5});  // stretch wall->virtual
  auto s3 = workloads::make_s3(catalog, topology, /*segment_blocks=*/4);
  auto result = driver.run(*s3, std::move(jobs)).value();

  for (const auto& [job, output] : result.outputs) {
    std::printf("\n%s: %zu distinct words; first few:\n",
                (job == JobId(0) ? "job-0 (prefix 'a')" : "job-1 (prefix 'b')"),
                output.output.size());
    for (std::size_t i = 0; i < output.output.size() && i < 5; ++i) {
      std::printf("  %-12s %s\n", output.output[i].key.c_str(),
                  output.output[i].value.c_str());
    }
  }

  std::printf("\nscheduling: %zu merged sub-jobs, TET %.1f, ART %.1f "
              "(virtual s)\n",
              result.batches_run, result.summary.tet, result.summary.art);
  std::printf("shared scan: %llu physical block reads served %llu logical "
              "block scans (%.0f%% I/O saved vs no sharing)\n",
              static_cast<unsigned long long>(result.scan.blocks_physical),
              static_cast<unsigned long long>(result.scan.blocks_logical),
              100.0 * (1.0 - static_cast<double>(result.scan.blocks_physical) /
                                 static_cast<double>(result.scan.blocks_logical)));
  return 0;
}
