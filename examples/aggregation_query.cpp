// Partial aggregation across sub-jobs (paper §V-G). An AVG-GROUP-BY query
// runs under S3 as a sequence of sub-jobs; each sub-job's output is an
// algebraic (sum, count) partial that the engine folds incrementally as
// later sub-jobs complete, so the final aggregation "can be started earlier
// without introducing a significant overhead". The example verifies the
// incrementally-folded answer equals a single whole-file run.
//
//   SELECT l_returnflag, AVG(l_extendedprice), COUNT(*)
//   FROM lineitem GROUP BY l_returnflag;
#include <cstdio>

#include "core/s3.h"

int main() {
  using namespace s3;

  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(4, 2);
  dfs::PlacementTopology ptopo;
  for (const auto& node : topology.nodes()) {
    ptopo.nodes.push_back({node.id, node.rack});
  }
  dfs::RoundRobinPlacement placement(ptopo);
  workloads::tpch::LineitemGenerator generator;
  const FileId table =
      generator
          .generate_file(ns, store, placement, "lineitem.tbl",
                         /*num_blocks=*/12, ByteSize::kib(32))
          .value();
  sched::FileCatalog catalog;
  catalog.add(table, 12);

  const auto run_avg = [&](bool incremental, sched::Scheduler& scheduler) {
    engine::LocalEngineOptions options;
    options.map_workers = 4;
    options.reduce_workers = 2;
    options.incremental_merge = incremental;
    engine::LocalEngine engine(ns, store, options);
    core::RealDriver driver(ns, engine, catalog);
    std::vector<core::RealJob> jobs;
    jobs.push_back({workloads::make_avg_price_job(JobId(0), table,
                                                  /*reduce_tasks=*/4),
                    0.0, 0});
    return driver.run(scheduler, std::move(jobs)).value();
  };

  // S3 sub-job execution with incremental per-sub-job folding (§V-G)...
  auto s3 = workloads::make_s3(catalog, topology, /*segment_blocks=*/3);
  const auto incremental = run_avg(/*incremental=*/true, *s3);
  // ...vs one whole-file pass under FIFO.
  auto fifo = workloads::make_fifo(catalog);
  const auto whole = run_avg(/*incremental=*/false, *fifo);

  const auto inc_avgs =
      workloads::extract_averages(incremental.outputs.at(JobId(0)));
  const auto ref_avgs = workloads::extract_averages(whole.outputs.at(JobId(0)));

  std::printf("AVG(l_extendedprice) GROUP BY l_returnflag over %llu rows:\n\n",
              static_cast<unsigned long long>(
                  whole.counters.at(JobId(0)).map_input_records));
  std::printf("  %-12s %-14s %-10s %s\n", "returnflag", "avg price", "count",
              "match vs whole-file run");
  bool all_match = true;
  for (const auto& [flag, avg] : inc_avgs) {
    const auto it = ref_avgs.find(flag);
    const bool match =
        it != ref_avgs.end() && it->second.count == avg.count &&
        std::abs(it->second.value() - avg.value()) < 1e-6;
    all_match &= match;
    std::printf("  %-12s %-14.2f %-10llu %s\n", flag.c_str(), avg.value(),
                static_cast<unsigned long long>(avg.count),
                match ? "yes" : "NO");
  }
  std::printf("\nS3 ran the query as %zu merged sub-jobs, folding (sum,count) "
              "partials after each one; answers %s.\n",
              incremental.batches_run,
              all_match ? "identical to the single-pass run"
                        : "DIVERGED — bug!");
  return all_match ? 0 : 1;
}
