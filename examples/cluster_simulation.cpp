// Paper-scale cluster simulation: replays the sparse-pattern experiment of
// Figure 4(a) — 10 wordcount jobs over 160 GB on the 41-node cluster — in
// virtual time, prints the scheme comparison, and dumps S3's batch timeline
// (the merged sub-jobs, their segment ranges and member counts).
//
// Usage: cluster_simulation [--pattern=sparse|dense] [--segment-blocks=N]
#include <cstdio>

#include "core/s3.h"

int main(int argc, char** argv) {
  using namespace s3;
  const Flags flags = Flags::parse(argc, argv);
  const std::string pattern = flags.get_string("pattern", "sparse");
  const auto setup = workloads::make_paper_setup(64.0);
  const std::uint64_t segment_blocks = static_cast<std::uint64_t>(
      flags.get_int("segment-blocks",
                    static_cast<std::int64_t>(setup.default_segment_blocks())));

  const auto arrivals = pattern == "dense"
                            ? workloads::paper_dense_arrivals()
                            : workloads::paper_sparse_arrivals();
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, arrivals, sim::WorkloadCost::wordcount_normal());

  std::printf("cluster: %zu nodes / %zu racks, %d map slots; file: %llu x "
              "64 MiB blocks; pattern: %s; S3 segment: %llu blocks\n\n",
              setup.topology.num_nodes(), setup.topology.num_racks(),
              setup.topology.total_map_slots(),
              static_cast<unsigned long long>(setup.wordcount_blocks),
              pattern.c_str(),
              static_cast<unsigned long long>(segment_blocks));

  metrics::ComparisonTable comparison;
  std::vector<sim::BatchTrace> s3_batches;
  struct Scheme {
    const char* name;
    std::unique_ptr<sched::Scheduler> scheduler;
  };
  std::vector<Scheme> schemes;
  schemes.push_back({"FIFO", workloads::make_fifo(setup.catalog)});
  schemes.push_back({"MRS1", workloads::make_mrs1(setup.catalog)});
  schemes.push_back({"MRS2", workloads::make_mrs2(setup.catalog)});
  schemes.push_back({"MRS3", workloads::make_mrs3(setup.catalog)});
  schemes.push_back(
      {"S3", workloads::make_s3(setup.catalog, setup.topology, segment_blocks)});

  for (auto& scheme : schemes) {
    sim::SimConfig config;
    config.cost = setup.cost;
    sim::SimEngine engine(setup.topology, setup.catalog, config);
    auto run = engine.run(*scheme.scheduler, jobs).value();
    comparison.add(scheme.name, run.summary);
    if (std::string(scheme.name) == "S3") s3_batches = std::move(run.batches);
  }
  std::printf("%s\n", comparison.render("S3").c_str());

  std::printf("S3 merged sub-job timeline (segment scan order, batch "
              "membership):\n");
  std::printf("  %-8s %-10s %-10s %-16s %-8s %s\n", "batch", "launch",
              "finish", "blocks", "members", "completes");
  for (const auto& batch : s3_batches) {
    std::printf("  %-8llu %-10.1f %-10.1f [%6llu,+%-5llu) %-8zu %zu\n",
                static_cast<unsigned long long>(batch.id.value()),
                batch.launched, batch.finished,
                static_cast<unsigned long long>(batch.start_block),
                static_cast<unsigned long long>(batch.num_blocks),
                batch.members, batch.completed_jobs);
  }
  std::printf("\n(csv form available via sim::batches_to_csv)\n");
  return 0;
}
