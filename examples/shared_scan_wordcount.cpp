// Shared-scan wordcount: the paper's motivating scenario on the real engine.
//
// Five pattern-wordcount jobs over one corpus arrive in two bursts. The same
// workload runs under FIFO, MRShare (single batch) and S3; the example
// prints TET/ART plus the physical-vs-logical I/O ledger, demonstrating that
// S3 keeps response times low *and* shares most of the scanning — and that
// all three schedulers produce identical answers.
//
// Pass --trace-out=<path> to capture a Chrome/Perfetto trace of the S3 run
// (spans for every map/reduce task plus the scheduler decision journal);
// metrics land next to it in <path>.metrics.jsonl.
//
// Hardware-tuning switches (see README "Hardware tuning"): --pin-cores pins
// each engine worker to a core via sched_setaffinity (no-op where denied),
// --prefault runs the Metis-style prefault pre-phases before each timed
// map/reduce wave, and --phase-counters turns on per-phase perf_event
// cycle/instruction/LLC-miss counters (no-op where the kernel denies them);
// phase wall time and fault deltas are always collected.
#include <cstdio>

#include "core/s3.h"

namespace {

using namespace s3;

struct World {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(4, 2);
  sched::FileCatalog catalog;
  FileId file;
};

std::vector<core::RealJob> make_jobs(FileId file) {
  // Two bursts: {0, 1, 2} then {8, 9} virtual seconds.
  const char* prefixes[] = {"a", "b", "c", "d", "e"};
  const double arrivals[] = {0.0, 1.0, 2.0, 8.0, 9.0};
  std::vector<core::RealJob> jobs;
  for (std::uint64_t j = 0; j < 5; ++j) {
    jobs.push_back({workloads::make_wordcount_job(JobId(j), file, prefixes[j],
                                                  /*reduce_tasks=*/4),
                    arrivals[j], 0});
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  // --trace-out=<path> traces all three scheduler runs into one file; the
  // scheduler journal distinguishes them by batch/file ids.
  obs::TraceSession trace_session(flags);
  // --snapshot-out=<path> publishes a Prometheus text snapshot every
  // --snapshot-interval-ms (default 500); point `s3top <path>` at it for a
  // live dashboard while the example runs.
  obs::SnapshotExporter snapshot_exporter(flags);
  obs::install_crash_handler();
  obs::set_phase_counters_enabled(flags.get_bool("phase-counters"));
  World world;
  dfs::PlacementTopology ptopo;
  for (const auto& node : world.topology.nodes()) {
    ptopo.nodes.push_back({node.id, node.rack});
  }
  dfs::RoundRobinPlacement placement(ptopo);
  workloads::TextCorpusGenerator corpus;
  world.file = corpus
                   .generate_file(world.ns, world.store, placement,
                                  "corpus.txt", /*num_blocks=*/24,
                                  ByteSize::kib(32))
                   .value();
  world.catalog.add(world.file, 24);

  metrics::TableWriter table({"scheduler", "TET (virt s)", "ART (virt s)",
                              "merged batches", "physical blocks",
                              "logical blocks", "I/O saved"});

  std::size_t reference_words = 0;
  for (const char* scheme : {"FIFO", "MRS1", "S3"}) {
    std::unique_ptr<sched::Scheduler> scheduler;
    if (scheme[0] == 'F') {
      scheduler = workloads::make_fifo(world.catalog);
    } else if (scheme[0] == 'M') {
      scheduler = workloads::make_mrs1(world.catalog);
    } else {
      scheduler = workloads::make_s3(world.catalog, world.topology,
                                     /*segment_blocks=*/8);
    }
    engine::LocalEngineOptions eopts;
    eopts.map_workers = 4;
    eopts.reduce_workers = 2;
    eopts.pin_cores = flags.get_bool("pin-cores");
    eopts.prefault = flags.get_bool("prefault");
    engine::LocalEngine engine(world.ns, world.store, eopts);
    core::RealDriver driver(world.ns, engine, world.catalog,
                            {/*time_scale=*/2e4});
    auto result = driver.run(*scheduler, make_jobs(world.file)).value();

    std::size_t words = 0;
    for (const auto& [job, output] : result.outputs) words += output.output.size();
    if (reference_words == 0) reference_words = words;
    if (words != reference_words) {
      std::printf("ERROR: scheduler %s changed the answers!\n", scheme);
      return 1;
    }

    const double saved =
        100.0 * (1.0 - static_cast<double>(result.scan.blocks_physical) /
                           static_cast<double>(result.scan.blocks_logical));
    table.add_row({scheme, format_double(result.summary.tet, 1),
                   format_double(result.summary.art, 1),
                   std::to_string(result.batches_run),
                   std::to_string(result.scan.blocks_physical),
                   std::to_string(result.scan.blocks_logical),
                   format_double(saved, 0) + "%"});
  }

  std::printf("5 wordcount jobs, two bursts, 24-block corpus "
              "(identical outputs verified across schedulers):\n%s",
              table.render().c_str());
  std::printf("\nFIFO shares nothing; MRS1 shares everything but delays the "
              "first burst; S3 shares most scans while starting every job "
              "within one segment.\n");
  return 0;
}
