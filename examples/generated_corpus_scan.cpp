// Larger-than-memory scanning: the DFS stores only metadata while a
// GeneratedBlockSource synthesizes each block's bytes on demand — the
// deterministic generator *is* the dataset, so the engine can scan inputs of
// any size with flat memory. Three pattern-wordcount jobs share the scan
// under S3.
//
// Usage: generated_corpus_scan [--blocks=N] [--block-kib=K]
#include <chrono>
#include <cstdio>

#include "core/s3.h"

int main(int argc, char** argv) {
  using namespace s3;
  const Flags flags = Flags::parse(argc, argv);
  const auto num_blocks =
      static_cast<std::uint64_t>(flags.get_int("blocks", 96));
  const ByteSize block_size =
      ByteSize::kib(static_cast<std::uint64_t>(flags.get_int("block-kib", 512)));

  // Metadata-only file: blocks are declared, never materialized.
  dfs::DfsNamespace ns;
  auto file = ns.create_file("virtual-corpus.txt", block_size).value();
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    const BlockId block = ns.append_block(file, block_size).value();
    (void)ns.set_replicas(block, {NodeId(b % 4)});
  }

  workloads::TextCorpusGenerator corpus;
  dfs::GeneratedBlockSource source(
      ns, file, [&corpus, block_size](std::uint64_t index) {
        return corpus.generate_block(index, block_size);
      });

  cluster::Topology topology = cluster::Topology::uniform(4, 2);
  sched::FileCatalog catalog;
  catalog.add(file, num_blocks);

  std::vector<core::RealJob> jobs;
  const char* prefixes[] = {"a", "b", "c"};
  for (std::uint64_t j = 0; j < 3; ++j) {
    jobs.push_back({workloads::make_wordcount_job(JobId(j), file, prefixes[j],
                                                  /*reduce_tasks=*/4),
                    /*arrival=*/0.2 * static_cast<double>(j), 0});
  }

  engine::LocalEngineOptions eopts;
  eopts.map_workers = 4;
  eopts.reduce_workers = 2;
  engine::LocalEngine engine(ns, source, eopts);
  core::RealDriver driver(ns, engine, catalog, {/*time_scale=*/1e6});
  auto s3 = workloads::make_s3(catalog, topology,
                               std::max<std::uint64_t>(1, num_blocks / 4));

  const auto wall_start = std::chrono::steady_clock::now();
  auto result = driver.run(*s3, std::move(jobs)).value();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  const double logical_mib =
      static_cast<double>(result.scan.bytes_logical) / (1024.0 * 1024.0);
  const double physical_mib =
      static_cast<double>(result.scan.bytes_physical) / (1024.0 * 1024.0);
  std::printf("scanned a %s virtual corpus (%llu blocks x %s), never "
              "materialized:\n",
              (block_size * num_blocks).to_string().c_str(),
              static_cast<unsigned long long>(num_blocks),
              block_size.to_string().c_str());
  std::printf("  %.0f MiB generated+scanned physically serving %.0f MiB "
              "logical scans across 3 jobs\n",
              physical_mib, logical_mib);
  std::printf("  wall time %.2f s -> %.0f MiB/s logical scan throughput, "
              "%zu merged sub-jobs\n",
              wall, logical_mib / wall, result.batches_run);
  for (const auto& [job, output] : result.outputs) {
    std::printf("  job-%llu: %zu distinct words\n",
                static_cast<unsigned long long>(job.value()),
                output.output.size());
  }
  return 0;
}
