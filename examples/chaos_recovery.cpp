// Chaos recovery demo: the same shared-scan workload runs twice — once
// fault-free, once under a seeded FaultPlan that kills a node mid-wave,
// corrupts block replicas, and makes first task attempts hang or fail
// transiently. The engine re-dispatches, the read path fails over, the S3
// scheduler shrinks its waves around the dead node — and the outputs must be
// byte-identical.
//
// Flags: --seed=N (fault plan seed, default 1), --corrupt=N (replicas to
// corrupt, default 3), --trace-out=<path> to capture the recovery journal
// for `s3trace --validate`.
#include <cstdio>

#include "chaos/fault_plan.h"
#include "core/s3.h"
#include "dfs/failover.h"

namespace {

using namespace s3;

constexpr std::uint64_t kNumBlocks = 16;

struct World {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(4, 2);
  sched::FileCatalog catalog;
  FileId file;

  World() {
    dfs::PlacementTopology ptopo;
    for (const auto& node : topology.nodes()) {
      ptopo.nodes.push_back({node.id, node.rack});
    }
    dfs::RoundRobinPlacement placement(ptopo);
    workloads::TextCorpusGenerator corpus;
    file = corpus
               .generate_file(ns, store, placement, "corpus.txt", kNumBlocks,
                              ByteSize::kib(16), /*replication=*/3)
               .value();
    catalog.add(file, kNumBlocks);
  }
};

std::vector<core::RealJob> make_jobs(FileId file) {
  const char* prefixes[] = {"a", "s", "t"};
  std::vector<core::RealJob> jobs;
  for (std::uint64_t j = 0; j < 3; ++j) {
    jobs.push_back({workloads::make_wordcount_job(JobId(j), file, prefixes[j],
                                                  /*reduce_tasks=*/3),
                    /*arrival=*/0.5 * static_cast<double>(j), 0});
  }
  return jobs;
}

struct RunOutcome {
  core::RealRunResult result;
  std::uint64_t failovers = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t hung_attempts = 0;
};

RunOutcome run(World& world, const chaos::FaultPlan* plan) {
  dfs::ReplicaHealth health;
  dfs::StoredBlocks stored(world.store);
  dfs::FailoverBlockSource source(world.ns, stored, health);
  engine::LocalEngineOptions eopts;
  eopts.map_workers = 4;
  eopts.reduce_workers = 2;
  eopts.max_task_attempts = 3;
  eopts.replica_health = &health;
  if (plan != nullptr) {
    plan->arm(health);
    eopts.fault_injector = plan->injector();
  }
  engine::LocalEngine engine(world.ns, source, eopts);
  sched::S3Options sopts;
  sopts.blocks_per_segment = 8;
  sched::S3Scheduler scheduler(world.catalog, sopts, &world.topology);
  core::RealDriver driver(world.ns, engine, world.catalog,
                          {/*time_scale=*/2e4, /*map_slots=*/4});
  RunOutcome out;
  out.result = driver.run(scheduler, make_jobs(world.file)).value();
  out.failovers = source.failovers();
  out.failed_attempts = engine.failed_attempts();
  out.hung_attempts = engine.hung_attempts();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  obs::TraceSession trace_session(flags);
  // Chaos runs are exactly when a crash dump pays for itself: induced node
  // deaths and failovers stress every abort path, and the flight record of
  // the last few hundred events rides along in any s3-crash-*.txt.
  obs::SnapshotExporter snapshot_exporter(flags);
  obs::install_crash_handler();
  obs::EventJournal::instance().set_enabled(true);

  chaos::FaultPlanOptions fp;
  fp.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  fp.kill_node = true;
  fp.corrupt_replicas = static_cast<std::size_t>(flags.get_int("corrupt", 3));
  fp.transient_rate = 0.3;
  fp.hang_rate = 0.15;

  World baseline_world;
  const RunOutcome baseline = run(baseline_world, nullptr);

  World chaos_world;
  const chaos::FaultPlan plan(chaos_world.ns, {chaos_world.file},
                              chaos_world.topology, fp);
  std::printf("fault plan: %s\n", plan.describe().c_str());
  const RunOutcome chaotic = run(chaos_world, &plan);

  // Differential oracle: recovery must be invisible in the answers.
  for (const auto& [job, want] : baseline.result.outputs) {
    const auto it = chaotic.result.outputs.find(job);
    if (it == chaotic.result.outputs.end() ||
        it->second.output.size() != want.output.size()) {
      std::printf("ERROR: job %llu output diverged under chaos!\n",
                  static_cast<unsigned long long>(job.value()));
      return 1;
    }
    for (std::size_t i = 0; i < want.output.size(); ++i) {
      if (it->second.output[i].key != want.output[i].key ||
          it->second.output[i].value != want.output[i].value) {
        std::printf("ERROR: job %llu record %zu diverged under chaos!\n",
                    static_cast<unsigned long long>(job.value()), i);
        return 1;
      }
    }
  }

  metrics::TableWriter table(
      {"run", "TET (virt s)", "nodes died", "replica failovers",
       "failed attempts", "hung attempts", "batches"});
  table.add_row({"fault-free", format_double(baseline.result.summary.tet, 1),
                 std::to_string(baseline.result.nodes_died.size()),
                 std::to_string(baseline.failovers),
                 std::to_string(baseline.failed_attempts),
                 std::to_string(baseline.hung_attempts),
                 std::to_string(baseline.result.batches_run)});
  table.add_row({"chaos", format_double(chaotic.result.summary.tet, 1),
                 std::to_string(chaotic.result.nodes_died.size()),
                 std::to_string(chaotic.failovers),
                 std::to_string(chaotic.failed_attempts),
                 std::to_string(chaotic.hung_attempts),
                 std::to_string(chaotic.result.batches_run)});
  std::printf("%s\n", table.render().c_str());
  std::printf("outputs byte-identical across both runs: the recovery path\n"
              "(re-dispatch + replica failover + wave resizing) never changed "
              "an answer.\n");
  return 0;
}
