#include "s3lockcheck/graph.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <sstream>
#include <tuple>

namespace s3lockcheck {
namespace {

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base =
      (slash == std::string::npos) ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  return base;
}

// Annotation arguments are stored as identifier chains joined with '.'.
std::vector<std::string> split_chain(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == '.') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string last_component(const std::string& path) {
  const std::size_t pos = path.rfind("::");
  return pos == std::string::npos ? path : path.substr(pos + 2);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_wait_name(const std::string& s) {
  return s == "wait" || s == "wait_for" || s == "wait_until";
}

bool is_sleep_name(const std::string& s) {
  return s == "sleep_for" || s == "sleep_until";
}

// Methods that block by design (condition waits, pool handoffs, block I/O).
// Calling one while holding any lock is the Algorithm 1 stall pattern:
// a scan wave cannot make progress while its scheduler thread sits in an
// unbounded wait with shared state pinned.
struct BlockingSeed {
  const char* cls;     // class tail name (exact match)
  const char* method;
  const char* why;
};
constexpr BlockingSeed kBlockingSeeds[] = {
    {"ThreadPool", "submit", "enqueues into a bounded pool"},
    {"ThreadPool", "wait_idle", "waits for pool drain"},
    {"ThreadPool", "shutdown", "joins worker threads"},
    {"PinnedThreadPool", "submit", "enqueues into a bounded pool"},
    {"PinnedThreadPool", "submit_to", "enqueues into a bounded pool"},
    {"PinnedThreadPool", "wait_idle", "waits for pool drain"},
    {"PinnedThreadPool", "shutdown", "joins worker threads"},
    {"BlockingQueue", "pop", "waits for queue data"},
    {"BlockStore", "get", "performs block I/O"},
    {"BlockStore", "put", "performs block I/O"},
};

// Unresolvable receivers with these method names are still treated as
// blocking — the names are distinctive enough in this tree that a miss
// matters more than a rare false positive (which `// s3lockcheck:
// disable(...)` can silence).
bool distinctive_blocking_name(const std::string& s) {
  return s == "submit" || s == "submit_to" || s == "wait_idle";
}

const char* seed_reason(const std::string& class_tail,
                        const std::string& method) {
  for (const BlockingSeed& seed : kBlockingSeeds) {
    if (class_tail == seed.cls && method == seed.method) return seed.why;
  }
  if (method == "fetch" && ends_with(class_tail, "BlockSource")) {
    return "fetches a block (I/O or simulated delay)";
  }
  return nullptr;
}

}  // namespace

struct ProjectGraph::Function {
  FunctionModel m;
  std::string qualified;                 // "Class::name" or "name"
  std::vector<std::string> requires_locks;  // resolved S3_REQUIRES
  // Resolved lock id per acquire site ("" = unresolved, dropped).
  std::vector<std::string> site_locks;
  // Resolved callee function indices per call site (may be empty).
  std::vector<std::vector<std::size_t>> call_targets;
  // Locks this function acquires transitively through non-deferred calls.
  std::set<std::string> trans;
  bool blocking = false;        // seeded or contains a blocking primitive
  bool trans_blocking = false;  // blocking reachable through calls
  std::string blocking_why;
};

ProjectGraph::ProjectGraph(std::vector<FileModel> files)
    : files_(std::move(files)) {
  build_indexes();
  resolve_functions();
  compute_transitive();
  build_edges();
}

ProjectGraph::~ProjectGraph() = default;

const std::vector<std::string>& ProjectGraph::all_rules() {
  static const std::vector<std::string> kRules = {
      "lock-cycle", "rank-order", "unranked-mutex", "blocking-under-lock"};
  return kRules;
}

void ProjectGraph::build_indexes() {
  for (const FileModel& fm : files_) {
    const std::string stem = stem_of(fm.path);
    for (const MutexDecl& m : fm.mutexes) {
      mutexes_.emplace(m.id, m);
      by_member_[m.member].push_back(m.id);
      by_stem_[stem].push_back(m.id);
    }
    for (const auto& [cls, members] : fm.members) {
      classes_.insert(cls);
      for (const auto& [name, type] : members) {
        members_[cls][name] = type;
      }
    }
    // Classes without data members still need to resolve as receiver types
    // (an interface-only ThreadPool wrapper, a pure-virtual BlockSource).
    for (const FunctionModel& f : fm.functions) {
      if (!f.class_name.empty()) classes_.insert(f.class_name);
    }
    for (const MutexDecl& m : fm.mutexes) {
      if (!m.class_name.empty()) classes_.insert(m.class_name);
    }
    for (const auto& [enumerator, value] : fm.rank_values) {
      ranks_[enumerator] = value;
    }
  }

  // Merge functions: every definition (body) is its own node; declarations
  // contribute their S3_REQUIRES/S3_EXCLUDES annotations to matching
  // definitions, and become nodes of their own only when no definition
  // exists anywhere (pure virtuals, externally-defined methods) — there the
  // annotations are all the analysis has.
  std::map<std::string, std::vector<FunctionModel>> decl_only;
  for (FileModel& fm : files_) {
    for (FunctionModel& f : fm.functions) {
      const std::string qualified =
          f.class_name.empty() ? f.name : f.class_name + "::" + f.name;
      if (f.has_body) {
        Function fn;
        fn.m = std::move(f);
        fn.qualified = qualified;
        by_qualified_[qualified].push_back(functions_.size());
        by_name_[fn.m.name].push_back(functions_.size());
        functions_.push_back(std::move(fn));
      } else {
        decl_only[qualified].push_back(std::move(f));
      }
    }
  }
  for (auto& [qualified, decls] : decl_only) {
    const auto it = by_qualified_.find(qualified);
    if (it != by_qualified_.end()) {
      for (const std::size_t idx : it->second) {
        for (const FunctionModel& d : decls) {
          FunctionModel& def = functions_[idx].m;
          def.requires_args.insert(def.requires_args.end(),
                                   d.requires_args.begin(),
                                   d.requires_args.end());
          def.excludes_args.insert(def.excludes_args.end(),
                                   d.excludes_args.begin(),
                                   d.excludes_args.end());
        }
      }
      continue;
    }
    Function fn;
    fn.m = std::move(decls.front());
    for (std::size_t i = 1; i < decls.size(); ++i) {
      fn.m.requires_args.insert(fn.m.requires_args.end(),
                                decls[i].requires_args.begin(),
                                decls[i].requires_args.end());
      fn.m.excludes_args.insert(fn.m.excludes_args.end(),
                                decls[i].excludes_args.begin(),
                                decls[i].excludes_args.end());
    }
    fn.qualified = qualified;
    by_qualified_[qualified].push_back(functions_.size());
    by_name_[fn.m.name].push_back(functions_.size());
    functions_.push_back(std::move(fn));
  }
}

std::string ProjectGraph::class_for_type(const std::string& type) const {
  if (type.empty()) return "";
  if (classes_.count(type) > 0) return type;
  // Nested classes are usually referenced by their tail name (WaveCtx,
  // Bucket); accept a unique suffix match.
  std::string found;
  for (const std::string& cls : classes_) {
    if (last_component(cls) == type) {
      if (!found.empty()) return "";  // ambiguous
      found = cls;
    }
  }
  return found;
}

std::string ProjectGraph::resolve_type(const std::string& name,
                                       const Function& fn) const {
  for (const Param& p : fn.m.params) {
    if (p.name == name) return p.type;
  }
  for (const LocalDecl& d : fn.m.locals) {
    if (d.name == name) return d.type;
  }
  // Member of the enclosing class (or an enclosing outer class).
  std::string cls = fn.m.class_name;
  while (!cls.empty()) {
    const auto it = members_.find(cls);
    if (it != members_.end()) {
      const auto mit = it->second.find(name);
      if (mit != it->second.end()) return mit->second;
    }
    const std::size_t pos = cls.rfind("::");
    cls = pos == std::string::npos ? "" : cls.substr(0, pos);
  }
  // Unique member name anywhere in the project.
  std::string found;
  for (const auto& [owner, members] : members_) {
    const auto mit = members.find(name);
    if (mit == members.end()) continue;
    if (!found.empty() && found != mit->second) return "";
    found = mit->second;
  }
  return found;
}

std::string ProjectGraph::resolve_lock(const std::vector<std::string>& expr,
                                       const Function& fn) const {
  if (expr.empty()) return "";
  const std::string& member = expr.back();

  if (expr.size() == 1) {
    // Tier 1: a member of the enclosing class chain.
    std::string cls = fn.m.class_name;
    while (!cls.empty()) {
      const std::string id = cls + "::" + member;
      if (mutexes_.count(id) > 0) return id;
      const std::size_t pos = cls.rfind("::");
      cls = pos == std::string::npos ? "" : cls.substr(0, pos);
    }
  } else {
    // Tier 2: resolve the receiver chain left to right.
    std::string cur;
    std::size_t first_member = 1;
    if (expr[0] == "this") {
      cur = fn.m.class_name;
    } else {
      cur = class_for_type(resolve_type(expr[0], fn));
      if (cur.empty()) cur = class_for_type(expr[0]);  // static access
    }
    if (!cur.empty()) {
      for (std::size_t i = first_member; i + 1 < expr.size(); ++i) {
        const auto it = members_.find(cur);
        if (it == members_.end()) break;
        const auto mit = it->second.find(expr[i]);
        // Non-member identifiers in the chain (subscript indices, call
        // arguments swept into the expression) are skipped.
        if (mit == it->second.end()) continue;
        const std::string next = class_for_type(mit->second);
        if (next.empty()) {
          cur.clear();
          break;
        }
        cur = next;
      }
    }
    if (!cur.empty()) {
      const std::string id = cur + "::" + member;
      if (mutexes_.count(id) > 0) return id;
    }
  }

  // Tier 3: unique mutex with this member name among files sharing this
  // function's basename stem (trace.cpp resolves Ring::mu from trace.h).
  const auto sit = by_stem_.find(stem_of(fn.m.file));
  if (sit != by_stem_.end()) {
    std::string found;
    for (const std::string& id : sit->second) {
      if (mutexes_.at(id).member != member) continue;
      if (!found.empty()) {
        found.clear();
        break;
      }
      found = id;
    }
    if (!found.empty()) return found;
  }

  // Tier 4: the member name is unique project-wide.
  const auto bit = by_member_.find(member);
  if (bit != by_member_.end() && bit->second.size() == 1) {
    return bit->second.front();
  }
  return "";
}

void ProjectGraph::resolve_functions() {
  for (Function& fn : functions_) {
    for (const std::string& arg : fn.m.requires_args) {
      const std::string id = resolve_lock(split_chain(arg), fn);
      if (!id.empty()) fn.requires_locks.push_back(id);
    }
    fn.site_locks.reserve(fn.m.acquires.size());
    for (const AcquireSite& site : fn.m.acquires) {
      fn.site_locks.push_back(resolve_lock(site.expr, fn));
    }
    fn.call_targets.resize(fn.m.calls.size());
  }

  // Callee resolution needs all functions indexed first.
  for (Function& fn : functions_) {
    for (std::size_t c = 0; c < fn.m.calls.size(); ++c) {
      const CallSite& call = fn.m.calls[c];
      std::vector<std::size_t>& targets = fn.call_targets[c];
      if (!call.chain.empty()) {
        // Method call: resolve the receiver chain to a class.
        std::string cur;
        if (call.chain[0] == "this") {
          cur = fn.m.class_name;
        } else {
          cur = class_for_type(resolve_type(call.chain[0], fn));
          if (cur.empty()) cur = class_for_type(call.chain[0]);
        }
        for (std::size_t i = 1; !cur.empty() && i < call.chain.size(); ++i) {
          const auto it = members_.find(cur);
          if (it == members_.end()) break;
          const auto mit = it->second.find(call.chain[i]);
          if (mit == it->second.end()) continue;
          cur = class_for_type(mit->second);
        }
        if (!cur.empty()) {
          const auto qit = by_qualified_.find(cur + "::" + call.callee);
          if (qit != by_qualified_.end()) targets = qit->second;
        }
        continue;
      }
      // Bare call: enclosing class method, then free function, then a
      // project-unique name.
      std::string cls = fn.m.class_name;
      while (!cls.empty()) {
        const auto qit = by_qualified_.find(cls + "::" + call.callee);
        if (qit != by_qualified_.end()) {
          targets = qit->second;
          break;
        }
        const std::size_t pos = cls.rfind("::");
        cls = pos == std::string::npos ? "" : cls.substr(0, pos);
      }
      if (!targets.empty()) continue;
      const auto fit = by_qualified_.find(call.callee);
      if (fit != by_qualified_.end()) {
        targets = fit->second;
        continue;
      }
      const auto nit = by_name_.find(call.callee);
      if (nit != by_name_.end() && nit->second.size() == 1) {
        targets = nit->second;
      }
    }
  }
}

void ProjectGraph::compute_transitive() {
  // Seeds: annotated blocking methods and bodies containing a blocking
  // primitive (cv wait — even on the guard's own lock, the thread still
  // parks — sleeps, joins).
  for (Function& fn : functions_) {
    const char* why =
        seed_reason(last_component(fn.m.class_name), fn.m.name);
    if (why != nullptr) {
      fn.blocking = true;
      fn.blocking_why = why;
    }
    for (const CallSite& call : fn.m.calls) {
      if (call.in_lambda) continue;
      const bool primitive =
          (is_wait_name(call.callee) && !call.chain.empty()) ||
          is_sleep_name(call.callee) ||
          (call.callee == "join" && !call.chain.empty());
      if (primitive && !fn.blocking) {
        fn.blocking = true;
        fn.blocking_why = "contains a " + call.callee + "() at " +
                          fn.m.file + ":" + std::to_string(call.line);
      }
    }
    fn.trans_blocking = fn.blocking;
    // Direct acquisitions: resolved guard sites outside lambdas, plus
    // whatever S3_EXCLUDES promises the function takes itself.
    for (std::size_t s = 0; s < fn.m.acquires.size(); ++s) {
      if (fn.m.acquires[s].in_lambda) continue;
      if (!fn.site_locks[s].empty()) fn.trans.insert(fn.site_locks[s]);
    }
    for (const std::string& arg : fn.m.excludes_args) {
      const std::string id = resolve_lock(split_chain(arg), fn);
      if (!id.empty()) fn.trans.insert(id);
    }
  }

  // Fixpoint over the call graph. Deferred (lambda) call sites are
  // excluded: a submitted task body runs on a pool thread, after the
  // submitting frame returned.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Function& fn : functions_) {
      for (std::size_t c = 0; c < fn.m.calls.size(); ++c) {
        if (fn.m.calls[c].in_lambda) continue;
        for (const std::size_t target : fn.call_targets[c]) {
          const Function& g = functions_[target];
          if (g.trans_blocking && !fn.trans_blocking) {
            fn.trans_blocking = true;
            fn.blocking_why = "calls " + g.qualified +
                              (g.blocking_why.empty()
                                   ? std::string()
                                   : ", which " + g.blocking_why);
            changed = true;
          }
          for (const std::string& id : g.trans) {
            if (fn.trans.insert(id).second) changed = true;
          }
        }
      }
    }
  }
}

void ProjectGraph::build_edges() {
  std::set<std::string> seen;  // "from\0to" dedup, first witness wins
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, int line,
                      const std::string& via) {
    if (from == to) return;  // recursion / re-entry; the runtime validator
                             // owns same-lock double-acquisition
    if (!seen.insert(from + '\0' + to).second) return;
    edges_.push_back(Edge{from, to, file, line, via});
  };

  for (const Function& fn : functions_) {
    // Nested guard scopes: every lock held at an acquire site precedes the
    // acquired lock. S3_REQUIRES locks are held for the whole body.
    for (std::size_t s = 0; s < fn.m.acquires.size(); ++s) {
      const AcquireSite& site = fn.m.acquires[s];
      if (site.in_lambda || fn.site_locks[s].empty()) continue;
      std::set<std::string> held(fn.requires_locks.begin(),
                                 fn.requires_locks.end());
      for (const int h : site.held) {
        if (!fn.site_locks[h].empty()) held.insert(fn.site_locks[h]);
      }
      for (const std::string& h : held) {
        add_edge(h, fn.site_locks[s], fn.m.file, site.line, fn.qualified);
      }
    }
    // Calls made while holding locks: everything the callee can acquire
    // transitively is ordered after every held lock.
    for (std::size_t c = 0; c < fn.m.calls.size(); ++c) {
      const CallSite& call = fn.m.calls[c];
      if (call.in_lambda) continue;
      std::set<std::string> held(fn.requires_locks.begin(),
                                 fn.requires_locks.end());
      for (const int h : call.held) {
        if (!fn.site_locks[h].empty()) held.insert(fn.site_locks[h]);
      }
      if (held.empty()) continue;
      for (const std::size_t target : fn.call_targets[c]) {
        const Function& g = functions_[target];
        for (const std::string& to : g.trans) {
          if (held.count(to) > 0) continue;  // already held: re-entry is the
                                             // runtime validator's finding
          for (const std::string& h : held) {
            add_edge(h, to, fn.m.file, call.line,
                     fn.qualified + " -> " + g.qualified);
          }
        }
      }
    }
  }
}

void ProjectGraph::check_cycles(std::vector<Finding>* out) const {
  std::map<std::string, std::vector<const Edge*>> adj;
  for (const Edge& e : edges_) adj[e.from].push_back(&e);

  std::set<std::string> done;       // fully explored
  std::set<std::string> reported;   // canonical cycle keys
  std::vector<std::string> stack;
  std::set<std::string> on_stack;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    stack.push_back(node);
    on_stack.insert(node);
    const auto it = adj.find(node);
    if (it != adj.end()) {
      for (const Edge* e : it->second) {
        if (on_stack.count(e->to) > 0) {
          // Extract the cycle from the stack.
          std::vector<std::string> cycle;
          bool in = false;
          for (const std::string& n : stack) {
            if (n == e->to) in = true;
            if (in) cycle.push_back(n);
          }
          // Canonicalize: rotate the smallest node to the front.
          const auto min_it = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), min_it, cycle.end());
          std::string key;
          for (const std::string& n : cycle) key += n + ">";
          if (!reported.insert(key).second) continue;

          std::ostringstream msg;
          msg << "lock-order cycle: ";
          const Edge* first_edge = nullptr;
          for (std::size_t i = 0; i < cycle.size(); ++i) {
            const std::string& from = cycle[i];
            const std::string& to = cycle[(i + 1) % cycle.size()];
            const Edge* step = nullptr;
            for (const Edge& cand : edges_) {
              if (cand.from == from && cand.to == to) {
                step = &cand;
                break;
              }
            }
            if (first_edge == nullptr) first_edge = step;
            msg << from << " -> ";
            if (i + 1 == cycle.size()) msg << to;
            if (step != nullptr) {
              msg << " [" << step->via << " at " << step->file << ":"
                  << step->line << "] ";
            }
          }
          Finding f;
          f.rule = "lock-cycle";
          f.file = first_edge != nullptr ? first_edge->file : "";
          f.line = first_edge != nullptr ? first_edge->line : 0;
          f.message = msg.str();
          out->push_back(std::move(f));
          continue;
        }
        if (done.count(e->to) == 0) dfs(e->to);
      }
    }
    on_stack.erase(node);
    stack.pop_back();
    done.insert(node);
  };

  for (const auto& [node, edges] : adj) {
    (void)edges;
    if (done.count(node) == 0) dfs(node);
  }
}

void ProjectGraph::check_rank_order(std::vector<Finding>* out) const {
  for (const Edge& e : edges_) {
    const auto from_it = mutexes_.find(e.from);
    const auto to_it = mutexes_.find(e.to);
    if (from_it == mutexes_.end() || to_it == mutexes_.end()) continue;
    const auto from_rank = ranks_.find(from_it->second.rank);
    const auto to_rank = ranks_.find(to_it->second.rank);
    if (from_rank == ranks_.end() || to_rank == ranks_.end()) continue;
    if (from_rank->second < to_rank->second) continue;
    std::ostringstream msg;
    msg << "rank-order violation: " << e.to << " (" << to_it->second.rank
        << " = " << to_rank->second << ") acquired while holding " << e.from
        << " (" << from_it->second.rank << " = " << from_rank->second
        << ") in " << e.via << "; ranks must strictly increase";
    out->push_back(Finding{"rank-order", e.file, e.line, msg.str()});
  }
}

void ProjectGraph::check_unranked(std::vector<Finding>* out) const {
  for (const auto& [id, m] : mutexes_) {
    if (!m.rank.empty() && ranks_.count(m.rank) > 0) continue;
    std::ostringstream msg;
    if (m.rank.empty()) {
      msg << "annotated mutex " << id << " has no LockRank; every "
          << "AnnotatedMutex must name its place in the hierarchy "
          << "(src/common/lock_rank.h)";
    } else {
      msg << "annotated mutex " << id << " uses unknown rank " << m.rank;
    }
    out->push_back(Finding{"unranked-mutex", m.file, m.line, msg.str()});
  }
}

void ProjectGraph::check_blocking(std::vector<Finding>* out) const {
  for (const Function& fn : functions_) {
    for (std::size_t c = 0; c < fn.m.calls.size(); ++c) {
      const CallSite& call = fn.m.calls[c];
      if (call.in_lambda) continue;
      std::set<std::string> held(fn.requires_locks.begin(),
                                 fn.requires_locks.end());
      for (const int h : call.held) {
        if (!fn.site_locks[h].empty()) held.insert(fn.site_locks[h]);
      }
      // A cv wait through its own guard releases that lock while parked;
      // only *other* held locks make it a violation.
      if (call.wait_guard >= 0) {
        held.erase(fn.site_locks[call.wait_guard]);
        if (held.empty()) continue;
        std::ostringstream msg;
        msg << "condition wait in " << fn.qualified
            << " releases its own lock but still holds";
        for (const std::string& h : held) msg << " " << h;
        out->push_back(
            Finding{"blocking-under-lock", fn.m.file, call.line, msg.str()});
        continue;
      }
      if (held.empty()) continue;

      const bool primitive =
          (is_wait_name(call.callee) && !call.chain.empty()) ||
          is_sleep_name(call.callee) ||
          (call.callee == "join" && !call.chain.empty());
      std::string why;
      if (primitive) {
        why = call.callee + "() blocks the calling thread";
      } else {
        for (const std::size_t target : fn.call_targets[c]) {
          const Function& g = functions_[target];
          if (g.trans_blocking) {
            why = g.qualified +
                  (g.blocking_why.empty() ? std::string(" blocks")
                                          : " " + g.blocking_why);
            break;
          }
        }
        if (why.empty() && fn.call_targets[c].empty() &&
            distinctive_blocking_name(call.callee) && !call.chain.empty()) {
          why = call.callee + "() hands work to a thread pool";
        }
      }
      if (why.empty()) continue;
      std::ostringstream msg;
      msg << "blocking call in " << fn.qualified << " while holding";
      for (const std::string& h : held) msg << " " << h;
      msg << ": " << why;
      out->push_back(
          Finding{"blocking-under-lock", fn.m.file, call.line, msg.str()});
    }
  }
}

std::vector<Finding> ProjectGraph::analyze(
    const std::set<std::string>& rules) const {
  auto enabled = [&](const char* rule) {
    return rules.empty() || rules.count(rule) > 0;
  };
  std::vector<Finding> out;
  if (enabled("lock-cycle")) check_cycles(&out);
  if (enabled("rank-order")) check_rank_order(&out);
  if (enabled("unranked-mutex")) check_unranked(&out);
  if (enabled("blocking-under-lock")) check_blocking(&out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

std::string ProjectGraph::dump() const {
  std::ostringstream os;
  os << "# lock-acquisition graph: " << mutexes_.size() << " locks, "
     << edges_.size() << " edges\n";
  for (const auto& [id, m] : mutexes_) {
    os << "lock " << id;
    if (!m.rank.empty()) {
      os << " rank=" << m.rank;
      const auto it = ranks_.find(m.rank);
      if (it != ranks_.end()) os << "(" << it->second << ")";
    }
    if (m.shared) os << " shared";
    os << "  # " << m.file << ":" << m.line << "\n";
  }
  std::vector<const Edge*> sorted;
  for (const Edge& e : edges_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(), [](const Edge* a, const Edge* b) {
    return std::tie(a->from, a->to) < std::tie(b->from, b->to);
  });
  for (const Edge* e : sorted) {
    os << e->from << " -> " << e->to << "  # " << e->via << " at " << e->file
       << ":" << e->line << "\n";
  }
  return os.str();
}

}  // namespace s3lockcheck
