// Whole-project lock-acquisition graph for s3lockcheck.
//
// Merges per-file models (tools/s3lockcheck/model.h) into one project view,
// resolves lock expressions and call receivers to canonical lock / function
// identities, computes each function's transitive lock-acquisition set, and
// builds the directed held -> acquired graph. Four rule families run on top:
//
//   lock-cycle          a cycle in the acquisition graph (deadlock potential)
//   rank-order          an edge that contradicts the declared LockRank values
//   unranked-mutex      an AnnotatedMutex member without an explicit rank
//   blocking-under-lock a blocking operation (cv wait, pool submit/wait_idle,
//                       BlockStore I/O, joins, sleeps) reachable while a lock
//                       is held — the Algorithm 1 stall pattern the paper's
//                       shared-scan scheduler exists to avoid
//
// Resolution is deliberately tiered and conservative: a site that cannot be
// resolved to a known lock or function is dropped (no guessing), because a
// whole-tree gating check lives or dies on its false-positive rate.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "s3lockcheck/model.h"

namespace s3lockcheck {

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

// One directed edge: `from` was held when `to` was (or could transitively
// be) acquired. The witness records where that order was established.
struct Edge {
  std::string from;
  std::string to;
  std::string file;    // witness location
  int line = 0;
  std::string via;     // human-readable path, e.g. "LocalEngine::run_wave"
};

class ProjectGraph {
 public:
  explicit ProjectGraph(std::vector<FileModel> files);
  // Out of line: functions_ holds the private Function type, which is
  // incomplete for header clients.
  ~ProjectGraph();

  // Runs every rule in `rules` (empty set = all) and returns findings
  // sorted by file/line.
  std::vector<Finding> analyze(const std::set<std::string>& rules) const;

  // Debug dump of the merged graph (--graph): one edge per line.
  std::string dump() const;

  static const std::vector<std::string>& all_rules();

 private:
  struct Function;  // merged function (decls + defs across files)

  void build_indexes();
  void resolve_functions();
  void compute_transitive();
  void build_edges();

  // Lock-expression resolution (tiers documented in graph.cpp).
  std::string resolve_lock(const std::vector<std::string>& expr,
                           const Function& fn) const;
  std::string resolve_type(const std::string& name, const Function& fn) const;
  std::string class_for_type(const std::string& type) const;

  void check_cycles(std::vector<Finding>* out) const;
  void check_rank_order(std::vector<Finding>* out) const;
  void check_unranked(std::vector<Finding>* out) const;
  void check_blocking(std::vector<Finding>* out) const;

  std::vector<FileModel> files_;

  std::map<std::string, MutexDecl> mutexes_;       // id -> decl
  std::map<std::string, int> ranks_;               // enumerator -> value
  // class path -> member -> type, merged across files.
  std::map<std::string, std::map<std::string, std::string>> members_;
  std::set<std::string> classes_;                  // every known class path
  // mutex member name -> ids having that member ("mu" -> {...::mu, ...}).
  std::map<std::string, std::vector<std::string>> by_member_;
  // file stem ("trace") -> mutex ids declared in files with that stem.
  std::map<std::string, std::vector<std::string>> by_stem_;

  std::vector<Function> functions_;
  // "Class::name" (qualified display) -> function index.
  std::map<std::string, std::vector<std::size_t>> by_qualified_;
  // bare name -> function indices (for free-function / unreceivered calls).
  std::map<std::string, std::vector<std::size_t>> by_name_;

  std::vector<Edge> edges_;
};

}  // namespace s3lockcheck
