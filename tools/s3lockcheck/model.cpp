#include "s3lockcheck/model.h"

#include <algorithm>
#include <cctype>
#include <optional>

#include "s3lint/scope.h"

namespace s3lockcheck {
namespace {

using s3lint::TokKind;
using s3lint::Token;

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// Macro invocations look like ALL_CAPS identifiers; they never name a method
// or a lock and their argument lists must not be mistaken for call sites.
bool is_macro_name(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_upper = false;
  for (const char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_upper = true;
  }
  return has_upper;
}

bool is_guard_class(const std::string& s) {
  return s == "MutexLock" || s == "WriterMutexLock" || s == "ReaderMutexLock";
}

bool is_std_guard_class(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

// Type-position keywords to skip when hunting for the class-ish identifier
// of a declared type.
bool is_decl_qualifier(const std::string& s) {
  return s == "const" || s == "mutable" || s == "static" || s == "inline" ||
         s == "constexpr" || s == "volatile" || s == "typename" ||
         s == "unsigned" || s == "signed" || s == "explicit" ||
         s == "virtual" || s == "friend" || s == "using" || s == "extern";
}

// Skips a balanced (), [], or {} group starting at `i` (which must point at
// the opener). Returns the index one past the closer, or toks.size().
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i) {
  int paren = 0, brace = 0, bracket = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") ++paren;
    if (t.text == ")") --paren;
    if (t.text == "{") ++brace;
    if (t.text == "}") --brace;
    if (t.text == "[") ++bracket;
    if (t.text == "]") --bracket;
    if (paren == 0 && brace == 0 && bracket == 0) return i + 1;
  }
  return toks.size();
}

// Skips a template argument list starting at the `<`. Heuristic: `>` closes
// one level, `>>` closes two; gives up (returns start+1) if the list doesn't
// close within the statement.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "<") ++depth;
      if (t.text == ">") --depth;
      if (t.text == ">>") depth -= 2;
      if (t.text == ";" || t.text == "{") break;  // never spans a statement
      if (depth <= 0 && (t.text == ">" || t.text == ">>")) return j + 1;
    }
  }
  return i + 1;
}

struct HeaderParse {
  FunctionModel fn;
  std::size_t next = 0;   // index after the header (past `{` or `;`)
  bool has_body = false;  // header ended in `{`
};

// Parses the identifier arguments of an annotation macro like
// S3_REQUIRES(mu_) or S3_EXCLUDES(mu_, other_mu_); each top-level argument
// becomes its identifier chain joined with '.'.
void parse_annotation_args(const std::vector<Token>& toks, std::size_t open,
                           std::size_t close, std::vector<std::string>* out) {
  std::string cur;
  for (std::size_t j = open + 1; j < close; ++j) {
    if (is_ident(toks[j]) && !s3lint::is_keyword(toks[j].text)) {
      if (!cur.empty()) cur += '.';
      cur += toks[j].text;
    } else if (is_punct(toks[j], ",")) {
      if (!cur.empty()) out->push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) out->push_back(cur);
}

// Attempts to parse a function declaration or definition whose first token
// is at `start`. `class_path` is the enclosing class ("" at namespace
// scope). Returns nullopt when the statement is not recognizably a
// function.
std::optional<HeaderParse> parse_function(const std::vector<Token>& toks,
                                          std::size_t start,
                                          const std::string& class_path,
                                          const std::string& path) {
  // 1. Find "name (" with the name chain immediately before the paren.
  std::size_t i = start;
  std::size_t name_pos = 0;
  int angle = 0;
  bool found = false;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == ";" || t.text == "{" || t.text == "}" || t.text == "=")
        return std::nullopt;
      if (t.text == "<") ++angle;
      if (t.text == ">") angle = std::max(0, angle - 1);
      if (t.text == ">>") angle = std::max(0, angle - 2);
      if (t.text == "(" && angle == 0 && i > start && is_ident(toks[i - 1]) &&
          !s3lint::is_keyword(toks[i - 1].text)) {
        name_pos = i - 1;
        found = true;
        break;
      }
      // A paren not preceded by a plain identifier (function pointer,
      // parenthesized initializer): not a function we model.
      if (t.text == "(" && angle == 0) return std::nullopt;
    }
  }
  if (!found) return std::nullopt;
  const std::string& name = toks[name_pos].text;
  if (name == "operator" || is_macro_name(name) || is_guard_class(name)) {
    return std::nullopt;
  }

  FunctionModel fn;
  fn.name = name;
  fn.file = path;
  fn.line = toks[name_pos].line;
  // Qualified out-of-class definition: collect A::B before the name.
  std::string quals;
  for (std::size_t j = name_pos; j >= 2 && is_punct(toks[j - 1], "::") &&
                                 is_ident(toks[j - 2]);
       j -= 2) {
    quals = quals.empty() ? toks[j - 2].text : toks[j - 2].text + "::" + quals;
  }
  fn.class_name = !quals.empty() ? quals : class_path;
  if (is_punct(toks[name_pos >= 1 ? name_pos - 1 : 0], "~")) {
    fn.name = "~" + fn.name;  // destructor
  }
  fn.display =
      fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;

  // 2. Parameters.
  const std::size_t params_end = skip_balanced(toks, i);  // past ')'
  {
    std::vector<std::size_t> idents;
    int depth = 0;
    auto flush = [&] {
      if (idents.size() >= 2) {
        Param p;
        p.name = toks[idents.back()].text;
        p.type = toks[idents[idents.size() - 2]].text;
        fn.params.push_back(std::move(p));
      }
      idents.clear();
    };
    for (std::size_t j = i + 1; j + 1 < params_end; ++j) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") {
          j = skip_balanced(toks, j) - 1;
          continue;
        }
        if (t.text == "," && depth == 0) flush();
        if (t.text == "<") ++depth;
        if (t.text == ">") depth = std::max(0, depth - 1);
        if (t.text == ">>") depth = std::max(0, depth - 2);
        if (t.text == "=" && depth == 0) {
          // Default argument: the declarator is complete; skip the value.
          flush();
          while (j + 1 < params_end &&
                 !(is_punct(toks[j], ",") )) ++j;
          --j;
        }
      } else if (is_ident(t) && depth == 0 && !is_decl_qualifier(t.text) &&
                 !s3lint::is_keyword(t.text)) {
        idents.push_back(j);
      }
    }
    flush();
  }

  // 3. Qualifiers, annotations, trailing return, ctor init list.
  i = params_end;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_ident(t)) {
      if (t.text == "S3_REQUIRES" || t.text == "S3_REQUIRES_SHARED" ||
          t.text == "S3_EXCLUDES") {
        std::vector<std::string>* dst =
            t.text == "S3_EXCLUDES" ? &fn.excludes_args : &fn.requires_args;
        if (i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
          const std::size_t close = skip_balanced(toks, i + 1);
          parse_annotation_args(toks, i + 1, close - 1, dst);
          i = close;
          continue;
        }
      }
      // const / noexcept / override / final / other annotation macros.
      ++i;
      if (i < toks.size() && is_punct(toks[i], "(")) i = skip_balanced(toks, i);
      continue;
    }
    if (is_punct(t, "->")) {  // trailing return type
      ++i;
      while (i < toks.size() && !is_punct(toks[i], "{") &&
             !is_punct(toks[i], ";")) {
        if (is_punct(toks[i], "(")) {
          i = skip_balanced(toks, i);
        } else {
          ++i;
        }
      }
      continue;
    }
    if (is_punct(t, ":")) {  // ctor initializer list
      ++i;
      while (i < toks.size()) {
        while (i < toks.size() && !is_punct(toks[i], "(") &&
               !is_punct(toks[i], "{") && !is_punct(toks[i], ";")) {
          ++i;
        }
        if (i >= toks.size() || is_punct(toks[i], ";")) return std::nullopt;
        // Peek: a `{` directly after a complete initializer is the body.
        if (is_punct(toks[i], "{") && i >= 1 &&
            (is_punct(toks[i - 1], ")") || is_punct(toks[i - 1], "}"))) {
          break;
        }
        i = skip_balanced(toks, i);
        if (i < toks.size() && is_punct(toks[i], ",")) {
          ++i;
          continue;
        }
        break;
      }
      continue;
    }
    if (is_punct(t, "=")) {  // = default / = delete / pure virtual
      while (i < toks.size() && !is_punct(toks[i], ";")) ++i;
      continue;
    }
    if (is_punct(t, ";")) {
      HeaderParse out{std::move(fn), i + 1, false};
      return out;
    }
    if (is_punct(t, "{")) {
      HeaderParse out{std::move(fn), i + 1, true};
      out.fn.has_body = true;
      return out;
    }
    return std::nullopt;  // unexpected shape: bail out conservatively
  }
  return std::nullopt;
}

// The walker proper.
class Extractor {
 public:
  Extractor(const std::string& path, const std::vector<Token>& toks)
      : path_(path), toks_(toks) {
    fm_.path = path;
  }

  FileModel run() {
    walk_outer(0, toks_.size(), "");
    return std::move(fm_);
  }

 private:
  // --- Outer scopes: top level, namespaces, classes. -------------------

  // Walks [begin, end) at namespace/top scope.
  void walk_outer(std::size_t begin, std::size_t end,
                  const std::string& class_path) {
    std::size_t i = begin;
    while (i < end) {
      const Token& t = toks_[i];
      if (is_ident(t) && t.text == "template") {
        i = (i + 1 < end && is_punct(toks_[i + 1], "<"))
                ? skip_angles(toks_, i + 1)
                : i + 1;
        continue;
      }
      if (is_ident(t) && t.text == "namespace") {
        std::size_t j = i + 1;
        while (j < end && !is_punct(toks_[j], "{") && !is_punct(toks_[j], ";"))
          ++j;
        if (j < end && is_punct(toks_[j], "{")) {
          const std::size_t close = skip_balanced(toks_, j);
          walk_outer(j + 1, close - 1, class_path);
          i = close;
        } else {
          i = j + 1;
        }
        continue;
      }
      if (is_ident(t) && t.text == "enum") {
        i = parse_enum(i, end);
        continue;
      }
      if (is_ident(t) && (t.text == "class" || t.text == "struct")) {
        const std::size_t next = parse_class(i, end, class_path, nullptr);
        if (next != i) {
          i = next;
          continue;
        }
        // Forward declaration or elaborated type: fall through.
      }
      if (is_ident(t) &&
          (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
           t.text == "static_assert" || t.text == "extern")) {
        while (i < end && !is_punct(toks_[i], ";")) {
          if (is_punct(toks_[i], "{")) {
            i = skip_balanced(toks_, i);
            continue;
          }
          ++i;
        }
        ++i;
        continue;
      }
      if (is_ident(t) && (t.text == "public" || t.text == "private" ||
                          t.text == "protected")) {
        i += 2;  // "public" ":"
        continue;
      }
      if (t.kind == TokKind::kDirective || t.kind == TokKind::kString ||
          t.kind == TokKind::kNumber) {
        ++i;
        continue;
      }
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") {
          i = skip_balanced(toks_, i);  // stray block (e.g. extern "C")
        } else {
          ++i;
        }
        continue;
      }
      // Identifier: a declaration. Function or member/variable?
      i = parse_declaration(i, end, class_path);
    }
  }

  // Parses `enum [class] Name ... { ... };` starting at the `enum` token.
  // Harvests LockRank enumerator values. Returns index past the enum.
  std::size_t parse_enum(std::size_t i, std::size_t end) {
    std::size_t j = i + 1;
    if (j < end && is_ident(toks_[j]) &&
        (toks_[j].text == "class" || toks_[j].text == "struct")) {
      ++j;
    }
    std::string name;
    if (j < end && is_ident(toks_[j])) name = toks_[j].text;
    while (j < end && !is_punct(toks_[j], "{") && !is_punct(toks_[j], ";")) ++j;
    if (j >= end || is_punct(toks_[j], ";")) return j + 1;
    const std::size_t close = skip_balanced(toks_, j);
    if (name == "LockRank") {
      int next_value = 0;
      for (std::size_t k = j + 1; k + 1 < close; ++k) {
        if (!is_ident(toks_[k])) continue;
        const std::string& enumerator = toks_[k].text;
        int value = next_value;
        if (k + 2 < close && is_punct(toks_[k + 1], "=") &&
            toks_[k + 2].kind == TokKind::kNumber) {
          value = std::atoi(toks_[k + 2].text.c_str());
          k += 2;
        }
        fm_.rank_values[enumerator] = value;
        next_value = value + 1;
        while (k + 1 < close && !is_punct(toks_[k + 1], ",")) ++k;
      }
    }
    return close;
  }

  // Parses a class/struct definition starting at the class/struct keyword.
  // Returns the index past the closing `}` (and past a trailing declarator,
  // which is reported to `fn` as a local when given), or `i` unchanged when
  // this is not a definition (forward decl / elaborated type).
  std::size_t parse_class(std::size_t i, std::size_t end,
                          const std::string& outer, FunctionModel* fn) {
    std::size_t j = i + 1;
    if (j >= end || !is_ident(toks_[j])) return i;
    const std::string name = toks_[j].text;
    ++j;
    // Skip "final", base clause, attributes — up to `{` or `;`.
    while (j < end && !is_punct(toks_[j], "{") && !is_punct(toks_[j], ";") &&
           !is_punct(toks_[j], "(") && !is_punct(toks_[j], "=")) {
      if (is_punct(toks_[j], "<")) {
        j = skip_angles(toks_, j);
        continue;
      }
      ++j;
    }
    if (j >= end || !is_punct(toks_[j], "{")) return i;  // not a definition
    const std::string class_path = outer.empty() ? name : outer + "::" + name;
    const std::size_t close = skip_balanced(toks_, j);
    walk_outer(j + 1, close - 1, class_path);
    // `} var;` — a function-local struct instance.
    std::size_t k = close;
    if (fn != nullptr && k < end && is_ident(toks_[k]) &&
        !s3lint::is_keyword(toks_[k].text) && k + 1 < end &&
        (is_punct(toks_[k + 1], ";") || is_punct(toks_[k + 1], "{"))) {
      fn->locals.push_back({class_path, toks_[k].text});
    }
    while (k < end && !is_punct(toks_[k], ";")) ++k;
    return k + 1;
  }

  // Parses one declaration at class/namespace scope starting at `i`:
  // either a function (declaration or definition) or a data member.
  std::size_t parse_declaration(std::size_t i, std::size_t end,
                                const std::string& class_path) {
    if (auto parsed = parse_function(toks_, i, class_path, path_)) {
      FunctionModel fn = std::move(parsed->fn);
      std::size_t next = parsed->next;
      if (parsed->has_body) {
        const std::size_t body_end = find_close(next);
        walk_body(next, body_end, &fn);
        next = body_end + 1;
      }
      fm_.functions.push_back(std::move(fn));
      return next;
    }
    // Data member / variable: scan to `;`, balancing groups.
    std::size_t stmt_end = i;
    while (stmt_end < end && !is_punct(toks_[stmt_end], ";")) {
      if (is_punct(toks_[stmt_end], "{") || is_punct(toks_[stmt_end], "(") ||
          is_punct(toks_[stmt_end], "[")) {
        stmt_end = skip_balanced(toks_, stmt_end);
        continue;
      }
      ++stmt_end;
    }
    parse_member(i, stmt_end, class_path);
    return stmt_end + 1;
  }

  // Extracts the member name/type (and MutexDecl) from a data-member
  // statement spanning [i, stmt_end).
  void parse_member(std::size_t i, std::size_t stmt_end,
                    const std::string& class_path) {
    // Walk to the declarator boundary: `=`, brace-init, annotation macro,
    // or the `;`. The member name is the last top-level identifier before
    // the boundary; its type is the last class-ish identifier before that —
    // including template arguments, so `std::unique_ptr<WorkerQueue> q_`
    // records type WorkerQueue (what receiver resolution wants).
    std::vector<std::size_t> all;  // candidate type idents, any angle depth
    std::vector<std::size_t> top;  // angle-0 idents (declarator candidates)
    bool pointer_or_ref = false;
    std::size_t init_begin = stmt_end;
    int angle = 0;
    for (std::size_t j = i; j < stmt_end; ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "<") ++angle;
        if (t.text == ">") angle = std::max(0, angle - 1);
        if (t.text == ">>") angle = std::max(0, angle - 2);
        if (angle > 0) continue;
        if (t.text == "*" || t.text == "&") pointer_or_ref = true;
        if (t.text == "=" || t.text == "{") {
          init_begin = j;
          break;
        }
        continue;
      }
      if (!is_ident(t)) continue;
      if (angle == 0 && is_macro_name(t.text)) {
        init_begin = j;
        break;
      }
      if (is_macro_name(t.text) || is_decl_qualifier(t.text) ||
          s3lint::is_keyword(t.text) || t.text == "std") {
        continue;
      }
      all.push_back(j);
      if (angle == 0) top.push_back(j);
    }
    if (top.empty() || all.size() < 2) return;
    const std::size_t name_pos = top.back();
    const std::string member = toks_[name_pos].text;
    std::string type;
    for (const std::size_t j : all) {
      if (j < name_pos) type = toks_[j].text;
    }
    if (type.empty()) return;
    fm_.members[class_path][member] = type;
    if (!pointer_or_ref &&
        (type == "AnnotatedMutex" || type == "AnnotatedSharedMutex")) {
      MutexDecl m;
      m.class_name = class_path;
      m.member = member;
      m.id = class_path.empty() ? member : class_path + "::" + member;
      m.shared = type == "AnnotatedSharedMutex";
      m.file = path_;
      m.line = toks_[name_pos].line;
      // Rank: `{LockRank::kX}` or `= AnnotatedMutex(LockRank::kX)` style
      // initializers — find `LockRank :: ident` in the init tokens.
      for (std::size_t j = init_begin; j + 2 < stmt_end; ++j) {
        if (is_ident(toks_[j]) && toks_[j].text == "LockRank" &&
            is_punct(toks_[j + 1], "::") && is_ident(toks_[j + 2])) {
          m.rank = toks_[j + 2].text;
          break;
        }
      }
      fm_.mutexes.push_back(std::move(m));
    }
  }

  // --- Function bodies. ------------------------------------------------

  // Index of the `}` matching the `{` that precedes `body_begin`.
  std::size_t find_close(std::size_t body_begin) const {
    int depth = 1;
    for (std::size_t j = body_begin; j < toks_.size(); ++j) {
      if (is_punct(toks_[j], "{")) ++depth;
      if (is_punct(toks_[j], "}")) {
        if (--depth == 0) return j;
      }
    }
    return toks_.size();
  }

  struct ActiveGuard {
    int site = 0;   // index into fn->acquires
    int depth = 0;  // brace depth at declaration
    std::string var;
  };

  // Walks a function body in [begin, end) (end = matching `}`), recording
  // acquire/call sites into `fn`. `in_lambda` marks sites inside deferred
  // lambda bodies.
  void walk_body(std::size_t begin, std::size_t end, FunctionModel* fn,
                 bool in_lambda = false) {
    std::vector<ActiveGuard> active;
    int depth = 0;
    bool stmt_start = true;
    std::size_t i = begin;
    while (i < end) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") {
          ++depth;
          ++i;
          stmt_start = true;
          continue;
        }
        if (t.text == "}") {
          --depth;
          while (!active.empty() && active.back().depth > depth) {
            active.pop_back();
          }
          ++i;
          stmt_start = true;
          continue;
        }
        if (t.text == ";") {
          stmt_start = true;
          ++i;
          continue;
        }
        if (t.text == "[" && try_lambda(i, end, fn)) {
          // try_lambda advanced past the whole lambda body.
          i = lambda_next_;
          stmt_start = false;
          continue;
        }
        stmt_start = false;
        ++i;
        continue;
      }
      if (t.kind != TokKind::kIdent) {
        ++i;
        stmt_start = false;
        continue;
      }

      // Function-local struct/class definition.
      if ((t.text == "struct" || t.text == "class") && stmt_start) {
        const std::size_t next = parse_class(i, end, "", fn);
        if (next != i) {
          i = next;
          stmt_start = true;
          continue;
        }
      }

      // Project RAII guard: MutexLock lock(expr);
      if (is_guard_class(t.text) && i + 2 < end && is_ident(toks_[i + 1]) &&
          is_punct(toks_[i + 2], "(")) {
        const std::size_t close = skip_balanced(toks_, i + 2);
        AcquireSite site;
        site.var = toks_[i + 1].text;
        site.shared = t.text == "ReaderMutexLock";
        site.line = t.line;
        site.in_lambda = in_lambda;
        for (std::size_t j = i + 3; j + 1 < close; ++j) {
          if (is_ident(toks_[j]) && !s3lint::is_keyword(toks_[j].text)) {
            site.expr.push_back(toks_[j].text);
          }
        }
        for (const ActiveGuard& g : active) site.held.push_back(g.site);
        const int idx = static_cast<int>(fn->acquires.size());
        fn->acquires.push_back(std::move(site));
        active.push_back({idx, depth, toks_[i + 1].text});
        i = close;
        stmt_start = false;
        continue;
      }

      // std:: guard templates: std::lock_guard<...> g(expr);
      if (is_std_guard_class(t.text) && i >= 1 && is_punct(toks_[i - 1], "::")) {
        std::size_t j = i + 1;
        if (j < end && is_punct(toks_[j], "<")) j = skip_angles(toks_, j);
        if (j + 1 < end && is_ident(toks_[j]) && is_punct(toks_[j + 1], "(")) {
          const std::size_t close = skip_balanced(toks_, j + 1);
          AcquireSite site;
          site.var = toks_[j].text;
          site.shared = t.text == "shared_lock";
          site.line = t.line;
          site.in_lambda = in_lambda;
          for (std::size_t k = j + 2; k + 1 < close; ++k) {
            if (is_ident(toks_[k]) && !s3lint::is_keyword(toks_[k].text)) {
              site.expr.push_back(toks_[k].text);
            }
          }
          for (const ActiveGuard& g : active) site.held.push_back(g.site);
          const int idx = static_cast<int>(fn->acquires.size());
          fn->acquires.push_back(std::move(site));
          active.push_back({idx, depth, toks_[j].text});
          i = close;
          stmt_start = false;
          continue;
        }
      }

      // Local declaration (for receiver-type resolution). `auto` passes
      // through: try_local_decl resolves `auto& j = Foo::instance()`.
      if (stmt_start && !is_macro_name(t.text) &&
          (t.text == "auto" || !s3lint::is_keyword(t.text))) {
        try_local_decl(i, end, fn);
      }

      // Call site: ident followed by '('.
      if (i + 1 < end && is_punct(toks_[i + 1], "(") &&
          !s3lint::is_keyword(t.text) && !is_macro_name(t.text) &&
          !is_guard_class(t.text)) {
        CallSite site;
        site.callee = t.text;
        site.line = t.line;
        site.in_lambda = in_lambda;
        build_chain(i, begin, &site.chain);
        for (const ActiveGuard& g : active) site.held.push_back(g.site);
        // Mark own-guard cv waits so the graph can exempt the guard's lock.
        if ((t.text == "wait" || t.text == "wait_for" ||
             t.text == "wait_until") &&
            !site.chain.empty()) {
          for (const ActiveGuard& g : active) {
            if (g.var == site.chain.front()) {
              site.wait_guard = g.site;
              break;
            }
          }
        }
        fn->calls.push_back(std::move(site));
        i = i + 1;  // descend into the argument list for nested calls
        stmt_start = false;
        continue;
      }

      if (is_macro_name(t.text) && i + 1 < end && is_punct(toks_[i + 1], "(")) {
        i = skip_balanced(toks_, i + 1);  // macro invocation: opaque
        stmt_start = false;
        continue;
      }

      ++i;
      stmt_start = false;
    }
  }

  // Builds the receiver identifier chain for the call whose callee token is
  // at `pos`, walking backwards over `.`, `->`, `::`, subscripts, and
  // intermediate calls. `begin` bounds the walk.
  void build_chain(std::size_t pos, std::size_t begin,
                   std::vector<std::string>* chain) const {
    std::size_t j = pos;
    while (j > begin + 1) {
      const Token& sep = toks_[j - 1];
      if (!(is_punct(sep, ".") || is_punct(sep, "->") || is_punct(sep, "::")))
        break;
      std::size_t k = j - 2;
      // Skip balanced groups backwards: a[i]->, f()., etc.
      while (k > begin &&
             (is_punct(toks_[k], "]") || is_punct(toks_[k], ")"))) {
        const std::string closer = toks_[k].text;
        const char* open = closer == "]" ? "[" : "(";
        int d = 1;
        --k;
        while (k > begin && d > 0) {
          if (toks_[k].kind == TokKind::kPunct) {
            if (toks_[k].text == closer) ++d;
            if (toks_[k].text == open) --d;
          }
          if (d > 0) --k;
        }
        if (k > begin) --k;
      }
      if (!is_ident(toks_[k])) break;
      chain->insert(chain->begin(), toks_[k].text);
      j = k;
    }
  }

  // Recognizes `Type [&|*] name [=;({]` local declarations at statement
  // start; also resolves `auto& x = Foo::instance()` to Foo.
  void try_local_decl(std::size_t i, std::size_t end, FunctionModel* fn) {
    std::size_t j = i;
    std::vector<std::size_t> idents;
    while (j < end) {
      const Token& t = toks_[j];
      if (is_ident(t)) {
        if (s3lint::is_keyword(t.text) && t.text != "auto") return;
        if (!is_decl_qualifier(t.text)) idents.push_back(j);
        ++j;
        continue;
      }
      if (is_punct(t, "<")) {
        j = skip_angles(toks_, j);
        continue;
      }
      if (is_punct(t, "::") || is_punct(t, "&") || is_punct(t, "*")) {
        ++j;
        continue;
      }
      break;
    }
    if (j >= end || idents.size() < 2) return;
    if (!(is_punct(toks_[j], "=") || is_punct(toks_[j], ";") ||
          is_punct(toks_[j], "(") || is_punct(toks_[j], "{"))) {
      return;
    }
    LocalDecl d;
    d.name = toks_[idents.back()].text;
    d.type = toks_[idents[idents.size() - 2]].text;
    if (d.type == "auto" ||
        (idents.size() >= 2 && toks_[idents.front()].text == "auto")) {
      // auto& x = obs::EventJournal::instance(); -> type EventJournal.
      d.type.clear();
      for (std::size_t k = j; k < end && !is_punct(toks_[k], ";"); ++k) {
        if (is_ident(toks_[k]) && toks_[k].text == "instance" && k >= 2 &&
            is_punct(toks_[k - 1], "::") && is_ident(toks_[k - 2])) {
          d.type = toks_[k - 2].text;
          break;
        }
      }
      if (d.type.empty()) return;
    }
    fn->locals.push_back(std::move(d));
  }

  // Detects a lambda introducer at `[` (index i) and, when confirmed, walks
  // its body with a fresh held-set. Sets lambda_next_ past the body.
  bool try_lambda(std::size_t i, std::size_t end, FunctionModel* fn) {
    // `[` is a lambda intro unless it follows a value (subscript).
    if (i > 0) {
      const Token& prev = toks_[i - 1];
      if (is_ident(prev) && !s3lint::is_keyword(prev.text)) return false;
      if (prev.kind == TokKind::kPunct &&
          (prev.text == "]" || prev.text == ")")) {
        return false;
      }
    }
    std::size_t j = skip_balanced(toks_, i);  // past ']'
    if (j < end && is_punct(toks_[j], "(")) j = skip_balanced(toks_, j);
    while (j < end && is_ident(toks_[j]) &&
           (toks_[j].text == "mutable" || toks_[j].text == "noexcept" ||
            toks_[j].text == "constexpr")) {
      ++j;
    }
    if (j < end && is_punct(toks_[j], "->")) {
      while (j < end && !is_punct(toks_[j], "{") && !is_punct(toks_[j], ";") &&
             !is_punct(toks_[j], ",") && !is_punct(toks_[j], ")")) {
        ++j;
      }
    }
    if (j >= end || !is_punct(toks_[j], "{")) return false;
    const std::size_t body_end = find_close(j + 1);
    walk_body(j + 1, std::min(body_end, end), fn, /*in_lambda=*/true);
    lambda_next_ = std::min(body_end + 1, end);
    return true;
  }

  const std::string& path_;
  const std::vector<Token>& toks_;
  FileModel fm_;
  std::size_t lambda_next_ = 0;
};

}  // namespace

FileModel extract_model(const std::string& path,
                        const s3lint::TokenizedFile& file) {
  return Extractor(path, file.tokens).run();
}

}  // namespace s3lockcheck
