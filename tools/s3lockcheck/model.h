// Per-file structural model for s3lockcheck: which annotated mutexes exist,
// which class members have which types, and — for every function with a body
// — where locks are acquired, what calls are made while they are held, and
// where blocking operations occur.
//
// Built on s3lint's token stream (tools/s3lint/lexer.h): token-level, not a
// real C++ parse. The walker understands just enough structure (namespaces,
// classes incl. function-local structs, function headers with ctor init
// lists and annotation macros, lambdas, RAII guard declarations) to place
// every lock site in a lexical guard scope. Precision notes:
//  * Lock identity is name-based ("Class::member"), so two instances of the
//    same member (two shuffle buckets) are one node — which is exactly the
//    granularity a rank hierarchy needs.
//  * Lambda bodies start with an empty held-set (a deferred task does not
//    run under the locks its creator held at the submit site), and their
//    sites are flagged `in_lambda` so the graph layer can keep deferred
//    acquisitions out of the enclosing function's transitive summary —
//    worker-task bodies run on pool threads, not under the caller's locks.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "s3lint/lexer.h"

namespace s3lockcheck {

struct MutexDecl {
  std::string id;          // "LocalEngine::WaveCtx::mu"
  std::string class_name;  // "LocalEngine::WaveCtx"
  std::string member;      // "mu"
  bool shared = false;     // AnnotatedSharedMutex
  std::string rank;        // "kEngineWaveCtx"; empty = unranked
  std::string file;
  int line = 0;
};

// One RAII guard declaration (MutexLock / WriterMutexLock / ReaderMutexLock
// or a std::lock_guard-family template).
struct AcquireSite {
  std::string var;                 // guard variable name
  std::vector<std::string> expr;   // identifier chain of the lock expression
  bool shared = false;             // reader acquisition
  bool in_lambda = false;          // inside a deferred lambda body
  int line = 0;
  std::vector<int> held;  // indices (into FunctionModel::acquires) of guards
                          // lexically active when this one is declared
};

// A call (or blocking primitive) site inside a function body.
struct CallSite {
  std::string callee;               // identifier directly before '('
  std::vector<std::string> chain;   // receiver-chain identifiers, in order
  bool in_lambda = false;           // inside a deferred lambda body
  int line = 0;
  std::vector<int> held;            // active guard indices at the call
  // For wait/wait_for/wait_until whose receiver is a live guard variable:
  // the acquire-site index of that guard (its own lock is exempt from the
  // blocking-under-lock rule). -1 otherwise.
  int wait_guard = -1;
};

struct Param {
  std::string type;  // last class-ish identifier of the declared type
  std::string name;
};

struct LocalDecl {
  std::string type;
  std::string name;
};

struct FunctionModel {
  std::string class_name;  // "" for free functions
  std::string name;
  std::string display;     // "Class::name" or "name" (diagnostics)
  std::string file;
  int line = 0;
  bool has_body = false;
  std::vector<Param> params;
  // Raw identifier arguments of S3_REQUIRES(...) / S3_EXCLUDES(...) on the
  // declaration or definition. EXCLUDES names locks the function acquires
  // itself; REQUIRES names locks the caller already holds.
  std::vector<std::string> requires_args;
  std::vector<std::string> excludes_args;
  std::vector<AcquireSite> acquires;
  std::vector<CallSite> calls;
  std::vector<LocalDecl> locals;
};

struct FileModel {
  std::string path;
  std::vector<MutexDecl> mutexes;
  std::vector<FunctionModel> functions;
  // class path -> member name -> member type (last class-ish identifier).
  std::map<std::string, std::map<std::string, std::string>> members;
  // LockRank enumerator -> numeric value, when this file defines the enum.
  std::map<std::string, int> rank_values;
};

FileModel extract_model(const std::string& path,
                        const s3lint::TokenizedFile& file);

}  // namespace s3lockcheck
