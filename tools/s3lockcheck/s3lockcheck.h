// Driver for the whole-project lock-order analyzer. Collects every C++
// source under <root>/src, extracts per-file models, builds the project
// lock-acquisition graph, and reports findings in the same
// `path:line: error: [rule] message` format as s3lint (one tool-chain, one
// grep pattern). Exit codes match too: 0 clean, 1 findings, 2 usage/IO.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace s3lockcheck {

struct LockcheckOptions {
  std::string root = ".";        // project root (containing src/)
  std::set<std::string> rules;   // empty = all rules
  bool dump_graph = false;       // print the merged graph instead of checking
};

int run_lockcheck(const LockcheckOptions& options, std::string* output);

}  // namespace s3lockcheck
