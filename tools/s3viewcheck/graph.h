// Whole-project view-lifetime analysis over the per-file models. Merges
// class-member tables across translation units, computes conservative
// function summaries to a fixpoint (returns a KVBatch / returns a view of a
// batch parameter / invalidates a by-reference batch parameter), then sweeps
// every function body in lexical event order, tracking which named views are
// bound to which arena and which arenas have been invalidated since.
//
// Rules:
//   dangling-view       a view is used after its arena was cleared,
//                       prefaulted, moved from, reassigned, or invalidated
//                       through a callee
//   append-after-read   a view is used after a later append() to the same
//                       arena (growth may reallocate: the canonical S3
//                       hot-path hazard)
//   view-outlives-arena a view of a function-local batch escapes: returned,
//                       or stored into a class member / container member
//   cross-thread-view   a view bound outside a lambda is used inside a
//                       lambda submitted to a worker pool (the arena may be
//                       gone by the time the task runs)
//
// Resolution is deliberately drop-don't-guess: a receiver chain that cannot
// be traced to a KVBatch local, parameter, or class member produces no
// events and no findings. The runtime validator (common/view_checks.h)
// backstops what this layer cannot see.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "s3viewcheck/model.h"

namespace s3viewcheck {

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

class ProjectGraph {
 public:
  explicit ProjectGraph(std::vector<FileModel> files);
  ~ProjectGraph();

  // Runs the requested rules (names from all_rules()) over every function.
  // Findings are sorted by (file, line, rule) and deduplicated.
  std::vector<Finding> analyze(const std::set<std::string>& rules) const;

  // Human-readable dump of the merged model and summaries (--graph).
  void dump(std::ostream& os) const;

  static std::vector<std::string> all_rules();

 private:
  struct Summary {
    bool returns_batch = false;
    std::set<std::size_t> view_of_param;     // returns a view of param k
    std::set<std::size_t> invalidates_param; // mutates param k's arena
  };

  void build_indexes();
  void compute_summaries();
  const Summary* summary_for(const std::string& callee) const;
  const std::string* member_type(const std::string& class_path,
                                 const std::string& member) const;
  void analyze_function(const FunctionModel& fn,
                        const std::set<std::string>& rules,
                        std::vector<Finding>* out) const;

  std::vector<FileModel> files_;
  // class path -> member -> type, merged across files.
  std::map<std::string, std::map<std::string, std::string>> members_;
  // bare function name -> summary; only names defined exactly once project-
  // wide are summarized (ambiguous names resolve to nothing, not a guess).
  std::map<std::string, Summary> summaries_;
  std::map<std::string, const FunctionModel*> unique_fns_;
};

}  // namespace s3viewcheck
