// Driver for the whole-project arena/view lifetime analyzer. Collects every
// C++ source under <root>/src, extracts per-file models, builds the merged
// project view graph, and reports findings in the same
// `path:line: error: [rule] message` format as s3lint and s3lockcheck (one
// tool-chain, one grep pattern). Exit codes match too: 0 clean, 1 findings,
// 2 usage/IO.
#pragma once

#include <set>
#include <string>

namespace s3viewcheck {

struct ViewcheckOptions {
  std::string root = ".";       // project root (containing src/)
  std::set<std::string> rules;  // empty = all rules
  bool dump_graph = false;      // print the merged model instead of checking
};

int run_viewcheck(const ViewcheckOptions& options, std::string* output);

}  // namespace s3viewcheck
