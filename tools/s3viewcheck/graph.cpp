#include "s3viewcheck/graph.h"

#include <algorithm>
#include <optional>
#include <ostream>

namespace s3viewcheck {
namespace {

// Classes whose members ARE the arena machinery: their own method bodies
// legitimately touch arena state with views in flight.
bool is_exempt_class(const std::string& class_path) {
  const std::size_t pos = class_path.rfind("::");
  const std::string last =
      pos == std::string::npos ? class_path : class_path.substr(pos + 2);
  return last == "KVBatch" || last == "DebugView" || last == "ArenaStamp";
}

bool is_batch_type(const std::string& t) { return t == "KVBatch"; }

// Callees that copy the bytes out (or reduce the view to a scalar): a local
// initialized through one of these holds no arena pointer, so a view-source
// call in the same initializer must not bind.
bool is_copy_breaker(const std::string& callee) {
  return callee == "string" || callee == "to_string" || callee == "stoull" ||
         callee == "stoul" || callee == "stoll" || callee == "stol" ||
         callee == "stoi" || callee == "stod" || callee == "stof" ||
         callee == "size" || callee == "length" || callee == "empty" ||
         callee == "compare" || callee == "count" || callee == "hash" ||
         callee == "atoi" || callee == "strtoull" || callee == "find";
}

bool is_container_store(const std::string& callee) {
  return callee == "push_back" || callee == "emplace_back" ||
         callee == "insert" || callee == "push" || callee == "emplace";
}

struct Arena {
  enum class Kind { kLocal, kParam, kMember, kBorrowed };
  std::string id;  // identity for invalidation matching ("run", "ctx.batch")
  Kind kind = Kind::kLocal;
};

struct TrackedView {
  Arena arena;
  int bind_seq = 0;
  int bind_stmt = 0;
  int bind_line = 0;
  int bind_lambda = -1;
  std::string via;  // "KVBatch::key", "borrowed parameter", "wrapper()"
  bool active = false;
};

struct Invalidation {
  std::string arena_id;
  int seq = 0;
  int line = 0;
  bool is_append = false;
  std::string why;  // "clear()", "std::move", "call to f() which ..."
};

}  // namespace

ProjectGraph::ProjectGraph(std::vector<FileModel> files)
    : files_(std::move(files)) {
  build_indexes();
  compute_summaries();
}

ProjectGraph::~ProjectGraph() = default;

std::vector<std::string> ProjectGraph::all_rules() {
  return {"dangling-view", "append-after-read", "view-outlives-arena",
          "cross-thread-view"};
}

void ProjectGraph::build_indexes() {
  for (const FileModel& fm : files_) {
    for (const auto& [cls, members] : fm.members) {
      for (const auto& [name, type] : members) {
        members_[cls].emplace(name, type);
      }
    }
  }
  // Bare-name function index; names with multiple bodies are ambiguous and
  // excluded (a declaration plus its single definition does not conflict).
  std::map<std::string, int> body_count;
  for (const FileModel& fm : files_) {
    for (const FunctionModel& fn : fm.functions) {
      if (!fn.has_body) continue;
      ++body_count[fn.name];
      unique_fns_[fn.name] = &fn;
    }
  }
  for (const auto& [name, count] : body_count) {
    if (count > 1) unique_fns_.erase(name);
  }
}

const std::string* ProjectGraph::member_type(const std::string& class_path,
                                             const std::string& member) const {
  auto cit = members_.find(class_path);
  if (cit == members_.end()) return nullptr;
  auto mit = cit->second.find(member);
  return mit == cit->second.end() ? nullptr : &mit->second;
}

const ProjectGraph::Summary* ProjectGraph::summary_for(
    const std::string& callee) const {
  auto it = summaries_.find(callee);
  return it == summaries_.end() ? nullptr : &it->second;
}

void ProjectGraph::compute_summaries() {
  // Seed: declared return types, direct parameter invalidations, and direct
  // return-a-view-of-a-batch-parameter shapes.
  for (const auto& [name, fn] : unique_fns_) {
    Summary s;
    s.returns_batch = is_batch_type(fn->return_type);
    std::map<std::string, std::size_t> param_index;
    for (std::size_t k = 0; k < fn->params.size(); ++k) {
      param_index[fn->params[k].name] = k;
    }
    auto batch_param = [&](const std::string& ident) -> std::optional<std::size_t> {
      auto it = param_index.find(ident);
      if (it == param_index.end()) return std::nullopt;
      if (!is_batch_type(fn->params[it->second].type)) return std::nullopt;
      return it->second;
    };
    for (const CallSite& c : fn->calls) {
      if ((c.callee == "append" || c.callee == "clear" ||
           c.callee == "prefault") &&
          c.chain.size() == 1) {
        if (auto k = batch_param(c.chain[0])) s.invalidates_param.insert(*k);
      }
      for (std::size_t a = 0; a < c.args.size(); ++a) {
        if (c.moved[a]) {
          if (auto k = batch_param(c.args[a])) s.invalidates_param.insert(*k);
        }
      }
      if (c.callee == "move" && c.chain.size() == 1 && c.chain[0] == "std") {
        for (const std::string& arg : c.args) {
          if (auto k = batch_param(arg)) s.invalidates_param.insert(*k);
        }
      }
      if ((c.callee == "key" || c.callee == "value") &&
          c.bound_to == "<return>" && c.chain.size() == 1) {
        if (auto k = batch_param(c.chain[0])) s.view_of_param.insert(*k);
      }
    }
    for (const Event& ev : fn->events) {
      if (ev.kind == EventKind::kAssign) {
        if (auto k = batch_param(ev.view)) s.invalidates_param.insert(*k);
      }
    }
    summaries_[name] = s;
  }
  // Propagate invalidation through calls: passing our batch parameter to a
  // callee that invalidates that position invalidates ours too.
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 16) {
    changed = false;
    for (const auto& [name, fn] : unique_fns_) {
      Summary& s = summaries_[name];
      std::map<std::string, std::size_t> param_index;
      for (std::size_t k = 0; k < fn->params.size(); ++k) {
        param_index[fn->params[k].name] = k;
      }
      for (const CallSite& c : fn->calls) {
        const Summary* callee = summary_for(c.callee);
        if (callee == nullptr || callee->invalidates_param.empty()) continue;
        for (const std::size_t k : callee->invalidates_param) {
          if (k >= c.args.size()) continue;
          auto it = param_index.find(c.args[k]);
          if (it == param_index.end()) continue;
          if (!is_batch_type(fn->params[it->second].type)) continue;
          if (s.invalidates_param.insert(it->second).second) changed = true;
        }
      }
    }
  }
}

void ProjectGraph::analyze_function(const FunctionModel& fn,
                                    const std::set<std::string>& rules,
                                    std::vector<Finding>* out) const {
  if (!fn.has_body || is_exempt_class(fn.class_name)) return;

  // --- Name resolution tables. ---------------------------------------
  std::map<std::string, std::string> local_type;
  for (const LocalDecl& d : fn.locals) local_type[d.name] = d.type;
  // auto locals initialized from a batch-returning call are batch locals.
  for (const CallSite& c : fn.calls) {
    if (c.bound_to.empty() || c.bound_type != "auto") continue;
    const Summary* s = summary_for(c.callee);
    const bool acquires = c.callee == "acquire";  // BatchArenaPool::acquire
    if ((s != nullptr && s->returns_batch) || acquires) {
      auto it = local_type.find(c.bound_to);
      if (it != local_type.end() && it->second == "auto") {
        it->second = "KVBatch";
      }
    }
  }
  std::map<std::string, std::string> param_type;
  std::map<std::string, std::size_t> param_index;
  for (std::size_t k = 0; k < fn.params.size(); ++k) {
    param_type[fn.params[k].name] = fn.params[k].type;
    param_index[fn.params[k].name] = k;
  }

  // Resolves an identifier chain to an arena identity iff it denotes a
  // KVBatch reachable as local / parameter / own-class member (possibly
  // through typed intermediate members). Unknown => nullopt, no finding.
  auto resolve_arena = [&](const std::vector<std::string>& chain)
      -> std::optional<Arena> {
    if (chain.empty()) return std::nullopt;
    std::string type;
    Arena arena;
    if (auto it = local_type.find(chain[0]); it != local_type.end()) {
      type = it->second;
      arena.kind = Arena::Kind::kLocal;
      arena.id = chain[0];
    } else if (auto pit = param_type.find(chain[0]); pit != param_type.end()) {
      type = pit->second;
      arena.kind = Arena::Kind::kParam;
      arena.id = chain[0];
    } else if (const std::string* mt = member_type(fn.class_name, chain[0])) {
      type = *mt;
      arena.kind = Arena::Kind::kMember;
      arena.id = fn.class_name + "::" + chain[0];
    } else {
      return std::nullopt;
    }
    for (std::size_t i = 1; i < chain.size(); ++i) {
      const std::string* mt = member_type(type, chain[i]);
      if (mt == nullptr) return std::nullopt;
      type = *mt;
      if (arena.kind == Arena::Kind::kLocal) {
        // A batch inside a local aggregate dies with the scope, but chained
        // identity is too easy to alias; demote to member-ish (no escape
        // findings), keep the id for invalidation matching.
        arena.kind = Arena::Kind::kMember;
      }
      arena.id += "." + chain[i];
    }
    if (!is_batch_type(type)) return std::nullopt;
    return arena;
  };

  // --- Copy-breaker statements: (stmt, bound_to) pairs whose initializer
  // pipes the view through a byte-copying / scalar-producing call. ------
  std::set<std::pair<int, std::string>> breakers;
  for (const CallSite& c : fn.calls) {
    if (!c.bound_to.empty() && is_copy_breaker(c.callee)) {
      breakers.insert({c.stmt, c.bound_to});
    }
  }
  auto broken = [&](int stmt, const std::string& bound_to) {
    return breakers.count({stmt, bound_to}) != 0;
  };

  std::map<int, bool> lambda_submitted;
  for (const LambdaInfo& l : fn.lambdas) lambda_submitted[l.id] = l.submitted;

  // --- Merge events and calls into one lexical stream. -----------------
  struct Step {
    int seq;
    const Event* ev = nullptr;
    const CallSite* call = nullptr;
  };
  std::vector<Step> steps;
  steps.reserve(fn.events.size() + fn.calls.size());
  for (const Event& ev : fn.events) steps.push_back({ev.seq, &ev, nullptr});
  for (const CallSite& c : fn.calls) steps.push_back({c.seq, nullptr, &c});
  std::sort(steps.begin(), steps.end(),
            [](const Step& a, const Step& b) { return a.seq < b.seq; });

  std::map<std::string, TrackedView> views;
  std::vector<Invalidation> invals;
  std::set<std::string> reported;  // dedup key per finding

  auto report = [&](const std::string& rule, int line,
                    const std::string& message) {
    if (rules.count(rule) == 0) return;
    const std::string key = rule + "|" + std::to_string(line) + "|" + message;
    if (!reported.insert(key).second) return;
    out->push_back({rule, fn.file, line, message});
  };

  auto arena_phrase = [&](const Arena& a) {
    switch (a.kind) {
      case Arena::Kind::kLocal: return "local batch '" + a.id + "'";
      case Arena::Kind::kParam: return "batch parameter '" + a.id + "'";
      case Arena::Kind::kMember: return "batch '" + a.id + "'";
      case Arena::Kind::kBorrowed:
        return "borrowed view parameter" + std::string();
    }
    return std::string("batch");
  };

  auto bind_view = [&](const std::string& name, const Arena& arena,
                       const CallSite& c, const std::string& via) {
    TrackedView tv;
    tv.arena = arena;
    tv.bind_seq = c.seq;
    tv.bind_stmt = c.stmt;
    tv.bind_line = c.line;
    tv.bind_lambda = c.lambda;
    tv.via = via;
    tv.active = true;
    views[name] = tv;
  };

  auto invalidate = [&](const std::string& id, int seq, int line,
                        bool is_append, const std::string& why) {
    invals.push_back({id, seq, line, is_append, why});
  };

  // Checks a read of view `name` at (seq, line): dangling / append-after-
  // read / cross-thread, in that priority order per invalidation.
  auto check_use = [&](const std::string& name, int seq, int line,
                       int lambda) {
    auto it = views.find(name);
    if (it == views.end() || !it->second.active) return;
    const TrackedView& tv = it->second;
    for (const Invalidation& inv : invals) {
      if (inv.arena_id != tv.arena.id) continue;
      if (inv.seq <= tv.bind_seq || inv.seq >= seq) continue;
      const std::string rule =
          inv.is_append ? "append-after-read" : "dangling-view";
      report(rule, line,
             "view '" + name + "' (bound to " + arena_phrase(tv.arena) +
                 " at line " + std::to_string(tv.bind_line) + " via " +
                 tv.via + ") is read after the arena was invalidated by " +
                 inv.why + " at line " + std::to_string(inv.line) +
                 "; re-fetch the view after any arena mutation");
      break;
    }
    if (lambda >= 0 && lambda_submitted[lambda] && tv.bind_lambda != lambda) {
      report("cross-thread-view", line,
             "view '" + name + "' (bound to " + arena_phrase(tv.arena) +
                 " at line " + std::to_string(tv.bind_line) + " via " +
                 tv.via +
                 ") is captured by a lambda submitted to a worker pool; the"
                 " arena may be mutated or destroyed before the task runs —"
                 " copy the bytes (std::string) into the task instead");
    }
  };

  for (const Step& step : steps) {
    if (step.call != nullptr) {
      const CallSite& c = *step.call;
      // 1. View sources: KVBatch::key/value on a resolvable batch chain.
      if ((c.callee == "key" || c.callee == "value") && !c.chain.empty()) {
        if (auto arena = resolve_arena(c.chain)) {
          const std::string via = "KVBatch::" + c.callee;
          if (c.bound_to == "<return>") {
            if (arena->kind == Arena::Kind::kLocal &&
                !broken(c.stmt, "<return>")) {
              report("view-outlives-arena", c.line,
                     "returning a view of " + arena_phrase(*arena) +
                         " from '" + fn.display +
                         "'; the arena dies with the scope — return a "
                         "std::string copy or hand the batch out too");
            }
          } else if (c.bound_to.rfind("<store:", 0) == 0) {
            const std::string target =
                c.bound_to.substr(7, c.bound_to.size() - 8);
            report("view-outlives-arena", c.line,
                   "storing a view of " + arena_phrase(*arena) +
                       " into '" + target +
                       "', which outlives the statement; store a "
                       "std::string copy instead");
          } else if (!c.bound_to.empty() && !broken(c.stmt, c.bound_to)) {
            bind_view(c.bound_to, *arena, c, via);
          }
        }
      }
      // 2. Summary-resolved view sources: wrapper returning view of arg k.
      if (const Summary* s = summary_for(c.callee)) {
        if (!s->view_of_param.empty() && !c.bound_to.empty() &&
            c.bound_to[0] != '<' && !broken(c.stmt, c.bound_to)) {
          for (const std::size_t k : s->view_of_param) {
            if (k >= c.args.size()) continue;
            if (auto arena = resolve_arena({c.args[k]})) {
              bind_view(c.bound_to, *arena, c, c.callee + "()");
            }
          }
        }
        // 3a. Callee-mediated invalidation of a batch argument.
        for (const std::size_t k : s->invalidates_param) {
          if (k >= c.args.size()) continue;
          if (auto arena = resolve_arena({c.args[k]})) {
            invalidate(arena->id, c.seq, c.line, false,
                       "the call to " + c.callee +
                           "(), which mutates that batch");
          }
        }
      }
      // 3b. Direct invalidations.
      if ((c.callee == "clear" || c.callee == "prefault") &&
          !c.chain.empty()) {
        if (auto arena = resolve_arena(c.chain)) {
          invalidate(arena->id, c.seq, c.line, false, c.callee + "()");
        }
      }
      if (c.callee == "append" && !c.chain.empty()) {
        if (auto arena = resolve_arena(c.chain)) {
          invalidate(arena->id, c.seq, c.line, true,
                     "append() (growth may reallocate the arena)");
        }
      }
      for (std::size_t a = 0; a < c.args.size(); ++a) {
        if (!c.moved[a]) continue;
        if (auto arena = resolve_arena({c.args[a]})) {
          invalidate(arena->id, c.seq, c.line, false, "std::move");
        }
      }
      if (c.callee == "move" && c.chain.size() == 1 && c.chain[0] == "std") {
        for (const std::string& arg : c.args) {
          if (auto arena = resolve_arena({arg})) {
            invalidate(arena->id, c.seq, c.line, false, "std::move");
          }
        }
      }
      // 4. Container stores into members: bucket_.push_back(view).
      if (is_container_store(c.callee) && c.chain.size() == 1 &&
          member_type(fn.class_name, c.chain[0]) != nullptr) {
        for (std::size_t a = 0; a < c.args.size(); ++a) {
          if (!c.lone[a]) continue;
          auto it = views.find(c.args[a]);
          if (it == views.end() || !it->second.active) continue;
          report("view-outlives-arena", c.line,
                 "view '" + c.args[a] + "' (bound to " +
                     arena_phrase(it->second.arena) + " at line " +
                     std::to_string(it->second.bind_line) +
                     ") is stored into member container '" + c.chain[0] +
                     "', which outlives the view; store a std::string copy");
        }
      }
      // A tracked view used as a call receiver (v.substr(...)) reads it.
      if (!c.chain.empty()) {
        auto it = views.find(c.chain[0]);
        if (it != views.end()) {
          check_use(c.chain[0], c.seq, c.line, c.lambda);
        }
      }
      continue;
    }

    const Event& ev = *step.ev;
    switch (ev.kind) {
      case EventKind::kBind: {
        // Borrowed view parameter: valid only for the call's duration.
        TrackedView tv;
        tv.arena.kind = Arena::Kind::kBorrowed;
        tv.arena.id = ev.batch;
        tv.bind_seq = ev.seq;
        tv.bind_stmt = ev.stmt;
        tv.bind_line = ev.line;
        tv.bind_lambda = ev.lambda;
        tv.via = ev.via;
        tv.active = true;
        views[ev.view] = tv;
        break;
      }
      case EventKind::kUse:
        check_use(ev.view, ev.seq, ev.line, ev.lambda);
        break;
      case EventKind::kReturn: {
        if (ev.view.empty()) break;
        check_use(ev.view, ev.seq, ev.line, ev.lambda);
        auto it = views.find(ev.view);
        if (it != views.end() && it->second.active &&
            it->second.arena.kind == Arena::Kind::kLocal &&
            !broken(ev.stmt, "<return>")) {
          report("view-outlives-arena", ev.line,
                 "returning view '" + ev.view + "' of " +
                     arena_phrase(it->second.arena) + " from '" + fn.display +
                     "'; the arena dies with the scope — return a "
                     "std::string copy or hand the batch out too");
        }
        break;
      }
      case EventKind::kAssign: {
        auto it = views.find(ev.view);
        if (it != views.end()) it->second.active = false;  // rebind follows
        if (auto arena = resolve_arena({ev.view})) {
          invalidate(arena->id, ev.seq, ev.line, false, "reassignment");
        }
        break;
      }
      case EventKind::kMemberStore: {
        if (ev.view.empty()) break;  // direct-call form handled at the call
        auto it = views.find(ev.view);
        if (it == views.end() || !it->second.active) break;
        report("view-outlives-arena", ev.line,
               "view '" + ev.view + "' (bound to " +
                   arena_phrase(it->second.arena) + " at line " +
                   std::to_string(it->second.bind_line) +
                   ") is stored into '" + ev.via +
                   "', which outlives the view; store a std::string copy");
        break;
      }
    }
  }
}

std::vector<Finding> ProjectGraph::analyze(
    const std::set<std::string>& rules) const {
  std::vector<Finding> out;
  for (const FileModel& fm : files_) {
    for (const FunctionModel& fn : fm.functions) {
      analyze_function(fn, rules, &out);
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

void ProjectGraph::dump(std::ostream& os) const {
  os << "== class members (merged) ==\n";
  for (const auto& [cls, members] : members_) {
    for (const auto& [name, type] : members) {
      os << "  " << cls << "::" << name << " : " << type << "\n";
    }
  }
  os << "== function summaries ==\n";
  for (const auto& [name, s] : summaries_) {
    if (!s.returns_batch && s.view_of_param.empty() &&
        s.invalidates_param.empty()) {
      continue;
    }
    os << "  " << name << ":";
    if (s.returns_batch) os << " returns-batch";
    for (const std::size_t k : s.view_of_param) {
      os << " view-of-param(" << k << ")";
    }
    for (const std::size_t k : s.invalidates_param) {
      os << " invalidates-param(" << k << ")";
    }
    os << "\n";
  }
  os << "== functions ==\n";
  for (const FileModel& fm : files_) {
    for (const FunctionModel& fn : fm.functions) {
      if (!fn.has_body) continue;
      os << "  " << fn.display << " (" << fn.file << ":" << fn.line << ")";
      if (is_exempt_class(fn.class_name)) os << " [exempt]";
      os << "\n";
      for (const Param& p : fn.params) {
        os << "    param " << p.name << " : " << p.type << "\n";
      }
      for (const LocalDecl& d : fn.locals) {
        os << "    local " << d.name << " : " << d.type << "\n";
      }
      for (const LambdaInfo& l : fn.lambdas) {
        os << "    lambda #" << l.id << " at line " << l.line
           << (l.submitted ? " [submitted]" : "") << "\n";
      }
      for (const CallSite& c : fn.calls) {
        os << "    call ";
        for (const std::string& link : c.chain) os << link << ".";
        os << c.callee << " line " << c.line;
        if (!c.bound_to.empty()) os << " -> " << c.bound_to;
        os << "\n";
      }
      for (const Event& ev : fn.events) {
        const char* kind = "?";
        switch (ev.kind) {
          case EventKind::kBind: kind = "bind"; break;
          case EventKind::kUse: kind = "use"; break;
          case EventKind::kAssign: kind = "assign"; break;
          case EventKind::kReturn: kind = "return"; break;
          case EventKind::kMemberStore: kind = "member-store"; break;
        }
        os << "    event " << kind << " '" << ev.view << "' line " << ev.line;
        if (!ev.batch.empty()) os << " arena " << ev.batch;
        if (!ev.via.empty()) os << " via " << ev.via;
        if (ev.lambda >= 0) os << " lambda#" << ev.lambda;
        os << "\n";
      }
    }
  }
}

}  // namespace s3viewcheck
