// Command-line entry point for s3viewcheck.
//
//   s3viewcheck [--root=DIR] [--rules=a,b] [--graph]
//
// Analyzes every C++ file under DIR/src for arena-backed view lifetime
// hazards: views read after the backing KVBatch arena was cleared, moved,
// prefaulted, or grown by append; views escaping their arena's scope through
// returns or member stores; and views captured by tasks submitted to worker
// pools. Exit 0 = clean, 1 = findings, 2 = usage or I/O error.
#include <cstdio>
#include <string>

#include "s3viewcheck/graph.h"
#include "s3viewcheck/s3viewcheck.h"

namespace {

void usage() {
  std::fputs(
      "usage: s3viewcheck [--root=DIR] [--rules=a,b] [--graph]\n"
      "\n"
      "Whole-project arena/view lifetime and escape analysis.\n"
      "  --root=DIR    project root containing src/ (default: .)\n"
      "  --rules=a,b   run only the named rules\n"
      "  --graph       dump the merged view/arena model and exit\n"
      "\n"
      "rules:\n",
      stderr);
  for (const std::string& rule : s3viewcheck::ProjectGraph::all_rules()) {
    std::fprintf(stderr, "  %s\n", rule.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  s3viewcheck::ViewcheckOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      options.root = arg.substr(7);
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::string cur;
      for (const char c : arg.substr(8) + ",") {
        if (c == ',') {
          if (!cur.empty()) options.rules.insert(cur);
          cur.clear();
        } else {
          cur.push_back(c);
        }
      }
    } else if (arg == "--graph") {
      options.dump_graph = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "s3viewcheck: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  std::string output;
  const int rc = s3viewcheck::run_viewcheck(options, &output);
  std::fputs(output.c_str(), stdout);
  return rc;
}
