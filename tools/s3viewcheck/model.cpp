#include "s3viewcheck/model.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <set>

#include "s3lint/scope.h"

namespace s3viewcheck {
namespace {

using s3lint::TokKind;
using s3lint::Token;

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// Macro invocations look like ALL_CAPS identifiers; they never name a view,
// a batch, or a method, and their argument lists are opaque.
bool is_macro_name(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_upper = false;
  for (const char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_upper = true;
  }
  return has_upper;
}

bool is_decl_qualifier(const std::string& s) {
  return s == "const" || s == "mutable" || s == "static" || s == "inline" ||
         s == "constexpr" || s == "volatile" || s == "typename" ||
         s == "unsigned" || s == "signed" || s == "explicit" ||
         s == "virtual" || s == "friend" || s == "using" || s == "extern";
}

bool is_view_type(const std::string& t) {
  return t == "string_view" || t == "ArenaView" || t == "DebugView" ||
         t == "basic_string_view";
}

// Skips a balanced (), [], or {} group starting at `i` (which must point at
// the opener). Returns the index one past the closer, or toks.size().
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i) {
  int paren = 0, brace = 0, bracket = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") ++paren;
    if (t.text == ")") --paren;
    if (t.text == "{") ++brace;
    if (t.text == "}") --brace;
    if (t.text == "[") ++bracket;
    if (t.text == "]") --bracket;
    if (paren == 0 && brace == 0 && bracket == 0) return i + 1;
  }
  return toks.size();
}

// Skips a template argument list starting at the `<`. Heuristic: `>` closes
// one level, `>>` closes two; gives up (returns start+1) if the list doesn't
// close within the statement.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "<") ++depth;
      if (t.text == ">") --depth;
      if (t.text == ">>") depth -= 2;
      if (t.text == ";" || t.text == "{") break;  // never spans a statement
      if (depth <= 0 && (t.text == ">" || t.text == ">>")) return j + 1;
    }
  }
  return i + 1;
}

struct HeaderParse {
  FunctionModel fn;
  std::size_t next = 0;   // index after the header (past `{` or `;`)
  bool has_body = false;  // header ended in `{`
};

// Attempts to parse a function declaration or definition whose first token
// is at `start` (same discipline as s3lockcheck's header parser, plus
// return-type capture). Returns nullopt when the statement is not
// recognizably a function.
std::optional<HeaderParse> parse_function(const std::vector<Token>& toks,
                                          std::size_t start,
                                          const std::string& class_path,
                                          const std::string& path) {
  // 1. Find "name (" with the name chain immediately before the paren.
  std::size_t i = start;
  std::size_t name_pos = 0;
  int angle = 0;
  bool found = false;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == ";" || t.text == "{" || t.text == "}" || t.text == "=")
        return std::nullopt;
      if (t.text == "<") ++angle;
      if (t.text == ">") angle = std::max(0, angle - 1);
      if (t.text == ">>") angle = std::max(0, angle - 2);
      if (t.text == "(" && angle == 0 && i > start && is_ident(toks[i - 1]) &&
          !s3lint::is_keyword(toks[i - 1].text)) {
        name_pos = i - 1;
        found = true;
        break;
      }
      if (t.text == "(" && angle == 0) return std::nullopt;
    }
  }
  if (!found) return std::nullopt;
  const std::string& name = toks[name_pos].text;
  if (name == "operator" || is_macro_name(name)) return std::nullopt;

  FunctionModel fn;
  fn.name = name;
  fn.file = path;
  fn.line = toks[name_pos].line;
  // Qualified out-of-class definition: collect A::B before the name.
  std::string quals;
  std::size_t qual_begin = name_pos;
  for (std::size_t j = name_pos; j >= 2 && is_punct(toks[j - 1], "::") &&
                                 is_ident(toks[j - 2]);
       j -= 2) {
    quals = quals.empty() ? toks[j - 2].text : toks[j - 2].text + "::" + quals;
    qual_begin = j - 2;
  }
  fn.class_name = !quals.empty() ? quals : class_path;
  if (is_punct(toks[name_pos >= 1 ? name_pos - 1 : 0], "~")) {
    fn.name = "~" + fn.name;  // destructor
  }
  fn.display =
      fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
  // Return type: last class-ish identifier before the (qualified) name.
  for (std::size_t j = start; j < qual_begin; ++j) {
    const Token& t = toks[j];
    if (is_ident(t) && !is_decl_qualifier(t.text) && !is_macro_name(t.text) &&
        !s3lint::is_keyword(t.text) && t.text != "std") {
      fn.return_type = t.text;
    }
    if (is_ident(t) && t.text == "auto") fn.return_type = "auto";
  }

  // 2. Parameters (type = last class-ish identifier before the param name,
  // seen through template arguments so `std::vector<KVBatch>& runs` records
  // KVBatch — element access through the param is arena access).
  const std::size_t params_end = skip_balanced(toks, i);  // past ')'
  {
    std::vector<std::size_t> all;  // class-ish idents at any angle depth
    std::vector<std::size_t> top;  // angle-0 idents (declarator candidates)
    int depth = 0;
    auto flush = [&] {
      if (!top.empty() && all.size() >= 2 && all.back() == top.back()) {
        Param p;
        p.name = toks[top.back()].text;
        p.type = toks[all[all.size() - 2]].text;
        fn.params.push_back(std::move(p));
      }
      all.clear();
      top.clear();
    };
    for (std::size_t j = i + 1; j + 1 < params_end; ++j) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") {
          j = skip_balanced(toks, j) - 1;
          continue;
        }
        if (t.text == "," && depth == 0) flush();
        if (t.text == "<") ++depth;
        if (t.text == ">") depth = std::max(0, depth - 1);
        if (t.text == ">>") depth = std::max(0, depth - 2);
        if (t.text == "=" && depth == 0) {
          flush();
          while (j + 1 < params_end && !is_punct(toks[j], ",")) ++j;
          --j;
        }
      } else if (is_ident(t) && !is_decl_qualifier(t.text) &&
                 !is_macro_name(t.text) && !s3lint::is_keyword(t.text) &&
                 t.text != "std") {
        all.push_back(j);
        if (depth == 0) top.push_back(j);
      }
    }
    flush();
  }

  // 3. Qualifiers, annotations, trailing return, ctor init list.
  i = params_end;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_ident(t)) {
      ++i;  // const / noexcept / override / final / annotation macros
      if (i < toks.size() && is_punct(toks[i], "(")) i = skip_balanced(toks, i);
      continue;
    }
    if (is_punct(t, "->")) {  // trailing return type
      ++i;
      while (i < toks.size() && !is_punct(toks[i], "{") &&
             !is_punct(toks[i], ";")) {
        if (is_ident(toks[i]) && !s3lint::is_keyword(toks[i].text) &&
            toks[i].text != "std") {
          fn.return_type = toks[i].text;
        }
        if (is_punct(toks[i], "(")) {
          i = skip_balanced(toks, i);
        } else {
          ++i;
        }
      }
      continue;
    }
    if (is_punct(t, ":")) {  // ctor initializer list
      ++i;
      while (i < toks.size()) {
        while (i < toks.size() && !is_punct(toks[i], "(") &&
               !is_punct(toks[i], "{") && !is_punct(toks[i], ";")) {
          ++i;
        }
        if (i >= toks.size() || is_punct(toks[i], ";")) return std::nullopt;
        if (is_punct(toks[i], "{") && i >= 1 &&
            (is_punct(toks[i - 1], ")") || is_punct(toks[i - 1], "}"))) {
          break;
        }
        i = skip_balanced(toks, i);
        if (i < toks.size() && is_punct(toks[i], ",")) {
          ++i;
          continue;
        }
        break;
      }
      continue;
    }
    if (is_punct(t, "=")) {  // = default / = delete / pure virtual
      while (i < toks.size() && !is_punct(toks[i], ";")) ++i;
      continue;
    }
    if (is_punct(t, ";")) {
      HeaderParse out{std::move(fn), i + 1, false};
      return out;
    }
    if (is_punct(t, "{")) {
      HeaderParse out{std::move(fn), i + 1, true};
      out.fn.has_body = true;
      return out;
    }
    return std::nullopt;  // unexpected shape: bail out conservatively
  }
  return std::nullopt;
}

// The walker proper.
class Extractor {
 public:
  Extractor(const std::string& path, const std::vector<Token>& toks)
      : path_(path), toks_(toks) {
    fm_.path = path;
  }

  FileModel run() {
    walk_outer(0, toks_.size(), "");
    return std::move(fm_);
  }

 private:
  // --- Outer scopes: top level, namespaces, classes. -------------------

  void walk_outer(std::size_t begin, std::size_t end,
                  const std::string& class_path) {
    std::size_t i = begin;
    while (i < end) {
      const Token& t = toks_[i];
      if (is_ident(t) && t.text == "template") {
        i = (i + 1 < end && is_punct(toks_[i + 1], "<"))
                ? skip_angles(toks_, i + 1)
                : i + 1;
        continue;
      }
      if (is_ident(t) && t.text == "namespace") {
        std::size_t j = i + 1;
        while (j < end && !is_punct(toks_[j], "{") && !is_punct(toks_[j], ";"))
          ++j;
        if (j < end && is_punct(toks_[j], "{")) {
          const std::size_t close = skip_balanced(toks_, j);
          walk_outer(j + 1, close - 1, class_path);
          i = close;
        } else {
          i = j + 1;
        }
        continue;
      }
      if (is_ident(t) && t.text == "enum") {
        std::size_t j = i + 1;
        while (j < end && !is_punct(toks_[j], "{") && !is_punct(toks_[j], ";"))
          ++j;
        i = (j < end && is_punct(toks_[j], "{")) ? skip_balanced(toks_, j)
                                                 : j + 1;
        continue;
      }
      if (is_ident(t) && (t.text == "class" || t.text == "struct")) {
        const std::size_t next = parse_class(i, end, class_path, nullptr);
        if (next != i) {
          i = next;
          continue;
        }
      }
      if (is_ident(t) &&
          (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
           t.text == "static_assert" || t.text == "extern")) {
        while (i < end && !is_punct(toks_[i], ";")) {
          if (is_punct(toks_[i], "{")) {
            i = skip_balanced(toks_, i);
            continue;
          }
          ++i;
        }
        ++i;
        continue;
      }
      if (is_ident(t) && (t.text == "public" || t.text == "private" ||
                          t.text == "protected")) {
        i += 2;  // "public" ":"
        continue;
      }
      if (t.kind == TokKind::kDirective || t.kind == TokKind::kString ||
          t.kind == TokKind::kNumber) {
        ++i;
        continue;
      }
      if (t.kind == TokKind::kPunct) {
        i = t.text == "{" ? skip_balanced(toks_, i) : i + 1;
        continue;
      }
      i = parse_declaration(i, end, class_path);
    }
  }

  // Parses a class/struct definition starting at the class/struct keyword.
  std::size_t parse_class(std::size_t i, std::size_t end,
                          const std::string& outer, FunctionModel* fn) {
    std::size_t j = i + 1;
    if (j >= end || !is_ident(toks_[j])) return i;
    const std::string name = toks_[j].text;
    ++j;
    while (j < end && !is_punct(toks_[j], "{") && !is_punct(toks_[j], ";") &&
           !is_punct(toks_[j], "(") && !is_punct(toks_[j], "=")) {
      if (is_punct(toks_[j], "<")) {
        j = skip_angles(toks_, j);
        continue;
      }
      ++j;
    }
    if (j >= end || !is_punct(toks_[j], "{")) return i;  // not a definition
    const std::string class_path = outer.empty() ? name : outer + "::" + name;
    const std::size_t close = skip_balanced(toks_, j);
    walk_outer(j + 1, close - 1, class_path);
    // `} var;` — a function-local struct instance.
    std::size_t k = close;
    if (fn != nullptr && k < end && is_ident(toks_[k]) &&
        !s3lint::is_keyword(toks_[k].text) && k + 1 < end &&
        (is_punct(toks_[k + 1], ";") || is_punct(toks_[k + 1], "{"))) {
      fn->locals.push_back({class_path, toks_[k].text, stmt_});
      local_names_.insert(toks_[k].text);
    }
    while (k < end && !is_punct(toks_[k], ";")) ++k;
    return k + 1;
  }

  // Parses one declaration at class/namespace scope: a function or a data
  // member (harvested into the members map for receiver-type resolution).
  std::size_t parse_declaration(std::size_t i, std::size_t end,
                                const std::string& class_path) {
    if (auto parsed = parse_function(toks_, i, class_path, path_)) {
      FunctionModel fn = std::move(parsed->fn);
      std::size_t next = parsed->next;
      if (parsed->has_body) {
        begin_function(&fn);
        const std::size_t body_end = find_close(next);
        walk_body(next, body_end, &fn);
        next = body_end + 1;
      }
      fm_.functions.push_back(std::move(fn));
      return next;
    }
    std::size_t stmt_end = i;
    while (stmt_end < end && !is_punct(toks_[stmt_end], ";")) {
      if (is_punct(toks_[stmt_end], "{") || is_punct(toks_[stmt_end], "(") ||
          is_punct(toks_[stmt_end], "[")) {
        stmt_end = skip_balanced(toks_, stmt_end);
        continue;
      }
      ++stmt_end;
    }
    parse_member(i, stmt_end, class_path);
    return stmt_end + 1;
  }

  // Extracts member name/type from a data-member statement in [i, stmt_end).
  void parse_member(std::size_t i, std::size_t stmt_end,
                    const std::string& class_path) {
    std::vector<std::size_t> all;  // candidate type idents, any angle depth
    std::vector<std::size_t> top;  // angle-0 idents (declarator candidates)
    int angle = 0;
    for (std::size_t j = i; j < stmt_end; ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "<") ++angle;
        if (t.text == ">") angle = std::max(0, angle - 1);
        if (t.text == ">>") angle = std::max(0, angle - 2);
        if (angle > 0) continue;
        if (t.text == "=" || t.text == "{") break;
        continue;
      }
      if (!is_ident(t)) continue;
      if (angle == 0 && is_macro_name(t.text)) break;
      if (is_macro_name(t.text) || is_decl_qualifier(t.text) ||
          s3lint::is_keyword(t.text) || t.text == "std") {
        continue;
      }
      all.push_back(j);
      if (angle == 0) top.push_back(j);
    }
    if (top.empty() || all.size() < 2) return;
    const std::size_t name_pos = top.back();
    std::string type;
    for (const std::size_t j : all) {
      if (j < name_pos) type = toks_[j].text;
    }
    if (type.empty()) return;
    fm_.members[class_path][toks_[name_pos].text] = type;
  }

  // --- Function bodies. ------------------------------------------------

  std::size_t find_close(std::size_t body_begin) const {
    int depth = 1;
    for (std::size_t j = body_begin; j < toks_.size(); ++j) {
      if (is_punct(toks_[j], "{")) ++depth;
      if (is_punct(toks_[j], "}")) {
        if (--depth == 0) return j;
      }
    }
    return toks_.size();
  }

  void begin_function(FunctionModel* fn) {
    seq_ = 0;
    stmt_ = 0;
    lambda_count_ = 0;
    local_names_.clear();
    use_candidates_.clear();
    submit_ranges_.clear();
    for (const Param& p : fn->params) {
      local_names_.insert(p.name);
      if (is_view_type(p.type)) {
        use_candidates_.insert(p.name);
        // Borrowed view parameter: the Emitter::emit / GroupFn / Reducer
        // contract — valid only for the duration of the call.
        Event ev;
        ev.kind = EventKind::kBind;
        ev.line = fn->line;
        ev.seq = seq_++;
        ev.stmt = stmt_;
        ev.view = p.name;
        ev.batch = "<param:" + p.name + ">";
        ev.via = "borrowed parameter";
        fn->events.push_back(std::move(ev));
      }
    }
  }

  // Walks a function body in [begin, end) (end = matching `}`).
  void walk_body(std::size_t begin, std::size_t end, FunctionModel* fn,
                 int lambda = -1) {
    bool stmt_start = true;
    std::size_t i = begin;
    while (i < end) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{" || t.text == "}" || t.text == ";") {
          end_statement();
          stmt_start = true;
          ++i;
          continue;
        }
        if (t.text == "[" && try_lambda(i, end, fn)) {
          i = lambda_next_;
          stmt_start = false;
          continue;
        }
        stmt_start = false;
        ++i;
        continue;
      }
      if (t.kind != TokKind::kIdent) {
        ++i;
        stmt_start = false;
        continue;
      }

      // for (...) opens a fresh declaration context inside the parens
      // (range-for batch references: `for (KVBatch& run : runs)`).
      if ((t.text == "for" || t.text == "if" || t.text == "while") &&
          i + 1 < end && is_punct(toks_[i + 1], "(")) {
        i += 2;
        stmt_start = true;
        continue;
      }

      if (t.text == "return" && lambda == -1) {
        // Calls and candidate uses inside the return expression are flagged
        // as escaping. Lambda returns are not function returns.
        in_return_ = true;
        pending_bind_ = "<return>";
        pending_type_ = fn->return_type;
        Event ev;
        ev.kind = EventKind::kReturn;
        ev.line = t.line;
        ev.seq = seq_++;
        ev.stmt = stmt_;
        ev.lambda = lambda;
        fn->events.push_back(std::move(ev));
        ++i;
        stmt_start = false;
        continue;
      }

      // Function-local struct/class definition.
      if ((t.text == "struct" || t.text == "class") && stmt_start) {
        const std::size_t next = parse_class(i, end, "", fn);
        if (next != i) {
          i = next;
          stmt_start = true;
          continue;
        }
      }

      // Local declaration at statement start.
      if (stmt_start && !is_macro_name(t.text) &&
          (t.text == "auto" || !s3lint::is_keyword(t.text))) {
        const std::size_t next = try_local_decl(i, end, fn);
        if (next != i) {
          i = next;
          stmt_start = false;
          continue;
        }
      }

      // Assignment / member store at statement start: `NAME = RHS;` or a
      // container store `NAME.push_back(v)` (calls handle the latter).
      if (stmt_start && !is_macro_name(t.text) &&
          !s3lint::is_keyword(t.text) && i + 1 < end &&
          is_punct(toks_[i + 1], "=")) {
        i = handle_assignment(i, end, fn, lambda);
        stmt_start = false;
        continue;
      }

      // Call site: ident followed by '('.
      if (i + 1 < end && is_punct(toks_[i + 1], "(") &&
          !s3lint::is_keyword(t.text) && !is_macro_name(t.text)) {
        record_call(i, fn, lambda);
        i = i + 1;  // descend into the argument list for nested calls
        stmt_start = false;
        continue;
      }

      if (is_macro_name(t.text) && i + 1 < end && is_punct(toks_[i + 1], "(")) {
        i = skip_balanced(toks_, i + 1);  // macro invocation: opaque
        stmt_start = false;
        continue;
      }

      // Candidate view use (not a declaration name in this statement, not a
      // member/method name after . -> ::).
      if (use_candidates_.count(t.text) != 0 &&
          stmt_declared_.count(t.text) == 0 &&
          !(i > begin && (is_punct(toks_[i - 1], ".") ||
                          is_punct(toks_[i - 1], "->") ||
                          is_punct(toks_[i - 1], "::")))) {
        Event ev;
        ev.kind = in_return_ ? EventKind::kReturn : EventKind::kUse;
        ev.line = t.line;
        ev.seq = seq_++;
        ev.stmt = stmt_;
        ev.lambda = lambda;
        ev.view = t.text;
        fn->events.push_back(std::move(ev));
      }

      ++i;
      stmt_start = false;
    }
    end_statement();
  }

  void end_statement() {
    ++stmt_;
    pending_bind_.clear();
    pending_type_.clear();
    stmt_declared_.clear();
    in_return_ = false;
  }

  // Builds the receiver identifier chain for the call whose callee token is
  // at `pos`, walking backwards over `.`, `->`, `::`, subscripts, and
  // intermediate calls.
  void build_chain(std::size_t pos, std::size_t begin,
                   std::vector<std::string>* chain) const {
    std::size_t j = pos;
    while (j > begin + 1) {
      const Token& sep = toks_[j - 1];
      if (!(is_punct(sep, ".") || is_punct(sep, "->") || is_punct(sep, "::")))
        break;
      std::size_t k = j - 2;
      while (k > begin &&
             (is_punct(toks_[k], "]") || is_punct(toks_[k], ")"))) {
        const std::string closer = toks_[k].text;
        const char* open = closer == "]" ? "[" : "(";
        int d = 1;
        --k;
        while (k > begin && d > 0) {
          if (toks_[k].kind == TokKind::kPunct) {
            if (toks_[k].text == closer) ++d;
            if (toks_[k].text == open) --d;
          }
          if (d > 0) --k;
        }
        if (k > begin) --k;
      }
      if (!is_ident(toks_[k])) break;
      chain->insert(chain->begin(), toks_[k].text);
      j = k;
    }
  }

  // Records the call whose callee token is at `i` (followed by '(').
  void record_call(std::size_t i, FunctionModel* fn, int lambda) {
    const std::size_t open = i + 1;
    const std::size_t close = skip_balanced(toks_, open);  // past ')'
    CallSite site;
    site.callee = toks_[i].text;
    site.line = toks_[i].line;
    site.seq = seq_++;
    site.stmt = stmt_;
    site.lambda = lambda;
    site.bound_to = pending_bind_;
    site.bound_type = pending_type_;
    build_chain(i, 0, &site.chain);
    // Top-level arguments: first meaningful identifier each (the std::move
    // operand when wrapped), whether it was moved, whether it is bare.
    {
      std::string first;
      bool moved = false;
      int tokens = 0;
      bool bare_ident = false;
      int depth = 0;
      auto flush = [&] {
        if (tokens > 0) {
          site.args.push_back(first);
          site.moved.push_back(moved);
          site.lone.push_back(bare_ident && tokens == 1);
        }
        first.clear();
        moved = false;
        tokens = 0;
        bare_ident = false;
      };
      for (std::size_t j = open + 1; j + 1 < close; ++j) {
        const Token& a = toks_[j];
        if (a.kind == TokKind::kPunct) {
          if (a.text == "," && depth == 0) {
            flush();
            continue;
          }
          if (a.text == "(" || a.text == "[" || a.text == "{") ++depth;
          if (a.text == ")" || a.text == "]" || a.text == "}") --depth;
          if (a.text != "::" && a.text != "&" && a.text != "*") ++tokens;
          continue;
        }
        ++tokens;
        if (!is_ident(a)) continue;
        if (a.text == "std") {
          --tokens;  // std::move / std::string qualifiers are glue
          continue;
        }
        if (a.text == "move" && j + 1 < close && is_punct(toks_[j + 1], "(")) {
          moved = true;
          --tokens;
          continue;
        }
        if (s3lint::is_keyword(a.text)) continue;
        if (first.empty()) {
          first = a.text;
          bare_ident = true;
        }
      }
      flush();
    }
    if (site.callee == "submit" || site.callee == "submit_to") {
      submit_ranges_.push_back({open, close});
    }
    fn->calls.push_back(std::move(site));
  }

  // Recognizes `Type [&|*] name` declarations at statement start. Returns
  // the index just past the declarator name (the main loop then scans the
  // initializer, attributing calls to the new local via pending_bind_), or
  // `i` when the statement is not a declaration.
  std::size_t try_local_decl(std::size_t i, std::size_t end,
                             FunctionModel* fn) {
    std::size_t j = i;
    std::vector<std::size_t> all;  // class-ish idents at any angle depth
    std::vector<std::size_t> top;  // angle-0 idents
    bool saw_auto = false;
    while (j < end) {
      const Token& t = toks_[j];
      if (is_ident(t)) {
        if (t.text == "auto") {
          saw_auto = true;
          ++j;
          continue;
        }
        if (s3lint::is_keyword(t.text)) return i;
        if (is_macro_name(t.text)) return i;
        if (!is_decl_qualifier(t.text) && t.text != "std") top.push_back(j);
        ++j;
        continue;
      }
      if (is_punct(t, "<")) {
        const std::size_t after = skip_angles(toks_, j);
        for (std::size_t k = j + 1; k + 1 < after; ++k) {
          if (is_ident(toks_[k]) && !is_decl_qualifier(toks_[k].text) &&
              !s3lint::is_keyword(toks_[k].text) && toks_[k].text != "std") {
            all.push_back(k);
          }
        }
        j = after;
        continue;
      }
      if (is_punct(t, "::") || is_punct(t, "&") || is_punct(t, "*")) {
        ++j;
        continue;
      }
      break;
    }
    if (j >= end) return i;
    const Token& boundary = toks_[j];
    if (!(is_punct(boundary, "=") || is_punct(boundary, ";") ||
          is_punct(boundary, "(") || is_punct(boundary, "{") ||
          is_punct(boundary, ":"))) {
      return i;
    }
    // Declarator name = last angle-0 ident; type = last class-ish ident
    // before it at any depth (so vector<KVBatch> reads as KVBatch).
    if (top.empty()) return i;
    if (!saw_auto && top.size() < 2) return i;
    const std::size_t name_pos = top.back();
    if (name_pos + 1 != j) return i;  // name must sit against the boundary
    std::string type = saw_auto ? "auto" : "";
    for (std::size_t k = 0; k + 1 < top.size(); ++k) all.push_back(top[k]);
    std::sort(all.begin(), all.end());
    for (const std::size_t k : all) {
      if (k < name_pos) type = toks_[k].text;
    }
    if (type.empty()) return i;
    const std::string name = toks_[name_pos].text;
    fn->locals.push_back({type, name, stmt_});
    local_names_.insert(name);
    stmt_declared_.insert(name);
    if (is_view_type(type) || type == "auto") use_candidates_.insert(name);
    // Attribute initializer calls to this local (the graph resolves which
    // call, if any, is the binding source).
    pending_bind_ = name;
    pending_type_ = type;
    return is_punct(boundary, ";") ? j : j + 1;
  }

  // `NAME = RHS;` at statement start where NAME was not matched as a
  // declaration. Known local: kAssign (view untrack / arena overwrite) and
  // the RHS may rebind through pending_bind_. Unknown name: candidate
  // member store (the graph checks it resolves to a member of the enclosing
  // class).
  std::size_t handle_assignment(std::size_t i, std::size_t end,
                                FunctionModel* fn, int lambda) {
    const std::string& name = toks_[i].text;
    const bool local = local_names_.count(name) != 0;
    Event ev;
    ev.line = toks_[i].line;
    ev.seq = seq_++;
    ev.stmt = stmt_;
    ev.lambda = lambda;
    if (local) {
      ev.kind = EventKind::kAssign;
      ev.view = name;
      fn->events.push_back(std::move(ev));
      pending_bind_ = name;
      pending_type_.clear();  // graph falls back to the declared type
      return i + 2;           // past NAME =; main loop scans the RHS
    }
    // RHS of a non-local store: a bare tracked view (`member_ = v;`) is an
    // event; a direct source call (`member_ = batch_.key(0);`) flows through
    // pending_bind_ as "<store:NAME>".
    std::size_t j = i + 2;
    if (j < end && is_ident(toks_[j]) && j + 1 < end &&
        is_punct(toks_[j + 1], ";") && use_candidates_.count(toks_[j].text)) {
      ev.kind = EventKind::kMemberStore;
      ev.view = toks_[j].text;
      ev.via = name;
      fn->events.push_back(std::move(ev));
      return j + 1;
    }
    ev.kind = EventKind::kMemberStore;
    ev.via = name;
    // Recorded with an empty view: only meaningful if a source call in the
    // RHS binds to "<store:NAME>"; the graph drops it otherwise.
    fn->events.push_back(std::move(ev));
    pending_bind_ = "<store:" + name + ">";
    pending_type_.clear();
    return i + 2;
  }

  // Detects a lambda introducer at `[` (index i); when confirmed, records
  // LambdaInfo (with submit association) and walks the body with the new
  // lambda id. View-typed lambda parameters become borrowed views inside.
  bool try_lambda(std::size_t i, std::size_t end, FunctionModel* fn) {
    if (i > 0) {
      const Token& prev = toks_[i - 1];
      if (is_ident(prev) && !s3lint::is_keyword(prev.text)) return false;
      if (prev.kind == TokKind::kPunct &&
          (prev.text == "]" || prev.text == ")")) {
        return false;
      }
    }
    std::size_t j = skip_balanced(toks_, i);  // past ']'
    std::vector<std::pair<std::string, std::string>> lambda_params;
    if (j < end && is_punct(toks_[j], "(")) {
      const std::size_t params_close = skip_balanced(toks_, j);
      // Minimal param harvest: `type name` pairs at angle depth 0.
      std::vector<std::size_t> idents;
      int depth = 0;
      auto flush = [&] {
        if (idents.size() >= 2) {
          lambda_params.emplace_back(toks_[idents[idents.size() - 2]].text,
                                     toks_[idents.back()].text);
        }
        idents.clear();
      };
      for (std::size_t k = j + 1; k + 1 < params_close; ++k) {
        const Token& t = toks_[k];
        if (t.kind == TokKind::kPunct) {
          if (t.text == "<") ++depth;
          if (t.text == ">") depth = std::max(0, depth - 1);
          if (t.text == ",") flush();
          continue;
        }
        if (is_ident(t) && depth == 0 && !is_decl_qualifier(t.text) &&
            !s3lint::is_keyword(t.text) && t.text != "std") {
          idents.push_back(k);
        }
      }
      flush();
      j = params_close;
    }
    while (j < end && is_ident(toks_[j]) &&
           (toks_[j].text == "mutable" || toks_[j].text == "noexcept" ||
            toks_[j].text == "constexpr")) {
      ++j;
    }
    if (j < end && is_punct(toks_[j], "->")) {
      while (j < end && !is_punct(toks_[j], "{") && !is_punct(toks_[j], ";") &&
             !is_punct(toks_[j], ",") && !is_punct(toks_[j], ")")) {
        ++j;
      }
    }
    if (j >= end || !is_punct(toks_[j], "{")) return false;

    LambdaInfo info;
    info.id = lambda_count_++;
    info.line = toks_[i].line;
    for (const auto& [open, close] : submit_ranges_) {
      if (i > open && i < close) info.submitted = true;
    }
    fn->lambdas.push_back(info);

    // The lambda body is a new statement context; initializer attribution
    // from the enclosing statement must not leak in.
    const std::string saved_bind = pending_bind_;
    const std::string saved_type = pending_type_;
    const bool saved_return = in_return_;
    pending_bind_.clear();
    pending_type_.clear();
    in_return_ = false;
    for (const auto& [type, pname] : lambda_params) {
      local_names_.insert(pname);
      if (is_view_type(type)) {
        use_candidates_.insert(pname);
        Event ev;
        ev.kind = EventKind::kBind;
        ev.line = toks_[i].line;
        ev.seq = seq_++;
        ev.stmt = stmt_;
        ev.lambda = info.id;
        ev.view = pname;
        ev.batch = "<param:" + pname + ">";
        ev.via = "borrowed lambda parameter";
        fn->events.push_back(std::move(ev));
      }
    }
    const std::size_t body_end = find_close(j + 1);
    walk_body(j + 1, std::min(body_end, end), fn, info.id);
    pending_bind_ = saved_bind;
    pending_type_ = saved_type;
    in_return_ = saved_return;
    lambda_next_ = std::min(body_end + 1, end);
    return true;
  }

  const std::string& path_;
  const std::vector<Token>& toks_;
  FileModel fm_;

  // Per-function walk state.
  int seq_ = 0;
  int stmt_ = 0;
  int lambda_count_ = 0;
  bool in_return_ = false;
  std::string pending_bind_;
  std::string pending_type_;
  std::set<std::string> local_names_;
  std::set<std::string> use_candidates_;
  std::set<std::string> stmt_declared_;
  std::vector<std::pair<std::size_t, std::size_t>> submit_ranges_;
  std::size_t lambda_next_ = 0;
};

}  // namespace

FileModel extract_model(const std::string& path,
                        const s3lint::TokenizedFile& file) {
  return Extractor(path, file.tokens).run();
}

}  // namespace s3viewcheck
