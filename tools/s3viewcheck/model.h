// Per-file structural model for s3viewcheck: for every function with a body,
// where arena-backed views are born (KVBatch::key/value calls bound to
// locals, string_view parameters at the emit/reduce boundary, wrapper calls
// resolved through project summaries), where arenas are invalidated
// (append/clear/prefault receivers, std::move'd batches, reassignments), and
// where views escape (returns, stores into members, uses inside lambdas that
// are submitted to a worker pool).
//
// Built on s3lint's token stream (tools/s3lint/lexer.h) following the same
// walker discipline as tools/s3lockcheck/model.cpp: token-level, not a real
// C++ parse, understanding just enough structure (namespaces, classes,
// function headers with ctor init lists, statement boundaries, lambdas) to
// order every event lexically. Precision notes:
//  * Only *named* view locals are tracked (`auto k = batch.key(i)`); a view
//    consumed in place (`fn(batch.key(i))`) cannot dangle and generates no
//    events, which keeps the false-positive rate of a gating check near
//    zero.
//  * The walker records syntax; type resolution (is this receiver a
//    KVBatch?) happens in the graph layer, which merges class-member tables
//    across files. Events carry raw identifier chains for that reason.
//  * Loop back-edges are not modeled: a bind-use-append loop reads as
//    bind < use < append lexically. DebugView (the runtime half,
//    common/view_checks.h) catches that shape instead.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "s3lint/lexer.h"

namespace s3viewcheck {

enum class EventKind {
  kBind,         // view born: walker-level only for borrowed view params
  kUse,          // a candidate view identifier is read
  kAssign,       // a known local is assigned over (untrack view / kill arena)
  kReturn,       // return statement referencing a candidate view
  kMemberStore,  // candidate view (or direct key/value call) stored into a
                 // name that is not a local — the graph checks memberhood
};

struct Event {
  EventKind kind = EventKind::kUse;
  int line = 0;
  int seq = 0;     // lexical order shared with CallSite::seq
  int stmt = 0;    // statement ordinal (binds ignore uses in their own stmt)
  int lambda = -1; // id of the innermost enclosing lambda body, -1 = none
  std::string view;   // view variable involved
  std::string batch;  // kBind: pseudo-arena identity ("<param:key>")
  std::string via;    // detail: kMemberStore target name, kAssign RHS hint
};

// A call site. The graph layer turns these into binds (key/value or a
// summary-resolved wrapper bound to a declared local), invalidations
// (append/clear/prefault receivers, std::move arguments, callees that
// invalidate a by-reference batch parameter), and submit associations.
struct CallSite {
  std::string callee;              // identifier directly before '('
  std::vector<std::string> chain;  // receiver-chain identifiers, in order
  int line = 0;
  int seq = 0;
  int stmt = 0;
  int lambda = -1;
  // One entry per top-level argument: the first meaningful identifier (the
  // std::move operand when the argument is std::move(x)), or "".
  std::vector<std::string> args;
  std::vector<bool> moved;  // argument is wrapped in std::move
  std::vector<bool> lone;   // argument is exactly one bare identifier
  // Local variable whose declaration this call initializes ("" when the
  // call is not part of a declaration's initializer; "<return>" when it
  // appears in a return expression).
  std::string bound_to;
  std::string bound_type;  // declared type of that local ("auto", ...)
};

struct LambdaInfo {
  int id = 0;
  int line = 0;
  // Lexically an argument of a submit(...)/submit_to(...) call: the body
  // runs on a pool thread, after the submitting scope may have moved on.
  bool submitted = false;
};

struct Param {
  std::string type;  // last class-ish identifier of the declared type
  std::string name;
};

struct LocalDecl {
  std::string type;
  std::string name;
  int stmt = 0;
};

struct FunctionModel {
  std::string class_name;  // "" for free functions
  std::string name;
  std::string display;     // "Class::name" or "name" (diagnostics)
  std::string file;
  int line = 0;
  bool has_body = false;
  std::string return_type;  // last class-ish identifier of the return type
  std::vector<Param> params;
  std::vector<LocalDecl> locals;
  std::vector<Event> events;
  std::vector<CallSite> calls;
  std::vector<LambdaInfo> lambdas;
};

struct FileModel {
  std::string path;
  std::vector<FunctionModel> functions;
  // class path -> member name -> member type (last class-ish identifier, so
  // `std::vector<KVBatch> buffers_` records KVBatch — element access through
  // the member is arena access).
  std::map<std::string, std::map<std::string, std::string>> members;
};

FileModel extract_model(const std::string& path,
                        const s3lint::TokenizedFile& file);

}  // namespace s3viewcheck
