#include "s3viewcheck/s3viewcheck.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "s3lint/lexer.h"
#include "s3viewcheck/graph.h"
#include "s3viewcheck/model.h"

namespace s3viewcheck {
namespace {

namespace fs = std::filesystem;

// Only src/ is analyzed: tests intentionally construct the pathological
// view-lifetime shapes (death-test fixtures, stale-view regressions) that
// the production tree must never contain.
bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string slashes(std::string s) {
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

}  // namespace

int run_viewcheck(const ViewcheckOptions& options, std::string* output) {
  std::ostringstream out;
  const fs::path base(options.root);
  const fs::path src = base / "src";
  if (!fs::exists(src)) {
    out << "s3viewcheck: no src/ under " << options.root << "\n";
    *output = out.str();
    return 2;
  }

  std::vector<std::string> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file() || !is_cpp_source(entry.path())) continue;
    paths.push_back(
        slashes(fs::relative(entry.path(), base).generic_string()));
  }
  std::sort(paths.begin(), paths.end());

  std::vector<FileModel> models;
  std::map<std::string, s3lint::Suppressions> suppressions;
  for (const std::string& rel : paths) {
    std::ifstream in(base / rel, std::ios::binary);
    if (!in) {
      out << "s3viewcheck: cannot read " << rel << "\n";
      *output = out.str();
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const s3lint::TokenizedFile tokenized = s3lint::tokenize(buf.str());
    models.push_back(extract_model(rel, tokenized));
    suppressions.emplace(
        rel, s3lint::Suppressions::parse(tokenized.comments, "s3viewcheck:"));
  }

  const ProjectGraph graph(std::move(models));
  if (options.dump_graph) {
    graph.dump(out);
    *output = out.str();
    return 0;
  }

  std::set<std::string> rules = options.rules;
  if (rules.empty()) {
    for (const std::string& rule : ProjectGraph::all_rules()) {
      rules.insert(rule);
    }
  }

  int reported = 0;
  for (const Finding& f : graph.analyze(rules)) {
    const auto it = suppressions.find(f.file);
    if (it != suppressions.end() && it->second.suppressed(f.rule, f.line)) {
      continue;
    }
    out << f.file << ":" << f.line << ": error: [" << f.rule << "] "
        << f.message << "\n";
    ++reported;
  }
  if (reported > 0) {
    out << "s3viewcheck: " << reported << " finding"
        << (reported == 1 ? "" : "s") << " in " << paths.size() << " files\n";
  }
  *output = out.str();
  return reported > 0 ? 1 : 0;
}

}  // namespace s3viewcheck
