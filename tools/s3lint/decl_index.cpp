#include "s3lint/decl_index.h"

#include <algorithm>
#include <cstddef>

#include "s3lint/scope.h"

namespace s3lint {
namespace {

// Words that may precede the return type / name in a declaration without
// being part of the type itself.
bool is_decl_specifier(const std::string& word) {
  return word == "static" || word == "virtual" || word == "inline" ||
         word == "constexpr" || word == "consteval" || word == "explicit" ||
         word == "friend" || word == "extern" || word == "nodiscard" ||
         word == "maybe_unused";
}

// ALL_CAPS identifiers are macros (S3_GUARDED_BY, S3_EXCLUDES, ...), which
// trail member declarations like `Status s S3_GUARDED_BY(mu);` — the `(` is
// a macro invocation, not a declarator.
bool is_macro_name(const std::string& word) {
  bool has_alpha = false;
  for (const char c : word) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
  }
  return has_alpha;
}

}  // namespace

void DeclIndex::index_file(const std::string& path, const TokenizedFile& file) {
  const std::vector<Token>& toks = file.tokens;
  const std::vector<ScopeKind> scope = classify_scopes(toks);

  // Start of the current declaration head (just past the most recent
  // ';' / '{' / '}' / ':' at the same nesting level walk).
  std::size_t head = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":")) {
      head = i + 1;
      continue;
    }
    if (t.kind != TokKind::kPunct || t.text != "(") continue;
    if (scope[i] == ScopeKind::kBlock || scope[i] == ScopeKind::kEnum) continue;
    if (i == 0 || toks[i - 1].kind != TokKind::kIdent) continue;
    const std::string& name = toks[i - 1].text;
    if (is_keyword(name) || is_macro_name(name)) continue;

    // The declarator may be qualified (`Foo::bar`): walk the `::` chain back
    // to find where the return type ends.
    std::size_t type_end = i - 1;  // one past the last return-type token
    while (type_end >= 2 && toks[type_end - 1].kind == TokKind::kPunct &&
           toks[type_end - 1].text == "::" &&
           toks[type_end - 2].kind == TokKind::kIdent) {
      type_end -= 2;
    }
    if (type_end <= head) continue;  // no return type: constructor / macro use

    bool returns_status = false;
    bool has_type_word = false;
    bool nodiscard = false;
    int bracket_depth = 0;  // inside [[...]] attribute groups
    for (std::size_t k = head; k < type_end; ++k) {
      const Token& w = toks[k];
      if (w.kind == TokKind::kPunct) {
        if (w.text == "[") ++bracket_depth;
        if (w.text == "]" && bracket_depth > 0) --bracket_depth;
        continue;
      }
      if (w.kind != TokKind::kIdent) continue;
      if (bracket_depth > 0) {
        if (w.text == "nodiscard") nodiscard = true;
        continue;
      }
      if (w.text == "template") {
        // Skip the whole template<...> parameter list.
        int angle = 0;
        while (k + 1 < type_end) {
          ++k;
          if (toks[k].kind != TokKind::kPunct) continue;
          if (toks[k].text == "<") ++angle;
          if (toks[k].text == ">" && --angle == 0) break;
          if (toks[k].text == ">>" && (angle -= 2) <= 0) break;
        }
        continue;
      }
      if (is_decl_specifier(w.text) || is_keyword(w.text)) {
        // `void`/`int`/`bool` are keywords but also real return types.
        if (w.text == "void" || w.text == "bool" || w.text == "int" ||
            w.text == "char" || w.text == "long" || w.text == "short" ||
            w.text == "float" || w.text == "double" || w.text == "auto" ||
            w.text == "unsigned" || w.text == "signed") {
          has_type_word = true;
        }
        continue;
      }
      has_type_word = true;
      if (w.text == "Status" || w.text == "StatusOr") returns_status = true;
    }
    if (!has_type_word) continue;

    NameInfo& info = names_[name];
    info.decls.push_back(FunctionDecl{name, path, toks[i - 1].line,
                                      returns_status, nodiscard});
    if (!returns_status) info.returns_other = true;
  }
}

bool DeclIndex::unambiguously_returns_status(const std::string& name) const {
  const auto it = names_.find(name);
  if (it == names_.end() || it->second.decls.empty()) return false;
  if (it->second.returns_other) return false;
  return std::all_of(it->second.decls.begin(), it->second.decls.end(),
                     [](const FunctionDecl& d) { return d.returns_status; });
}

const std::vector<FunctionDecl>& DeclIndex::decls(
    const std::string& name) const {
  static const std::vector<FunctionDecl> kEmpty;
  const auto it = names_.find(name);
  return it == names_.end() ? kEmpty : it->second.decls;
}

std::vector<FunctionDecl> DeclIndex::missing_nodiscard() const {
  std::vector<FunctionDecl> out;
  for (const auto& [name, info] : names_) {
    for (const FunctionDecl& d : info.decls) {
      if (d.returns_status && !d.nodiscard) out.push_back(d);
    }
  }
  std::sort(out.begin(), out.end(), [](const FunctionDecl& a,
                                       const FunctionDecl& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return out;
}

bool DeclIndex::returns_other(const std::string& name) const {
  const auto it = names_.find(name);
  return it != names_.end() && it->second.returns_other;
}

void DeclIndex::add_other(const std::string& name) {
  names_[name].returns_other = true;
}

}  // namespace s3lint
