// The s3lint rules. Each rule inspects one tokenized file (plus the
// project-wide declaration index) and reports violations; path-based
// allowlists live here so every rule's exemptions are in one place.
#pragma once

#include <string>
#include <vector>

#include "s3lint/decl_index.h"
#include "s3lint/lexer.h"

namespace s3lint {

struct Violation {
  std::string rule;
  int line = 0;
  std::string message;
};

// All rule names, in report order. `--rules=` and suppression comments are
// validated against this list.
const std::vector<std::string>& all_rules();

// Runs every enabled rule over one file. `path` must be root-relative with
// forward slashes (e.g. "src/sched/s3_scheduler.cpp") — the allowlists match
// on it. Violations on suppressed lines are already filtered out.
std::vector<Violation> lint_file(const std::string& path,
                                 const TokenizedFile& file,
                                 const DeclIndex& index,
                                 const std::vector<std::string>& enabled_rules);

}  // namespace s3lint
