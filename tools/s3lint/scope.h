// Lightweight brace-scope classifier: walks the token stream and labels each
// `{ ... }` region as namespace, class, enum, or block (function body /
// compound statement / brace-init). The rule engine uses it to tell a data
// member from a local variable and a declaration from an expression.
#pragma once

#include <string>
#include <vector>

#include "s3lint/lexer.h"

namespace s3lint {

enum class ScopeKind { kTop, kNamespace, kClass, kEnum, kBlock };

// scope_of[i] is the innermost scope the token at index i lives in (the
// braces themselves belong to the outer scope).
std::vector<ScopeKind> classify_scopes(const std::vector<Token>& tokens);

// True when the token is a C++ keyword (so it can't be a callee/declarator).
bool is_keyword(const std::string& ident);

}  // namespace s3lint
