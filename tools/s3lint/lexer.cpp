#include "s3lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace s3lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Multi-character operators, longest first within each leading character.
const char* const kOperators[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--", "##",
};

}  // namespace

TokenizedFile tokenize(const std::string& src) {
  TokenizedFile out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;        // only whitespace so far on this line
  bool code_on_line = false;        // a code token has appeared on this line

  auto advance_newline = [&]() {
    ++line;
    at_line_start = true;
    code_on_line = false;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++i;
      advance_newline();
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      out.comments.push_back(
          Comment{src.substr(i + 2, j - i - 2), line, !code_on_line});
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      const bool own = !code_on_line;
      std::size_t j = i + 2;
      std::string text;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        text.push_back(src[j]);
        ++j;
      }
      out.comments.push_back(Comment{text, start_line, own});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Preprocessor directive: '#' first on the line; fold continuations.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      std::size_t j = i;
      while (j < n) {
        if (src[j] == '\\' && j + 1 < n && src[j + 1] == '\n') {
          text.push_back(' ');
          j += 2;
          ++line;
          continue;
        }
        if (src[j] == '\n') break;
        // A // comment ends the directive text (and is recorded).
        if (src[j] == '/' && j + 1 < n && src[j + 1] == '/') {
          std::size_t k = j + 2;
          while (k < n && src[k] != '\n') ++k;
          out.comments.push_back(
              Comment{src.substr(j + 2, k - j - 2), line, false});
          j = k;
          break;
        }
        text.push_back(src[j]);
        ++j;
      }
      out.tokens.push_back(Token{TokKind::kDirective, text, start_line});
      i = j;
      at_line_start = false;
      code_on_line = true;
      continue;
    }
    at_line_start = false;
    code_on_line = true;
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      const int start_line = line;
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      const std::size_t stop = (end == n) ? n : end + closer.size();
      out.tokens.push_back(
          Token{TokKind::kString, src.substr(i, stop - i), start_line});
      i = stop;
      continue;
    }
    // Plain string / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // unterminated; be forgiving
        ++j;
      }
      const std::size_t stop = (j < n) ? j + 1 : n;
      out.tokens.push_back(
          Token{TokKind::kString, src.substr(i, stop - i), start_line});
      i = stop;
      continue;
    }
    // Identifier / keyword.
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(src[j])) ++j;
      out.tokens.push_back(
          Token{TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Number (pp-number: digits, letters, ', and exponent signs).
    if (is_digit(c) || (c == '.' && i + 1 < n && is_digit(src[i + 1]))) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') &&
            (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
             src[j - 1] == 'P')) {
          ++j;
          continue;
        }
        break;
      }
      out.tokens.push_back(
          Token{TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Operator / punctuation, longest match.
    std::string op(1, c);
    for (const char* cand : kOperators) {
      const std::size_t len = std::string(cand).size();
      if (src.compare(i, len, cand) == 0) {
        op = cand;
        break;
      }
    }
    out.tokens.push_back(Token{TokKind::kPunct, op, line});
    i += op.size();
  }
  out.num_lines = line;
  return out;
}

namespace {

// Extracts rule lists from "disable(rule-a, rule-b)" style suffixes.
std::vector<std::pair<std::string, std::set<std::string>>> parse_directives(
    const std::string& text) {
  std::vector<std::pair<std::string, std::set<std::string>>> out;
  std::size_t pos = 0;
  while ((pos = text.find("disable", pos)) != std::string::npos) {
    std::size_t j = pos + 7;
    std::string kind = "disable";
    if (text.compare(j, 5, "-file") == 0) {
      kind = "disable-file";
      j += 5;
    }
    while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j]))) ++j;
    if (j >= text.size() || text[j] != '(') {
      pos = j;
      continue;
    }
    const std::size_t close = text.find(')', j);
    if (close == std::string::npos) break;
    std::set<std::string> rules;
    std::string cur;
    for (std::size_t k = j + 1; k <= close; ++k) {
      const char c = (k == close) ? ',' : text[k];
      if (c == ',') {
        if (!cur.empty()) rules.insert(cur);
        cur.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        cur.push_back(c);
      }
    }
    out.emplace_back(kind, std::move(rules));
    pos = close + 1;
  }
  return out;
}

}  // namespace

Suppressions Suppressions::parse(const std::vector<Comment>& comments,
                                 const std::string& tag) {
  Suppressions s;
  for (const Comment& c : comments) {
    const std::size_t pos = c.text.find(tag);
    if (pos == std::string::npos) continue;
    for (auto& [kind, rules] : parse_directives(c.text.substr(pos))) {
      if (kind == "disable-file") {
        s.file_rules_.insert(rules.begin(), rules.end());
      } else {
        s.line_rules_[c.line].insert(rules.begin(), rules.end());
        s.line_rules_[c.line + 1].insert(rules.begin(), rules.end());
      }
    }
  }
  return s;
}

bool Suppressions::suppressed(const std::string& rule, int line) const {
  if (file_rules_.count(rule) > 0 || file_rules_.count("all") > 0) return true;
  const auto it = line_rules_.find(line);
  if (it == line_rules_.end()) return false;
  return it->second.count(rule) > 0 || it->second.count("all") > 0;
}

}  // namespace s3lint
