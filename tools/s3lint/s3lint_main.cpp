// s3lint — project-specific static analysis for the S3 scheduler tree.
//
//   s3lint [--root=DIR] [--rules=a,b,c] [--list-rules] [paths...]
//
// With no paths, lints every C++ source under src/ tests/ tools/ bench/
// examples/. Exits 0 when clean, 1 when violations were found, 2 on usage
// or I/O errors.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "s3lint/rules.h"
#include "s3lint/s3lint.h"

namespace {

void print_usage() {
  std::cout << "usage: s3lint [--root=DIR] [--rules=a,b,c] [--list-rules] "
               "[paths...]\n"
               "  --root=DIR    repo root the path allowlists are relative "
               "to (default: .)\n"
               "  --rules=LIST  comma-separated subset of rules to run\n"
               "  --list-rules  print the rule names and exit\n"
               "  paths         files to lint, relative to the root "
               "(default: whole tree)\n";
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  s3lint::LintOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--list-rules") {
      for (const std::string& rule : s3lint::all_rules()) {
        std::cout << rule << "\n";
      }
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      options.root = arg.substr(7);
      continue;
    }
    if (arg.rfind("--rules=", 0) == 0) {
      options.rules = split_csv(arg.substr(8));
      for (const std::string& rule : options.rules) {
        const auto& known = s3lint::all_rules();
        if (std::find(known.begin(), known.end(), rule) == known.end()) {
          std::cerr << "s3lint: unknown rule '" << rule << "'\n";
          return 2;
        }
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "s3lint: unknown option '" << arg << "'\n";
      print_usage();
      return 2;
    }
    options.paths.push_back(arg);
  }

  try {
    const s3lint::LintResult result = s3lint::run_lint(options);
    for (const s3lint::LintReport& report : result.reports) {
      std::cout << s3lint::format_report(report) << "\n";
    }
    if (!result.reports.empty()) {
      std::cout << "s3lint: " << result.reports.size() << " violation"
                << (result.reports.size() == 1 ? "" : "s") << " in "
                << result.files_linted << " file"
                << (result.files_linted == 1 ? "" : "s") << "\n";
      return 1;
    }
    std::cout << "s3lint: clean (" << result.files_linted << " files)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
