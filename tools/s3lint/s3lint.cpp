#include "s3lint/s3lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "s3lint/decl_index.h"
#include "s3lint/lexer.h"

namespace s3lint {
namespace {

namespace fs = std::filesystem;

const char* const kTrees[] = {"src", "tests", "tools", "bench", "examples"};

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string slashes(std::string s) {
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    throw std::runtime_error("s3lint: cannot read " + p.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::vector<std::string> collect_files(const std::string& root) {
  std::vector<std::string> out;
  const fs::path base(root);
  for (const char* tree : kTrees) {
    const fs::path dir = base / tree;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !is_cpp_source(entry.path())) continue;
      out.push_back(
          slashes(fs::relative(entry.path(), base).generic_string()));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

LintResult run_lint(const LintOptions& options) {
  const fs::path base(options.root);
  const std::vector<std::string> tree = collect_files(options.root);

  // Index every header in the tree, whether or not it is being linted — the
  // status rules need the project-wide view.
  DeclIndex index;
  std::vector<std::pair<std::string, TokenizedFile>> tokenized;
  tokenized.reserve(tree.size());
  for (const std::string& rel : tree) {
    tokenized.emplace_back(rel, tokenize(read_file(base / rel)));
    const std::string ext = fs::path(rel).extension().string();
    if (ext == ".h" || ext == ".hpp") {
      index.index_file(rel, tokenized.back().second);
    }
  }

  // Resolve the lint set: whole tree, or the explicit paths.
  std::vector<std::string> wanted;
  if (options.paths.empty()) {
    wanted = tree;
  } else {
    for (const std::string& p : options.paths) {
      fs::path fp(p);
      if (fp.is_absolute()) {
        fp = fs::relative(fp, fs::absolute(base));
      }
      wanted.push_back(slashes(fp.generic_string()));
    }
  }

  const std::vector<std::string>& rules =
      options.rules.empty() ? all_rules() : options.rules;

  LintResult result;
  for (const std::string& rel : wanted) {
    const TokenizedFile* file = nullptr;
    TokenizedFile local;
    for (const auto& [path, tf] : tokenized) {
      if (path == rel) {
        file = &tf;
        break;
      }
    }
    if (file == nullptr) {
      // A path outside the standard trees (e.g. a fixture): lint it cold.
      local = tokenize(read_file(base / rel));
      file = &local;
    }
    ++result.files_linted;
    for (Violation& v : lint_file(rel, *file, index, rules)) {
      result.reports.push_back(LintReport{rel, std::move(v)});
    }
  }
  std::sort(result.reports.begin(), result.reports.end(),
            [](const LintReport& a, const LintReport& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.violation.line != b.violation.line) {
                return a.violation.line < b.violation.line;
              }
              return a.violation.rule < b.violation.rule;
            });
  return result;
}

std::string format_report(const LintReport& report) {
  std::ostringstream out;
  out << report.path << ":" << report.violation.line << ": error: ["
      << report.violation.rule << "] " << report.violation.message;
  return out.str();
}

}  // namespace s3lint
