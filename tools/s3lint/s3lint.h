// Driver: file collection, index construction, and report formatting.
#pragma once

#include <string>
#include <vector>

#include "s3lint/rules.h"

namespace s3lint {

struct LintOptions {
  std::string root = ".";           // repo root (allowlists are root-relative)
  std::vector<std::string> paths;   // explicit files; empty = whole tree
  std::vector<std::string> rules;   // enabled rules; empty = all
};

struct LintReport {
  std::string path;  // root-relative
  Violation violation;
};

struct LintResult {
  std::vector<LintReport> reports;
  int files_linted = 0;
};

// C++ sources under root's src/, tests/, tools/, bench/, examples/ trees,
// root-relative with forward slashes, sorted.
std::vector<std::string> collect_files(const std::string& root);

// Tokenizes + indexes every header under root, then lints the requested
// files (or the whole tree). Throws std::runtime_error on unreadable input.
LintResult run_lint(const LintOptions& options);

// "path:line: error: [rule] message"
std::string format_report(const LintReport& report);

}  // namespace s3lint
