// Token-aware C++ scanner for s3lint. Not a real C++ lexer — just enough to
// see through comments, string literals, and preprocessor lines so the rule
// engine can reason about identifier/operator sequences without regex
// false-positives (a `%` inside a format string, `std::cout` in a comment).
//
// Dependency-free C++17; no project headers on purpose — the linter must
// build even when the tree it lints does not.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace s3lint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // pp-number (includes 0x.., 1e-5, digit separators)
  kString,   // "..." / R"(...)" / '...' (text is the raw literal)
  kPunct,    // operators and punctuation, longest-match (e.g. "::", "->")
  kDirective // one whole preprocessor line (continuations folded in)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 1;  // 1-based line the token starts on
};

struct Comment {
  std::string text;  // without the // or /* */ markers
  int line = 1;      // line the comment starts on
  bool own_line = false;  // no code token precedes it on its line
};

struct TokenizedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  int num_lines = 0;
};

TokenizedFile tokenize(const std::string& source);

// Suppression comments:
//   // s3lint: disable(rule-a, rule-b)   — suppresses on this line and the
//                                          next (so it works trailing or on
//                                          the line above the construct)
//   // s3lint: disable-file(rule-a)      — suppresses for the whole file
// The rule name "all" disables every rule. Other tools built on this lexer
// (tools/s3lockcheck) reuse the same syntax under their own tag, e.g.
// "// s3lockcheck: disable(lock-cycle)".
class Suppressions {
 public:
  static Suppressions parse(const std::vector<Comment>& comments,
                            const std::string& tag = "s3lint:");

  [[nodiscard]] bool suppressed(const std::string& rule, int line) const;

 private:
  std::set<std::string> file_rules_;
  std::map<int, std::set<std::string>> line_rules_;
};

}  // namespace s3lint
