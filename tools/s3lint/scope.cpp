#include "s3lint/scope.h"

#include <cstddef>
#include <unordered_set>

namespace s3lint {
namespace {

const std::unordered_set<std::string>& keyword_set() {
  static const std::unordered_set<std::string> kKeywords = {
      "alignas", "alignof", "and", "asm", "auto", "bool", "break", "case",
      "catch", "char", "class", "concept", "const", "consteval", "constexpr",
      "constinit", "const_cast", "continue", "co_await", "co_return",
      "co_yield", "decltype", "default", "delete", "do", "double",
      "dynamic_cast", "else", "enum", "explicit", "export", "extern", "false",
      "final", "float", "for", "friend", "goto", "if", "inline", "int", "long",
      "mutable", "namespace", "new", "noexcept", "not", "nullptr", "operator",
      "or", "override", "private", "protected", "public", "register",
      "reinterpret_cast", "requires", "return", "short", "signed", "sizeof",
      "static", "static_assert", "static_cast", "struct", "switch", "template",
      "this", "thread_local", "throw", "true", "try", "typedef", "typeid",
      "typename", "union", "unsigned", "using", "virtual", "void", "volatile",
      "wchar_t", "while",
  };
  return kKeywords;
}

}  // namespace

bool is_keyword(const std::string& ident) {
  return keyword_set().count(ident) > 0;
}

std::vector<ScopeKind> classify_scopes(const std::vector<Token>& tokens) {
  std::vector<ScopeKind> out(tokens.size(), ScopeKind::kTop);
  std::vector<ScopeKind> stack;  // scope each open brace introduced
  // Start of the current "statement head": index just past the last
  // ';' / '{' / '}' at the current nesting level. Tokens in that window
  // decide what kind of scope a '{' opens.
  std::size_t head = 0;

  auto classify_open = [&](std::size_t open) {
    int parens = 0;
    bool saw_namespace = false;
    bool saw_enum = false;
    bool saw_class = false;
    std::size_t class_kw = 0;  // index of the class/struct/union keyword
    for (std::size_t k = head; k < open; ++k) {
      const Token& t = tokens[k];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") {
          ++parens;
        } else if (t.text == ")") {
          --parens;
        }
        continue;
      }
      if (t.kind != TokKind::kIdent || parens > 0) continue;
      if (t.text == "namespace") saw_namespace = true;
      if (t.text == "enum") saw_enum = true;
      if ((t.text == "class" || t.text == "struct" || t.text == "union") &&
          !saw_class) {
        saw_class = true;
        class_kw = k;
      }
    }
    if (saw_namespace) return ScopeKind::kNamespace;
    if (saw_enum) return ScopeKind::kEnum;
    if (saw_class) {
      // `struct Foo {` / `class Foo final {` / `class Foo : Base {` open a
      // class. `struct tm* f(...) {`-style elaborated-type uses are followed
      // by a (...) group, which means function body, not class.
      bool parens_after_kw = false;
      for (std::size_t k = class_kw + 1; k < open; ++k) {
        if (tokens[k].kind == TokKind::kPunct && tokens[k].text == "(") {
          parens_after_kw = true;
          break;
        }
      }
      if (!parens_after_kw) return ScopeKind::kClass;
    }
    return ScopeKind::kBlock;
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    out[i] = stack.empty() ? ScopeKind::kTop : stack.back();
    const Token& t = tokens[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "{") {
      stack.push_back(classify_open(i));
      head = i + 1;
    } else if (t.text == "}") {
      if (!stack.empty()) stack.pop_back();
      head = i + 1;
    } else if (t.text == ";") {
      head = i + 1;
    }
  }
  return out;
}

}  // namespace s3lint
