#include "s3lint/rules.h"

#include <cstddef>
#include <set>
#include <sstream>
#include <unordered_set>

#include "s3lint/scope.h"

namespace s3lint {
namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Splits a snake_case identifier into lowercase-ish words; empty segments
// (leading/trailing/double underscores) are dropped.
std::vector<std::string> split_words(const std::string& ident) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : ident) {
    if (c == '_') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(static_cast<char>(
          c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// ---------------------------------------------------------------------------
// naked-mutex: raw std::mutex / std::shared_mutex members. The annotated
// wrappers in common/thread_annotations.h are the only sanctioned home.
void check_naked_mutex(const std::string& path, const TokenizedFile& file,
                       const std::vector<ScopeKind>& scope,
                       std::vector<Violation>* out) {
  if (path == "src/common/thread_annotations.h") return;
  static const std::unordered_set<std::string> kMutexTypes = {
      "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
      "recursive_timed_mutex", "shared_timed_mutex"};
  const std::vector<Token>& toks = file.tokens;
  int paren_depth = 0;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kPunct) {
      if (toks[i].text == "(") ++paren_depth;
      if (toks[i].text == ")") --paren_depth;
      continue;
    }
    if (paren_depth > 0 || scope[i] != ScopeKind::kClass) continue;
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "std" &&
        toks[i + 1].kind == TokKind::kPunct && toks[i + 1].text == "::" &&
        toks[i + 2].kind == TokKind::kIdent &&
        kMutexTypes.count(toks[i + 2].text) > 0) {
      out->push_back(Violation{
          "naked-mutex", toks[i].line,
          "raw std::" + toks[i + 2].text +
              " member; use AnnotatedMutex/AnnotatedSharedMutex from "
              "common/thread_annotations.h so lock discipline is checkable"});
    }
  }
}

// ---------------------------------------------------------------------------
// status-discard: a bare expression statement whose value is a Status /
// StatusOr (per the project-wide declaration index) silently drops an error.
void check_status_discard(const TokenizedFile& file,
                          const std::vector<ScopeKind>& scope,
                          const DeclIndex& index, const DeclIndex& self,
                          std::vector<Violation>* out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t s = 0; s < toks.size(); ++s) {
    // Anchor at a statement start inside a function body.
    if (s > 0 && !(toks[s - 1].kind == TokKind::kPunct &&
                   (toks[s - 1].text == ";" || toks[s - 1].text == "{" ||
                    toks[s - 1].text == "}"))) {
      continue;
    }
    if (scope[s] != ScopeKind::kBlock) continue;
    if (toks[s].kind != TokKind::kIdent || is_keyword(toks[s].text)) continue;
    // Parse an `a::b.c->d(` chain; the callee is the last identifier.
    std::size_t i = s;
    std::string callee = toks[i].text;
    while (i + 2 < toks.size() && toks[i + 1].kind == TokKind::kPunct &&
           (toks[i + 1].text == "::" || toks[i + 1].text == "." ||
            toks[i + 1].text == "->") &&
           toks[i + 2].kind == TokKind::kIdent) {
      i += 2;
      callee = toks[i].text;
    }
    if (i + 1 >= toks.size() || toks[i + 1].kind != TokKind::kPunct ||
        toks[i + 1].text != "(") {
      continue;
    }
    // Balance the argument list; the statement must end right after it.
    std::size_t j = i + 1;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct) continue;
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
    }
    if (j + 1 >= toks.size() || toks[j + 1].kind != TokKind::kPunct ||
        toks[j + 1].text != ";") {
      continue;
    }
    if (!index.unambiguously_returns_status(callee)) continue;
    if (self.returns_other(callee)) continue;  // local helper shadows name
    out->push_back(Violation{
        "status-discard", toks[s].line,
        "result of '" + callee +
            "' (returns Status/StatusOr) is discarded; check it, or cast "
            "to void with a comment if the error is truly ignorable"});
  }
}

// ---------------------------------------------------------------------------
// segment-modulo: raw `%` on segment/cursor arithmetic. The circular-scan
// helpers in sched/segment_planner.h are the sanctioned implementation; raw
// modulo there has twice produced off-by-one wraps in review.
void check_segment_modulo(const std::string& path, const TokenizedFile& file,
                          std::vector<Violation>* out) {
  if (starts_with(path, "src/sched/segment_planner.") ||
      starts_with(path, "src/dfs/segment.")) {
    return;
  }
  static const std::unordered_set<std::string> kTriggerWords = {
      "cursor", "rotation", "wave", "seg", "segment", "segments"};
  const std::vector<Token>& toks = file.tokens;
  auto triggers = [&](const std::string& ident) {
    const std::vector<std::string> words = split_words(ident);
    for (std::size_t w = 0; w < words.size(); ++w) {
      if (kTriggerWords.count(words[w]) > 0) return true;
      if (w + 1 < words.size() && words[w + 1] == "block" &&
          (words[w] == "next" || words[w] == "start")) {
        return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct ||
        (toks[i].text != "%" && toks[i].text != "%=")) {
      continue;
    }
    bool hit = false;
    std::string witness;
    // Scan a bounded window either side of the operator, stopping at
    // statement/argument boundaries.
    for (int dir = -1; dir <= 1 && !hit; dir += 2) {
      std::size_t k = i;
      for (int steps = 0; steps < 8; ++steps) {
        if (dir < 0 && k == 0) break;
        k = (dir < 0) ? k - 1 : k + 1;
        if (k >= toks.size()) break;
        const Token& t = toks[k];
        if (t.kind == TokKind::kPunct &&
            (t.text == ";" || t.text == "{" || t.text == "}" ||
             t.text == "," || (dir < 0 && t.text == "(") ||
             (dir > 0 && t.text == ")"))) {
          break;
        }
        if (t.kind == TokKind::kIdent && triggers(t.text)) {
          hit = true;
          witness = t.text;
          break;
        }
      }
    }
    if (hit) {
      out->push_back(Violation{
          "segment-modulo", toks[i].line,
          "raw '%' on '" + witness +
              "'; use sched::advance_cursor/wrap_index from "
              "sched/segment_planner.h for circular segment arithmetic"});
    }
  }
}

// ---------------------------------------------------------------------------
// view-retention: a class that touches KVBatch must not hold
// std::string_view members — batch arenas are recycled between waves.
void check_view_retention(const TokenizedFile& file,
                          const std::vector<ScopeKind>& scope,
                          std::vector<Violation>* out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t open = 0; open + 1 < toks.size(); ++open) {
    if (toks[open].kind != TokKind::kPunct || toks[open].text != "{") continue;
    if (scope[open + 1] != ScopeKind::kClass) continue;
    // Find the matching close brace.
    std::size_t close = open;
    int depth = 0;
    for (; close < toks.size(); ++close) {
      if (toks[close].kind != TokKind::kPunct) continue;
      if (toks[close].text == "{") ++depth;
      if (toks[close].text == "}" && --depth == 0) break;
    }
    bool consumes_kvbatch = false;
    for (std::size_t k = open + 1; k < close; ++k) {
      if (toks[k].kind == TokKind::kIdent && toks[k].text == "KVBatch") {
        consumes_kvbatch = true;
        break;
      }
    }
    if (!consumes_kvbatch) continue;
    // Walk direct class-body member declarations (inner depth 0).
    int inner = 0;
    std::vector<const Token*> run;
    auto flush = [&]() {
      bool has_view = false;
      bool skip = false;
      int line = 0;
      for (const Token* t : run) {
        if (t->kind == TokKind::kPunct && t->text == "(") skip = true;
        if (t->kind != TokKind::kIdent) continue;
        if (t->text == "using" || t->text == "typedef" ||
            t->text == "friend") {
          skip = true;
        }
        if (t->text == "string_view") {
          has_view = true;
          line = t->line;
        }
      }
      run.clear();
      if (has_view && !skip) {
        out->push_back(Violation{
            "view-retention", line,
            "std::string_view member in a class that consumes KVBatch; "
            "batch memory is recycled between waves — store std::string "
            "(s3viewcheck's view-outlives-arena rule traces the actual "
            "stores project-wide)"});
      }
    };
    for (std::size_t k = open + 1; k < close; ++k) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kPunct && t.text == "{") {
        if (inner == 0) flush();  // brace-init / method body begins
        ++inner;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "}") {
        --inner;
        continue;
      }
      if (inner > 0) continue;
      if (t.kind == TokKind::kPunct && (t.text == ";" || t.text == ":")) {
        flush();
        continue;
      }
      run.push_back(&t);
    }
    flush();
    open = close;
  }
}

// ---------------------------------------------------------------------------
// Small hygiene rules.
void check_thread_detach(const TokenizedFile& file,
                         std::vector<Violation>* out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kPunct &&
        (toks[i].text == "." || toks[i].text == "->") &&
        toks[i + 1].kind == TokKind::kIdent && toks[i + 1].text == "detach" &&
        toks[i + 2].kind == TokKind::kPunct && toks[i + 2].text == "(") {
      out->push_back(Violation{
          "thread-detach", toks[i + 1].line,
          "detached threads outlive shutdown and race teardown; join via "
          "ThreadPool or keep the std::thread joinable"});
    }
  }
}

void check_stray_cout(const std::string& path, const TokenizedFile& file,
                      std::vector<Violation>* out) {
  if (starts_with(path, "tools/") || starts_with(path, "examples/") ||
      starts_with(path, "bench/")) {
    return;
  }
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const bool is_cout = toks[i].text == "cout";
    const bool is_printf =
        (toks[i].text == "printf" || toks[i].text == "puts") &&
        i + 1 < toks.size() && toks[i + 1].kind == TokKind::kPunct &&
        toks[i + 1].text == "(";
    if (!is_cout && !is_printf) continue;
    out->push_back(Violation{
        "stray-cout", toks[i].line,
        "'" + toks[i].text +
            "' outside tools/examples/bench; use S3_LOG so output honors "
            "the configured log level"});
  }
}

void check_sleep_in_src(const std::string& path, const TokenizedFile& file,
                        std::vector<Violation>* out) {
  if (!starts_with(path, "src/")) return;
  for (const Token& t : file.tokens) {
    if (t.kind == TokKind::kIdent &&
        (t.text == "sleep_for" || t.text == "sleep_until")) {
      out->push_back(Violation{
          "sleep-in-src", t.line,
          "'" + t.text +
              "' in src/; timing-based coordination belongs in tests or "
              "tools — use condition variables or the simulated clock"});
    }
  }
}

// wait-under-lock: blocking primitives lexically inside a RAII guard scope
// in src/. A condition wait through anything but the guard itself keeps the
// lock pinned while the thread parks; a pool handoff (submit / wait_idle)
// under a lock is the classic shared-scan stall — the submitted task may
// need the very lock the submitter is holding. This is the fast lexical
// sibling of s3lockcheck's whole-project blocking-under-lock analysis: it
// catches the obvious cases in a single file without building a call graph.
// src/common/thread_annotations.h is exempt — it implements the sanctioned
// MutexLock::wait wrapper this rule steers people toward.
void check_wait_under_lock(const std::string& path, const TokenizedFile& file,
                           std::vector<Violation>* out) {
  if (!starts_with(path, "src/")) return;
  if (path == "src/common/thread_annotations.h") return;
  const std::vector<Token>& toks = file.tokens;
  struct Guard {
    std::string var;
    int depth = 0;
  };
  std::vector<Guard> guards;
  int depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") ++depth;
      if (t.text == "}") {
        --depth;
        while (!guards.empty() && guards.back().depth > depth) {
          guards.pop_back();
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if ((t.text == "MutexLock" || t.text == "WriterMutexLock" ||
         t.text == "ReaderMutexLock") &&
        i + 2 < toks.size() && toks[i + 1].kind == TokKind::kIdent &&
        toks[i + 2].kind == TokKind::kPunct && toks[i + 2].text == "(") {
      guards.push_back(Guard{toks[i + 1].text, depth});
      continue;
    }
    if (guards.empty()) continue;
    const bool is_call = i + 1 < toks.size() &&
                         toks[i + 1].kind == TokKind::kPunct &&
                         toks[i + 1].text == "(";
    if (!is_call) continue;
    if (t.text == "wait" || t.text == "wait_for" || t.text == "wait_until") {
      // `lock.wait(cv)` on the guard itself releases the lock while parked
      // — that is the sanctioned pattern. Anything else pins the lock.
      bool on_guard = false;
      if (i >= 2 && toks[i - 1].kind == TokKind::kPunct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          toks[i - 2].kind == TokKind::kIdent) {
        for (const Guard& g : guards) {
          if (g.var == toks[i - 2].text) {
            on_guard = true;
            break;
          }
        }
      }
      if (!on_guard) {
        out->push_back(Violation{
            "wait-under-lock", t.line,
            "'" + t.text +
                "' inside a guard scope does not go through the guard; use "
                "the guard's wait() so the lock is released while parked"});
      }
      continue;
    }
    if (t.text == "sleep_for" || t.text == "sleep_until") {
      out->push_back(Violation{
          "wait-under-lock", t.line,
          "'" + t.text +
              "' while a lock is held stalls every waiter for the full "
              "duration; release the guard first"});
      continue;
    }
    if (t.text == "submit" || t.text == "submit_to" ||
        t.text == "wait_idle") {
      out->push_back(Violation{
          "wait-under-lock", t.line,
          "thread-pool '" + t.text +
              "' while a lock is held; the handed-off task (or the drain) "
              "may need the very lock being held — release the guard "
              "first"});
      continue;
    }
  }
}

// raw-clock: direct std::chrono clock reads in src/ outside the sanctioned
// timing homes. Runtime code must go through obs::now_ns/seconds_since so
// every duration lands in the same timebase the tracer stamps spans with
// (and stays mockable in one place). src/obs/ implements the wrappers;
// src/common/ predates them and owns its own timing (logging timestamps).
void check_raw_clock(const std::string& path, const TokenizedFile& file,
                     std::vector<Violation>* out) {
  if (!starts_with(path, "src/")) return;
  if (starts_with(path, "src/obs/") || starts_with(path, "src/common/")) {
    return;
  }
  static const std::unordered_set<std::string> kClockTypes = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (const Token& t : file.tokens) {
    if (t.kind == TokKind::kIdent && kClockTypes.count(t.text) > 0) {
      out->push_back(Violation{
          "raw-clock", t.line,
          "direct std::chrono::" + t.text +
              " timing in src/; use obs::now_ns/seconds_since from "
              "obs/clock.h so all runtime timing shares one timebase"});
    }
  }
}

// bounded-queue: unbounded queue construction in src/service/. The
// admission front door is the system's backpressure boundary — every queue
// there must carry an explicit bound (BoundedDeque, or BlockingQueue with a
// capacity argument), otherwise overload turns into silent queue bloat
// instead of the typed kRetryAfter/kShed decisions DESIGN.md §17 promises.
// Flags std:: queue-like containers outright and BlockingQueue declarations
// whose initializer is empty (the default ctor is the unbounded mode).
void check_bounded_queue(const std::string& path, const TokenizedFile& file,
                         std::vector<Violation>* out) {
  if (!starts_with(path, "src/service/")) return;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& name = toks[i].text;
    const bool std_scoped = i >= 2 && toks[i - 1].kind == TokKind::kPunct &&
                            toks[i - 1].text == "::" &&
                            toks[i - 2].kind == TokKind::kIdent &&
                            toks[i - 2].text == "std";
    if (std_scoped && (name == "deque" || name == "queue" ||
                       name == "priority_queue" || name == "list")) {
      out->push_back(Violation{
          "bounded-queue", toks[i].line,
          "std::" + name +
              " in src/service/; admission queues must be bounded — use "
              "BoundedDeque or a capacity-constructed BlockingQueue "
              "(backpressure model, DESIGN.md §17)"});
      continue;
    }
    if (name != "BlockingQueue") continue;
    // Skip the template argument list, tracking <> depth.
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].kind == TokKind::kPunct &&
        toks[j].text == "<") {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    // A declaration: `BlockingQueue<T> name …`. References, pointers, and
    // using-aliases put punctuation here instead and are not constructions.
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    const std::size_t k = j + 1;
    const bool default_ctor =
        k >= toks.size() ||
        (toks[k].kind == TokKind::kPunct &&
         (toks[k].text == ";" ||
          (k + 1 < toks.size() &&
           ((toks[k].text == "(" && toks[k + 1].text == ")") ||
            (toks[k].text == "{" && toks[k + 1].text == "}")))));
    if (default_ctor) {
      out->push_back(Violation{
          "bounded-queue", toks[i].line,
          "BlockingQueue default-constructed in src/service/ is unbounded; "
          "pass an explicit capacity so the admission pipeline exerts "
          "backpressure (DESIGN.md §17)"});
    }
  }
}

// raw-thread: direct std::thread (or pthread_create) in src/ outside
// src/common/. Worker threads must come from ThreadPool/PinnedThreadPool so
// every thread honors the shutdown-drain and exception-rethrow contracts and
// shows up in the pools' steal/pin telemetry; a hand-rolled thread does
// neither. std::this_thread (yield/sleep queries) is a different identifier
// and is not flagged.
void check_raw_thread(const std::string& path, const TokenizedFile& file,
                      std::vector<Violation>* out) {
  if (!starts_with(path, "src/")) return;
  if (starts_with(path, "src/common/")) return;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const bool std_thread =
        i + 2 < toks.size() && toks[i].kind == TokKind::kIdent &&
        toks[i].text == "std" && toks[i + 1].kind == TokKind::kPunct &&
        toks[i + 1].text == "::" && toks[i + 2].kind == TokKind::kIdent &&
        toks[i + 2].text == "thread";
    const bool pthread = toks[i].kind == TokKind::kIdent &&
                         toks[i].text == "pthread_create";
    if (!std_thread && !pthread) continue;
    out->push_back(Violation{
        "raw-thread", toks[i].line,
        std::string(std_thread ? "std::thread" : "pthread_create") +
            " in src/ outside common/; spawn workers through "
            "ThreadPool/PinnedThreadPool so shutdown drain, exception "
            "rethrow, and pinning stay centralized"});
  }
}

// raw-abort: direct abort()/exit()/_Exit()/quick_exit() calls in src/
// outside src/common/. Every fatal path must route through
// internal::fatal_abort (common/contracts.h) so the crash-dump hook runs and
// the black-box flight record survives: a raw abort dies with an empty
// post-mortem. src/common/ is exempt — it implements fatal_abort itself and
// owns process teardown.
void check_raw_abort(const std::string& path, const TokenizedFile& file,
                     std::vector<Violation>* out) {
  if (!starts_with(path, "src/")) return;
  if (starts_with(path, "src/common/")) return;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& name = toks[i].text;
    if (name != "abort" && name != "exit" && name != "_Exit" &&
        name != "quick_exit") {
      continue;
    }
    // Only calls: the identifier must open an argument list.
    if (i + 1 >= toks.size() || toks[i + 1].kind != TokKind::kPunct ||
        toks[i + 1].text != "(") {
      continue;
    }
    // Member calls (guard.abort(), session->exit()) and qualified names from
    // other namespaces are different functions; only the C library spellings
    // — bare, ::, or std:: — terminate the process behind the hook's back.
    if (i >= 1 && toks[i - 1].kind == TokKind::kPunct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      continue;
    }
    if (i >= 2 && toks[i - 1].kind == TokKind::kPunct &&
        toks[i - 1].text == "::" && toks[i - 2].kind == TokKind::kIdent &&
        toks[i - 2].text != "std") {
      continue;
    }
    out->push_back(Violation{
        "raw-abort", toks[i].line,
        name + "() in src/ outside common/; fatal paths must go through "
               "S3_CHECK/internal::fatal_abort so the crash-dump hook "
               "writes the flight record before the process dies"});
  }
}

void check_pragma_once(const std::string& path, const TokenizedFile& file,
                       std::vector<Violation>* out) {
  if (!ends_with(path, ".h")) return;
  for (const Token& t : file.tokens) {
    if (t.kind != TokKind::kDirective) continue;
    // Directive text starts at the '#'; whitespace around it is free-form
    // ("#pragma once", "# pragma  once").
    std::string text = t.text;
    if (!text.empty() && text[0] == '#') text = text.substr(1);
    std::istringstream in(text);
    std::string first, second;
    in >> first >> second;
    if (first == "pragma" && second == "once") return;
  }
  out->push_back(Violation{
      "pragma-once", 1, "header is missing '#pragma once'"});
}

// ---------------------------------------------------------------------------
// status-dataloss: every Status::data_loss call must name the block that was
// lost. Operators triage data loss by block id, and the failure-model
// contract (DESIGN.md §12) is that kDataLoss is only returned when a
// *specific* block has no usable replica left — an anonymous message hides
// which one. Accepts a "block" mention either in the argument list or in the
// few statements above it (messages assembled via ostringstream).
void check_status_dataloss(const std::string& path, const TokenizedFile& file,
                           std::vector<Violation>* out) {
  if (path == "src/common/status.h") return;  // the factory's own declaration
  const std::vector<Token>& toks = file.tokens;
  const auto names_block = [](const Token& t) {
    if (t.kind == TokKind::kString) {
      return t.text.find("block") != std::string::npos ||
             t.text.find("Block") != std::string::npos;
    }
    if (t.kind == TokKind::kIdent) {
      for (const std::string& word : split_words(t.text)) {
        if (word == "block") return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "data_loss") {
      continue;
    }
    if (toks[i + 1].kind != TokKind::kPunct || toks[i + 1].text != "(") {
      continue;
    }
    bool named = false;
    int depth = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind == TokKind::kPunct) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) break;
        continue;
      }
      if (names_block(toks[j])) named = true;
    }
    // Message built out-of-line: look a short window back for the block
    // mention being streamed into it.
    for (std::size_t back = 1; !named && back <= 96 && back <= i; ++back) {
      if (names_block(toks[i - back])) named = true;
    }
    if (!named) {
      out->push_back(Violation{
          "status-dataloss", toks[i].line,
          "Status::data_loss message does not name the lost block; include "
          "the block id so the loss is attributable (failure model §12)"});
    }
  }
}

// ---------------------------------------------------------------------------
// status-nodiscard: declaration-level [[nodiscard]] on Status/StatusOr
// returning functions (class-level [[nodiscard]] catches call sites, the
// declaration attribute keeps intent visible at the API).
void check_status_nodiscard(const std::string& path, const DeclIndex& index,
                            std::vector<Violation>* out) {
  for (const FunctionDecl& d : index.missing_nodiscard()) {
    if (d.file != path) continue;
    out->push_back(Violation{
        "status-nodiscard", d.line,
        "'" + d.name +
            "' returns Status/StatusOr but is not declared [[nodiscard]]"});
  }
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "naked-mutex",   "status-discard", "status-nodiscard",
      "status-dataloss", "segment-modulo", "view-retention",
      "thread-detach", "raw-thread",     "stray-cout",
      "sleep-in-src",  "raw-clock",      "pragma-once",
      "wait-under-lock", "raw-abort",    "bounded-queue",
  };
  return kRules;
}

std::vector<Violation> lint_file(
    const std::string& path, const TokenizedFile& file, const DeclIndex& index,
    const std::vector<std::string>& enabled_rules) {
  const std::vector<ScopeKind> scope = classify_scopes(file.tokens);
  const Suppressions suppressions = Suppressions::parse(file.comments);
  const std::set<std::string> enabled(enabled_rules.begin(),
                                      enabled_rules.end());

  // Self-index the file so a local helper sharing a name with an indexed
  // Status-returning function does not trip status-discard.
  DeclIndex self;
  self.index_file(path, file);

  std::vector<Violation> raw;
  if (enabled.count("naked-mutex") > 0) {
    check_naked_mutex(path, file, scope, &raw);
  }
  if (enabled.count("status-discard") > 0) {
    check_status_discard(file, scope, index, self, &raw);
  }
  if (enabled.count("status-nodiscard") > 0) {
    check_status_nodiscard(path, index, &raw);
  }
  if (enabled.count("status-dataloss") > 0) {
    check_status_dataloss(path, file, &raw);
  }
  if (enabled.count("segment-modulo") > 0) {
    check_segment_modulo(path, file, &raw);
  }
  if (enabled.count("view-retention") > 0) {
    check_view_retention(file, scope, &raw);
  }
  if (enabled.count("thread-detach") > 0) {
    check_thread_detach(file, &raw);
  }
  if (enabled.count("raw-thread") > 0) {
    check_raw_thread(path, file, &raw);
  }
  if (enabled.count("stray-cout") > 0) {
    check_stray_cout(path, file, &raw);
  }
  if (enabled.count("sleep-in-src") > 0) {
    check_sleep_in_src(path, file, &raw);
  }
  if (enabled.count("raw-clock") > 0) {
    check_raw_clock(path, file, &raw);
  }
  if (enabled.count("pragma-once") > 0) {
    check_pragma_once(path, file, &raw);
  }
  if (enabled.count("wait-under-lock") > 0) {
    check_wait_under_lock(path, file, &raw);
  }
  if (enabled.count("raw-abort") > 0) {
    check_raw_abort(path, file, &raw);
  }
  if (enabled.count("bounded-queue") > 0) {
    check_bounded_queue(path, file, &raw);
  }

  // view-retention is the lexical fast path of s3viewcheck's deeper
  // view-outlives-arena model (tools/s3viewcheck). A member the project-wide
  // analyzer has vetted — `// s3viewcheck: disable(view-outlives-arena)` —
  // must not be re-flagged here, so both tools honor that one tag.
  const Suppressions viewcheck_suppressions =
      Suppressions::parse(file.comments, "s3viewcheck:");

  std::vector<Violation> out;
  for (Violation& v : raw) {
    if (suppressions.suppressed(v.rule, v.line)) continue;
    if (v.rule == "view-retention" &&
        viewcheck_suppressions.suppressed("view-outlives-arena", v.line)) {
      continue;
    }
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace s3lint
