// Project-wide declaration index. Built from every header under the lint
// root, it records which function names return Status / StatusOr so the
// status-discard rule can flag a bare call statement, and which of those
// declarations carry [[nodiscard]] so status-nodiscard can demand it.
//
// The index is name-based, not overload-resolved: a name is only "status
// returning" for the rule engine when *every* indexed declaration of it
// returns Status/StatusOr (ambiguous names are never flagged).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "s3lint/lexer.h"

namespace s3lint {

struct FunctionDecl {
  std::string name;
  std::string file;  // path the declaration was found in
  int line = 0;
  bool returns_status = false;  // Status or StatusOr<...> return type
  bool nodiscard = false;       // declaration carries [[nodiscard]]
};

class DeclIndex {
 public:
  // Scans one tokenized file for namespace/class-scope function declarations
  // and adds them to the index.
  void index_file(const std::string& path, const TokenizedFile& file);

  // True when the name is known and every indexed declaration of it returns
  // Status/StatusOr.
  [[nodiscard]] bool unambiguously_returns_status(const std::string& name) const;

  // All indexed declarations of the name (empty vector if unknown).
  [[nodiscard]] const std::vector<FunctionDecl>& decls(
      const std::string& name) const;

  // Status-returning declarations that lack [[nodiscard]].
  [[nodiscard]] std::vector<FunctionDecl> missing_nodiscard() const;

  // True when some indexed declaration of the name returns non-Status.
  [[nodiscard]] bool returns_other(const std::string& name) const;

  // Marks a name as also having a non-status meaning (used by per-file
  // self-indexing to damp false positives from local helpers).
  void add_other(const std::string& name);

 private:
  struct NameInfo {
    std::vector<FunctionDecl> decls;
    bool returns_other = false;  // some declaration returns non-Status
  };
  std::unordered_map<std::string, NameInfo> names_;
};

}  // namespace s3lint
