// s3trace: inspect and validate Chrome trace files written by the obs layer
// (obs/chrome_trace.cpp, typically via --trace-out=<path>).
//
//   s3trace <trace.json>                  per-segment Gantt/timeline summary
//   s3trace --validate <trace.json>       schema check; exit 0 iff valid
//   s3trace postmortem <s3-crash-*.txt>   time-ordered last-N event log from
//                                         a crash dump, overwrite gaps
//                                         flagged; exit 0 iff it parses
//
// The exporter emits one event object per line inside "traceEvents", so both
// modes parse line by line with a small recursive-descent JSON reader — no
// external JSON dependency. Validation checks exactly the shape the exporter
// guarantees: phase-specific required fields, µs timestamps, journal events
// on the dedicated track with strictly increasing sequence numbers.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "postmortem.h"

namespace {

// `s3trace postmortem <dump>`: parse the crash dump and print the merged
// per-thread flight log. Exits 0 only when the dump parses cleanly, so
// check.sh --flight can use this as the "dump is well-formed" oracle.
int run_postmortem(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "s3trace: cannot open %s\n", path.c_str());
    return 2;
  }
  const s3::tools::CrashDump dump = s3::tools::parse_crash_dump(in);
  if (!dump.valid) {
    std::fprintf(stderr, "s3trace: %s is not a parseable crash dump: %s\n",
                 path.c_str(), dump.error.c_str());
    return 1;
  }
  const std::string text = s3::tools::format_postmortem(dump);
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

// --- Minimal JSON value model + parser (objects, arrays, scalars). ---------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [name, value] : fields) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view input) : input_(input) {}

  std::optional<JsonValue> parse() {
    auto value = parse_value();
    if (!value.has_value()) return std::nullopt;
    skip_ws();
    if (pos_ != input_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' ||
            input_[pos_] == '\n' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= input_.size()) return std::nullopt;
        const char esc = input_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > input_.size()) return std::nullopt;
            // Decoded only far enough for validation: keep the escape text.
            out += "\\u";
            out += input_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= input_.size()) return std::nullopt;
    const char c = input_[pos_];
    JsonValue value;
    if (c == '{') {
      ++pos_;
      value.type = JsonValue::Type::kObject;
      skip_ws();
      if (consume('}')) return value;
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key.has_value() || !consume(':')) return std::nullopt;
        auto field = parse_value();
        if (!field.has_value()) return std::nullopt;
        value.fields.emplace_back(std::move(*key), std::move(*field));
        if (consume(',')) continue;
        if (consume('}')) return value;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      value.type = JsonValue::Type::kArray;
      skip_ws();
      if (consume(']')) return value;
      while (true) {
        auto item = parse_value();
        if (!item.has_value()) return std::nullopt;
        value.items.push_back(std::move(*item));
        if (consume(',')) continue;
        if (consume(']')) return value;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto text = parse_string();
      if (!text.has_value()) return std::nullopt;
      value.type = JsonValue::Type::kString;
      value.text = std::move(*text);
      return value;
    }
    if (input_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      value.type = JsonValue::Type::kBool;
      value.boolean = true;
      return value;
    }
    if (input_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      value.type = JsonValue::Type::kBool;
      return value;
    }
    if (input_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return value;
    }
    // Number.
    const std::size_t start = pos_;
    if (pos_ < input_.size() && (input_[pos_] == '-' || input_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) != 0 ||
            input_[pos_] == '.' || input_[pos_] == 'e' || input_[pos_] == 'E' ||
            input_[pos_] == '-' || input_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    try {
      value.number = std::stod(std::string(input_.substr(start, pos_ - start)));
    } catch (...) {
      return std::nullopt;
    }
    value.type = JsonValue::Type::kNumber;
    return value;
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

// --- Exporter schema validation. -------------------------------------------

const char* const kJournalNames[] = {
    "job_admitted",    "late_job_joined", "sub_jobs_merged",
    "cursor_advanced", "batch_retired",   "job_completed",
    "batch_launched",  "batch_executed",  "segment_recomputed",
    "slow_node_excluded",
    // Failure-domain events (recovery decisions; see DESIGN.md §12).
    "node_suspected",  "node_dead",       "task_attempt_failed",
    "task_retried",    "task_hung",       "replica_failed_over",
    "block_corrupt",   "job_quarantined", "batch_rerun",
    // Admission-service events (front-door decisions; see DESIGN.md §17).
    "service_admitted", "service_rejected", "service_shed",
    "service_quota_changed",
};

// The subset of journal events that record recovery decisions.
const char* const kRecoveryNames[] = {
    "node_suspected",  "node_dead",       "task_attempt_failed",
    "task_retried",    "task_hung",       "replica_failed_over",
    "block_corrupt",   "job_quarantined", "batch_rerun",
};

bool is_journal_name(const std::string& name) {
  for (const char* known : kJournalNames) {
    if (name == known) return true;
  }
  return false;
}

bool has_number(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->type == JsonValue::Type::kNumber;
}

bool has_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->type == JsonValue::Type::kString;
}

struct Validator {
  int errors = 0;
  double last_journal_seq = -1.0;

  void fail(std::size_t line, const std::string& what) {
    std::fprintf(stderr, "s3trace: line %zu: %s\n", line, what.c_str());
    ++errors;
  }

  void check_event(std::size_t line, const JsonValue& event) {
    const JsonValue* ph = event.find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString) {
      fail(line, "event without string \"ph\"");
      return;
    }
    if (!has_number(event, "pid")) fail(line, "event without numeric pid");
    if (ph->text == "M") {
      if (!has_string(event, "name")) fail(line, "metadata without name");
      return;
    }
    if (ph->text == "X") {
      for (const char* key : {"tid", "ts", "dur"}) {
        if (!has_number(event, key)) {
          fail(line, std::string("span without numeric ") + key);
        }
      }
      if (!has_string(event, "cat") || !has_string(event, "name")) {
        fail(line, "span without cat/name");
      }
      const JsonValue* ts = event.find("ts");
      const JsonValue* dur = event.find("dur");
      if (ts != nullptr && ts->type == JsonValue::Type::kNumber &&
          ts->number < 0) {
        fail(line, "span with negative ts");
      }
      if (dur != nullptr && dur->type == JsonValue::Type::kNumber &&
          dur->number < 0) {
        fail(line, "span with negative dur");
      }
      return;
    }
    if (ph->text == "i") {
      const JsonValue* scope = event.find("s");
      if (scope == nullptr || scope->type != JsonValue::Type::kString ||
          scope->text != "p") {
        fail(line, "journal instant without process scope s:\"p\"");
      }
      const JsonValue* cat = event.find("cat");
      if (cat == nullptr || cat->text != "journal") {
        fail(line, "instant event outside the journal category");
      }
      const JsonValue* name = event.find("name");
      if (name == nullptr || !is_journal_name(name->text)) {
        fail(line, "unknown journal event name");
        return;
      }
      const JsonValue* args = event.find("args");
      if (args == nullptr || args->type != JsonValue::Type::kObject ||
          !has_number(*args, "seq")) {
        fail(line, "journal event without args.seq");
        return;
      }
      const double seq = args->find("seq")->number;
      if (seq <= last_journal_seq) {
        fail(line, "journal seq not strictly increasing");
      }
      last_journal_seq = seq;
      return;
    }
    fail(line, "unknown event phase \"" + ph->text + "\"");
  }
};

// --- Timeline summary. -----------------------------------------------------

struct BatchRow {
  double ts_us = 0;
  double dur_us = 0;
  double batch = -1;
  double file = -1;
  double start_block = 0;
  double blocks = 0;
  double jobs = 0;
};

double arg_number(const JsonValue& event, const char* key, double def) {
  const JsonValue* args = event.find("args");
  if (args == nullptr) return def;
  const JsonValue* v = args->find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) return def;
  return v->number;
}

void summarize(const std::vector<JsonValue>& events) {
  std::vector<BatchRow> batches;
  std::map<std::string, std::size_t> span_counts;
  std::map<std::string, std::size_t> journal_counts;
  double end_us = 0;

  for (const JsonValue& event : events) {
    const JsonValue* ph = event.find("ph");
    if (ph == nullptr) continue;
    if (ph->text == "X") {
      const std::string name = event.find("name")->text;
      ++span_counts[name];
      const double ts = event.find("ts")->number;
      const double dur = event.find("dur")->number;
      end_us = std::max(end_us, ts + dur);
      if (event.find("cat")->text == "driver" && name == "batch") {
        BatchRow row;
        row.ts_us = ts;
        row.dur_us = dur;
        row.batch = arg_number(event, "batch", -1);
        row.file = arg_number(event, "file", -1);
        row.start_block = arg_number(event, "start_block", 0);
        row.blocks = arg_number(event, "blocks", 0);
        row.jobs = arg_number(event, "jobs", 0);
        batches.push_back(row);
      }
    } else if (ph->text == "i") {
      ++journal_counts[event.find("name")->text];
    }
  }

  std::printf("trace summary: %.3f ms total\n\n", end_us / 1000.0);

  if (!batches.empty()) {
    std::sort(batches.begin(), batches.end(),
              [](const BatchRow& a, const BatchRow& b) {
                return a.ts_us < b.ts_us;
              });
    std::printf("per-segment timeline (driver batches):\n");
    constexpr int kWidth = 50;
    for (const BatchRow& row : batches) {
      const int lead = end_us > 0
                           ? static_cast<int>(row.ts_us / end_us * kWidth)
                           : 0;
      int bar = end_us > 0
                    ? static_cast<int>(row.dur_us / end_us * kWidth + 0.5)
                    : 0;
      bar = std::max(bar, 1);
      std::string gantt(static_cast<std::size_t>(lead), ' ');
      gantt.append(static_cast<std::size_t>(bar), '#');
      std::printf(
          "  batch %3.0f file %2.0f blocks [%4.0f,+%3.0f) jobs %2.0f "
          "|%-*s| %8.3f ms\n",
          row.batch, row.file, row.start_block, row.blocks, row.jobs, kWidth,
          gantt.c_str(), row.dur_us / 1000.0);
    }
    std::printf("\n");
  }

  if (!span_counts.empty()) {
    std::printf("spans:\n");
    for (const auto& [name, count] : span_counts) {
      std::printf("  %-24s %8zu\n", name.c_str(), count);
    }
    std::printf("\n");
  }
  if (!journal_counts.empty()) {
    std::printf("scheduler journal events:\n");
    for (const auto& [name, count] : journal_counts) {
      std::printf("  %-24s %8zu\n", name.c_str(), count);
    }
  }

  // Recovery ledger: every failure-domain decision the run had to make.
  std::size_t recovery_total = 0;
  for (const char* name : kRecoveryNames) {
    const auto it = journal_counts.find(name);
    if (it != journal_counts.end()) recovery_total += it->second;
  }
  if (recovery_total > 0) {
    std::printf("\nrecovery decisions (%zu total):\n", recovery_total);
    for (const char* name : kRecoveryNames) {
      const auto it = journal_counts.find(name);
      if (it == journal_counts.end()) continue;
      std::printf("  %-24s %8zu\n", name, it->second);
    }
  }
}

// Strips the trailing comma the exporter places between event lines.
std::string_view event_payload(const std::string& line) {
  std::string_view payload = line;
  while (!payload.empty() &&
         (payload.back() == ',' || payload.back() == '\r')) {
    payload.remove_suffix(1);
  }
  return payload;
}

}  // namespace

int main(int argc, char** argv) {
  const s3::Flags flags = s3::Flags::parse(argc, argv);
  // The flag parser's "--name value" form means `--validate <path>` stores
  // the path as the flag's value; accept both that and the =true/positional
  // spelling.
  if (flags.positional().size() == 2 && flags.positional()[0] == "postmortem") {
    return run_postmortem(flags.positional()[1]);
  }
  const bool validate = flags.has("validate");
  std::string path;
  if (validate) {
    const std::string value = flags.get_string("validate");
    if (value != "true" && value != "1" && value != "yes") path = value;
  }
  if (path.empty() && flags.positional().size() == 1) {
    path = flags.positional()[0];
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--validate] <trace.json>\n"
                 "       %s postmortem <s3-crash-*.txt>\n",
                 flags.program().c_str(), flags.program().c_str());
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "s3trace: cannot open %s\n", path.c_str());
    return 2;
  }

  Validator validator;
  std::vector<JsonValue> events;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool saw_footer = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1) {
      if (line != "{\"traceEvents\":[") {
        validator.fail(line_no, "missing {\"traceEvents\":[ header");
      } else {
        saw_header = true;
      }
      continue;
    }
    if (line == "],") {
      saw_footer = true;
      continue;
    }
    if (saw_footer || line.empty()) continue;
    const std::string_view payload = event_payload(line);
    auto event = JsonParser(payload).parse();
    if (!event.has_value() || event->type != JsonValue::Type::kObject) {
      validator.fail(line_no, "unparseable event line");
      continue;
    }
    validator.check_event(line_no, *event);
    events.push_back(std::move(*event));
  }
  if (!saw_header) validator.fail(1, "not an s3 trace file");
  if (!saw_footer) validator.fail(line_no, "missing trace footer");

  if (validate) {
    if (validator.errors > 0) {
      std::fprintf(stderr, "s3trace: %d schema error(s) in %s\n",
                   validator.errors, path.c_str());
      return 1;
    }
    std::printf("%s: valid s3 trace (%zu events)\n", path.c_str(),
                events.size());
    return 0;
  }

  if (validator.errors > 0) {
    std::fprintf(stderr, "s3trace: warning: %d schema error(s); summary may "
                 "be incomplete\n", validator.errors);
  }
  summarize(events);
  return validator.errors > 0 ? 1 : 0;
}
