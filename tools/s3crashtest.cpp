// s3crashtest: crashes on purpose, one abort path per mode, so check.sh
// --flight and the crash-dump death tests can validate the whole black-box
// pipeline end to end — correlation traffic goes in, the process dies, and
// the resulting s3-crash-*.txt must name the job/batch that was in flight.
//
//   s3crashtest check      S3_CHECK_MSG failure (contract violation)
//   s3crashtest lockrank   lock-rank inversion (kShuffleBucket then
//                          kEngineMapCollect)
//   s3crashtest view       stale-arena DebugView dereference
//
// Every mode runs inside CorrelationScope(job=7, batch=42, node=3) and
// records a handful of flight marks plus one journal event first, so the
// dump's merged log carries `batch=42` witnesses leading up to the crash.
// Exits 0 only when a mode's validator is compiled out (Release builds drop
// lock-rank and view checks); callers treat 0 as "skip".
#include <cstdio>
#include <string>
#include <string_view>

#include "common/contracts.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "common/view_checks.h"
#include "obs/crash_dump.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"

namespace {

using namespace s3;

constexpr std::uint64_t kJob = 7;
constexpr std::uint64_t kBatch = 42;
constexpr std::uint64_t kNode = 3;

// The traffic every mode records before dying: what a post-mortem is for.
void record_preamble() {
  for (std::uint64_t i = 0; i < 8; ++i) {
    S3_FLIGHT_MARK("crashtest.tick", i, kBatch);
  }
  obs::JournalEvent event;
  event.type = obs::JournalEventType::kBatchLaunched;
  event.job = JobId(kJob);
  event.batch = BatchId(kBatch);
  event.node = NodeId(kNode);
  event.detail = "s3crashtest preamble";
  obs::EventJournal::instance().record(std::move(event));
}

[[noreturn]] void crash_check() {
  S3_CHECK_MSG(false, "s3crashtest induced check failure: batch " << kBatch
                          << " job " << kJob << " never completed");
  __builtin_unreachable();
}

int crash_lockrank() {
#if S3_LOCK_RANK_CHECKS
  AnnotatedMutex outer{LockRank::kShuffleBucket};
  AnnotatedMutex inner{LockRank::kEngineMapCollect};
  MutexLock hold_outer(outer);
  MutexLock hold_inner(inner);  // inversion: 20 acquired while holding 45
  return 1;                     // unreachable when checks are live
#else
  std::fprintf(stderr, "s3crashtest: lock-rank checks compiled out\n");
  return 0;
#endif
}

int crash_view() {
#if S3_VIEW_CHECKS
  std::string bytes = "arena bytes about to go stale";
  ArenaStamp stamp;
  const DebugView view(std::string_view(bytes), stamp.cell(),
                       "s3crashtest arena");
  stamp.bump();  // invalidates every view born before this point
  const std::string_view stale = view;  // validating conversion aborts here
  std::fprintf(stderr, "unexpected: stale view read %zu bytes\n",
               stale.size());
  return 1;
#else
  std::fprintf(stderr, "s3crashtest: view checks compiled out\n");
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <check|lockrank|view>\n", argv[0]);
    return 2;
  }
  obs::install_crash_handler();
  const obs::CorrelationScope corr{JobId(kJob), BatchId(kBatch),
                                   NodeId(kNode)};
  record_preamble();
  const std::string_view mode = argv[1];
  if (mode == "check") crash_check();
  if (mode == "lockrank") return crash_lockrank();
  if (mode == "view") return crash_view();
  std::fprintf(stderr, "s3crashtest: unknown mode '%s'\n", argv[1]);
  return 2;
}
