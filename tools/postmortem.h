// Parser for the crash dumps obs/crash_dump.cpp writes (s3-crash-*.txt),
// shared by `s3trace postmortem` and the crash-dump tests so both agree on
// one grammar. Header-only and dependency-free on purpose: the tools must
// parse a dump from a build whose runtime is the thing that just crashed.
//
// Grammar (one section per `==` header, all written by signal-safe code):
//
//   # s3-crash-dump v1
//   reason: <single line, newlines flattened>
//   pid: <u64>
//   walltime_s: <u64>
//   monotonic_ns: <u64>
//   == held-locks count=<K>
//   rank <name> <num>                      (at most 64 lines)
//   == flight thread=<T> head=<H> capacity=<C> overwritten=<O>
//   event seq=... ts_ns=... kind=... name=... job=... batch=... node=...
//         a=... b=... detail="..."         (one line per surviving record)
//   == metrics | == metrics skipped
//   <registry text dump>                   (absent when skipped)
//   == end
//
// A dump truncated mid-write (the process died while dumping) still parses:
// `complete` is false and everything read up to the truncation survives.
#pragma once

#include <algorithm>
#include <cstdint>
#include <istream>
#include <sstream>
#include <string>
#include <vector>

namespace s3::tools {

struct FlightEvent {
  std::uint64_t thread = 0;
  std::uint64_t seq = 0;
  std::uint64_t ts_ns = 0;
  std::string kind;
  std::string name;
  // Ids are kept as the dump's literal tokens ("-" means no id) so callers
  // can grep for witnesses without re-encoding the invalid sentinel.
  std::string job = "-";
  std::string batch = "-";
  std::string node = "-";
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string detail;
};

struct ThreadRing {
  std::uint64_t thread = 0;
  std::uint64_t head = 0;
  std::uint64_t capacity = 0;
  // Events that fell off the ring before the dump: head - capacity when the
  // ring wrapped, 0 otherwise. The post-mortem flags these as gaps.
  std::uint64_t overwritten = 0;
  std::vector<FlightEvent> events;
};

struct HeldLock {
  std::string name;
  std::uint64_t rank = 0;
};

struct CrashDump {
  bool valid = false;     // header recognized and reason present
  bool complete = false;  // saw the trailing "== end"
  std::string error;      // first malformed line, empty when clean
  std::string reason;
  std::uint64_t pid = 0;
  std::uint64_t walltime_s = 0;
  std::uint64_t monotonic_ns = 0;
  std::uint64_t held_count = 0;
  std::vector<HeldLock> held;
  std::vector<ThreadRing> rings;
  bool metrics_skipped = false;
  std::vector<std::string> metrics_lines;
};

namespace postmortem_internal {

inline bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

// Extracts `key=` from a space-separated key=value line; false if absent.
// Values never contain spaces (detail is handled separately by the caller).
inline bool field(const std::string& line, const std::string& key,
                  std::string* out) {
  const std::string needle = " " + key + "=";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    if (line.rfind(key + "=", 0) != 0) return false;
    pos = 0;
  } else {
    pos += 1;
  }
  const std::size_t start = pos + key.size() + 1;
  const std::size_t end = line.find(' ', start);
  *out = line.substr(start, end == std::string::npos ? end : end - start);
  return true;
}

inline bool u64_field(const std::string& line, const std::string& key,
                      std::uint64_t* out) {
  std::string text;
  return field(line, key, &text) && parse_u64(text, out);
}

}  // namespace postmortem_internal

inline CrashDump parse_crash_dump(std::istream& in) {
  namespace pi = postmortem_internal;
  CrashDump dump;
  std::string line;
  if (!std::getline(in, line) || line != "# s3-crash-dump v1") {
    dump.error = "missing '# s3-crash-dump v1' header";
    return dump;
  }
  enum class Section { kHeader, kHeldLocks, kFlight, kMetrics, kEnd };
  Section section = Section::kHeader;
  const auto fail = [&dump](const std::string& why) {
    if (dump.error.empty()) dump.error = why;
  };
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line == "== end") {
      section = Section::kEnd;
      dump.complete = true;
      continue;
    }
    if (line.rfind("== held-locks count=", 0) == 0) {
      section = Section::kHeldLocks;
      if (!pi::parse_u64(line.substr(20), &dump.held_count)) {
        fail("bad held-locks count: " + line);
      }
      continue;
    }
    if (line.rfind("== flight ", 0) == 0) {
      section = Section::kFlight;
      ThreadRing ring;
      if (!pi::u64_field(line, "thread", &ring.thread) ||
          !pi::u64_field(line, "head", &ring.head) ||
          !pi::u64_field(line, "capacity", &ring.capacity) ||
          !pi::u64_field(line, "overwritten", &ring.overwritten)) {
        fail("bad flight header: " + line);
      }
      dump.rings.push_back(std::move(ring));
      continue;
    }
    if (line == "== metrics" || line == "== metrics skipped") {
      section = Section::kMetrics;
      dump.metrics_skipped = line == "== metrics skipped";
      continue;
    }
    switch (section) {
      case Section::kHeader: {
        if (line.rfind("reason: ", 0) == 0) {
          dump.reason = line.substr(8);
        } else if (line.rfind("pid: ", 0) == 0) {
          (void)pi::parse_u64(line.substr(5), &dump.pid);
        } else if (line.rfind("walltime_s: ", 0) == 0) {
          (void)pi::parse_u64(line.substr(12), &dump.walltime_s);
        } else if (line.rfind("monotonic_ns: ", 0) == 0) {
          (void)pi::parse_u64(line.substr(14), &dump.monotonic_ns);
        } else if (!line.empty()) {
          fail("unexpected header line: " + line);
        }
        break;
      }
      case Section::kHeldLocks: {
        if (line.rfind("rank ", 0) != 0) {
          fail("unexpected held-locks line: " + line);
          break;
        }
        const std::size_t sep = line.rfind(' ');
        HeldLock held;
        held.name = line.substr(5, sep - 5);
        if (sep <= 5 || !pi::parse_u64(line.substr(sep + 1), &held.rank)) {
          fail("bad held-lock line: " + line);
          break;
        }
        dump.held.push_back(std::move(held));
        break;
      }
      case Section::kFlight: {
        if (line.rfind("event ", 0) != 0) {
          fail("unexpected flight line: " + line);
          break;
        }
        FlightEvent event;
        event.thread = dump.rings.back().thread;
        std::string kind;
        std::string name;
        bool ok = pi::u64_field(line, "seq", &event.seq) &&
                  pi::u64_field(line, "ts_ns", &event.ts_ns) &&
                  pi::field(line, "kind", &kind) &&
                  pi::field(line, "name", &name) &&
                  pi::field(line, "job", &event.job) &&
                  pi::field(line, "batch", &event.batch) &&
                  pi::field(line, "node", &event.node) &&
                  pi::u64_field(line, "a", &event.a) &&
                  pi::u64_field(line, "b", &event.b);
        // The quoted detail is the last field; the writer replaces every
        // embedded quote with '.', so the payload runs to the final quote.
        const std::size_t dpos = line.find(" detail=\"");
        const std::size_t dend = line.rfind('"');
        if (ok && dpos != std::string::npos && dend > dpos + 9) {
          event.detail = line.substr(dpos + 9, dend - (dpos + 9));
        } else if (dpos == std::string::npos) {
          ok = false;
        }
        if (!ok) {
          fail("bad event line: " + line);
          break;
        }
        event.kind = std::move(kind);
        event.name = std::move(name);
        dump.rings.back().events.push_back(std::move(event));
        break;
      }
      case Section::kMetrics:
        dump.metrics_lines.push_back(line);
        break;
      case Section::kEnd:
        if (!line.empty()) fail("content after == end: " + line);
        break;
    }
  }
  dump.valid = dump.error.empty() && !dump.reason.empty();
  return dump;
}

// Renders the dump as a human post-mortem: crash summary, held locks, then
// every thread's surviving events merged into one time-ordered log with
// ring-overwrite gaps and torn-record gaps flagged inline.
inline std::string format_postmortem(const CrashDump& dump) {
  std::ostringstream out;
  out << "crash: " << dump.reason << "\n";
  out << "pid: " << dump.pid << "  walltime_s: " << dump.walltime_s
      << "  monotonic_ns: " << dump.monotonic_ns << "\n";
  out << "held-locks: " << dump.held_count;
  for (const HeldLock& held : dump.held) {
    out << " " << held.name << "(" << held.rank << ")";
  }
  out << "\n";
  std::uint64_t total_events = 0;
  std::uint64_t total_overwritten = 0;
  for (const ThreadRing& ring : dump.rings) {
    total_events += ring.events.size();
    total_overwritten += ring.overwritten;
    if (ring.overwritten > 0) {
      out << "gap: thread " << ring.thread << " overwrote "
          << ring.overwritten << " older events (ring wrapped at capacity "
          << ring.capacity << ")\n";
    }
    // Missing sequence numbers inside the surviving window are records the
    // dumper skipped because a writer was mid-store: flag them too.
    std::uint64_t expected =
        ring.head > ring.capacity ? ring.head - ring.capacity : 0;
    for (const FlightEvent& event : ring.events) {
      if (event.seq != expected) {
        out << "gap: thread " << ring.thread << " seq " << expected;
        if (event.seq > expected + 1) out << ".." << event.seq - 1;
        out << " torn at dump time\n";
      }
      expected = event.seq + 1;
    }
  }
  out << "threads: " << dump.rings.size() << "  events: " << total_events
      << "  overwritten: " << total_overwritten << "\n";
  std::vector<const FlightEvent*> merged;
  merged.reserve(total_events);
  for (const ThreadRing& ring : dump.rings) {
    for (const FlightEvent& event : ring.events) merged.push_back(&event);
  }
  std::sort(merged.begin(), merged.end(),
            [](const FlightEvent* a, const FlightEvent* b) {
              if (a->ts_ns != b->ts_ns) return a->ts_ns < b->ts_ns;
              if (a->thread != b->thread) return a->thread < b->thread;
              return a->seq < b->seq;
            });
  out << "-- merged event log (oldest first) --\n";
  for (const FlightEvent* event : merged) {
    out << "[t" << event->thread << " seq=" << event->seq << "] ts_ns="
        << event->ts_ns << " kind=" << event->kind << " name=" << event->name
        << " job=" << event->job << " batch=" << event->batch
        << " node=" << event->node << " a=" << event->a << " b=" << event->b;
    if (!event->detail.empty()) out << " detail=\"" << event->detail << "\"";
    out << "\n";
  }
  if (dump.metrics_skipped) {
    out << "metrics: skipped (crash in signal context or under an obs lock)"
        << "\n";
  }
  if (!dump.complete) out << "warning: dump truncated (no == end)\n";
  return out.str();
}

}  // namespace s3::tools
