// s3top: live terminal dashboard over the Prometheus snapshot file written
// by --snapshot-out= (obs/prometheus.cpp rewrites it atomically every
// --snapshot-interval-ms, so every poll here reads a complete exposition).
//
//   s3top <snapshot.prom>                  refresh every 500 ms until ^C
//   s3top --interval-ms=250 <snapshot.prom>
//   s3top --once <snapshot.prom>           render one frame and exit
//                                          (what the tests drive)
//
// Rendered sections, all computed from the exposition text alone:
//   * run header  — batches, map/reduce tasks, failed attempts, reruns
//   * sharing     — logical vs physical blocks and sharing_efficiency
//   * phases      — per-phase p50/p95/p99 wall time plus fault counters
//   * faults      — node deaths, quarantines, failovers, corrupt reads
//   * service     — admission decisions with rates, queue depth, per-tenant
//                   queued/inflight/tokens gauges, admission-latency
//                   quantiles (only when a SubmissionService is exporting)
// Counters are shown with a per-second rate derived from successive polls.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"

namespace {

// One exposition parse: "name value" and "name{quantile=\"q\"} value" lines;
// "# TYPE"/"# HELP" comments establish the metric kind.
struct Exposition {
  std::map<std::string, double> samples;           // plain series
  std::map<std::string, std::map<std::string, double>> quantiles;
  std::map<std::string, std::string> types;        // name -> counter/gauge/...
};

std::optional<double> parse_number(const std::string& text) {
  if (text == "+Inf") return std::numeric_limits<double>::infinity();
  if (text == "-Inf") return -std::numeric_limits<double>::infinity();
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) return std::nullopt;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

Exposition parse_exposition(FILE* file) {
  Exposition out;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), file) != nullptr) {
    std::string line(buffer);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <kind>"
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::size_t sep = line.rfind(' ');
        if (sep > 7) out.types[line.substr(7, sep - 7)] = line.substr(sep + 1);
      }
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const auto value = parse_number(line.substr(space + 1));
    if (!value.has_value()) continue;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      // Only the exporter's {quantile="..."} label ever appears.
      const std::string base = name.substr(0, brace);
      const std::size_t qpos = name.find("quantile=\"", brace);
      if (qpos != std::string::npos) {
        const std::size_t qend = name.find('"', qpos + 10);
        if (qend != std::string::npos) {
          out.quantiles[base][name.substr(qpos + 10, qend - (qpos + 10))] =
              *value;
        }
      }
      continue;
    }
    out.samples[name] = *value;
  }
  return out;
}

double sample(const Exposition& exposition, const std::string& name) {
  const auto it = exposition.samples.find(name);
  return it == exposition.samples.end() ? 0.0 : it->second;
}

std::string format_count(double value) {
  char buffer[64];
  if (value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  }
  return buffer;
}

// Nanosecond quantity with a unit that keeps 3-4 significant digits.
std::string format_ns(double ns) {
  char buffer[64];
  if (ns >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0fns", ns);
  }
  return buffer;
}

struct CounterRow {
  const char* label;
  const char* metric;
};

void render_counters(const Exposition& now, const Exposition* prev,
                     double dt_s, const std::vector<CounterRow>& rows) {
  for (const CounterRow& row : rows) {
    const double value = sample(now, row.metric);
    std::string text = "  " + std::string(row.label) + ": " +
                       format_count(value);
    if (prev != nullptr && dt_s > 0.0) {
      const double rate = (value - sample(*prev, row.metric)) / dt_s;
      if (rate > 0.0) {
        char suffix[48];
        std::snprintf(suffix, sizeof(suffix), "  (+%.1f/s)", rate);
        text += suffix;
      }
    }
    std::printf("%s\n", text.c_str());
  }
}

// Admission front-end (s3d). Only rendered when the exposition carries
// service counters — batch runs without a SubmissionService skip it.
void render_service(const Exposition& now, const Exposition* prev,
                    double dt_s) {
  if (now.samples.count("s3_service_admitted") == 0) return;
  std::printf("\nservice (admission)\n");
  render_counters(now, prev, dt_s,
                  {{"admitted", "s3_service_admitted"},
                   {"rejected", "s3_service_rejected"},
                   {"retry-after", "s3_service_retry_after"},
                   {"shed", "s3_service_shed"},
                   {"shed victims", "s3_service_shed_victims"}});
  std::printf("  queued: %s\n",
              format_count(sample(now, "s3_service_queued")).c_str());

  const auto latency = now.quantiles.find("s3_service_admission_latency_ns");
  if (latency != now.quantiles.end()) {
    const auto quantile = [&latency](const char* q) {
      const auto it = latency->second.find(q);
      return it == latency->second.end() ? 0.0 : it->second;
    };
    std::printf("  admission latency p50/p95/p99: %s / %s / %s\n",
                format_ns(quantile("0.5")).c_str(),
                format_ns(quantile("0.95")).c_str(),
                format_ns(quantile("0.99")).c_str());
  }

  // Per-tenant gauges: s3_service_tenant_<name>_{queued,inflight,tokens}.
  // Group by the <name> chunk so each tenant prints one row.
  const std::string prefix = "s3_service_tenant_";
  std::map<std::string, std::map<std::string, double>> tenants;
  for (const auto& [name, value] : now.samples) {
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string rest = name.substr(prefix.size());
    for (const char* field : {"_queued", "_inflight", "_tokens"}) {
      const std::string suffix = field;
      if (rest.size() > suffix.size() &&
          rest.compare(rest.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        tenants[rest.substr(0, rest.size() - suffix.size())][suffix] = value;
      }
    }
  }
  for (const auto& [tenant, fields] : tenants) {
    const auto field = [&fields](const char* key) {
      const auto it = fields.find(key);
      return it == fields.end() ? 0.0 : it->second;
    };
    std::printf("  tenant %-12s queued=%s inflight=%s tokens=%.1f\n",
                tenant.c_str(), format_count(field("_queued")).c_str(),
                format_count(field("_inflight")).c_str(), field("_tokens"));
  }
}

void render(const Exposition& now, const Exposition* prev, double dt_s,
            const std::string& path, bool clear_screen) {
  if (clear_screen) std::printf("\x1b[H\x1b[2J");
  std::printf("s3top — %s\n\n", path.c_str());

  std::printf("run\n");
  render_counters(now, prev, dt_s,
                  {{"batches", "s3_engine_batches"},
                   {"map tasks", "s3_engine_map_tasks"},
                   {"reduce tasks", "s3_engine_reduce_tasks"},
                   {"failed attempts", "s3_engine_failed_attempts"},
                   {"batch reruns", "s3_engine_batch_reruns"}});

  std::printf("\nsharing\n");
  const double logical = sample(now, "s3_engine_blocks_logical");
  const double physical = sample(now, "s3_engine_blocks_physical");
  std::printf("  blocks logical/physical: %s / %s\n",
              format_count(logical).c_str(), format_count(physical).c_str());
  std::printf("  sharing_efficiency: %.3f\n",
              sample(now, "s3_engine_sharing_efficiency"));
  const double batches = sample(now, "s3_engine_batches");
  if (batches > 0.0) {
    std::printf("  avg wave size (physical blocks/batch): %.1f\n",
                physical / batches);
  }

  std::printf("\nphases (wall time p50 / p95 / p99)\n");
  bool any_phase = false;
  for (const auto& [name, quantiles] : now.quantiles) {
    const std::string prefix = "s3_engine_phase_";
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() < prefix.size() + 3 ||
        name.substr(name.size() - 3) != "_ns") {
      continue;
    }
    any_phase = true;
    const std::string phase =
        name.substr(prefix.size(), name.size() - prefix.size() - 3);
    const auto quantile = [&quantiles](const char* q) {
      const auto it = quantiles.find(q);
      return it == quantiles.end() ? 0.0 : it->second;
    };
    std::printf("  %-16s %9s %9s %9s", phase.c_str(),
                format_ns(quantile("0.5")).c_str(),
                format_ns(quantile("0.95")).c_str(),
                format_ns(quantile("0.99")).c_str());
    const double minor =
        sample(now, "s3_engine_phase_" + phase + "_minor_faults");
    const double major =
        sample(now, "s3_engine_phase_" + phase + "_major_faults");
    if (minor > 0.0 || major > 0.0) {
      std::printf("  faults=%s/%s", format_count(minor).c_str(),
                  format_count(major).c_str());
    }
    std::printf("\n");
  }
  if (!any_phase) std::printf("  (no phase samples yet)\n");

  std::printf("\nfaults\n");
  render_counters(now, prev, dt_s,
                  {{"node deaths", "s3_engine_node_deaths"},
                   {"quarantines", "s3_engine_quarantines"},
                   {"replica failovers", "s3_dfs_replica_failovers"},
                   {"corrupt reads", "s3_dfs_corrupt_reads"}});

  render_service(now, prev, dt_s);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const s3::Flags flags = s3::Flags::parse(argc, argv);
  std::vector<std::string> paths = flags.positional();
  bool once = flags.get_bool("once");
  // `s3top --once <file>`: the flag parser binds the following token as the
  // switch's value, so the path never reaches positional(); reclaim it.
  const std::string once_value = flags.get_string("once");
  if (!once_value.empty() && once_value != "true" && once_value != "false") {
    once = true;
    paths.push_back(once_value);
  }
  if (paths.size() != 1) {
    std::fprintf(stderr,
                 "usage: %s [--once] [--interval-ms=N] <snapshot.prom>\n"
                 "(the file --snapshot-out= writes; see README)\n",
                 flags.program().c_str());
    return 2;
  }
  const std::string path = paths[0];
  const std::int64_t interval_ms =
      std::max<std::int64_t>(50, flags.get_int("interval-ms", 500));

  std::optional<Exposition> previous;
  auto previous_time = std::chrono::steady_clock::now();
  for (;;) {
    FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      if (once) {
        std::fprintf(stderr, "s3top: cannot open %s\n", path.c_str());
        return 2;
      }
      // The producer may not have written its first snapshot yet.
      std::printf("s3top — waiting for %s ...\n", path.c_str());
      std::fflush(stdout);
    } else {
      const Exposition now = parse_exposition(file);
      std::fclose(file);
      const auto time = std::chrono::steady_clock::now();
      const double dt_s =
          std::chrono::duration<double>(time - previous_time).count();
      render(now, previous.has_value() ? &*previous : nullptr, dt_s, path,
             /*clear_screen=*/!once);
      previous = now;
      previous_time = time;
      if (once) return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
