// s3sim — command-line driver for the cluster simulator. Runs any scheduler
// against any workload/arrival configuration at paper scale and prints the
// TET/ART summary (optionally the per-batch trace as CSV), so new scenarios
// can be explored without writing code.
//
// Examples:
//   s3sim --scheduler=s3 --pattern=sparse
//   s3sim --scheduler=mrs2 --workload=heavy --block-mb=32
//   s3sim --scheduler=s3 --pattern=poisson --jobs=20 --gap=120 --seed=7
//   s3sim --scheduler=s3 --stragglers=4 --straggler-factor=8 --csv
#include <cstdio>
#include <string>

#include "core/s3.h"

namespace {

void usage() {
  std::printf(
      "usage: s3sim [options]\n"
      "  --scheduler=fifo|mrs1|mrs2|mrs3|window|s3   (default s3)\n"
      "  --pattern=sparse|dense|uniform|poisson      (default sparse)\n"
      "  --jobs=N            jobs for uniform/poisson patterns (default 10)\n"
      "  --gap=SECONDS       inter-arrival gap/mean for uniform/poisson\n"
      "  --workload=normal|heavy|selection           (default normal)\n"
      "  --block-mb=32|64|128                        (default 64)\n"
      "  --segment-blocks=N  S3 segment size (default: file/8)\n"
      "  --window=SECONDS    TimeWindow batching window (default 60)\n"
      "  --dynamic           S3 dynamic wave sizing\n"
      "  --speculation       enable speculative execution\n"
      "  --no-slot-checking  disable S3's progress feedback\n"
      "  --stragglers=N --straggler-factor=F --straggler-at=T\n"
      "  --seed=N            RNG seed for poisson (default 1)\n"
      "  --csv               dump the per-batch trace as CSV\n"
      "  --jsonl             dump summary + per-job records as JSON lines\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s3;
  const Flags flags = Flags::parse(argc, argv);
  if (flags.get_bool("help")) {
    usage();
    return 0;
  }

  const double block_mb = flags.get_double("block-mb", 64.0);
  auto setup = workloads::make_paper_setup(block_mb);
  setup.cost.speculative_execution = flags.get_bool("speculation");

  // Workload class and input file.
  const std::string workload = flags.get_string("workload", "normal");
  sim::WorkloadCost cost;
  FileId file = setup.wordcount_file;
  std::uint64_t file_blocks = setup.wordcount_blocks;
  if (workload == "normal") {
    cost = sim::WorkloadCost::wordcount_normal();
  } else if (workload == "heavy") {
    cost = sim::WorkloadCost::wordcount_heavy();
  } else if (workload == "selection") {
    cost = sim::WorkloadCost::tpch_selection();
    file = setup.lineitem_file;
    file_blocks = setup.lineitem_blocks;
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 1;
  }

  // Arrival pattern.
  const std::string pattern = flags.get_string("pattern", "sparse");
  const auto n = static_cast<std::size_t>(flags.get_int("jobs", 10));
  const double gap = flags.get_double("gap", 60.0);
  std::vector<SimTime> arrivals;
  if (pattern == "sparse") {
    arrivals = workloads::paper_sparse_arrivals();
  } else if (pattern == "dense") {
    arrivals = workloads::paper_dense_arrivals();
  } else if (pattern == "uniform") {
    arrivals = workloads::uniform_pattern(n, gap);
  } else if (pattern == "poisson") {
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
    arrivals = workloads::poisson_pattern(n, gap, rng);
  } else {
    std::fprintf(stderr, "unknown pattern '%s'\n", pattern.c_str());
    return 1;
  }
  const auto jobs = workloads::make_sim_jobs(file, arrivals, cost);

  // Scheduler.
  const std::string scheduler_name = flags.get_string("scheduler", "s3");
  const std::uint64_t segment_blocks = static_cast<std::uint64_t>(
      flags.get_int("segment-blocks",
                    static_cast<std::int64_t>(file_blocks / 8)));
  std::unique_ptr<sched::Scheduler> scheduler;
  if (scheduler_name == "fifo") {
    scheduler = workloads::make_fifo(setup.catalog);
  } else if (scheduler_name == "mrs1") {
    scheduler = workloads::make_mrs1(setup.catalog);
  } else if (scheduler_name == "mrs2") {
    scheduler = workloads::make_mrs2(setup.catalog);
  } else if (scheduler_name == "mrs3") {
    scheduler = workloads::make_mrs3(setup.catalog);
  } else if (scheduler_name == "window") {
    scheduler = std::make_unique<sched::MRShareScheduler>(
        setup.catalog, sched::TimeWindow{flags.get_double("window", 60.0)},
        "MRS-window");
  } else if (scheduler_name == "s3") {
    sched::S3Options options;
    options.wave_sizing = flags.get_bool("dynamic")
                              ? sched::WaveSizing::kDynamicSlots
                              : sched::WaveSizing::kFixedSegments;
    options.blocks_per_segment = segment_blocks;
    scheduler = std::make_unique<sched::S3Scheduler>(setup.catalog, options,
                                                     &setup.topology);
  } else {
    std::fprintf(stderr, "unknown scheduler '%s'\n", scheduler_name.c_str());
    usage();
    return 1;
  }

  // Failure injection.
  sim::SimConfig config;
  config.cost = setup.cost;
  config.enable_progress_reports = !flags.get_bool("no-slot-checking");
  const auto stragglers = flags.get_int("stragglers", 0);
  const double factor = flags.get_double("straggler-factor", 4.0);
  const double at = flags.get_double("straggler-at", 30.0);
  const std::size_t num_nodes = setup.topology.num_nodes();
  for (std::int64_t i = 0; i < stragglers; ++i) {
    const auto node = static_cast<std::uint64_t>(i) *
                      (num_nodes / static_cast<std::uint64_t>(stragglers));
    config.speed_changes.push_back(sim::SpeedChange{at, NodeId(node), factor});
  }

  sim::SimEngine engine(setup.topology, setup.catalog, config);
  auto run = engine.run(*scheduler, jobs);
  if (!run.is_ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 run.status().to_string().c_str());
    return 1;
  }
  const auto& result = run.value();

  std::printf("scheduler=%s workload=%s pattern=%s jobs=%zu block=%gMB\n",
              scheduler->name().c_str(), workload.c_str(), pattern.c_str(),
              jobs.size(), block_mb);
  std::printf("TET %.1f s   ART %.1f s   mean wait %.1f s   p95 response "
              "%.1f s\n",
              result.summary.tet, result.summary.art,
              result.summary.mean_waiting, result.summary.p95_response);
  std::printf("batches %zu   cluster busy %.1f s   launch overhead %.1f s   "
              "avg members %.2f\n",
              result.batches.size(), result.trace_stats.total_busy,
              result.trace_stats.total_launch, result.trace_stats.avg_members);
  if (flags.get_bool("csv")) {
    std::printf("%s", sim::batches_to_csv(result.batches).c_str());
  }
  if (flags.get_bool("jsonl")) {
    std::printf("%s\n",
                metrics::summary_to_json(result.summary, scheduler_name)
                    .c_str());
    std::printf("%s", metrics::jobs_to_jsonl(result.jobs).c_str());
  }
  return 0;
}
