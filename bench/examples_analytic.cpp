// Examples 1-3 (paper §III): the worked two-job scenarios, regenerated from
// the closed-form analytic models. Two jobs over the same file, 100 s each;
// J2 arrives 20 s (Example 1) or 80 s (Example 2) after J1.
// Paper values:
//   offset 20 s: FIFO 200/140, MRShare 120/110, S3 120/100
//   offset 80 s: FIFO 200/110, MRShare 180/140, S3 180/100
#include <cstdio>

#include "harness.h"

int main() {
  using namespace s3;

  metrics::TableWriter table({"scenario", "scheme", "TET (s)", "ART (s)",
                              "paper TET", "paper ART"});
  struct Expect {
    const char* tet;
    const char* art;
  };
  const auto add = [&](const char* scenario, const char* scheme,
                       const sched::AnalyticOutcome& o, Expect e) {
    table.add_row({scenario, scheme, format_double(o.tet, 0),
                   format_double(o.art, 0), e.tet, e.art});
  };

  for (const double offset : {20.0, 80.0}) {
    sched::AnalyticScenario s;
    s.arrivals = {0.0, offset};
    s.job_duration = 100.0;
    const std::string name =
        "J2 at t=" + std::to_string(static_cast<int>(offset)) + "s";
    const bool early = offset == 20.0;
    add(name.c_str(), "FIFO", sched::analytic_fifo(s),
        early ? Expect{"200", "140"} : Expect{"200", "110"});
    add(name.c_str(), "MRShare", sched::analytic_mrshare(s, {2}),
        early ? Expect{"120", "110"} : Expect{"180", "140"});
    add(name.c_str(), "S3", sched::analytic_s3(s),
        early ? Expect{"120", "100"} : Expect{"180", "100"});
  }
  std::printf("=== Examples 1-3 — analytic TET/ART for the worked "
              "two-job scenarios ===\n%s\n",
              table.render().c_str());
  return 0;
}
