// Figure 4(c): sparse job pattern, heavy wordcount workload, 64 MB blocks.
// Paper: S3's TET grows ~40 % vs the normal workload; data processing
// dominates, so the shared-scan advantage narrows — MRS2 saves ~15 % of TET
// vs S3 while MRS3 extends it ~40 %; every MRShare variant has poor ART.
#include "harness.h"

#include <cstdio>

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);
  const auto arrivals = workloads::paper_sparse_arrivals();

  const auto heavy_jobs = workloads::make_sim_jobs(
      setup.wordcount_file, arrivals, sim::WorkloadCost::wordcount_heavy());
  const auto result =
      bench::run_figure4(setup, heavy_jobs, setup.default_segment_blocks());
  bench::print_figure(
      "Figure 4(c) — sparse pattern, heavy workload, 64 MB blocks", result,
      {{"MRS2", 0.85, 0.0},    // paper: MRS2 ~15 % less TET than S3
       {"MRS3", 1.4, 0.0}});   // paper: MRS3 ~40 % more

  // The paper also reports S3's heavy TET ≈ +40 % over normal.
  const auto normal_jobs = workloads::make_sim_jobs(
      setup.wordcount_file, arrivals, sim::WorkloadCost::wordcount_normal());
  const auto normal =
      bench::run_figure4(setup, normal_jobs, setup.default_segment_blocks());
  const double heavy_tet = result.table.summary_for("S3").tet;
  const double normal_tet = normal.table.summary_for("S3").tet;
  std::printf("S3 TET heavy/normal: %.2f (paper ~1.40)\n\n",
              heavy_tet / normal_tet);
  return 0;
}
