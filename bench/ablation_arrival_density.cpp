// Ablation: arrival density sweep. 10 jobs with uniform inter-arrival gap
// from 0 (fully dense) to beyond a job's duration (fully sparse). Locates
// the crossovers the paper discusses: MRS1 wins only near gap 0; S3's
// advantage peaks at moderate density; with very sparse arrivals every
// scheme converges to sequential execution.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);

  metrics::TableWriter table({"gap (s)", "S3 TET", "MRS1 TET", "FIFO TET",
                              "S3 ART", "MRS1 ART", "FIFO ART"});
  for (const double gap : {0.0, 10.0, 30.0, 60.0, 120.0, 240.0, 400.0}) {
    const auto jobs = workloads::make_sim_jobs(
        setup.wordcount_file, workloads::uniform_pattern(10, gap),
        sim::WorkloadCost::wordcount_normal());
    double tet[3], art[3];
    int i = 0;
    for (const char* scheme : {"s3", "mrs1", "fifo"}) {
      auto scheduler =
          scheme[0] == 's'
              ? workloads::make_s3(setup.catalog, setup.topology,
                                   setup.default_segment_blocks())
              : (scheme[0] == 'm' ? workloads::make_mrs1(setup.catalog)
                                  : workloads::make_fifo(setup.catalog));
      sim::SimConfig config;
      config.cost = setup.cost;
      sim::SimEngine engine(setup.topology, setup.catalog, config);
      auto run = engine.run(*scheduler, jobs);
      S3_CHECK_MSG(run.is_ok(), run.status());
      tet[i] = run.value().summary.tet;
      art[i] = run.value().summary.art;
      ++i;
    }
    table.add_row({format_double(gap, 0), format_double(tet[0], 1),
                   format_double(tet[1], 1), format_double(tet[2], 1),
                   format_double(art[0], 1), format_double(art[1], 1),
                   format_double(art[2], 1)});
  }
  std::printf("=== Ablation — arrival density sweep (10 normal wordcount "
              "jobs) ===\n%s\n",
              table.render().c_str());
  return 0;
}
