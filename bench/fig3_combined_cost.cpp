// Figure 3: cost of combined job processing. n wordcount jobs submitted
// together are processed as one shared-scan batch over the 160 GB / 2,560
// block file (2,560 map tasks, 30 reduce tasks); n varies 1..10.
// Paper: at n = 10, total execution time +25.5 %, average map task time
// +28.8 %, average reduce time +23.5 % vs n = 1 — modest overhead compared
// with the n-fold work saved.
//
// Reported from the simulator at paper scale; the real-engine counterpart
// (bytes actually scanned once per batch) is verified in
// tests/integration_test.cpp and examples/shared_scan_wordcount.cpp.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);

  metrics::TableWriter table({"n jobs", "TET (s)", "avg map task (s)",
                              "avg reduce (s)", "TET vs n=1", "map vs n=1",
                              "reduce vs n=1"});
  double tet1 = 0.0, map1 = 0.0, reduce1 = 0.0;
  for (std::size_t n = 1; n <= 10; ++n) {
    // All n jobs arrive at t=0; MRS1 batches them into one shared pass.
    const auto jobs = workloads::make_sim_jobs(
        setup.wordcount_file, workloads::dense_pattern(n, 0.0),
        sim::WorkloadCost::wordcount_normal());
    auto scheduler = workloads::make_mrs1(setup.catalog);
    sim::SimConfig config;
    config.cost = setup.cost;
    sim::SimEngine engine(setup.topology, setup.catalog, config);
    auto run = engine.run(*scheduler, jobs);
    S3_CHECK_MSG(run.is_ok(), run.status());
    const auto& r = run.value();
    S3_CHECK(r.batches.size() == 1);

    const double tet = r.summary.tet;
    const double map = r.trace_stats.avg_map_task;
    const double reduce = r.trace_stats.avg_reduce_task;
    if (n == 1) {
      tet1 = tet;
      map1 = map;
      reduce1 = reduce;
    }
    table.add_row({std::to_string(n), format_double(tet, 1),
                   format_double(map, 3), format_double(reduce, 1),
                   "+" + format_double((tet / tet1 - 1.0) * 100.0, 1) + "%",
                   "+" + format_double((map / map1 - 1.0) * 100.0, 1) + "%",
                   "+" + format_double((reduce / reduce1 - 1.0) * 100.0, 1) +
                       "%"});
  }
  std::printf("=== Figure 3 — cost of combined jobs (160 GB wordcount, "
              "2,560 map tasks, 30 reduce tasks) ===\n%s",
              table.render().c_str());
  std::printf("paper at n=10: TET +25.5%%, map +28.8%%, reduce +23.5%%\n\n");
  return 0;
}
