// Figure 4(e): sparse pattern, normal workload, 32 MB blocks.
// Paper: more, smaller tasks raise per-task overhead so every scheme slows;
// the effective workload gets denser (jobs run longer against the same
// arrival schedule), so sharing pays more: MRShare is 1.35-1.72x S3 in TET
// and 2-3.86x in ART.
#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(32.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());

  const auto result =
      bench::run_figure4(setup, jobs, setup.default_segment_blocks());
  bench::print_figure(
      "Figure 4(e) — sparse pattern, normal workload, 32 MB blocks", result,
      {{"MRS1", 1.72, 3.86},
       {"MRS2", 1.5, 2.9},
       {"MRS3", 1.35, 2.0}});  // paper ranges: TET 1.35-1.72, ART 2-3.86
  return 0;
}
