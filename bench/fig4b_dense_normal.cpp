// Figure 4(b): dense job pattern, normal workload, 64 MB blocks.
// Paper: MRS1 is best (waits only briefly for all 10 jobs, then one shared
// pass), even beating S3 (which pays per-sub-job launch overhead across ~13
// merged sub-jobs); MRS3 is up to >3x slower than S3; FIFO unchanged vs the
// sparse pattern.
#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_dense_arrivals(),
      sim::WorkloadCost::wordcount_normal());

  const auto result =
      bench::run_figure4(setup, jobs, setup.default_segment_blocks());
  bench::print_figure(
      "Figure 4(b) — dense pattern, normal workload, 64 MB blocks", result,
      {{"FIFO", 0.0, 0.0},   // paper: roughly unchanged absolute times
       {"MRS1", 0.95, 0.95}, // paper: MRS1 slightly better than S3
       {"MRS3", 3.0, 3.0}}); // paper: "more than three times slower"
  return 0;
}
