// Micro-benchmarks (google-benchmark) for the hot paths: the shared-scan
// record reader, shuffle sort/group, the Job Queue Manager's batch formation,
// and a full simulator iteration.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/s3.h"

namespace {

using namespace s3;

dfs::Payload make_text_payload(std::size_t bytes) {
  workloads::TextCorpusGenerator corpus;
  return std::make_shared<const std::string>(
      corpus.generate_block(0, ByteSize(bytes)));
}

void BM_LineRecordReader(benchmark::State& state) {
  const auto payload = make_text_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    dfs::LineRecordReader reader(payload);
    dfs::Record record;
    std::uint64_t records = 0;
    while (reader.next(record)) ++records;
    benchmark::DoNotOptimize(records);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload->size()));
}
BENCHMARK(BM_LineRecordReader)->Arg(64 << 10)->Arg(1 << 20);

void BM_SharedScanReader(benchmark::State& state) {
  const auto payload = make_text_payload(256 << 10);
  const auto consumers = state.range(0);
  for (auto _ : state) {
    dfs::SharedScanReader reader(payload);
    std::uint64_t sink = 0;
    for (std::int64_t c = 0; c < consumers; ++c) {
      reader.add_consumer(
          [&sink](const dfs::Record& r) { sink += r.data.size(); });
    }
    benchmark::DoNotOptimize(reader.scan());
    benchmark::DoNotOptimize(sink);
  }
  // Logical bytes served per wall second — the shared-scan win shows as
  // near-flat time while this rises with the consumer count.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload->size()) *
                          consumers);
}
BENCHMARK(BM_SharedScanReader)->Arg(1)->Arg(2)->Arg(4)->Arg(10);

void BM_ShuffleSortAndGroup(benchmark::State& state) {
  Rng rng(7);
  std::vector<engine::KeyValue> records;
  records.reserve(static_cast<std::size_t>(state.range(0)));
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    records.push_back(engine::KeyValue{
        "key" + std::to_string(rng.uniform_u64(1000)), "1"});
  }
  for (auto _ : state) {
    auto copy = records;
    std::uint64_t groups = engine::sort_and_group(
        std::move(copy),
        [](const std::string&, const std::vector<std::string>&) {});
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ShuffleSortAndGroup)->Arg(1 << 12)->Arg(1 << 16);

// The flat path's in-map combining: same key distribution as
// BM_ShuffleSortAndGroup, grouped by hashing over the arena instead of
// sorting owned strings — the direct replacement measurement.
void BM_HashCombine(benchmark::State& state) {
  Rng rng(7);
  engine::KVBatch batch;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    batch.append("key" + std::to_string(rng.uniform_u64(1000)), "1");
  }
  for (auto _ : state) {
    std::uint64_t groups = engine::hash_group(
        batch, [](std::string_view, const std::vector<std::string_view>&) {});
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashCombine)->Arg(1 << 12)->Arg(1 << 16);

// The flat path's reduce-side grouping: k sorted runs k-way merged, vs the
// legacy from-scratch global sort over the same record count.
void BM_SortedRunMerge(benchmark::State& state) {
  Rng rng(7);
  constexpr std::int64_t kRuns = 16;
  std::vector<engine::KVBatch> runs(kRuns);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    runs[static_cast<std::size_t>(i % kRuns)].append(
        "key" + std::to_string(rng.uniform_u64(1000)), "1");
  }
  for (auto& run : runs) run.sort_by_key();
  for (auto _ : state) {
    std::uint64_t groups = engine::merge_runs_and_group(
        runs, [](std::string_view, const std::vector<std::string_view>&) {});
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SortedRunMerge)->Arg(1 << 12)->Arg(1 << 16);

// Full map-side data path on real bytes: one block scanned once for n member
// wordcount jobs (empty prefix = every word emitted), combined and published
// to the shuffle store. Items = map output records across all members, so
// items/sec is the engine's end-to-end map throughput.
void BM_MapRunnerEndToEnd(benchmark::State& state) {
  const std::int64_t members = state.range(0);
  dfs::BlockStore store;
  workloads::TextCorpusGenerator corpus;
  S3_CHECK(store.put(BlockId(0), corpus.generate_block(0, ByteSize(256 << 10)))
               .is_ok());
  dfs::StoredBlocks source(store);

  std::vector<engine::JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(members));
  for (std::int64_t j = 0; j < members; ++j) {
    specs.push_back(workloads::make_wordcount_job(
        JobId(static_cast<std::uint64_t>(j)), FileId(0), "", 4,
        /*with_combiner=*/true));
  }

  std::uint64_t records_per_iter = 0;
  for (auto _ : state) {
    engine::ShuffleStore shuffle;
    for (const auto& spec : specs) {
      shuffle.register_job(spec.id, spec.num_reduce_tasks);
    }
    engine::MapRunner runner(source, shuffle);
    engine::MapTaskSpec task;
    task.id = TaskId(0);
    task.block = BlockId(0);
    for (const auto& spec : specs) task.jobs.push_back(&spec);
    auto outcome = runner.run(task);
    S3_CHECK(outcome.is_ok());
    records_per_iter = 0;
    for (const auto& [job, counters] : outcome.value().per_job) {
      records_per_iter += counters.map_output_records;
    }
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records_per_iter));
}
BENCHMARK(BM_MapRunnerEndToEnd)->Arg(1)->Arg(4)->Arg(10);

void BM_JobQueueManagerCycle(benchmark::State& state) {
  const std::uint64_t file_blocks = 2560;
  const std::uint64_t wave = 320;
  const auto jobs = state.range(0);
  for (auto _ : state) {
    sched::JobQueueManager jqm(FileId(0), file_blocks);
    for (std::int64_t j = 0; j < jobs; ++j) jqm.admit(JobId(static_cast<std::uint64_t>(j)));
    std::uint64_t batches = 0;
    while (!jqm.empty()) {
      auto batch = jqm.form_batch(BatchId(batches++), wave);
      benchmark::DoNotOptimize(batch);
      jqm.complete_batch();
    }
    benchmark::DoNotOptimize(batches);
  }
}
BENCHMARK(BM_JobQueueManagerCycle)->Arg(1)->Arg(10)->Arg(100);

void BM_SimulatedSparseRun(benchmark::State& state) {
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());
  for (auto _ : state) {
    auto scheduler = workloads::make_s3(setup.catalog, setup.topology,
                                        setup.default_segment_blocks());
    sim::SimConfig config;
    config.cost = setup.cost;
    sim::SimEngine engine(setup.topology, setup.catalog, config);
    auto run = engine.run(*scheduler, jobs);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_SimulatedSparseRun);

}  // namespace

// Like BENCHMARK_MAIN(), plus an S3_TRACE=1 environment switch that turns
// the span tracer on for the whole run — the bench overhead guard in
// scripts/check.sh compares the same benchmark with tracing off and on.
// Events stay in the tracer's bounded sink (dropped beyond the cap, never
// unbounded); no trace file is written.
int main(int argc, char** argv) {
  const char* trace = std::getenv("S3_TRACE");
  if (trace != nullptr && trace[0] == '1') {
    s3::obs::Tracer::instance().set_enabled(true);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
