// Micro-benchmarks (google-benchmark) for the hot paths: the shared-scan
// record reader, shuffle sort/group, the Job Queue Manager's batch formation,
// and a full simulator iteration.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>

#include "common/pinned_thread_pool.h"
#include "engine/arena_pool.h"
#include "core/s3.h"
#include "workloads/tokenize.h"

namespace {

using namespace s3;

dfs::Payload make_text_payload(std::size_t bytes) {
  workloads::TextCorpusGenerator corpus;
  return std::make_shared<const std::string>(
      corpus.generate_block(0, ByteSize(bytes)));
}

void BM_LineRecordReader(benchmark::State& state) {
  const auto payload = make_text_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    dfs::LineRecordReader reader(payload);
    dfs::Record record;
    std::uint64_t records = 0;
    while (reader.next(record)) ++records;
    benchmark::DoNotOptimize(records);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload->size()));
}
BENCHMARK(BM_LineRecordReader)->Arg(64 << 10)->Arg(1 << 20);

void BM_SharedScanReader(benchmark::State& state) {
  const auto payload = make_text_payload(256 << 10);
  const auto consumers = state.range(0);
  for (auto _ : state) {
    dfs::SharedScanReader reader(payload);
    std::uint64_t sink = 0;
    for (std::int64_t c = 0; c < consumers; ++c) {
      reader.add_consumer(
          [&sink](const dfs::Record& r) { sink += r.data.size(); });
    }
    benchmark::DoNotOptimize(reader.scan());
    benchmark::DoNotOptimize(sink);
  }
  // Logical bytes served per wall second — the shared-scan win shows as
  // near-flat time while this rises with the consumer count.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload->size()) *
                          consumers);
}
BENCHMARK(BM_SharedScanReader)->Arg(1)->Arg(2)->Arg(4)->Arg(10);

// Shuffle-side sort+group on the representation the engine actually ships:
// records live in a flat KVBatch arena, are sorted in place, and grouped by
// the run merger (a map-side run entering the reduce path). The owned-string
// variant this replaced stagnated across PR 1 because it never moved off the
// legacy representation; it is kept below as _Legacy for comparison.
void BM_ShuffleSortAndGroup(benchmark::State& state) {
  Rng rng(7);
  engine::KVBatch batch;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    batch.append("key" + std::to_string(rng.uniform_u64(1000)), "1");
  }
  for (auto _ : state) {
    std::vector<engine::KVBatch> runs(1);
    runs[0] = batch;
    runs[0].sort_by_key();
    std::uint64_t groups = engine::merge_runs_and_group(
        runs, [](std::string_view, const std::vector<std::string_view>&) {});
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ShuffleSortAndGroup)->Arg(1 << 12)->Arg(1 << 16);

void BM_ShuffleSortAndGroup_Legacy(benchmark::State& state) {
  Rng rng(7);
  std::vector<engine::KeyValue> records;
  records.reserve(static_cast<std::size_t>(state.range(0)));
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    records.push_back(engine::KeyValue{
        "key" + std::to_string(rng.uniform_u64(1000)), "1"});
  }
  for (auto _ : state) {
    auto copy = records;
    std::uint64_t groups = engine::sort_and_group(
        std::move(copy),
        [](const std::string&, const std::vector<std::string>&) {});
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ShuffleSortAndGroup_Legacy)->Arg(1 << 12)->Arg(1 << 16);

// The flat path's in-map combining: same key distribution as
// BM_ShuffleSortAndGroup, grouped by hashing over the arena instead of
// sorting owned strings — the direct replacement measurement.
void BM_HashCombine(benchmark::State& state) {
  Rng rng(7);
  engine::KVBatch batch;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    batch.append("key" + std::to_string(rng.uniform_u64(1000)), "1");
  }
  for (auto _ : state) {
    std::uint64_t groups = engine::hash_group(
        batch, [](std::string_view, const std::vector<std::string_view>&) {});
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashCombine)->Arg(1 << 12)->Arg(1 << 16);

// The flat path's reduce-side grouping: k sorted runs k-way merged, vs the
// legacy from-scratch global sort over the same record count.
void BM_SortedRunMerge(benchmark::State& state) {
  Rng rng(7);
  constexpr std::int64_t kRuns = 16;
  std::vector<engine::KVBatch> runs(kRuns);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    runs[static_cast<std::size_t>(i % kRuns)].append(
        "key" + std::to_string(rng.uniform_u64(1000)), "1");
  }
  for (auto& run : runs) run.sort_by_key();
  for (auto _ : state) {
    std::uint64_t groups = engine::merge_runs_and_group(
        runs, [](std::string_view, const std::vector<std::string_view>&) {});
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SortedRunMerge)->Arg(1 << 12)->Arg(1 << 16);

// Full map-side data path on real bytes: one block scanned once for n member
// wordcount jobs (empty prefix = every word emitted), combined and published
// to the shuffle store. Items = map output records across all members, so
// items/sec is the engine's end-to-end map throughput.
void BM_MapRunnerEndToEnd(benchmark::State& state) {
  const std::int64_t members = state.range(0);
  dfs::BlockStore store;
  workloads::TextCorpusGenerator corpus;
  S3_CHECK(store.put(BlockId(0), corpus.generate_block(0, ByteSize(256 << 10)))
               .is_ok());
  dfs::StoredBlocks source(store);

  std::vector<engine::JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(members));
  for (std::int64_t j = 0; j < members; ++j) {
    specs.push_back(workloads::make_wordcount_job(
        JobId(static_cast<std::uint64_t>(j)), FileId(0), "", 4,
        /*with_combiner=*/true));
  }

  std::uint64_t records_per_iter = 0;
  for (auto _ : state) {
    engine::ShuffleStore shuffle;
    for (const auto& spec : specs) {
      shuffle.register_job(spec.id, spec.num_reduce_tasks);
    }
    engine::MapRunner runner(source, shuffle);
    engine::MapTaskSpec task;
    task.id = TaskId(0);
    task.block = BlockId(0);
    for (const auto& spec : specs) task.jobs.push_back(&spec);
    auto outcome = runner.run(task);
    S3_CHECK(outcome.is_ok());
    records_per_iter = 0;
    for (const auto& [job, counters] : outcome.value().per_job) {
      records_per_iter += counters.map_output_records;
    }
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records_per_iter));
}
BENCHMARK(BM_MapRunnerEndToEnd)->Arg(1)->Arg(4)->Arg(10);

// Same map-side data path fanned out over the work-stealing pool: one block
// per map task, `workers` pinned-pool workers, arena pool recycling batches
// per worker shard. Args are {members, workers}. Distinct name from
// BM_MapRunnerEndToEnd so the check.sh trace-overhead guard's anchor
// (^BM_MapRunnerEndToEnd/4$) keeps matching exactly one benchmark.
void BM_MapRunnerEndToEndThreads(benchmark::State& state) {
  const std::int64_t members = state.range(0);
  const std::size_t workers = static_cast<std::size_t>(state.range(1));
  constexpr std::uint64_t kBlocks = 4;
  dfs::BlockStore store;
  workloads::TextCorpusGenerator corpus;
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    S3_CHECK(store.put(BlockId(b), corpus.generate_block(b, ByteSize(64 << 10)))
                 .is_ok());
  }
  dfs::StoredBlocks source(store);

  std::vector<engine::JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(members));
  for (std::int64_t j = 0; j < members; ++j) {
    specs.push_back(workloads::make_wordcount_job(
        JobId(static_cast<std::uint64_t>(j)), FileId(0), "", 4,
        /*with_combiner=*/true));
  }

  PinnedThreadPoolOptions pool_options;
  pool_options.num_threads = workers;
  PinnedThreadPool pool(pool_options);
  engine::BatchArenaPool arenas(workers);

  std::uint64_t records_per_iter = 0;
  for (auto _ : state) {
    engine::ShuffleStore shuffle;
    for (const auto& spec : specs) {
      shuffle.register_job(spec.id, spec.num_reduce_tasks);
    }
    engine::MapRunner runner(source, shuffle);
    runner.set_locality(&arenas, &pool, 0);
    std::atomic<std::uint64_t> records{0};
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      const bool accepted = pool.submit_to(b % workers, [&, b] {
        engine::MapTaskSpec task;
        task.id = TaskId(b);
        task.block = BlockId(b);
        for (const auto& spec : specs) task.jobs.push_back(&spec);
        auto outcome = runner.run(task);
        S3_CHECK(outcome.is_ok());
        std::uint64_t sum = 0;
        for (const auto& [job, counters] : outcome.value().per_job) {
          sum += counters.map_output_records;
        }
        records.fetch_add(sum, std::memory_order_relaxed);
      });
      S3_CHECK(accepted);
    }
    pool.wait_idle();
    records_per_iter = records.load();
    benchmark::DoNotOptimize(records_per_iter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records_per_iter));
}
// UseRealTime: the work runs on pool threads, so main-thread CPU time
// would wildly overstate throughput.
BENCHMARK(BM_MapRunnerEndToEndThreads)
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->UseRealTime();

// Raw pool overhead: submit a wave of trivial tasks and wait for idle.
// Items/sec is the task dispatch+steal+complete rate ceiling.
void BM_PinnedPoolSubmit(benchmark::State& state) {
  PinnedThreadPoolOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  PinnedThreadPool pool(options);
  constexpr int kTasksPerWave = 1024;
  for (auto _ : state) {
    std::atomic<std::uint64_t> sink{0};
    for (int i = 0; i < kTasksPerWave; ++i) {
      const bool accepted = pool.submit(
          [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
      S3_CHECK(accepted);
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kTasksPerWave);
}
BENCHMARK(BM_PinnedPoolSubmit)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Tokenizer scan throughput per mode over corpus text. Arg 0 = scalar
// oracle, 1 = SWAR, 2 = SSE2 (falls back to SWAR where unavailable).
void BM_Tokenize(benchmark::State& state) {
  const workloads::TokenizeMode mode =
      state.range(0) == 0   ? workloads::TokenizeMode::kScalar
      : state.range(0) == 1 ? workloads::TokenizeMode::kSwar
                            : workloads::TokenizeMode::kSimd;
  workloads::TextCorpusGenerator corpus;
  const std::string text = corpus.generate_block(0, ByteSize(256 << 10));
  workloads::set_tokenize_mode(mode);
  for (auto _ : state) {
    std::uint64_t words = 0;
    std::uint64_t bytes = 0;
    workloads::for_each_word(text, [&](std::string_view w) {
      ++words;
      bytes += w.size();
    });
    benchmark::DoNotOptimize(words);
    benchmark::DoNotOptimize(bytes);
  }
  workloads::set_tokenize_mode(workloads::TokenizeMode::kAuto);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_Tokenize)->Arg(0)->Arg(1)->Arg(2);

void BM_JobQueueManagerCycle(benchmark::State& state) {
  const std::uint64_t file_blocks = 2560;
  const std::uint64_t wave = 320;
  const auto jobs = state.range(0);
  for (auto _ : state) {
    sched::JobQueueManager jqm(FileId(0), file_blocks);
    for (std::int64_t j = 0; j < jobs; ++j) jqm.admit(JobId(static_cast<std::uint64_t>(j)));
    std::uint64_t batches = 0;
    while (!jqm.empty()) {
      auto batch = jqm.form_batch(BatchId(batches++), wave);
      benchmark::DoNotOptimize(batch);
      jqm.complete_batch();
    }
    benchmark::DoNotOptimize(batches);
  }
}
BENCHMARK(BM_JobQueueManagerCycle)->Arg(1)->Arg(10)->Arg(100);

void BM_SimulatedSparseRun(benchmark::State& state) {
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());
  for (auto _ : state) {
    auto scheduler = workloads::make_s3(setup.catalog, setup.topology,
                                        setup.default_segment_blocks());
    sim::SimConfig config;
    config.cost = setup.cost;
    sim::SimEngine engine(setup.topology, setup.catalog, config);
    auto run = engine.run(*scheduler, jobs);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_SimulatedSparseRun);

}  // namespace

// Like BENCHMARK_MAIN(), plus an S3_TRACE=1 environment switch that turns
// the span tracer on for the whole run — the bench overhead guard in
// scripts/check.sh compares the same benchmark with tracing off and on.
// Events stay in the tracer's bounded sink (dropped beyond the cap, never
// unbounded); no trace file is written.
int main(int argc, char** argv) {
  const char* trace = std::getenv("S3_TRACE");
  if (trace != nullptr && trace[0] == '1') {
    s3::obs::Tracer::instance().set_enabled(true);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
