// Arrival-storm benchmark: the admission path under sustained concurrent
// submission.
//
// Part 1 — JQM admission A/B. A driver thread churns form_batch /
// complete_batch over a queue that keeps growing (the paper's Algorithm 1
// hot loop: each form_batch scans every queued job under the queue mutex)
// while admit threads pour new jobs in. Serialized mode funnels every admit
// through that same mutex, so admission stalls behind the O(jobs) candidate
// scan; sharded mode appends to per-shard pending lists and folds at the
// next form_batch, so admission throughput is independent of queue depth.
// The reported ratio is the PR's acceptance number (sharded >= 5x).
//
// Part 2 — SubmissionService sustained admission. Submitter threads drive
// the full decision ladder (token bucket, lane bounds, shedder); reports
// sustained decisions/sec and the admission-latency p50/p99 from the
// service.admission_latency_ns histogram — the same numbers s3top renders.
//
// Wall-clock timed (obs::now_ns), prints a table; run on an idle machine.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "metrics/report.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "sched/job_queue_manager.h"
#include "service/submission_service.h"
#include "workloads/wordcount.h"

namespace {

using namespace s3;

struct AdmissionRun {
  double admits_per_sec = 0.0;
  std::uint64_t admitted = 0;
  std::uint64_t batches = 0;
};

AdmissionRun run_jqm_admission(sched::JobQueueManager::AdmissionMode mode,
                               int admit_threads, double seconds,
                               std::uint64_t preload) {
  sched::JobQueueManager jqm(FileId(0), /*file_blocks=*/1u << 30, mode);
  // Preload: form_batch's candidate scan is O(queued jobs), so a deep queue
  // makes the serialized admit path wait out long critical sections — the
  // overload regime this PR targets.
  for (std::uint64_t j = 0; j < preload; ++j) {
    jqm.admit(JobId(j));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> batches{0};

  std::thread driver([&] {
    std::uint64_t formed = 0;
    while (!stop.load(std::memory_order_acquire)) {
      (void)jqm.form_batch(BatchId(formed++), /*wave_blocks=*/4);
      (void)jqm.complete_batch();
      batches.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> admitters;
  const std::uint64_t deadline_ns =
      obs::now_ns() + static_cast<std::uint64_t>(seconds * 1e9);
  for (int a = 0; a < admit_threads; ++a) {
    admitters.emplace_back([&, a] {
      std::uint64_t next = preload + static_cast<std::uint64_t>(a) * 100000000ULL;
      while (obs::now_ns() < deadline_ns) {
        jqm.admit(JobId(next++));
        admitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const std::uint64_t start_ns = obs::now_ns();
  for (auto& t : admitters) t.join();
  const double elapsed = static_cast<double>(obs::now_ns() - start_ns +
                                             static_cast<std::uint64_t>(
                                                 seconds * 1e9)) /
                         2e9;  // admitters ran ~`seconds`; average the skew
  stop.store(true, std::memory_order_release);
  driver.join();

  AdmissionRun run;
  run.admitted = admitted.load();
  run.batches = batches.load();
  run.admits_per_sec = static_cast<double>(run.admitted) /
                       (elapsed > 0.0 ? elapsed : seconds);
  return run;
}

struct ServiceRun {
  double decisions_per_sec = 0.0;
  std::uint64_t submitted = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

ServiceRun run_service_storm(int submit_threads, std::uint64_t jobs_per_thread) {
  service::ServiceOptions options;
  options.global_queue_bound = 256;
  service::SubmissionService service(options);
  constexpr std::uint64_t kTenants = 4;
  for (std::uint64_t t = 0; t < kTenants; ++t) {
    service::TenantQuota quota;
    quota.rate_jobs_per_sec = 1e6;
    quota.burst = 1e5;
    quota.max_queued = 128;
    quota.max_inflight = 64;
    quota.weight = 1.0 + static_cast<double>(t);
    if (!service
             .register_tenant(TenantId(t), "bench-" + std::to_string(t), quota)
             .is_ok()) {
      std::fprintf(stderr, "tenant registration failed\n");
      return {};
    }
  }
  std::atomic<bool> done{false};
  std::thread drainer([&] {
    // Plays the resident driver: dispatch and immediately finish so the
    // admission side, not the engine, is the measured bottleneck.
    while (!done.load(std::memory_order_acquire) || !service.drained()) {
      for (auto& job : service.poll_admitted(1e18)) {
        service.on_job_finished(job.submission.spec.id);
      }
      std::this_thread::yield();
    }
  });

  const std::uint64_t start_ns = obs::now_ns();
  std::vector<std::thread> submitters;
  for (int s = 0; s < submit_threads; ++s) {
    submitters.emplace_back([&, s] {
      const std::uint64_t base =
          static_cast<std::uint64_t>(s) * jobs_per_thread;
      for (std::uint64_t i = 0; i < jobs_per_thread; ++i) {
        service::Submission sub;
        sub.tenant = TenantId((base + i) % kTenants);
        sub.spec = workloads::make_wordcount_job(JobId(base + i), FileId(0),
                                                 "a", /*reduce_tasks=*/1);
        sub.arrival = 1e-6 * static_cast<double>(base + i);
        sub.priority = static_cast<int>(i % 3);
        (void)service.submit(sub);
      }
    });
  }
  for (auto& t : submitters) t.join();
  const double elapsed =
      static_cast<double>(obs::now_ns() - start_ns) / 1e9;
  done.store(true, std::memory_order_release);
  drainer.join();
  service.close();

  ServiceRun run;
  run.submitted = service.counts().submitted;
  run.decisions_per_sec =
      elapsed > 0.0 ? static_cast<double>(run.submitted) / elapsed : 0.0;
  const auto& histogram =
      obs::Registry::instance().histogram("service.admission_latency_ns");
  run.p50_ns = histogram.p50();
  run.p99_ns = histogram.p99();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s3;
  const Flags flags = Flags::parse(argc, argv);
  const double seconds = flags.get_double("seconds", 0.4);
  const int threads = static_cast<int>(flags.get_int("threads", 3));
  const std::uint64_t preload =
      static_cast<std::uint64_t>(flags.get_int("preload", 3000));

  metrics::TableWriter jqm_table(
      {"admission mode", "admits/sec", "admitted", "driver batches"});
  const AdmissionRun serialized = run_jqm_admission(
      sched::JobQueueManager::AdmissionMode::kSerialized, threads, seconds,
      preload);
  const AdmissionRun sharded = run_jqm_admission(
      sched::JobQueueManager::AdmissionMode::kSharded, threads, seconds,
      preload);
  jqm_table.add_row({"serialized (global mutex)",
                     format_double(serialized.admits_per_sec, 0),
                     std::to_string(serialized.admitted),
                     std::to_string(serialized.batches)});
  jqm_table.add_row({"sharded (8 admit shards)",
                     format_double(sharded.admits_per_sec, 0),
                     std::to_string(sharded.admitted),
                     std::to_string(sharded.batches)});
  std::printf("JQM admission under a churning driver "
              "(%d admit threads, %llu preloaded jobs, %.1fs):\n%s",
              threads, static_cast<unsigned long long>(preload), seconds,
              jqm_table.render().c_str());
  const double ratio = serialized.admits_per_sec > 0.0
                           ? sharded.admits_per_sec / serialized.admits_per_sec
                           : 0.0;
  std::printf("sharded/serialized admission ratio: %.1fx (acceptance: >= 5x)\n\n",
              ratio);

  const ServiceRun storm = run_service_storm(threads, 20000);
  metrics::TableWriter service_table(
      {"submissions", "decisions/sec", "admission p50", "admission p99"});
  service_table.add_row(
      {std::to_string(storm.submitted),
       format_double(storm.decisions_per_sec, 0),
       format_double(storm.p50_ns / 1e3, 1) + " us",
       format_double(storm.p99_ns / 1e3, 1) + " us"});
  std::printf("SubmissionService sustained storm "
              "(%d submitter threads, full decision ladder):\n%s",
              threads, service_table.render().c_str());
  return ratio >= 1.0 ? 0 : 1;
}
