#include "harness.h"

#include <cstdio>
#include <memory>

namespace s3::bench {

Figure4Result run_figure4(const workloads::PaperSetup& setup,
                          const std::vector<sim::SimJob>& jobs,
                          std::uint64_t segment_blocks) {
  Figure4Result result;

  struct Scheme {
    std::string name;
    std::unique_ptr<sched::Scheduler> scheduler;
  };
  std::vector<Scheme> schemes;
  schemes.push_back({"FIFO", workloads::make_fifo(setup.catalog)});
  schemes.push_back({"MRS1", workloads::make_mrs1(setup.catalog)});
  schemes.push_back({"MRS2", workloads::make_mrs2(setup.catalog)});
  schemes.push_back({"MRS3", workloads::make_mrs3(setup.catalog)});
  schemes.push_back({"S3", workloads::make_s3(setup.catalog, setup.topology,
                                              segment_blocks)});

  for (auto& scheme : schemes) {
    sim::SimConfig config;
    config.cost = setup.cost;
    sim::SimEngine engine(setup.topology, setup.catalog, config);
    auto run = engine.run(*scheme.scheduler, jobs);
    S3_CHECK_MSG(run.is_ok(), "sim failed for " << scheme.name << ": "
                                                << run.status());
    result.table.add(scheme.name, run.value().summary);
    if (scheme.name == "S3") {
      result.s3_batches = run.value().batches.size();
    }
  }
  return result;
}

void print_figure(const std::string& title, const Figure4Result& result,
                  const std::vector<PaperRatio>& paper) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("%s", result.table.render("S3").c_str());
  std::printf("S3 merged sub-jobs launched: %zu\n", result.s3_batches);
  if (!paper.empty()) {
    std::printf("paper-reported ratios (scheme / S3):\n");
    for (const auto& p : paper) {
      std::printf("  %-5s TET x%.2f   ART x%.2f\n", p.scheme.c_str(),
                  p.tet_over_s3, p.art_over_s3);
    }
  }
  std::printf("\n");
}

}  // namespace s3::bench
