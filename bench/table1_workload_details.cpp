// Table I: wordcount workload details (normal workload). The paper reports,
// for one pattern-wordcount job over 160 GB: ~250 M map output records,
// ~60-80 K reduce output records, ~2.4 GB map output, ~1.5 MB reduce output,
// ~240 s average processing time.
//
// We run a real (threaded, byte-level) wordcount job over a scaled-down
// synthetic corpus, then extrapolate the measured per-byte output rates to
// the paper's 160 GB input, and report the simulator's 160 GB job duration.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace s3;

  // --- Real scaled-down measurement: 64 blocks x 256 KiB = 16 MiB. ---
  constexpr std::uint64_t kBlocks = 64;
  const ByteSize kBlockSize = ByteSize::kib(256);

  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topo = cluster::Topology::uniform(4, 2);
  dfs::PlacementTopology ptopo;
  for (const auto& n : topo.nodes()) {
    ptopo.nodes.push_back({n.id, n.rack});
  }
  dfs::RoundRobinPlacement placement(ptopo);

  workloads::TextCorpusGenerator corpus;
  auto file_or = corpus.generate_file(ns, store, placement, "gutenberg.txt",
                                      kBlocks, kBlockSize);
  S3_CHECK_MSG(file_or.is_ok(), file_or.status());
  const FileId file = file_or.value();

  sched::FileCatalog catalog;
  catalog.add(file, kBlocks);

  engine::LocalEngineOptions opts;
  opts.map_workers = 4;
  opts.reduce_workers = 2;
  engine::LocalEngine eng(ns, store, opts);
  core::RealDriver driver(ns, eng, catalog);

  // A selective pattern, as the paper's modified wordcount jobs use. A
  // single-letter prefix over the synthetic vocabulary selects ~4 % of the
  // words (the paper's unpublished patterns selected ~1 % of Gutenberg's).
  std::vector<core::RealJob> jobs;
  jobs.push_back(
      {workloads::make_wordcount_job(JobId(0), file, "t", 30), 0.0, 0});
  auto fifo = workloads::make_fifo(catalog);
  auto run = driver.run(*fifo, std::move(jobs));
  S3_CHECK_MSG(run.is_ok(), run.status());
  const auto& counters = run.value().counters.at(JobId(0));

  const double input_bytes = static_cast<double>(counters.map_input_bytes);
  const double scale = 160.0 * static_cast<double>(kGiB) / input_bytes;

  // --- Simulated processing time of the full 160 GB job. ---
  const auto setup = workloads::make_paper_setup(64.0);
  const auto sim_jobs = workloads::make_sim_jobs(
      setup.wordcount_file, {0.0}, sim::WorkloadCost::wordcount_normal());
  auto sim_fifo = workloads::make_fifo(setup.catalog);
  sim::SimConfig config;
  config.cost = setup.cost;
  sim::SimEngine sim_engine(setup.topology, setup.catalog, config);
  auto sim_run = sim_engine.run(*sim_fifo, sim_jobs);
  S3_CHECK_MSG(sim_run.is_ok(), sim_run.status());

  metrics::TableWriter table({"quantity", "measured (scaled to 160 GB)",
                              "paper (Table I)"});
  const auto row = [&](const char* name, double v, const char* paper) {
    table.add_row({name, format_double(v, 2), paper});
  };
  table.add_row({"input size", "160 GB (4 GB/node)", "160 GB (4 GB/node)"});
  row("map output records (M)",
      static_cast<double>(counters.map_output_records) * scale / 1e6,
      "~250");
  row("reduce output records (K)",
      static_cast<double>(counters.reduce_output_records) * scale / 1e3,
      "~60-80");
  row("map output size (GB)",
      static_cast<double>(counters.map_output_bytes) * scale /
          static_cast<double>(kGiB),
      "~2.4");
  row("reduce output size (MB)",
      static_cast<double>(counters.reduce_output_bytes) * scale /
          static_cast<double>(kMiB),
      "~1.5");
  row("processing time (s, simulated)", sim_run.value().summary.tet, "~240");

  std::printf("=== Table I — wordcount details (normal workload) ===\n%s",
              table.render().c_str());
  std::printf(
      "real run: %llu map tasks over %llu blocks, %llu map input records\n\n",
      static_cast<unsigned long long>(counters.map_tasks),
      static_cast<unsigned long long>(counters.blocks_scanned),
      static_cast<unsigned long long>(counters.map_input_records));
  return 0;
}
