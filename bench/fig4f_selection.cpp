// Figure 4(f): structured-data selection workload — TPC-H lineitem, 400 GB
// (10 GB/node), 64 MB blocks, 10 % selectivity, sparse submissions.
// Paper: jobs are long, so a FIFO-blocked job waits a very long time; S3
// outperforms both FIFO and MRShare on TET and ART.
#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);
  // Same sparse shape as the wordcount experiments, scaled to the longer
  // selection jobs (~2.2x wordcount's duration).
  const auto arrivals =
      workloads::sparse_groups({3, 3, 4}, /*group_gap=*/400.0,
                               /*intra_gap=*/66.0);
  auto jobs = workloads::make_sim_jobs(setup.lineitem_file, arrivals,
                                       sim::WorkloadCost::tpch_selection(),
                                       "selection");

  // Segment sized like the wordcount default: whole waves, k = 8 over the
  // larger lineitem file.
  const std::uint64_t segment_blocks = setup.lineitem_blocks / 8;
  const auto result = bench::run_figure4(setup, jobs, segment_blocks);
  bench::print_figure(
      "Figure 4(f) — structured data processing (selection on lineitem)",
      result,
      {{"FIFO", 2.5, 3.0}});  // paper: FIFO much worse; MRShare in between
  return 0;
}
