// Ablation: when does the shuffle network bind? The calibrated reduce tails
// already include typical shuffle time; the rack-aware network model acts as
// a lower bound that only binds for shuffle-heavy jobs (paper §V-B: heavy
// data shuffling "may offset the improvement gained by shared scan"). This
// sweep scales map output volume per block and reports where the network
// takes over the reduce tail and how it erodes the shared-scan benefit.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);

  // Report the topology-derived shuffle characteristics once.
  sim::NetworkModel network(setup.cost.network, setup.topology);
  std::printf("network: cross-rack fraction %.2f, blended %.1f MB/s per "
              "flow, %d reduce tasks\n\n",
              network.cross_rack_fraction(), network.blended_mb_per_s(),
              setup.cost.num_reduce_tasks);

  metrics::TableWriter table({"map output (MB/block)", "S3 TET", "MRS1 TET",
                              "S3/MRS1 TET", "S3 ART"});
  for (const double output_mb : {0.94, 4.0, 16.0, 48.0, 96.0}) {
    sim::WorkloadCost cost = sim::WorkloadCost::wordcount_normal();
    cost.map_output_mb_per_block = output_mb;
    const auto jobs = workloads::make_sim_jobs(
        setup.wordcount_file, workloads::paper_sparse_arrivals(), cost);

    double tet_s3 = 0, art_s3 = 0, tet_mrs1 = 0;
    for (const bool use_s3 : {true, false}) {
      auto scheduler =
          use_s3 ? workloads::make_s3(setup.catalog, setup.topology,
                                      setup.default_segment_blocks())
                 : workloads::make_mrs1(setup.catalog);
      sim::SimConfig config;
      config.cost = setup.cost;
      sim::SimEngine engine(setup.topology, setup.catalog, config);
      auto run = engine.run(*scheduler, jobs);
      S3_CHECK_MSG(run.is_ok(), run.status());
      (use_s3 ? tet_s3 : tet_mrs1) = run.value().summary.tet;
      if (use_s3) art_s3 = run.value().summary.art;
    }
    table.add_row({format_double(output_mb, 2), format_double(tet_s3, 1),
                   format_double(tet_mrs1, 1),
                   format_double(tet_s3 / tet_mrs1, 2),
                   format_double(art_s3, 1)});
  }
  std::printf("=== Ablation — shuffle volume vs shared-scan benefit "
              "(sparse pattern) ===\n%s\n",
              table.render().c_str());
  return 0;
}
