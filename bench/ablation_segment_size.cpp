// Ablation: segment size (blocks per merged sub-job). The paper fixes the
// segment so one sub-job fills the cluster for one round (§IV-B); this sweep
// shows the trade-off the choice balances — small segments = low waiting
// time but many launch overheads; large segments = the opposite, degenerating
// to MRShare-like behaviour at k = 1.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());

  metrics::TableWriter table({"blocks/segment", "segments (k)", "batches",
                              "TET (s)", "ART (s)", "mean wait (s)"});
  for (const std::uint64_t blocks :
       {std::uint64_t{40}, std::uint64_t{80}, std::uint64_t{160},
        std::uint64_t{320}, std::uint64_t{640}, std::uint64_t{1280},
        std::uint64_t{2560}}) {
    auto scheduler = workloads::make_s3(setup.catalog, setup.topology, blocks);
    sim::SimConfig config;
    config.cost = setup.cost;
    sim::SimEngine engine(setup.topology, setup.catalog, config);
    auto run = engine.run(*scheduler, jobs);
    S3_CHECK_MSG(run.is_ok(), run.status());
    const auto& r = run.value();
    const std::uint64_t k =
        (setup.wordcount_blocks + blocks - 1) / blocks;
    table.add_row({std::to_string(blocks), std::to_string(k),
                   std::to_string(r.batches.size()),
                   format_double(r.summary.tet, 1),
                   format_double(r.summary.art, 1),
                   format_double(r.summary.mean_waiting, 1)});
  }
  std::printf("=== Ablation — S3 segment size (sparse pattern, normal "
              "workload) ===\n%s\n",
              table.render().c_str());
  return 0;
}
