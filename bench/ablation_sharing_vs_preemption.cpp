// Ablation: decomposing S3's advantage. S3 combines two mechanisms —
// (1) preemption at segment boundaries (new jobs start within one segment)
// and (2) merged shared scans (overlapping jobs read each segment once).
// A round-robin processor-sharing scheduler has (1) but not (2); FIFO has
// neither; S3 has both. The sparse-pattern comparison attributes the TET win
// to sharing and most of the ART win to preemption.
#include <cstdio>
#include <memory>

#include "harness.h"
#include "sched/round_robin.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());

  metrics::TableWriter table({"scheduler", "preemption", "shared scan",
                              "TET (s)", "ART (s)", "mean wait (s)",
                              "cluster busy (s)"});
  struct Scheme {
    const char* name;
    const char* preempt;
    const char* share;
    std::unique_ptr<sched::Scheduler> scheduler;
  };
  std::vector<Scheme> schemes;
  schemes.push_back({"FIFO", "no", "no", workloads::make_fifo(setup.catalog)});
  schemes.push_back({"RR", "yes", "no",
                     std::make_unique<sched::RoundRobinScheduler>(
                         setup.catalog, setup.default_segment_blocks())});
  schemes.push_back({"S3", "yes", "yes",
                     workloads::make_s3(setup.catalog, setup.topology,
                                        setup.default_segment_blocks())});
  for (auto& scheme : schemes) {
    sim::SimConfig config;
    config.cost = setup.cost;
    sim::SimEngine engine(setup.topology, setup.catalog, config);
    auto run = engine.run(*scheme.scheduler, jobs);
    S3_CHECK_MSG(run.is_ok(), run.status());
    const auto& r = run.value();
    table.add_row({scheme.name, scheme.preempt, scheme.share,
                   format_double(r.summary.tet, 1),
                   format_double(r.summary.art, 1),
                   format_double(r.summary.mean_waiting, 1),
                   format_double(r.trace_stats.total_busy, 1)});
  }
  std::printf("=== Ablation — decomposing S3: preemption vs shared scan "
              "(sparse pattern) ===\n%s\n",
              table.render().c_str());
  return 0;
}
