// Ablation: per-sub-job launch overhead. The dense-pattern result where
// MRS1 beats S3 (Figure 4(b)) hinges on S3 paying k launch overheads per job
// stream ("the communication cost becomes a dominant factor", §V-D). This
// sweep locates the crossover.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace s3;
  auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_dense_arrivals(),
      sim::WorkloadCost::wordcount_normal());

  metrics::TableWriter table({"launch overhead (s)", "S3 TET", "MRS1 TET",
                              "S3/MRS1", "S3 ART", "MRS1 ART"});
  for (const double overhead : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    setup.cost.batch_launch_overhead = overhead;
    double tet_s3 = 0, art_s3 = 0, tet_mrs1 = 0, art_mrs1 = 0;
    for (const bool use_s3 : {true, false}) {
      auto scheduler =
          use_s3 ? workloads::make_s3(setup.catalog, setup.topology,
                                      setup.default_segment_blocks())
                 : workloads::make_mrs1(setup.catalog);
      sim::SimConfig config;
      config.cost = setup.cost;
      sim::SimEngine engine(setup.topology, setup.catalog, config);
      auto run = engine.run(*scheduler, jobs);
      S3_CHECK_MSG(run.is_ok(), run.status());
      (use_s3 ? tet_s3 : tet_mrs1) = run.value().summary.tet;
      (use_s3 ? art_s3 : art_mrs1) = run.value().summary.art;
    }
    table.add_row({format_double(overhead, 0), format_double(tet_s3, 1),
                   format_double(tet_mrs1, 1),
                   format_double(tet_s3 / tet_mrs1, 2),
                   format_double(art_s3, 1), format_double(art_mrs1, 1)});
  }
  std::printf("=== Ablation — sub-job launch overhead (dense pattern): "
              "S3 vs MRS1 crossover ===\n%s\n",
              table.render().c_str());
  return 0;
}
