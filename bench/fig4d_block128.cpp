// Figure 4(d): sparse pattern, normal workload, 128 MB blocks.
// Paper: larger blocks -> fewer segments and the fastest absolute times;
// shortened jobs shrink the sharing window, so S3's TET edge over FIFO
// becomes slight, but S3 still clearly wins ART; MRShare beats neither.
#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(128.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());

  const auto result =
      bench::run_figure4(setup, jobs, setup.default_segment_blocks());
  bench::print_figure(
      "Figure 4(d) — sparse pattern, normal workload, 128 MB blocks", result,
      {{"FIFO", 1.1, 1.5}});  // paper: S3 only slightly ahead on TET
  return 0;
}
