// Related work quantified (paper §II-B) + future work (§VI): slot-granular
// scheduling of the sparse-pattern workload in the task-level simulator.
//
//  * FIFO-task   — Hadoop default: head job owns the slots.
//  * Fair        — Facebook's fair scheduler: slots split among active jobs.
//  * Capacity    — Yahoo!'s capacity scheduler: 3 pools with guaranteed
//                  fractions, jobs assigned round-robin to pools.
//  * S3-barrierless — the §VI integration: task-granular shared scan (S3's
//                  circular cursor without the per-segment wave barrier).
//
// The paper's §II-B critique is checked directly: fair/capacity run jobs
// concurrently (low waiting) but each job gets fewer slots (longer
// execution) and nothing is shared (cluster-busy seconds stay ~n scans).
#include <cstdio>
#include <memory>

#include "harness.h"
#include "tasksim/tasksim.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);
  const auto cost = sim::WorkloadCost::wordcount_normal();
  const auto& params_cost = setup.cost;

  // The same per-task economics as the batch simulator's map tasks.
  const double io = params_cost.io_seconds_per_block();
  const auto task_seconds = [&, io](int sharers) {
    return params_cost.map_task_overhead +
           std::max(io, cost.map_cpu_seconds_per_block * sharers) +
           cost.map_spill_seconds_per_block * sharers +
           params_cost.share_map_penalty * (sharers - 1);
  };
  const double reduce_tail =
      cost.reduce_seconds_per_block * static_cast<double>(setup.wordcount_blocks);

  const auto arrivals = workloads::paper_sparse_arrivals();
  std::vector<tasksim::TaskSimJob> jobs;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    tasksim::TaskSimJob job;
    job.id = JobId(i);
    job.arrival = arrivals[i];
    job.total_blocks = setup.wordcount_blocks;
    job.reduce_tail = reduce_tail;
    job.pool = static_cast<int>(i % 3);
    jobs.push_back(job);
  }

  tasksim::TaskSimParams params;
  params.slots = setup.topology.total_map_slots();
  params.map_task_seconds = task_seconds;

  metrics::TableWriter table({"scheduler", "TET (s)", "ART (s)",
                              "mean wait (s)", "busy slot-hours",
                              "tasks run"});
  const auto add = [&](tasksim::TaskScheduler& scheduler, int pools) {
    tasksim::TaskSimParams p = params;
    p.pools = pools;
    auto result = tasksim::run_task_sim(p, scheduler, jobs);
    S3_CHECK_MSG(result.is_ok(), result.status());
    const auto& r = result.value();
    table.add_row({scheduler.name(), format_double(r.summary.tet, 1),
                   format_double(r.summary.art, 1),
                   format_double(r.summary.mean_waiting, 1),
                   format_double(r.busy_slot_seconds / 3600.0, 1),
                   std::to_string(r.tasks_run)});
  };

  tasksim::FifoTaskScheduler fifo;
  tasksim::FairTaskScheduler fair;
  tasksim::CapacityTaskScheduler capacity(3);
  tasksim::SharedScanTaskScheduler shared(setup.wordcount_blocks);
  add(fifo, 1);
  add(fair, 1);
  add(capacity, 3);
  add(shared, 1);

  std::printf("=== Related work quantified — slot-granular schedulers on the "
              "sparse pattern (task-level simulator) ===\n%s",
              table.render().c_str());
  std::printf("fair/capacity start jobs quickly but stretch them (no shared "
              "scans: ~10x the tasks of the shared scan); the barrierless "
              "shared scan is the §VI full+partial-utilization "
              "integration\n\n");
  return 0;
}
