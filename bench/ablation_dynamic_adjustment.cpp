// Ablation: dynamic wave sizing (paper §IV-D-2). Fixed segments keep the
// wave at the nominal segment size even when slow nodes are excluded;
// dynamic sizing recomputes the wave from the live slot count every batch.
// Under stragglers, dynamic mode keeps healthy slots saturated.
#include <cstdio>
#include <memory>

#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());

  metrics::TableWriter table({"wave sizing", "stragglers", "batches",
                              "TET (s)", "ART (s)"});
  for (const int stragglers : {0, 4, 8}) {
    for (const bool dynamic : {false, true}) {
      sched::S3Options options;
      options.wave_sizing = dynamic ? sched::WaveSizing::kDynamicSlots
                                    : sched::WaveSizing::kFixedSegments;
      options.blocks_per_segment = setup.default_segment_blocks();
      auto scheduler = std::make_unique<sched::S3Scheduler>(
          setup.catalog, options, &setup.topology);

      sim::SimConfig config;
      config.cost = setup.cost;
      for (int i = 0; i < stragglers; ++i) {
        config.speed_changes.push_back(
            sim::SpeedChange{30.0, NodeId(static_cast<std::uint64_t>(i * 4)),
                             4.0});
      }
      sim::SimEngine engine(setup.topology, setup.catalog, config);
      auto run = engine.run(*scheduler, jobs);
      S3_CHECK_MSG(run.is_ok(), run.status());
      table.add_row({dynamic ? "dynamic" : "fixed",
                     std::to_string(stragglers),
                     std::to_string(run.value().batches.size()),
                     format_double(run.value().summary.tet, 1),
                     format_double(run.value().summary.art, 1)});
    }
  }
  std::printf("=== Ablation — fixed segments vs dynamic wave sizing "
              "(S3, sparse pattern) ===\n%s\n",
              table.render().c_str());
  return 0;
}
