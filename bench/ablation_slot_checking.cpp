// Ablation: periodic slot checking (paper §IV-D-1). Mid-run, several nodes
// slow down 4x. With slot checking, S3's heartbeat feedback excludes them
// from subsequent waves (the wave shrinks to the healthy slot count); without
// it, every wave's makespan is dragged to the slowest node.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());

  metrics::TableWriter table({"slot checking", "straggler nodes", "TET (s)",
                              "ART (s)"});
  for (const int stragglers : {0, 2, 4, 8}) {
    for (const bool checking : {true, false}) {
      sim::SimConfig config;
      config.cost = setup.cost;
      config.enable_progress_reports = checking;
      for (int i = 0; i < stragglers; ++i) {
        // Nodes go slow shortly after the run starts.
        config.speed_changes.push_back(
            sim::SpeedChange{30.0, NodeId(static_cast<std::uint64_t>(i * 5)),
                             4.0});
      }
      auto scheduler = workloads::make_s3(setup.catalog, setup.topology,
                                          setup.default_segment_blocks());
      sim::SimEngine engine(setup.topology, setup.catalog, config);
      auto run = engine.run(*scheduler, jobs);
      S3_CHECK_MSG(run.is_ok(), run.status());
      table.add_row({checking ? "on" : "off", std::to_string(stragglers),
                     format_double(run.value().summary.tet, 1),
                     format_double(run.value().summary.art, 1)});
    }
  }
  std::printf("=== Ablation — periodic slot checking under stragglers "
              "(S3, sparse pattern) ===\n%s\n",
              table.render().c_str());
  return 0;
}
