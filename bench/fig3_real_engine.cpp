// Figure 3 on the *real* engine: n wordcount jobs combined into one shared
// scan over a scaled-down corpus, measuring actual wall time of the threaded
// execution (not the simulator). The paper's claim — combining n jobs costs
// far less than n times one job — must hold for real bytes too: the wall
// time of the combined batch grows mildly with n while the work delivered
// (logical scans) grows n-fold.
#include <chrono>
#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace s3;
  const Flags flags = Flags::parse(argc, argv);
  // --trace-out=<path>: Chrome/Perfetto trace of every combined/sequential
  // batch (map/reduce task spans + shuffle merges).
  obs::TraceSession trace_session(flags);

  // 48 blocks x 128 KiB = 6 MiB corpus; enough records that map work
  // dominates thread-pool overheads.
  constexpr std::uint64_t kBlocks = 48;
  const ByteSize kBlockSize = ByteSize::kib(128);

  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  dfs::PlacementTopology ptopo;
  for (std::uint64_t n = 0; n < 4; ++n) {
    ptopo.nodes.push_back({NodeId(n), RackId(n / 2)});
  }
  dfs::RoundRobinPlacement placement(ptopo);
  workloads::TextCorpusGenerator corpus;
  const FileId file =
      corpus.generate_file(ns, store, placement, "fig3", kBlocks, kBlockSize)
          .value();
  const auto& blocks = ns.file(file).blocks;

  // For each n: one combined shared-scan batch vs the same n jobs run as n
  // sequential whole-file batches. The wall-time ratio is the real-engine
  // analogue of Figure 3's saving; the scan ledger proves the combined batch
  // reads each block exactly once.
  const auto run_jobs = [&](std::uint64_t n, bool combined,
                            std::uint64_t* physical_blocks) {
    engine::LocalEngineOptions eopts;
    eopts.map_workers = 4;
    eopts.reduce_workers = 2;
    engine::LocalEngine engine(ns, store, eopts);
    std::vector<JobId> job_ids;
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::string prefix(1, static_cast<char>('a' + j));
      S3_CHECK(engine
                   .register_job(workloads::make_wordcount_job(
                       JobId(j), file, prefix, 4))
                   .is_ok());
      job_ids.push_back(JobId(j));
    }
    const auto start = std::chrono::steady_clock::now();
    if (combined) {
      S3_CHECK(engine.execute_batch({BatchId(0), blocks, job_ids}).is_ok());
    } else {
      for (std::uint64_t j = 0; j < n; ++j) {
        S3_CHECK(
            engine.execute_batch({BatchId(j), blocks, {JobId(j)}}).is_ok());
      }
    }
    const double wall = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (physical_blocks != nullptr) {
      *physical_blocks = engine.scan_counters().blocks_physical;
    }
    for (const JobId j : job_ids) S3_CHECK(engine.finalize_job(j).is_ok());
    return wall;
  };

  metrics::TableWriter table({"n jobs", "combined (ms)", "sequential (ms)",
                              "combined/sequential", "physical blocks",
                              "blocks saved"});
  for (std::uint64_t n = 1; n <= 10; ++n) {
    std::uint64_t physical = 0;
    const double combined = run_jobs(n, true, &physical);
    const double sequential = run_jobs(n, false, nullptr);
    S3_CHECK_MSG(physical == kBlocks,
                 "combined batch must read each block exactly once");
    table.add_row({std::to_string(n), format_double(combined, 1),
                   format_double(sequential, 1),
                   format_double(combined / sequential, 2),
                   std::to_string(physical),
                   std::to_string((n - 1) * kBlocks)});
  }
  std::printf("=== Figure 3 (real engine) — combined vs sequential "
              "execution over a %llu x %s corpus ===\n%s",
              static_cast<unsigned long long>(kBlocks),
              kBlockSize.to_string().c_str(), table.render().c_str());
  std::printf("the combined batch reads every block once (column 5) and is "
              "cheaper than sequential execution; with in-memory payloads "
              "the saving is the record-iteration overlap — on disk-bound "
              "clusters (the paper's) the saved physical reads dominate\n\n");
  return 0;
}
