// Figure 4(a): sparse job pattern, normal wordcount workload, 64 MB blocks.
// Paper: S3 TET 1,388 s / ART 467 s (normalized 1.0); FIFO 2.2x TET, 2.5x
// ART; MRShare variants 1.03-1.32x TET and 1.26-2.54x ART.
#include "harness.h"

int main() {
  using namespace s3;
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());

  const auto result =
      bench::run_figure4(setup, jobs, setup.default_segment_blocks());
  bench::print_figure(
      "Figure 4(a) — sparse pattern, normal workload, 64 MB blocks", result,
      {{"FIFO", 2.2, 2.5},
       {"MRS1", 1.17, 2.54},   // paper range 1.03~1.32 TET, 1.26~2.54 ART
       {"MRS2", 1.03, 1.8},
       {"MRS3", 1.1, 1.26}});
  return 0;
}
