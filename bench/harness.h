// Shared harness for the figure-reproduction benches: runs the five schemes
// of Figure 4 (FIFO, MRS1, MRS2, MRS3, S3) over one workload in the
// simulator and prints absolute plus S3-normalized TET/ART, side by side
// with the paper's reported ratios.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/s3.h"

namespace s3::bench {

struct PaperRatio {
  std::string scheme;
  double tet_over_s3 = 0.0;  // 0 = not reported
  double art_over_s3 = 0.0;
};

struct Figure4Result {
  metrics::ComparisonTable table;
  // Batches launched by S3 (the paper quotes 13 for the dense pattern).
  std::size_t s3_batches = 0;
};

// Runs all five schemes on the given jobs; the workload's file/cost are
// already inside each SimJob.
Figure4Result run_figure4(const workloads::PaperSetup& setup,
                          const std::vector<sim::SimJob>& jobs,
                          std::uint64_t segment_blocks);

// Prints the comparison plus paper-reported ratios for EXPERIMENTS.md.
void print_figure(const std::string& title, const Figure4Result& result,
                  const std::vector<PaperRatio>& paper);

}  // namespace s3::bench
