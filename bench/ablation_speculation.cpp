// Ablation: speculative execution vs S3's slot checking under stragglers.
// The paper disables Hadoop's speculative tasks (§V-A) and relies on S3's
// periodic slot checking instead; this sweep compares the two mechanisms
// (and their combination) on a cluster where nodes degrade mid-run.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace s3;
  auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());

  metrics::TableWriter table({"slot checking", "speculation", "TET (s)",
                              "ART (s)"});
  for (const bool checking : {false, true}) {
    for (const bool speculation : {false, true}) {
      setup.cost.speculative_execution = speculation;
      sim::SimConfig config;
      config.cost = setup.cost;
      config.enable_progress_reports = checking;
      // Six nodes degrade 8x shortly after the run starts.
      for (int i = 0; i < 6; ++i) {
        config.speed_changes.push_back(
            sim::SpeedChange{30.0, NodeId(static_cast<std::uint64_t>(i * 6)),
                             8.0});
      }
      auto scheduler = workloads::make_s3(setup.catalog, setup.topology,
                                          setup.default_segment_blocks());
      sim::SimEngine engine(setup.topology, setup.catalog, config);
      auto run = engine.run(*scheduler, jobs);
      S3_CHECK_MSG(run.is_ok(), run.status());
      table.add_row({checking ? "on" : "off", speculation ? "on" : "off",
                     format_double(run.value().summary.tet, 1),
                     format_double(run.value().summary.art, 1)});
    }
  }
  std::printf("=== Ablation — speculative execution vs slot checking "
              "(6 nodes degrade 8x at t=30) ===\n%s\n",
              table.render().c_str());
  return 0;
}
