// Unit tests for the MapReduce engine internals: partitioning, shuffle,
// map/reduce runners, shared-scan accounting.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dfs/block_store.h"
#include "engine/kv.h"
#include "engine/map_runner.h"
#include "engine/reduce_runner.h"
#include "engine/shuffle.h"
#include "workloads/wordcount.h"

namespace s3::engine {
namespace {

TEST(PartitionTest, StableAndInRange) {
  for (const std::uint32_t parts : {1u, 7u, 30u}) {
    const auto p = partition_for_key("hello", parts);
    EXPECT_LT(p, parts);
    EXPECT_EQ(p, partition_for_key("hello", parts));  // deterministic
  }
}

TEST(PartitionTest, SpreadsKeys) {
  std::set<std::uint32_t> used;
  for (int i = 0; i < 200; ++i) {
    used.insert(partition_for_key("key" + std::to_string(i), 16));
  }
  EXPECT_GT(used.size(), 12u);
}

KVBatch make_batch(
    std::initializer_list<std::pair<std::string_view, std::string_view>> kvs) {
  KVBatch batch;
  for (const auto& [k, v] : kvs) batch.append(k, v);
  return batch;
}

std::uint64_t total_records(const std::vector<KVBatch>& runs) {
  std::uint64_t n = 0;
  for (const auto& run : runs) n += run.size();
  return n;
}

TEST(ShuffleStoreTest, AppendAndTake) {
  ShuffleStore shuffle;
  shuffle.register_job(JobId(0), 4);
  shuffle.append(JobId(0), 1, make_batch({{"a", "1"}, {"b", "2"}}));
  shuffle.append(JobId(0), 1, make_batch({{"c", "3"}}));
  EXPECT_EQ(shuffle.pending_records(JobId(0)), 3u);
  const auto runs = shuffle.take(JobId(0), 1);
  EXPECT_EQ(runs.size(), 2u);  // one run per append
  EXPECT_EQ(total_records(runs), 3u);
  EXPECT_EQ(shuffle.pending_records(JobId(0)), 0u);
  EXPECT_TRUE(shuffle.take(JobId(0), 1).empty());  // drained
}

TEST(ShuffleStoreTest, PublishFansOutOneRunPerPartition) {
  ShuffleStore shuffle;
  shuffle.register_job(JobId(0), 3);
  std::vector<KVBatch> runs;
  runs.push_back(make_batch({{"a", "1"}}));
  runs.push_back(KVBatch{});  // empty runs are dropped
  runs.push_back(make_batch({{"b", "2"}, {"c", "3"}}));
  shuffle.publish(JobId(0), std::move(runs));
  EXPECT_EQ(total_records(shuffle.take(JobId(0), 0)), 1u);
  EXPECT_TRUE(shuffle.take(JobId(0), 1).empty());
  EXPECT_EQ(total_records(shuffle.take(JobId(0), 2)), 2u);
}

TEST(ShuffleStoreTest, PartitionsIsolated) {
  ShuffleStore shuffle;
  shuffle.register_job(JobId(0), 2);
  shuffle.append(JobId(0), 0, make_batch({{"a", "1"}}));
  shuffle.append(JobId(0), 1, make_batch({{"b", "2"}}));
  EXPECT_EQ(total_records(shuffle.take(JobId(0), 0)), 1u);
  EXPECT_EQ(total_records(shuffle.take(JobId(0), 1)), 1u);
}

TEST(ShuffleStoreTest, JobsIsolated) {
  ShuffleStore shuffle;
  shuffle.register_job(JobId(0), 1);
  shuffle.register_job(JobId(1), 1);
  shuffle.append(JobId(0), 0, make_batch({{"a", "1"}}));
  EXPECT_TRUE(shuffle.take(JobId(1), 0).empty());
  EXPECT_EQ(total_records(shuffle.take(JobId(0), 0)), 1u);
  EXPECT_EQ(shuffle.partitions(JobId(1)), 1u);
  shuffle.unregister_job(JobId(0));
  shuffle.unregister_job(JobId(1));
}

TEST(SortAndGroupTest, GroupsSortedByKey) {
  std::vector<KeyValue> records = {
      {"b", "1"}, {"a", "2"}, {"b", "3"}, {"c", "4"}, {"a", "5"}};
  std::vector<std::string> keys;
  std::vector<std::size_t> sizes;
  const auto groups = sort_and_group(
      std::move(records),
      [&](const std::string& key, const std::vector<std::string>& values) {
        keys.push_back(key);
        sizes.push_back(values.size());
      });
  EXPECT_EQ(groups, 3u);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2, 1}));
}

TEST(SortAndGroupTest, Empty) {
  EXPECT_EQ(sort_and_group({}, [](const std::string&,
                                  const std::vector<std::string>&) {
              FAIL() << "no groups expected";
            }),
            0u);
}

class MapReduceRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.put(BlockId(0), "the cat\nthe dog\n").is_ok());
    ASSERT_TRUE(store_.put(BlockId(1), "the cow\nthat duck\n").is_ok());
  }

  JobSpec wordcount_spec(JobId id, const std::string& prefix,
                         std::uint32_t reducers = 2) {
    return workloads::make_wordcount_job(id, FileId(0), prefix, reducers);
  }

  dfs::BlockStore store_;
  dfs::StoredBlocks source_{store_};
  ShuffleStore shuffle_;
};

TEST_F(MapReduceRunnerTest, SingleJobSingleBlock) {
  const JobSpec spec = wordcount_spec(JobId(0), "the");
  shuffle_.register_job(spec.id, spec.num_reduce_tasks);
  MapRunner runner(source_, shuffle_);

  MapTaskSpec task;
  task.id = TaskId(0);
  task.block = BlockId(0);
  task.jobs = {&spec};
  auto outcome = runner.run(task);
  ASSERT_TRUE(outcome.is_ok());
  const auto& counters = outcome.value().per_job.at(spec.id);
  EXPECT_EQ(counters.map_input_records, 2u);
  EXPECT_EQ(counters.map_output_records, 2u);  // "the" twice
  EXPECT_EQ(counters.map_tasks, 1u);
  EXPECT_EQ(outcome.value().scan.blocks_physical, 1u);
  EXPECT_EQ(outcome.value().scan.blocks_logical, 1u);
}

TEST_F(MapReduceRunnerTest, MergedScanReadsOncePerBlock) {
  const JobSpec a = wordcount_spec(JobId(0), "the");
  const JobSpec b = wordcount_spec(JobId(1), "that");
  shuffle_.register_job(a.id, a.num_reduce_tasks);
  shuffle_.register_job(b.id, b.num_reduce_tasks);
  MapRunner runner(source_, shuffle_);

  MapTaskSpec task;
  task.id = TaskId(0);
  task.block = BlockId(1);
  task.jobs = {&a, &b};
  auto outcome = runner.run(task);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().scan.blocks_physical, 1u);
  EXPECT_EQ(outcome.value().scan.blocks_logical, 2u);
  EXPECT_EQ(outcome.value().per_job.at(a.id).map_output_records, 1u);  // "the cow" -> the
  EXPECT_EQ(outcome.value().per_job.at(b.id).map_output_records, 1u);  // "that duck" -> that
}

TEST_F(MapReduceRunnerTest, MissingBlockFails) {
  const JobSpec spec = wordcount_spec(JobId(0), "x");
  shuffle_.register_job(spec.id, spec.num_reduce_tasks);
  MapRunner runner(source_, shuffle_);
  MapTaskSpec task;
  task.id = TaskId(0);
  task.block = BlockId(99);
  task.jobs = {&spec};
  EXPECT_FALSE(runner.run(task).is_ok());
}

TEST_F(MapReduceRunnerTest, NoJobsRejected) {
  MapRunner runner(source_, shuffle_);
  MapTaskSpec task;
  task.id = TaskId(0);
  task.block = BlockId(0);
  EXPECT_EQ(runner.run(task).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MapReduceRunnerTest, ReduceAggregatesAcrossBlocks) {
  const JobSpec spec = wordcount_spec(JobId(0), "the", 1);
  shuffle_.register_job(spec.id, 1);
  MapRunner map_runner(source_, shuffle_);
  for (std::uint64_t b = 0; b < 2; ++b) {
    MapTaskSpec task;
    task.id = TaskId(b);
    task.block = BlockId(b);
    task.jobs = {&spec};
    ASSERT_TRUE(map_runner.run(task).is_ok());
  }
  ReduceRunner reduce_runner(shuffle_);
  ReduceTaskSpec rtask;
  rtask.id = TaskId(10);
  rtask.job = &spec;
  rtask.partition = 0;
  auto outcome = reduce_runner.run(rtask);
  ASSERT_TRUE(outcome.is_ok());
  // "the" appears 3 times across the two blocks.
  ASSERT_EQ(outcome.value().output.size(), 1u);
  EXPECT_EQ(outcome.value().output[0].key, "the");
  EXPECT_EQ(outcome.value().output[0].value, "3");
  EXPECT_EQ(outcome.value().counters.reduce_input_groups, 1u);
}

TEST_F(MapReduceRunnerTest, CombinerShrinksMapOutput) {
  JobSpec with = wordcount_spec(JobId(0), "the", 1);
  JobSpec without = wordcount_spec(JobId(1), "the", 1);
  without.combiner_factory = nullptr;
  shuffle_.register_job(with.id, 1);
  shuffle_.register_job(without.id, 1);
  MapRunner runner(source_, shuffle_);
  MapTaskSpec task;
  task.id = TaskId(0);
  task.block = BlockId(0);  // "the" twice in one block
  task.jobs = {&with, &without};
  auto outcome = runner.run(task);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().per_job.at(with.id).combine_output_records, 1u);
  EXPECT_EQ(shuffle_.pending_records(with.id), 1u);     // combined
  EXPECT_EQ(shuffle_.pending_records(without.id), 2u);  // raw
}

TEST_F(MapReduceRunnerTest, ReducePartitionOutOfRange) {
  const JobSpec spec = wordcount_spec(JobId(0), "the", 2);
  shuffle_.register_job(spec.id, 2);
  ReduceRunner runner(shuffle_);
  ReduceTaskSpec task;
  task.id = TaskId(0);
  task.job = &spec;
  task.partition = 5;
  EXPECT_EQ(runner.run(task).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace s3::engine
