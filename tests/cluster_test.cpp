// Unit tests for the cluster substrate: topology, slot ledger, heartbeats.
#include <gtest/gtest.h>

#include "cluster/heartbeat.h"
#include "cluster/slot_ledger.h"
#include "cluster/topology.h"

namespace s3::cluster {
namespace {

TEST(TopologyTest, PaperCluster) {
  const Topology t = Topology::paper_cluster();
  EXPECT_EQ(t.num_nodes(), 40u);
  EXPECT_EQ(t.num_racks(), 3u);
  EXPECT_EQ(t.total_map_slots(), 40);
  // Rack sizes 13/13/14.
  int rack_counts[3] = {0, 0, 0};
  for (const auto& n : t.nodes()) ++rack_counts[n.rack.value()];
  EXPECT_EQ(rack_counts[0], 13);
  EXPECT_EQ(rack_counts[1], 13);
  EXPECT_EQ(rack_counts[2], 14);
}

TEST(TopologyTest, UniformRoundRobinRacks) {
  const Topology t = Topology::uniform(10, 3, 2, 1);
  EXPECT_EQ(t.num_nodes(), 10u);
  EXPECT_EQ(t.total_map_slots(), 20);
  EXPECT_EQ(t.total_reduce_slots(), 10);
  EXPECT_TRUE(t.same_rack(NodeId(0), NodeId(3)));
  EXPECT_FALSE(t.same_rack(NodeId(0), NodeId(1)));
}

TEST(TopologyTest, NodeAccessors) {
  Topology t = Topology::uniform(2, 1);
  EXPECT_EQ(t.node(NodeId(1)).id, NodeId(1));
  t.mutable_node(NodeId(1)).speed_factor = 2.5;
  EXPECT_DOUBLE_EQ(t.node(NodeId(1)).speed_factor, 2.5);
}

TEST(SlotLedgerTest, AcquireRelease) {
  const Topology t = Topology::uniform(2, 1, 2, 1);
  SlotLedger ledger(t);
  EXPECT_EQ(ledger.total_free(SlotKind::kMap), 4);
  EXPECT_TRUE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  EXPECT_TRUE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  EXPECT_FALSE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  EXPECT_EQ(ledger.free_slots(NodeId(0), SlotKind::kMap), 0);
  EXPECT_EQ(ledger.total_free(SlotKind::kMap), 2);
  EXPECT_TRUE(ledger.release(NodeId(0), SlotKind::kMap).is_ok());
  EXPECT_EQ(ledger.free_slots(NodeId(0), SlotKind::kMap), 1);
}

TEST(SlotLedgerTest, ReleaseWithoutAcquireFails) {
  const Topology t = Topology::uniform(1, 1);
  SlotLedger ledger(t);
  EXPECT_EQ(ledger.release(NodeId(0), SlotKind::kMap).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SlotLedgerTest, UnknownNode) {
  const Topology t = Topology::uniform(1, 1);
  SlotLedger ledger(t);
  EXPECT_EQ(ledger.acquire(NodeId(9), SlotKind::kMap).code(),
            StatusCode::kNotFound);
}

TEST(SlotLedgerTest, ReduceSlotsIndependent) {
  const Topology t = Topology::uniform(1, 1, 1, 2);
  SlotLedger ledger(t);
  EXPECT_TRUE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  EXPECT_TRUE(ledger.acquire(NodeId(0), SlotKind::kReduce).is_ok());
  EXPECT_TRUE(ledger.acquire(NodeId(0), SlotKind::kReduce).is_ok());
  EXPECT_FALSE(ledger.acquire(NodeId(0), SlotKind::kReduce).is_ok());
}

TEST(SlotLedgerTest, ExclusionAffectsAvailability) {
  const Topology t = Topology::uniform(4, 1);
  SlotLedger ledger(t);
  EXPECT_EQ(ledger.available_map_slots(), 4);
  ledger.set_excluded(NodeId(2), true);
  EXPECT_TRUE(ledger.is_excluded(NodeId(2)));
  EXPECT_EQ(ledger.available_map_slots(), 3);
  EXPECT_EQ(ledger.available_nodes(SlotKind::kMap).size(), 3u);
  ledger.set_excluded(NodeId(2), false);
  EXPECT_EQ(ledger.available_map_slots(), 4);
}

TEST(SlotLedgerTest, ExcludedNodeCanStillReleaseRunningWork) {
  const Topology t = Topology::uniform(2, 1);
  SlotLedger ledger(t);
  ASSERT_TRUE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  ledger.set_excluded(NodeId(0), true);
  EXPECT_TRUE(ledger.release(NodeId(0), SlotKind::kMap).is_ok());
}

ProgressReport report(NodeId node, SimTime start, double progress,
                      SimTime at) {
  ProgressReport r;
  r.node = node;
  r.task = TaskId(0);
  r.task_start = start;
  r.progress = progress;
  r.report_time = at;
  return r;
}

TEST(HeartbeatTest, EstimatesDurationFromProgress) {
  HeartbeatTracker tracker;
  tracker.report(report(NodeId(0), 0.0, 0.5, 10.0));
  const auto estimate = tracker.estimate(NodeId(0));
  ASSERT_TRUE(estimate.has_value());
  EXPECT_DOUBLE_EQ(estimate->estimated_duration, 20.0);
  EXPECT_DOUBLE_EQ(estimate->estimated_completion, 20.0);
}

TEST(HeartbeatTest, StalledTaskLooksSlow) {
  HeartbeatTracker tracker;
  tracker.report(report(NodeId(0), 0.0, 0.0, 30.0));
  const auto estimate = tracker.estimate(NodeId(0));
  ASSERT_TRUE(estimate.has_value());
  EXPECT_DOUBLE_EQ(estimate->estimated_duration, 60.0);  // 2x elapsed
}

TEST(HeartbeatTest, SlowNodesRelativeToMedian) {
  HeartbeatTracker tracker(1.5);
  // Five nodes at ~10 s, one at 40 s.
  for (std::uint64_t n = 0; n < 5; ++n) {
    tracker.report(report(NodeId(n), 0.0, 1.0, 10.0));
  }
  tracker.report(report(NodeId(9), 0.0, 0.25, 10.0));  // estimated 40 s
  const auto slow = tracker.slow_nodes();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0], NodeId(9));
}

TEST(HeartbeatTest, NoBasisWithSingleReport) {
  HeartbeatTracker tracker;
  tracker.report(report(NodeId(0), 0.0, 0.1, 10.0));
  EXPECT_TRUE(tracker.slow_nodes().empty());
}

TEST(HeartbeatTest, ClearRemovesNode) {
  HeartbeatTracker tracker;
  tracker.report(report(NodeId(0), 0.0, 0.5, 10.0));
  EXPECT_EQ(tracker.num_reporting(), 1u);
  tracker.clear(NodeId(0));
  EXPECT_EQ(tracker.num_reporting(), 0u);
  EXPECT_FALSE(tracker.estimate(NodeId(0)).has_value());
}

TEST(HeartbeatTest, RecoveryAfterNewReport) {
  HeartbeatTracker tracker(1.5);
  for (std::uint64_t n = 0; n < 4; ++n) {
    tracker.report(report(NodeId(n), 0.0, 1.0, 10.0));
  }
  tracker.report(report(NodeId(7), 0.0, 0.2, 10.0));  // 50 s: slow
  ASSERT_EQ(tracker.slow_nodes().size(), 1u);
  tracker.report(report(NodeId(7), 20.0, 1.0, 30.0));  // finished at speed
  EXPECT_TRUE(tracker.slow_nodes().empty());
}

// ---------------------------------------------------------------------------
// Heartbeat-timeout lifecycle (failure model): healthy -> suspect -> dead.

TEST(HeartbeatLifecycleTest, SilenceEscalatesSuspectThenDead) {
  HeartbeatTracker tracker(1.5, /*suspect_timeout=*/5.0, /*dead_timeout=*/10.0);
  tracker.report(report(NodeId(0), 0.0, 0.1, 0.0));
  tracker.report(report(NodeId(1), 0.0, 0.1, 0.0));

  // Node 0 keeps reporting; node 1 goes silent.
  tracker.report(report(NodeId(0), 0.0, 0.5, 4.0));
  auto t = tracker.sweep(6.0);
  EXPECT_TRUE(t.died.empty());
  ASSERT_EQ(t.suspected.size(), 1u);
  EXPECT_EQ(t.suspected.front(), NodeId(1));
  EXPECT_EQ(tracker.health(NodeId(0)), NodeHealth::kHealthy);
  EXPECT_EQ(tracker.health(NodeId(1)), NodeHealth::kSuspect);

  // A suspect sweep is reported once, not every call.
  t = tracker.sweep(7.0);
  EXPECT_TRUE(t.suspected.empty());

  // Past the dead timeout the node dies — permanently.
  t = tracker.sweep(11.0);
  ASSERT_EQ(t.died.size(), 1u);
  EXPECT_EQ(t.died.front(), NodeId(1));
  EXPECT_EQ(tracker.health(NodeId(1)), NodeHealth::kDead);
  EXPECT_EQ(tracker.dead_nodes(), std::vector<NodeId>{NodeId(1)});

  // Late heartbeats from a dead node are ignored, and a dead node is never
  // re-reported by later sweeps (node 0, silent since t=4, dies instead).
  tracker.report(report(NodeId(1), 0.0, 1.0, 12.0));
  EXPECT_EQ(tracker.health(NodeId(1)), NodeHealth::kDead);
  const auto late = tracker.sweep(20.0);
  EXPECT_EQ(late.died, std::vector<NodeId>{NodeId(0)});
}

TEST(HeartbeatLifecycleTest, FreshReportClearsSuspicion) {
  HeartbeatTracker tracker(1.5, 5.0, 50.0);
  tracker.report(report(NodeId(3), 0.0, 0.2, 0.0));
  const auto t = tracker.sweep(6.0);
  ASSERT_EQ(t.suspected.size(), 1u);
  tracker.report(report(NodeId(3), 0.0, 0.4, 7.0));
  EXPECT_EQ(tracker.health(NodeId(3)), NodeHealth::kHealthy);
  // Going silent again re-raises suspicion (a new transition).
  const auto again = tracker.sweep(13.0);
  ASSERT_EQ(again.suspected.size(), 1u);
  EXPECT_EQ(again.suspected.front(), NodeId(3));
}

TEST(HeartbeatLifecycleTest, MarkDeadIsIdempotentAndNotReSwept) {
  HeartbeatTracker tracker(1.5, 5.0, 10.0);
  tracker.report(report(NodeId(2), 0.0, 0.5, 0.0));
  tracker.mark_dead(NodeId(2));
  tracker.mark_dead(NodeId(2));
  EXPECT_EQ(tracker.dead_nodes().size(), 1u);
  EXPECT_EQ(tracker.num_reporting(), 0u);
  // Out-of-band death is not re-reported by the sweep.
  const auto t = tracker.sweep(100.0);
  EXPECT_TRUE(t.died.empty());
}

TEST(HeartbeatLifecycleTest, DefaultTimeoutsNeverFire) {
  HeartbeatTracker tracker;  // kTimeNever on both transitions
  tracker.report(report(NodeId(0), 0.0, 0.5, 0.0));
  const auto t = tracker.sweep(1e12);
  EXPECT_TRUE(t.suspected.empty());
  EXPECT_TRUE(t.died.empty());
}

// ---------------------------------------------------------------------------
// SlotLedger edge cases (failure model satellites).

TEST(SlotLedgerEdgeTest, ReleaseWithoutAcquireFails) {
  const Topology t = Topology::uniform(2, 1);
  SlotLedger ledger(t);
  const Status s = ledger.release(NodeId(0), SlotKind::kMap);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ledger.free_slots(NodeId(0), SlotKind::kMap), 1);
}

TEST(SlotLedgerEdgeTest, ExcludedNodeKeepsHeldSlotsUntilRelease) {
  const Topology t = Topology::uniform(2, 1, /*map_slots=*/2);
  SlotLedger ledger(t);
  ASSERT_TRUE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  ledger.set_excluded(NodeId(0), true);
  // Excluded: invisible to the next wave...
  EXPECT_EQ(ledger.available_map_slots(), 2);
  EXPECT_EQ(ledger.available_nodes(SlotKind::kMap),
            std::vector<NodeId>{NodeId(1)});
  // ...but the running task still finishes and releases its slot.
  EXPECT_TRUE(ledger.release(NodeId(0), SlotKind::kMap).is_ok());
  ledger.set_excluded(NodeId(0), false);
  EXPECT_EQ(ledger.available_map_slots(), 4);
}

TEST(SlotLedgerEdgeTest, AvailableMapSlotsFloorsAtZero) {
  const Topology t = Topology::uniform(3, 1);
  SlotLedger ledger(t);
  for (std::uint64_t n = 0; n < 3; ++n) {
    ledger.set_excluded(NodeId(n), true);
  }
  EXPECT_EQ(ledger.available_map_slots(), 0);
  EXPECT_TRUE(ledger.available_nodes(SlotKind::kMap).empty());
}

TEST(SlotLedgerEdgeTest, RemovedNodeForfeitsSlotsForever) {
  const Topology t = Topology::uniform(2, 1, /*map_slots=*/2);
  SlotLedger ledger(t);
  ASSERT_TRUE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  ASSERT_TRUE(ledger.remove_node(NodeId(0)).is_ok());
  EXPECT_TRUE(ledger.is_removed(NodeId(0)));
  // The in-flight slot is forfeit, not released; new acquires fail too.
  EXPECT_EQ(ledger.release(NodeId(0), SlotKind::kMap).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ledger.acquire(NodeId(0), SlotKind::kMap).code(),
            StatusCode::kFailedPrecondition);
  // Capacity leaves every total for good; removal is one-shot.
  EXPECT_EQ(ledger.available_map_slots(), 2);
  EXPECT_EQ(ledger.total_free(SlotKind::kMap), 2);
  EXPECT_EQ(ledger.remove_node(NodeId(0)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ledger.remove_node(NodeId(9)).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace s3::cluster
