// Unit tests for the cluster substrate: topology, slot ledger, heartbeats.
#include <gtest/gtest.h>

#include "cluster/heartbeat.h"
#include "cluster/slot_ledger.h"
#include "cluster/topology.h"

namespace s3::cluster {
namespace {

TEST(TopologyTest, PaperCluster) {
  const Topology t = Topology::paper_cluster();
  EXPECT_EQ(t.num_nodes(), 40u);
  EXPECT_EQ(t.num_racks(), 3u);
  EXPECT_EQ(t.total_map_slots(), 40);
  // Rack sizes 13/13/14.
  int rack_counts[3] = {0, 0, 0};
  for (const auto& n : t.nodes()) ++rack_counts[n.rack.value()];
  EXPECT_EQ(rack_counts[0], 13);
  EXPECT_EQ(rack_counts[1], 13);
  EXPECT_EQ(rack_counts[2], 14);
}

TEST(TopologyTest, UniformRoundRobinRacks) {
  const Topology t = Topology::uniform(10, 3, 2, 1);
  EXPECT_EQ(t.num_nodes(), 10u);
  EXPECT_EQ(t.total_map_slots(), 20);
  EXPECT_EQ(t.total_reduce_slots(), 10);
  EXPECT_TRUE(t.same_rack(NodeId(0), NodeId(3)));
  EXPECT_FALSE(t.same_rack(NodeId(0), NodeId(1)));
}

TEST(TopologyTest, NodeAccessors) {
  Topology t = Topology::uniform(2, 1);
  EXPECT_EQ(t.node(NodeId(1)).id, NodeId(1));
  t.mutable_node(NodeId(1)).speed_factor = 2.5;
  EXPECT_DOUBLE_EQ(t.node(NodeId(1)).speed_factor, 2.5);
}

TEST(SlotLedgerTest, AcquireRelease) {
  const Topology t = Topology::uniform(2, 1, 2, 1);
  SlotLedger ledger(t);
  EXPECT_EQ(ledger.total_free(SlotKind::kMap), 4);
  EXPECT_TRUE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  EXPECT_TRUE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  EXPECT_FALSE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  EXPECT_EQ(ledger.free_slots(NodeId(0), SlotKind::kMap), 0);
  EXPECT_EQ(ledger.total_free(SlotKind::kMap), 2);
  EXPECT_TRUE(ledger.release(NodeId(0), SlotKind::kMap).is_ok());
  EXPECT_EQ(ledger.free_slots(NodeId(0), SlotKind::kMap), 1);
}

TEST(SlotLedgerTest, ReleaseWithoutAcquireFails) {
  const Topology t = Topology::uniform(1, 1);
  SlotLedger ledger(t);
  EXPECT_EQ(ledger.release(NodeId(0), SlotKind::kMap).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SlotLedgerTest, UnknownNode) {
  const Topology t = Topology::uniform(1, 1);
  SlotLedger ledger(t);
  EXPECT_EQ(ledger.acquire(NodeId(9), SlotKind::kMap).code(),
            StatusCode::kNotFound);
}

TEST(SlotLedgerTest, ReduceSlotsIndependent) {
  const Topology t = Topology::uniform(1, 1, 1, 2);
  SlotLedger ledger(t);
  EXPECT_TRUE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  EXPECT_TRUE(ledger.acquire(NodeId(0), SlotKind::kReduce).is_ok());
  EXPECT_TRUE(ledger.acquire(NodeId(0), SlotKind::kReduce).is_ok());
  EXPECT_FALSE(ledger.acquire(NodeId(0), SlotKind::kReduce).is_ok());
}

TEST(SlotLedgerTest, ExclusionAffectsAvailability) {
  const Topology t = Topology::uniform(4, 1);
  SlotLedger ledger(t);
  EXPECT_EQ(ledger.available_map_slots(), 4);
  ledger.set_excluded(NodeId(2), true);
  EXPECT_TRUE(ledger.is_excluded(NodeId(2)));
  EXPECT_EQ(ledger.available_map_slots(), 3);
  EXPECT_EQ(ledger.available_nodes(SlotKind::kMap).size(), 3u);
  ledger.set_excluded(NodeId(2), false);
  EXPECT_EQ(ledger.available_map_slots(), 4);
}

TEST(SlotLedgerTest, ExcludedNodeCanStillReleaseRunningWork) {
  const Topology t = Topology::uniform(2, 1);
  SlotLedger ledger(t);
  ASSERT_TRUE(ledger.acquire(NodeId(0), SlotKind::kMap).is_ok());
  ledger.set_excluded(NodeId(0), true);
  EXPECT_TRUE(ledger.release(NodeId(0), SlotKind::kMap).is_ok());
}

ProgressReport report(NodeId node, SimTime start, double progress,
                      SimTime at) {
  ProgressReport r;
  r.node = node;
  r.task = TaskId(0);
  r.task_start = start;
  r.progress = progress;
  r.report_time = at;
  return r;
}

TEST(HeartbeatTest, EstimatesDurationFromProgress) {
  HeartbeatTracker tracker;
  tracker.report(report(NodeId(0), 0.0, 0.5, 10.0));
  const auto estimate = tracker.estimate(NodeId(0));
  ASSERT_TRUE(estimate.has_value());
  EXPECT_DOUBLE_EQ(estimate->estimated_duration, 20.0);
  EXPECT_DOUBLE_EQ(estimate->estimated_completion, 20.0);
}

TEST(HeartbeatTest, StalledTaskLooksSlow) {
  HeartbeatTracker tracker;
  tracker.report(report(NodeId(0), 0.0, 0.0, 30.0));
  const auto estimate = tracker.estimate(NodeId(0));
  ASSERT_TRUE(estimate.has_value());
  EXPECT_DOUBLE_EQ(estimate->estimated_duration, 60.0);  // 2x elapsed
}

TEST(HeartbeatTest, SlowNodesRelativeToMedian) {
  HeartbeatTracker tracker(1.5);
  // Five nodes at ~10 s, one at 40 s.
  for (std::uint64_t n = 0; n < 5; ++n) {
    tracker.report(report(NodeId(n), 0.0, 1.0, 10.0));
  }
  tracker.report(report(NodeId(9), 0.0, 0.25, 10.0));  // estimated 40 s
  const auto slow = tracker.slow_nodes();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0], NodeId(9));
}

TEST(HeartbeatTest, NoBasisWithSingleReport) {
  HeartbeatTracker tracker;
  tracker.report(report(NodeId(0), 0.0, 0.1, 10.0));
  EXPECT_TRUE(tracker.slow_nodes().empty());
}

TEST(HeartbeatTest, ClearRemovesNode) {
  HeartbeatTracker tracker;
  tracker.report(report(NodeId(0), 0.0, 0.5, 10.0));
  EXPECT_EQ(tracker.num_reporting(), 1u);
  tracker.clear(NodeId(0));
  EXPECT_EQ(tracker.num_reporting(), 0u);
  EXPECT_FALSE(tracker.estimate(NodeId(0)).has_value());
}

TEST(HeartbeatTest, RecoveryAfterNewReport) {
  HeartbeatTracker tracker(1.5);
  for (std::uint64_t n = 0; n < 4; ++n) {
    tracker.report(report(NodeId(n), 0.0, 1.0, 10.0));
  }
  tracker.report(report(NodeId(7), 0.0, 0.2, 10.0));  // 50 s: slow
  ASSERT_EQ(tracker.slow_nodes().size(), 1u);
  tracker.report(report(NodeId(7), 20.0, 1.0, 30.0));  // finished at speed
  EXPECT_TRUE(tracker.slow_nodes().empty());
}

}  // namespace
}  // namespace s3::cluster
