// Integration tests: every scheduler drives the real threaded engine over
// real bytes, and all of them must produce byte-identical job outputs —
// scheduling may only change *when* things run, never *what* is computed.
#include <gtest/gtest.h>

#include <map>

#include "core/real_driver.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/tpch.h"
#include "workloads/wordcount.h"

namespace s3::core {
namespace {

engine::LocalEngineOptions workers(std::size_t map, std::size_t reduce) {
  engine::LocalEngineOptions opts;
  opts.map_workers = map;
  opts.reduce_workers = reduce;
  return opts;
}

class RealDriverTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBlocks = 12;

  void SetUp() override {
    topology_ = cluster::Topology::uniform(4, 2);
    dfs::PlacementTopology ptopo;
    for (const auto& n : topology_.nodes()) {
      ptopo.nodes.push_back({n.id, n.rack});
    }
    dfs::RoundRobinPlacement placement(ptopo);
    workloads::TextCorpusGenerator corpus;
    auto file = corpus.generate_file(ns_, store_, placement, "corpus",
                                     kBlocks, ByteSize::kib(8));
    ASSERT_TRUE(file.is_ok());
    file_ = file.value();
    catalog_.add(file_, kBlocks);
  }

  std::vector<RealJob> three_jobs() const {
    std::vector<RealJob> jobs;
    jobs.push_back(
        {workloads::make_wordcount_job(JobId(0), file_, "a", 3), 0.0, 0});
    jobs.push_back(
        {workloads::make_wordcount_job(JobId(1), file_, "b", 3), 0.5, 0});
    jobs.push_back(
        {workloads::make_wordcount_job(JobId(2), file_, "c", 3), 1.0, 0});
    return jobs;
  }

  static std::map<std::string, std::string> to_map(
      const engine::JobResult& result) {
    std::map<std::string, std::string> m;
    for (const auto& kv : result.output) m[kv.key] = kv.value;
    return m;
  }

  RealRunResult run_with(sched::Scheduler& scheduler) {
    engine::LocalEngine engine(ns_, store_, workers(4, 2));
    RealDriver driver(ns_, engine, catalog_);
    auto result = driver.run(scheduler, three_jobs());
    EXPECT_TRUE(result.is_ok()) << result.status();
    return std::move(result).value();
  }

  cluster::Topology topology_;
  dfs::DfsNamespace ns_;
  dfs::BlockStore store_;
  sched::FileCatalog catalog_;
  FileId file_;
};

TEST_F(RealDriverTest, AllSchedulersProduceIdenticalOutputs) {
  auto fifo = workloads::make_fifo(catalog_);
  auto mrs1 = workloads::make_mrs1(catalog_);
  auto mrs3 = workloads::make_mrs3(catalog_);
  auto s3 = workloads::make_s3(catalog_, topology_, /*segment_blocks=*/4);

  const auto r_fifo = run_with(*fifo);
  const auto r_mrs1 = run_with(*mrs1);
  const auto r_mrs3 = run_with(*mrs3);
  const auto r_s3 = run_with(*s3);

  for (std::uint64_t j = 0; j < 3; ++j) {
    const auto want = to_map(r_fifo.outputs.at(JobId(j)));
    EXPECT_FALSE(want.empty());
    EXPECT_EQ(to_map(r_mrs1.outputs.at(JobId(j))), want) << "job " << j;
    EXPECT_EQ(to_map(r_mrs3.outputs.at(JobId(j))), want) << "job " << j;
    EXPECT_EQ(to_map(r_s3.outputs.at(JobId(j))), want) << "job " << j;
  }
}

TEST_F(RealDriverTest, SharedScanReducesPhysicalReads) {
  auto fifo = workloads::make_fifo(catalog_);
  auto mrs1 = workloads::make_mrs1(catalog_);
  const auto r_fifo = run_with(*fifo);
  const auto r_mrs1 = run_with(*mrs1);
  // FIFO scans the file once per job; the MRShare batch scans it once total.
  EXPECT_EQ(r_fifo.scan.blocks_physical, 3 * kBlocks);
  EXPECT_EQ(r_mrs1.scan.blocks_physical, kBlocks);
  // Logical service is identical.
  EXPECT_EQ(r_fifo.scan.blocks_logical, r_mrs1.scan.blocks_logical);
}

TEST_F(RealDriverTest, S3SharesPartiallyOverlappingScans) {
  // Stretch wall time into virtual time so every sub-job batch spans the
  // arrival gaps deterministically: jobs 1 and 2 are guaranteed to arrive
  // while job 0's first segment is processing, join at segment 1, and wrap.
  engine::LocalEngine engine(ns_, store_, workers(4, 2));
  RealDriverOptions options;
  options.time_scale = 1e6;  // any batch >= 1 us wall spans the 0.5 s gaps
  RealDriver driver(ns_, engine, catalog_, options);
  auto s3 = workloads::make_s3(catalog_, topology_, /*segment_blocks=*/4);
  auto run = driver.run(*s3, three_jobs());
  ASSERT_TRUE(run.is_ok());
  const auto& result = run.value();
  // Segment 0 is scanned once for job 0 and once more (after wrap) for jobs
  // 1+2; segments 1 and 2 are scanned once for everyone: 16 physical reads
  // serving 36 logical block-scans.
  EXPECT_EQ(result.scan.blocks_physical, 16u);
  EXPECT_EQ(result.scan.blocks_logical, 3 * kBlocks);
  EXPECT_EQ(result.batches_run, 4u);
}

TEST_F(RealDriverTest, MetricsPopulated) {
  auto s3 = workloads::make_s3(catalog_, topology_, 4);
  const auto result = run_with(*s3);
  EXPECT_EQ(result.summary.num_jobs, 3u);
  EXPECT_GT(result.summary.tet, 0.0);
  EXPECT_GT(result.summary.art, 0.0);
  EXPECT_EQ(result.job_records.size(), 3u);
  for (const auto& record : result.job_records) {
    EXPECT_TRUE(record.done());
    EXPECT_GE(record.waiting_time().value(), 0.0);
  }
  for (std::uint64_t j = 0; j < 3; ++j) {
    EXPECT_GT(result.counters.at(JobId(j)).map_input_records, 0u);
    EXPECT_EQ(result.counters.at(JobId(j)).blocks_scanned, kBlocks);
  }
}

TEST_F(RealDriverTest, TpchSelectionEndToEnd) {
  // Build a small lineitem file and run the selection workload through S3.
  dfs::PlacementTopology ptopo;
  for (const auto& n : topology_.nodes()) {
    ptopo.nodes.push_back({n.id, n.rack});
  }
  dfs::RoundRobinPlacement placement(ptopo);
  workloads::tpch::LineitemGenerator gen;
  auto file = gen.generate_file(ns_, store_, placement, "lineitem", 8,
                                ByteSize::kib(8));
  ASSERT_TRUE(file.is_ok());
  catalog_.add(file.value(), 8);

  engine::LocalEngine engine(ns_, store_, workers(4, 2));
  RealDriver driver(ns_, engine, catalog_);
  std::vector<RealJob> jobs;
  jobs.push_back({workloads::tpch::make_selection_job(JobId(0), file.value(),
                                                      5, 2),
                  0.0, 0});
  jobs.push_back({workloads::tpch::make_selection_job(JobId(1), file.value(),
                                                      50, 2),
                  0.1, 0});
  auto s3 = workloads::make_s3(catalog_, topology_, 2);
  auto result = driver.run(*s3, std::move(jobs));
  ASSERT_TRUE(result.is_ok());

  const auto& selective = result.value().outputs.at(JobId(0)).output;
  const auto& all = result.value().outputs.at(JobId(1)).output;
  ASSERT_GT(all.size(), 0u);
  // ~10% selectivity, with slack for small-sample noise.
  const double ratio =
      static_cast<double>(selective.size()) / static_cast<double>(all.size());
  EXPECT_GT(ratio, 0.04);
  EXPECT_LT(ratio, 0.18);
}

TEST_F(RealDriverTest, EmptyWorkloadRejected) {
  engine::LocalEngine engine(ns_, store_, workers(2, 1));
  RealDriver driver(ns_, engine, catalog_);
  auto fifo = workloads::make_fifo(catalog_);
  EXPECT_FALSE(driver.run(*fifo, {}).is_ok());
}

TEST_F(RealDriverTest, PriorityRespectedByFifo) {
  engine::LocalEngine engine(ns_, store_, workers(4, 2));
  RealDriver driver(ns_, engine, catalog_);
  auto jobs = three_jobs();
  jobs[0].arrival = 0.0;
  jobs[1].arrival = 0.0;
  jobs[2].arrival = 0.0;
  jobs[2].priority = 10;  // should run first
  auto fifo = workloads::make_fifo(catalog_);
  auto result = driver.run(*fifo, std::move(jobs));
  ASSERT_TRUE(result.is_ok());
  const auto& records = result.value().job_records;
  // job 2 completes first.
  double c2 = 0, c0 = 0;
  for (const auto& r : records) {
    if (r.id == JobId(2)) c2 = r.completed;
    if (r.id == JobId(0)) c0 = r.completed;
  }
  EXPECT_LT(c2, c0);
}

}  // namespace
}  // namespace s3::core
