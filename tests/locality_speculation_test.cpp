// Tests for the simulator's data-locality and speculative-execution models
// (the two Hadoop mechanisms the paper's §V-A explicitly configures).
#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "sim/cost_model.h"

namespace s3::sim {
namespace {

sched::Batch whole_wave(std::uint64_t start, std::uint64_t blocks) {
  sched::Batch batch;
  batch.id = BatchId(0);
  batch.file = FileId(0);
  batch.start_block = start;
  batch.num_blocks = blocks;
  batch.members.push_back({JobId(0), blocks, true});
  return batch;
}

std::unordered_map<JobId, WorkloadCost> normal_cost() {
  return {{JobId(0), WorkloadCost::wordcount_normal()}};
}

TEST(LocalityTest, AlignedWavesAreFullyLocal) {
  const auto topology = cluster::Topology::paper_cluster();
  CostModel model(CostModelParams::paper(), topology);
  // 320 blocks starting at 0 over 40 nodes: exactly 8 per node, all local.
  const auto cost = model.batch_cost(whole_wave(0, 320), normal_cost(), {},
                                     nullptr);
  for (const auto& task : cost.map_tasks) {
    EXPECT_TRUE(task.local);
    EXPECT_EQ(task.node.value(), task.block_offset % 40);
  }
}

TEST(LocalityTest, ExcludedReplicaForcesRemoteReads) {
  const auto topology = cluster::Topology::paper_cluster();
  CostModel model(CostModelParams::paper(), topology);
  // Exclude node 0: its 8 blocks must be read remotely somewhere else.
  const auto cost = model.batch_cost(whole_wave(0, 320), normal_cost(),
                                     {NodeId(0)}, nullptr);
  int remote = 0;
  for (const auto& task : cost.map_tasks) {
    EXPECT_NE(task.node, NodeId(0));
    remote += task.local ? 0 : 1;
  }
  EXPECT_EQ(remote, 8);
}

TEST(LocalityTest, RemoteReadsSlowTheWave) {
  const auto topology = cluster::Topology::paper_cluster();
  CostModelParams params = CostModelParams::paper();
  CostModel with(params, topology);
  params.model_locality = false;
  CostModel without(params, topology);
  const auto cost_with = with.batch_cost(whole_wave(0, 320), normal_cost(),
                                         {NodeId(0)}, nullptr);
  const auto cost_without = without.batch_cost(whole_wave(0, 320),
                                               normal_cost(), {NodeId(0)},
                                               nullptr);
  EXPECT_GT(cost_with.map_phase, cost_without.map_phase);
}

TEST(LocalityTest, DelayRuleWaitsForBusyReplica) {
  // A 2-node cluster and 4 consecutive blocks: blocks 0,2 live on node 0 and
  // 1,3 on node 1; with enforce_locality every task should stay local.
  const auto topology = cluster::Topology::uniform(2, 1);
  CostModel model(CostModelParams::paper(), topology);
  const auto cost = model.batch_cost(whole_wave(0, 4), normal_cost(), {},
                                     nullptr);
  for (const auto& task : cost.map_tasks) {
    EXPECT_TRUE(task.local);
    EXPECT_EQ(task.node.value(), task.block_offset % 2);
  }
}

TEST(LocalityTest, GreedyModeTradesLocalityForSlots) {
  // Without enforce_locality a free remote slot is taken immediately: on a
  // 2-node cluster with node 0 slowed 3x, the scheduler drains blocks onto
  // the fast node even when their replica sits on the slow one.
  const auto topology = cluster::Topology::uniform(2, 1);
  CostModelParams params = CostModelParams::paper();
  params.enforce_locality = false;
  CostModel model(params, topology);
  const auto slow0 = [](NodeId n) { return n == NodeId(0) ? 3.0 : 1.0; };
  const auto cost = model.batch_cost(whole_wave(0, 6), normal_cost(), {},
                                     slow0);
  int remote = 0;
  for (const auto& task : cost.map_tasks) remote += task.local ? 0 : 1;
  EXPECT_GE(remote, 1);
}

TEST(SpeculationTest, DisabledByDefaultMatchesPaperConfig) {
  EXPECT_FALSE(CostModelParams::paper().speculative_execution);
}

TEST(SpeculationTest, BackupBeatsStraggler) {
  const auto topology = cluster::Topology::uniform(4, 1);
  CostModelParams params = CostModelParams::paper();
  params.speculative_execution = true;
  params.speculative_threshold = 2.0;
  CostModel with(params, topology);
  params.speculative_execution = false;
  CostModel without(params, topology);

  // Node 3 is 10x slow; one wave of 4 blocks.
  const auto slow = [](NodeId n) { return n == NodeId(3) ? 10.0 : 1.0; };
  const auto speculated =
      with.batch_cost(whole_wave(0, 4), normal_cost(), {}, slow);
  const auto plain =
      without.batch_cost(whole_wave(0, 4), normal_cost(), {}, slow);
  EXPECT_LT(speculated.map_phase, plain.map_phase);
  int backups = 0;
  for (const auto& task : speculated.map_tasks) backups += task.speculated;
  EXPECT_EQ(backups, 1);
}

TEST(SpeculationTest, NoBackupsOnHomogeneousCluster) {
  const auto topology = cluster::Topology::paper_cluster();
  CostModelParams params = CostModelParams::paper();
  params.speculative_execution = true;
  CostModel model(params, topology);
  const auto cost = model.batch_cost(whole_wave(0, 320), normal_cost(), {},
                                     nullptr);
  for (const auto& task : cost.map_tasks) EXPECT_FALSE(task.speculated);
}

}  // namespace
}  // namespace s3::sim
