// Tests for the s3lockcheck whole-project analyzer: model extraction on
// synthetic sources, and end-to-end runs over temp-dir fixture trees —
// seeded two-lock and three-lock cycles, a blocking-under-lock fixture, and
// a clean miniature of the real hierarchy that must come back green.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "s3lint/lexer.h"
#include "s3lockcheck/graph.h"
#include "s3lockcheck/model.h"
#include "s3lockcheck/s3lockcheck.h"

namespace s3lockcheck {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Model extraction

FileModel extract(const std::string& src) {
  return extract_model("src/test.h", s3lint::tokenize(src));
}

TEST(LockcheckModel, FindsAnnotatedMutexWithRank) {
  const FileModel fm = extract(
      "class Engine {\n"
      "  AnnotatedMutex mu_{LockRank::kEngineState};\n"
      "  AnnotatedSharedMutex reg_mu_{LockRank::kShuffleRegistry};\n"
      "  AnnotatedMutex* borrowed_;  // pointer: not a declaration\n"
      "};\n");
  ASSERT_EQ(fm.mutexes.size(), 2u);
  EXPECT_EQ(fm.mutexes[0].id, "Engine::mu_");
  EXPECT_EQ(fm.mutexes[0].rank, "kEngineState");
  EXPECT_FALSE(fm.mutexes[0].shared);
  EXPECT_EQ(fm.mutexes[1].id, "Engine::reg_mu_");
  EXPECT_TRUE(fm.mutexes[1].shared);
}

TEST(LockcheckModel, NestedClassAndTemplateMemberTypes) {
  const FileModel fm = extract(
      "class Pool {\n"
      "  struct Queue {\n"
      "    AnnotatedMutex mu{LockRank::kPoolQueue};\n"
      "  };\n"
      "  std::vector<std::unique_ptr<Queue>> queues_;\n"
      "};\n");
  ASSERT_EQ(fm.mutexes.size(), 1u);
  EXPECT_EQ(fm.mutexes[0].id, "Pool::Queue::mu");
  // The member type must see through the template wrappers so receiver
  // resolution can map queues_[i]->mu to Pool::Queue::mu.
  EXPECT_EQ(fm.members.at("Pool").at("queues_"), "Queue");
}

TEST(LockcheckModel, RecordsGuardNestingAndHeldSets) {
  const FileModel fm = extract(
      "void Engine::commit() {\n"
      "  MutexLock outer(map_mu_);\n"
      "  MutexLock inner(state_mu_);\n"
      "}\n");
  ASSERT_EQ(fm.functions.size(), 1u);
  const FunctionModel& fn = fm.functions[0];
  ASSERT_EQ(fn.acquires.size(), 2u);
  EXPECT_TRUE(fn.acquires[0].held.empty());
  ASSERT_EQ(fn.acquires[1].held.size(), 1u);
  EXPECT_EQ(fn.acquires[1].held[0], 0);
}

TEST(LockcheckModel, LambdaSitesAreMarkedDeferred) {
  const FileModel fm = extract(
      "void Engine::run() {\n"
      "  MutexLock lock(mu_);\n"
      "  tasks.push_back([this] {\n"
      "    MutexLock inner(worker_mu_);\n"
      "  });\n"
      "}\n");
  ASSERT_EQ(fm.functions.size(), 1u);
  const FunctionModel& fn = fm.functions[0];
  ASSERT_EQ(fn.acquires.size(), 2u);
  EXPECT_FALSE(fn.acquires[0].in_lambda);
  EXPECT_TRUE(fn.acquires[1].in_lambda);
  // The deferred body runs on a pool thread: no inherited held-set.
  EXPECT_TRUE(fn.acquires[1].held.empty());
}

TEST(LockcheckModel, AnnotationsAndRankEnum) {
  const FileModel fm = extract(
      "enum class LockRank : std::uint16_t {\n"
      "  kUnranked = 0,\n"
      "  kA = 10,\n"
      "  kB = 20,\n"
      "};\n"
      "class C {\n"
      "  void locked() S3_REQUIRES(mu_);\n"
      "  void takes() S3_EXCLUDES(mu_);\n"
      "};\n");
  EXPECT_EQ(fm.rank_values.at("kA"), 10);
  EXPECT_EQ(fm.rank_values.at("kB"), 20);
  ASSERT_EQ(fm.functions.size(), 2u);
  ASSERT_EQ(fm.functions[0].requires_args.size(), 1u);
  EXPECT_EQ(fm.functions[0].requires_args[0], "mu_");
  ASSERT_EQ(fm.functions[1].excludes_args.size(), 1u);
  EXPECT_EQ(fm.functions[1].excludes_args[0], "mu_");
}

TEST(LockcheckModel, OwnGuardWaitIsMarked) {
  const FileModel fm = extract(
      "void Pool::drain() {\n"
      "  MutexLock lock(mu_);\n"
      "  while (pending_ != 0) lock.wait(idle_cv_);\n"
      "}\n");
  ASSERT_EQ(fm.functions.size(), 1u);
  const FunctionModel& fn = fm.functions[0];
  bool found = false;
  for (const CallSite& call : fn.calls) {
    if (call.callee == "wait") {
      EXPECT_EQ(call.wait_guard, 0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// End-to-end fixture trees

class LockcheckFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("s3lockcheck_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::create_directories(root_ / "src");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
  }

  int run(std::string* output, std::set<std::string> rules = {}) {
    LockcheckOptions options;
    options.root = root_.string();
    options.rules = std::move(rules);
    return run_lockcheck(options, output);
  }

  // A miniature lock_rank.h so fixtures can rank their mutexes.
  static const char* rank_header() {
    return "#pragma once\n"
           "enum class LockRank : std::uint16_t {\n"
           "  kUnranked = 0,\n"
           "  kOuter = 10,\n"
           "  kMiddle = 20,\n"
           "  kInner = 30,\n"
           "};\n";
  }

  fs::path root_;
};

TEST_F(LockcheckFixture, TwoLockCycleDetected) {
  write("src/lock_rank.h", rank_header());
  write("src/cycle.h",
        "#pragma once\n"
        "class Engine {\n"
        " public:\n"
        "  void ab() {\n"
        "    MutexLock a(mu_a_);\n"
        "    MutexLock b(mu_b_);\n"
        "  }\n"
        "  void ba() {\n"
        "    MutexLock b(mu_b_);\n"
        "    MutexLock a(mu_a_);\n"
        "  }\n"
        " private:\n"
        "  AnnotatedMutex mu_a_{LockRank::kOuter};\n"
        "  AnnotatedMutex mu_b_{LockRank::kInner};\n"
        "};\n");
  std::string output;
  EXPECT_EQ(run(&output, {"lock-cycle"}), 1);
  EXPECT_NE(output.find("lock-cycle"), std::string::npos) << output;
  EXPECT_NE(output.find("Engine::mu_a_"), std::string::npos) << output;
  EXPECT_NE(output.find("Engine::mu_b_"), std::string::npos) << output;
}

TEST_F(LockcheckFixture, ThreeLockCycleAcrossFunctions) {
  write("src/lock_rank.h", rank_header());
  // A -> B in one class, B -> C in another, C -> A through a cross-class
  // call made under lock: the cycle only exists in the merged project graph.
  write("src/three.h",
        "#pragma once\n"
        "class One {\n"
        " public:\n"
        "  void ab() {\n"
        "    MutexLock a(mu_a_);\n"
        "    MutexLock b(other_->mu_b_);\n"
        "  }\n"
        "  AnnotatedMutex mu_a_{LockRank::kOuter};\n"
        "  Two* other_;\n"
        "};\n");
  write("src/two.h",
        "#pragma once\n"
        "class Two {\n"
        " public:\n"
        "  void bc() {\n"
        "    MutexLock b(mu_b_);\n"
        "    MutexLock c(third_->mu_c_);\n"
        "  }\n"
        "  AnnotatedMutex mu_b_{LockRank::kMiddle};\n"
        "  Three* third_;\n"
        "};\n");
  write("src/third.h",
        "#pragma once\n"
        "class Three {\n"
        " public:\n"
        "  void takes_a() {\n"
        "    MutexLock a(one_->mu_a_);\n"
        "  }\n"
        "  void ca() {\n"
        "    MutexLock c(mu_c_);\n"
        "    takes_a();\n"
        "  }\n"
        "  AnnotatedMutex mu_c_{LockRank::kInner};\n"
        "  One* one_;\n"
        "};\n");
  std::string output;
  EXPECT_EQ(run(&output, {"lock-cycle"}), 1);
  EXPECT_NE(output.find("lock-cycle"), std::string::npos) << output;
  EXPECT_NE(output.find("One::mu_a_"), std::string::npos) << output;
  EXPECT_NE(output.find("Two::mu_b_"), std::string::npos) << output;
  EXPECT_NE(output.find("Three::mu_c_"), std::string::npos) << output;
}

TEST_F(LockcheckFixture, BlockingUnderLockDetected) {
  write("src/lock_rank.h", rank_header());
  write("src/block.h",
        "#pragma once\n"
        "class ThreadPool {\n"
        " public:\n"
        "  void submit();\n"
        "};\n"
        "class Driver {\n"
        " public:\n"
        "  void bad() {\n"
        "    MutexLock lock(mu_);\n"
        "    pool_->submit();\n"
        "  }\n"
        "  void good() {\n"
        "    {\n"
        "      MutexLock lock(mu_);\n"
        "    }\n"
        "    pool_->submit();\n"
        "  }\n"
        " private:\n"
        "  AnnotatedMutex mu_{LockRank::kOuter};\n"
        "  ThreadPool* pool_;\n"
        "};\n");
  std::string output;
  EXPECT_EQ(run(&output, {"blocking-under-lock"}), 1);
  EXPECT_NE(output.find("blocking-under-lock"), std::string::npos) << output;
  EXPECT_NE(output.find("Driver::bad"), std::string::npos) << output;
  EXPECT_EQ(output.find("Driver::good"), std::string::npos) << output;
}

TEST_F(LockcheckFixture, TransitiveBlockingThroughCallGraph) {
  write("src/lock_rank.h", rank_header());
  write("src/chain.h",
        "#pragma once\n"
        "class BlockStore {\n"
        " public:\n"
        "  void get();\n"
        "};\n"
        "class Reader {\n"
        " public:\n"
        "  void fetch_one() { store_->get(); }\n"
        "  void bad() {\n"
        "    MutexLock lock(mu_);\n"
        "    fetch_one();\n"
        "  }\n"
        " private:\n"
        "  AnnotatedMutex mu_{LockRank::kOuter};\n"
        "  BlockStore* store_;\n"
        "};\n");
  std::string output;
  EXPECT_EQ(run(&output, {"blocking-under-lock"}), 1);
  EXPECT_NE(output.find("BlockStore::get"), std::string::npos) << output;
}

TEST_F(LockcheckFixture, RankOrderViolationDetected) {
  write("src/lock_rank.h", rank_header());
  write("src/inverted.h",
        "#pragma once\n"
        "class Engine {\n"
        " public:\n"
        "  void inverted() {\n"
        "    MutexLock inner(mu_inner_);\n"
        "    MutexLock outer(mu_outer_);\n"
        "  }\n"
        " private:\n"
        "  AnnotatedMutex mu_outer_{LockRank::kOuter};\n"
        "  AnnotatedMutex mu_inner_{LockRank::kInner};\n"
        "};\n");
  std::string output;
  EXPECT_EQ(run(&output, {"rank-order"}), 1);
  EXPECT_NE(output.find("rank-order"), std::string::npos) << output;
  EXPECT_NE(output.find("kInner"), std::string::npos) << output;
}

TEST_F(LockcheckFixture, UnrankedMutexDetected) {
  write("src/lock_rank.h", rank_header());
  write("src/unranked.h",
        "#pragma once\n"
        "class Engine {\n"
        "  AnnotatedMutex mu_;\n"
        "};\n");
  std::string output;
  EXPECT_EQ(run(&output, {"unranked-mutex"}), 1);
  EXPECT_NE(output.find("unranked-mutex"), std::string::npos) << output;
}

TEST_F(LockcheckFixture, CleanHierarchyPasses) {
  // A miniature of the real tree: ranked locks, rank-increasing nesting,
  // guard-wait in the pool, submit after the guard scope closes.
  write("src/lock_rank.h", rank_header());
  write("src/clean.h",
        "#pragma once\n"
        "class Pool {\n"
        " public:\n"
        "  void wait_idle() {\n"
        "    MutexLock lock(mu_);\n"
        "    while (pending_ != 0) lock.wait(idle_cv_);\n"
        "  }\n"
        "  void submit();\n"
        " private:\n"
        "  AnnotatedMutex mu_{LockRank::kInner};\n"
        "  int pending_ = 0;\n"
        "};\n"
        "class Engine {\n"
        " public:\n"
        "  void run() {\n"
        "    {\n"
        "      MutexLock outer(mu_outer_);\n"
        "      MutexLock inner(mu_middle_);\n"
        "      state_ = 1;\n"
        "    }\n"
        "    pool_->submit();\n"
        "    pool_->wait_idle();\n"
        "  }\n"
        " private:\n"
        "  AnnotatedMutex mu_outer_{LockRank::kOuter};\n"
        "  AnnotatedMutex mu_middle_{LockRank::kMiddle};\n"
        "  Pool* pool_;\n"
        "  int state_ = 0;\n"
        "};\n");
  std::string output;
  EXPECT_EQ(run(&output), 0) << output;
  EXPECT_TRUE(output.empty()) << output;
}

TEST_F(LockcheckFixture, SuppressionSilencesFinding) {
  write("src/lock_rank.h", rank_header());
  write("src/block.h",
        "#pragma once\n"
        "class ThreadPool {\n"
        " public:\n"
        "  void submit();\n"
        "};\n"
        "class Driver {\n"
        " public:\n"
        "  void bad() {\n"
        "    MutexLock lock(mu_);\n"
        "    // s3lockcheck: disable(blocking-under-lock)\n"
        "    pool_->submit();\n"
        "  }\n"
        " private:\n"
        "  AnnotatedMutex mu_{LockRank::kOuter};\n"
        "  ThreadPool* pool_;\n"
        "};\n");
  std::string output;
  EXPECT_EQ(run(&output, {"blocking-under-lock"}), 0) << output;
}

TEST_F(LockcheckFixture, MissingSrcDirIsUsageError) {
  fs::remove_all(root_ / "src");
  std::string output;
  EXPECT_EQ(run(&output), 2);
}

// ---------------------------------------------------------------------------
// The real tree must be clean (the same invariant CI gates on).

TEST(LockcheckTree, RealSourceTreeIsClean) {
  // Locate the repo root: walk up from the test binary's cwd until src/
  // and tools/ both exist. ctest runs from build/tests, so two levels up.
  fs::path root = fs::current_path();
  bool found = false;
  for (int i = 0; i < 5 && !root.empty(); ++i) {
    if (fs::exists(root / "src") && fs::exists(root / "tools")) {
      found = true;
      break;
    }
    root = root.parent_path();
  }
  if (!found) GTEST_SKIP() << "repo root not found from cwd";
  LockcheckOptions options;
  options.root = root.string();
  std::string output;
  EXPECT_EQ(run_lockcheck(options, &output), 0) << output;
}

}  // namespace
}  // namespace s3lockcheck
