// Differential tests for the vectorized tokenizer: the SWAR and SSE2 scan
// paths must split every input into exactly the words the scalar loop
// produces — unit-level on adversarial and fuzzed strings, and end-to-end
// through the full engine under all three schedulers (FIFO, MRShare, S3),
// where a single divergent token boundary would change wordcount output.
#include "workloads/tokenize.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/real_driver.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/wordcount.h"

namespace s3 {
namespace {

using workloads::TokenizeMode;

std::vector<std::string> tokens(std::string_view line, TokenizeMode mode) {
  workloads::set_tokenize_mode(mode);
  std::vector<std::string> out;
  workloads::for_each_word(line,
                           [&](std::string_view w) { out.emplace_back(w); });
  workloads::set_tokenize_mode(TokenizeMode::kAuto);
  return out;
}

class TokenizeTest : public ::testing::Test {
 protected:
  ~TokenizeTest() override {
    workloads::set_tokenize_mode(TokenizeMode::kAuto);
  }
};

TEST_F(TokenizeTest, AllModesAgreeOnEdgeCases) {
  const std::vector<std::string> cases = {
      "",
      " ",
      "                                        ",  // > 2 SIMD chunks of space
      "a",
      " a",
      "a ",
      "  a  b  ",
      "one two three",
      "exactly-sixteen!",                  // 16 bytes, no space
      "exactly-sixteen! and-then-more",    // space right at a chunk edge
      std::string(7, 'x'),                 // SWAR tail only
      std::string(8, 'x'),                 // one exact SWAR word
      std::string(15, 'x'),                // SIMD tail lands in SWAR
      std::string(16, 'x'),                // one exact SIMD chunk
      std::string(17, 'x'),
      std::string(100, 'x'),
      std::string(100, ' '),
      std::string(31, 'x') + " " + std::string(33, 'y'),
      "word\tword",    // tab is NOT a delimiter (corpus is space-separated)
      "word\nword",    // neither is newline (records are pre-split lines)
      std::string("em\0bedded nul", 13),  // NUL bytes are word bytes
      // ' ' followed by '!' (0x21, i.e. delimiter+1): a borrow-propagating
      // SWAR detector falsely flags the '!' as a space. Keep adjacency at
      // several offsets inside and across the 8/16-byte windows.
      " !",
      "hello !world",
      "a ! b !! c !",
      "1234567 !89abcde !",
      std::string(15, 'x') + " !tail",
      " ! ! ! ! ! ! ! ! ! !",
  };
  for (const auto& line : cases) {
    SCOPED_TRACE("line='" + line + "'");
    const auto scalar = tokens(line, TokenizeMode::kScalar);
    EXPECT_EQ(tokens(line, TokenizeMode::kSwar), scalar);
    EXPECT_EQ(tokens(line, TokenizeMode::kSimd), scalar);
  }
}

TEST_F(TokenizeTest, FuzzedLinesMatchScalarOracle) {
  Rng rng(20260807);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.uniform_u64(200);
    std::string line;
    line.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      // Space-weighted draw over ALL 256 byte values, so runs of delimiters,
      // words of every length relative to the 8/16-byte chunk sizes, and
      // detector-adversarial bytes (0x21 after a space, 0x80+ high bytes,
      // NULs) all occur.
      const std::uint64_t roll = rng.uniform_u64(4);
      line.push_back(roll == 0 ? ' '
                               : static_cast<char>(rng.uniform_u64(256)));
    }
    SCOPED_TRACE("trial " + std::to_string(trial) + " line='" + line + "'");
    const auto scalar = tokens(line, TokenizeMode::kScalar);
    ASSERT_EQ(tokens(line, TokenizeMode::kSwar), scalar);
    ASSERT_EQ(tokens(line, TokenizeMode::kSimd), scalar);
  }
}

TEST_F(TokenizeTest, AutoResolvesToAWideMode) {
  workloads::set_tokenize_mode(TokenizeMode::kAuto);
  const TokenizeMode effective = workloads::effective_tokenize_mode();
  EXPECT_NE(effective, TokenizeMode::kAuto);
  EXPECT_NE(effective, TokenizeMode::kScalar);
}

// --- End-to-end: scalar vs vectorized through all three schedulers ------

struct World {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(3, 1);
  sched::FileCatalog catalog;
  FileId text_file;
  static constexpr std::uint64_t kBlocks = 6;

  World() {
    dfs::PlacementTopology ptopo;
    for (const auto& n : topology.nodes()) {
      ptopo.nodes.push_back({n.id, n.rack});
    }
    dfs::RoundRobinPlacement placement(ptopo);
    workloads::TextCorpusGenerator corpus;
    text_file = corpus
                    .generate_file(ns, store, placement, "text", kBlocks,
                                   ByteSize::kib(8))
                    .value();
    catalog.add(text_file, kBlocks);
  }
};

std::unordered_map<JobId, engine::JobResult> run_wordcount_mix(
    World& world, const char* scheme, TokenizeMode mode) {
  workloads::set_tokenize_mode(mode);
  std::unique_ptr<sched::Scheduler> scheduler;
  if (scheme[0] == 'f') {
    scheduler = workloads::make_fifo(world.catalog);
  } else if (scheme[0] == 'm') {
    scheduler = workloads::make_mrs3(world.catalog);
  } else {
    scheduler = workloads::make_s3(world.catalog, world.topology, 3);
  }
  engine::LocalEngineOptions opts;
  opts.map_workers = 3;
  opts.reduce_workers = 2;
  engine::LocalEngine engine(world.ns, world.store, opts);
  core::RealDriver driver(world.ns, engine, world.catalog,
                          {/*time_scale=*/1e5});
  std::vector<core::RealJob> jobs;
  jobs.push_back({workloads::make_wordcount_job(JobId(0), world.text_file, "t",
                                                3, /*with_combiner=*/true),
                  0.0, 0});
  jobs.push_back({workloads::make_wordcount_job(JobId(1), world.text_file, "",
                                                2, /*with_combiner=*/false),
                  0.5, 0});
  jobs.push_back(
      {workloads::make_heavy_wordcount_job(JobId(2), world.text_file, 2, 2),
       1.0, 0});
  auto run = driver.run(*scheduler, std::move(jobs));
  workloads::set_tokenize_mode(TokenizeMode::kAuto);
  EXPECT_TRUE(run.is_ok()) << scheme << ": " << run.status();
  return std::move(run.value().outputs);
}

TEST_F(TokenizeTest, VectorizedMatchesScalarAcrossAllSchedulers) {
  for (const char* scheme : {"fifo", "mrs3", "s3"}) {
    SCOPED_TRACE(scheme);
    World world;
    const auto scalar =
        run_wordcount_mix(world, scheme, TokenizeMode::kScalar);
    const auto simd = run_wordcount_mix(world, scheme, TokenizeMode::kSimd);
    const auto swar = run_wordcount_mix(world, scheme, TokenizeMode::kSwar);
    ASSERT_EQ(simd.size(), scalar.size());
    ASSERT_EQ(swar.size(), scalar.size());
    for (const auto& [job, result] : scalar) {
      SCOPED_TRACE("job " + std::to_string(job.value()));
      for (const auto* other : {&simd, &swar}) {
        const auto it = other->find(job);
        ASSERT_NE(it, other->end());
        ASSERT_EQ(it->second.output.size(), result.output.size());
        for (std::size_t i = 0; i < result.output.size(); ++i) {
          EXPECT_EQ(it->second.output[i].key, result.output[i].key);
          EXPECT_EQ(it->second.output[i].value, result.output[i].value);
        }
      }
    }
  }
}

}  // namespace
}  // namespace s3
