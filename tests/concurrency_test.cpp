// Tests for the concurrency primitives: BlockingQueue and ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/thread_pool.h"

namespace s3 {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueueTest, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(5);
  EXPECT_EQ(q.try_pop().value(), 5);
}

TEST(BlockingQueueTest, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));  // rejected after close
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueueTest, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&] {
    const auto v = q.pop();  // blocks until close
    got_nullopt = !v.has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(got_nullopt.load());
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  std::atomic<long> sum{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        const auto v = q.pop();
        if (!v.has_value()) return;
        sum += *v;
        ++consumed;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  const long n = kPerProducer * kProducers;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.submit([&count] { ++count; }));
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(pool.submit([&] {
      const int now = ++in_flight;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      --in_flight;
    }));
  }
  pool.wait_idle();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      }));
    }
  }  // destructor: shutdown + drain
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleCanBeReused) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) EXPECT_TRUE(pool.submit([&count] { ++count; }));
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

// --- Shutdown/close edge semantics ---

TEST(BlockingQueueTest, CloseIsIdempotentAndDropsLatePushes) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  q.close();  // second close is a no-op, not an error
  EXPECT_FALSE(q.push(8));
  EXPECT_FALSE(q.push(9));
  EXPECT_EQ(q.size(), 1u);  // late pushes were dropped, not queued
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueueTest, TryPopStillDrainsAfterClose) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueueTest, CloseWakesAllBlockedConsumers) {
  BlockingQueue<int> q;
  constexpr int kConsumers = 4;
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      if (!q.pop().has_value()) ++woke;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), kConsumers);
}

TEST(BlockingQueueTest, ConcurrentCloseAndPushNeverLosesAcceptedItems) {
  // Every push that returned true must be popped exactly once, no matter
  // where close() landed relative to the pushes.
  for (int trial = 0; trial < 20; ++trial) {
    BlockingQueue<int> q;
    std::atomic<int> accepted{0};
    std::thread producer([&] {
      for (int i = 0; i < 1000; ++i) {
        if (q.push(i)) ++accepted;
      }
    });
    std::thread closer([&] { q.close(); });
    producer.join();
    closer.join();
    int drained = 0;
    while (q.try_pop().has_value()) ++drained;
    EXPECT_EQ(drained, accepted.load());
  }
}

// --- ThreadPool exception propagation ---

TEST(ThreadPoolTest, TaskExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_TRUE(pool.submit([] { throw std::runtime_error("task exploded"); }));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(pool.submit([&completed] { ++completed; }));
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The throwing task did not kill its worker: every other task still ran.
  EXPECT_EQ(completed.load(), 10);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsKept) {
  ThreadPool pool(1);  // one worker => deterministic task order
  EXPECT_TRUE(pool.submit([] { throw std::runtime_error("first"); }));
  EXPECT_TRUE(pool.submit([] { throw std::logic_error("second"); }));
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.submit([] { throw std::runtime_error("boom"); }));
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error slot was cleared; the next wave is clean.
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(pool.submit([&count] { ++count; }));
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, ExceptionDuringShutdownIsDiscarded) {
  // A task that throws while the pool is being torn down must not
  // std::terminate from the destructor.
  {
    ThreadPool pool(1);
    EXPECT_TRUE(pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      throw std::runtime_error("mid-shutdown");
    }));
  }  // destructor: shutdown + join, exception dropped
  SUCCEED();
}

TEST(BoundedBlockingQueueTest, TryPushFailsFastWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_TRUE(q.try_push(3));  // pop freed a slot
}

TEST(BoundedBlockingQueueTest, TryPushForTimesOutThenSucceedsAfterPop) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  EXPECT_FALSE(q.try_push_for(2, std::chrono::milliseconds(5)));
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_TRUE(q.try_push_for(2, std::chrono::milliseconds(5)));
  EXPECT_EQ(q.try_pop(), 2);
}

TEST(BoundedBlockingQueueTest, PushBlocksUntilConsumerFreesSpace) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // must block until the pop below
    pushed.store(true);
  });
  // Let the producer reach the full-queue wait, then drain one item.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedBlockingQueueTest, CloseWakesBlockedProducer) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] {
    EXPECT_FALSE(q.push(2));  // woken by close, item dropped
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  EXPECT_EQ(q.pop(), 1);       // accepted items still drain
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedBlockingQueueTest, ZeroCapacityMeansUnbounded) {
  BlockingQueue<int> q(0);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(q.try_push(i));
  EXPECT_EQ(q.size(), 1000u);
}

TEST(BoundedBlockingQueueTest, ManyProducersRespectCapacityHighWaterMark) {
  BlockingQueue<int> q(4);
  std::atomic<int> produced{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (q.push(i)) produced.fetch_add(1);
      }
    });
  }
  std::atomic<int> consumed{0};
  std::thread consumer([&] {
    while (true) {
      auto item = q.pop();
      if (!item.has_value()) break;
      // The queue never exceeds its bound: size() counts items *after* this
      // pop, so at most capacity could have been present.
      EXPECT_LE(q.size(), 4u);
      consumed.fetch_add(1);
    }
  });
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();
  EXPECT_EQ(consumed.load(), produced.load());
  EXPECT_EQ(produced.load(), 200);
}

}  // namespace
}  // namespace s3
