// Tests for the task-level simulator and its slot-granular schedulers
// (the §II-B related-work baselines and the §VI barrierless shared scan).
#include <gtest/gtest.h>

#include "tasksim/tasksim.h"

namespace s3::tasksim {
namespace {

// Flat task cost: 1 s regardless of sharing (keeps arithmetic exact).
TaskSimParams flat_params(int slots, int pools = 1) {
  TaskSimParams params;
  params.slots = slots;
  params.pools = pools;
  params.map_task_seconds = [](int) { return 1.0; };
  return params;
}

TaskSimJob job(std::uint64_t id, SimTime arrival, std::uint64_t blocks,
               double tail = 0.0, int pool = 0) {
  TaskSimJob j;
  j.id = JobId(id);
  j.arrival = arrival;
  j.total_blocks = blocks;
  j.reduce_tail = tail;
  j.pool = pool;
  return j;
}

TEST(TaskSimTest, SingleJobMakespan) {
  FifoTaskScheduler fifo;
  // 8 tasks on 4 slots at 1 s each: 2 waves.
  const auto result = run_task_sim(flat_params(4), fifo, {job(0, 0.0, 8)});
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(result.value().summary.tet, 2.0);
  EXPECT_EQ(result.value().tasks_run, 8u);
  EXPECT_DOUBLE_EQ(result.value().busy_slot_seconds, 8.0);
}

TEST(TaskSimTest, ReduceTailAppended) {
  FifoTaskScheduler fifo;
  const auto result =
      run_task_sim(flat_params(4), fifo, {job(0, 0.0, 4, 5.0)});
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(result.value().summary.tet, 6.0);  // 1 wave + tail
}

TEST(TaskSimTest, FifoHeadJobOwnsAllSlots) {
  FifoTaskScheduler fifo;
  const auto result = run_task_sim(flat_params(4), fifo,
                                   {job(0, 0.0, 8), job(1, 0.0, 4)});
  ASSERT_TRUE(result.is_ok());
  const auto& jobs = result.value().jobs;
  // Job 0: 2 waves -> completes at 2; job 1 starts when job 0's launches
  // exhaust (t=1 it can grab slots? no: 8 tasks fill 4 slots twice; job 1's
  // tasks launch at t=2... but slots free at 1 with job 0 having 0 left to
  // launch at t=1? Job 0 launched all 8 by t=1 (4 at t=0, 4 at t=1), so job
  // 1 starts at t=2) — completes at 3.
  EXPECT_DOUBLE_EQ(jobs[0].completed, 2.0);
  EXPECT_DOUBLE_EQ(jobs[1].completed, 3.0);
  EXPECT_DOUBLE_EQ(jobs[1].waiting_time().value(), 2.0);
}

TEST(TaskSimTest, FifoBackfillsWhenHeadHasNoMoreTasks) {
  FifoTaskScheduler fifo;
  // Head job has 2 tasks, 4 slots: the other 2 slots immediately serve the
  // next job (paper footnote 4: tasks start as slots free up).
  const auto result = run_task_sim(flat_params(4), fifo,
                                   {job(0, 0.0, 2), job(1, 0.0, 2)});
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(result.value().summary.tet, 1.0);  // all 4 tasks at t=0
}

TEST(TaskSimTest, FairSplitsSlotsEvenly) {
  FairTaskScheduler fair;
  // Two identical jobs, 4 slots: each gets 2 slots, both finish at 4 —
  // §II-B: "since each job is allocated less resources, its execution time
  // will be longer" (4 s vs 2 s alone).
  const auto result = run_task_sim(flat_params(4), fair,
                                   {job(0, 0.0, 8), job(1, 0.0, 8)});
  ASSERT_TRUE(result.is_ok());
  const auto& jobs = result.value().jobs;
  EXPECT_DOUBLE_EQ(jobs[0].completed, 4.0);
  EXPECT_DOUBLE_EQ(jobs[1].completed, 4.0);
  EXPECT_DOUBLE_EQ(jobs[0].waiting_time().value(), 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].waiting_time().value(), 0.0);  // starts immediately
}

TEST(TaskSimTest, FairVsFifoTradeoff) {
  // Same workload under both: fair lowers waiting, stretches execution; the
  // cluster-busy time (total work) is identical — no sharing either way.
  const std::vector<TaskSimJob> jobs = {job(0, 0.0, 40), job(1, 0.0, 40),
                                        job(2, 0.0, 40)};
  FifoTaskScheduler fifo;
  FairTaskScheduler fair;
  const auto r_fifo = run_task_sim(flat_params(8), fifo, jobs);
  const auto r_fair = run_task_sim(flat_params(8), fair, jobs);
  ASSERT_TRUE(r_fifo.is_ok());
  ASSERT_TRUE(r_fair.is_ok());
  EXPECT_DOUBLE_EQ(r_fifo.value().busy_slot_seconds,
                   r_fair.value().busy_slot_seconds);
  EXPECT_LT(r_fair.value().summary.mean_waiting,
            r_fifo.value().summary.mean_waiting);
  // Everyone stretched to the shared finish under fair: max response equal,
  // but the first job is 3x slower than under FIFO.
  EXPECT_GT(r_fair.value().jobs[0].response_time(),
            2.5 * r_fifo.value().jobs[0].response_time());
}

TEST(TaskSimTest, CapacityPoolsIsolate) {
  CapacityTaskScheduler capacity(2);
  TaskSimParams params = flat_params(4, 2);  // slots 0,2 -> pool 0; 1,3 -> 1
  const auto result = run_task_sim(
      params, capacity,
      {job(0, 0.0, 8, 0.0, /*pool=*/0), job(1, 0.0, 8, 0.0, /*pool=*/1)});
  ASSERT_TRUE(result.is_ok());
  const auto& jobs = result.value().jobs;
  // Each pool: 8 tasks on 2 slots = 4 s; neither blocks the other.
  EXPECT_DOUBLE_EQ(jobs[0].completed, 4.0);
  EXPECT_DOUBLE_EQ(jobs[1].completed, 4.0);
}

TEST(TaskSimTest, CapacityBorrowsIdlePools) {
  CapacityTaskScheduler capacity(2);
  TaskSimParams params = flat_params(4, 2);
  // Only pool 0 has work: it borrows pool 1's slots (work conserving).
  const auto result =
      run_task_sim(params, capacity, {job(0, 0.0, 8, 0.0, 0)});
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(result.value().summary.tet, 2.0);  // all 4 slots used
}

TEST(TaskSimTest, SharedScanMergesAlignedJobs) {
  SharedScanTaskScheduler shared(8);
  // Two jobs arriving together over an 8-block file: every task serves both,
  // so the whole workload is 8 merged tasks = 2 waves on 4 slots.
  const auto result = run_task_sim(flat_params(4), shared,
                                   {job(0, 0.0, 8), job(1, 0.0, 8)});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().tasks_run, 8u);
  EXPECT_DOUBLE_EQ(result.value().summary.tet, 2.0);
}

TEST(TaskSimTest, SharedScanLateJoinerWraps) {
  SharedScanTaskScheduler shared(8);
  // Job 1 arrives at t=1 (after the first wave of 4 blocks launched): it
  // shares blocks 4..7, then wraps for 0..3 alone: 4 extra tasks.
  const auto result = run_task_sim(flat_params(4), shared,
                                   {job(0, 0.0, 8), job(1, 1.0, 8)});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().tasks_run, 12u);  // 8 + 4 wrap tasks
  const auto& jobs = result.value().jobs;
  EXPECT_DOUBLE_EQ(jobs[0].completed, 2.0);
  EXPECT_DOUBLE_EQ(jobs[1].completed, 3.0);  // arrival + its own 8 blocks
  EXPECT_DOUBLE_EQ(jobs[1].waiting_time().value(), 0.0);  // no barrier: joins at once
}

TEST(TaskSimTest, SharedScanCheaperThanFair) {
  // Three simultaneous jobs over one file: shared scan runs the file once,
  // fair runs it three times.
  const std::vector<TaskSimJob> jobs = {job(0, 0.0, 40), job(1, 0.0, 40),
                                        job(2, 0.0, 40)};
  SharedScanTaskScheduler shared(40);
  FairTaskScheduler fair;
  TaskSimParams params;
  params.slots = 8;
  params.pools = 1;
  // Sharing n jobs costs 20% extra per extra member — still far below n x.
  params.map_task_seconds = [](int sharers) {
    return 1.0 + 0.2 * (sharers - 1);
  };
  const auto r_shared = run_task_sim(params, shared, jobs);
  const auto r_fair = run_task_sim(params, fair, jobs);
  ASSERT_TRUE(r_shared.is_ok());
  ASSERT_TRUE(r_fair.is_ok());
  EXPECT_LT(r_shared.value().busy_slot_seconds,
            r_fair.value().busy_slot_seconds / 2.0);
  EXPECT_LT(r_shared.value().summary.tet, r_fair.value().summary.tet);
}

TEST(TaskSimTest, ErrorPaths) {
  FifoTaskScheduler fifo;
  EXPECT_FALSE(run_task_sim(flat_params(4), fifo, {}).is_ok());
  EXPECT_FALSE(run_task_sim(flat_params(4), fifo, {job(0, 0.0, 0)}).is_ok());
  auto dup = std::vector<TaskSimJob>{job(0, 0.0, 4), job(0, 1.0, 4)};
  EXPECT_FALSE(run_task_sim(flat_params(4), fifo, dup).is_ok());
  TaskSimParams bad = flat_params(2, 4);  // more pools than slots
  EXPECT_FALSE(run_task_sim(bad, fifo, {job(0, 0.0, 4)}).is_ok());
}

}  // namespace
}  // namespace s3::tasksim
