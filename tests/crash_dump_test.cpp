// Crash-dump pipeline tests: each of the three guarded abort paths
// (S3_CHECK contract failure, lock-rank inversion, stale-view dereference)
// must leave a parseable s3-crash-*.txt naming the job/batch that was in
// flight, and `s3trace postmortem`'s renderer must match its golden output
// for a sample dump covering overwrite and torn-record gaps.
#include "obs/crash_dump.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "common/view_checks.h"
#include "obs/flight_recorder.h"
#include "postmortem.h"

namespace s3::obs {
namespace {

namespace fs = std::filesystem;

// Creates a fresh directory for one death test's dump; the child process
// writes into it, the parent parses what it finds.
fs::path fresh_dump_dir(const std::string& label) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("crash_" + label);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

tools::CrashDump parse_only_dump(const fs::path& dir) {
  std::vector<fs::path> dumps;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("s3-crash-", 0) == 0) {
      dumps.push_back(entry.path());
    }
  }
  EXPECT_EQ(dumps.size(), 1u) << "expected exactly one dump in " << dir;
  if (dumps.empty()) return {};
  std::ifstream in(dumps[0]);
  EXPECT_TRUE(in.is_open());
  return tools::parse_crash_dump(in);
}

// True when any surviving flight record names the witness batch id.
bool names_batch(const tools::CrashDump& dump, const std::string& batch) {
  for (const tools::ThreadRing& ring : dump.rings) {
    for (const tools::FlightEvent& event : ring.events) {
      if (event.batch == batch) return true;
    }
  }
  return false;
}

// The shared child-process setup for the three induced crashes: crash-dump
// sink into the test's directory, flight traffic under a batch correlation.
void arm_crash(const std::string& dir, std::uint64_t batch) {
  set_crash_dump_dir(dir);
  install_crash_handler();
  FlightRecorder::instance().set_enabled(true);
  CorrelationScope corr{JobId(7), BatchId(batch), NodeId(3)};
  for (std::uint64_t i = 0; i < 4; ++i) {
    S3_FLIGHT_MARK("crash_test.tick", i, batch);
  }
}

void die_on_check(const std::string& dir) {
  arm_crash(dir, 42);
  CorrelationScope corr{JobId(7), BatchId(42), NodeId(3)};
  S3_CHECK_MSG(false, "induced contract failure for batch 42");
}

TEST(CrashDumpDeathTest, CheckFailureWritesDumpNamingBatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const fs::path dir = fresh_dump_dir("check");
  EXPECT_DEATH(die_on_check(dir.string()),
               "induced contract failure for batch 42");
  const tools::CrashDump dump = parse_only_dump(dir);
  ASSERT_TRUE(dump.valid) << dump.error;
  EXPECT_TRUE(dump.complete);
  EXPECT_NE(dump.reason.find("induced contract failure"), std::string::npos);
  EXPECT_TRUE(names_batch(dump, "42"));
}

#if S3_LOCK_RANK_CHECKS
void die_on_lockrank(const std::string& dir) {
  arm_crash(dir, 43);
  AnnotatedMutex outer{LockRank::kShuffleBucket};
  AnnotatedMutex inner{LockRank::kEngineMapCollect};
  MutexLock hold_outer(outer);
  MutexLock hold_inner(inner);
}

TEST(CrashDumpDeathTest, LockRankInversionWritesDumpWithHeldRank) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const fs::path dir = fresh_dump_dir("lockrank");
  EXPECT_DEATH(die_on_lockrank(dir.string()), "lock-rank inversion");
  const tools::CrashDump dump = parse_only_dump(dir);
  ASSERT_TRUE(dump.valid) << dump.error;
  EXPECT_NE(dump.reason.find("lock-rank inversion"), std::string::npos);
  EXPECT_TRUE(names_batch(dump, "43"));
  // The dump records the lock the crashing thread still held.
  ASSERT_EQ(dump.held.size(), 1u);
  EXPECT_EQ(dump.held[0].name, "kShuffleBucket");
  EXPECT_EQ(dump.held[0].rank, 45u);
}
#endif  // S3_LOCK_RANK_CHECKS

#if S3_VIEW_CHECKS
void die_on_stale_view(const std::string& dir) {
  arm_crash(dir, 44);
  const std::string bytes = "soon stale";
  ArenaStamp stamp;
  const DebugView view(std::string_view(bytes), stamp.cell(),
                       "crash_dump_test arena");
  stamp.bump();
  const std::string_view stale = view;
  (void)stale;
}

TEST(CrashDumpDeathTest, StaleViewDereferenceWritesDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const fs::path dir = fresh_dump_dir("view");
  EXPECT_DEATH(die_on_stale_view(dir.string()),
               "stale view from crash_dump_test arena");
  const tools::CrashDump dump = parse_only_dump(dir);
  ASSERT_TRUE(dump.valid) << dump.error;
  EXPECT_NE(dump.reason.find("stale view"), std::string::npos);
  EXPECT_TRUE(names_batch(dump, "44"));
}
#endif  // S3_VIEW_CHECKS

TEST(CrashDump, ExplicitDumpParsesAndCarriesMetrics) {
  FlightRecorder::instance().set_enabled(true);
  const fs::path dir = fresh_dump_dir("explicit");
  set_crash_dump_dir(dir.string());
  {
    CorrelationScope corr{JobId(1), BatchId(2), NodeId()};
    S3_FLIGHT_MARK("crash_test.explicit", 9, 9);
  }
  const std::string path = write_crash_dump("unit-test dump, no crash");
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const tools::CrashDump dump = tools::parse_crash_dump(in);
  ASSERT_TRUE(dump.valid) << dump.error;
  EXPECT_TRUE(dump.complete);
  EXPECT_EQ(dump.reason, "unit-test dump, no crash");
  EXPECT_FALSE(dump.metrics_skipped);
  EXPECT_TRUE(names_batch(dump, "2"));
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Postmortem, GoldenSampleRendersExactly) {
  const fs::path data = fs::path(S3_TEST_DATA_DIR);
  std::ifstream in(data / "s3-crash-sample.txt");
  ASSERT_TRUE(in.is_open());
  const tools::CrashDump dump = tools::parse_crash_dump(in);
  ASSERT_TRUE(dump.valid) << dump.error;
  EXPECT_TRUE(dump.metrics_skipped);
  ASSERT_EQ(dump.rings.size(), 2u);
  EXPECT_EQ(dump.rings[1].overwritten, 44u);
  const std::string expected =
      read_file(data / "s3-crash-sample.postmortem.golden");
  EXPECT_EQ(tools::format_postmortem(dump), expected);
}

TEST(Postmortem, TruncatedDumpStillParses) {
  std::istringstream in(
      "# s3-crash-dump v1\n"
      "reason: died mid-dump\n"
      "pid: 1\n"
      "== flight thread=0 head=1 capacity=256 overwritten=0\n"
      "event seq=0 ts_ns=5 kind=mark name=m job=- batch=- node=- a=0 b=0 "
      "detail=\"\"\n");
  const tools::CrashDump dump = tools::parse_crash_dump(in);
  EXPECT_TRUE(dump.valid) << dump.error;
  EXPECT_FALSE(dump.complete);
  ASSERT_EQ(dump.rings.size(), 1u);
  ASSERT_EQ(dump.rings[0].events.size(), 1u);
  const std::string rendered = tools::format_postmortem(dump);
  EXPECT_NE(rendered.find("warning: dump truncated"), std::string::npos);
}

TEST(Postmortem, GarbageIsRejected) {
  std::istringstream in("not a dump\n");
  const tools::CrashDump dump = tools::parse_crash_dump(in);
  EXPECT_FALSE(dump.valid);
  EXPECT_FALSE(dump.error.empty());
}

}  // namespace
}  // namespace s3::obs
