// Death tests: the S3_CHECK invariants that guard scheduler correctness must
// abort loudly rather than let a corrupted experiment run to completion.
#include <gtest/gtest.h>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "dfs/segment.h"
#include "metrics/metrics.h"
#include "sched/job_queue_manager.h"

namespace s3 {
namespace {

using sched::JobQueueManager;

TEST(JqmDeathTest, SecondBatchWhileInFlightAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  JobQueueManager jqm(FileId(0), 8);
  jqm.admit(JobId(0));
  const auto batch = jqm.form_batch(BatchId(0), 4);
  (void)batch;
  EXPECT_DEATH((void)jqm.form_batch(BatchId(1), 4), "batch already in flight");
}

TEST(JqmDeathTest, CompleteWithoutBatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  JobQueueManager jqm(FileId(0), 8);
  jqm.admit(JobId(0));
  EXPECT_DEATH(jqm.complete_batch(), "complete_batch with none in flight");
}

TEST(JqmDeathTest, DoubleAdmitAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  JobQueueManager jqm(FileId(0), 8);
  jqm.admit(JobId(0));
  EXPECT_DEATH(jqm.admit(JobId(0)), "admitted twice");
}

TEST(JqmDeathTest, CorruptedCursorAbortsUnderDebugContracts) {
#if S3_DCHECKS_ENABLED
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  JobQueueManager jqm(FileId(0), 8);
  jqm.admit(JobId(0));
  // Force the circular scan cursor past the end of the file; the Algorithm 1
  // range contract (cursor ∈ [0, file_blocks)) must abort the next batch.
  jqm.corrupt_cursor_for_test(17);
  EXPECT_DEATH((void)jqm.form_batch(BatchId(0), 4),
               "segment cursor 17 out of range");
#else
  GTEST_SKIP() << "debug contracts compiled out (Release without S3_DCHECKS)";
#endif
}

TEST(LockRankDeathTest, InversionAbortsInsteadOfDeadlocking) {
#if S3_LOCK_RANK_CHECKS
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Acquiring down the hierarchy must abort before the mutex blocks: plant a
  // synthetic high-rank frame, then take a guard on a lower-ranked mutex.
  EXPECT_DEATH(
      {
        lock_rank::corrupt_held_rank_for_test(LockRank::kObsJournal);
        AnnotatedMutex low{LockRank::kSchedJobQueue};
        MutexLock lock(low);
      },
      "lock-rank inversion.*kSchedJobQueue.*kObsJournal");
#else
  GTEST_SKIP() << "lock-rank checks compiled out (Release)";
#endif
}

TEST(LockRankDeathTest, SameRankReacquisitionAborts) {
#if S3_LOCK_RANK_CHECKS
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Strict monotonicity: two same-rank locks held together (two shuffle
  // buckets, two arena shards) is also an inversion.
  EXPECT_DEATH(
      {
        AnnotatedMutex first{LockRank::kShuffleBucket};
        AnnotatedMutex second{LockRank::kShuffleBucket};
        MutexLock a(first);
        MutexLock b(second);
      },
      "lock-rank inversion.*kShuffleBucket.*kShuffleBucket");
#else
  GTEST_SKIP() << "lock-rank checks compiled out (Release)";
#endif
}

TEST(SegmentDeathTest, EmptyFileAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  dfs::DfsNamespace ns;
  const FileId file = ns.create_file("empty", ByteSize::kib(1)).value();
  EXPECT_DEATH(dfs::SegmentMap(ns.file(file), 4),
               "cannot segment an empty file");
}

TEST(MetricsDeathTest, DoubleCompletionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  metrics::JobTimeline timeline;
  timeline.on_submitted(JobId(0), 0.0);
  timeline.on_completed(JobId(0), 1.0);
  EXPECT_DEATH(timeline.on_completed(JobId(0), 2.0), "completed twice");
}

TEST(MetricsDeathTest, SummarizeIncompleteAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  metrics::JobTimeline timeline;
  timeline.on_submitted(JobId(0), 0.0);
  EXPECT_DEATH((void)metrics::summarize(timeline),
               "requires all jobs complete");
}

}  // namespace
}  // namespace s3
