// TSan-targeted stress suite. Every test here is written to maximize real
// lock contention on the engine's concurrent structures — oversubscribed
// map slots, concurrent late-arrival admissions into the Job Queue Manager,
// and shuffle publish/consume overlap — so that `ctest` under
// -DS3_SANITIZE=thread (scripts/check.sh --tsan) exercises the interleavings
// the Clang Thread Safety annotations reason about statically. The tests
// also run (fast) in the normal suite as plain correctness checks.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/pinned_thread_pool.h"
#include "core/real_driver.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"
#include "engine/shuffle.h"
#include "obs/trace.h"
#include "sched/job_queue_manager.h"
#include "sched/s3_scheduler.h"
#include "service/submission_service.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/wordcount.h"

namespace s3 {
namespace {

std::map<std::string, std::string> to_map(const engine::JobResult& result) {
  std::map<std::string, std::string> m;
  for (const auto& kv : result.output) m[kv.key] = kv.value;
  return m;
}

// --- ShuffleStore: publish/append/take/unregister overlap ---------------

engine::KVBatch make_run(std::uint64_t seed, std::size_t records) {
  engine::KVBatch batch;
  for (std::size_t i = 0; i < records; ++i) {
    const std::string key = "k" + std::to_string((seed + i * 7) % 17);
    const std::string value = std::to_string(i);
    batch.append(key, value);
  }
  batch.sort_by_key();
  return batch;
}

TEST(TsanStressTest, ShufflePublishConsumeOverlap) {
  // Writers publish runs into per-job buckets while readers concurrently
  // take() from other partitions of the same jobs — the registry shared
  // lock and per-bucket mutexes are all contended at once.
  engine::ShuffleStore shuffle;
  constexpr std::uint32_t kJobs = 4;
  constexpr std::uint32_t kPartitions = 3;
  constexpr int kRunsPerWriter = 25;
  for (std::uint32_t j = 0; j < kJobs; ++j) {
    shuffle.register_job(JobId(j), kPartitions);
  }

  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::thread> threads;
  for (std::uint32_t j = 0; j < kJobs; ++j) {
    threads.emplace_back([&, j] {  // writer: publish one run per partition
      for (int r = 0; r < kRunsPerWriter; ++r) {
        std::vector<engine::KVBatch> runs;
        runs.reserve(kPartitions);
        std::uint64_t records = 0;
        for (std::uint32_t p = 0; p < kPartitions; ++p) {
          runs.push_back(make_run(j * 1000 + r, 8));
          records += runs.back().size();
        }
        shuffle.publish(JobId(j), std::move(runs));
        produced += records;
      }
    });
    threads.emplace_back([&, j] {  // appender: single-partition appends
      for (int r = 0; r < kRunsPerWriter; ++r) {
        engine::KVBatch run = make_run(j * 77 + r, 4);
        produced += run.size();
        shuffle.append(JobId(j), r % kPartitions, std::move(run));
      }
    });
    threads.emplace_back([&, j] {  // reader: drain partitions while writing
      for (int r = 0; r < kRunsPerWriter; ++r) {
        for (std::uint32_t p = 0; p < kPartitions; ++p) {
          for (const auto& run : shuffle.take(JobId(j), p)) {
            consumed += run.size();
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Final drain: everything produced must be taken exactly once.
  for (std::uint32_t j = 0; j < kJobs; ++j) {
    for (std::uint32_t p = 0; p < kPartitions; ++p) {
      for (const auto& run : shuffle.take(JobId(j), p)) consumed += run.size();
    }
    shuffle.unregister_job(JobId(j));
  }
  EXPECT_EQ(produced.load(), consumed.load());
}

TEST(TsanStressTest, ShuffleRegisterUnregisterChurn) {
  // Registry writers (register/unregister of disjoint job ids) churn the
  // exclusive lock while established jobs' appenders hold shared locks.
  engine::ShuffleStore shuffle;
  shuffle.register_job(JobId(1000), 2);
  std::atomic<bool> stop{false};
  std::thread appender([&] {
    std::uint64_t r = 0;
    while (!stop.load()) {
      shuffle.append(JobId(1000), static_cast<std::uint32_t>(r % 2),
                     make_run(r, 4));
      ++r;
    }
  });
  std::vector<std::thread> churners;
  for (std::uint64_t t = 0; t < 4; ++t) {
    churners.emplace_back([&shuffle, t] {
      for (std::uint64_t i = 0; i < 50; ++i) {
        const JobId id(t * 100 + i);
        shuffle.register_job(id, 1);
        shuffle.append(id, 0, make_run(i, 2));
        (void)shuffle.take(id, 0);
        shuffle.unregister_job(id);
      }
    });
  }
  for (auto& t : churners) t.join();
  stop = true;
  appender.join();
  EXPECT_GT(shuffle.pending_records(JobId(1000)), 0u);
}

// --- PinnedThreadPool: stealing vs submit vs shutdown -------------------

TEST(TsanStressTest, PinnedPoolStealSubmitShutdownChurn) {
  // Multiple producers skew work onto two home deques while the other
  // workers steal, waves interleave with wait_idle from a separate thread,
  // and the pool is torn down with work still queued — the full lock surface
  // of the per-worker deques plus the coordination mutex under contention.
  std::atomic<int> executed{0};
  std::atomic<int> accepted{0};
  {
    PinnedThreadPool pool(4);
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&pool, &executed, &accepted, p] {
        for (int i = 0; i < 400; ++i) {
          if (pool.submit_to(static_cast<std::size_t>(p % 2),
                             [&executed] { ++executed; })) {
            ++accepted;
          }
        }
      });
    }
    std::thread waiter([&pool] {
      for (int i = 0; i < 10; ++i) {
        pool.wait_idle();
        std::this_thread::yield();
      }
    });
    for (auto& t : producers) t.join();
    waiter.join();
  }  // destructor drains whatever is still queued
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_EQ(accepted.load(), 3 * 400);
}

// --- JobQueueManager: concurrent late-arrival admissions ----------------

TEST(TsanStressTest, JqmConcurrentLateArrivals) {
  // A driver thread forms/completes waves (Algorithm 1) while admission
  // threads inject late-arriving jobs — the paper's dynamic sub-job
  // adjustment under real concurrency. Every job must still scan exactly
  // file_blocks blocks before being retired.
  constexpr std::uint64_t kBlocks = 12;
  constexpr std::uint64_t kWave = 3;
  constexpr std::uint64_t kJobsPerAdmitter = 25;
  constexpr std::uint64_t kAdmitters = 3;
  sched::JobQueueManager jqm(FileId(0), kBlocks);
  jqm.admit(JobId(0));

  std::atomic<std::uint64_t> admitted{1};
  std::vector<std::thread> admitters;
  for (std::uint64_t a = 0; a < kAdmitters; ++a) {
    admitters.emplace_back([&, a] {
      for (std::uint64_t i = 0; i < kJobsPerAdmitter; ++i) {
        jqm.admit(JobId(1 + a * kJobsPerAdmitter + i),
                  static_cast<int>(i % 3));
        ++admitted;
        std::this_thread::yield();
      }
    });
  }

  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  const std::uint64_t target = 1 + kAdmitters * kJobsPerAdmitter;
  while (completed < target) {
    if (jqm.empty()) {
      std::this_thread::yield();
      continue;
    }
    const sched::Batch batch = jqm.form_batch(BatchId(batches++), kWave);
    EXPECT_GE(batch.members.size(), 1u);
    completed += jqm.complete_batch().size();
  }
  for (auto& t : admitters) t.join();
  EXPECT_EQ(completed, admitted.load());
  EXPECT_TRUE(jqm.empty());
  // Each job needs kBlocks/kWave full waves, so at least that many batches
  // ran even in the maximally-shared schedule.
  EXPECT_GE(batches, kBlocks / kWave);
}

// --- Full engine: mixed schedulers, oversubscribed slots ----------------

struct StressWorld {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(4, 2);
  sched::FileCatalog catalog;
  FileId file;
  static constexpr std::uint64_t kBlocks = 10;

  StressWorld() {
    dfs::PlacementTopology ptopo;
    for (const auto& n : topology.nodes()) {
      ptopo.nodes.push_back({n.id, n.rack});
    }
    dfs::RoundRobinPlacement placement(ptopo);
    workloads::TextCorpusGenerator corpus;
    file = corpus
               .generate_file(ns, store, placement, "stress", kBlocks,
                              ByteSize::kib(4))
               .value();
    catalog.add(file, kBlocks);
  }

  std::vector<core::RealJob> jobs(std::size_t n) const {
    std::vector<core::RealJob> out;
    for (std::uint64_t j = 0; j < n; ++j) {
      core::RealJob job;
      job.spec = workloads::make_wordcount_job(
          JobId(j), file, std::string(1, static_cast<char>('a' + j % 5)),
          /*reduce_tasks=*/3, /*with_combiner=*/(j % 2) == 0);
      job.arrival = 0.05 * static_cast<double>(j);
      out.push_back(std::move(job));
    }
    return out;
  }
};

TEST(TsanStressTest, MixedSchedulersOversubscribedSlots) {
  // 12 map workers over 10 blocks (oversubscribed relative to distinct
  // blocks) and 6 reduce workers over 3-partition jobs: many merged tasks
  // of many jobs hammer the same ShuffleStore at once, under each of the
  // three scheduling schemes; all schemes must agree on every output.
  StressWorld world;
  const std::size_t kJobs = 6;
  std::vector<std::map<std::string, std::string>> reference;
  bool have_reference = false;
  for (const char* scheme : {"fifo", "mrs3", "s3"}) {
    SCOPED_TRACE(scheme);
    std::unique_ptr<sched::Scheduler> scheduler;
    if (scheme[0] == 'f') {
      scheduler = workloads::make_fifo(world.catalog);
    } else if (scheme[0] == 'm') {
      scheduler = workloads::make_mrs3(world.catalog);
    } else {
      scheduler = workloads::make_s3(world.catalog, world.topology,
                                     /*segment_blocks=*/3);
    }
    engine::LocalEngineOptions opts;
    opts.map_workers = 12;
    opts.reduce_workers = 6;
    engine::LocalEngine engine(world.ns, world.store, opts);
    core::RealDriverOptions dopts;
    dopts.time_scale = 1e5;
    dopts.map_slots = 12;
    core::RealDriver driver(world.ns, engine, world.catalog, dopts);
    auto run = driver.run(*scheduler, world.jobs(kJobs));
    ASSERT_TRUE(run.is_ok()) << run.status();
    const auto& result = run.value();
    // The scan ledger must balance: logical service == jobs x blocks.
    EXPECT_EQ(result.scan.blocks_logical, kJobs * StressWorld::kBlocks);
    std::vector<std::map<std::string, std::string>> outputs;
    outputs.reserve(kJobs);
    for (std::uint64_t j = 0; j < kJobs; ++j) {
      outputs.push_back(to_map(result.outputs.at(JobId(j))));
      EXPECT_FALSE(outputs.back().empty());
    }
    if (!have_reference) {
      reference = std::move(outputs);
      have_reference = true;
    } else {
      EXPECT_EQ(outputs, reference);
    }
  }
}

TEST(TsanStressTest, ConcurrentBatchesOverDisjointJobs) {
  // Two threads drive execute_batch concurrently on the same engine with
  // disjoint job sets — the engine's leaf lock, the shuffle registry, and
  // the shared thread pools all see simultaneous waves.
  StressWorld world;
  engine::LocalEngineOptions opts;
  opts.map_workers = 8;
  opts.reduce_workers = 4;
  engine::LocalEngine engine(world.ns, world.store, opts);
  const auto& blocks = world.ns.file(world.file).blocks;

  constexpr std::uint64_t kJobsPerThread = 3;
  for (std::uint64_t j = 0; j < 2 * kJobsPerThread; ++j) {
    ASSERT_TRUE(engine
                    .register_job(workloads::make_wordcount_job(
                        JobId(j), world.file,
                        std::string(1, static_cast<char>('a' + j)), 2))
                    .is_ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (std::uint64_t t = 0; t < 2; ++t) {
    drivers.emplace_back([&, t] {
      for (std::uint64_t j = 0; j < kJobsPerThread; ++j) {
        const JobId id(t * kJobsPerThread + j);
        engine::BatchExec batch;
        batch.id = BatchId(t * kJobsPerThread + j);
        batch.blocks = blocks;
        batch.jobs = {id};
        if (!engine.execute_batch(batch).is_ok()) ++failures;
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every job saw the whole file once and finalizes to a sorted output.
  for (std::uint64_t j = 0; j < 2 * kJobsPerThread; ++j) {
    EXPECT_EQ(engine.counters(JobId(j)).blocks_scanned, StressWorld::kBlocks);
    auto result = engine.finalize_job(JobId(j));
    ASSERT_TRUE(result.is_ok());
    EXPECT_FALSE(result.value().output.empty());
  }
}

TEST(TsanStressTest, TracerRecordDrainToggleRace) {
  // Recorder threads hammer thread-local rings (forcing spills into the
  // global sink) while one thread drains repeatedly and another toggles
  // enabled — the full lock-order surface of obs::Tracer under contention.
  // Spans recorded after the final drain are intentionally discarded by
  // clear(); the assertion is no-crash/no-race plus a sane total.
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  tracer.clear();

  constexpr int kRecorders = 4;
  constexpr int kPerRecorder = 20000;  // several ring spills per thread
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> drained{0};
  std::atomic<std::size_t> iterations{0};
  // The toggler waits until the recorders are halfway done before flipping
  // enabled, so the first half of every recorder's spans is recorded with
  // tracing on regardless of how a one-core scheduler slices the threads —
  // that makes `drained > 0` deterministic, not a scheduling accident.
  constexpr std::size_t kToggleAfter =
      static_cast<std::size_t>(kRecorders) * kPerRecorder / 2;

  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      drained += tracer.drain().size();
      std::this_thread::yield();
    }
  });
  std::thread toggler([&] {
    while (!stop.load(std::memory_order_relaxed) &&
           iterations.load(std::memory_order_relaxed) < kToggleAfter) {
      std::this_thread::yield();
    }
    while (!stop.load(std::memory_order_relaxed)) {
      tracer.set_enabled(false);
      std::this_thread::yield();
      tracer.set_enabled(true);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < kRecorders; ++t) {
    recorders.emplace_back([&] {
      for (int i = 0; i < kPerRecorder; ++i) {
        S3_TRACE_SPAN_NAMED(span, "stress", "tick");
        span.arg("i", static_cast<std::uint64_t>(i));
        iterations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : recorders) t.join();
  stop = true;
  drainer.join();
  toggler.join();
  tracer.set_enabled(false);
  drained += tracer.drain().size();

  // The toggler makes some second-half records no-ops; everything recorded
  // must be drained exactly once, the guaranteed-enabled first half in full,
  // and nothing may be dropped (sink cap is far above this volume).
  EXPECT_LE(drained.load(),
            static_cast<std::size_t>(kRecorders) * kPerRecorder);
  EXPECT_GE(drained.load(), kToggleAfter);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.clear();
}

TEST(TsanStressTest, FlightRingWritersVersusDumper) {
  // Writer threads hammer their per-thread flight rings (marks, journal
  // records, span edges — all three producers) while one thread repeatedly
  // snapshots every ring and another dumps the merged record to a file,
  // exactly what the crash-dump path does while workers are mid-store. The
  // seqlock commit protocol must make this race-free: torn slots are
  // skipped, never surfaced. Assertions are no-race plus sane snapshots.
  auto& recorder = obs::FlightRecorder::instance();
  recorder.set_enabled(true);
  constexpr int kWriters = 4;
  constexpr std::size_t kPerWriter = 3000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      obs::CorrelationScope corr{JobId(static_cast<std::uint64_t>(w)),
                                 BatchId(1), NodeId()};
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        switch (i % 3) {
          case 0:
            S3_FLIGHT_MARK("tsan.flight_mark", i, 0);
            break;
          case 1: {
            obs::JournalEvent event;
            event.type = obs::JournalEventType::kBatchLaunched;
            event.batch = BatchId(1);
            event.detail = "tsan flight stress";
            obs::EventJournal::instance().record(std::move(event));
            break;
          }
          default: {
            S3_TRACE_SPAN_NAMED(span, "tsan", "flight_span");
            break;
          }
        }
      }
    });
  }
  std::thread snapshotter([&recorder, &stop] {
    std::size_t snapshots = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto logs = recorder.snapshot();
      for (const auto& log : logs) {
        // A consistent read: never more surviving records than capacity,
        // and sequence numbers strictly below the published head.
        EXPECT_LE(log.records.size(), obs::FlightRecorder::kRingCapacity);
        for (const auto& rec : log.records) EXPECT_LT(rec.seq, log.head);
      }
      ++snapshots;
    }
    EXPECT_GT(snapshots, 0u);
  });
  std::thread dumper([&recorder, &stop] {
    const std::string path = ::testing::TempDir() + "/tsan_flight_dump.txt";
    while (!stop.load(std::memory_order_acquire)) {
      const int fd =
          ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd < 0) break;
      recorder.dump_to_fd(fd);
      ::close(fd);
    }
    std::remove(path.c_str());
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  dumper.join();
}

// --- Submission service: concurrent front door vs resident driver -------

TEST(TsanStressTest, ServiceSubmittersVersusResidentDriver) {
  // The s3d shape: the resident loop runs batches and polls admitted work
  // while submitter threads hammer submit() with mixed outcomes (admits,
  // token throttles, lane bounces, sheds) and a flapper re-points quotas.
  // Every dispatched job must finish; every decision must be typed.
  StressWorld world;
  service::ServiceOptions options;
  options.global_queue_bound = 12;
  service::SubmissionService service(options);
  constexpr std::uint64_t kTenants = 3;
  for (std::uint64_t t = 0; t < kTenants; ++t) {
    service::TenantQuota quota;
    quota.rate_jobs_per_sec = 50.0;
    quota.burst = 4.0;
    quota.max_queued = 6;
    quota.max_inflight = 2;
    quota.weight = static_cast<double>(1 + t);
    ASSERT_TRUE(service
                    .register_tenant(TenantId(t), "t" + std::to_string(t),
                                     quota)
                    .is_ok());
  }

  engine::LocalEngineOptions eopts;
  eopts.map_workers = 2;
  eopts.reduce_workers = 2;
  engine::LocalEngine engine(world.ns, world.store, eopts);
  sched::S3Options s3_opts;
  s3_opts.blocks_per_segment = 5;
  sched::S3Scheduler scheduler(world.catalog, s3_opts, &world.topology);
  core::RealDriver driver(world.ns, engine, world.catalog,
                          {/*time_scale=*/1e5, /*map_slots=*/2});
  StatusOr<core::RealRunResult> result = Status::internal("not run");
  std::thread resident(
      [&] { result = driver.run_service(scheduler, service); });

  constexpr std::uint64_t kSubmitters = 3;
  constexpr std::uint64_t kJobsPerSubmitter = 8;
  std::atomic<std::uint64_t> typed_decisions{0};
  std::vector<std::thread> submitters;
  for (std::uint64_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (std::uint64_t i = 0; i < kJobsPerSubmitter; ++i) {
        const std::uint64_t id = s * kJobsPerSubmitter + i;
        service::Submission sub;
        sub.tenant = TenantId(id % kTenants);
        sub.spec = workloads::make_wordcount_job(
            JobId(id), world.file,
            std::string(1, static_cast<char>('a' + id % 7)),
            /*reduce_tasks=*/2);
        sub.arrival = 0.05 * static_cast<double>(id);
        sub.priority = static_cast<int>(id % 3);
        for (int attempt = 0; attempt < 3; ++attempt) {
          const auto d = service.submit(sub);
          ++typed_decisions;
          if (d.code != service::AdmitCode::kRetryAfter) break;
          sub.arrival += d.retry_after;  // modeled backoff, no sleep
        }
        std::this_thread::yield();
      }
    });
  }
  std::thread flapper([&] {
    for (int i = 0; i < 6; ++i) {
      service::TenantQuota quota;
      quota.rate_jobs_per_sec = (i % 2) == 0 ? 5.0 : 50.0;
      quota.burst = 2.0;
      quota.max_queued = (i % 2) == 0 ? 2 : 6;
      quota.max_inflight = 2;
      EXPECT_TRUE(service
                      .set_quota(TenantId(static_cast<std::uint64_t>(i) %
                                          kTenants),
                                 quota, 0.1 * i)
                      .is_ok());
      std::this_thread::yield();
    }
  });
  for (auto& t : submitters) t.join();
  flapper.join();
  service.close();
  resident.join();

  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_GE(typed_decisions.load(), kSubmitters * kJobsPerSubmitter);
  const auto counts = service.counts();
  EXPECT_EQ(counts.dispatched, counts.finished);
  EXPECT_EQ(result.value().outputs.size() + result.value().failed.size(),
            counts.dispatched);
  EXPECT_TRUE(service.drained());
}

TEST(TsanStressTest, ServiceSubmitPollFinishChurnWithoutDriver) {
  // Pure service churn: submitters, a poller that dispatches and finishes,
  // and a shedder-heavy global bound, all racing. Checks the internal
  // accounting (queued/inflight/counts) stays coherent without the engine.
  service::ServiceOptions options;
  options.global_queue_bound = 4;
  service::SubmissionService service(options);
  for (std::uint64_t t = 0; t < 2; ++t) {
    service::TenantQuota quota;
    quota.rate_jobs_per_sec = 1000.0;
    quota.burst = 100.0;
    quota.max_queued = 4;
    quota.max_inflight = 3;
    ASSERT_TRUE(service
                    .register_tenant(TenantId(t), "t" + std::to_string(t),
                                     quota)
                    .is_ok());
  }
  std::atomic<bool> done{false};
  std::thread poller([&] {
    std::uint64_t finished = 0;
    while (!done.load(std::memory_order_acquire) || !service.drained()) {
      for (auto& job : service.poll_admitted(1e9)) {
        service.on_job_finished(job.submission.spec.id);
        ++finished;
      }
      std::this_thread::yield();
    }
    EXPECT_GT(finished, 0u);
  });
  std::vector<std::thread> submitters;
  for (std::uint64_t s = 0; s < 3; ++s) {
    submitters.emplace_back([&, s] {
      for (std::uint64_t i = 0; i < 40; ++i) {
        service::Submission sub;
        sub.tenant = TenantId(i % 2);
        sub.spec = workloads::make_wordcount_job(
            JobId(s * 40 + i), FileId(0), "a", 1);
        sub.arrival = 0.01 * static_cast<double>(i);
        sub.priority = static_cast<int>(i % 2);
        (void)service.submit(sub);
        std::this_thread::yield();
      }
    });
  }
  for (auto& t : submitters) t.join();
  done.store(true, std::memory_order_release);
  poller.join();
  const auto counts = service.counts();
  EXPECT_EQ(counts.submitted, 120u);
  EXPECT_EQ(counts.dispatched, counts.finished);
  // Every submission got exactly one terminal classification. Displaced
  // victims were admitted first, so `shed` double-counts them vs the
  // submitted tally; subtract the victim records.
  EXPECT_EQ(counts.admitted + counts.rejected + counts.retry_after +
                counts.shed - service.shed_log().size(),
            counts.submitted);
}

}  // namespace
}  // namespace s3
