// Tests for the assembled S3 scheduler: segment-aligned batching, slot
// checking, dynamic wave sizing, and multi-file rotation.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/topology.h"
#include "obs/journal.h"
#include "sched/s3_scheduler.h"

namespace s3::sched {
namespace {

constexpr ClusterStatus kStatus{40, 40};

FileCatalog catalog_with(std::uint64_t blocks) {
  FileCatalog catalog;
  catalog.add(FileId(0), blocks);
  return catalog;
}

S3Options fixed_options(std::uint64_t segment_blocks) {
  S3Options options;
  options.wave_sizing = WaveSizing::kFixedSegments;
  options.blocks_per_segment = segment_blocks;
  return options;
}

TEST(S3SchedulerTest, SingleJobScansAllSegments) {
  const auto catalog = catalog_with(12);
  S3Scheduler s3(catalog, fixed_options(4));
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);

  std::uint64_t total_blocks = 0;
  int batches = 0;
  while (s3.pending_jobs() > 0) {
    auto batch = s3.next_batch(0.0, kStatus);
    ASSERT_TRUE(batch.has_value());
    total_blocks += batch->members[0].blocks;
    s3.on_batch_complete(batch->id, 0.0);
    ++batches;
  }
  EXPECT_EQ(batches, 3);
  EXPECT_EQ(total_blocks, 12u);
  EXPECT_EQ(s3.batches_launched(), 3u);
}

TEST(S3SchedulerTest, LateJobAlignsAndWraps) {
  const auto catalog = catalog_with(8);
  S3Scheduler s3(catalog, fixed_options(4));
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);

  auto b0 = s3.next_batch(0.0, kStatus);  // [0, 4) for job 0
  ASSERT_TRUE(b0.has_value());
  s3.on_job_arrival({JobId(1), FileId(0), 0}, 1.0);  // joins at segment 1
  s3.on_batch_complete(b0->id, 10.0);

  auto b1 = s3.next_batch(10.0, kStatus);  // [4, 8): both jobs
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->start_block, 4u);
  ASSERT_EQ(b1->members.size(), 2u);
  EXPECT_EQ(b1->completed_jobs(), std::vector<JobId>{JobId(0)});
  s3.on_batch_complete(b1->id, 20.0);

  auto b2 = s3.next_batch(20.0, kStatus);  // wrap: [0, 4) for job 1
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->start_block, 0u);
  ASSERT_EQ(b2->members.size(), 1u);
  EXPECT_EQ(b2->members[0].job, JobId(1));
  EXPECT_TRUE(b2->members[0].completes);
  s3.on_batch_complete(b2->id, 30.0);
  EXPECT_EQ(s3.pending_jobs(), 0u);
}

TEST(S3SchedulerTest, OneBatchInFlight) {
  const auto catalog = catalog_with(8);
  S3Scheduler s3(catalog, fixed_options(4));
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  auto batch = s3.next_batch(0.0, kStatus);
  ASSERT_TRUE(batch.has_value());
  EXPECT_FALSE(s3.next_batch(0.0, kStatus).has_value());
}

TEST(S3SchedulerTest, MultiFileRoundRobin) {
  FileCatalog catalog;
  catalog.add(FileId(0), 8);
  catalog.add(FileId(1), 8);
  S3Scheduler s3(catalog, fixed_options(4));
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  s3.on_job_arrival({JobId(1), FileId(1), 0}, 0.0);

  std::vector<FileId> served;
  while (s3.pending_jobs() > 0) {
    auto batch = s3.next_batch(0.0, kStatus);
    ASSERT_TRUE(batch.has_value());
    served.push_back(batch->file);
    s3.on_batch_complete(batch->id, 0.0);
  }
  ASSERT_EQ(served.size(), 4u);
  // Alternates between the files.
  EXPECT_EQ(served[0], FileId(0));
  EXPECT_EQ(served[1], FileId(1));
  EXPECT_EQ(served[2], FileId(0));
  EXPECT_EQ(served[3], FileId(1));
}

TEST(S3SchedulerTest, DynamicWaveRescalesUnderExclusions) {
  const auto catalog = catalog_with(2560);
  const auto topology = cluster::Topology::paper_cluster();
  S3Options options;
  options.wave_sizing = WaveSizing::kDynamicSlots;
  options.blocks_per_segment = 320;
  S3Scheduler s3(catalog, options, &topology);
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);

  // Healthy cluster: the nominal segment.
  auto batch = s3.next_batch(0.0, ClusterStatus{40, 40});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->num_blocks, 320u);
  s3.on_batch_complete(batch->id, 1.0);

  // Flag 10 of 40 nodes slow (5x the healthy median): the next wave shrinks
  // proportionally, keeping whole task waves on the 30 healthy slots.
  for (std::uint64_t n = 0; n < 40; ++n) {
    cluster::ProgressReport report;
    report.node = NodeId(n);
    report.task_start = 0.0;
    report.report_time = 10.0;
    report.progress = n < 30 ? 1.0 : 0.2;
    s3.on_progress(report, 10.0);
  }
  batch = s3.next_batch(10.0, ClusterStatus{40, 40});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->num_blocks, 240u);  // 320 * 30/40
  EXPECT_EQ(batch->excluded_nodes.size(), 10u);
}

TEST(S3SchedulerTest, SlotCheckingExcludesSlowNodes) {
  const auto catalog = catalog_with(100);
  const auto topology = cluster::Topology::uniform(10, 2);
  S3Options options;
  options.wave_sizing = WaveSizing::kDynamicSlots;
  options.blocks_per_segment = 64;
  S3Scheduler s3(catalog, options, &topology);
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);

  // Nine healthy nodes at ~10 s; node 7 at 50 s.
  for (std::uint64_t n = 0; n < 10; ++n) {
    cluster::ProgressReport report;
    report.node = NodeId(n);
    report.task_start = 0.0;
    report.report_time = 10.0;
    report.progress = n == 7 ? 0.2 : 1.0;
    s3.on_progress(report, 10.0);
  }
  // progress=1.0 clears the healthy nodes; node 7 remains, but needs a
  // median basis — add two healthy still-running comparators.
  for (const std::uint64_t n : {1ull, 2ull}) {
    cluster::ProgressReport healthy;
    healthy.node = NodeId(n);
    healthy.task_start = 0.0;
    healthy.report_time = 10.0;
    healthy.progress = 0.95;
    s3.on_progress(healthy, 10.0);
  }

  const auto excluded = s3.currently_excluded();
  ASSERT_EQ(excluded.size(), 1u);
  EXPECT_EQ(excluded[0], NodeId(7));

  auto batch = s3.next_batch(10.0, ClusterStatus{10, 10});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->num_blocks, 57u);  // 64 * 9/10 usable slots
  ASSERT_EQ(batch->excluded_nodes.size(), 1u);
  EXPECT_EQ(batch->excluded_nodes[0], NodeId(7));
}

TEST(S3SchedulerTest, MembershipCapThroughOptions) {
  const auto catalog = catalog_with(8);
  S3Options options = fixed_options(4);
  options.max_jobs_per_batch = 1;
  S3Scheduler s3(catalog, options);
  s3.on_job_arrival({JobId(0), FileId(0), 2}, 0.0);
  s3.on_job_arrival({JobId(1), FileId(0), 9}, 0.0);
  auto batch = s3.next_batch(0.0, kStatus);
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->members.size(), 1u);
  EXPECT_EQ(batch->members[0].job, JobId(1));  // higher priority
}

TEST(S3SchedulerTest, PendingJobsTracksQueue) {
  const auto catalog = catalog_with(8);
  S3Scheduler s3(catalog, fixed_options(8));
  EXPECT_EQ(s3.pending_jobs(), 0u);
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  s3.on_job_arrival({JobId(1), FileId(0), 0}, 0.0);
  EXPECT_EQ(s3.pending_jobs(), 2u);
  auto batch = s3.next_batch(0.0, kStatus);  // whole file in one segment
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->members.size(), 2u);
  s3.on_batch_complete(batch->id, 1.0);
  EXPECT_EQ(s3.pending_jobs(), 0u);
}

TEST(S3SchedulerTest, QueueIntrospection) {
  const auto catalog = catalog_with(8);
  S3Scheduler s3(catalog, fixed_options(4));
  EXPECT_EQ(s3.queue_for(FileId(0)), nullptr);
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  const JobQueueManager* jqm = s3.queue_for(FileId(0));
  ASSERT_NE(jqm, nullptr);
  EXPECT_EQ(jqm->queued_jobs(), 1u);
  EXPECT_EQ(jqm->file_blocks(), 8u);
}

// ---------------------------------------------------------------------------
// Failure domains: node death and job quarantine feedback into scheduling.

TEST(S3SchedulerFailureTest, ReportedNodeDeathShrinksTheNextWave) {
  const auto catalog = catalog_with(100);
  const auto topology = cluster::Topology::uniform(10, 2);
  S3Options options;
  options.wave_sizing = WaveSizing::kDynamicSlots;
  options.blocks_per_segment = 64;
  S3Scheduler s3(catalog, options, &topology);
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);

  s3.on_node_dead(NodeId(3), 1.0);
  s3.on_node_dead(NodeId(3), 1.5);  // idempotent
  EXPECT_EQ(s3.currently_dead(), std::vector<NodeId>{NodeId(3)});

  // The wave is re-split over the 9 survivors and the dead node is excluded
  // from the batch permanently.
  auto batch = s3.next_batch(2.0, ClusterStatus{10, 10});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->num_blocks, 57u);  // 64 * 9/10 usable slots
  ASSERT_EQ(batch->excluded_nodes.size(), 1u);
  EXPECT_EQ(batch->excluded_nodes[0], NodeId(3));
}

TEST(S3SchedulerFailureTest, HeartbeatTimeoutEscalatesAndJournals) {
  obs::EventJournal::instance().clear();
  obs::EventJournal::instance().set_enabled(true);
  const auto catalog = catalog_with(8);
  S3Options options = fixed_options(4);
  options.suspect_timeout = 5.0;
  options.dead_timeout = 10.0;
  S3Scheduler s3(catalog, options);
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);

  cluster::ProgressReport report;
  report.node = NodeId(2);
  report.task_start = 0.0;
  report.report_time = 0.0;
  report.progress = 0.1;
  s3.on_progress(report, 0.0);

  // 6 s of silence: suspect (wave unaffected — suspect keeps its slots).
  auto batch = s3.next_batch(6.0, kStatus);
  ASSERT_TRUE(batch.has_value());
  EXPECT_TRUE(s3.currently_dead().empty());

  // 12 s: the sweep runs even while a batch is in flight; node 2 dies.
  EXPECT_FALSE(s3.next_batch(12.0, kStatus).has_value());
  EXPECT_EQ(s3.currently_dead(), std::vector<NodeId>{NodeId(2)});

  // The dead node is excluded from every future wave.
  s3.on_batch_complete(batch->id, 13.0);
  batch = s3.next_batch(13.0, kStatus);
  ASSERT_TRUE(batch.has_value());
  EXPECT_NE(std::find(batch->excluded_nodes.begin(),
                      batch->excluded_nodes.end(), NodeId(2)),
            batch->excluded_nodes.end());

  const auto events = obs::EventJournal::instance().snapshot();
  bool suspected = false;
  bool died = false;
  for (const auto& e : events) {
    if (e.type == obs::JournalEventType::kNodeSuspected &&
        e.node == NodeId(2)) {
      suspected = true;
    }
    if (e.type == obs::JournalEventType::kNodeDead && e.node == NodeId(2)) {
      died = true;
      EXPECT_NE(e.detail.find("heartbeat_timeout"), std::string::npos);
    }
  }
  EXPECT_TRUE(suspected);
  EXPECT_TRUE(died);
  obs::EventJournal::instance().set_enabled(false);
  obs::EventJournal::instance().clear();
}

TEST(S3SchedulerFailureTest, FailedJobIsRetiredAndCoMembersContinue) {
  const auto catalog = catalog_with(8);
  S3Scheduler s3(catalog, fixed_options(4));
  s3.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  s3.on_job_arrival({JobId(1), FileId(0), 0}, 0.0);

  auto b0 = s3.next_batch(0.0, kStatus);
  ASSERT_TRUE(b0.has_value());
  ASSERT_EQ(b0->members.size(), 2u);

  // The engine quarantined job 1 mid-batch; an unknown job is a no-op.
  s3.on_job_failed(JobId(1), 1.0);
  s3.on_job_failed(JobId(42), 1.0);
  s3.on_batch_complete(b0->id, 2.0);

  auto b1 = s3.next_batch(2.0, kStatus);
  ASSERT_TRUE(b1.has_value());
  ASSERT_EQ(b1->members.size(), 1u);
  EXPECT_EQ(b1->members[0].job, JobId(0));
  EXPECT_TRUE(b1->members[0].completes);
  s3.on_batch_complete(b1->id, 3.0);
  EXPECT_EQ(s3.pending_jobs(), 0u);
}

}  // namespace
}  // namespace s3::sched
