// Unit tests for src/common: IDs, Status/StatusOr, RNG, byte sizes, strings,
// statistics, flags.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/bounded_deque.h"
#include "common/bytes.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/types.h"

namespace s3 {
namespace {

TEST(StrongIdTest, DefaultIsInvalid) {
  JobId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(JobId(0).valid());
}

TEST(StrongIdTest, EqualityAndOrdering) {
  EXPECT_EQ(JobId(3), JobId(3));
  EXPECT_NE(JobId(3), JobId(4));
  EXPECT_LT(JobId(3), JobId(4));
}

TEST(StrongIdTest, StreamsWithPrefix) {
  std::ostringstream os;
  os << JobId(7) << ' ' << NodeId(2);
  EXPECT_EQ(os.str(), "job-7 node-2");
}

TEST(StrongIdTest, HashableDistinct) {
  std::set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 100; ++i) {
    hashes.insert(std::hash<JobId>{}(JobId(i)));
  }
  EXPECT_GT(hashes.size(), 95u);  // no mass collisions
}

TEST(IdGeneratorTest, Monotonic) {
  IdGenerator<TaskId> gen;
  EXPECT_EQ(gen.next(), TaskId(0));
  EXPECT_EQ(gen.next(), TaskId(1));
  EXPECT_EQ(gen.issued(), 2u);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::not_found("missing thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_NE(s.to_string().find("NOT_FOUND"), std::string::npos);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::internal("boom");
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.is_ok());
  auto p = std::move(v).value();
  EXPECT_EQ(*p, 5);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformU64Bounded) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_u64(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.1);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(7);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(ZipfSamplerTest, RankZeroMostFrequent) {
  ZipfSampler zipf(100, 1.1);
  Rng rng(3);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // Every sampled index is in range and the head dominates.
  EXPECT_GT(counts[0], 20000 / 20);
}

TEST(ByteSizeTest, ConstructorsAndAccessors) {
  EXPECT_EQ(ByteSize::mib(64).count(), 64ull * 1024 * 1024);
  EXPECT_DOUBLE_EQ(ByteSize::gib(2).as_gib(), 2.0);
  EXPECT_DOUBLE_EQ(ByteSize::mib(512).as_mib(), 512.0);
}

TEST(ByteSizeTest, ArithmeticAndComparison) {
  EXPECT_EQ(ByteSize::kib(1) + ByteSize::kib(1), ByteSize::kib(2));
  EXPECT_EQ(ByteSize::kib(4) * 2, ByteSize::kib(8));
  EXPECT_LT(ByteSize::mib(1), ByteSize::gib(1));
}

TEST(ByteSizeTest, HumanFormatting) {
  EXPECT_EQ(ByteSize(512).to_string(), "512 B");
  EXPECT_NE(ByteSize::mib(64).to_string().find("MiB"), std::string::npos);
  EXPECT_NE(ByteSize::gib(3).to_string().find("GiB"), std::string::npos);
}

TEST(StringsTest, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitEmpty) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, JoinAndStartsWith) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(StringsTest, FormatDoubleAndPadding) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_right("abcd", 2), "ab");
}

TEST(StringsTest, FormatDuration) {
  EXPECT_EQ(format_duration(5.25), "5.2s");
  EXPECT_EQ(format_duration(65.0), "1m 5.0s");
  EXPECT_EQ(format_duration(3725.0), "1h 2m 5.0s");
}

TEST(OnlineStatsTest, WelfordMatchesDirect) {
  OnlineStats stats;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 100};
  double sum = 0;
  for (double x : xs) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), var, 1e-9);
  EXPECT_EQ(stats.min(), 1);
  EXPECT_EQ(stats.max(), 100);
}

TEST(OnlineStatsTest, MergeEqualsSinglePass) {
  OnlineStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(SampleSetTest, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleSetTest, EmptyAndSingle) {
  SampleSet s;
  EXPECT_EQ(s.percentile(50), 0.0);
  s.add(7.0);
  EXPECT_EQ(s.percentile(50), 7.0);
  EXPECT_EQ(s.min(), 7.0);
  EXPECT_EQ(s.max(), 7.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[4], 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(FlagsTest, ParsesAllForms) {
  // Note: a bare word after "--flag" binds as its value, so positional
  // arguments must precede boolean switches (or use --flag=true).
  const char* argv[] = {"prog", "positional", "--alpha=1.5", "--name", "test",
                        "--verbose"};
  const Flags flags = Flags::parse(6, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha"), 1.5);
  EXPECT_EQ(flags.get_string("name"), "test");
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_FALSE(flags.get_bool("absent"));
  EXPECT_EQ(flags.get_int("absent", 9), 9);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  EXPECT_EQ(flags.program(), "prog");
}

TEST(FlagsTest, ExplicitBooleanBeforePositional) {
  const char* argv[] = {"prog", "--verbose=true", "positional"};
  const Flags flags = Flags::parse(3, argv);
  EXPECT_TRUE(flags.get_bool("verbose"));
  ASSERT_EQ(flags.positional().size(), 1u);
}

TEST(BoundedDequeTest, PushBackRefusesBeyondCapacity) {
  BoundedDeque<int> d(2);
  EXPECT_TRUE(d.push_back(1));
  EXPECT_TRUE(d.push_back(2));
  EXPECT_TRUE(d.full());
  EXPECT_FALSE(d.push_back(3));  // refused, not silently grown
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.front(), 1);
}

TEST(BoundedDequeTest, PopFreesCapacity) {
  BoundedDeque<int> d(1);
  EXPECT_TRUE(d.push_back(7));
  EXPECT_EQ(d.pop_front(), 7);
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(d.push_back(8));
  EXPECT_EQ(d.pop_back(), 8);
}

TEST(BoundedDequeTest, EraseAtRemovesMiddleElement) {
  BoundedDeque<int> d(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(d.push_back(i));
  d.erase_at(2);
  ASSERT_EQ(d.size(), 3u);
  std::vector<int> got(d.begin(), d.end());
  EXPECT_EQ(got, (std::vector<int>{0, 1, 3}));
  EXPECT_TRUE(d.push_back(9));  // the erased slot is reusable
}

TEST(BoundedDequeTest, ShrinkingCapacityKeepsExistingItems) {
  BoundedDeque<int> d(4);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(d.push_back(i));
  d.set_capacity(2);  // over capacity now: keeps items, refuses new ones
  EXPECT_EQ(d.size(), 3u);
  EXPECT_FALSE(d.push_back(9));
  (void)d.pop_front();
  (void)d.pop_front();
  EXPECT_TRUE(d.push_back(9));
}

}  // namespace
}  // namespace s3
