// Arrival-storm matrix: 24 seeded StormPlans (bursts, tenant floods, quota
// flaps, up to 10x overload) replayed through the SubmissionService and the
// resident driver. Invariants per seed:
//   * the plan itself is a pure function of the seed (replayed bit-for-bit);
//   * every submission gets a typed decision — nothing blocks, nothing
//     throws, the queue bound never overshoots;
//   * every dispatched job completes; shed jobs produce no output;
//   * the admitted survivors' outputs are byte-identical to a plain batch
//     run() of exactly those jobs (shed-then-recover differential oracle).
// check.sh --storm runs this suite plain and under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "chaos/arrival_storm.h"
#include "core/real_driver.h"
#include "sched/s3_scheduler.h"
#include "service/submission_service.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/wordcount.h"

namespace s3 {
namespace {

constexpr std::uint64_t kNumBlocks = 6;

struct World {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(4, 2);
  sched::FileCatalog catalog;
  FileId file;

  World() {
    dfs::PlacementTopology ptopo;
    for (const auto& n : topology.nodes()) {
      ptopo.nodes.push_back({n.id, n.rack});
    }
    dfs::RoundRobinPlacement placement(ptopo);
    workloads::TextCorpusGenerator corpus;
    file = corpus
               .generate_file(ns, store, placement, "text", kNumBlocks,
                              ByteSize::kib(4))
               .value();
    catalog.add(file, kNumBlocks);
  }
};

chaos::StormOptions storm_options(std::uint64_t seed) {
  chaos::StormOptions options;
  options.seed = seed;
  options.tenants = 2 + seed % 3;
  options.jobs = 16;
  options.duration = 6.0;
  // A third of the matrix runs at 10x overload (the acceptance scenario),
  // the rest at gentler factors so the admit path is exercised too.
  options.overload_factor = seed % 3 == 0 ? 10.0 : (seed % 3 == 1 ? 4.0 : 1.5);
  options.quota_flaps = seed % 2 == 0 ? 2 : 0;
  options.flood_every = 5;
  options.flood_size = 2;
  return options;
}

std::string prefix_for(JobId job) {
  return std::string(1, "abcdefghijklmnopqrstuvwxyz"[job.value() % 26]);
}

service::Submission to_submission(const chaos::StormArrival& arrival,
                                  FileId file) {
  service::Submission s;
  s.tenant = arrival.tenant;
  s.spec = workloads::make_wordcount_job(arrival.job, file,
                                         prefix_for(arrival.job),
                                         /*reduce_tasks=*/2);
  s.arrival = arrival.arrival;
  s.priority = arrival.priority;
  s.deadline = arrival.deadline;
  return s;
}

// Replays the storm's submissions (and quota flaps, interleaved by virtual
// time) into `service`, single-threaded so the decision sequence is a pure
// function of the plan. Returns the decision code per arrival.
std::vector<service::AdmitCode> replay_storm(const chaos::StormPlan& plan,
                                             FileId file,
                                             service::SubmissionService& service) {
  std::vector<service::AdmitCode> decisions;
  std::size_t flap = 0;
  for (const auto& arrival : plan.arrivals()) {
    while (flap < plan.flaps().size() &&
           plan.flaps()[flap].at <= arrival.arrival) {
      EXPECT_TRUE(service
                      .set_quota(plan.flaps()[flap].tenant,
                                 plan.flaps()[flap].quota,
                                 plan.flaps()[flap].at)
                      .is_ok());
      ++flap;
    }
    decisions.push_back(service.submit(to_submission(arrival, file)).code);
    EXPECT_LE(service.queued(), std::size_t{8}) << "global bound overshot";
  }
  return decisions;
}

service::ServiceOptions storm_service_options() {
  service::ServiceOptions options;
  options.global_queue_bound = 8;
  return options;
}

void register_tenants(const chaos::StormPlan& plan,
                      service::SubmissionService& service) {
  for (const auto& tenant : plan.tenants()) {
    ASSERT_TRUE(
        service.register_tenant(tenant.id, tenant.name, tenant.quota).is_ok());
  }
}

void run_storm_seed(std::uint64_t seed) {
  SCOPED_TRACE("storm seed " + std::to_string(seed));
  const chaos::StormPlan plan(storm_options(seed));
  const chaos::StormPlan replayed(storm_options(seed));
  ASSERT_EQ(plan.arrivals().size(), replayed.arrivals().size());
  for (std::size_t i = 0; i < plan.arrivals().size(); ++i) {
    ASSERT_EQ(plan.arrivals()[i].arrival, replayed.arrivals()[i].arrival);
    ASSERT_EQ(plan.arrivals()[i].tenant, replayed.arrivals()[i].tenant);
  }

  World world;
  service::SubmissionService service(storm_service_options());
  register_tenants(plan, service);
  const auto decisions = replay_storm(plan, world.file, service);

  // Decision determinism: a second service instance fed the same plan takes
  // exactly the same path (no wall clock, no thread interleaving).
  {
    service::SubmissionService twin(storm_service_options());
    register_tenants(plan, twin);
    EXPECT_EQ(replay_storm(plan, world.file, twin), decisions);
  }

  service.close();
  const auto shed = service.shed_log();
  std::set<JobId> shed_jobs;
  for (const auto& record : shed) shed_jobs.insert(record.job);

  engine::LocalEngineOptions eopts;
  eopts.map_workers = 2;
  eopts.reduce_workers = 2;
  engine::LocalEngine engine(world.ns, world.store, eopts);
  sched::S3Options s3_opts;
  s3_opts.blocks_per_segment = 3;
  sched::S3Scheduler scheduler(world.catalog, s3_opts, &world.topology);
  core::RealDriver driver(world.ns, engine, world.catalog,
                          {/*time_scale=*/1e5, /*map_slots=*/2});
  auto run = driver.run_service(scheduler, service);
  ASSERT_TRUE(run.is_ok()) << run.status();
  const core::RealRunResult& result = run.value();

  const auto counts = service.counts();
  EXPECT_EQ(counts.submitted, plan.arrivals().size());
  EXPECT_EQ(counts.dispatched, counts.finished);
  EXPECT_EQ(result.outputs.size(), counts.dispatched);
  if (storm_options(seed).overload_factor <= 2.0) {
    // Gentle storms must make progress: a front door that sheds a
    // sustainable load is as broken as one that never sheds.
    EXPECT_GT(counts.dispatched, 0u);
  }
  if (storm_options(seed).overload_factor >= 10.0) {
    // The acceptance scenario: 10x overload must actually shed or throttle,
    // deterministically, with zero deadlock (we got here) and zero OOM (the
    // queue bound assertion above).
    EXPECT_GT(counts.retry_after + counts.shed, 0u);
  }
  for (const JobId job : shed_jobs) {
    EXPECT_EQ(result.outputs.count(job), 0u);
  }

  // Differential oracle: plain batch run over the dispatched set.
  std::vector<core::RealJob> survivors;
  for (const auto& arrival : plan.arrivals()) {
    if (result.outputs.count(arrival.job) == 0) continue;
    survivors.push_back(
        {workloads::make_wordcount_job(arrival.job, world.file,
                                       prefix_for(arrival.job), 2),
         arrival.arrival, arrival.priority});
  }
  if (survivors.empty()) return;  // a fully-shed storm is a valid outcome
  World solo_world;
  for (auto& job : survivors) {
    job.spec = workloads::make_wordcount_job(
        job.spec.id, solo_world.file, prefix_for(job.spec.id), 2);
  }
  engine::LocalEngine solo_engine(solo_world.ns, solo_world.store, eopts);
  sched::S3Scheduler solo_scheduler(solo_world.catalog, s3_opts,
                                    &solo_world.topology);
  core::RealDriver solo_driver(solo_world.ns, solo_engine, solo_world.catalog,
                               {/*time_scale=*/1e5, /*map_slots=*/2});
  auto solo = solo_driver.run(solo_scheduler, std::move(survivors));
  ASSERT_TRUE(solo.is_ok()) << solo.status();
  ASSERT_EQ(solo.value().outputs.size(), result.outputs.size());
  for (const auto& [job, output] : solo.value().outputs) {
    const auto it = result.outputs.find(job);
    ASSERT_NE(it, result.outputs.end());
    ASSERT_EQ(it->second.output.size(), output.output.size());
    for (std::size_t i = 0; i < output.output.size(); ++i) {
      ASSERT_EQ(it->second.output[i].key, output.output[i].key);
      ASSERT_EQ(it->second.output[i].value, output.output[i].value);
    }
  }
}

// The 24-seed matrix, split so ctest can run the shards in parallel.
TEST(StormMatrixTest, SeedsOneThroughSix) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) run_storm_seed(seed);
}

TEST(StormMatrixTest, SeedsSevenThroughTwelve) {
  for (std::uint64_t seed = 7; seed <= 12; ++seed) run_storm_seed(seed);
}

TEST(StormMatrixTest, SeedsThirteenThroughEighteen) {
  for (std::uint64_t seed = 13; seed <= 18; ++seed) run_storm_seed(seed);
}

TEST(StormMatrixTest, SeedsNineteenThroughTwentyFour) {
  for (std::uint64_t seed = 19; seed <= 24; ++seed) run_storm_seed(seed);
}

TEST(StormPlanTest, OverloadFactorCompressesTheArrivalWindow) {
  chaos::StormOptions options;
  options.seed = 5;
  options.jobs = 40;
  options.duration = 10.0;
  options.overload_factor = 1.0;
  const chaos::StormPlan calm(options);
  options.overload_factor = 10.0;
  const chaos::StormPlan storm(options);
  EXPECT_LT(storm.horizon(), calm.horizon());
  EXPECT_GE(storm.arrivals().size(), 40u);
}

TEST(StormPlanTest, FloodsShareOneInstantAndOneTenant) {
  chaos::StormOptions options;
  options.seed = 9;
  options.jobs = 30;
  options.flood_every = 4;
  options.flood_size = 3;
  const chaos::StormPlan plan(options);
  // Find at least one same-instant run of 4 submissions from one tenant.
  std::size_t best_run = 1, run = 1;
  for (std::size_t i = 1; i < plan.arrivals().size(); ++i) {
    const auto& prev = plan.arrivals()[i - 1];
    const auto& cur = plan.arrivals()[i];
    run = (cur.arrival == prev.arrival && cur.tenant == prev.tenant) ? run + 1
                                                                     : 1;
    best_run = std::max(best_run, run);
  }
  EXPECT_GE(best_run, 4u);
}

TEST(StormPlanTest, QuotaFlapsAreSortedAndValid) {
  chaos::StormOptions options;
  options.seed = 3;
  options.quota_flaps = 6;
  const chaos::StormPlan plan(options);
  ASSERT_EQ(plan.flaps().size(), 6u);
  for (std::size_t i = 0; i < plan.flaps().size(); ++i) {
    if (i > 0) {
      EXPECT_GE(plan.flaps()[i].at, plan.flaps()[i - 1].at);
    }
    EXPECT_GT(plan.flaps()[i].quota.rate_jobs_per_sec, 0.0);
    EXPECT_GE(plan.flaps()[i].quota.burst, 1.0);
    EXPECT_GE(plan.flaps()[i].quota.max_queued, 1u);
  }
}

}  // namespace
}  // namespace s3
