// Unit tests for the s3lint static-analysis pass: one positive (violating)
// and one negative (clean) case per rule, plus lexer and suppression
// behavior. Sources are synthetic strings run through the same lint_file
// entry point the CLI driver uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "s3lint/decl_index.h"
#include "s3lint/lexer.h"
#include "s3lint/rules.h"

namespace s3lint {
namespace {

std::vector<Violation> lint(const std::string& path, const std::string& src,
                            const DeclIndex& index) {
  return lint_file(path, tokenize(src), index, all_rules());
}

std::vector<Violation> lint(const std::string& path, const std::string& src) {
  DeclIndex empty;
  return lint(path, src, empty);
}

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

// ---------------------------------------------------------------------------
// Lexer

TEST(S3LintLexer, StripsCommentsAndStrings) {
  const TokenizedFile f = tokenize(
      "int x = 1; // cursor % size\n"
      "const char* s = \"std::cout << cursor % n\";\n"
      "/* std::mutex m; */\n");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "cursor") << "comment/string content leaked";
    EXPECT_NE(t.text, "cout");
    EXPECT_NE(t.text, "mutex");
  }
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_FALSE(f.comments[0].own_line);  // trailing comment
  EXPECT_TRUE(f.comments[1].own_line);
}

TEST(S3LintLexer, FoldsPreprocessorDirectives) {
  const TokenizedFile f = tokenize("#define WRAP(x) \\\n  ((x) % size_)\nint y;\n");
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens[0].kind, TokKind::kDirective);
  // The % inside the macro body must not surface as a punct token.
  for (std::size_t i = 1; i < f.tokens.size(); ++i) {
    EXPECT_NE(f.tokens[i].text, "%");
  }
}

TEST(S3LintLexer, RawStringsDoNotLeak) {
  const TokenizedFile f = tokenize("auto s = R\"(cursor % n; std::mutex m;)\";");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "cursor");
    EXPECT_NE(t.text, "mutex");
  }
}

TEST(S3LintLexer, TracksLineNumbers) {
  const TokenizedFile f = tokenize("int a;\nint b;\nint c;\n");
  ASSERT_GE(f.tokens.size(), 9u);
  EXPECT_EQ(f.tokens[0].line, 1);
  EXPECT_EQ(f.tokens[3].line, 2);
  EXPECT_EQ(f.tokens[6].line, 3);
}

// ---------------------------------------------------------------------------
// naked-mutex

TEST(S3LintRules, NakedMutexMemberFlagged) {
  const auto vs = lint("src/foo/widget.h",
                       "#pragma once\n"
                       "#include <mutex>\n"
                       "class Widget {\n"
                       "  std::mutex mu_;\n"
                       "};\n");
  ASSERT_TRUE(has_rule(vs, "naked-mutex"));
  EXPECT_EQ(vs[0].line, 4);
}

TEST(S3LintRules, AnnotatedMutexMemberClean) {
  const auto vs = lint("src/foo/widget.h",
                       "#pragma once\n"
                       "class Widget {\n"
                       "  mutable AnnotatedMutex mu_;\n"
                       "};\n");
  EXPECT_FALSE(has_rule(vs, "naked-mutex"));
}

TEST(S3LintRules, MutexReferenceParameterClean) {
  // A std::mutex& in a method signature is not a stored member.
  const auto vs = lint("src/foo/widget.h",
                       "#pragma once\n"
                       "class Widget {\n"
                       " public:\n"
                       "  void with_lock(std::mutex& m);\n"
                       "};\n");
  EXPECT_FALSE(has_rule(vs, "naked-mutex"));
}

TEST(S3LintRules, ThreadAnnotationsHeaderExempt) {
  const auto vs = lint("src/common/thread_annotations.h",
                       "#pragma once\n"
                       "class AnnotatedMutex {\n"
                       "  std::mutex mu_;\n"
                       "};\n");
  EXPECT_FALSE(has_rule(vs, "naked-mutex"));
}

// ---------------------------------------------------------------------------
// status-discard / status-nodiscard

DeclIndex make_status_index() {
  DeclIndex index;
  index.index_file("src/foo/api.h",
                   tokenize("#pragma once\n"
                            "[[nodiscard]] Status do_work(int n);\n"
                            "Status flush();\n"  // missing [[nodiscard]]
                            "[[nodiscard]] StatusOr<int> parse();\n"
                            "void log_it(int n);\n"));
  return index;
}

TEST(S3LintRules, BareStatusCallFlagged) {
  const auto index = make_status_index();
  const auto vs = lint("src/foo/use.cpp",
                       "void f() {\n"
                       "  do_work(3);\n"
                       "}\n",
                       index);
  ASSERT_TRUE(has_rule(vs, "status-discard"));
  EXPECT_EQ(vs[0].line, 2);
}

TEST(S3LintRules, CheckedStatusCallClean) {
  const auto index = make_status_index();
  const auto vs = lint("src/foo/use.cpp",
                       "void f() {\n"
                       "  Status s = do_work(3);\n"
                       "  if (!do_work(4).is_ok()) return;\n"
                       "  log_it(5);\n"
                       "}\n",
                       index);
  EXPECT_FALSE(has_rule(vs, "status-discard"));
}

TEST(S3LintRules, AmbiguousNameNotFlagged) {
  DeclIndex index;
  index.index_file("src/a.h", tokenize("Status run();\n"));
  index.index_file("src/b.h", tokenize("double run();\n"));
  const auto vs = lint("src/foo/use.cpp", "void f() {\n  run();\n}\n", index);
  EXPECT_FALSE(has_rule(vs, "status-discard"));
}

TEST(S3LintRules, LocalHelperShadowingIndexedNameNotFlagged) {
  const auto index = make_status_index();
  // This file defines its own void flush(); calling it is not a discard.
  const auto vs = lint("src/foo/use.cpp",
                       "void flush();\n"
                       "void f() {\n"
                       "  flush();\n"
                       "}\n",
                       index);
  EXPECT_FALSE(has_rule(vs, "status-discard"));
}

TEST(S3LintRules, StatusDeclWithoutNodiscardFlagged) {
  const auto index = make_status_index();
  const auto vs = lint("src/foo/api.h",
                       "#pragma once\n"
                       "[[nodiscard]] Status do_work(int n);\n"
                       "Status flush();\n"
                       "[[nodiscard]] StatusOr<int> parse();\n"
                       "void log_it(int n);\n",
                       index);
  ASSERT_TRUE(has_rule(vs, "status-nodiscard"));
  int flagged = 0;
  for (const Violation& v : vs) {
    if (v.rule == "status-nodiscard") {
      ++flagged;
      EXPECT_EQ(v.line, 3);  // only flush() lacks the attribute
    }
  }
  EXPECT_EQ(flagged, 1);
}

TEST(S3LintRules, GuardedStatusMemberIsNotAFunctionDecl) {
  // `Status s S3_GUARDED_BY(mu);` is a member declaration with an annotation
  // macro, not a function named S3_GUARDED_BY returning Status.
  DeclIndex index;
  index.index_file("src/foo/state.h",
                   tokenize("#pragma once\n"
                            "struct WaveCtx {\n"
                            "  Status poison_status S3_GUARDED_BY(mu);\n"
                            "};\n"));
  const auto vs = lint("src/foo/state.h",
                       "#pragma once\n"
                       "struct WaveCtx {\n"
                       "  Status poison_status S3_GUARDED_BY(mu);\n"
                       "};\n",
                       index);
  EXPECT_FALSE(has_rule(vs, "status-nodiscard"));
}

// ---------------------------------------------------------------------------
// segment-modulo

TEST(S3LintRules, RawCursorModuloFlagged) {
  const auto vs = lint("src/sched/other.cpp",
                       "void f() {\n"
                       "  cursor_ = (cursor_ + wave) % file_blocks_;\n"
                       "}\n");
  ASSERT_TRUE(has_rule(vs, "segment-modulo"));
  EXPECT_EQ(vs[0].line, 2);
}

TEST(S3LintRules, StartBlockModuloFlagged) {
  const auto vs = lint("tests/foo_test.cpp",
                       "void f() {\n"
                       "  auto x = (b.start_block + i) % n;\n"
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "segment-modulo"));
}

TEST(S3LintRules, UnrelatedModuloClean) {
  const auto vs = lint("src/foo/hash.cpp",
                       "void f() {\n"
                       "  bucket = hash % num_buckets;\n"
                       "  if (i % 2 == 0) return;\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "segment-modulo"));
}

TEST(S3LintRules, SegmentPlannerExemptFromModuloRule) {
  const auto vs = lint("src/sched/segment_planner.h",
                       "#pragma once\n"
                       "inline int f(int cursor, int n) { return cursor % n; }\n");
  EXPECT_FALSE(has_rule(vs, "segment-modulo"));
}

// ---------------------------------------------------------------------------
// view-retention

TEST(S3LintRules, StringViewMemberInBatchConsumerFlagged) {
  const auto vs = lint("src/engine/op.h",
                       "#pragma once\n"
                       "class Op {\n"
                       " public:\n"
                       "  void consume(const KVBatch& batch);\n"
                       " private:\n"
                       "  std::string_view last_key_;\n"
                       "};\n");
  ASSERT_TRUE(has_rule(vs, "view-retention"));
  EXPECT_EQ(vs[0].line, 6);
}

TEST(S3LintRules, StringViewContainerMemberFlagged) {
  const auto vs = lint("src/engine/op.h",
                       "#pragma once\n"
                       "class Op {\n"
                       "  void consume(const KVBatch& batch);\n"
                       "  std::vector<std::string_view> keys_;\n"
                       "};\n");
  EXPECT_TRUE(has_rule(vs, "view-retention"));
}

TEST(S3LintRules, StringMemberInBatchConsumerClean) {
  const auto vs = lint("src/engine/op.h",
                       "#pragma once\n"
                       "class Op {\n"
                       "  void consume(const KVBatch& batch);\n"
                       "  std::string last_key_;\n"
                       "};\n");
  EXPECT_FALSE(has_rule(vs, "view-retention"));
}

TEST(S3LintRules, ViewcheckSuppressionTagSilencesViewRetention) {
  // The lexical rule is the fast path of s3viewcheck's view-outlives-arena
  // model; a site vetted under the deeper analyzer's tag must not be
  // re-flagged here.
  const auto vs = lint("src/engine/op.h",
                       "#pragma once\n"
                       "class Op {\n"
                       "  void consume(const KVBatch& batch);\n"
                       "  // s3viewcheck: disable(view-outlives-arena)\n"
                       "  std::string_view last_key_;\n"
                       "};\n");
  EXPECT_FALSE(has_rule(vs, "view-retention"));
}

TEST(S3LintRules, ViewRetentionMessagePointsAtViewcheck) {
  const auto vs = lint("src/engine/op.h",
                       "#pragma once\n"
                       "class Op {\n"
                       "  void consume(const KVBatch& batch);\n"
                       "  std::string_view last_key_;\n"
                       "};\n");
  ASSERT_TRUE(has_rule(vs, "view-retention"));
  bool forwarded = false;
  for (const auto& v : vs) {
    if (v.rule == "view-retention" &&
        v.message.find("s3viewcheck") != std::string::npos) {
      forwarded = true;
    }
  }
  EXPECT_TRUE(forwarded);
}

TEST(S3LintRules, StringViewParameterOrNonConsumerClean) {
  // A string_view method parameter is fine, and so is a member in a class
  // that never touches KVBatch.
  const auto vs = lint("src/engine/op.h",
                       "#pragma once\n"
                       "class Consumer {\n"
                       "  void consume(const KVBatch& batch);\n"
                       "  std::string_view name() const;\n"
                       "};\n"
                       "class Unrelated {\n"
                       "  std::string_view tag_;\n"
                       "};\n");
  EXPECT_FALSE(has_rule(vs, "view-retention"));
}

// ---------------------------------------------------------------------------
// hygiene rules

TEST(S3LintRules, ThreadDetachFlagged) {
  const auto vs = lint("src/foo/runner.cpp",
                       "void f() {\n"
                       "  std::thread t(work);\n"
                       "  t.detach();\n"
                       "}\n");
  ASSERT_TRUE(has_rule(vs, "thread-detach"));
  for (const Violation& v : vs) {
    if (v.rule == "thread-detach") {
      EXPECT_EQ(v.line, 3);
    }
  }
  // The same fixture also constructs a raw std::thread in src/ — the two
  // rules fire independently.
  EXPECT_TRUE(has_rule(vs, "raw-thread"));
}

TEST(S3LintRules, JoinedThreadClean) {
  const auto vs = lint("src/foo/runner.cpp",
                       "void f() {\n"
                       "  std::thread t(work);\n"
                       "  t.join();\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "thread-detach"));
}

TEST(S3LintRules, RawThreadInSrcFlagged) {
  const auto vs = lint("src/engine/runner.cpp",
                       "void f() {\n"
                       "  std::thread worker([] {});\n"
                       "  worker.join();\n"
                       "}\n");
  ASSERT_TRUE(has_rule(vs, "raw-thread"));
  for (const Violation& v : vs) {
    if (v.rule == "raw-thread") {
      EXPECT_EQ(v.line, 2);
    }
  }
}

TEST(S3LintRules, PthreadCreateInSrcFlagged) {
  const auto vs = lint("src/engine/runner.cpp",
                       "void f() {\n"
                       "  pthread_create(&tid, nullptr, body, nullptr);\n"
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "raw-thread"));
}

TEST(S3LintRules, RawThreadInCommonClean) {
  // src/common/ hosts the pool implementations themselves — the one
  // sanctioned home for raw threads.
  const auto vs = lint("src/common/pinned_thread_pool.cpp",
                       "void f() {\n"
                       "  std::thread worker([] {});\n"
                       "  worker.join();\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "raw-thread"));
}

TEST(S3LintRules, RawThreadOutsideSrcClean) {
  const auto vs = lint("tests/pool_test.cpp",
                       "void f() {\n"
                       "  std::thread worker([] {});\n"
                       "  worker.join();\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "raw-thread"));
}

TEST(S3LintRules, ThisThreadNotFlaggedAsRawThread) {
  const auto vs = lint("src/engine/runner.cpp",
                       "void f() {\n"
                       "  std::this_thread::yield();\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "raw-thread"));
}

TEST(S3LintRules, CoutInSrcFlagged) {
  const auto vs = lint("src/foo/debug.cpp",
                       "void f() {\n"
                       "  std::cout << \"x\";\n"
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "stray-cout"));
}

TEST(S3LintRules, CoutInToolsClean) {
  const auto vs = lint("tools/s3sim.cpp",
                       "void f() {\n"
                       "  std::cout << \"x\";\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "stray-cout"));
}

TEST(S3LintRules, SleepInSrcFlagged) {
  const auto vs = lint("src/foo/poll.cpp",
                       "void f() {\n"
                       "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "sleep-in-src"));
}

TEST(S3LintRules, SleepInTestsClean) {
  const auto vs = lint("tests/foo_test.cpp",
                       "void f() {\n"
                       "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "sleep-in-src"));
}

TEST(S3LintRules, RawClockInSrcFlagged) {
  const auto vs = lint("src/core/driver.cpp",
                       "void f() {\n"
                       "  const auto t0 = std::chrono::steady_clock::now();\n"
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "raw-clock"));
}

TEST(S3LintRules, SystemClockInSrcFlagged) {
  const auto vs = lint("src/engine/runner.cpp",
                       "void f() {\n"
                       "  auto t = std::chrono::system_clock::now();\n"
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "raw-clock"));
}

TEST(S3LintRules, RawClockInObsClean) {
  const auto vs = lint("src/obs/clock.h",
                       "#pragma once\n"
                       "inline auto now() {\n"
                       "  return std::chrono::steady_clock::now();\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "raw-clock"));
}

TEST(S3LintRules, RawClockInCommonClean) {
  const auto vs = lint("src/common/logging.cpp",
                       "void f() {\n"
                       "  auto t = std::chrono::system_clock::now();\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "raw-clock"));
}

TEST(S3LintRules, RawClockOutsideSrcClean) {
  const auto vs = lint("bench/harness.cpp",
                       "void f() {\n"
                       "  auto t = std::chrono::steady_clock::now();\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "raw-clock"));
}

TEST(S3LintRules, MissingPragmaOnceFlagged) {
  const auto vs = lint("src/foo/bare.h", "int f();\n");
  EXPECT_TRUE(has_rule(vs, "pragma-once"));
}

TEST(S3LintRules, PragmaOncePresentClean) {
  const auto vs = lint("src/foo/bare.h", "#pragma once\nint f();\n");
  EXPECT_FALSE(has_rule(vs, "pragma-once"));
  const auto spaced = lint("src/foo/bare.h", "#  pragma   once\nint f();\n");
  EXPECT_FALSE(has_rule(spaced, "pragma-once"));
}

TEST(S3LintRules, PragmaOnceNotRequiredForCpp) {
  const auto vs = lint("src/foo/bare.cpp", "int f() { return 0; }\n");
  EXPECT_FALSE(has_rule(vs, "pragma-once"));
}

// ---------------------------------------------------------------------------
// suppressions

TEST(S3LintSuppressions, TrailingDisableSuppressesLine) {
  const auto vs = lint("src/sched/other.cpp",
                       "void f() {\n"
                       "  cursor_ = cursor_ % n;  // s3lint: disable(segment-modulo)\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "segment-modulo"));
}

TEST(S3LintSuppressions, PrecedingLineDisableSuppressesNext) {
  const auto vs = lint("src/sched/other.cpp",
                       "void f() {\n"
                       "  // s3lint: disable(segment-modulo)\n"
                       "  cursor_ = cursor_ % n;\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "segment-modulo"));
}

// ---------------------------------------------------------------------------
// status-dataloss

TEST(S3LintRules, AnonymousDataLossFlagged) {
  const auto vs = lint("src/dfs/thing.cpp",
                       "Status read() {\n"
                       "  return Status::data_loss(\"payload corrupted\");\n"
                       "}\n");
  ASSERT_TRUE(has_rule(vs, "status-dataloss"));
}

TEST(S3LintRules, DataLossNamingBlockInLiteralClean) {
  const auto vs = lint(
      "src/dfs/thing.cpp",
      "Status read() {\n"
      "  return Status::data_loss(\"block 3: all replicas unusable\");\n"
      "}\n");
  EXPECT_FALSE(has_rule(vs, "status-dataloss"));
}

TEST(S3LintRules, DataLossStreamedBlockIdClean) {
  // The message is assembled out-of-line; the block mention streamed into it
  // just above the call satisfies the rule.
  const auto vs = lint("src/dfs/thing.cpp",
                       "Status read(BlockId block) {\n"
                       "  std::ostringstream os;\n"
                       "  os << \"block \" << block << \": gone\";\n"
                       "  return Status::data_loss(os.str());\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "status-dataloss"));
}

TEST(S3LintRules, DataLossFactoryDeclarationExempt) {
  const auto vs = lint("src/common/status.h",
                       "#pragma once\n"
                       "class Status {\n"
                       "  [[nodiscard]] static Status data_loss(std::string m);\n"
                       "};\n");
  EXPECT_FALSE(has_rule(vs, "status-dataloss"));
}

// ---------------------------------------------------------------------------
// wait-under-lock

TEST(S3LintWaitUnderLock, RawCvWaitInsideGuardScope) {
  const auto vs = lint("src/engine/worker.cpp",
                       "void f() {\n"
                       "  MutexLock lock(mu_);\n"
                       "  cv_.wait(inner);\n"
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "wait-under-lock"));
}

TEST(S3LintWaitUnderLock, GuardWaitIsSanctioned) {
  // lock.wait(cv) releases the guard's lock while parked — the pattern the
  // rule steers people toward must not be flagged.
  const auto vs = lint("src/common/pool.cpp",
                       "void f() {\n"
                       "  MutexLock lock(mu_);\n"
                       "  while (pending_ != 0) lock.wait(idle_cv_);\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "wait-under-lock"));
}

TEST(S3LintWaitUnderLock, PoolSubmitInsideGuardScope) {
  const auto vs = lint("src/engine/driver.cpp",
                       "void f() {\n"
                       "  MutexLock lock(mu_);\n"
                       "  pool_->submit(task);\n"
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "wait-under-lock"));
}

TEST(S3LintWaitUnderLock, SubmitAfterGuardScopeCloses) {
  const auto vs = lint("src/engine/driver.cpp",
                       "void f() {\n"
                       "  {\n"
                       "    MutexLock lock(mu_);\n"
                       "    state_ = 1;\n"
                       "  }\n"
                       "  pool_->submit(task);\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "wait-under-lock"));
}

TEST(S3LintWaitUnderLock, SleepUnderReaderLock) {
  const auto vs = lint("src/dfs/store.cpp",
                       "void f() {\n"
                       "  ReaderMutexLock lock(mu_);\n"
                       "  std::this_thread::sleep_for(d);\n"
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "wait-under-lock"));
}

TEST(S3LintWaitUnderLock, OnlyFlagsSrcTree) {
  const auto vs = lint("tests/pool_test.cpp",
                       "void f() {\n"
                       "  MutexLock lock(mu_);\n"
                       "  pool_->submit(task);\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "wait-under-lock"));
}

TEST(S3LintWaitUnderLock, SuppressionSilences) {
  const auto vs = lint("src/engine/driver.cpp",
                       "void f() {\n"
                       "  MutexLock lock(mu_);\n"
                       "  // s3lint: disable(wait-under-lock)\n"
                       "  pool_->submit(task);\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "wait-under-lock"));
}

// ---------------------------------------------------------------------------
// raw-abort

TEST(S3LintRawAbort, AbortInSrcFlagged) {
  const auto vs = lint("src/engine/runner.cpp",
                       "void f() {\n"
                       "  std::abort();\n"
                       "}\n");
  ASSERT_TRUE(has_rule(vs, "raw-abort"));
  for (const Violation& v : vs) {
    if (v.rule == "raw-abort") {
      EXPECT_EQ(v.line, 2);
    }
  }
}

TEST(S3LintRawAbort, BareAbortAndExitFlagged) {
  const auto vs = lint("src/sched/queue.cpp",
                       "void f() {\n"
                       "  if (bad) abort();\n"
                       "  if (worse) exit(1);\n"
                       "  if (worst) _Exit(2);\n"
                       "}\n");
  int hits = 0;
  for (const Violation& v : vs) {
    if (v.rule == "raw-abort") ++hits;
  }
  EXPECT_EQ(hits, 3);
}

TEST(S3LintRawAbort, CommonIsExempt) {
  // common/ implements fatal_abort itself; the real abort lives there.
  const auto vs = lint("src/common/contracts.cpp",
                       "void fatal_abort(const char* m) {\n"
                       "  std::abort();\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "raw-abort"));
}

TEST(S3LintRawAbort, OutsideSrcClean) {
  const auto vs = lint("tools/s3sim.cpp",
                       "void f() {\n"
                       "  exit(2);\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "raw-abort"));
}

TEST(S3LintRawAbort, MemberAndForeignNamespaceClean) {
  // guard.abort() / txn->exit() / bio::abort() are different functions; only
  // the process-killing C spellings bypass the crash-dump hook.
  const auto vs = lint("src/engine/runner.cpp",
                       "void f() {\n"
                       "  guard.abort();\n"
                       "  txn->exit();\n"
                       "  bio::abort(ctx);\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "raw-abort"));
}

TEST(S3LintRawAbort, AbortIdentifierWithoutCallClean) {
  const auto vs = lint("src/engine/runner.cpp",
                       "void f() {\n"
                       "  const bool abort = true;\n"
                       "  if (abort) stop();\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "raw-abort"));
}

// ---------------------------------------------------------------------------
// Suppressions

TEST(S3LintSuppressions, DisableFileSuppressesWholeFile) {
  const auto vs = lint("src/sched/other.cpp",
                       "// s3lint: disable-file(segment-modulo)\n"
                       "void f() {\n"
                       "  cursor_ = cursor_ % n;\n"
                       "  wave = wave % k;\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "segment-modulo"));
}

TEST(S3LintSuppressions, DisableAllWildcard) {
  const auto vs = lint("src/foo/dbg.cpp",
                       "void f() {\n"
                       "  std::cout << 1;  // s3lint: disable(all)\n"
                       "}\n");
  EXPECT_FALSE(has_rule(vs, "stray-cout"));
}

TEST(S3LintSuppressions, OtherRuleStillReported) {
  // A suppression for one rule must not hide a different rule on that line.
  const auto vs = lint("src/sched/other.cpp",
                       "void f() {\n"
                       "  cursor_ = cursor_ % n;  // s3lint: disable(stray-cout)\n"
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "segment-modulo"));
}

TEST(S3LintSuppressions, UnsuppressedLineStillReported) {
  const auto vs = lint("src/sched/other.cpp",
                       "void f() {\n"
                       "  // s3lint: disable(segment-modulo)\n"
                       "  cursor_ = cursor_ % n;\n"
                       "  wave = wave % k;\n"  // two lines below: not covered
                       "}\n");
  EXPECT_TRUE(has_rule(vs, "segment-modulo"));
}

// ---------------------------------------------------------------------------
// bounded-queue

TEST(S3LintBoundedQueue, FlagsStdQueueContainersInService) {
  const auto vs = lint("src/service/pipeline.cpp",
                       "struct S {\n"
                       "  std::deque<int> backlog;\n"
                       "  std::queue<int> fifo;\n"
                       "};\n");
  ASSERT_TRUE(has_rule(vs, "bounded-queue"));
}

TEST(S3LintBoundedQueue, FlagsDefaultConstructedBlockingQueue) {
  const auto vs = lint("src/service/pipeline.h",
                       "class P {\n"
                       "  BlockingQueue<Submission> inbox_;\n"
                       "};\n");
  EXPECT_TRUE(has_rule(vs, "bounded-queue"));
}

TEST(S3LintBoundedQueue, CapacityConstructedBlockingQueueIsClean) {
  const auto vs = lint("src/service/pipeline.h",
                       "class P {\n"
                       "  BlockingQueue<Submission> inbox_{64};\n"
                       "  BoundedDeque<Submission> lane_;\n"
                       "};\n"
                       "void f(BlockingQueue<int>& q) { q.push(1); }\n");
  EXPECT_FALSE(has_rule(vs, "bounded-queue"));
}

TEST(S3LintBoundedQueue, OtherDirectoriesAreExempt) {
  const auto vs = lint("src/engine/pool.h",
                       "struct E { std::deque<int> tasks; };\n");
  EXPECT_FALSE(has_rule(vs, "bounded-queue"));
}

}  // namespace
}  // namespace s3lint
