// Differential test for the engine's data-path overhaul: the flat-batch path
// (KVBatch + hash combine + sorted-run k-way merge) must produce job output
// byte-identical to the legacy owned-string sort path, for every workload
// family (wordcount, heavy wordcount, TPC-H selection, aggregation) and every
// scheduler (FIFO, MRShare, S3), with matching record-level counters.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/real_driver.h"
#include "workloads/aggregation.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/tpch.h"
#include "workloads/wordcount.h"

namespace s3 {
namespace {

struct World {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(3, 1);
  sched::FileCatalog catalog;
  std::uint64_t num_blocks = 8;
  FileId text_file;
  FileId lineitem_file;

  World() {
    dfs::PlacementTopology ptopo;
    for (const auto& n : topology.nodes()) {
      ptopo.nodes.push_back({n.id, n.rack});
    }
    dfs::RoundRobinPlacement placement(ptopo);
    workloads::TextCorpusGenerator corpus;
    text_file = corpus
                    .generate_file(ns, store, placement, "text", num_blocks,
                                   ByteSize::kib(8))
                    .value();
    workloads::tpch::LineitemGenerator lineitem;
    lineitem_file = lineitem
                        .generate_file(ns, store, placement, "lineitem",
                                       num_blocks, ByteSize::kib(8))
                        .value();
    catalog.add(text_file, num_blocks);
    catalog.add(lineitem_file, num_blocks);
  }
};

std::vector<core::RealJob> make_jobs(const World& world) {
  std::vector<core::RealJob> jobs;
  jobs.push_back({workloads::make_wordcount_job(JobId(0), world.text_file, "t",
                                                3, /*with_combiner=*/true),
                  0.0, 0});
  jobs.push_back({workloads::make_wordcount_job(JobId(1), world.text_file, "a",
                                                2, /*with_combiner=*/false),
                  0.5, 0});
  jobs.push_back(
      {workloads::make_heavy_wordcount_job(JobId(2), world.text_file, 3, 2),
       1.0, 0});
  jobs.push_back(
      {workloads::tpch::make_selection_job(JobId(3), world.lineitem_file, 5, 2),
       0.0, 0});
  jobs.push_back(
      {workloads::make_avg_price_job(JobId(4), world.lineitem_file, 2), 1.5,
       0});
  return jobs;
}

// Runs the full job mix under `scheme` with the given data path; returns
// per-job outputs (already key-sorted by finalize_job).
std::unordered_map<JobId, engine::JobResult> run_mix(
    World& world, const char* scheme, engine::DataPath data_path,
    std::unordered_map<JobId, engine::JobCounters>* counters_out = nullptr) {
  std::unique_ptr<sched::Scheduler> scheduler;
  if (scheme[0] == 'f') {
    scheduler = workloads::make_fifo(world.catalog);
  } else if (scheme[0] == 'm') {
    scheduler = workloads::make_mrs3(world.catalog);
  } else {
    scheduler = workloads::make_s3(world.catalog, world.topology, 4);
  }
  engine::LocalEngineOptions opts;
  opts.map_workers = 3;
  opts.reduce_workers = 2;
  opts.data_path = data_path;
  engine::LocalEngine engine(world.ns, world.store, opts);
  core::RealDriver driver(world.ns, engine, world.catalog,
                          {/*time_scale=*/1e5});
  auto run = driver.run(*scheduler, make_jobs(world));
  EXPECT_TRUE(run.is_ok()) << scheme << ": " << run.status();
  if (counters_out != nullptr) *counters_out = run.value().counters;
  return std::move(run.value().outputs);
}

TEST(DataPathDifferentialTest, FlatBatchMatchesLegacySortByteForByte) {
  for (const char* scheme : {"fifo", "mrs3", "s3"}) {
    SCOPED_TRACE(scheme);
    World world;
    std::unordered_map<JobId, engine::JobCounters> flat_counters;
    std::unordered_map<JobId, engine::JobCounters> legacy_counters;
    const auto flat =
        run_mix(world, scheme, engine::DataPath::kFlatBatch, &flat_counters);
    const auto legacy =
        run_mix(world, scheme, engine::DataPath::kLegacySort, &legacy_counters);
    ASSERT_EQ(flat.size(), legacy.size());
    for (const auto& [job, result] : legacy) {
      SCOPED_TRACE("job " + std::to_string(job.value()));
      const auto it = flat.find(job);
      ASSERT_NE(it, flat.end());
      // finalize_job returns key-sorted output; the records themselves must
      // be byte-identical.
      ASSERT_EQ(it->second.output.size(), result.output.size());
      for (std::size_t i = 0; i < result.output.size(); ++i) {
        EXPECT_EQ(it->second.output[i].key, result.output[i].key);
        EXPECT_EQ(it->second.output[i].value, result.output[i].value);
      }
      // Record-level counters must agree: same emits, same combine
      // shrinkage, same reduce groups/records.
      const auto& fc = flat_counters.at(job);
      const auto& lc = legacy_counters.at(job);
      EXPECT_EQ(fc.map_output_records, lc.map_output_records);
      EXPECT_EQ(fc.map_output_bytes, lc.map_output_bytes);
      EXPECT_EQ(fc.combine_output_records, lc.combine_output_records);
      EXPECT_EQ(fc.reduce_output_records, lc.reduce_output_records);
      EXPECT_EQ(fc.reduce_output_bytes, lc.reduce_output_bytes);
    }
  }
}

// The same differential, through the engine's batch API directly (no
// scheduler): multi-batch sub-job execution with incremental merging, which
// exercises re_reduce over partial outputs from both data paths.
TEST(DataPathDifferentialTest, SubJobIncrementalMergeMatches) {
  World world;
  const auto& blocks = world.ns.file(world.text_file).blocks;
  std::unordered_map<int, engine::JobResult> results;
  for (const bool legacy : {false, true}) {
    engine::LocalEngineOptions opts;
    opts.map_workers = 3;
    opts.reduce_workers = 2;
    opts.incremental_merge = true;
    opts.data_path = legacy ? engine::DataPath::kLegacySort
                            : engine::DataPath::kFlatBatch;
    engine::LocalEngine engine(world.ns, world.store, opts);
    ASSERT_TRUE(engine
                    .register_job(workloads::make_wordcount_job(
                        JobId(0), world.text_file, "", 3))
                    .is_ok());
    // Two-block segments, executed as consecutive sub-job batches.
    for (std::size_t i = 0; i < blocks.size(); i += 2) {
      std::vector<BlockId> segment(blocks.begin() + i,
                                   blocks.begin() + i + 2);
      ASSERT_TRUE(engine
                      .execute_batch({BatchId(i / 2), segment, {JobId(0)}})
                      .is_ok());
    }
    auto result = engine.finalize_job(JobId(0));
    ASSERT_TRUE(result.is_ok());
    results[legacy ? 1 : 0] = std::move(result).value();
  }
  ASSERT_EQ(results[0].output.size(), results[1].output.size());
  for (std::size_t i = 0; i < results[0].output.size(); ++i) {
    EXPECT_EQ(results[0].output[i].key, results[1].output[i].key);
    EXPECT_EQ(results[0].output[i].value, results[1].output[i].value);
  }
}

}  // namespace
}  // namespace s3
