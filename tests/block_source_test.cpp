// Tests for the BlockSource abstraction: stored vs generated payloads, and
// engine equivalence between the two.
#include <gtest/gtest.h>

#include "dfs/block_source.h"
#include "engine/local_engine.h"
#include "workloads/text_corpus.h"
#include "workloads/wordcount.h"

namespace s3::dfs {
namespace {

TEST(StoredBlocksTest, DelegatesToStore) {
  BlockStore store;
  ASSERT_TRUE(store.put(BlockId(1), "payload").is_ok());
  StoredBlocks source(store);
  auto payload = source.fetch(BlockId(1));
  ASSERT_TRUE(payload.is_ok());
  EXPECT_EQ(*payload.value(), "payload");
  EXPECT_FALSE(source.fetch(BlockId(2)).is_ok());
}

class GeneratedSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = ns_.create_file("virtual", ByteSize::kib(4)).value();
    for (int b = 0; b < 6; ++b) {
      blocks_.push_back(ns_.append_block(file_, ByteSize::kib(4)).value());
    }
    other_file_ = ns_.create_file("other", ByteSize::kib(4)).value();
    other_block_ = ns_.append_block(other_file_, ByteSize::kib(4)).value();
  }

  DfsNamespace ns_;
  FileId file_;
  FileId other_file_;
  std::vector<BlockId> blocks_;
  BlockId other_block_;
};

TEST_F(GeneratedSourceTest, GeneratesByIndexDeterministically) {
  int calls = 0;
  GeneratedBlockSource source(ns_, file_, [&](std::uint64_t index) {
    ++calls;
    return "block-" + std::to_string(index);
  });
  EXPECT_EQ(*source.fetch(blocks_[0]).value(), "block-0");
  EXPECT_EQ(*source.fetch(blocks_[5]).value(), "block-5");
  EXPECT_EQ(*source.fetch(blocks_[0]).value(), "block-0");  // regenerated
  EXPECT_EQ(calls, 3);  // no caching: each fetch generates
}

TEST_F(GeneratedSourceTest, RejectsForeignBlocks) {
  GeneratedBlockSource source(ns_, file_, [](std::uint64_t) {
    return std::string("x");
  });
  EXPECT_EQ(source.fetch(other_block_).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(source.fetch(BlockId(999)).status().code(), StatusCode::kNotFound);
}

TEST_F(GeneratedSourceTest, EngineResultsMatchMaterializedStore) {
  // The same corpus served generated vs materialized must produce identical
  // wordcount results through the real engine.
  workloads::TextCorpusGenerator corpus;
  const ByteSize block_size = ByteSize::kib(4);
  GeneratedBlockSource generated(ns_, file_,
                                 [&corpus, block_size](std::uint64_t index) {
                                   return corpus.generate_block(index,
                                                                block_size);
                                 });
  BlockStore store;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    ASSERT_TRUE(store.put(blocks_[b], corpus.generate_block(b, block_size))
                    .is_ok());
  }

  const auto run = [&](const BlockSource& source) {
    engine::LocalEngineOptions opts;
    opts.map_workers = 2;
    opts.reduce_workers = 1;
    engine::LocalEngine engine(ns_, source, opts);
    EXPECT_TRUE(engine
                    .register_job(workloads::make_wordcount_job(
                        JobId(0), file_, "a", 2))
                    .is_ok());
    engine::BatchExec batch{BatchId(0), blocks_, {JobId(0)}};
    EXPECT_TRUE(engine.execute_batch(batch).is_ok());
    return engine.finalize_job(JobId(0)).value().output;
  };

  StoredBlocks stored(store);
  EXPECT_EQ(run(generated), run(stored));
}

}  // namespace
}  // namespace s3::dfs
