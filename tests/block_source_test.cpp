// Tests for the BlockSource abstraction: stored vs generated payloads, and
// engine equivalence between the two.
#include <gtest/gtest.h>

#include "dfs/block_source.h"
#include "dfs/failover.h"
#include "engine/local_engine.h"
#include "workloads/text_corpus.h"
#include "workloads/wordcount.h"

namespace s3::dfs {
namespace {

TEST(StoredBlocksTest, DelegatesToStore) {
  BlockStore store;
  ASSERT_TRUE(store.put(BlockId(1), "payload").is_ok());
  StoredBlocks source(store);
  auto payload = source.fetch(BlockId(1));
  ASSERT_TRUE(payload.is_ok());
  EXPECT_EQ(*payload.value(), "payload");
  EXPECT_FALSE(source.fetch(BlockId(2)).is_ok());
}

class GeneratedSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = ns_.create_file("virtual", ByteSize::kib(4)).value();
    for (int b = 0; b < 6; ++b) {
      blocks_.push_back(ns_.append_block(file_, ByteSize::kib(4)).value());
    }
    other_file_ = ns_.create_file("other", ByteSize::kib(4)).value();
    other_block_ = ns_.append_block(other_file_, ByteSize::kib(4)).value();
  }

  DfsNamespace ns_;
  FileId file_;
  FileId other_file_;
  std::vector<BlockId> blocks_;
  BlockId other_block_;
};

TEST_F(GeneratedSourceTest, GeneratesByIndexDeterministically) {
  int calls = 0;
  GeneratedBlockSource source(ns_, file_, [&](std::uint64_t index) {
    ++calls;
    return "block-" + std::to_string(index);
  });
  EXPECT_EQ(*source.fetch(blocks_[0]).value(), "block-0");
  EXPECT_EQ(*source.fetch(blocks_[5]).value(), "block-5");
  EXPECT_EQ(*source.fetch(blocks_[0]).value(), "block-0");  // regenerated
  EXPECT_EQ(calls, 3);  // no caching: each fetch generates
}

TEST_F(GeneratedSourceTest, RejectsForeignBlocks) {
  GeneratedBlockSource source(ns_, file_, [](std::uint64_t) {
    return std::string("x");
  });
  EXPECT_EQ(source.fetch(other_block_).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(source.fetch(BlockId(999)).status().code(), StatusCode::kNotFound);
}

TEST_F(GeneratedSourceTest, EngineResultsMatchMaterializedStore) {
  // The same corpus served generated vs materialized must produce identical
  // wordcount results through the real engine.
  workloads::TextCorpusGenerator corpus;
  const ByteSize block_size = ByteSize::kib(4);
  GeneratedBlockSource generated(ns_, file_,
                                 [&corpus, block_size](std::uint64_t index) {
                                   return corpus.generate_block(index,
                                                                block_size);
                                 });
  BlockStore store;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    ASSERT_TRUE(store.put(blocks_[b], corpus.generate_block(b, block_size))
                    .is_ok());
  }

  const auto run = [&](const BlockSource& source) {
    engine::LocalEngineOptions opts;
    opts.map_workers = 2;
    opts.reduce_workers = 1;
    engine::LocalEngine engine(ns_, source, opts);
    EXPECT_TRUE(engine
                    .register_job(workloads::make_wordcount_job(
                        JobId(0), file_, "a", 2))
                    .is_ok());
    engine::BatchExec batch{BatchId(0), blocks_, {JobId(0)}};
    EXPECT_TRUE(engine.execute_batch(batch).is_ok());
    return engine.finalize_job(JobId(0)).value().output;
  };

  StoredBlocks stored(store);
  EXPECT_EQ(run(generated), run(stored));
}

// ---------------------------------------------------------------------------
// FailoverBlockSource: the typed recovery chain (DESIGN.md §12) — dead
// primary -> failover, corrupt replica -> skip, every replica unusable ->
// kDataLoss naming the block.

class FailoverSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = ns_.create_file("replicated", ByteSize::kib(4)).value();
    for (int b = 0; b < 2; ++b) {
      const BlockId id = ns_.append_block(file_, ByteSize::kib(4)).value();
      blocks_.push_back(id);
      ASSERT_TRUE(store_.put(id, "payload-" + std::to_string(b)).is_ok());
      ASSERT_TRUE(
          ns_.set_replicas(id, {NodeId(0), NodeId(1), NodeId(2)}).is_ok());
    }
    // A block with no replica metadata (replication 0 in tests).
    bare_file_ = ns_.create_file("bare", ByteSize::kib(4)).value();
    bare_block_ = ns_.append_block(bare_file_, ByteSize::kib(4)).value();
    ASSERT_TRUE(store_.put(bare_block_, "bare").is_ok());
  }

  DfsNamespace ns_;
  BlockStore store_;
  ReplicaHealth health_;
  FileId file_;
  FileId bare_file_;
  std::vector<BlockId> blocks_;
  BlockId bare_block_;
};

TEST_F(FailoverSourceTest, DeadPrimaryFailsOverToNextReplica) {
  StoredBlocks stored(store_);
  FailoverBlockSource source(ns_, stored, health_);
  EXPECT_TRUE(health_.mark_node_dead(NodeId(0)));
  EXPECT_FALSE(health_.mark_node_dead(NodeId(0)));  // idempotent

  auto payload = source.fetch(blocks_[0]);
  ASSERT_TRUE(payload.is_ok());
  EXPECT_EQ(*payload.value(), "payload-0");
  EXPECT_EQ(source.failovers(), 1u);
}

TEST_F(FailoverSourceTest, CorruptReplicaIsSkippedLikeADeadOne) {
  StoredBlocks stored(store_);
  FailoverBlockSource source(ns_, stored, health_);
  health_.mark_node_dead(NodeId(0));
  health_.mark_replica_corrupt(blocks_[0], NodeId(1));

  // Block 0 must walk past both unusable replicas to node 2...
  auto payload = source.fetch(blocks_[0]);
  ASSERT_TRUE(payload.is_ok());
  EXPECT_EQ(*payload.value(), "payload-0");
  EXPECT_EQ(source.failovers(), 2u);

  // ...while block 1 (same dead primary, but its node-1 replica is fine)
  // skips only one.
  ASSERT_TRUE(source.fetch(blocks_[1]).is_ok());
  EXPECT_EQ(source.failovers(), 3u);
}

TEST_F(FailoverSourceTest, AllReplicasUnusableIsDataLossNamingTheBlock) {
  StoredBlocks stored(store_);
  FailoverBlockSource source(ns_, stored, health_);
  health_.mark_node_dead(NodeId(0));
  health_.mark_node_dead(NodeId(1));
  health_.mark_replica_corrupt(blocks_[0], NodeId(2));

  const auto got = source.fetch(blocks_[0]);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  const std::string& message = got.status().message();
  EXPECT_NE(message.find("block-" + std::to_string(blocks_[0].value())),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("all 3 replicas unusable (2 on dead nodes, 1 "
                         "corrupt)"),
            std::string::npos)
      << message;

  // Block 1 still has a clean replica on node 2.
  EXPECT_TRUE(source.fetch(blocks_[1]).is_ok());
}

TEST_F(FailoverSourceTest, NoReplicaMetadataServesDirectly) {
  StoredBlocks stored(store_);
  FailoverBlockSource source(ns_, stored, health_);
  health_.mark_node_dead(NodeId(0));  // irrelevant to a replica-less block

  auto payload = source.fetch(bare_block_);
  ASSERT_TRUE(payload.is_ok());
  EXPECT_EQ(*payload.value(), "bare");
  EXPECT_EQ(source.failovers(), 0u);
}

TEST_F(FailoverSourceTest, PhysicalCorruptionSurfacesThroughFailover) {
  // A CRC mismatch affects every replica (payloads live once in the store),
  // so failover cannot mask it: the store's kDataLoss passes through.
  StoredBlocks stored(store_);
  FailoverBlockSource source(ns_, stored, health_);
  ASSERT_TRUE(store_.corrupt_payload_for_test(blocks_[0]).is_ok());

  const auto got = source.fetch(blocks_[0]);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace s3::dfs
