// Differential fuzzing: randomized corpora, job mixes, arrival schedules and
// segment sizes; every scheduler must produce byte-identical outputs for
// every job, and the scan ledger must always balance (logical scans == jobs
// x blocks).
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/real_driver.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/wordcount.h"

namespace s3 {
namespace {

struct FuzzWorld {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(3, 1);
  sched::FileCatalog catalog;
  FileId file;
  std::uint64_t num_blocks = 0;
  std::vector<core::RealJob> jobs;
};

std::map<std::string, std::string> to_map(const engine::JobResult& result) {
  std::map<std::string, std::string> m;
  for (const auto& kv : result.output) m[kv.key] = kv.value;
  return m;
}

std::unique_ptr<FuzzWorld> make_world(Rng& rng) {
  auto world_ptr = std::make_unique<FuzzWorld>();
  FuzzWorld& world = *world_ptr;
  world.num_blocks = 4 + rng.uniform_u64(10);
  const ByteSize block_size =
      ByteSize::kib(2 + rng.uniform_u64(6));

  dfs::PlacementTopology ptopo;
  for (const auto& n : world.topology.nodes()) {
    ptopo.nodes.push_back({n.id, n.rack});
  }
  dfs::RoundRobinPlacement placement(ptopo);
  workloads::TextCorpusOptions copts;
  copts.seed = rng.next();
  workloads::TextCorpusGenerator corpus(copts);
  world.file = corpus
                   .generate_file(world.ns, world.store, placement, "fuzz",
                                  world.num_blocks, block_size)
                   .value();
  world.catalog.add(world.file, world.num_blocks);

  const std::size_t num_jobs = 2 + rng.uniform_u64(3);
  for (std::uint64_t j = 0; j < num_jobs; ++j) {
    const std::string prefix(1, static_cast<char>('a' + rng.uniform_u64(6)));
    core::RealJob job;
    job.spec = workloads::make_wordcount_job(
        JobId(j), world.file, prefix,
        static_cast<std::uint32_t>(1 + rng.uniform_u64(4)),
        /*with_combiner=*/rng.bernoulli(0.5));
    job.arrival = rng.uniform(0.0, 3.0);
    job.priority = static_cast<int>(rng.uniform_u64(3));
    world.jobs.push_back(std::move(job));
  }
  return world_ptr;
}

TEST(DifferentialFuzzTest, AllSchedulersAgreeOnRandomWorkloads) {
  Rng rng(20260704);
  for (int trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto world_ptr = make_world(rng);
    FuzzWorld& world = *world_ptr;
    const std::uint64_t segment = 1 + rng.uniform_u64(world.num_blocks);

    std::vector<std::map<std::string, std::string>> reference;
    bool have_reference = false;
    for (const char* scheme : {"fifo", "mrs3", "s3"}) {
      std::unique_ptr<sched::Scheduler> scheduler;
      if (scheme[0] == 'f') {
        scheduler = workloads::make_fifo(world.catalog);
      } else if (scheme[0] == 'm') {
        scheduler = workloads::make_mrs3(world.catalog);
      } else {
        scheduler = workloads::make_s3(world.catalog, world.topology, segment);
      }
      engine::LocalEngineOptions opts;
      opts.map_workers = 3;
      opts.reduce_workers = 2;
      engine::LocalEngine engine(world.ns, world.store, opts);
      core::RealDriver driver(world.ns, engine, world.catalog,
                              {/*time_scale=*/1e5});
      auto run = driver.run(*scheduler, world.jobs);
      ASSERT_TRUE(run.is_ok()) << scheme << ": " << run.status();
      const auto& result = run.value();

      // The scan ledger must balance exactly.
      EXPECT_EQ(result.scan.blocks_logical,
                world.jobs.size() * world.num_blocks)
          << scheme;
      EXPECT_GE(result.scan.blocks_logical, result.scan.blocks_physical);

      std::vector<std::map<std::string, std::string>> outputs;
      for (std::uint64_t j = 0; j < world.jobs.size(); ++j) {
        outputs.push_back(to_map(result.outputs.at(JobId(j))));
      }
      if (!have_reference) {
        reference = std::move(outputs);
        have_reference = true;
      } else {
        for (std::size_t j = 0; j < reference.size(); ++j) {
          EXPECT_EQ(outputs[j], reference[j])
              << scheme << " diverged on job " << j;
        }
      }
    }
  }
}

}  // namespace
}  // namespace s3
