// Flight recorder unit tests: ring mechanics (sequencing, wrap/overwrite
// accounting), correlation propagation and restoration, the journal and span
// bridges, and the dump_to_fd text format round-tripping through the
// postmortem parser the tools share.
#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "postmortem.h"

namespace s3::obs {
namespace {

// The recorder's rings are append-only and per-thread, so tests cannot
// clear them; instead each test remembers the calling thread's current
// position and asserts on records written after it.
std::vector<FlightRecorder::RecordCopy> records_after(std::uint64_t seq_from,
                                                      const char* name) {
  std::vector<FlightRecorder::RecordCopy> out;
  for (const FlightRecorder::ThreadLog& log : FlightRecorder::instance()
           .snapshot()) {
    for (const FlightRecorder::RecordCopy& rec : log.records) {
      if (rec.seq < seq_from) continue;
      if (rec.name == nullptr || std::string(rec.name) != name) continue;
      out.push_back(rec);
    }
  }
  return out;
}

std::uint64_t max_head() {
  std::uint64_t head = 0;
  for (const FlightRecorder::ThreadLog& log : FlightRecorder::instance()
           .snapshot()) {
    head = std::max(head, log.head);
  }
  return head;
}

TEST(FlightRecorder, MarkCarriesAmbientCorrelation) {
  auto& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  const std::uint64_t start = max_head();
  {
    CorrelationScope corr(JobId(11), BatchId(22), NodeId(33));
    S3_FLIGHT_MARK("test.correlated_mark", 5, 6);
  }
  S3_FLIGHT_MARK("test.uncorrelated_mark", 7, 8);

  const auto correlated = records_after(start, "test.correlated_mark");
  ASSERT_EQ(correlated.size(), 1u);
  EXPECT_EQ(correlated[0].kind, FlightKind::kMark);
  EXPECT_EQ(correlated[0].job, 11u);
  EXPECT_EQ(correlated[0].batch, 22u);
  EXPECT_EQ(correlated[0].node, 33u);
  EXPECT_EQ(correlated[0].a, 5u);
  EXPECT_EQ(correlated[0].b, 6u);

  // The scope restored on exit: the second mark is unattributed again.
  const auto uncorrelated = records_after(start, "test.uncorrelated_mark");
  ASSERT_EQ(uncorrelated.size(), 1u);
  EXPECT_EQ(uncorrelated[0].job, StrongId<JobTag>::kInvalid);
  EXPECT_EQ(uncorrelated[0].batch, StrongId<BatchTag>::kInvalid);
}

TEST(FlightRecorder, NestedScopesOverlayAndInherit) {
  CorrelationScope outer(JobId(1), BatchId(2), NodeId());
  {
    // Inner scope overrides the batch, inherits the job, adds a node.
    CorrelationScope inner(JobId(), BatchId(9), NodeId(4));
    const Correlation c = current_correlation();
    EXPECT_EQ(c.job, 1u);
    EXPECT_EQ(c.batch, 9u);
    EXPECT_EQ(c.node, 4u);
  }
  const Correlation c = current_correlation();
  EXPECT_EQ(c.job, 1u);
  EXPECT_EQ(c.batch, 2u);
  EXPECT_EQ(c.node, StrongId<NodeTag>::kInvalid);
}

TEST(FlightRecorder, JournalEventsRecordedEvenWhenJournalDisabled) {
  auto& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  auto& journal = EventJournal::instance();
  journal.set_enabled(false);
  EXPECT_TRUE(journal.observed());  // flight recorder keeps producers live

  const std::uint64_t start = max_head();
  JournalEvent event;
  event.type = JournalEventType::kBatchLaunched;
  event.job = JobId(3);
  event.batch = BatchId(4);
  event.cursor = 17;
  event.wave = 8;
  event.detail = "flight-journal-bridge";
  journal.record(std::move(event));

  bool found = false;
  for (const FlightRecorder::ThreadLog& log : recorder.snapshot()) {
    for (const FlightRecorder::RecordCopy& rec : log.records) {
      if (rec.seq < start || rec.kind != FlightKind::kJournal) continue;
      if (rec.detail != "flight-journal-bridge") continue;
      found = true;
      EXPECT_EQ(rec.job, 3u);
      EXPECT_EQ(rec.batch, 4u);
      EXPECT_EQ(rec.a, 17u);  // cursor
      EXPECT_EQ(rec.b, 8u);   // wave
    }
  }
  EXPECT_TRUE(found);
}

TEST(FlightRecorder, SpanGuardRecordsBeginAndEndWithoutTracer) {
  auto& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  const std::uint64_t start = max_head();
  {
    S3_TRACE_SPAN_NAMED(span, "flighttest", "unit_span");
  }
  const auto edges = records_after(start, "unit_span");
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].kind, FlightKind::kSpanBegin);
  EXPECT_EQ(edges[1].kind, FlightKind::kSpanEnd);
  EXPECT_STREQ(edges[0].category, "flighttest");
  EXPECT_LE(edges[0].ts_ns, edges[1].ts_ns);
}

TEST(FlightRecorder, DisabledRecorderDropsRecords) {
  auto& recorder = FlightRecorder::instance();
  recorder.set_enabled(false);
  const std::uint64_t start = max_head();
  S3_FLIGHT_MARK("test.disabled_mark", 1, 2);
  recorder.set_enabled(true);
  EXPECT_TRUE(records_after(start, "test.disabled_mark").empty());
}

TEST(FlightRecorder, RingWrapKeepsLastCapacityAndCountsOverwritten) {
  auto& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  // A worker thread gets a fresh ring, so the wrap arithmetic is exact.
  ThreadPool pool(1);
  const std::size_t total = FlightRecorder::kRingCapacity + 40;
  ASSERT_TRUE(pool.submit([total] {
    for (std::size_t i = 0; i < total; ++i) {
      S3_FLIGHT_MARK("test.wrap_mark", i, 0);
    }
  }));
  pool.shutdown();

  for (const FlightRecorder::ThreadLog& log : recorder.snapshot()) {
    if (log.head != total) continue;
    bool all_wrap_marks = true;
    for (const auto& rec : log.records) {
      if (rec.name == nullptr || std::string(rec.name) != "test.wrap_mark") {
        all_wrap_marks = false;
      }
    }
    if (!all_wrap_marks) continue;
    EXPECT_EQ(log.overwritten, 40u);
    ASSERT_EQ(log.records.size(), FlightRecorder::kRingCapacity);
    // The survivors are exactly the last kRingCapacity, in order.
    EXPECT_EQ(log.records.front().seq, 40u);
    EXPECT_EQ(log.records.front().a, 40u);
    EXPECT_EQ(log.records.back().seq, total - 1);
    EXPECT_EQ(log.records.back().a, total - 1);
    return;
  }
  FAIL() << "no ring with " << total << " wrap marks found";
}

TEST(FlightRecorder, DumpRoundTripsThroughPostmortemParser) {
  auto& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  {
    CorrelationScope corr(JobId(77), BatchId(88), NodeId(99));
    S3_FLIGHT_MARK("test.dump_mark", 123, 456);
  }

  const std::string path =
      ::testing::TempDir() + "/flight_dump_roundtrip.txt";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  recorder.dump_to_fd(fd);
  ::close(fd);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  // dump_to_fd writes only the flight section; wrap it in the dump framing
  // the parser expects.
  std::stringstream framed;
  framed << "# s3-crash-dump v1\nreason: roundtrip\npid: 1\n"
         << in.rdbuf() << "== end\n";
  const tools::CrashDump dump = tools::parse_crash_dump(framed);
  EXPECT_TRUE(dump.valid) << dump.error;
  EXPECT_TRUE(dump.complete);
  bool found = false;
  for (const tools::ThreadRing& ring : dump.rings) {
    EXPECT_EQ(ring.capacity, FlightRecorder::kRingCapacity);
    for (const tools::FlightEvent& event : ring.events) {
      if (event.name != "test.dump_mark") continue;
      found = true;
      EXPECT_EQ(event.job, "77");
      EXPECT_EQ(event.batch, "88");
      EXPECT_EQ(event.node, "99");
      EXPECT_EQ(event.a, 123u);
      EXPECT_EQ(event.b, 456u);
    }
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s3::obs
