// Tests for the baseline schedulers: Hadoop FIFO and MRShare batching.
#include <gtest/gtest.h>

#include "sched/fifo.h"
#include "sched/mrshare.h"

namespace s3::sched {
namespace {

FileCatalog one_file_catalog(std::uint64_t blocks = 100) {
  FileCatalog catalog;
  catalog.add(FileId(0), blocks);
  return catalog;
}

constexpr ClusterStatus kStatus{40, 40};

TEST(FifoTest, RunsJobsInArrivalOrder) {
  const auto catalog = one_file_catalog();
  FifoScheduler fifo(catalog);
  fifo.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  fifo.on_job_arrival({JobId(1), FileId(0), 0}, 1.0);
  EXPECT_EQ(fifo.pending_jobs(), 2u);

  auto first = fifo.next_batch(1.0, kStatus);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->members.size(), 1u);
  EXPECT_EQ(first->members[0].job, JobId(0));
  EXPECT_TRUE(first->members[0].completes);
  EXPECT_EQ(first->num_blocks, 100u);
  EXPECT_EQ(first->start_block, 0u);

  // One batch at a time.
  EXPECT_FALSE(fifo.next_batch(2.0, kStatus).has_value());
  fifo.on_batch_complete(first->id, 10.0);
  auto second = fifo.next_batch(10.0, kStatus);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->members[0].job, JobId(1));
  fifo.on_batch_complete(second->id, 20.0);
  EXPECT_EQ(fifo.pending_jobs(), 0u);
}

TEST(FifoTest, PriorityBeatsArrivalOrder) {
  const auto catalog = one_file_catalog();
  FifoScheduler fifo(catalog);
  fifo.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  fifo.on_job_arrival({JobId(1), FileId(0), 5}, 1.0);   // higher priority
  fifo.on_job_arrival({JobId(2), FileId(0), 5}, 2.0);   // same, later
  std::vector<JobId> order;
  while (fifo.pending_jobs() > 0) {
    auto batch = fifo.next_batch(10.0, kStatus);
    ASSERT_TRUE(batch.has_value());
    order.push_back(batch->members[0].job);
    fifo.on_batch_complete(batch->id, 10.0);
  }
  EXPECT_EQ(order, (std::vector<JobId>{JobId(1), JobId(2), JobId(0)}));
}

TEST(FifoTest, EmptyQueueYieldsNothing) {
  const auto catalog = one_file_catalog();
  FifoScheduler fifo(catalog);
  EXPECT_FALSE(fifo.next_batch(0.0, kStatus).has_value());
  EXPECT_EQ(fifo.pending_jobs(), 0u);
}

TEST(MRShareTest, SingleBatchWaitsForFlush) {
  const auto catalog = one_file_catalog();
  MRShareScheduler mrs(catalog, SingleBatch{}, "MRS1");
  mrs.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  mrs.on_job_arrival({JobId(1), FileId(0), 0}, 5.0);
  // SingleBatch keeps accumulating until told no more jobs will come.
  EXPECT_FALSE(mrs.next_batch(5.0, kStatus).has_value());
  EXPECT_EQ(mrs.pending_jobs(), 2u);
  mrs.flush(6.0);
  auto batch = mrs.next_batch(6.0, kStatus);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->members.size(), 2u);
  EXPECT_EQ(batch->num_blocks, 100u);
  for (const auto& m : batch->members) EXPECT_TRUE(m.completes);
  mrs.on_batch_complete(batch->id, 50.0);
  EXPECT_EQ(mrs.pending_jobs(), 0u);
}

TEST(MRShareTest, FixedGroupsReleaseWhenFull) {
  const auto catalog = one_file_catalog();
  MRShareScheduler mrs(catalog, FixedGroups{{2, 3}}, "MRS");
  mrs.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  EXPECT_FALSE(mrs.next_batch(0.0, kStatus).has_value());
  mrs.on_job_arrival({JobId(1), FileId(0), 0}, 1.0);
  auto batch = mrs.next_batch(1.0, kStatus);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->members.size(), 2u);

  // Second group needs 3 jobs; two are not enough.
  mrs.on_job_arrival({JobId(2), FileId(0), 0}, 2.0);
  mrs.on_job_arrival({JobId(3), FileId(0), 0}, 3.0);
  mrs.on_batch_complete(batch->id, 10.0);
  EXPECT_FALSE(mrs.next_batch(10.0, kStatus).has_value());
  mrs.on_job_arrival({JobId(4), FileId(0), 0}, 11.0);
  auto second = mrs.next_batch(11.0, kStatus);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->members.size(), 3u);
}

TEST(MRShareTest, FixedGroupsCycle) {
  const auto catalog = one_file_catalog();
  MRShareScheduler mrs(catalog, FixedGroups{{2}}, "MRS");
  for (std::uint64_t j = 0; j < 6; ++j) {
    mrs.on_job_arrival({JobId(j), FileId(0), 0}, static_cast<double>(j));
  }
  int batches = 0;
  while (auto batch = mrs.next_batch(10.0, kStatus)) {
    EXPECT_EQ(batch->members.size(), 2u);
    mrs.on_batch_complete(batch->id, 10.0);
    ++batches;
  }
  EXPECT_EQ(batches, 3);
}

TEST(MRShareTest, FlushReleasesPartialGroup) {
  const auto catalog = one_file_catalog();
  MRShareScheduler mrs(catalog, FixedGroups{{5}}, "MRS");
  mrs.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  mrs.on_job_arrival({JobId(1), FileId(0), 0}, 1.0);
  EXPECT_FALSE(mrs.next_batch(1.0, kStatus).has_value());
  mrs.flush(2.0);
  auto batch = mrs.next_batch(2.0, kStatus);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->members.size(), 2u);
}

TEST(MRShareTest, TimeWindowReleasesOnDeadline) {
  const auto catalog = one_file_catalog();
  MRShareScheduler mrs(catalog, TimeWindow{10.0}, "MRS-W");
  mrs.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  mrs.on_job_arrival({JobId(1), FileId(0), 0}, 4.0);
  EXPECT_FALSE(mrs.next_batch(5.0, kStatus).has_value());
  const auto wake = mrs.next_decision_time();
  ASSERT_TRUE(wake.has_value());
  EXPECT_DOUBLE_EQ(*wake, 10.0);  // window opened at the first arrival
  auto batch = mrs.next_batch(10.0, kStatus);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->members.size(), 2u);
  EXPECT_FALSE(mrs.next_decision_time().has_value());
}

TEST(MRShareTest, TimeWindowSeparatesDistantJobs) {
  const auto catalog = one_file_catalog();
  MRShareScheduler mrs(catalog, TimeWindow{10.0}, "MRS-W");
  mrs.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  auto first = mrs.next_batch(10.0, kStatus);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->members.size(), 1u);
  mrs.on_batch_complete(first->id, 12.0);
  mrs.on_job_arrival({JobId(1), FileId(0), 0}, 30.0);
  auto second = mrs.next_batch(40.0, kStatus);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->members.size(), 1u);
}

TEST(MRShareTest, GroupsArePerFile) {
  FileCatalog catalog;
  catalog.add(FileId(0), 10);
  catalog.add(FileId(1), 20);
  MRShareScheduler mrs(catalog, FixedGroups{{2}}, "MRS");
  mrs.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  mrs.on_job_arrival({JobId(1), FileId(1), 0}, 0.0);
  // Neither file's group is full: jobs on different files never merge.
  EXPECT_FALSE(mrs.next_batch(1.0, kStatus).has_value());
  mrs.on_job_arrival({JobId(2), FileId(0), 0}, 1.0);
  auto batch = mrs.next_batch(1.0, kStatus);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->file, FileId(0));
  EXPECT_EQ(batch->num_blocks, 10u);
}

TEST(MRShareTest, OneBatchAtATime) {
  const auto catalog = one_file_catalog();
  MRShareScheduler mrs(catalog, FixedGroups{{1}}, "MRS");
  mrs.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  mrs.on_job_arrival({JobId(1), FileId(0), 0}, 0.0);
  auto batch = mrs.next_batch(0.0, kStatus);
  ASSERT_TRUE(batch.has_value());
  EXPECT_FALSE(mrs.next_batch(0.0, kStatus).has_value());
  mrs.on_batch_complete(batch->id, 1.0);
  EXPECT_TRUE(mrs.next_batch(1.0, kStatus).has_value());
}

}  // namespace
}  // namespace s3::sched
