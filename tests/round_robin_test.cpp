// Tests for the round-robin processor-sharing baseline.
#include <gtest/gtest.h>

#include <map>

#include "sched/round_robin.h"
#include "sched/segment_planner.h"
#include "workloads/suite.h"

namespace s3::sched {
namespace {

constexpr ClusterStatus kStatus{40, 40};

TEST(RoundRobinTest, SingleJobRunsSliceBySlice) {
  FileCatalog catalog;
  catalog.add(FileId(0), 10);
  RoundRobinScheduler rr(catalog, 4);
  rr.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);

  std::uint64_t total = 0;
  int batches = 0;
  while (rr.pending_jobs() > 0) {
    auto batch = rr.next_batch(0.0, kStatus);
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->members.size(), 1u);
    total += batch->members[0].blocks;
    rr.on_batch_complete(batch->id, 0.0);
    ++batches;
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(batches, 3);  // 4 + 4 + 2
}

TEST(RoundRobinTest, JobsAlternate) {
  FileCatalog catalog;
  catalog.add(FileId(0), 8);
  RoundRobinScheduler rr(catalog, 4);
  rr.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  rr.on_job_arrival({JobId(1), FileId(0), 0}, 0.0);

  std::vector<JobId> order;
  while (rr.pending_jobs() > 0) {
    auto batch = rr.next_batch(0.0, kStatus);
    ASSERT_TRUE(batch.has_value());
    order.push_back(batch->members[0].job);
    rr.on_batch_complete(batch->id, 0.0);
  }
  EXPECT_EQ(order, (std::vector<JobId>{JobId(0), JobId(1), JobId(0), JobId(1)}));
}

TEST(RoundRobinTest, NoMergingEver) {
  FileCatalog catalog;
  catalog.add(FileId(0), 8);
  RoundRobinScheduler rr(catalog, 8);
  for (std::uint64_t j = 0; j < 5; ++j) {
    rr.on_job_arrival({JobId(j), FileId(0), 0}, 0.0);
  }
  while (rr.pending_jobs() > 0) {
    auto batch = rr.next_batch(0.0, kStatus);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->members.size(), 1u);  // never a shared batch
    rr.on_batch_complete(batch->id, 0.0);
  }
}

TEST(RoundRobinTest, CoverageInvariant) {
  FileCatalog catalog;
  catalog.add(FileId(0), 11);
  RoundRobinScheduler rr(catalog, 3);
  rr.on_job_arrival({JobId(0), FileId(0), 0}, 0.0);
  std::map<std::uint64_t, std::uint64_t> jobs_blocks;
  std::map<std::uint64_t, std::map<std::uint64_t, int>> coverage;
  std::size_t admitted = 1;
  int batches = 0;
  while (rr.pending_jobs() > 0) {
    ASSERT_LT(batches, 100);
    auto batch = rr.next_batch(0.0, kStatus);
    ASSERT_TRUE(batch.has_value());
    if (admitted < 3 && batches % 2 == 1) {
      rr.on_job_arrival({JobId(admitted++), FileId(0), 0}, 0.0);
    }
    const auto& m = batch->members[0];
    jobs_blocks[m.job.value()] += m.blocks;
    for (std::uint64_t i = 0; i < m.blocks; ++i) {
      ++coverage[m.job.value()][sched::advance_cursor(batch->start_block, i,
                                                      11)];
    }
    rr.on_batch_complete(batch->id, 0.0);
    ++batches;
  }
  ASSERT_EQ(jobs_blocks.size(), 3u);
  for (const auto& [job, blocks] : jobs_blocks) {
    EXPECT_EQ(blocks, 11u) << "job " << job;
    for (const auto& [block, count] : coverage[job]) {
      EXPECT_EQ(count, 1) << "job " << job << " block " << block;
    }
    EXPECT_EQ(coverage[job].size(), 11u);
  }
}

TEST(RoundRobinTest, SimIntegrationLowWaitHighArt) {
  // Processor sharing starts jobs quickly but stretches everyone when
  // nothing is shared: waiting time far below FIFO, ART above it.
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.wordcount_file, workloads::paper_sparse_arrivals(),
      sim::WorkloadCost::wordcount_normal());
  RoundRobinScheduler rr(setup.catalog, setup.default_segment_blocks());
  auto fifo = workloads::make_fifo(setup.catalog);

  sim::SimConfig config;
  config.cost = setup.cost;
  sim::SimEngine engine(setup.topology, setup.catalog, config);
  const auto r_rr = engine.run(rr, jobs);
  const auto r_fifo = engine.run(*fifo, jobs);
  ASSERT_TRUE(r_rr.is_ok());
  ASSERT_TRUE(r_fifo.is_ok());
  EXPECT_LT(r_rr.value().summary.mean_waiting,
            r_fifo.value().summary.mean_waiting / 4.0);
  EXPECT_GT(r_rr.value().summary.art, r_fifo.value().summary.art);
}

}  // namespace
}  // namespace s3::sched
