// Tests for the simulator's cost model: task costing, list scheduling,
// sharing economics, exclusions and node speeds.
#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "sim/cost_model.h"

namespace s3::sim {
namespace {

sched::Batch make_batch(std::uint64_t blocks, std::size_t members,
                        std::uint64_t member_blocks = 0) {
  sched::Batch batch;
  batch.id = BatchId(0);
  batch.file = FileId(0);
  batch.start_block = 0;
  batch.num_blocks = blocks;
  for (std::size_t m = 0; m < members; ++m) {
    batch.members.push_back(sched::Batch::Member{
        JobId(m), member_blocks == 0 ? blocks : member_blocks, true});
  }
  return batch;
}

std::unordered_map<JobId, WorkloadCost> costs_for(std::size_t members,
                                                  const WorkloadCost& cost) {
  std::unordered_map<JobId, WorkloadCost> costs;
  for (std::size_t m = 0; m < members; ++m) costs.emplace(JobId(m), cost);
  return costs;
}

TEST(CostModelTest, SingleJobSingleWave) {
  const auto topology = cluster::Topology::uniform(4, 1);
  CostModelParams params = CostModelParams::paper();
  CostModel model(params, topology);
  const auto batch = make_batch(4, 1);
  const auto cost = model.batch_cost(batch, costs_for(1, WorkloadCost::wordcount_normal()),
                                     {}, nullptr);
  // One wave: makespan == per-task duration.
  const double io = params.io_seconds_per_block();
  const double expected =
      params.map_task_overhead + std::max(io, 0.38) + 0.02;
  EXPECT_NEAR(cost.map_phase, expected, 1e-9);
  EXPECT_NEAR(cost.avg_map_task, expected, 1e-9);
  EXPECT_DOUBLE_EQ(cost.launch, params.batch_launch_overhead);
  EXPECT_GT(cost.reduce_tail, 0.0);
  EXPECT_DOUBLE_EQ(cost.total, cost.launch + cost.map_phase + cost.reduce_tail);
  EXPECT_EQ(cost.map_tasks.size(), 4u);
}

TEST(CostModelTest, MultipleWavesStack) {
  const auto topology = cluster::Topology::uniform(4, 1);
  CostModel model(CostModelParams::paper(), topology);
  const auto one_wave = model.batch_cost(
      make_batch(4, 1), costs_for(1, WorkloadCost::wordcount_normal()), {},
      nullptr);
  const auto three_waves = model.batch_cost(
      make_batch(12, 1), costs_for(1, WorkloadCost::wordcount_normal()), {},
      nullptr);
  EXPECT_NEAR(three_waves.map_phase, 3.0 * one_wave.map_phase, 1e-9);
}

TEST(CostModelTest, SharingSmallGroupsNearlyFree) {
  const auto topology = cluster::Topology::paper_cluster();
  CostModel model(CostModelParams::paper(), topology);
  const auto cost = costs_for(10, WorkloadCost::wordcount_normal());
  const auto solo = model.batch_cost(make_batch(40, 1), cost, {}, nullptr);
  const auto four = model.batch_cost(make_batch(40, 4), cost, {}, nullptr);
  const auto ten = model.batch_cost(make_batch(40, 10), cost, {}, nullptr);
  // Four wordcount jobs' CPU fits under the shared read; ten saturate it.
  EXPECT_LT(four.avg_map_task / solo.avg_map_task, 1.05);
  EXPECT_GT(ten.avg_map_task / solo.avg_map_task, 1.15);
  EXPECT_LT(ten.avg_map_task / solo.avg_map_task, 1.45);
}

TEST(CostModelTest, Figure3CalibrationAtTen) {
  // The headline calibration: combining 10 normal wordcount jobs costs
  // roughly +25-29 % in map time and +23.5 % in reduce time (Figure 3).
  const auto topology = cluster::Topology::paper_cluster();
  CostModel model(CostModelParams::paper(), topology);
  const auto cost = costs_for(10, WorkloadCost::wordcount_normal());
  const auto solo = model.batch_cost(make_batch(2560, 1), cost, {}, nullptr);
  const auto ten = model.batch_cost(make_batch(2560, 10), cost, {}, nullptr);
  EXPECT_NEAR(ten.avg_map_task / solo.avg_map_task, 1.28, 0.05);
  EXPECT_NEAR(ten.reduce_tail / solo.reduce_tail, 1.235, 0.01);
  const double tet_ratio = ten.total / solo.total;
  EXPECT_NEAR(tet_ratio, 1.255, 0.05);
}

TEST(CostModelTest, PrefixMembersOnlyChargeTheirBlocks) {
  const auto topology = cluster::Topology::uniform(4, 1);
  CostModel model(CostModelParams::paper(), topology);
  // Member 1 needs only the first 2 of 8 blocks.
  sched::Batch batch = make_batch(8, 2);
  batch.members[1].blocks = 2;
  const auto costs = costs_for(2, WorkloadCost::wordcount_heavy());
  const auto cost = model.batch_cost(batch, costs, {}, nullptr);
  int shared_tasks = 0;
  for (const auto& task : cost.map_tasks) {
    if (task.sharers == 2) ++shared_tasks;
  }
  EXPECT_EQ(shared_tasks, 2);
  EXPECT_EQ(cost.map_tasks.size(), 8u);
}

TEST(CostModelTest, ExcludedNodesGetNoTasks) {
  const auto topology = cluster::Topology::uniform(4, 1);
  const CostModelParams params = CostModelParams::paper();
  CostModel model(params, topology);
  const auto normal = WorkloadCost::wordcount_normal();
  const auto cost = model.batch_cost(make_batch(8, 1), costs_for(1, normal),
                                     {NodeId(0), NodeId(1)}, nullptr);
  for (const auto& task : cost.map_tasks) {
    EXPECT_NE(task.node, NodeId(0));
    EXPECT_NE(task.node, NodeId(1));
  }
  // 8 tasks over 2 usable slots = 4 waves per slot: each surviving node runs
  // its 2 local blocks plus 2 of the excluded nodes' blocks remotely.
  const double io_local = params.io_seconds_per_block();
  const double io_remote =
      std::max(io_local, params.block_mb / 110.0) *  // single rack: intra bw
      params.remote_read_penalty;
  const double local_dur = params.map_task_overhead +
                           std::max(io_local, normal.map_cpu_seconds_per_block) +
                           normal.map_spill_seconds_per_block;
  const double remote_dur = params.map_task_overhead +
                            std::max(io_remote, normal.map_cpu_seconds_per_block) +
                            normal.map_spill_seconds_per_block;
  EXPECT_NEAR(cost.map_phase, 2.0 * local_dur + 2.0 * remote_dur, 1e-9);
  int remote_tasks = 0;
  for (const auto& task : cost.map_tasks) remote_tasks += task.local ? 0 : 1;
  EXPECT_EQ(remote_tasks, 4);
}

TEST(CostModelTest, SlowNodeStretchesMakespan) {
  auto topology = cluster::Topology::uniform(4, 1);
  CostModel model(CostModelParams::paper(), topology);
  const auto slow = model.batch_cost(
      make_batch(4, 1), costs_for(1, WorkloadCost::wordcount_normal()), {},
      [](NodeId n) { return n == NodeId(2) ? 3.0 : 1.0; });
  const auto nominal = model.batch_cost(
      make_batch(4, 1), costs_for(1, WorkloadCost::wordcount_normal()), {},
      nullptr);
  EXPECT_NEAR(slow.map_phase, 3.0 * nominal.map_phase, 1e-9);
}

TEST(CostModelTest, ListSchedulingFavoursFastNodes) {
  auto topology = cluster::Topology::uniform(2, 1);
  CostModel model(CostModelParams::paper(), topology);
  // Node 1 is 3x slower; with 8 tasks the fast node should take more.
  const auto cost = model.batch_cost(
      make_batch(8, 1), costs_for(1, WorkloadCost::wordcount_normal()), {},
      [](NodeId n) { return n == NodeId(1) ? 3.0 : 1.0; });
  int fast_tasks = 0;
  for (const auto& task : cost.map_tasks) fast_tasks += task.node == NodeId(0);
  EXPECT_GT(fast_tasks, 4);
}

TEST(CostModelTest, HeavyWorkloadSlower) {
  const auto topology = cluster::Topology::paper_cluster();
  CostModel model(CostModelParams::paper(), topology);
  const auto normal = model.batch_cost(
      make_batch(2560, 1), costs_for(1, WorkloadCost::wordcount_normal()), {},
      nullptr);
  std::unordered_map<JobId, WorkloadCost> heavy_costs;
  heavy_costs.emplace(JobId(0), WorkloadCost::wordcount_heavy());
  const auto heavy =
      model.batch_cost(make_batch(2560, 1), heavy_costs, {}, nullptr);
  const double ratio = heavy.total / normal.total;
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 1.7);  // paper: heavy jobs ~1.5x slower
}

TEST(CostModelTest, BlockSizeTradeoffs) {
  const auto topology = cluster::Topology::paper_cluster();
  const auto single_job_tet = [&](double block_mb) {
    CostModel model(CostModelParams::paper(block_mb), topology);
    const std::uint64_t blocks =
        static_cast<std::uint64_t>(160.0 * 1024.0 / block_mb);
    return model
        .batch_cost(make_batch(blocks, 1),
                    costs_for(1, WorkloadCost::wordcount_normal()), {},
                    nullptr)
        .total;
  };
  const double t32 = single_job_tet(32.0);
  const double t64 = single_job_tet(64.0);
  const double t128 = single_job_tet(128.0);
  // Paper §V-F: 128 MB gives the fastest processing; 32 MB the slowest.
  EXPECT_LT(t128, t64);
  EXPECT_LT(t64, t32);
}

TEST(CostModelTest, LaunchOverheadIndependentOfSize) {
  const auto topology = cluster::Topology::uniform(4, 1);
  CostModelParams params = CostModelParams::paper();
  params.batch_launch_overhead = 11.0;
  CostModel model(params, topology);
  const auto small = model.batch_cost(
      make_batch(1, 1), costs_for(1, WorkloadCost::wordcount_normal()), {},
      nullptr);
  const auto large = model.batch_cost(
      make_batch(64, 1), costs_for(1, WorkloadCost::wordcount_normal()), {},
      nullptr);
  EXPECT_DOUBLE_EQ(small.launch, 11.0);
  EXPECT_DOUBLE_EQ(large.launch, 11.0);
}

}  // namespace
}  // namespace s3::sim
