// Tests for PinnedThreadPool: the work-stealing deques, the ThreadPool
// exception contract it must preserve, worker identity, and the graceful
// degradation of core pinning.
#include "common/pinned_thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace s3 {
namespace {

TEST(PinnedThreadPoolTest, ExecutesAllTasks) {
  PinnedThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.submit([&count] { ++count; }));
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(PinnedThreadPoolTest, SubmitToExecutesAllTasks) {
  PinnedThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 90; ++i) {
    // Any worker index is accepted (taken modulo the pool size).
    EXPECT_TRUE(pool.submit_to(static_cast<std::size_t>(i), [&count] {
      ++count;
    }));
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 90);
}

TEST(PinnedThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  PinnedThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(PinnedThreadPoolTest, IdleWorkerStealsFromBusyVictim) {
  // Worker 0 is parked on a blocker task; every other task is queued to
  // worker 0's deque. They can only complete if worker 1 steals them, so
  // once one completes while the blocker still holds worker 0, a steal is
  // proven — then the blocker is released.
  PinnedThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  ASSERT_TRUE(pool.submit_to(0, [gate] { gate.wait(); }));
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.submit_to(0, [&count] { ++count; }));
  }
  while (count.load() == 0) std::this_thread::yield();
  release.set_value();
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
  EXPECT_GE(pool.steals(), 1u);
}

TEST(PinnedThreadPoolTest, CurrentWorkerIndexIdentifiesWorkers) {
  PinnedThreadPool pool(3);
  EXPECT_EQ(pool.current_worker_index(), -1);  // off-pool thread
  std::atomic<int> bad{0};
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(pool.submit([&pool, &bad] {
      const int index = pool.current_worker_index();
      if (index < 0 || index >= 3) ++bad;
    }));
  }
  pool.wait_idle();
  EXPECT_EQ(bad.load(), 0);
}

TEST(PinnedThreadPoolTest, WorkerIndexDoesNotLeakAcrossPools) {
  // A task on pool A asking pool B for its index must get -1: worker
  // identity is per-pool, so arena shard selection can never alias.
  PinnedThreadPool a(1);
  PinnedThreadPool b(1);
  std::atomic<int> cross{-2};
  ASSERT_TRUE(a.submit([&b, &cross] { cross = b.current_worker_index(); }));
  a.wait_idle();
  EXPECT_EQ(cross.load(), -1);
}

TEST(PinnedThreadPoolTest, SubmitAfterShutdownFails) {
  PinnedThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
  EXPECT_FALSE(pool.submit_to(0, [] {}));
}

TEST(PinnedThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    PinnedThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      }));
    }
  }  // destructor: shutdown + drain
  EXPECT_EQ(count.load(), 50);
}

TEST(PinnedThreadPoolTest, ShutdownDuringStealDrainsEverything) {
  // All tasks land on worker 0's deque and shutdown begins immediately, so
  // the other three workers drain the backlog via steals racing the
  // shutdown flag. Every accepted task must still run exactly once.
  std::atomic<int> count{0};
  {
    PinnedThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(pool.submit_to(0, [&count] { ++count; }));
    }
  }  // destructor races workers mid-steal
  EXPECT_EQ(count.load(), 200);
}

TEST(PinnedThreadPoolTest, WaitIdleCanBeReused) {
  PinnedThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(pool.submit([&count] { ++count; }));
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

// --- Exception contract (identical to ThreadPool) -----------------------

TEST(PinnedThreadPoolTest, TaskExceptionRethrownFromWaitIdle) {
  PinnedThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_TRUE(pool.submit([] { throw std::runtime_error("task exploded"); }));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(pool.submit([&completed] { ++completed; }));
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The throwing task did not kill its worker: every other task still ran.
  EXPECT_EQ(completed.load(), 10);
}

TEST(PinnedThreadPoolTest, OnlyFirstExceptionIsKept) {
  PinnedThreadPool pool(1);  // one worker => deterministic task order
  EXPECT_TRUE(pool.submit([] { throw std::runtime_error("first"); }));
  EXPECT_TRUE(pool.submit([] { throw std::logic_error("second"); }));
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(PinnedThreadPoolTest, PoolIsReusableAfterException) {
  PinnedThreadPool pool(2);
  EXPECT_TRUE(pool.submit([] { throw std::runtime_error("boom"); }));
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error slot was cleared; the next wave is clean.
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(pool.submit([&count] { ++count; }));
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8);
}

TEST(PinnedThreadPoolTest, ExceptionDuringShutdownIsDiscarded) {
  // A task that throws while the pool is being torn down must not
  // std::terminate from the destructor.
  {
    PinnedThreadPool pool(1);
    EXPECT_TRUE(pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      throw std::runtime_error("mid-shutdown");
    }));
  }  // destructor: shutdown + join, exception dropped
  SUCCEED();
}

// --- Core pinning -------------------------------------------------------

TEST(PinnedThreadPoolTest, PinningIsBestEffortAndNeverFailsConstruction) {
  PinnedThreadPoolOptions options;
  options.num_threads = 2;
  options.pin_cores = true;
  PinnedThreadPool pool(options);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(pool.submit([&count] { ++count; }));
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
  // Where affinity is supported every worker pins; elsewhere none do. Either
  // way the pool works and reports an in-range number.
  EXPECT_LE(pool.pinned_workers(), 2u);
}

TEST(PinnedThreadPoolTest, PinningOffByDefault) {
  PinnedThreadPool pool(2);
  std::atomic<int> count{0};
  EXPECT_TRUE(pool.submit([&count] { ++count; }));
  pool.wait_idle();
  EXPECT_EQ(pool.pinned_workers(), 0u);
}

// --- Contended stress (exercised under TSan via scripts/check.sh) -------

TEST(PinnedThreadPoolTest, ConcurrentProducersAndStealersStress) {
  PinnedThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  std::atomic<int> accepted{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &count, &accepted, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Skew every producer onto one home worker so the other three
        // workers only make progress by stealing.
        if (pool.submit_to(static_cast<std::size_t>(p % 2),
                           [&count] { ++count; })) {
          ++accepted;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(count.load(), accepted.load());
  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace s3
