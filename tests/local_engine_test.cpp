// Tests for LocalEngine: full threaded MapReduce execution, batch semantics,
// sub-job (multi-batch) equivalence, shared-scan accounting.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <stdexcept>

#include "engine/local_engine.h"
#include "sched/segment_planner.h"
#include "workloads/text_corpus.h"
#include "workloads/wordcount.h"

namespace s3::engine {
namespace {

class LocalEngineTest : public ::testing::Test {
 protected:
  static LocalEngineOptions workers(std::size_t map, std::size_t reduce) {
    LocalEngineOptions opts;
    opts.map_workers = map;
    opts.reduce_workers = reduce;
    return opts;
  }

  void SetUp() override {
    dfs::PlacementTopology topo;
    for (std::uint64_t n = 0; n < 4; ++n) {
      topo.nodes.push_back({NodeId(n), RackId(0)});
    }
    dfs::RoundRobinPlacement placement(topo);
    workloads::TextCorpusGenerator corpus;
    auto file = corpus.generate_file(ns_, store_, placement, "corpus", 8,
                                     ByteSize::kib(8));
    ASSERT_TRUE(file.is_ok());
    file_ = file.value();
  }

  std::vector<BlockId> blocks(std::uint64_t from, std::uint64_t count) const {
    const auto& all = ns_.file(file_).blocks;
    std::vector<BlockId> out;
    for (std::uint64_t i = 0; i < count; ++i) {
      out.push_back(all[(from + i) % all.size()]);
    }
    return out;
  }

  static std::map<std::string, std::string> to_map(const JobResult& result) {
    std::map<std::string, std::string> m;
    for (const auto& kv : result.output) m[kv.key] = kv.value;
    return m;
  }

  // Single-threaded reference: count words with the prefix over all blocks.
  std::map<std::string, std::int64_t> reference_counts(
      const std::string& prefix) const {
    std::map<std::string, std::int64_t> counts;
    for (const BlockId b : ns_.file(file_).blocks) {
      const auto payload = store_.get(b).value();
      std::string word;
      for (const char c : *payload) {
        if (c == ' ' || c == '\n') {
          if (!word.empty() && word.rfind(prefix, 0) == 0) ++counts[word];
          word.clear();
        } else {
          word.push_back(c);
        }
      }
      if (!word.empty() && word.rfind(prefix, 0) == 0) ++counts[word];
    }
    return counts;
  }

  dfs::DfsNamespace ns_;
  dfs::BlockStore store_;
  FileId file_;
};

TEST_F(LocalEngineTest, RegisterValidation) {
  LocalEngine engine(ns_, store_, workers(2, 1));
  JobSpec bad;  // invalid: no factories
  EXPECT_FALSE(engine.register_job(bad).is_ok());

  JobSpec good = workloads::make_wordcount_job(JobId(0), file_, "a", 2);
  EXPECT_TRUE(engine.register_job(good).is_ok());
  EXPECT_EQ(engine.register_job(good).code(), StatusCode::kAlreadyExists);

  JobSpec missing_file = workloads::make_wordcount_job(JobId(1), FileId(77), "a", 2);
  EXPECT_EQ(engine.register_job(missing_file).code(), StatusCode::kNotFound);
}

TEST_F(LocalEngineTest, SingleBatchWordCountMatchesReference) {
  LocalEngine engine(ns_, store_, workers(4, 2));
  const JobSpec spec = workloads::make_wordcount_job(JobId(0), file_, "a", 3);
  ASSERT_TRUE(engine.register_job(spec).is_ok());

  BatchExec batch;
  batch.id = BatchId(0);
  batch.blocks = blocks(0, 8);
  batch.jobs = {JobId(0)};
  ASSERT_TRUE(engine.execute_batch(batch).is_ok());

  auto result = engine.finalize_job(JobId(0));
  ASSERT_TRUE(result.is_ok());
  const auto got = to_map(result.value());
  const auto want = reference_counts("a");
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [word, count] : want) {
    ASSERT_TRUE(got.count(word) > 0) << word;
    EXPECT_EQ(got.at(word), std::to_string(count)) << word;
  }
}

TEST_F(LocalEngineTest, OutputSortedByKey) {
  LocalEngine engine(ns_, store_, workers(2, 2));
  const JobSpec spec = workloads::make_wordcount_job(JobId(0), file_, "", 4);
  ASSERT_TRUE(engine.register_job(spec).is_ok());
  BatchExec batch{BatchId(0), blocks(0, 8), {JobId(0)}};
  ASSERT_TRUE(engine.execute_batch(batch).is_ok());
  auto result = engine.finalize_job(JobId(0));
  ASSERT_TRUE(result.is_ok());
  const auto& out = result.value().output;
  ASSERT_GT(out.size(), 10u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].key, out[i].key);
  }
}

TEST_F(LocalEngineTest, SubJobExecutionEqualsWholeFile) {
  // Run the same job as 4 sequential sub-job batches (S3-style, starting at
  // segment 2 to exercise circular wrap-around) and as one whole-file batch;
  // the final outputs must match exactly.
  LocalEngine engine(ns_, store_, workers(4, 2));
  const JobSpec whole = workloads::make_wordcount_job(JobId(0), file_, "b", 2);
  const JobSpec pieces = workloads::make_wordcount_job(JobId(1), file_, "b", 2);
  ASSERT_TRUE(engine.register_job(whole).is_ok());
  ASSERT_TRUE(engine.register_job(pieces).is_ok());

  ASSERT_TRUE(
      engine.execute_batch({BatchId(0), blocks(0, 8), {JobId(0)}}).is_ok());
  for (std::uint64_t seg = 0; seg < 4; ++seg) {
    const std::uint64_t start =
        sched::wrap_index(4 + seg * 2, 8);  // begin mid-file
    ASSERT_TRUE(engine
                    .execute_batch({BatchId(1 + seg), blocks(start, 2),
                                    {JobId(1)}})
                    .is_ok());
  }

  auto whole_result = engine.finalize_job(JobId(0));
  auto pieces_result = engine.finalize_job(JobId(1));
  ASSERT_TRUE(whole_result.is_ok());
  ASSERT_TRUE(pieces_result.is_ok());
  EXPECT_EQ(to_map(whole_result.value()), to_map(pieces_result.value()));
}

TEST_F(LocalEngineTest, SharedBatchReadsEachBlockOnce) {
  LocalEngine engine(ns_, store_, workers(4, 2));
  for (std::uint64_t j = 0; j < 3; ++j) {
    ASSERT_TRUE(engine
                    .register_job(workloads::make_wordcount_job(
                        JobId(j), file_, std::string(1, static_cast<char>('a' + j)), 2))
                    .is_ok());
  }
  BatchExec batch{BatchId(0), blocks(0, 8), {JobId(0), JobId(1), JobId(2)}};
  ASSERT_TRUE(engine.execute_batch(batch).is_ok());
  const auto scan = engine.scan_counters();
  EXPECT_EQ(scan.blocks_physical, 8u);
  EXPECT_EQ(scan.blocks_logical, 24u);
  EXPECT_EQ(scan.bytes_logical, scan.bytes_physical * 3);
}

TEST_F(LocalEngineTest, SharedBatchOutputsEqualIndependentRuns) {
  LocalEngine engine(ns_, store_, workers(4, 2));
  const JobSpec shared_a = workloads::make_wordcount_job(JobId(0), file_, "th", 2);
  const JobSpec shared_b = workloads::make_wordcount_job(JobId(1), file_, "s", 2);
  const JobSpec solo_a = workloads::make_wordcount_job(JobId(2), file_, "th", 2);
  const JobSpec solo_b = workloads::make_wordcount_job(JobId(3), file_, "s", 2);
  for (const auto* s : {&shared_a, &shared_b, &solo_a, &solo_b}) {
    ASSERT_TRUE(engine.register_job(*s).is_ok());
  }
  ASSERT_TRUE(engine
                  .execute_batch({BatchId(0), blocks(0, 8),
                                  {JobId(0), JobId(1)}})
                  .is_ok());
  ASSERT_TRUE(engine.execute_batch({BatchId(1), blocks(0, 8), {JobId(2)}})
                  .is_ok());
  ASSERT_TRUE(engine.execute_batch({BatchId(2), blocks(0, 8), {JobId(3)}})
                  .is_ok());
  EXPECT_EQ(to_map(engine.finalize_job(JobId(0)).value()),
            to_map(engine.finalize_job(JobId(2)).value()));
  EXPECT_EQ(to_map(engine.finalize_job(JobId(1)).value()),
            to_map(engine.finalize_job(JobId(3)).value()));
}

TEST_F(LocalEngineTest, IncrementalMergeEqualsFinalMerge) {
  LocalEngineOptions incremental;
  incremental.map_workers = 2;
  incremental.reduce_workers = 1;
  incremental.incremental_merge = true;
  LocalEngine a(ns_, store_, incremental);
  LocalEngine b(ns_, store_, workers(2, 1));
  for (LocalEngine* engine : {&a, &b}) {
    ASSERT_TRUE(engine
                    ->register_job(
                        workloads::make_wordcount_job(JobId(0), file_, "c", 2))
                    .is_ok());
    for (std::uint64_t seg = 0; seg < 4; ++seg) {
      ASSERT_TRUE(engine
                      ->execute_batch(
                          {BatchId(seg), blocks(seg * 2, 2), {JobId(0)}})
                      .is_ok());
    }
  }
  EXPECT_EQ(to_map(a.finalize_job(JobId(0)).value()),
            to_map(b.finalize_job(JobId(0)).value()));
}

TEST_F(LocalEngineTest, CountersAccumulate) {
  LocalEngine engine(ns_, store_, workers(2, 1));
  ASSERT_TRUE(engine
                  .register_job(
                      workloads::make_wordcount_job(JobId(0), file_, "", 2))
                  .is_ok());
  ASSERT_TRUE(engine.execute_batch({BatchId(0), blocks(0, 4), {JobId(0)}})
                  .is_ok());
  const auto after_first = engine.counters(JobId(0));
  EXPECT_EQ(after_first.map_tasks, 4u);
  EXPECT_EQ(after_first.blocks_scanned, 4u);
  EXPECT_GT(after_first.map_input_records, 0u);
  ASSERT_TRUE(engine.execute_batch({BatchId(1), blocks(4, 4), {JobId(0)}})
                  .is_ok());
  const auto after_second = engine.counters(JobId(0));
  EXPECT_EQ(after_second.map_tasks, 8u);
  EXPECT_GT(after_second.reduce_tasks, 0u);
}

TEST_F(LocalEngineTest, BatchErrorPaths) {
  LocalEngine engine(ns_, store_, workers(2, 1));
  ASSERT_TRUE(engine
                  .register_job(
                      workloads::make_wordcount_job(JobId(0), file_, "a", 2))
                  .is_ok());
  EXPECT_FALSE(engine.execute_batch({BatchId(0), {}, {JobId(0)}}).is_ok());
  EXPECT_FALSE(engine.execute_batch({BatchId(1), blocks(0, 1), {}}).is_ok());
  EXPECT_EQ(
      engine.execute_batch({BatchId(2), blocks(0, 1), {JobId(9)}}).code(),
      StatusCode::kNotFound);
  EXPECT_FALSE(engine.finalize_job(JobId(9)).is_ok());
}

TEST_F(LocalEngineTest, TransientTaskFailuresAreRetried) {
  // Every task's first attempt fails; retries must make the job succeed with
  // results identical to a failure-free run.
  LocalEngineOptions faulty;
  faulty.map_workers = 2;
  faulty.reduce_workers = 1;
  faulty.max_task_attempts = 3;
  std::mutex mu;
  std::map<std::uint64_t, int> attempts_seen;
  faulty.failure_injector = [&](TaskId task, int attempt) {
    std::lock_guard<std::mutex> lock(mu);
    attempts_seen[task.value()] = attempt;
    return attempt == 1;  // first attempt of every task fails
  };
  LocalEngine engine(ns_, store_, faulty);
  ASSERT_TRUE(engine
                  .register_job(
                      workloads::make_wordcount_job(JobId(0), file_, "a", 2))
                  .is_ok());
  ASSERT_TRUE(engine.execute_batch({BatchId(0), blocks(0, 8), {JobId(0)}})
                  .is_ok());
  EXPECT_EQ(engine.failed_attempts(), 8u + 2u);  // 8 map + 2 reduce tasks

  auto result = engine.finalize_job(JobId(0));
  ASSERT_TRUE(result.is_ok());
  const auto counts = reference_counts("a");
  EXPECT_EQ(to_map(result.value()).size(), counts.size());
  for (const auto& [task, attempt] : attempts_seen) {
    EXPECT_EQ(attempt, 2) << "task " << task;  // succeeded on the retry
  }
}

TEST_F(LocalEngineTest, PermanentTaskFailureFailsTheBatch) {
  LocalEngineOptions faulty;
  faulty.map_workers = 2;
  faulty.reduce_workers = 1;
  faulty.max_task_attempts = 2;
  faulty.failure_injector = [](TaskId task, int) {
    return task.value() == 0;  // the first task never succeeds
  };
  LocalEngine engine(ns_, store_, faulty);
  ASSERT_TRUE(engine
                  .register_job(
                      workloads::make_wordcount_job(JobId(0), file_, "a", 2))
                  .is_ok());
  const Status status =
      engine.execute_batch({BatchId(0), blocks(0, 8), {JobId(0)}});
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.failed_attempts(), 2u);  // both attempts of task 0
}

TEST_F(LocalEngineTest, ThrowingMapperSurfacesAsInternalError) {
  // User code that throws must come back as a Status on the caller's thread
  // (the pool captures the exception and execute_batch converts it), never
  // kill a worker or terminate the process.
  class ThrowingMapper final : public Mapper {
   public:
    void map(const dfs::Record&, Emitter&) override {
      throw std::runtime_error("user mapper bug");
    }
  };
  LocalEngine engine(ns_, store_, workers(2, 1));
  JobSpec spec = workloads::make_wordcount_job(JobId(0), file_, "a", 2);
  spec.mapper_factory = [] { return std::make_unique<ThrowingMapper>(); };
  ASSERT_TRUE(engine.register_job(std::move(spec)).is_ok());
  const Status status =
      engine.execute_batch({BatchId(0), blocks(0, 8), {JobId(0)}});
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // The engine is still usable for other jobs afterwards.
  ASSERT_TRUE(engine
                  .register_job(
                      workloads::make_wordcount_job(JobId(1), file_, "b", 2))
                  .is_ok());
  EXPECT_TRUE(engine.execute_batch({BatchId(1), blocks(0, 8), {JobId(1)}})
                  .is_ok());
}

// ---------------------------------------------------------------------------
// Failure domains (DESIGN.md §12): options validation, node-death
// re-dispatch, the hung-task watchdog, and poison-member quarantine, all
// through the engine's own run_batch API (the chaos suite covers the same
// paths end-to-end through the driver).

class LocalEngineFailureTest : public LocalEngineTest {
 protected:
  // A second file with real replica placement, so node death has somewhere
  // to fail over to.
  FileId replicated_file(int replication) {
    dfs::PlacementTopology topo;
    for (std::uint64_t n = 0; n < 4; ++n) {
      topo.nodes.push_back({NodeId(n), RackId(0)});
    }
    dfs::RoundRobinPlacement placement(topo);
    workloads::TextCorpusGenerator corpus;
    auto file = corpus.generate_file(ns_, store_, placement, "replicated", 8,
                                     ByteSize::kib(8), replication);
    EXPECT_TRUE(file.is_ok());
    return file.value();
  }

  std::vector<BlockId> file_blocks(FileId f) const {
    return ns_.file(f).blocks;
  }
};

TEST_F(LocalEngineFailureTest, RunBatchRejectsInvalidOptions) {
  const JobSpec spec = workloads::make_wordcount_job(JobId(0), file_, "a", 2);

  LocalEngineOptions no_attempts = workers(2, 1);
  no_attempts.max_task_attempts = 0;
  LocalEngine a(ns_, store_, no_attempts);
  ASSERT_TRUE(a.register_job(spec).is_ok());
  EXPECT_EQ(a.run_batch({BatchId(0), blocks(0, 8), {JobId(0)}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Zero workers must surface as invalid_argument from run_batch, not crash
  // the constructor.
  LocalEngine no_mappers(ns_, store_, workers(0, 1));
  ASSERT_TRUE(no_mappers.register_job(spec).is_ok());
  EXPECT_EQ(no_mappers.run_batch({BatchId(0), blocks(0, 8), {JobId(0)}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  LocalEngine no_reducers(ns_, store_, workers(2, 0));
  ASSERT_TRUE(no_reducers.register_job(spec).is_ok());
  EXPECT_EQ(no_reducers.run_batch({BatchId(0), blocks(0, 8), {JobId(0)}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LocalEngineFailureTest, NodeDeathReDispatchesOnAReplica) {
  const FileId file = replicated_file(/*replication=*/3);
  const std::vector<BlockId> all = file_blocks(file);
  const BlockId trigger = all.front();
  const NodeId victim = ns_.block(trigger).replicas.front();

  dfs::ReplicaHealth health;
  dfs::StoredBlocks stored(store_);
  dfs::FailoverBlockSource source(ns_, stored, health);

  LocalEngineOptions opts = workers(3, 2);
  opts.replica_health = &health;
  opts.fault_injector = [trigger](const TaskAttempt& attempt) {
    Fault f;
    if (attempt.is_map && attempt.block == trigger && attempt.attempt == 1) {
      f.kind = FaultKind::kNodeDeath;  // dead_node defaults to attempt.node
      f.detail = "injected crash";
    }
    return f;
  };
  LocalEngine engine(ns_, source, opts);
  ASSERT_TRUE(engine
                  .register_job(
                      workloads::make_wordcount_job(JobId(0), file, "a", 2))
                  .is_ok());

  auto outcome = engine.run_batch({BatchId(0), all, {JobId(0)}});
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().message();
  ASSERT_EQ(outcome.value().nodes_died.size(), 1u);
  EXPECT_EQ(outcome.value().nodes_died.front(), victim);
  EXPECT_TRUE(outcome.value().quarantined.empty());
  EXPECT_TRUE(engine.node_is_dead(victim));
  EXPECT_TRUE(health.is_node_dead(victim));

  // The re-dispatched scan still produces the right answer.
  LocalEngine clean(ns_, source, workers(3, 2));
  ASSERT_TRUE(clean
                  .register_job(
                      workloads::make_wordcount_job(JobId(0), file, "a", 2))
                  .is_ok());
  ASSERT_TRUE(clean.execute_batch({BatchId(0), all, {JobId(0)}}).is_ok());
  EXPECT_EQ(to_map(engine.finalize_job(JobId(0)).value()),
            to_map(clean.finalize_job(JobId(0)).value()));
}

TEST_F(LocalEngineFailureTest, HungMapAttemptsAreAbandonedAndRetried) {
  LocalEngineOptions opts = workers(2, 1);
  opts.fault_injector = [](const TaskAttempt& attempt) {
    Fault f;
    if (attempt.is_map && attempt.attempt == 1) {
      f.kind = FaultKind::kHang;
      f.detail = "wedged container";
    }
    return f;
  };
  LocalEngine engine(ns_, store_, opts);
  ASSERT_TRUE(engine
                  .register_job(
                      workloads::make_wordcount_job(JobId(0), file_, "a", 2))
                  .is_ok());
  auto outcome = engine.run_batch({BatchId(0), blocks(0, 8), {JobId(0)}});
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().message();
  EXPECT_EQ(engine.hung_attempts(), 8u);  // one per map task, all recovered

  auto result = engine.finalize_job(JobId(0));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(to_map(result.value()).size(), reference_counts("a").size());
}

TEST_F(LocalEngineFailureTest, PoisonMemberIsQuarantinedAndSurvivorsCommit) {
  LocalEngineOptions opts = workers(3, 2);
  opts.max_task_attempts = 2;
  opts.fault_injector = [](const TaskAttempt& attempt) {
    Fault f;
    if (attempt.is_map) {
      f.kind = FaultKind::kPoison;  // fires every attempt: retries exhaust
      f.poison_job = JobId(1);
      f.detail = "bad member map fn";
    }
    return f;
  };
  LocalEngine engine(ns_, store_, opts);
  for (std::uint64_t j = 0; j < 3; ++j) {
    ASSERT_TRUE(engine
                    .register_job(workloads::make_wordcount_job(
                        JobId(j), file_,
                        std::string(1, static_cast<char>('a' + j)), 2))
                    .is_ok());
  }

  auto outcome = engine.run_batch(
      {BatchId(0), blocks(0, 8), {JobId(0), JobId(1), JobId(2)}});
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().message();
  ASSERT_EQ(outcome.value().quarantined.size(), 1u);
  EXPECT_EQ(outcome.value().quarantined.front().job, JobId(1));
  EXPECT_FALSE(outcome.value().quarantined.front().reason.is_ok());
  EXPECT_GE(outcome.value().reruns, 1);

  // The quarantined member's state is released; the survivors finish with
  // exactly the answers a fault-free run produces.
  EXPECT_FALSE(engine.finalize_job(JobId(1)).is_ok());
  for (const std::uint64_t j : {0u, 2u}) {
    auto result = engine.finalize_job(JobId(j));
    ASSERT_TRUE(result.is_ok());
    const auto want =
        reference_counts(std::string(1, static_cast<char>('a' + j)));
    EXPECT_EQ(to_map(result.value()).size(), want.size());
  }
}

TEST_F(LocalEngineTest, JobWithNoMatchesProducesEmptyOutput) {
  LocalEngine engine(ns_, store_, workers(2, 1));
  ASSERT_TRUE(engine
                  .register_job(workloads::make_wordcount_job(
                      JobId(0), file_, "zzzzzzzzzz", 2))
                  .is_ok());
  ASSERT_TRUE(engine.execute_batch({BatchId(0), blocks(0, 8), {JobId(0)}})
                  .is_ok());
  auto result = engine.finalize_job(JobId(0));
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().output.empty());
}

}  // namespace
}  // namespace s3::engine
