// Unit tests for the DFS substrate: namespace, block store, placement,
// segments and record readers.
#include <gtest/gtest.h>

#include <set>

#include "dfs/block_store.h"
#include "dfs/dfs_namespace.h"
#include "dfs/placement.h"
#include "dfs/reader.h"
#include "dfs/segment.h"

namespace s3::dfs {
namespace {

FileId make_file(DfsNamespace& ns, const std::string& name,
                 std::uint64_t blocks, ByteSize block_size) {
  auto file = ns.create_file(name, block_size);
  EXPECT_TRUE(file.is_ok());
  for (std::uint64_t b = 0; b < blocks; ++b) {
    auto block = ns.append_block(file.value(), block_size);
    EXPECT_TRUE(block.is_ok());
  }
  return file.value();
}

TEST(DfsNamespaceTest, CreateAndLookup) {
  DfsNamespace ns;
  const FileId id = make_file(ns, "a.txt", 4, ByteSize::mib(64));
  EXPECT_TRUE(ns.has_file(id));
  EXPECT_EQ(ns.lookup("a.txt").value(), id);
  EXPECT_FALSE(ns.lookup("b.txt").is_ok());
  EXPECT_EQ(ns.file(id).num_blocks(), 4u);
  EXPECT_EQ(ns.num_files(), 1u);
}

TEST(DfsNamespaceTest, DuplicateNameRejected) {
  DfsNamespace ns;
  make_file(ns, "a.txt", 1, ByteSize::mib(1));
  EXPECT_EQ(ns.create_file("a.txt", ByteSize::mib(1)).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DfsNamespaceTest, ZeroBlockSizeRejected) {
  DfsNamespace ns;
  EXPECT_EQ(ns.create_file("x", ByteSize(0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DfsNamespaceTest, AppendToUnknownFileFails) {
  DfsNamespace ns;
  EXPECT_EQ(ns.append_block(FileId(99), ByteSize(1)).status().code(),
            StatusCode::kNotFound);
}

TEST(DfsNamespaceTest, OversizedBlockRejected) {
  DfsNamespace ns;
  const FileId id = make_file(ns, "a", 0, ByteSize::kib(1));
  EXPECT_EQ(ns.append_block(id, ByteSize::kib(2)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DfsNamespaceTest, BlockMetadataTracksOrder) {
  DfsNamespace ns;
  const FileId id = make_file(ns, "a", 3, ByteSize::kib(4));
  const auto& info = ns.file(id);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const BlockInfo& block = ns.block(info.blocks[i]);
    EXPECT_EQ(block.index_in_file, i);
    EXPECT_EQ(block.file, id);
  }
  EXPECT_EQ(ns.file_size(id), ByteSize::kib(12));
}

TEST(DfsNamespaceTest, ReplicaAssignment) {
  DfsNamespace ns;
  const FileId id = make_file(ns, "a", 1, ByteSize::kib(4));
  const BlockId block = ns.file(id).blocks[0];
  EXPECT_TRUE(ns.set_replicas(block, {NodeId(1), NodeId(2)}).is_ok());
  EXPECT_EQ(ns.block(block).replicas.size(), 2u);
  EXPECT_FALSE(ns.set_replicas(block, {}).is_ok());
  EXPECT_FALSE(ns.set_replicas(BlockId(999), {NodeId(1)}).is_ok());
}

TEST(BlockStoreTest, PutGetRoundTrip) {
  BlockStore store;
  EXPECT_TRUE(store.put(BlockId(1), "hello").is_ok());
  auto payload = store.get(BlockId(1));
  ASSERT_TRUE(payload.is_ok());
  EXPECT_EQ(*payload.value(), "hello");
  EXPECT_TRUE(store.contains(BlockId(1)));
  EXPECT_EQ(store.num_blocks(), 1u);
  EXPECT_EQ(store.total_bytes(), 5u);
}

TEST(BlockStoreTest, BlocksAreImmutable) {
  BlockStore store;
  ASSERT_TRUE(store.put(BlockId(1), "a").is_ok());
  EXPECT_EQ(store.put(BlockId(1), "b").code(), StatusCode::kAlreadyExists);
}

TEST(BlockStoreTest, MissingBlock) {
  BlockStore store;
  EXPECT_EQ(store.get(BlockId(5)).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(store.contains(BlockId(5)));
}

TEST(BlockStoreTest, CorruptPayloadSurfacesAsDataLossNamingTheBlock) {
  BlockStore store;
  ASSERT_TRUE(store.put(BlockId(7), "precious bytes").is_ok());
  const std::uint32_t recorded = store.checksum(BlockId(7)).value();
  ASSERT_TRUE(store.corrupt_payload_for_test(BlockId(7)).is_ok());

  const auto got = store.get(BlockId(7));
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  // The loss must be attributable (s3lint status-dataloss): the message
  // names the block that failed verification.
  EXPECT_NE(got.status().message().find("block-7"), std::string::npos)
      << got.status().message();
  // The recorded write-time checksum is what the payload no longer matches.
  EXPECT_EQ(store.checksum(BlockId(7)).value(), recorded);
}

TEST(BlockStoreTest, ChecksumErrorsOnUnknownAndEmptyCorruption) {
  BlockStore store;
  EXPECT_EQ(store.checksum(BlockId(1)).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.corrupt_payload_for_test(BlockId(1)).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(store.put(BlockId(2), "").is_ok());
  EXPECT_EQ(store.corrupt_payload_for_test(BlockId(2)).code(),
            StatusCode::kFailedPrecondition);
}

PlacementTopology small_topology() {
  PlacementTopology topo;
  for (std::uint64_t n = 0; n < 6; ++n) {
    topo.nodes.push_back({NodeId(n), RackId(n / 2)});  // 3 racks of 2
  }
  return topo;
}

TEST(RoundRobinPlacementTest, SpreadsEvenly) {
  RoundRobinPlacement policy(small_topology());
  std::vector<int> counts(6, 0);
  for (std::uint64_t b = 0; b < 60; ++b) {
    const auto replicas = policy.place(b, 1);
    ASSERT_EQ(replicas.size(), 1u);
    ++counts[replicas[0].value()];
  }
  for (const int c : counts) EXPECT_EQ(c, 10);
}

TEST(RoundRobinPlacementTest, ReplicasDistinct) {
  RoundRobinPlacement policy(small_topology());
  const auto replicas = policy.place(4, 3);
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(std::set<NodeId>(replicas.begin(), replicas.end()).size(), 3u);
}

TEST(RoundRobinPlacementTest, ReplicationCappedAtClusterSize) {
  RoundRobinPlacement policy(small_topology());
  EXPECT_EQ(policy.place(0, 100).size(), 6u);
}

TEST(RackAwarePlacementTest, SecondReplicaOffRack) {
  const auto topo = small_topology();
  RackAwarePlacement policy(topo, 42);
  for (int trial = 0; trial < 50; ++trial) {
    const auto replicas = policy.place(0, 2);
    ASSERT_EQ(replicas.size(), 2u);
    const RackId r0 = topo.nodes[replicas[0].value()].rack;
    const RackId r1 = topo.nodes[replicas[1].value()].rack;
    EXPECT_NE(r0, r1);
  }
}

TEST(RackAwarePlacementTest, ThirdReplicaSameRackAsSecond) {
  const auto topo = small_topology();
  RackAwarePlacement policy(topo, 7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto replicas = policy.place(0, 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(std::set<NodeId>(replicas.begin(), replicas.end()).size(), 3u);
    EXPECT_EQ(topo.nodes[replicas[1].value()].rack,
              topo.nodes[replicas[2].value()].rack);
  }
}

TEST(CircularMathTest, NextAndDistance) {
  EXPECT_EQ(circular_next(0, 5), 1u);
  EXPECT_EQ(circular_next(4, 5), 0u);
  EXPECT_EQ(circular_distance(2, 2, 5), 0u);
  EXPECT_EQ(circular_distance(3, 1, 5), 3u);
  EXPECT_EQ(circular_distance(1, 3, 5), 2u);
}

TEST(SegmentMapTest, EvenSplit) {
  DfsNamespace ns;
  const FileId id = make_file(ns, "f", 12, ByteSize::kib(1));
  SegmentMap segments(ns.file(id), 4);
  EXPECT_EQ(segments.num_segments(), 3u);
  EXPECT_EQ(segments.total_blocks(), 12u);
  for (std::uint64_t s = 0; s < 3; ++s) {
    EXPECT_EQ(segments.segment(s).blocks.size(), 4u);
    EXPECT_EQ(segments.segment(s).index, s);
  }
}

TEST(SegmentMapTest, ShortFinalSegment) {
  DfsNamespace ns;
  const FileId id = make_file(ns, "f", 10, ByteSize::kib(1));
  SegmentMap segments(ns.file(id), 4);
  EXPECT_EQ(segments.num_segments(), 3u);
  EXPECT_EQ(segments.segment(2).blocks.size(), 2u);
}

TEST(SegmentMapTest, SegmentsPartitionTheFile) {
  DfsNamespace ns;
  const FileId id = make_file(ns, "f", 11, ByteSize::kib(1));
  SegmentMap segments(ns.file(id), 3);
  std::vector<BlockId> all;
  for (std::uint64_t s = 0; s < segments.num_segments(); ++s) {
    const auto& blocks = segments.segment(s).blocks;
    all.insert(all.end(), blocks.begin(), blocks.end());
  }
  EXPECT_EQ(all, ns.file(id).blocks);
}

TEST(SegmentMapTest, CircularOrderFromAnySegment) {
  DfsNamespace ns;
  const FileId id = make_file(ns, "f", 20, ByteSize::kib(1));
  SegmentMap segments(ns.file(id), 4);  // k = 5
  EXPECT_EQ(segments.circular_order(0), (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(segments.circular_order(3), (std::vector<std::uint64_t>{3, 4, 0, 1, 2}));
}

TEST(LineRecordReaderTest, SplitsLines) {
  auto payload = std::make_shared<const std::string>("one\ntwo\nthree\n");
  LineRecordReader reader(payload);
  Record r;
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.data, "one");
  EXPECT_EQ(r.offset, 0u);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.data, "two");
  EXPECT_EQ(r.offset, 4u);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.data, "three");
  EXPECT_FALSE(reader.next(r));
  EXPECT_EQ(reader.records_read(), 3u);
}

TEST(LineRecordReaderTest, NoTrailingNewline) {
  auto payload = std::make_shared<const std::string>("a\nb");
  LineRecordReader reader(payload);
  Record r;
  ASSERT_TRUE(reader.next(r));
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.data, "b");
  EXPECT_FALSE(reader.next(r));
}

TEST(LineRecordReaderTest, EmptyPayload) {
  auto payload = std::make_shared<const std::string>("");
  LineRecordReader reader(payload);
  Record r;
  EXPECT_FALSE(reader.next(r));
}

TEST(LineRecordReaderTest, EmptyLinesPreserved) {
  auto payload = std::make_shared<const std::string>("a\n\nb\n");
  LineRecordReader reader(payload);
  Record r;
  reader.next(r);
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.data, "");
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.data, "b");
}

TEST(LineRecordReaderTest, ResetRestarts) {
  auto payload = std::make_shared<const std::string>("x\ny\n");
  LineRecordReader reader(payload);
  Record r;
  reader.next(r);
  reader.reset();
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(r.data, "x");
  EXPECT_EQ(r.offset, 0u);
}

TEST(SharedScanReaderTest, OnePassManyConsumers) {
  auto payload = std::make_shared<const std::string>("a\nbb\nccc\n");
  SharedScanReader reader(payload);
  std::vector<std::string> seen1, seen2;
  reader.add_consumer([&](const Record& r) { seen1.emplace_back(r.data); });
  reader.add_consumer([&](const Record& r) { seen2.emplace_back(r.data); });
  EXPECT_EQ(reader.scan(), 3u);
  EXPECT_EQ(seen1, (std::vector<std::string>{"a", "bb", "ccc"}));
  EXPECT_EQ(seen1, seen2);
}

TEST(SharedScanReaderTest, PhysicalVsLogicalBytes) {
  auto payload = std::make_shared<const std::string>(std::string(1000, 'x'));
  SharedScanReader reader(payload);
  for (int i = 0; i < 5; ++i) reader.add_consumer([](const Record&) {});
  reader.scan();
  EXPECT_EQ(reader.bytes_physical(), 1000u);
  EXPECT_EQ(reader.bytes_logical(), 5000u);
  EXPECT_EQ(reader.num_consumers(), 5u);
}

TEST(SplitFieldsTest, TpchRow) {
  const auto fields = split_fields("1|22|333|4|", '|');
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "1");
  EXPECT_EQ(fields[2], "333");
  EXPECT_EQ(fields[4], "");
}

}  // namespace
}  // namespace s3::dfs
