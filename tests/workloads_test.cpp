// Tests for workload generators: synthetic text corpus, TPC-H lineitem,
// arrival patterns, job builders and paper presets.
#include <gtest/gtest.h>

#include <charconv>
#include <set>

#include "workloads/arrival.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/tpch.h"
#include "workloads/wordcount.h"

namespace s3::workloads {
namespace {

TEST(TextCorpusTest, DeterministicBlocks) {
  TextCorpusGenerator a, b;
  EXPECT_EQ(a.generate_block(3, ByteSize::kib(8)),
            b.generate_block(3, ByteSize::kib(8)));
  EXPECT_NE(a.generate_block(3, ByteSize::kib(8)),
            a.generate_block(4, ByteSize::kib(8)));
}

TEST(TextCorpusTest, SeedChangesContent) {
  TextCorpusOptions opts;
  opts.seed = 1;
  TextCorpusGenerator a(opts);
  opts.seed = 2;
  TextCorpusGenerator b(opts);
  EXPECT_NE(a.generate_block(0, ByteSize::kib(4)),
            b.generate_block(0, ByteSize::kib(4)));
}

TEST(TextCorpusTest, BlockSizeRespected) {
  TextCorpusGenerator corpus;
  const auto block = corpus.generate_block(0, ByteSize::kib(16));
  EXPECT_LE(block.size(), 16u * 1024);
  EXPECT_GT(block.size(), 15u * 1024);  // nearly full
  EXPECT_EQ(block.back(), '\n');
}

TEST(TextCorpusTest, VocabularyUniqueAndSized) {
  TextCorpusOptions opts;
  opts.vocabulary_size = 500;
  TextCorpusGenerator corpus(opts);
  const auto& vocab = corpus.vocabulary();
  EXPECT_EQ(vocab.size(), 500u);
  EXPECT_EQ(std::set<std::string>(vocab.begin(), vocab.end()).size(), 500u);
  for (const auto& word : vocab) {
    EXPECT_GE(word.size(), opts.min_word_len);
    EXPECT_LE(word.size(), opts.max_word_len);
  }
}

TEST(TextCorpusTest, ZipfHeadDominates) {
  TextCorpusGenerator corpus;
  const auto block = corpus.generate_block(0, ByteSize::kib(64));
  // The rank-0 word should appear far more often than a mid-rank word.
  const std::string& head = corpus.vocabulary()[0];
  const std::string& mid = corpus.vocabulary()[200];
  std::size_t head_count = 0, mid_count = 0, pos = 0;
  while ((pos = block.find(head, pos)) != std::string::npos) {
    ++head_count;
    pos += head.size();
  }
  pos = 0;
  while ((pos = block.find(mid, pos)) != std::string::npos) {
    ++mid_count;
    pos += mid.size();
  }
  EXPECT_GT(head_count, mid_count);
}

TEST(TextCorpusTest, GenerateFilePopulatesDfs) {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  dfs::PlacementTopology topo;
  topo.nodes.push_back({NodeId(0), RackId(0)});
  topo.nodes.push_back({NodeId(1), RackId(0)});
  dfs::RoundRobinPlacement placement(topo);
  TextCorpusGenerator corpus;
  auto file = corpus.generate_file(ns, store, placement, "f", 6,
                                   ByteSize::kib(4));
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ(ns.file(file.value()).num_blocks(), 6u);
  EXPECT_EQ(store.num_blocks(), 6u);
  for (const BlockId b : ns.file(file.value()).blocks) {
    EXPECT_EQ(ns.block(b).replicas.size(), 1u);
    EXPECT_TRUE(store.contains(b));
  }
}

TEST(LineitemTest, RowHas16Columns) {
  tpch::LineitemGenerator gen;
  const std::string row = gen.row(0);  // keep alive: fields view into it
  const auto fields = dfs::split_fields(row);
  EXPECT_EQ(fields.size(), static_cast<std::size_t>(tpch::kNumColumns));
}

TEST(LineitemTest, RowsDeterministic) {
  tpch::LineitemGenerator a(3), b(3), c(4);
  EXPECT_EQ(a.row(7), b.row(7));
  EXPECT_NE(a.row(7), c.row(7));
}

TEST(LineitemTest, OrderAndLineNumbers) {
  tpch::LineitemGenerator gen;
  const std::string r0 = gen.row(0);
  const std::string r5 = gen.row(5);
  const auto f0 = dfs::split_fields(r0);
  const auto f5 = dfs::split_fields(r5);
  EXPECT_EQ(f0[tpch::kOrderKey], "1");
  EXPECT_EQ(f0[tpch::kLineNumber], "1");
  EXPECT_EQ(f5[tpch::kOrderKey], "2");
  EXPECT_EQ(f5[tpch::kLineNumber], "2");
}

TEST(LineitemTest, QuantityUniformSelectivity) {
  // quantity <= 5 must select ~10 % of rows (quantity uniform 1..50).
  tpch::LineitemGenerator gen;
  int selected = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const std::string row = gen.row(static_cast<std::uint64_t>(i));
    const auto fields = dfs::split_fields(row);
    int quantity = 0;
    const auto q = fields[tpch::kQuantity];
    std::from_chars(q.data(), q.data() + q.size(), quantity);
    ASSERT_GE(quantity, 1);
    ASSERT_LE(quantity, 50);
    if (quantity <= 5) ++selected;
  }
  EXPECT_NEAR(static_cast<double>(selected) / n, 0.10, 0.02);
}

TEST(LineitemTest, BlocksHaveDisjointRows) {
  tpch::LineitemGenerator gen;
  const auto b0 = gen.generate_block(0, ByteSize::kib(4));
  const auto b1 = gen.generate_block(1, ByteSize::kib(4));
  // First row of block 1 differs from any row of block 0 (disjoint ranges).
  const auto first_row = b1.substr(0, b1.find('\n'));
  EXPECT_EQ(b0.find(first_row), std::string::npos);
}

TEST(SelectionMapperTest, FiltersByQuantity) {
  tpch::LineitemGenerator gen;
  tpch::SelectionMapper mapper(5);
  std::vector<engine::KeyValue> out;
  class Collect final : public engine::Emitter {
   public:
    explicit Collect(std::vector<engine::KeyValue>& o) : out_(&o) {}
    void emit(std::string_view k, std::string_view v) override {
      out_->push_back({std::string(k), std::string(v)});
    }
   private:
    std::vector<engine::KeyValue>* out_;
  } collect(out);

  int expected = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::string row = gen.row(i);
    const auto fields = dfs::split_fields(row);
    int quantity = 0;
    std::from_chars(fields[tpch::kQuantity].data(),
                    fields[tpch::kQuantity].data() + fields[tpch::kQuantity].size(),
                    quantity);
    if (quantity <= 5) ++expected;
    dfs::Record record{0, row};
    mapper.map(record, collect);
  }
  EXPECT_EQ(out.size(), static_cast<std::size_t>(expected));
}

TEST(SelectionMapperTest, IgnoresMalformedRows) {
  tpch::SelectionMapper mapper(5);
  class Fail final : public engine::Emitter {
   public:
    void emit(std::string_view, std::string_view) override {
      FAIL() << "no emit";
    }
  } collect;
  mapper.map(dfs::Record{0, "not|a|lineitem"}, collect);
  mapper.map(dfs::Record{0, ""}, collect);
  mapper.map(dfs::Record{0, "a|b|c|d|xx|f|g|h|i|j|k|l|m|n|o|p"}, collect);
}

TEST(WordCountMapperTest, PrefixFilter) {
  PatternWordCountMapper mapper("th");
  std::vector<engine::KeyValue> out;
  class Collect final : public engine::Emitter {
   public:
    explicit Collect(std::vector<engine::KeyValue>& o) : out_(&o) {}
    void emit(std::string_view k, std::string_view v) override {
      out_->push_back({std::string(k), std::string(v)});
    }
   private:
    std::vector<engine::KeyValue>* out_;
  } collect(out);
  mapper.map(dfs::Record{0, "the quick thorn  tree th"}, collect);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key, "the");
  EXPECT_EQ(out[1].key, "thorn");
  EXPECT_EQ(out[2].key, "th");
}

TEST(WordCountMapperTest, EmptyPrefixMatchesAll) {
  PatternWordCountMapper mapper("");
  int count = 0;
  class Count final : public engine::Emitter {
   public:
    explicit Count(int& c) : c_(&c) {}
    void emit(std::string_view, std::string_view) override { ++*c_; }
   private:
    int* c_;
  } collect(count);
  mapper.map(dfs::Record{0, "a b c"}, collect);
  EXPECT_EQ(count, 3);
}

TEST(SumReducerTest, SumsValues) {
  SumReducer reducer;
  std::vector<engine::KeyValue> out;
  class Collect final : public engine::Emitter {
   public:
    explicit Collect(std::vector<engine::KeyValue>& o) : out_(&o) {}
    void emit(std::string_view k, std::string_view v) override {
      out_->push_back({std::string(k), std::string(v)});
    }
   private:
    std::vector<engine::KeyValue>* out_;
  } collect(out);
  reducer.reduce("word", {"1", "2", "30"}, collect);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, "33");
}

TEST(HeavyMapperTest, AmplifiesOutput) {
  HeavyWordCountMapper mapper(3);
  int count = 0;
  class Count final : public engine::Emitter {
   public:
    explicit Count(int& c) : c_(&c) {}
    void emit(std::string_view, std::string_view) override { ++*c_; }
   private:
    int* c_;
  } collect(count);
  mapper.map(dfs::Record{0, "x y"}, collect);
  EXPECT_EQ(count, 6);  // 2 words x 3 amplification
}

TEST(ArrivalTest, DensePattern) {
  const auto arrivals = dense_pattern(4, 3.0);
  EXPECT_EQ(arrivals, (std::vector<SimTime>{0.0, 3.0, 6.0, 9.0}));
}

TEST(ArrivalTest, SparseGroups) {
  const auto arrivals = sparse_groups({2, 3}, 100.0, 10.0);
  EXPECT_EQ(arrivals,
            (std::vector<SimTime>{0.0, 10.0, 100.0, 110.0, 120.0}));
}

TEST(ArrivalTest, PoissonSortedAndSized) {
  Rng rng(5);
  const auto arrivals = poisson_pattern(50, 20.0, rng);
  EXPECT_EQ(arrivals.size(), 50u);
  EXPECT_DOUBLE_EQ(arrivals[0], 0.0);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

TEST(SuiteTest, PaperSetupScales) {
  const auto s64 = make_paper_setup(64.0);
  EXPECT_EQ(s64.wordcount_blocks, 2560u);
  EXPECT_EQ(s64.lineitem_blocks, 6400u);
  EXPECT_EQ(s64.default_segment_blocks(), 320u);
  const auto s128 = make_paper_setup(128.0);
  EXPECT_EQ(s128.wordcount_blocks, 1280u);
  EXPECT_EQ(s128.default_segment_blocks(), 160u);
  EXPECT_EQ(s64.topology.num_nodes(), 40u);
  EXPECT_TRUE(s64.catalog.contains(s64.wordcount_file));
  EXPECT_TRUE(s64.catalog.contains(s64.lineitem_file));
}

TEST(SuiteTest, MakeSimJobsAssignsIdsAndArrivals) {
  const auto setup = make_paper_setup(64.0);
  const auto jobs = make_sim_jobs(setup.wordcount_file, {0.0, 5.0},
                                  sim::WorkloadCost::wordcount_heavy(), "wc");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, JobId(0));
  EXPECT_EQ(jobs[1].id, JobId(1));
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 5.0);
  EXPECT_EQ(jobs[0].cost.class_name, "wordcount-heavy");
  EXPECT_EQ(jobs[1].label, "wc-1");
}

TEST(SuiteTest, SchedulerFactories) {
  const auto setup = make_paper_setup(64.0);
  EXPECT_EQ(make_fifo(setup.catalog)->name(), "FIFO");
  EXPECT_EQ(make_mrs1(setup.catalog)->name(), "MRS1");
  EXPECT_EQ(make_mrs2(setup.catalog)->name(), "MRS2");
  EXPECT_EQ(make_mrs3(setup.catalog)->name(), "MRS3");
  EXPECT_EQ(make_s3(setup.catalog, setup.topology, 320)->name(), "S3");
}

}  // namespace
}  // namespace s3::workloads
