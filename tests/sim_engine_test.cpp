// Tests for the discrete-event simulator driving the three schedulers.
#include <gtest/gtest.h>

#include "workloads/arrival.h"
#include "workloads/suite.h"

namespace s3::sim {
namespace {

using workloads::make_sim_jobs;

struct Fixture {
  workloads::PaperSetup setup = workloads::make_paper_setup(64.0);

  RunResult run(sched::Scheduler& scheduler, const std::vector<SimJob>& jobs,
                SimConfig config = {}) {
    config.cost = setup.cost;
    SimEngine engine(setup.topology, setup.catalog, config);
    auto result = engine.run(scheduler, jobs);
    EXPECT_TRUE(result.is_ok()) << result.status();
    return std::move(result).value();
  }
};

TEST(SimEngineTest, SingleJobDuration) {
  Fixture f;
  auto fifo = workloads::make_fifo(f.setup.catalog);
  const auto result = f.run(*fifo, make_sim_jobs(f.setup.wordcount_file, {0.0},
                                                 WorkloadCost::wordcount_normal()));
  // One whole-file job: TET ≈ launch + 64 waves + reduce tail ≈ 272 s,
  // calibrated against the paper's ~240 s.
  EXPECT_NEAR(result.summary.tet, 272.0, 15.0);
  EXPECT_DOUBLE_EQ(result.summary.art, result.summary.tet);
  EXPECT_EQ(result.batches.size(), 1u);
  EXPECT_EQ(result.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.jobs[0].waiting_time().value(), 0.0);
}

TEST(SimEngineTest, FifoSerializesJobs) {
  Fixture f;
  auto fifo = workloads::make_fifo(f.setup.catalog);
  const auto result = f.run(
      *fifo, make_sim_jobs(f.setup.wordcount_file, {0.0, 0.0, 0.0},
                           WorkloadCost::wordcount_normal()));
  EXPECT_EQ(result.batches.size(), 3u);
  // Completions are strictly increasing; TET ~ 3x a single job.
  EXPECT_NEAR(result.summary.tet, 3.0 * 272.0, 40.0);
  EXPECT_GT(result.jobs[2].waiting_time().value(), result.jobs[1].waiting_time().value());
}

TEST(SimEngineTest, Mrs1BatchesEverythingOnce) {
  Fixture f;
  auto mrs1 = workloads::make_mrs1(f.setup.catalog);
  const auto result = f.run(
      *mrs1, make_sim_jobs(f.setup.wordcount_file, {0.0, 10.0, 20.0},
                           WorkloadCost::wordcount_normal()));
  EXPECT_EQ(result.batches.size(), 1u);
  EXPECT_EQ(result.batches[0].members, 3u);
  // Batch starts only after the last arrival.
  EXPECT_GE(result.batches[0].launched, 20.0);
  // All jobs complete together.
  EXPECT_DOUBLE_EQ(result.jobs[0].completed, result.jobs[2].completed);
}

TEST(SimEngineTest, S3JobRunsKSubJobs) {
  Fixture f;
  auto s3 = workloads::make_s3(f.setup.catalog, f.setup.topology,
                               f.setup.default_segment_blocks());
  const auto result = f.run(*s3, make_sim_jobs(f.setup.wordcount_file, {0.0},
                                               WorkloadCost::wordcount_normal()));
  EXPECT_EQ(result.batches.size(), 8u);  // k = 8 segments
  // The per-sub-job launch overhead makes a solo S3 job slower than FIFO.
  EXPECT_GT(result.summary.tet, 272.0);
  EXPECT_LT(result.summary.tet, 272.0 + 8 * 5.0);
}

TEST(SimEngineTest, S3LateJobStartsQuickly) {
  Fixture f;
  auto s3 = workloads::make_s3(f.setup.catalog, f.setup.topology,
                               f.setup.default_segment_blocks());
  const auto result = f.run(
      *s3, make_sim_jobs(f.setup.wordcount_file, {0.0, 100.0},
                         WorkloadCost::wordcount_normal()));
  // Job 1 waits at most one sub-job's duration (~38 s), not a whole job.
  EXPECT_LT(result.jobs[1].waiting_time().value(), 45.0);
  // And both jobs see every block: 8 + wrap segments.
  EXPECT_GT(result.batches.size(), 8u);
}

TEST(SimEngineTest, SparseOrderingMatchesPaper) {
  Fixture f;
  const auto jobs = make_sim_jobs(f.setup.wordcount_file,
                                  workloads::paper_sparse_arrivals(),
                                  WorkloadCost::wordcount_normal());
  auto fifo = workloads::make_fifo(f.setup.catalog);
  auto mrs1 = workloads::make_mrs1(f.setup.catalog);
  auto s3 = workloads::make_s3(f.setup.catalog, f.setup.topology,
                               f.setup.default_segment_blocks());
  const auto r_fifo = f.run(*fifo, jobs);
  const auto r_mrs1 = f.run(*mrs1, jobs);
  const auto r_s3 = f.run(*s3, jobs);

  // Headline result: S3 keeps both TET and ART lowest.
  EXPECT_LT(r_s3.summary.tet, r_fifo.summary.tet);
  EXPECT_LT(r_s3.summary.tet, r_mrs1.summary.tet);
  EXPECT_LT(r_s3.summary.art, r_fifo.summary.art);
  EXPECT_LT(r_s3.summary.art, r_mrs1.summary.art);
  // And its mean waiting time is far smaller than any batching scheme's.
  EXPECT_LT(r_s3.summary.mean_waiting, r_mrs1.summary.mean_waiting / 4.0);
}

TEST(SimEngineTest, DensePatternFavoursMrs1) {
  Fixture f;
  const auto jobs = make_sim_jobs(f.setup.wordcount_file,
                                  workloads::paper_dense_arrivals(),
                                  WorkloadCost::wordcount_normal());
  auto mrs1 = workloads::make_mrs1(f.setup.catalog);
  auto s3 = workloads::make_s3(f.setup.catalog, f.setup.topology,
                               f.setup.default_segment_blocks());
  const auto r_mrs1 = f.run(*mrs1, jobs);
  const auto r_s3 = f.run(*s3, jobs);
  EXPECT_LT(r_mrs1.summary.tet, r_s3.summary.tet);  // paper §V-D
}

TEST(SimEngineTest, TimeWindowSchedulerWakesItself) {
  Fixture f;
  sched::MRShareScheduler window(f.setup.catalog, sched::TimeWindow{50.0},
                                 "MRS-W");
  const auto result = f.run(
      window, make_sim_jobs(f.setup.wordcount_file, {0.0, 10.0},
                            WorkloadCost::wordcount_normal()));
  EXPECT_EQ(result.batches.size(), 1u);
  EXPECT_DOUBLE_EQ(result.batches[0].launched, 50.0);
}

TEST(SimEngineTest, SpeedChangeSlowsBatches) {
  Fixture f;
  const auto jobs = make_sim_jobs(f.setup.wordcount_file, {0.0},
                                  WorkloadCost::wordcount_normal());
  SimConfig slow;
  for (std::uint64_t n = 0; n < 40; ++n) {
    slow.speed_changes.push_back(SpeedChange{0.0, NodeId(n), 2.0});
  }
  auto fifo_a = workloads::make_fifo(f.setup.catalog);
  auto fifo_b = workloads::make_fifo(f.setup.catalog);
  const auto nominal = f.run(*fifo_a, jobs);
  const auto slowed = f.run(*fifo_b, jobs, slow);
  EXPECT_GT(slowed.summary.tet, 1.8 * nominal.summary.tet - 20.0);
}

TEST(SimEngineTest, SlotCheckingImprovesStragglerRuns) {
  Fixture f;
  const auto jobs = make_sim_jobs(f.setup.wordcount_file,
                                  workloads::paper_sparse_arrivals(),
                                  WorkloadCost::wordcount_normal());
  // 12x stragglers: one straggler task (~43 s) exceeds a whole healthy
  // wave's makespan (~36 s), so excluding them must shorten every batch.
  SimConfig with, without;
  for (int i = 0; i < 6; ++i) {
    const SpeedChange change{30.0, NodeId(static_cast<std::uint64_t>(i)),
                             12.0};
    with.speed_changes.push_back(change);
    without.speed_changes.push_back(change);
  }
  without.enable_progress_reports = false;

  auto s3_a = workloads::make_s3(f.setup.catalog, f.setup.topology,
                                 f.setup.default_segment_blocks());
  auto s3_b = workloads::make_s3(f.setup.catalog, f.setup.topology,
                                 f.setup.default_segment_blocks());
  const auto checked = f.run(*s3_a, jobs, with);
  const auto unchecked = f.run(*s3_b, jobs, without);
  EXPECT_LT(checked.summary.tet, unchecked.summary.tet);
}

TEST(SimEngineTest, EmptyWorkloadRejected) {
  Fixture f;
  auto fifo = workloads::make_fifo(f.setup.catalog);
  SimConfig config;
  config.cost = f.setup.cost;
  SimEngine engine(f.setup.topology, f.setup.catalog, config);
  EXPECT_FALSE(engine.run(*fifo, {}).is_ok());
}

TEST(SimEngineTest, DuplicateJobIdsRejected) {
  Fixture f;
  auto fifo = workloads::make_fifo(f.setup.catalog);
  SimConfig config;
  config.cost = f.setup.cost;
  SimEngine engine(f.setup.topology, f.setup.catalog, config);
  auto jobs = make_sim_jobs(f.setup.wordcount_file, {0.0, 1.0},
                            WorkloadCost::wordcount_normal());
  jobs[1].id = jobs[0].id;
  EXPECT_FALSE(engine.run(*fifo, jobs).is_ok());
}

TEST(SimEngineTest, TraceAccountingConsistent) {
  Fixture f;
  auto s3 = workloads::make_s3(f.setup.catalog, f.setup.topology,
                               f.setup.default_segment_blocks());
  const auto result = f.run(
      *s3, make_sim_jobs(f.setup.wordcount_file, {0.0, 50.0},
                         WorkloadCost::wordcount_normal()));
  std::size_t completed = 0;
  for (const auto& batch : result.batches) {
    EXPECT_GE(batch.finished, batch.launched);
    EXPECT_GT(batch.members, 0u);
    completed += batch.completed_jobs;
  }
  EXPECT_EQ(completed, 2u);
  EXPECT_EQ(result.trace_stats.total_batches, result.batches.size());
  EXPECT_GT(result.trace_stats.avg_members, 1.0);
  EXPECT_FALSE(batches_to_csv(result.batches).empty());
}

TEST(SimEngineTest, EngineIsReusableAcrossRuns) {
  Fixture f;
  SimConfig config;
  config.cost = f.setup.cost;
  SimEngine engine(f.setup.topology, f.setup.catalog, config);
  const auto jobs = make_sim_jobs(f.setup.wordcount_file, {0.0},
                                  WorkloadCost::wordcount_normal());
  auto fifo_a = workloads::make_fifo(f.setup.catalog);
  auto fifo_b = workloads::make_fifo(f.setup.catalog);
  const auto first = engine.run(*fifo_a, jobs);
  const auto second = engine.run(*fifo_b, jobs);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_DOUBLE_EQ(first.value().summary.tet, second.value().summary.tet);
}

}  // namespace
}  // namespace s3::sim
