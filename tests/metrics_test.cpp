// Tests for the TET/ART metrics and the report writers.
#include <gtest/gtest.h>

#include "metrics/jsonl.h"
#include "metrics/metrics.h"
#include "metrics/report.h"

namespace s3::metrics {
namespace {

TEST(JobTimelineTest, BasicLifecycle) {
  JobTimeline timeline;
  timeline.on_submitted(JobId(0), 5.0);
  timeline.on_first_started(JobId(0), 8.0);
  timeline.on_completed(JobId(0), 20.0);
  const auto& r = timeline.record(JobId(0));
  EXPECT_TRUE(r.done());
  EXPECT_DOUBLE_EQ(r.response_time(), 15.0);
  EXPECT_DOUBLE_EQ(r.waiting_time().value(), 3.0);
  EXPECT_TRUE(timeline.all_done());
}

TEST(JobTimelineTest, FirstStartIdempotent) {
  JobTimeline timeline;
  timeline.on_submitted(JobId(0), 0.0);
  timeline.on_first_started(JobId(0), 2.0);
  timeline.on_first_started(JobId(0), 9.0);  // later batches ignored
  timeline.on_completed(JobId(0), 10.0);
  EXPECT_DOUBLE_EQ(timeline.record(JobId(0)).waiting_time().value(), 2.0);
}

TEST(JobTimelineTest, CompletionWithoutStartBackfills) {
  JobTimeline timeline;
  timeline.on_submitted(JobId(0), 1.0);
  timeline.on_completed(JobId(0), 4.0);
  EXPECT_DOUBLE_EQ(timeline.record(JobId(0)).waiting_time().value(), 3.0);
}

TEST(JobTimelineTest, RecordsSortedBySubmission) {
  JobTimeline timeline;
  timeline.on_submitted(JobId(2), 10.0);
  timeline.on_submitted(JobId(0), 5.0);
  timeline.on_submitted(JobId(1), 5.0);
  for (std::uint64_t j = 0; j < 3; ++j) {
    timeline.on_completed(JobId(j), 30.0);
  }
  const auto records = timeline.records();
  EXPECT_EQ(records[0].id, JobId(0));  // tie broken by id
  EXPECT_EQ(records[1].id, JobId(1));
  EXPECT_EQ(records[2].id, JobId(2));
}

TEST(SummarizeTest, PaperDefinitionOfTetAndArt) {
  // Example 1 numbers: arrivals {0, 20}, completions {100, 200} (FIFO).
  JobTimeline timeline;
  timeline.on_submitted(JobId(0), 0.0);
  timeline.on_submitted(JobId(1), 20.0);
  timeline.on_completed(JobId(0), 100.0);
  timeline.on_completed(JobId(1), 200.0);
  const auto summary = summarize(timeline);
  EXPECT_EQ(summary.num_jobs, 2u);
  EXPECT_DOUBLE_EQ(summary.tet, 200.0);
  EXPECT_DOUBLE_EQ(summary.art, 140.0);
  EXPECT_DOUBLE_EQ(summary.max_response, 180.0);
}

TEST(SummarizeTest, NonZeroFirstSubmission) {
  JobTimeline timeline;
  timeline.on_submitted(JobId(0), 100.0);
  timeline.on_completed(JobId(0), 160.0);
  const auto summary = summarize(timeline);
  EXPECT_DOUBLE_EQ(summary.tet, 60.0);  // relative to first submission
  EXPECT_FALSE(summary.to_string().empty());
}

TEST(TableWriterTest, RendersAlignedTable) {
  TableWriter table({"a", "long header"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| a   |"), std::string::npos);
  EXPECT_NE(out.find("| 333 |"), std::string::npos);
  EXPECT_NE(out.find("long header"), std::string::npos);
}

TEST(TableWriterTest, CsvEscapesNothingButJoins) {
  TableWriter table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.render_csv(), "x,y\n1,2\n");
}

TEST(ComparisonTableTest, NormalizesToBaseline) {
  ComparisonTable table;
  MetricsSummary s3;
  s3.num_jobs = 10;
  s3.tet = 100.0;
  s3.art = 50.0;
  MetricsSummary fifo = s3;
  fifo.tet = 220.0;
  fifo.art = 125.0;
  table.add("S3", s3);
  table.add("FIFO", fifo);
  const std::string out = table.render("S3");
  EXPECT_NE(out.find("2.20"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_DOUBLE_EQ(table.summary_for("FIFO").tet, 220.0);
  const std::string csv = table.render_csv("S3");
  EXPECT_NE(csv.find("2.2000"), std::string::npos);
}

TEST(JsonTest, EscapesSpecials) {
  EXPECT_EQ(JsonObject::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonObject::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, ObjectRendering) {
  JsonObject obj;
  obj.field("name", std::string("s3"))
      .field("tet", 1.5)
      .field("jobs", std::uint64_t{10})
      .field("ok", true);
  EXPECT_EQ(obj.str(), R"({"name":"s3","tet":1.5,"jobs":10,"ok":true})");
}

TEST(JsonTest, JobsToJsonl) {
  JobTimeline timeline;
  timeline.on_submitted(JobId(0), 1.0);
  timeline.on_first_started(JobId(0), 2.0);
  timeline.on_completed(JobId(0), 5.0);
  const std::string lines = jobs_to_jsonl(timeline.records());
  EXPECT_NE(lines.find("\"job\":0"), std::string::npos);
  EXPECT_NE(lines.find("\"response\":4"), std::string::npos);
  EXPECT_NE(lines.find("\"waiting\":1"), std::string::npos);
  EXPECT_EQ(lines.back(), '\n');
}

TEST(JsonTest, SummaryToJson) {
  MetricsSummary s;
  s.num_jobs = 3;
  s.tet = 100.5;
  s.art = 50.25;
  const std::string line = summary_to_json(s, "S3");
  EXPECT_NE(line.find("\"label\":\"S3\""), std::string::npos);
  EXPECT_NE(line.find("\"tet\":100.5"), std::string::npos);
  EXPECT_NE(line.find("\"jobs\":3"), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

}  // namespace
}  // namespace s3::metrics
