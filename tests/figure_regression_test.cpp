// Calibration regression tests: the headline orderings and ratios of the
// paper's figures must survive refactors of the cost model or schedulers.
// These run the actual figure configurations (paper scale, in the simulator)
// and pin the qualitative results EXPERIMENTS.md reports.
#include <gtest/gtest.h>

#include "workloads/arrival.h"
#include "workloads/suite.h"

namespace s3 {
namespace {

struct FigureRunner {
  workloads::PaperSetup setup;
  std::vector<sim::SimJob> jobs;

  explicit FigureRunner(double block_mb,
                        const std::vector<SimTime>& arrivals,
                        sim::WorkloadCost cost)
      : setup(workloads::make_paper_setup(block_mb)),
        jobs(workloads::make_sim_jobs(setup.wordcount_file, arrivals, cost)) {}

  metrics::MetricsSummary run(const std::string& scheme) {
    std::unique_ptr<sched::Scheduler> scheduler;
    if (scheme == "fifo") {
      scheduler = workloads::make_fifo(setup.catalog);
    } else if (scheme == "mrs1") {
      scheduler = workloads::make_mrs1(setup.catalog);
    } else if (scheme == "mrs2") {
      scheduler = workloads::make_mrs2(setup.catalog);
    } else if (scheme == "mrs3") {
      scheduler = workloads::make_mrs3(setup.catalog);
    } else {
      scheduler = workloads::make_s3(setup.catalog, setup.topology,
                                     setup.default_segment_blocks());
    }
    sim::SimConfig config;
    config.cost = setup.cost;
    sim::SimEngine engine(setup.topology, setup.catalog, config);
    auto result = engine.run(*scheduler, jobs);
    EXPECT_TRUE(result.is_ok()) << result.status();
    return result.value().summary;
  }
};

TEST(FigureRegressionTest, Fig4aSparseOrderings) {
  FigureRunner fig(64.0, workloads::paper_sparse_arrivals(),
                   sim::WorkloadCost::wordcount_normal());
  const auto s3 = fig.run("s3");
  const auto fifo = fig.run("fifo");
  const auto mrs1 = fig.run("mrs1");
  const auto mrs2 = fig.run("mrs2");
  const auto mrs3 = fig.run("mrs3");

  // S3 wins both metrics; MRShare within the paper's 1.03-1.32x TET band.
  for (const auto* other : {&fifo, &mrs1, &mrs2, &mrs3}) {
    EXPECT_GT(other->tet, s3.tet);
    EXPECT_GT(other->art, s3.art);
  }
  for (const auto* mrs : {&mrs1, &mrs2, &mrs3}) {
    EXPECT_LT(mrs->tet / s3.tet, 1.35);
  }
  EXPECT_GT(fifo.tet / s3.tet, 2.0);  // paper: 2.2x
  EXPECT_GT(fifo.art / s3.art, 2.0);  // paper: 2.5x
  // MRS1 has the worst ART among the MRShare variants.
  EXPECT_GT(mrs1.art, mrs2.art);
  EXPECT_GT(mrs1.art, mrs3.art);
}

TEST(FigureRegressionTest, Fig4bDenseOrderings) {
  FigureRunner fig(64.0, workloads::paper_dense_arrivals(),
                   sim::WorkloadCost::wordcount_normal());
  const auto s3 = fig.run("s3");
  const auto mrs1 = fig.run("mrs1");
  const auto mrs3 = fig.run("mrs3");
  const auto fifo = fig.run("fifo");

  EXPECT_LT(mrs1.tet, s3.tet);  // paper: MRS1 beats S3 when dense
  EXPECT_GT(mrs3.tet / s3.tet, 1.8);  // paper: "more than 3x" — ours ~2x
  EXPECT_GT(fifo.tet / s3.tet, 5.0);
}

TEST(FigureRegressionTest, FifoUnchangedAcrossPatterns) {
  // Paper §V-D: "For FIFO, both TET and ART do not change much" between
  // sparse and dense; TET is identical (pure serialization).
  FigureRunner sparse(64.0, workloads::paper_sparse_arrivals(),
                      sim::WorkloadCost::wordcount_normal());
  FigureRunner dense(64.0, workloads::paper_dense_arrivals(),
                     sim::WorkloadCost::wordcount_normal());
  EXPECT_NEAR(sparse.run("fifo").tet, dense.run("fifo").tet, 1e-6);
}

TEST(FigureRegressionTest, BlockSizeOrdering) {
  // Paper §V-F: 128 MB fastest, 32 MB slowest, for every scheme.
  for (const char* scheme : {"s3", "fifo"}) {
    double tet[3];
    int i = 0;
    for (const double block_mb : {32.0, 64.0, 128.0}) {
      FigureRunner fig(block_mb, workloads::paper_sparse_arrivals(),
                       sim::WorkloadCost::wordcount_normal());
      tet[i++] = fig.run(scheme).tet;
    }
    EXPECT_GT(tet[0], tet[1]) << scheme;  // 32 slower than 64
    EXPECT_GT(tet[1], tet[2]) << scheme;  // 64 slower than 128
  }
}

TEST(FigureRegressionTest, HeavyWorkloadRatio) {
  // Paper: S3's heavy-workload TET ~1.4x its normal-workload TET.
  FigureRunner normal(64.0, workloads::paper_sparse_arrivals(),
                      sim::WorkloadCost::wordcount_normal());
  FigureRunner heavy(64.0, workloads::paper_sparse_arrivals(),
                     sim::WorkloadCost::wordcount_heavy());
  const double ratio = heavy.run("s3").tet / normal.run("s3").tet;
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 1.6);
}

TEST(FigureRegressionTest, SelectionWorkloadOrderings) {
  const auto setup = workloads::make_paper_setup(64.0);
  const auto arrivals =
      workloads::sparse_groups({3, 3, 4}, 400.0, 66.0);
  const auto jobs = workloads::make_sim_jobs(
      setup.lineitem_file, arrivals, sim::WorkloadCost::tpch_selection());
  const auto run = [&](std::unique_ptr<sched::Scheduler> scheduler) {
    sim::SimConfig config;
    config.cost = setup.cost;
    sim::SimEngine engine(setup.topology, setup.catalog, config);
    return engine.run(*scheduler, jobs).value().summary;
  };
  const auto s3 = run(workloads::make_s3(setup.catalog, setup.topology,
                                         setup.lineitem_blocks / 8));
  const auto fifo = run(workloads::make_fifo(setup.catalog));
  const auto mrs1 = run(workloads::make_mrs1(setup.catalog));
  EXPECT_LT(s3.tet, fifo.tet);
  EXPECT_LT(s3.tet, mrs1.tet);
  EXPECT_LT(s3.art, mrs1.art);
  EXPECT_GT(fifo.art / s3.art, 3.0);  // long jobs make blocking brutal
}

}  // namespace
}  // namespace s3
