// Unit tests for the flat record batch (KVBatch) and the grouping primitives
// of the overhauled data path: hash_group (in-map combining) and
// merge_runs_and_group (sorted-run shuffle), each checked against the legacy
// sort_and_group oracle on randomized data.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/kv.h"
#include "engine/kv_batch.h"
#include "engine/shuffle.h"

namespace s3::engine {
namespace {

TEST(KVBatchTest, EmptyBatch) {
  KVBatch batch;
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(batch.payload_bytes(), 0u);
  EXPECT_TRUE(batch.sorted_by_key());  // trivially
  batch.sort_by_key();                 // no-op, must not crash
  EXPECT_EQ(hash_group(batch,
                       [](std::string_view,
                          const std::vector<std::string_view>&) {
                         FAIL() << "no groups expected";
                       }),
            0u);
}

TEST(KVBatchTest, SingleRecord) {
  KVBatch batch;
  batch.append("key", "value");
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.key(0), "key");
  EXPECT_EQ(batch.value(0), "value");
  EXPECT_EQ(batch.payload_bytes(), 8u);
  EXPECT_TRUE(batch.sorted_by_key());
}

TEST(KVBatchTest, EmptyKeysAndValues) {
  KVBatch batch;
  batch.append("", "v");
  batch.append("k", "");
  batch.append("", "");
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.key(0), "");
  EXPECT_EQ(batch.value(0), "v");
  EXPECT_EQ(batch.key(1), "k");
  EXPECT_EQ(batch.value(1), "");
  EXPECT_EQ(batch.key(2), "");
  EXPECT_EQ(batch.value(2), "");

  // Grouping must treat the two empty keys as one group.
  std::vector<std::string> keys;
  std::vector<std::size_t> sizes;
  const auto groups = hash_group(
      batch, [&](std::string_view key,
                 const std::vector<std::string_view>& values) {
        keys.emplace_back(key);
        sizes.push_back(values.size());
      });
  EXPECT_EQ(groups, 2u);
  EXPECT_EQ(keys, (std::vector<std::string>{"", "k"}));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 1}));
}

TEST(KVBatchTest, ArenaGrowthAcrossAppendsKeepsAllRecords) {
  // Force many arena reallocations; offset-based accessors must stay correct.
  KVBatch batch;
  constexpr int kRecords = 5000;
  for (int i = 0; i < kRecords; ++i) {
    const std::string key = "key-" + std::to_string(i % 97);
    const std::string value(static_cast<std::size_t>(1 + i % 31), 'v');
    batch.append(key, value);
  }
  ASSERT_EQ(batch.size(), static_cast<std::size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(batch.key(static_cast<std::size_t>(i)),
              "key-" + std::to_string(i % 97));
    EXPECT_EQ(batch.value(static_cast<std::size_t>(i)).size(),
              static_cast<std::size_t>(1 + i % 31));
  }
}

TEST(KVBatchTest, SortByKeyIsStable) {
  KVBatch batch;
  batch.append("b", "1");
  batch.append("a", "2");
  batch.append("b", "3");
  batch.append("a", "4");
  batch.sort_by_key();
  ASSERT_TRUE(batch.sorted_by_key());
  EXPECT_EQ(batch.key(0), "a");
  EXPECT_EQ(batch.value(0), "2");
  EXPECT_EQ(batch.value(1), "4");  // append order preserved within "a"
  EXPECT_EQ(batch.key(2), "b");
  EXPECT_EQ(batch.value(2), "1");
  EXPECT_EQ(batch.value(3), "3");
}

TEST(KVBatchTest, AppendAfterSortClearsSortedFlag) {
  KVBatch batch;
  batch.append("b", "1");
  batch.append("a", "2");
  batch.sort_by_key();
  EXPECT_TRUE(batch.sorted_by_key());
  batch.append("0", "3");
  EXPECT_FALSE(batch.sorted_by_key());
}

// Collects grouping output as key -> concatenated values for comparison.
using GroupMap = std::map<std::string, std::vector<std::string>>;

GroupMap oracle_groups(const KVBatch& batch) {
  std::vector<KeyValue> records;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    records.push_back(
        KeyValue{std::string(batch.key(i)), std::string(batch.value(i))});
  }
  GroupMap out;
  sort_and_group(std::move(records),
                 [&](const std::string& key,
                     const std::vector<std::string>& values) {
                   out[key] = values;
                 });
  return out;
}

KVBatch random_batch(Rng& rng, std::size_t records, std::uint64_t key_space) {
  KVBatch batch;
  for (std::size_t i = 0; i < records; ++i) {
    batch.append("k" + std::to_string(rng.uniform_u64(key_space)),
                 std::to_string(rng.uniform_u64(1000)));
  }
  return batch;
}

TEST(HashGroupTest, MatchesSortOracleOnRandomData) {
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const KVBatch batch = random_batch(rng, 500 + rng.uniform_u64(1500),
                                       1 + rng.uniform_u64(200));
    GroupMap got;
    const auto groups = hash_group(
        batch, [&](std::string_view key,
                   const std::vector<std::string_view>& values) {
          auto& slot = got[std::string(key)];
          for (const auto v : values) slot.emplace_back(v);
        });
    GroupMap want = oracle_groups(batch);
    EXPECT_EQ(groups, want.size());
    // Value order within a key differs (the oracle's std::sort is unstable);
    // the value multiset per key must match exactly.
    for (auto& [k, v] : got) std::sort(v.begin(), v.end());
    for (auto& [k, v] : want) std::sort(v.begin(), v.end());
    EXPECT_EQ(got, want);
  }
}

TEST(MergeRunsTest, MatchesSortOracleOnRandomRuns) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t num_runs = 1 + rng.uniform_u64(6);
    std::vector<KVBatch> runs;
    KVBatch all;  // same records, one flat batch, for the oracle
    for (std::size_t r = 0; r < num_runs; ++r) {
      KVBatch run = random_batch(rng, rng.uniform_u64(400),
                                 1 + rng.uniform_u64(50));
      for (std::size_t i = 0; i < run.size(); ++i) {
        all.append(run.key(i), run.value(i));
      }
      run.sort_by_key();
      runs.push_back(std::move(run));
    }
    GroupMap got;
    std::vector<std::string> key_order;
    const auto groups = merge_runs_and_group(
        runs, [&](std::string_view key,
                  const std::vector<std::string_view>& values) {
          key_order.emplace_back(key);
          auto& slot = got[std::string(key)];
          for (const auto v : values) slot.emplace_back(v);
        });
    GroupMap want = oracle_groups(all);
    // Value multisets per key must match (cross-run value order is the run
    // order, which the flat oracle does not reproduce — sort both).
    for (auto& [k, v] : got) std::sort(v.begin(), v.end());
    for (auto& [k, v] : want) std::sort(v.begin(), v.end());
    EXPECT_EQ(got, want);
    EXPECT_EQ(groups, want.size());
    // Keys must come out in ascending order.
    EXPECT_TRUE(std::is_sorted(key_order.begin(), key_order.end()));
  }
}

TEST(MergeRunsTest, EmptyAndSingleRun) {
  EXPECT_EQ(merge_runs_and_group({}, [](std::string_view,
                                        const std::vector<std::string_view>&) {
              FAIL() << "no groups expected";
            }),
            0u);

  KVBatch run;
  run.append("a", "1");
  run.append("a", "2");
  run.append("b", "3");
  run.sort_by_key();
  std::vector<KVBatch> runs;
  runs.push_back(std::move(run));
  std::vector<std::string> keys;
  std::vector<std::size_t> sizes;
  EXPECT_EQ(merge_runs_and_group(
                runs, [&](std::string_view key,
                          const std::vector<std::string_view>& values) {
                  keys.emplace_back(key);
                  sizes.push_back(values.size());
                }),
            2u);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 1}));
}

TEST(PartitionTest, ViewAndStringAgree) {
  const std::string key = "some-key";
  EXPECT_EQ(partition_for_key(key, 16), partition_for_key("some-key", 16));
  EXPECT_EQ(fnv1a("abc"), fnv1a(std::string("abc")));
}


#if S3_VIEW_CHECKS
// ---------------------------------------------------------------------------
// Runtime view validation (DebugView / ArenaStamp). Checked builds stamp
// each batch arena with a generation; any arena mutation bumps it, and a
// stale view aborts on dereference with a named witness. These are the
// runtime mirrors of the s3viewcheck static rules.

TEST(KVBatchViewChecksTest, GenerationBumpsTrackInvalidations) {
  KVBatch batch;
  batch.reserve(4, 64);
  const auto g0 = batch.generation_for_test();
  batch.append("a", "1");  // fits in reserved capacity: no reallocation
  EXPECT_EQ(batch.generation_for_test(), g0);
  batch.clear();
  const auto g1 = batch.generation_for_test();
  EXPECT_GT(g1, g0);
  batch.prefault(4, 64);
  EXPECT_GT(batch.generation_for_test(), g1);
}

TEST(KVBatchViewChecksTest, FreshViewsValidateAndCompare) {
  KVBatch batch;
  batch.append("key", "value");
  const auto k = batch.key(0);
  EXPECT_FALSE(k.stale());
  EXPECT_EQ(std::string(k), "key");
  EXPECT_EQ(k, batch.key(0));
  EXPECT_LT(k, batch.value(0));
  batch.clear();
  EXPECT_TRUE(k.stale());  // stale() itself must not abort (test hook)
}

TEST(KVBatchViewChecksDeathTest, StaleViewAfterClearAborts) {
  KVBatch batch;
  batch.append("key", "value");
  const auto k = batch.key(0);
  batch.clear();
  EXPECT_DEATH((void)std::string_view(k), "stale view from KVBatch::key");
}

TEST(KVBatchViewChecksDeathTest, StaleViewAfterArenaGrowthAborts) {
  // The append-after-read hazard: the arena reallocates on growth, so the
  // first key's bytes move out from under the held view.
  KVBatch batch;
  batch.append("key", "value");
  const auto k = batch.key(0);
  EXPECT_DEATH(
      {
        for (int i = 0; i < 4096; ++i) batch.append("grow", "grow");
        (void)std::string_view(k);
      },
      "stale view from KVBatch::key");
}

TEST(KVBatchViewChecksDeathTest, StaleViewAfterMoveAborts) {
  // Moves transfer (or byte-copy, under SSO) the arena: views into the
  // source are dead either way. Pool recycle is release(std::move(batch)).
  KVBatch batch;
  batch.append("key", "value");
  const auto v = batch.value(0);
  KVBatch stolen = std::move(batch);
  EXPECT_DEATH((void)std::string_view(v), "stale view from KVBatch::value");
  EXPECT_EQ(stolen.value(0), "value");  // views re-fetched from the new home
}

TEST(KVBatchViewChecksDeathTest, StaleViewAfterDestructionAborts) {
  // The generation cell outlives the batch (never-freed cell pool), so even
  // a use-after-free validates and aborts deterministically instead of
  // reading freed memory.
  ArenaView k = [] {
    KVBatch batch;
    batch.append("key", "value");
    return batch.key(0);
  }();
  EXPECT_DEATH((void)std::string_view(k), "stale view from KVBatch::key");
}
#endif  // S3_VIEW_CHECKS

}  // namespace
}  // namespace s3::engine
