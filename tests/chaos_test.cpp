// Chaos harness: seeded fault plans (node deaths, corrupt replicas, task
// hangs, transient errors, poison members) injected into the real engine
// through the real scheduler stack. The differential oracle: every chaos run
// must produce reduce output byte-identical to the fault-free run for every
// surviving job, and every recovery decision must land in the event journal.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chaos/fault_plan.h"
#include "core/real_driver.h"
#include "dfs/block_source.h"
#include "dfs/failover.h"
#include "obs/journal.h"
#include "sched/s3_scheduler.h"
#include "workloads/aggregation.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/tpch.h"
#include "workloads/wordcount.h"

namespace s3 {
namespace {

constexpr std::uint64_t kNumBlocks = 8;
constexpr int kReplication = 3;

struct World {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(4, 2);
  sched::FileCatalog catalog;
  FileId text_file;
  FileId lineitem_file;

  World() {
    dfs::PlacementTopology ptopo;
    for (const auto& n : topology.nodes()) {
      ptopo.nodes.push_back({n.id, n.rack});
    }
    dfs::RoundRobinPlacement placement(ptopo);
    workloads::TextCorpusGenerator corpus;
    text_file = corpus
                    .generate_file(ns, store, placement, "text", kNumBlocks,
                                   ByteSize::kib(8), kReplication)
                    .value();
    workloads::tpch::LineitemGenerator lineitem;
    lineitem_file = lineitem
                        .generate_file(ns, store, placement, "lineitem",
                                       kNumBlocks, ByteSize::kib(8),
                                       kReplication)
                        .value();
    catalog.add(text_file, kNumBlocks);
    catalog.add(lineitem_file, kNumBlocks);
  }

  [[nodiscard]] std::vector<FileId> files() const {
    return {text_file, lineitem_file};
  }
};

std::vector<core::RealJob> make_jobs(const World& world) {
  std::vector<core::RealJob> jobs;
  jobs.push_back({workloads::make_wordcount_job(JobId(0), world.text_file, "t",
                                                3, /*with_combiner=*/true),
                  0.0, 0});
  jobs.push_back({workloads::make_wordcount_job(JobId(1), world.text_file, "a",
                                                2, /*with_combiner=*/false),
                  0.5, 0});
  jobs.push_back(
      {workloads::tpch::make_selection_job(JobId(2), world.lineitem_file, 5, 2),
       0.0, 0});
  jobs.push_back(
      {workloads::make_avg_price_job(JobId(3), world.lineitem_file, 2), 1.0,
       0});
  return jobs;
}

struct ChaosRun {
  core::RealRunResult result;
  std::uint64_t failovers = 0;
  std::uint64_t hung_attempts = 0;
  std::uint64_t failed_attempts = 0;
  std::vector<NodeId> scheduler_dead;
};

// Runs `jobs` under an S3 scheduler (4-block segments) with the plan's
// faults injected; nullptr plan = fault-free baseline.
ChaosRun run_chaos(World& world, std::vector<core::RealJob> jobs,
                   const chaos::FaultPlan* plan) {
  dfs::ReplicaHealth health;
  dfs::StoredBlocks stored(world.store);
  dfs::FailoverBlockSource source(world.ns, stored, health);
  engine::LocalEngineOptions opts;
  opts.map_workers = 3;
  opts.reduce_workers = 2;
  opts.max_task_attempts = 3;
  opts.replica_health = &health;
  if (plan != nullptr) {
    plan->arm(health);
    opts.fault_injector = plan->injector();
  }
  engine::LocalEngine engine(world.ns, source, opts);
  sched::S3Options s3_opts;
  s3_opts.blocks_per_segment = 4;
  sched::S3Scheduler scheduler(world.catalog, s3_opts, &world.topology);
  core::RealDriver driver(world.ns, engine, world.catalog,
                          {/*time_scale=*/1e5, /*map_slots=*/3});
  auto run = driver.run(scheduler, std::move(jobs));
  EXPECT_TRUE(run.is_ok()) << run.status();
  ChaosRun out;
  out.result = std::move(run).value();
  out.failovers = source.failovers();
  out.hung_attempts = engine.hung_attempts();
  out.failed_attempts = engine.failed_attempts();
  out.scheduler_dead = scheduler.currently_dead();
  return out;
}

void expect_same_output(const engine::JobResult& got,
                        const engine::JobResult& want) {
  ASSERT_EQ(got.output.size(), want.output.size());
  for (std::size_t i = 0; i < got.output.size(); ++i) {
    ASSERT_EQ(got.output[i].key, want.output[i].key);
    ASSERT_EQ(got.output[i].value, want.output[i].value);
  }
}

std::size_t count_events(const std::vector<obs::JournalEvent>& events,
                         obs::JournalEventType type) {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.type == type) ++n;
  }
  return n;
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EventJournal::instance().clear();
    obs::EventJournal::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::EventJournal::instance().set_enabled(false);
    obs::EventJournal::instance().clear();
  }
};

// The acceptance matrix: >= 20 seeded fault plans mixing node death,
// corrupt replicas, hangs and transients. Every run must terminate, complete
// every job, and produce byte-identical output to the fault-free run.
TEST_F(ChaosTest, SeededFaultMatrixIsByteIdenticalToFaultFreeRun) {
  World baseline_world;
  const auto baseline =
      run_chaos(baseline_world, make_jobs(baseline_world), nullptr);
  ASSERT_EQ(baseline.result.outputs.size(), 4u);
  ASSERT_TRUE(baseline.result.failed.empty());

  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    obs::EventJournal::instance().clear();
    World world;
    chaos::FaultPlanOptions fp;
    fp.seed = seed;
    fp.kill_node = seed % 2 == 0;
    fp.corrupt_replicas = seed % 3;
    fp.transient_rate = 0.35;
    fp.hang_rate = 0.20;
    const chaos::FaultPlan plan(world.ns, world.files(), world.topology, fp);
    SCOPED_TRACE(plan.describe());

    const auto chaos_run = run_chaos(world, make_jobs(world), &plan);
    EXPECT_TRUE(chaos_run.result.failed.empty());
    ASSERT_EQ(chaos_run.result.outputs.size(), baseline.result.outputs.size());
    for (const auto& [job, want] : baseline.result.outputs) {
      SCOPED_TRACE("job " + std::to_string(job.value()));
      const auto it = chaos_run.result.outputs.find(job);
      ASSERT_NE(it, chaos_run.result.outputs.end());
      expect_same_output(it->second, want);
    }

    const auto events = obs::EventJournal::instance().snapshot();
    if (fp.kill_node && plan.victim().valid()) {
      ASSERT_EQ(chaos_run.result.nodes_died.size(), 1u);
      EXPECT_EQ(chaos_run.result.nodes_died.front(), plan.victim());
      EXPECT_EQ(chaos_run.scheduler_dead,
                std::vector<NodeId>{plan.victim()});
      EXPECT_GE(count_events(events, obs::JournalEventType::kNodeDead), 1u);
    } else {
      EXPECT_TRUE(chaos_run.result.nodes_died.empty());
    }
    if (!plan.corruptions().empty()) {
      EXPECT_GT(chaos_run.failovers, 0u);
      EXPECT_GE(count_events(events, obs::JournalEventType::kBlockCorrupt),
                1u);
    }
    // Transients at 35% across dozens of attempts: every failed attempt must
    // have been journaled, and every retry decision too.
    EXPECT_EQ(count_events(events, obs::JournalEventType::kTaskAttemptFailed),
              chaos_run.failed_attempts);
    if (chaos_run.failed_attempts > 0) {
      EXPECT_GE(count_events(events, obs::JournalEventType::kTaskRetried),
                1u);
    }
    EXPECT_EQ(count_events(events, obs::JournalEventType::kTaskHung),
              chaos_run.hung_attempts);
  }
}

// Poison member in a 3-member merged batch: the poisoned job is retired with
// an error status, the survivors' shared scan re-runs, and their outputs
// stay byte-identical. The shared scan must never fail the co-members.
TEST_F(ChaosTest, PoisonMapMemberIsQuarantinedWithoutFailingCoMembers) {
  const auto make_trio = [](const World& world) {
    std::vector<core::RealJob> jobs;
    jobs.push_back({workloads::make_wordcount_job(JobId(0), world.text_file,
                                                  "t", 2, true),
                    0.0, 0});
    jobs.push_back({workloads::make_wordcount_job(JobId(1), world.text_file,
                                                  "a", 2, false),
                    0.0, 0});
    jobs.push_back({workloads::make_wordcount_job(JobId(2), world.text_file,
                                                  "s", 2, true),
                    0.0, 0});
    return jobs;
  };
  World baseline_world;
  const auto baseline =
      run_chaos(baseline_world, make_trio(baseline_world), nullptr);
  ASSERT_EQ(baseline.result.outputs.size(), 3u);

  for (const bool in_reduce : {false, true}) {
    SCOPED_TRACE(in_reduce ? "poison in reduce" : "poison in map");
    obs::EventJournal::instance().clear();
    World world;
    chaos::FaultPlanOptions fp;
    fp.seed = 7;
    fp.poison_job = JobId(1);
    fp.poison_in_reduce = in_reduce;
    const chaos::FaultPlan plan(world.ns, world.files(), world.topology, fp);

    const auto chaos_run = run_chaos(world, make_trio(world), &plan);
    ASSERT_EQ(chaos_run.result.failed.size(), 1u);
    const auto failed = chaos_run.result.failed.find(JobId(1));
    ASSERT_NE(failed, chaos_run.result.failed.end());
    EXPECT_EQ(failed->second.code(), StatusCode::kInternal);
    EXPECT_NE(failed->second.message().find("poison"), std::string::npos);

    // The co-members must be unharmed and byte-identical.
    ASSERT_EQ(chaos_run.result.outputs.size(), 2u);
    for (const JobId survivor : {JobId(0), JobId(2)}) {
      SCOPED_TRACE("job " + std::to_string(survivor.value()));
      const auto it = chaos_run.result.outputs.find(survivor);
      ASSERT_NE(it, chaos_run.result.outputs.end());
      expect_same_output(it->second, baseline.result.outputs.at(survivor));
    }
    EXPECT_EQ(chaos_run.result.summary.failed_jobs, 1u);
    EXPECT_EQ(chaos_run.result.summary.num_jobs, 2u);

    const auto events = obs::EventJournal::instance().snapshot();
    EXPECT_GE(count_events(events, obs::JournalEventType::kJobQuarantined),
              1u);
    EXPECT_GE(count_events(events, obs::JournalEventType::kBatchRerun), 1u);
  }
}

// Fault decisions must be a pure function of the seed and the attempt's
// stable identity, never of call order.
TEST_F(ChaosTest, FaultPlanDecisionsAreDeterministic) {
  World world;
  chaos::FaultPlanOptions fp;
  fp.seed = 42;
  fp.kill_node = true;
  fp.corrupt_replicas = 2;
  fp.transient_rate = 0.5;
  fp.hang_rate = 0.25;
  const chaos::FaultPlan a(world.ns, world.files(), world.topology, fp);
  const chaos::FaultPlan b(world.ns, world.files(), world.topology, fp);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.victim(), b.victim());
  EXPECT_EQ(a.death_trigger(), b.death_trigger());
  ASSERT_EQ(a.corruptions().size(), b.corruptions().size());

  const auto& blocks = world.ns.file(world.text_file).blocks;
  for (int attempt = 1; attempt <= 3; ++attempt) {
    for (const BlockId block : blocks) {
      engine::TaskAttempt ident;
      ident.task = TaskId(0);
      ident.attempt = attempt;
      ident.is_map = true;
      ident.block = block;
      const auto fa = a.decide(ident);
      const auto fb = b.decide(ident);
      EXPECT_EQ(static_cast<int>(fa.kind), static_cast<int>(fb.kind));
      EXPECT_EQ(fa.dead_node, fb.dead_node);
    }
  }
}

// Every first attempt hangs: the watchdog must abandon and retry each one
// (journaled, never slept) and the run still completes every job.
TEST_F(ChaosTest, HungTasksAreAbandonedAndRetried) {
  World world;
  chaos::FaultPlanOptions fp;
  fp.seed = 3;
  fp.hang_rate = 1.0;
  const chaos::FaultPlan plan(world.ns, world.files(), world.topology, fp);
  const auto chaos_run = run_chaos(world, make_jobs(world), &plan);
  EXPECT_TRUE(chaos_run.result.failed.empty());
  EXPECT_EQ(chaos_run.result.outputs.size(), 4u);
  EXPECT_GT(chaos_run.hung_attempts, 0u);
  const auto events = obs::EventJournal::instance().snapshot();
  EXPECT_EQ(count_events(events, obs::JournalEventType::kTaskHung),
            chaos_run.hung_attempts);
  EXPECT_EQ(count_events(events, obs::JournalEventType::kTaskRetried),
            chaos_run.hung_attempts);
  // The backoff the watchdog models must be recorded with each retry.
  for (const auto& e : events) {
    if (e.type == obs::JournalEventType::kTaskRetried) {
      EXPECT_NE(e.detail.find("backoff_s="), std::string::npos);
    }
  }
}

// A plan is constructed safe: the victim never strands a block without
// replicas, and corruptions always leave a usable copy.
TEST_F(ChaosTest, FaultPlansNeverPlanDataLoss) {
  World world;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    chaos::FaultPlanOptions fp;
    fp.seed = seed;
    fp.kill_node = true;
    fp.corrupt_replicas = 4;
    const chaos::FaultPlan plan(world.ns, world.files(), world.topology, fp);
    ASSERT_TRUE(plan.victim().valid());
    std::map<BlockId, NodeId> corrupt;
    for (const auto& [block, node] : plan.corruptions()) {
      EXPECT_EQ(corrupt.count(block), 0u) << "double corruption";
      corrupt[block] = node;
    }
    for (const FileId file : world.files()) {
      for (const BlockId block : world.ns.file(file).blocks) {
        const auto& replicas = world.ns.block(block).replicas;
        std::size_t usable = 0;
        for (const NodeId replica : replicas) {
          if (replica == plan.victim()) continue;
          const auto it = corrupt.find(block);
          if (it != corrupt.end() && it->second == replica) continue;
          ++usable;
        }
        EXPECT_GE(usable, 1u) << "block " << block << " stranded";
      }
    }
  }
}

}  // namespace
}  // namespace s3
