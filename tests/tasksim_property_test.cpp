// Property sweeps for the task-level simulator: work conservation, makespan
// bounds and scheduler-invariant totals across randomized configurations.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "tasksim/tasksim.h"

namespace s3::tasksim {
namespace {

struct SweepParam {
  int slots;
  std::size_t jobs;
  std::uint64_t blocks;
  double arrival_spread;
};

class TaskSimSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static std::vector<TaskSimJob> make_jobs(const SweepParam& p, Rng& rng) {
    std::vector<TaskSimJob> jobs;
    for (std::uint64_t j = 0; j < p.jobs; ++j) {
      TaskSimJob job;
      job.id = JobId(j);
      job.arrival = rng.uniform(0.0, p.arrival_spread);
      job.total_blocks = p.blocks;
      job.reduce_tail = 2.0;
      job.pool = static_cast<int>(j % 2);
      jobs.push_back(job);
    }
    return jobs;
  }

  static TaskSimParams params_for(const SweepParam& p, int pools = 1) {
    TaskSimParams params;
    params.slots = p.slots;
    params.pools = pools;
    params.map_task_seconds = [](int sharers) {
      return 1.0 + 0.1 * (sharers - 1);
    };
    return params;
  }
};

TEST_P(TaskSimSweep, NonSharingSchedulersConserveWork) {
  const auto p = GetParam();
  Rng rng(p.slots * 1000 + static_cast<std::uint64_t>(p.jobs));
  const auto jobs = make_jobs(p, rng);

  const int pools = std::min(2, p.slots);
  FifoTaskScheduler fifo;
  FairTaskScheduler fair;
  CapacityTaskScheduler capacity(pools);
  const auto r_fifo = run_task_sim(params_for(p), fifo, jobs);
  const auto r_fair = run_task_sim(params_for(p), fair, jobs);
  const auto r_cap = run_task_sim(params_for(p, pools), capacity, jobs);
  ASSERT_TRUE(r_fifo.is_ok());
  ASSERT_TRUE(r_fair.is_ok());
  ASSERT_TRUE(r_cap.is_ok());

  // Every non-sharing scheduler runs exactly jobs x blocks tasks of 1 s.
  const std::uint64_t expected_tasks = p.jobs * p.blocks;
  for (const auto* r : {&r_fifo.value(), &r_fair.value(), &r_cap.value()}) {
    EXPECT_EQ(r->tasks_run, expected_tasks);
    EXPECT_DOUBLE_EQ(r->busy_slot_seconds,
                     static_cast<double>(expected_tasks));
    // Makespan lower bound: total work / slots (ignoring tails/arrivals).
    EXPECT_GE(r->summary.tet + 1e-9,
              static_cast<double>(expected_tasks) /
                  static_cast<double>(p.slots));
  }
}

TEST_P(TaskSimSweep, SharedScanNeverRunsMoreThanNonSharing) {
  const auto p = GetParam();
  Rng rng(p.slots * 7 + static_cast<std::uint64_t>(p.blocks));
  const auto jobs = make_jobs(p, rng);

  SharedScanTaskScheduler shared(p.blocks);
  FifoTaskScheduler fifo;
  const auto r_shared = run_task_sim(params_for(p), shared, jobs);
  const auto r_fifo = run_task_sim(params_for(p), fifo, jobs);
  ASSERT_TRUE(r_shared.is_ok());
  ASSERT_TRUE(r_fifo.is_ok());

  // Sharing can only reduce the task count; the floor is one pass when all
  // jobs overlap, the ceiling is the non-sharing count.
  EXPECT_LE(r_shared.value().tasks_run, r_fifo.value().tasks_run);
  EXPECT_GE(r_shared.value().tasks_run, p.blocks);
  EXPECT_LE(r_shared.value().busy_slot_seconds,
            r_fifo.value().busy_slot_seconds + 1e-9);
  // And it must not hurt either metric.
  EXPECT_LE(r_shared.value().summary.tet, r_fifo.value().summary.tet + 1e-9);
  EXPECT_LE(r_shared.value().summary.art, r_fifo.value().summary.art + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TaskSimSweep,
    ::testing::Values(SweepParam{1, 1, 5, 0.0},     // degenerate single slot
                      SweepParam{4, 3, 12, 0.0},    // simultaneous arrivals
                      SweepParam{4, 3, 12, 10.0},   // staggered
                      SweepParam{8, 6, 40, 30.0},   // mid-size
                      SweepParam{40, 10, 64, 50.0},  // cluster-like
                      SweepParam{5, 4, 17, 3.0}));  // awkward remainders

TEST(TaskSimDeterminismTest, RepeatedRunsIdentical) {
  const SweepParam p{8, 5, 20, 15.0};
  double tets[2];
  for (int i = 0; i < 2; ++i) {
    Rng rng(42);
    std::vector<TaskSimJob> jobs;
    for (std::uint64_t j = 0; j < p.jobs; ++j) {
      TaskSimJob job;
      job.id = JobId(j);
      job.arrival = rng.uniform(0.0, p.arrival_spread);
      job.total_blocks = p.blocks;
      jobs.push_back(job);
    }
    TaskSimParams params;
    params.slots = p.slots;
    params.map_task_seconds = [](int s) { return 1.0 + 0.05 * (s - 1); };
    SharedScanTaskScheduler shared(p.blocks);
    auto result = run_task_sim(params, shared, jobs);
    ASSERT_TRUE(result.is_ok());
    tets[i] = result.value().summary.tet;
  }
  EXPECT_DOUBLE_EQ(tets[0], tets[1]);
}

}  // namespace
}  // namespace s3::tasksim
