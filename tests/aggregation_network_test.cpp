// Tests for the §V-G aggregation workload (algebraic partial aggregation
// across sub-jobs) and the rack-aware shuffle network model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/real_driver.h"
#include "sim/network.h"
#include "workloads/aggregation.h"
#include "workloads/suite.h"
#include "workloads/tpch.h"

namespace s3 {
namespace {

TEST(PairSumTest, ParsePair) {
  const auto [sum, count] = workloads::parse_pair("123.50|7");
  EXPECT_DOUBLE_EQ(sum, 123.5);
  EXPECT_EQ(count, 7u);
}

TEST(PairSumTest, ReducerFoldsPairs) {
  workloads::PairSumReducer reducer;
  std::vector<engine::KeyValue> out;
  class Collect final : public engine::Emitter {
   public:
    explicit Collect(std::vector<engine::KeyValue>& o) : out_(&o) {}
    void emit(std::string_view k, std::string_view v) override {
      out_->push_back({std::string(k), std::string(v)});
    }
   private:
    std::vector<engine::KeyValue>* out_;
  } collect(out);
  reducer.reduce("R", {"10.00|2", "5.50|1", "4.50|3"}, collect);
  ASSERT_EQ(out.size(), 1u);
  const auto [sum, count] = workloads::parse_pair(out[0].value);
  EXPECT_DOUBLE_EQ(sum, 20.0);
  EXPECT_EQ(count, 6u);
}

TEST(PairSumTest, AverageExtraction) {
  engine::JobResult result;
  result.output = {{"A", "10.00|2"}, {"B", "9.00|3"}};
  const auto averages = workloads::extract_averages(result);
  EXPECT_DOUBLE_EQ(averages.at("A").value(), 5.0);
  EXPECT_DOUBLE_EQ(averages.at("B").value(), 3.0);
  EXPECT_EQ(averages.at("B").count, 3u);
}

TEST(AvgMapperTest, EmitsFlagAndPricePair) {
  workloads::tpch::LineitemGenerator gen;
  workloads::AvgPriceMapper mapper;
  std::vector<engine::KeyValue> out;
  class Collect final : public engine::Emitter {
   public:
    explicit Collect(std::vector<engine::KeyValue>& o) : out_(&o) {}
    void emit(std::string_view k, std::string_view v) override {
      out_->push_back({std::string(k), std::string(v)});
    }
   private:
    std::vector<engine::KeyValue>* out_;
  } collect(out);
  const std::string row = gen.row(0);
  mapper.map(dfs::Record{0, row}, collect);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key.size(), 1u);  // returnflag is one char
  const auto [sum, count] = workloads::parse_pair(out[0].value);
  EXPECT_GT(sum, 0.0);
  EXPECT_EQ(count, 1u);
}

// End-to-end §V-G check: S3 sub-job execution with incremental folding
// equals a whole-file single pass, for a non-trivially-algebraic aggregate.
TEST(AggregationIntegrationTest, IncrementalSubJobAveragesMatchWholeFile) {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  const auto topology = cluster::Topology::uniform(4, 2);
  dfs::PlacementTopology ptopo;
  for (const auto& n : topology.nodes()) ptopo.nodes.push_back({n.id, n.rack});
  dfs::RoundRobinPlacement placement(ptopo);
  workloads::tpch::LineitemGenerator gen;
  const FileId table =
      gen.generate_file(ns, store, placement, "lineitem", 9, ByteSize::kib(8))
          .value();
  sched::FileCatalog catalog;
  catalog.add(table, 9);

  const auto run = [&](bool incremental, sched::Scheduler& scheduler) {
    engine::LocalEngineOptions options;
    options.map_workers = 3;
    options.reduce_workers = 2;
    options.incremental_merge = incremental;
    engine::LocalEngine engine(ns, store, options);
    core::RealDriver driver(ns, engine, catalog);
    std::vector<core::RealJob> jobs;
    jobs.push_back({workloads::make_avg_price_job(JobId(0), table, 3), 0.0, 0});
    return driver.run(scheduler, std::move(jobs)).value();
  };

  auto s3 = workloads::make_s3(catalog, topology, /*segment_blocks=*/3);
  auto fifo = workloads::make_fifo(catalog);
  const auto incremental = run(true, *s3);
  const auto whole = run(false, *fifo);

  EXPECT_EQ(incremental.batches_run, 3u);  // k = 3 sub-jobs
  const auto got = workloads::extract_averages(incremental.outputs.at(JobId(0)));
  const auto want = workloads::extract_averages(whole.outputs.at(JobId(0)));
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.size(), 3u);  // returnflags R, A, N
  for (const auto& [flag, avg] : want) {
    ASSERT_TRUE(got.count(flag) > 0) << flag;
    EXPECT_EQ(got.at(flag).count, avg.count) << flag;
    EXPECT_NEAR(got.at(flag).value(), avg.value(), 1e-6) << flag;
  }
}

TEST(NetworkModelTest, CrossRackFraction) {
  // Paper cluster: racks of 13/13/14 over 40 nodes.
  const auto topology = cluster::Topology::paper_cluster();
  sim::NetworkModel network({}, topology);
  const double expected =
      1.0 - (13.0 * 13 + 13.0 * 13 + 14.0 * 14) / (40.0 * 40);
  EXPECT_NEAR(network.cross_rack_fraction(), expected, 1e-12);
}

TEST(NetworkModelTest, SingleRackStaysLocal) {
  const auto topology = cluster::Topology::uniform(8, 1);
  sim::NetworkModel network({}, topology);
  EXPECT_DOUBLE_EQ(network.cross_rack_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(network.blended_mb_per_s(),
                   network.params().intra_rack_mb_per_s);
}

TEST(NetworkModelTest, BlendedBandwidthBetweenExtremes) {
  const auto topology = cluster::Topology::paper_cluster();
  sim::NetworkParams params;
  sim::NetworkModel network(params, topology);
  EXPECT_GT(network.blended_mb_per_s(), params.cross_rack_mb_per_s);
  EXPECT_LT(network.blended_mb_per_s(), params.intra_rack_mb_per_s);
}

TEST(NetworkModelTest, ShuffleScalesWithVolumeAndReducers) {
  const auto topology = cluster::Topology::paper_cluster();
  sim::NetworkModel network({}, topology);
  const double base = network.shuffle_seconds(3000.0, 30);
  EXPECT_NEAR(network.shuffle_seconds(6000.0, 30), 2.0 * base, 1e-9);
  EXPECT_NEAR(network.shuffle_seconds(3000.0, 60), 0.5 * base, 1e-9);
  EXPECT_DOUBLE_EQ(network.shuffle_seconds(0.0, 30), 0.0);
}

TEST(NetworkModelTest, BindsOnlyForShuffleHeavyBatches) {
  // At the calibrated wordcount output volume the network tail must stay
  // below the calibrated reduce tail (so Figure 3/4 results are unaffected);
  // at 100x the volume it must dominate.
  const auto topology = cluster::Topology::paper_cluster();
  sim::CostModelParams params = sim::CostModelParams::paper();
  sim::CostModel model(params, topology);

  sched::Batch batch;
  batch.id = BatchId(0);
  batch.file = FileId(0);
  batch.num_blocks = 2560;
  batch.members.push_back({JobId(0), 2560, true});

  auto normal_cost = sim::WorkloadCost::wordcount_normal();
  std::unordered_map<JobId, sim::WorkloadCost> costs{{JobId(0), normal_cost}};
  const auto normal = model.batch_cost(batch, costs, {}, nullptr);

  auto heavy_cost = normal_cost;
  heavy_cost.map_output_mb_per_block *= 100.0;
  costs[JobId(0)] = heavy_cost;
  const auto shuffle_bound = model.batch_cost(batch, costs, {}, nullptr);

  sim::NetworkModel network(params.network, topology);
  const double normal_shuffle = network.shuffle_seconds(
      normal_cost.map_output_mb_per_block * 2560.0, params.num_reduce_tasks);
  EXPECT_LT(normal_shuffle, normal.reduce_tail);  // calibration intact
  EXPECT_GT(shuffle_bound.reduce_tail, normal.reduce_tail * 3.0);
  EXPECT_NEAR(shuffle_bound.reduce_tail,
              network.shuffle_seconds(heavy_cost.map_output_mb_per_block *
                                          2560.0,
                                      params.num_reduce_tasks),
              1e-6);  // the network bound is what binds
}

}  // namespace
}  // namespace s3
