// Tests for the s3viewcheck whole-project analyzer: model extraction on
// synthetic sources, end-to-end runs over temp-dir fixture trees with one
// seeded bug per rule (plus clean shapes that must stay silent), suppression
// handling, and a run over the real tree that must come back green — the
// same invariant CI gates on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "s3lint/lexer.h"
#include "s3viewcheck/graph.h"
#include "s3viewcheck/model.h"
#include "s3viewcheck/s3viewcheck.h"

namespace s3viewcheck {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Model extraction

FileModel extract(const std::string& src) {
  return extract_model("src/test.h", s3lint::tokenize(src));
}

TEST(ViewcheckModel, RecordsParamsLocalsAndReturnType) {
  const FileModel fm = extract(
      "std::string_view first_key(const KVBatch& batch,\n"
      "                           std::vector<KVBatch>& runs) {\n"
      "  std::size_t i = 0;\n"
      "  std::string_view k = batch.key(i);\n"
      "  return k;\n"
      "}\n");
  ASSERT_EQ(fm.functions.size(), 1u);
  const FunctionModel& fn = fm.functions[0];
  EXPECT_EQ(fn.name, "first_key");
  EXPECT_EQ(fn.return_type, "string_view");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].type, "KVBatch");
  EXPECT_EQ(fn.params[0].name, "batch");
  // vector<KVBatch> reads as KVBatch: element access is arena access.
  EXPECT_EQ(fn.params[1].type, "KVBatch");
  EXPECT_EQ(fn.params[1].name, "runs");
  bool saw_k = false;
  for (const LocalDecl& d : fn.locals) {
    if (d.name == "k") {
      saw_k = true;
      EXPECT_EQ(d.type, "string_view");
    }
  }
  EXPECT_TRUE(saw_k);
}

TEST(ViewcheckModel, BindsInitializerCallsToTheDeclaredLocal) {
  const FileModel fm = extract(
      "void f(KVBatch& b) {\n"
      "  auto k = b.key(0);\n"
      "  consume(k);\n"
      "}\n");
  ASSERT_EQ(fm.functions.size(), 1u);
  const FunctionModel& fn = fm.functions[0];
  bool bound = false;
  for (const CallSite& c : fn.calls) {
    if (c.callee == "key") {
      bound = true;
      ASSERT_EQ(c.chain.size(), 1u);
      EXPECT_EQ(c.chain[0], "b");
      EXPECT_EQ(c.bound_to, "k");
      EXPECT_EQ(c.bound_type, "auto");
    }
  }
  EXPECT_TRUE(bound);
  bool used = false;
  for (const Event& ev : fn.events) {
    if (ev.kind == EventKind::kUse && ev.view == "k") used = true;
  }
  EXPECT_TRUE(used);
}

TEST(ViewcheckModel, RangeForBatchReferenceIsABatchLocal) {
  const FileModel fm = extract(
      "void f(std::vector<KVBatch>& runs) {\n"
      "  for (KVBatch& run : runs) {\n"
      "    auto k = run.key(0);\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(fm.functions.size(), 1u);
  bool saw_run = false;
  for (const LocalDecl& d : fm.functions[0].locals) {
    if (d.name == "run") {
      saw_run = true;
      EXPECT_EQ(d.type, "KVBatch");
    }
  }
  EXPECT_TRUE(saw_run);
}

TEST(ViewcheckModel, SubmittedLambdaIsMarked) {
  const FileModel fm = extract(
      "void f(ThreadPool& pool, KVBatch& b) {\n"
      "  auto k = b.key(0);\n"
      "  pool.submit([k] { consume(k); });\n"
      "  auto fn = [k] { consume(k); };\n"
      "}\n");
  ASSERT_EQ(fm.functions.size(), 1u);
  const FunctionModel& f = fm.functions[0];
  ASSERT_EQ(f.lambdas.size(), 2u);
  EXPECT_TRUE(f.lambdas[0].submitted);
  EXPECT_FALSE(f.lambdas[1].submitted);
}

TEST(ViewcheckModel, MemberTableSeesThroughTemplates) {
  const FileModel fm = extract(
      "class Shuffle {\n"
      "  std::vector<KVBatch> buckets_;\n"
      "  std::string_view held_;\n"
      "};\n");
  EXPECT_EQ(fm.members.at("Shuffle").at("buckets_"), "KVBatch");
  EXPECT_EQ(fm.members.at("Shuffle").at("held_"), "string_view");
}

TEST(ViewcheckModel, MovedArgumentsAreFlagged) {
  const FileModel fm = extract(
      "void f(Pool& pool, KVBatch batch) {\n"
      "  pool.release(0, std::move(batch));\n"
      "}\n");
  ASSERT_EQ(fm.functions.size(), 1u);
  bool saw = false;
  for (const CallSite& c : fm.functions[0].calls) {
    if (c.callee != "release") continue;
    saw = true;
    ASSERT_EQ(c.args.size(), 2u);
    EXPECT_EQ(c.args[1], "batch");
    EXPECT_TRUE(c.moved[1]);
  }
  EXPECT_TRUE(saw);
}

// ---------------------------------------------------------------------------
// End-to-end fixture trees

class ViewcheckFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("s3viewcheck_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::create_directories(root_ / "src");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
  }

  int run(std::string* output, std::set<std::string> rules = {}) {
    ViewcheckOptions options;
    options.root = root_.string();
    options.rules = std::move(rules);
    return run_viewcheck(options, output);
  }

  fs::path root_;
};

TEST_F(ViewcheckFixture, DanglingViewAfterClearDetected) {
  write("src/bug.cpp",
        "void f(KVBatch& b) {\n"
        "  auto k = b.key(0);\n"
        "  b.clear();\n"
        "  consume(k);\n"
        "}\n");
  std::string output;
  EXPECT_EQ(run(&output), 1);
  EXPECT_NE(output.find("[dangling-view]"), std::string::npos) << output;
  EXPECT_NE(output.find("src/bug.cpp:4"), std::string::npos) << output;
  EXPECT_NE(output.find("clear()"), std::string::npos) << output;
}

TEST_F(ViewcheckFixture, DanglingViewThroughMoveAndPrefault) {
  write("src/bug.cpp",
        "void f(KVBatch& b, std::vector<KVBatch>& out) {\n"
        "  auto k = b.key(0);\n"
        "  out.push_back(std::move(b));\n"
        "  consume(k);\n"
        "}\n"
        "void g(KVBatch& b) {\n"
        "  auto k = b.value(0);\n"
        "  b.prefault(8, 64);\n"
        "  consume(k);\n"
        "}\n");
  std::string output;
  EXPECT_EQ(run(&output), 1);
  EXPECT_NE(output.find("std::move"), std::string::npos) << output;
  EXPECT_NE(output.find("prefault()"), std::string::npos) << output;
}

TEST_F(ViewcheckFixture, DanglingViewThroughCalleeSummary) {
  // reset_batch invalidates its parameter; the caller's view dies with it.
  write("src/bug.cpp",
        "void reset_batch(KVBatch& b) { b.clear(); }\n"
        "void f(KVBatch& b) {\n"
        "  auto k = b.key(0);\n"
        "  reset_batch(b);\n"
        "  consume(k);\n"
        "}\n");
  std::string output;
  EXPECT_EQ(run(&output), 1);
  EXPECT_NE(output.find("[dangling-view]"), std::string::npos) << output;
  EXPECT_NE(output.find("reset_batch"), std::string::npos) << output;
}

TEST_F(ViewcheckFixture, AppendAfterReadDetected) {
  // The canonical S3 hot-path hazard: hold the first key while the append
  // loop grows the arena past its capacity.
  write("src/bug.cpp",
        "void combine(KVBatch& b, const KVBatch& in) {\n"
        "  auto first = b.key(0);\n"
        "  for (std::size_t i = 0; i < in.size(); ++i) {\n"
        "    b.append(in.key(i), in.value(i));\n"
        "  }\n"
        "  consume(first);\n"
        "}\n");
  std::string output;
  EXPECT_EQ(run(&output), 1);
  EXPECT_NE(output.find("[append-after-read]"), std::string::npos) << output;
  EXPECT_NE(output.find("reallocate"), std::string::npos) << output;
}

TEST_F(ViewcheckFixture, ViewOutlivesArenaReturnAndStores) {
  write("src/ret.cpp",
        "std::string_view f() {\n"
        "  KVBatch local;\n"
        "  local.append(\"a\", \"b\");\n"
        "  return local.key(0);\n"
        "}\n");
  write("src/store.cpp",
        "class Holder {\n"
        "  std::string_view held_;\n"
        "  std::vector<std::string_view> views_;\n"
        "  void grab(KVBatch& b) {\n"
        "    held_ = b.key(0);\n"
        "    auto v = b.value(0);\n"
        "    views_.push_back(v);\n"
        "  }\n"
        "};\n");
  std::string output;
  EXPECT_EQ(run(&output), 1);
  EXPECT_NE(output.find("src/ret.cpp:4"), std::string::npos) << output;
  EXPECT_NE(output.find("held_"), std::string::npos) << output;
  EXPECT_NE(output.find("views_"), std::string::npos) << output;
}

TEST_F(ViewcheckFixture, ReturnedViewOfLocalThroughNamedViewDetected) {
  write("src/bug.cpp",
        "std::string_view f() {\n"
        "  KVBatch local;\n"
        "  auto k = local.key(0);\n"
        "  return k;\n"
        "}\n");
  std::string output;
  EXPECT_EQ(run(&output), 1);
  EXPECT_NE(output.find("[view-outlives-arena]"), std::string::npos) << output;
}

TEST_F(ViewcheckFixture, CrossThreadViewDetected) {
  write("src/bug.cpp",
        "void f(ThreadPool& pool, KVBatch& b) {\n"
        "  auto k = b.key(0);\n"
        "  pool.submit([k] { consume(k); });\n"
        "}\n");
  std::string output;
  EXPECT_EQ(run(&output), 1);
  EXPECT_NE(output.find("[cross-thread-view]"), std::string::npos) << output;
}

TEST_F(ViewcheckFixture, CleanShapesStaySilent) {
  // Refetch after append, std::string copies, in-place consumption, and a
  // lambda that derives its own views from a captured batch reference.
  write("src/clean.cpp",
        "void f(KVBatch& b) {\n"
        "  auto k = b.key(0);\n"
        "  consume(k);\n"
        "  b.append(\"x\", \"y\");\n"
        "  auto k2 = b.key(1);\n"
        "  consume(k2);\n"
        "}\n"
        "std::string g() {\n"
        "  KVBatch local;\n"
        "  local.append(\"a\", \"b\");\n"
        "  return std::string(local.key(0));\n"
        "}\n"
        "void h(ThreadPool& pool, KVBatch& b) {\n"
        "  pool.submit([&b] { consume(b.key(0)); });\n"
        "}\n"
        "void i(KVBatch& b) {\n"
        "  const auto len = b.key(0).size();\n"
        "  b.clear();\n"
        "  use(len);\n"
        "}\n");
  std::string output;
  EXPECT_EQ(run(&output), 0) << output;
}

TEST_F(ViewcheckFixture, ReassignedViewIsRetracked) {
  // The refresh idiom: rebinding the same name after the append is clean.
  write("src/clean.cpp",
        "void f(KVBatch& b) {\n"
        "  std::string_view k = b.key(0);\n"
        "  b.append(\"x\", \"y\");\n"
        "  k = b.key(0);\n"
        "  consume(k);\n"
        "}\n");
  std::string output;
  EXPECT_EQ(run(&output), 0) << output;
}

TEST_F(ViewcheckFixture, RulesFilterSelectsSubset) {
  write("src/bug.cpp",
        "void f(KVBatch& b) {\n"
        "  auto k = b.key(0);\n"
        "  b.clear();\n"
        "  consume(k);\n"
        "}\n"
        "std::string_view g() {\n"
        "  KVBatch local;\n"
        "  return local.key(0);\n"
        "}\n");
  std::string output;
  EXPECT_EQ(run(&output, {"view-outlives-arena"}), 1);
  EXPECT_EQ(output.find("[dangling-view]"), std::string::npos) << output;
  EXPECT_NE(output.find("[view-outlives-arena]"), std::string::npos) << output;
}

TEST_F(ViewcheckFixture, SuppressionsSilenceFindings) {
  write("src/bug.cpp",
        "// s3viewcheck: disable-file(dangling-view)\n"
        "void f(KVBatch& b) {\n"
        "  auto k = b.key(0);\n"
        "  b.clear();\n"
        "  consume(k);\n"
        "}\n");
  std::string output;
  EXPECT_EQ(run(&output), 0) << output;
}

TEST_F(ViewcheckFixture, GraphDumpListsModel) {
  write("src/a.cpp",
        "void f(KVBatch& b) {\n"
        "  auto k = b.key(0);\n"
        "}\n");
  ViewcheckOptions options;
  options.root = root_.string();
  options.dump_graph = true;
  std::string output;
  EXPECT_EQ(run_viewcheck(options, &output), 0);
  EXPECT_NE(output.find("param b : KVBatch"), std::string::npos) << output;
  EXPECT_NE(output.find("call b.key"), std::string::npos) << output;
}

TEST_F(ViewcheckFixture, MissingSrcDirIsUsageError) {
  fs::remove_all(root_ / "src");
  std::string output;
  EXPECT_EQ(run(&output), 2);
}

// ---------------------------------------------------------------------------
// The real tree must be clean (the same invariant CI gates on).

TEST(ViewcheckTree, RealSourceTreeIsClean) {
  fs::path root = fs::current_path();
  bool found = false;
  for (int i = 0; i < 5 && !root.empty(); ++i) {
    if (fs::exists(root / "src") && fs::exists(root / "tools")) {
      found = true;
      break;
    }
    root = root.parent_path();
  }
  if (!found) GTEST_SKIP() << "repo root not found from cwd";
  ViewcheckOptions options;
  options.root = root.string();
  std::string output;
  EXPECT_EQ(run_viewcheck(options, &output), 0) << output;
}

}  // namespace
}  // namespace s3viewcheck
