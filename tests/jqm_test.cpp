// Tests for the Job Queue Manager — Algorithm 1 — including parameterized
// property sweeps of its invariants (every job scans every block exactly
// once, regardless of arrival alignment, wave size or membership caps).
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.h"
#include "sched/job_queue_manager.h"
#include "sched/segment_planner.h"

namespace s3::sched {
namespace {

TEST(SegmentPlannerTest, FixedModeFollowsSegmentTable) {
  SegmentPlanner planner(WaveSizing::kFixedSegments, 4);
  EXPECT_EQ(planner.num_segments(10), 3u);
  EXPECT_EQ(planner.next_wave(10, 0, 40, 40), 4u);
  EXPECT_EQ(planner.next_wave(10, 4, 40, 40), 4u);
  EXPECT_EQ(planner.next_wave(10, 8, 40, 40), 2u);  // short final segment
}

TEST(SegmentPlannerTest, DynamicModeRescalesSegmentToUsableSlots) {
  SegmentPlanner planner(WaveSizing::kDynamicSlots, 320);
  // All 40 slots usable: the full nominal segment.
  EXPECT_EQ(planner.next_wave(2560, 0, 40, 40), 320u);
  // 34 of 40 usable: same number of whole waves on the smaller cluster.
  EXPECT_EQ(planner.next_wave(2560, 0, 34, 40), 272u);
  // Degenerate inputs stay sane.
  EXPECT_EQ(planner.next_wave(2560, 0, 0, 40), 8u);   // >= 1 slot assumed
  EXPECT_EQ(planner.next_wave(100, 0, 40, 40), 100u);  // capped at file size
}

TEST(JqmTest, SingleJobFullCycle) {
  JobQueueManager jqm(FileId(0), 10);
  jqm.admit(JobId(0));
  EXPECT_EQ(jqm.remaining(JobId(0)), 10u);

  std::uint64_t total = 0;
  std::uint64_t batches = 0;
  while (!jqm.empty()) {
    const Batch batch = jqm.form_batch(BatchId(batches++), 4);
    ASSERT_EQ(batch.members.size(), 1u);
    total += batch.members[0].blocks;
    jqm.complete_batch();
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(batches, 3u);  // 4 + 4 + 2
}

TEST(JqmTest, CompletesFlagOnFinalWave) {
  JobQueueManager jqm(FileId(0), 8);
  jqm.admit(JobId(0));
  Batch b1 = jqm.form_batch(BatchId(0), 4);
  EXPECT_FALSE(b1.members[0].completes);
  jqm.complete_batch();
  Batch b2 = jqm.form_batch(BatchId(1), 4);
  EXPECT_TRUE(b2.members[0].completes);
  const auto done = jqm.complete_batch();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], JobId(0));
  EXPECT_TRUE(jqm.empty());
}

TEST(JqmTest, ArrivalDuringBatchStartsAtNextWave) {
  JobQueueManager jqm(FileId(0), 12);
  jqm.admit(JobId(0));
  const Batch b0 = jqm.form_batch(BatchId(0), 4);  // covers [0, 4)
  EXPECT_EQ(b0.start_block, 0u);
  // Job 1 arrives while the batch runs: it must start at block 4.
  jqm.admit(JobId(1));
  EXPECT_EQ(jqm.cursor(), 4u);
  jqm.complete_batch();

  const Batch b1 = jqm.form_batch(BatchId(1), 4);  // [4, 8)
  ASSERT_EQ(b1.members.size(), 2u);  // aligned: both jobs join
  for (const auto& m : b1.members) EXPECT_EQ(m.blocks, 4u);
  jqm.complete_batch();
  EXPECT_EQ(jqm.remaining(JobId(0)), 4u);
  EXPECT_EQ(jqm.remaining(JobId(1)), 8u);
}

TEST(JqmTest, CircularWrapAround) {
  JobQueueManager jqm(FileId(0), 8);
  jqm.admit(JobId(0));
  (void)jqm.form_batch(BatchId(0), 4);
  jqm.admit(JobId(1));  // starts at block 4
  jqm.complete_batch();
  (void)jqm.form_batch(BatchId(1), 4);  // [4, 8): finishes job 0
  auto done = jqm.complete_batch();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], JobId(0));
  EXPECT_EQ(jqm.cursor(), 0u);  // wrapped

  // Job 1 still needs [0, 4).
  const Batch b2 = jqm.form_batch(BatchId(2), 4);
  EXPECT_EQ(b2.start_block, 0u);
  ASSERT_EQ(b2.members.size(), 1u);
  EXPECT_TRUE(b2.members[0].completes);
  done = jqm.complete_batch();
  EXPECT_EQ(done[0], JobId(1));
  EXPECT_TRUE(jqm.empty());
}

TEST(JqmTest, PartialFinalWaveUnderDynamicSizing) {
  JobQueueManager jqm(FileId(0), 10);
  jqm.admit(JobId(0));
  (void)jqm.form_batch(BatchId(0), 7);
  jqm.complete_batch();
  const Batch b = jqm.form_batch(BatchId(1), 7);  // job needs only 3 more
  ASSERT_EQ(b.members.size(), 1u);
  EXPECT_EQ(b.members[0].blocks, 3u);
  EXPECT_TRUE(b.members[0].completes);
  jqm.complete_batch();
  EXPECT_TRUE(jqm.empty());
}

TEST(JqmTest, MembershipCapPrefersPriorityThenArrival) {
  JobQueueManager jqm(FileId(0), 8);
  jqm.admit(JobId(0), /*priority=*/0);
  jqm.admit(JobId(1), /*priority=*/5);
  jqm.admit(JobId(2), /*priority=*/5);
  const Batch b = jqm.form_batch(BatchId(0), 4, /*max_members=*/2);
  ASSERT_EQ(b.members.size(), 2u);
  EXPECT_EQ(b.members[0].job, JobId(1));
  EXPECT_EQ(b.members[1].job, JobId(2));
  jqm.complete_batch();
  EXPECT_EQ(jqm.remaining(JobId(0)), 8u);  // skipped, untouched
}

TEST(JqmTest, SkippedJobRejoinsAfterWrap) {
  JobQueueManager jqm(FileId(0), 8);
  jqm.admit(JobId(0), 1);
  jqm.admit(JobId(1), 0);
  // Cap to 1 member: job 0 wins every wave; job 1 waits for the wrap.
  std::map<std::uint64_t, std::uint64_t> blocks_seen;  // job -> blocks
  std::uint64_t batches = 0;
  while (!jqm.empty()) {
    ASSERT_LT(batches, 20u) << "runaway";
    const Batch b = jqm.form_batch(BatchId(batches++), 4, 1);
    for (const auto& m : b.members) blocks_seen[m.job.value()] += m.blocks;
    jqm.complete_batch();
  }
  EXPECT_EQ(blocks_seen[0], 8u);
  EXPECT_EQ(blocks_seen[1], 8u);
}

// ----- Quarantine: retiring a poison member mid-flight. -----

TEST(JqmTest, RetireRemovesJobFromQueueAndInFlightBatch) {
  JobQueueManager jqm(FileId(0), 8);
  jqm.admit(JobId(0));
  jqm.admit(JobId(1));
  jqm.admit(JobId(2));
  const Batch b = jqm.form_batch(BatchId(0), 4);
  ASSERT_EQ(b.members.size(), 3u);

  // The engine quarantined job 1 while the batch runs: retire it so
  // complete_batch neither accounts nor completes it.
  ASSERT_TRUE(jqm.retire(JobId(1)).is_ok());
  const auto done = jqm.complete_batch();
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(jqm.remaining(JobId(0)), 4u);
  EXPECT_EQ(jqm.remaining(JobId(2)), 4u);

  // The survivors finish their cycle; the retired job never resurfaces.
  std::uint64_t batches = 1;
  std::map<std::uint64_t, std::uint64_t> consumed;
  while (!jqm.empty()) {
    ASSERT_LT(batches, 10u);
    const Batch next = jqm.form_batch(BatchId(batches++), 4);
    for (const auto& m : next.members) {
      EXPECT_NE(m.job, JobId(1));
      consumed[m.job.value()] += m.blocks;
    }
    jqm.complete_batch();
  }
  EXPECT_EQ(consumed[0], 4u);
  EXPECT_EQ(consumed[2], 4u);
}

TEST(JqmTest, RetireUnknownJobIsNotFound) {
  JobQueueManager jqm(FileId(0), 8);
  jqm.admit(JobId(0));
  EXPECT_EQ(jqm.retire(JobId(9)).code(), StatusCode::kNotFound);
  // Retiring twice: the second call no longer finds the job.
  ASSERT_TRUE(jqm.retire(JobId(0)).is_ok());
  EXPECT_EQ(jqm.retire(JobId(0)).code(), StatusCode::kNotFound);
  EXPECT_TRUE(jqm.empty());
}

TEST(JqmTest, RetireSoleMemberEmptiesTheQueue) {
  JobQueueManager jqm(FileId(0), 6);
  jqm.admit(JobId(4));
  (void)jqm.form_batch(BatchId(0), 3);
  ASSERT_TRUE(jqm.retire(JobId(4)).is_ok());
  EXPECT_TRUE(jqm.complete_batch().empty());
  EXPECT_TRUE(jqm.empty());
}

// ----- Property sweep: coverage invariant under many configurations. -----

struct JqmPropertyParam {
  std::uint64_t file_blocks;
  std::uint64_t wave;
  std::size_t num_jobs;
  std::size_t max_members;  // 0 = uncapped
  std::uint64_t arrival_stride;  // admit a new job every N batches
};

class JqmPropertyTest : public ::testing::TestWithParam<JqmPropertyParam> {};

TEST_P(JqmPropertyTest, EveryJobScansWholeFileExactlyOnce) {
  const auto p = GetParam();
  JobQueueManager jqm(FileId(0), p.file_blocks);

  std::map<std::uint64_t, std::uint64_t> consumed;  // job -> blocks
  // Per job, per block index: how often it was scanned for that job.
  std::map<std::uint64_t, std::map<std::uint64_t, int>> coverage;

  std::size_t admitted = 0;
  jqm.admit(JobId(admitted++));
  std::uint64_t batches = 0;
  const std::uint64_t guard =
      (p.file_blocks / p.wave + 2) * (p.num_jobs + 1) * 4 + 64;
  while (!jqm.empty()) {
    ASSERT_LT(batches, guard) << "runaway batch loop";
    const Batch b = jqm.form_batch(BatchId(batches), p.wave, p.max_members);
    // Admit more jobs mid-flight on the given stride.
    if (admitted < p.num_jobs && batches % p.arrival_stride == 0) {
      jqm.admit(JobId(admitted++));
    }
    for (const auto& m : b.members) {
      consumed[m.job.value()] += m.blocks;
      for (std::uint64_t i = 0; i < m.blocks; ++i) {
        ++coverage[m.job.value()][sched::advance_cursor(b.start_block, i,
                                                        p.file_blocks)];
      }
    }
    jqm.complete_batch();
    ++batches;
  }
  ASSERT_EQ(admitted, p.num_jobs);  // all jobs were admitted
  ASSERT_EQ(consumed.size(), p.num_jobs);
  for (const auto& [job, blocks] : consumed) {
    EXPECT_EQ(blocks, p.file_blocks) << "job " << job;
    EXPECT_EQ(coverage[job].size(), p.file_blocks) << "job " << job;
    for (const auto& [block, count] : coverage[job]) {
      EXPECT_EQ(count, 1) << "job " << job << " block " << block;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JqmPropertyTest,
    ::testing::Values(
        JqmPropertyParam{10, 5, 1, 0, 1},    // single job, even waves
        JqmPropertyParam{10, 3, 1, 0, 1},    // waves don't divide the file
        JqmPropertyParam{1, 1, 3, 0, 1},     // degenerate one-block file
        JqmPropertyParam{16, 4, 4, 0, 1},    // job per batch
        JqmPropertyParam{16, 4, 4, 0, 2},    // staggered arrivals
        JqmPropertyParam{24, 8, 6, 0, 1},    // many jobs
        JqmPropertyParam{24, 5, 6, 0, 1},    // misaligned waves, many jobs
        JqmPropertyParam{16, 4, 4, 2, 1},    // capped membership
        JqmPropertyParam{20, 6, 5, 1, 1},    // heavily capped, misaligned
        JqmPropertyParam{64, 16, 10, 3, 2},  // paper-ish scale
        JqmPropertyParam{2560, 320, 10, 0, 1}));  // full paper scale

TEST(JqmPropertyTest, RandomizedWaveSizes) {
  // Dynamic wave sizing: waves vary each batch; the coverage invariant must
  // still hold for late-arriving jobs with partial final waves.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t file_blocks = 20 + rng.uniform_u64(60);
    JobQueueManager jqm(FileId(0), file_blocks);
    std::map<std::uint64_t, std::uint64_t> consumed;
    std::size_t admitted = 0;
    const std::size_t jobs = 1 + rng.uniform_u64(5);
    jqm.admit(JobId(admitted++));
    std::uint64_t batches = 0;
    while (!jqm.empty()) {
      ASSERT_LT(batches, 4000u);
      const std::uint64_t wave = 1 + rng.uniform_u64(file_blocks);
      const Batch b = jqm.form_batch(BatchId(batches++), wave);
      if (admitted < jobs && rng.bernoulli(0.4)) jqm.admit(JobId(admitted++));
      for (const auto& m : b.members) consumed[m.job.value()] += m.blocks;
      jqm.complete_batch();
    }
    for (const auto& [job, blocks] : consumed) {
      EXPECT_EQ(blocks, file_blocks) << "trial " << trial << " job " << job;
    }
    EXPECT_EQ(consumed.size(), admitted);
  }
}

}  // namespace
}  // namespace s3::sched
