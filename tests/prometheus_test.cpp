// Prometheus exporter tests: name mangling, the exact exposition shape for
// each metric kind (pinned as a golden block so dashboards written against
// it never silently break), and the atomic snapshot file writer.
#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "obs/registry.h"

namespace s3::obs {
namespace {

// The registry is a process-wide singleton shared with every other test in
// the binary, so golden comparisons filter the exposition down to this
// test's own "promtest." metrics (mangled: "s3_promtest_").
std::string promtest_lines(const std::string& exposition) {
  std::istringstream in(exposition);
  std::string line;
  std::string out;
  while (std::getline(in, line)) {
    if (line.find("s3_promtest_") != std::string::npos) out += line + "\n";
  }
  return out;
}

TEST(Prometheus, MetricNameMangling) {
  EXPECT_EQ(prometheus_metric_name("engine.map_task_ns"),
            "s3_engine_map_task_ns");
  EXPECT_EQ(prometheus_metric_name("a.b-c d"), "s3_a_b_c_d");
  EXPECT_EQ(prometheus_metric_name("already_ok"), "s3_already_ok");
}

TEST(Prometheus, GoldenExposition) {
  auto& registry = Registry::instance();
  registry.counter("promtest.scans").add(3);
  registry.gauge("promtest.efficiency").set(0.75);
  auto& hist = registry.histogram("promtest.latency_ns");
  for (int i = 0; i < 100; ++i) hist.observe(1000);

  const std::string filtered = promtest_lines(export_prometheus(registry));
  // LogHistogram reports bucket upper edges: 1000 lands in the (1024]
  // bucket, so every quantile pins to 1024.
  // Kinds export in counter/gauge/summary order, names sorted within each.
  const std::string expected =
      "# TYPE promtest_scans counter\n"
      "s3_promtest_scans 3\n"
      "# TYPE promtest_efficiency gauge\n"
      "s3_promtest_efficiency 0.75\n"
      "# TYPE promtest_latency_ns summary\n"
      "s3_promtest_latency_ns{quantile=\"0.5\"} 1024\n"
      "s3_promtest_latency_ns{quantile=\"0.95\"} 1024\n"
      "s3_promtest_latency_ns{quantile=\"0.99\"} 1024\n"
      "s3_promtest_latency_ns_count 100\n";
  // The TYPE comments carry the mangled name too; normalize both sides the
  // same way before comparing.
  std::string expected_filtered;
  std::istringstream in(expected);
  std::string line;
  while (std::getline(in, line)) {
    expected_filtered +=
        (line.rfind("# TYPE ", 0) == 0 ? "# TYPE s3_" + line.substr(7)
                                       : line) +
        "\n";
  }
  EXPECT_EQ(filtered, expected_filtered);
}

TEST(Prometheus, InfinityQuantilesSpelledPrometheusStyle) {
  auto& registry = Registry::instance();
  // A sample in the overflow bucket makes every quantile +Inf.
  registry.histogram("promtest.overflow_ns").observe(
      std::numeric_limits<std::uint64_t>::max());
  const std::string text = export_prometheus(registry);
  EXPECT_NE(text.find("s3_promtest_overflow_ns{quantile=\"0.99\"} +Inf"),
            std::string::npos);
}

TEST(Prometheus, SnapshotFileWrittenAtomically) {
  namespace fs = std::filesystem;
  auto& registry = Registry::instance();
  registry.counter("promtest.snapshot_marker").add();
  const fs::path path = fs::path(::testing::TempDir()) / "snapshot.prom";
  ASSERT_TRUE(write_prometheus_file(registry, path.string()).is_ok());
  // The tmp staging file must be gone: only the renamed result remains.
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("s3_promtest_snapshot_marker"),
            std::string::npos);
  fs::remove(path);
}

TEST(Prometheus, ExporterWithEmptyPathIsInert) {
  SnapshotExporter exporter("", 100);
  EXPECT_FALSE(exporter.active());
}

TEST(Prometheus, ExporterWritesFinalSnapshotOnStop) {
  namespace fs = std::filesystem;
  Registry::instance().counter("promtest.exporter_marker").add();
  const fs::path path = fs::path(::testing::TempDir()) / "exporter.prom";
  fs::remove(path);
  {
    SnapshotExporter exporter(path.string(), 50);
    EXPECT_TRUE(exporter.active());
    EXPECT_EQ(exporter.path(), path.string());
  }  // destructor stops and writes one final snapshot
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("s3_promtest_exporter_marker"),
            std::string::npos);
  fs::remove(path);
}

}  // namespace
}  // namespace s3::obs
