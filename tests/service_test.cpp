// Tests for the resident submission front door: deterministic token buckets,
// exponential backoff hints, bounded lanes, weighted-fair dispatch, the
// deadline-aware overload shedder, and the shed-then-recover differential
// oracle (admitted jobs produce byte-identical output to a plain batch run).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/real_driver.h"
#include "obs/journal.h"
#include "sched/s3_scheduler.h"
#include "service/submission_service.h"
#include "service/tenant_registry.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/wordcount.h"

namespace s3 {
namespace {

using service::AdmitCode;
using service::Submission;
using service::SubmissionService;
using service::TenantQuota;
using service::TenantRegistry;

// A structurally valid spec for admission-layer tests that never execute.
engine::JobSpec make_spec(std::uint64_t job) {
  return workloads::make_wordcount_job(JobId(job), FileId(0), "a",
                                       /*reduce_tasks=*/1);
}

Submission make_submission(std::uint64_t tenant, std::uint64_t job,
                           SimTime arrival, int priority = 0,
                           SimTime deadline = kTimeNever) {
  Submission s;
  s.tenant = TenantId(tenant);
  s.spec = make_spec(job);
  s.arrival = arrival;
  s.priority = priority;
  s.deadline = deadline;
  return s;
}

TenantQuota generous_quota() {
  TenantQuota quota;
  quota.rate_jobs_per_sec = 1000.0;
  quota.burst = 100.0;
  quota.max_queued = 100;
  quota.max_inflight = 100;
  return quota;
}

// ---------------------------------------------------------------------------
// TenantRegistry

TEST(TenantRegistryTest, RefillIsDeterministicAcrossInstances) {
  const std::vector<SimTime> arrivals = {0.0, 0.1, 0.1, 0.45, 0.5,
                                         1.7, 1.7, 1.9,  4.0, 4.05};
  TenantQuota quota;
  quota.rate_jobs_per_sec = 2.0;
  quota.burst = 3.0;
  const auto replay = [&] {
    TenantRegistry registry;
    EXPECT_TRUE(registry.add_tenant(TenantId(0), "t", quota).is_ok());
    std::vector<std::pair<int, double>> trace;
    for (const SimTime t : arrivals) {
      const auto r = registry.try_consume(TenantId(0), t);
      trace.emplace_back(static_cast<int>(r.outcome), r.tokens_left);
    }
    return trace;
  };
  // Bit-identical: the bucket is pure virtual-time math, no wall clock.
  EXPECT_EQ(replay(), replay());
}

TEST(TenantRegistryTest, BucketStartsFullAndRefillsAtRate) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.rate_jobs_per_sec = 1.0;
  quota.burst = 2.0;
  ASSERT_TRUE(registry.add_tenant(TenantId(0), "t", quota).is_ok());
  EXPECT_EQ(registry.try_consume(TenantId(0), 0.0).outcome,
            TenantRegistry::TokenResult::Outcome::kOk);
  EXPECT_EQ(registry.try_consume(TenantId(0), 0.0).outcome,
            TenantRegistry::TokenResult::Outcome::kOk);
  const auto dry = registry.try_consume(TenantId(0), 0.0);
  EXPECT_EQ(dry.outcome, TenantRegistry::TokenResult::Outcome::kThrottled);
  EXPECT_GE(dry.retry_after, 1.0);  // one token away at 1 job/s
  // One virtual second later a single token has accrued.
  EXPECT_EQ(registry.try_consume(TenantId(0), 1.0).outcome,
            TenantRegistry::TokenResult::Outcome::kOk);
  EXPECT_EQ(registry.try_consume(TenantId(0), 1.0).outcome,
            TenantRegistry::TokenResult::Outcome::kThrottled);
}

TEST(TenantRegistryTest, BackoffHintsClimbExponentiallyAndCap) {
  TenantRegistry registry({/*base=*/0.05, /*cap_exp=*/3});
  TenantQuota quota;
  quota.rate_jobs_per_sec = 1000.0;  // token wait is negligible vs backoff
  quota.burst = 1.0;
  ASSERT_TRUE(registry.add_tenant(TenantId(0), "t", quota).is_ok());
  ASSERT_EQ(registry.try_consume(TenantId(0), 0.0).outcome,
            TenantRegistry::TokenResult::Outcome::kOk);
  std::vector<SimTime> hints;
  for (int i = 0; i < 5; ++i) {
    hints.push_back(registry.try_consume(TenantId(0), 0.0).retry_after);
  }
  EXPECT_DOUBLE_EQ(hints[0], 0.05 * 2);   // 1st reject: 2^1
  EXPECT_DOUBLE_EQ(hints[1], 0.05 * 4);
  EXPECT_DOUBLE_EQ(hints[2], 0.05 * 8);   // cap_exp = 3
  EXPECT_DOUBLE_EQ(hints[3], 0.05 * 8);   // clamped
  EXPECT_DOUBLE_EQ(hints[4], 0.05 * 8);
  // A successful consume resets the ladder.
  ASSERT_EQ(registry.try_consume(TenantId(0), 10.0).outcome,
            TenantRegistry::TokenResult::Outcome::kOk);
  EXPECT_DOUBLE_EQ(registry.try_consume(TenantId(0), 10.0).retry_after,
                   0.05 * 2);
}

TEST(TenantRegistryTest, MalformedQuotaAndDuplicatesAreRejected) {
  TenantRegistry registry;
  TenantQuota bad;
  bad.rate_jobs_per_sec = 0.0;
  EXPECT_FALSE(registry.add_tenant(TenantId(1), "t", bad).is_ok());
  EXPECT_TRUE(registry.add_tenant(TenantId(1), "t", generous_quota()).is_ok());
  EXPECT_FALSE(registry.add_tenant(TenantId(1), "t", generous_quota()).is_ok());
  EXPECT_EQ(registry.try_consume(TenantId(9), 0.0).outcome,
            TenantRegistry::TokenResult::Outcome::kUnknown);
}

TEST(TenantRegistryTest, SetQuotaClampsBucketToNewBurst) {
  TenantRegistry registry;
  TenantQuota quota = generous_quota();
  quota.burst = 10.0;
  ASSERT_TRUE(registry.add_tenant(TenantId(0), "t", quota).is_ok());
  quota.burst = 1.0;
  ASSERT_TRUE(registry.set_quota(TenantId(0), quota, 0.0).is_ok());
  EXPECT_EQ(registry.try_consume(TenantId(0), 0.0).outcome,
            TenantRegistry::TokenResult::Outcome::kOk);
  EXPECT_EQ(registry.try_consume(TenantId(0), 0.0).outcome,
            TenantRegistry::TokenResult::Outcome::kThrottled);
}

// ---------------------------------------------------------------------------
// SubmissionService admission ladder

TEST(SubmissionServiceTest, UnknownTenantAndClosedServiceAreRejected) {
  SubmissionService service;
  EXPECT_EQ(service.submit(make_submission(7, 0, 0.0)).code,
            AdmitCode::kRejected);
  ASSERT_TRUE(
      service.register_tenant(TenantId(0), "t", generous_quota()).is_ok());
  service.close();
  const auto d = service.submit(make_submission(0, 1, 0.0));
  EXPECT_EQ(d.code, AdmitCode::kRejected);
  EXPECT_EQ(d.reason, "service closed");
}

TEST(SubmissionServiceTest, TokenExhaustionYieldsRetryAfterThenRecovers) {
  SubmissionService service;
  TenantQuota quota = generous_quota();
  quota.rate_jobs_per_sec = 1.0;
  quota.burst = 2.0;
  ASSERT_TRUE(service.register_tenant(TenantId(0), "t", quota).is_ok());
  EXPECT_TRUE(service.submit(make_submission(0, 0, 0.0)).admitted());
  EXPECT_TRUE(service.submit(make_submission(0, 1, 0.0)).admitted());
  const auto throttled = service.submit(make_submission(0, 2, 0.0));
  EXPECT_EQ(throttled.code, AdmitCode::kRetryAfter);
  EXPECT_GT(throttled.retry_after, 0.0);
  // Re-offering at the hinted virtual time succeeds.
  EXPECT_TRUE(
      service.submit(make_submission(0, 2, throttled.retry_after)).admitted());
  const auto counts = service.counts();
  EXPECT_EQ(counts.submitted, 4u);
  EXPECT_EQ(counts.admitted, 3u);
  EXPECT_EQ(counts.retry_after, 1u);
}

TEST(SubmissionServiceTest, FullLaneYieldsRetryAfterWithBackoffHint) {
  SubmissionService service;
  TenantQuota quota = generous_quota();
  quota.max_queued = 2;
  ASSERT_TRUE(service.register_tenant(TenantId(0), "t", quota).is_ok());
  EXPECT_TRUE(service.submit(make_submission(0, 0, 0.0)).admitted());
  EXPECT_TRUE(service.submit(make_submission(0, 1, 0.0)).admitted());
  const auto bounced = service.submit(make_submission(0, 2, 0.0));
  EXPECT_EQ(bounced.code, AdmitCode::kRetryAfter);
  EXPECT_EQ(bounced.reason, "tenant queue bound");
  EXPECT_GT(bounced.retry_after, 0.0);
  EXPECT_EQ(service.queued(), 2u);
}

TEST(SubmissionServiceTest, ConcurrencyQuotaGatesDispatchUntilFinish) {
  SubmissionService service;
  TenantQuota quota = generous_quota();
  quota.max_inflight = 1;
  ASSERT_TRUE(service.register_tenant(TenantId(0), "t", quota).is_ok());
  ASSERT_TRUE(service.submit(make_submission(0, 0, 0.0)).admitted());
  ASSERT_TRUE(service.submit(make_submission(0, 1, 0.0)).admitted());
  auto first = service.poll_admitted(0.0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].submission.spec.id, JobId(0));
  EXPECT_TRUE(service.poll_admitted(0.0).empty());  // quota holds the second
  EXPECT_FALSE(service.next_ready_time(0.0).has_value());
  service.on_job_finished(JobId(0));
  auto second = service.poll_admitted(0.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].submission.spec.id, JobId(1));
}

TEST(SubmissionServiceTest, FutureArrivalsWaitAndNextReadyTimeReportsThem) {
  SubmissionService service;
  ASSERT_TRUE(
      service.register_tenant(TenantId(0), "t", generous_quota()).is_ok());
  ASSERT_TRUE(service.submit(make_submission(0, 0, 5.0)).admitted());
  EXPECT_TRUE(service.poll_admitted(1.0).empty());
  const auto ready = service.next_ready_time(1.0);
  ASSERT_TRUE(ready.has_value());
  EXPECT_DOUBLE_EQ(*ready, 5.0);
  EXPECT_EQ(service.poll_admitted(5.0).size(), 1u);
}

TEST(SubmissionServiceTest, WeightedFairDispatchFollowsStrideOrder) {
  SubmissionService service;
  TenantQuota heavy = generous_quota();
  heavy.weight = 2.0;
  TenantQuota light = generous_quota();
  light.weight = 1.0;
  ASSERT_TRUE(service.register_tenant(TenantId(0), "heavy", heavy).is_ok());
  ASSERT_TRUE(service.register_tenant(TenantId(1), "light", light).is_ok());
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.submit(make_submission(0, i, 0.0)).admitted());
  }
  for (std::uint64_t i = 4; i < 6; ++i) {
    ASSERT_TRUE(service.submit(make_submission(1, i, 0.0)).admitted());
  }
  const auto released = service.poll_admitted(0.0);
  ASSERT_EQ(released.size(), 6u);
  std::vector<std::uint64_t> order;
  for (const auto& job : released) order.push_back(job.submission.tenant.value());
  // Stride with weights 2:1 (ties break toward the lower tenant id):
  // heavy, light, heavy, heavy, light, heavy.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 0, 0, 1, 0}));
}

TEST(SubmissionServiceTest, IdleLaneEarnsNoFairShareCredit) {
  SubmissionService service;
  ASSERT_TRUE(
      service.register_tenant(TenantId(0), "busy", generous_quota()).is_ok());
  ASSERT_TRUE(
      service.register_tenant(TenantId(1), "idle", generous_quota()).is_ok());
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.submit(make_submission(0, i, 0.0)).admitted());
  }
  ASSERT_EQ(service.poll_admitted(0.0).size(), 8u);
  // The idle lane wakes at the current pass — it must not get a make-up
  // burst for the time it spent empty, only ordinary alternation.
  for (std::uint64_t i = 8; i < 12; ++i) {
    ASSERT_TRUE(
        service.submit(make_submission(i % 2, 100 + i, 0.0)).admitted());
  }
  const auto released = service.poll_admitted(0.0);
  ASSERT_EQ(released.size(), 4u);
  std::size_t idle_first_two = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    if (released[i].submission.tenant == TenantId(1)) ++idle_first_two;
  }
  EXPECT_LE(idle_first_two, 1u);
}

// ---------------------------------------------------------------------------
// Overload shedding

void fill_to_global_bound(SubmissionService& service,
                          std::uint64_t tenant = 0) {
  // Two admitted priority-0 submissions hit the bound of 2.
  EXPECT_TRUE(service.submit(make_submission(tenant, 0, 0.0)).admitted());
  EXPECT_TRUE(service.submit(make_submission(tenant, 1, 0.0)).admitted());
}

service::ServiceOptions tiny_bound_options() {
  service::ServiceOptions options;
  options.global_queue_bound = 2;
  return options;
}

TEST(SubmissionServiceTest, HigherPriorityDisplacesNewestLowestPriority) {
  SubmissionService service(tiny_bound_options());
  ASSERT_TRUE(
      service.register_tenant(TenantId(0), "t", generous_quota()).is_ok());
  fill_to_global_bound(service);
  const auto d = service.submit(make_submission(0, 2, 0.0, /*priority=*/1));
  EXPECT_TRUE(d.admitted());
  const auto shed = service.shed_log();
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].job, JobId(1));  // newest of the priority-0 pair
  EXPECT_FALSE(shed[0].deadline_expired);
  EXPECT_EQ(service.queued(), 2u);  // bound holds
  // The displaced job is gone; the survivors are 0 and 2.
  const auto released = service.poll_admitted(0.0);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].submission.spec.id, JobId(0));
  EXPECT_EQ(released[1].submission.spec.id, JobId(2));
}

TEST(SubmissionServiceTest, IncomingIsShedWhenNothingQueuedIsWorse) {
  SubmissionService service(tiny_bound_options());
  ASSERT_TRUE(
      service.register_tenant(TenantId(0), "t", generous_quota()).is_ok());
  fill_to_global_bound(service);
  // Same priority as everything queued: the incoming job is the newest
  // lowest-priority work, so *it* is shed — with a typed decision, not an
  // exception or a blocked caller.
  const auto d = service.submit(make_submission(0, 2, 0.0, /*priority=*/0));
  EXPECT_EQ(d.code, AdmitCode::kShed);
  EXPECT_GT(d.retry_after, 0.0);
  EXPECT_TRUE(service.shed_log().empty());  // no queued victim was dropped
  EXPECT_EQ(service.queued(), 2u);
}

TEST(SubmissionServiceTest, ExpiredDeadlineIsShedBeforeLowerPriority) {
  SubmissionService service(tiny_bound_options());
  ASSERT_TRUE(
      service.register_tenant(TenantId(0), "t", generous_quota()).is_ok());
  // Priority-2 submission whose deadline passes, next to a priority-0 one.
  ASSERT_TRUE(service
                  .submit(make_submission(0, 0, 0.0, /*priority=*/2,
                                          /*deadline=*/0.5))
                  .admitted());
  ASSERT_TRUE(service.submit(make_submission(0, 1, 0.0, /*priority=*/0))
                  .admitted());
  // At t=1 the deadline of job 0 has expired: it is the victim even though
  // its priority is higher — work that can no longer meet its deadline is
  // the cheapest thing to drop.
  const auto d = service.submit(make_submission(0, 2, 1.0, /*priority=*/0));
  EXPECT_TRUE(d.admitted());
  const auto shed = service.shed_log();
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].job, JobId(0));
  EXPECT_TRUE(shed[0].deadline_expired);
}

TEST(SubmissionServiceTest, DispatchedJobsAreNeverShed) {
  SubmissionService service(tiny_bound_options());
  ASSERT_TRUE(
      service.register_tenant(TenantId(0), "t", generous_quota()).is_ok());
  fill_to_global_bound(service);
  // Dispatch both: the queue empties, in-flight work is not shed material.
  ASSERT_EQ(service.poll_admitted(0.0).size(), 2u);
  EXPECT_TRUE(service.submit(make_submission(0, 2, 0.0)).admitted());
  EXPECT_TRUE(service.submit(make_submission(0, 3, 0.0)).admitted());
  const auto d = service.submit(make_submission(0, 4, 0.0, /*priority=*/1));
  EXPECT_TRUE(d.admitted());
  const auto shed = service.shed_log();
  ASSERT_EQ(shed.size(), 1u);
  // The victim is queued job 3, never the dispatched jobs 0/1.
  EXPECT_EQ(shed[0].job, JobId(3));
}

TEST(SubmissionServiceTest, DecisionJournalCarriesTenantAndReason) {
  obs::EventJournal::instance().clear();
  obs::EventJournal::instance().set_enabled(true);
  {
    SubmissionService service(tiny_bound_options());
    ASSERT_TRUE(
        service.register_tenant(TenantId(3), "t", generous_quota()).is_ok());
    fill_to_global_bound(service, 3);
    (void)service.submit(make_submission(9, 10, 0.0));  // unknown tenant
    // Overload at equal priority: the incoming submission itself is shed.
    (void)service.submit(make_submission(3, 11, 0.0, /*priority=*/0));
  }
  const auto events = obs::EventJournal::instance().snapshot();
  obs::EventJournal::instance().set_enabled(false);
  obs::EventJournal::instance().clear();
  std::size_t admitted = 0, rejected = 0, shed = 0;
  for (const auto& e : events) {
    if (e.type == obs::JournalEventType::kServiceAdmitted) ++admitted;
    if (e.type == obs::JournalEventType::kServiceRejected) {
      ++rejected;
      EXPECT_NE(e.detail.find("tenant="), std::string::npos);
      EXPECT_NE(e.detail.find("reason="), std::string::npos);
    }
    if (e.type == obs::JournalEventType::kServiceShed) ++shed;
  }
  EXPECT_EQ(admitted, 2u);  // the two submissions that filled the bound
  EXPECT_EQ(rejected, 1u);  // unknown tenant
  EXPECT_EQ(shed, 1u);      // the final overload submission
}

// ---------------------------------------------------------------------------
// Shed-then-recover differential oracle (real engine underneath)

struct ServiceWorld {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  cluster::Topology topology = cluster::Topology::uniform(4, 2);
  sched::FileCatalog catalog;
  FileId file;

  ServiceWorld() {
    dfs::PlacementTopology ptopo;
    for (const auto& n : topology.nodes()) {
      ptopo.nodes.push_back({n.id, n.rack});
    }
    dfs::RoundRobinPlacement placement(ptopo);
    workloads::TextCorpusGenerator corpus;
    file = corpus
               .generate_file(ns, store, placement, "text", /*num_blocks=*/8,
                              ByteSize::kib(8))
               .value();
    catalog.add(file, 8);
  }
};

core::RealRunResult run_resident(ServiceWorld& world,
                                 SubmissionService& service) {
  engine::LocalEngineOptions eopts;
  eopts.map_workers = 2;
  eopts.reduce_workers = 2;
  engine::LocalEngine engine(world.ns, world.store, eopts);
  sched::S3Options s3_opts;
  s3_opts.blocks_per_segment = 4;
  sched::S3Scheduler scheduler(world.catalog, s3_opts, &world.topology);
  core::RealDriver driver(world.ns, engine, world.catalog,
                          {/*time_scale=*/1e5, /*map_slots=*/2});
  auto run = driver.run_service(scheduler, service);
  EXPECT_TRUE(run.is_ok()) << run.status();
  return std::move(run).value();
}

void expect_same_output(const engine::JobResult& got,
                        const engine::JobResult& want) {
  ASSERT_EQ(got.output.size(), want.output.size());
  for (std::size_t i = 0; i < got.output.size(); ++i) {
    ASSERT_EQ(got.output[i].key, want.output[i].key);
    ASSERT_EQ(got.output[i].value, want.output[i].value);
  }
}

TEST(ServiceDriverTest, ShedThenRecoverOutputsMatchPlainBatchRun) {
  // Overload a tiny pipeline: 8 offered jobs against a global bound of 3.
  // Some are shed; every admitted job must finish with output byte-identical
  // to a plain run() of exactly the admitted set.
  ServiceWorld world;
  service::ServiceOptions options;
  options.global_queue_bound = 3;
  SubmissionService service(options);
  TenantQuota quota = generous_quota();
  quota.max_inflight = 2;
  ASSERT_TRUE(service.register_tenant(TenantId(0), "alpha", quota).is_ok());
  ASSERT_TRUE(service.register_tenant(TenantId(1), "beta", quota).is_ok());

  const char* prefixes = "abcdefgh";
  std::vector<core::RealJob> admitted_jobs;
  for (std::uint64_t j = 0; j < 8; ++j) {
    Submission s;
    s.tenant = TenantId(j % 2);
    s.spec = workloads::make_wordcount_job(JobId(j), world.file,
                                           std::string(1, prefixes[j]),
                                           /*reduce_tasks=*/2);
    s.arrival = 0.1 * static_cast<double>(j);
    s.priority = static_cast<int>(j % 3);
    const auto d = service.submit(s);
    if (d.admitted()) {
      admitted_jobs.push_back({s.spec, s.arrival, s.priority});
    }
  }
  service.close();
  // Remove jobs the shedder displaced after admission.
  const auto shed = service.shed_log();
  ASSERT_FALSE(shed.empty());  // the overload must actually engage
  for (const auto& record : shed) {
    for (auto it = admitted_jobs.begin(); it != admitted_jobs.end(); ++it) {
      if (it->spec.id == record.job) {
        admitted_jobs.erase(it);
        break;
      }
    }
  }
  ASSERT_FALSE(admitted_jobs.empty());

  const core::RealRunResult resident = run_resident(world, service);
  ASSERT_EQ(resident.outputs.size(), admitted_jobs.size());
  for (const auto& record : shed) {
    EXPECT_EQ(resident.outputs.count(record.job), 0u)
        << "shed job " << record.job << " must not produce output";
  }
  const auto counts = service.counts();
  EXPECT_EQ(counts.dispatched, admitted_jobs.size());
  EXPECT_EQ(counts.finished, admitted_jobs.size());

  // Differential oracle: the plain batch driver over the surviving set.
  ServiceWorld solo_world;
  engine::LocalEngineOptions eopts;
  eopts.map_workers = 2;
  eopts.reduce_workers = 2;
  engine::LocalEngine engine(solo_world.ns, solo_world.store, eopts);
  sched::S3Options s3_opts;
  s3_opts.blocks_per_segment = 4;
  sched::S3Scheduler scheduler(solo_world.catalog, s3_opts,
                               &solo_world.topology);
  core::RealDriver driver(solo_world.ns, engine, solo_world.catalog,
                          {/*time_scale=*/1e5, /*map_slots=*/2});
  std::vector<core::RealJob> solo_jobs;
  for (const auto& job : admitted_jobs) {
    solo_jobs.push_back(
        {workloads::make_wordcount_job(
             job.spec.id, solo_world.file,
             std::string(1, prefixes[job.spec.id.value()]), 2),
         job.arrival, job.priority});
  }
  auto solo = driver.run(scheduler, std::move(solo_jobs));
  ASSERT_TRUE(solo.is_ok()) << solo.status();
  for (const auto& [job, output] : solo.value().outputs) {
    const auto it = resident.outputs.find(job);
    ASSERT_NE(it, resident.outputs.end());
    expect_same_output(it->second, output);
  }
}

TEST(ServiceDriverTest, StaggeredArrivalsJoinAsLateArrivalsAndComplete) {
  ServiceWorld world;
  SubmissionService service;
  ASSERT_TRUE(
      service.register_tenant(TenantId(0), "t", generous_quota()).is_ok());
  const char* prefixes = "abcd";
  for (std::uint64_t j = 0; j < 4; ++j) {
    Submission s;
    s.tenant = TenantId(0);
    s.spec = workloads::make_wordcount_job(JobId(j), world.file,
                                           std::string(1, prefixes[j]),
                                           /*reduce_tasks=*/2);
    // Spread far enough apart (vs time_scale) that later submissions land
    // while earlier waves are in flight — the Partial-Job-Init path.
    s.arrival = 0.5 * static_cast<double>(j);
    ASSERT_TRUE(service.submit(s).admitted());
  }
  service.close();
  const core::RealRunResult result = run_resident(world, service);
  EXPECT_EQ(result.outputs.size(), 4u);
  EXPECT_TRUE(result.failed.empty());
  const auto counts = service.counts();
  EXPECT_EQ(counts.admitted, 4u);
  EXPECT_EQ(counts.finished, 4u);
  EXPECT_TRUE(service.drained());
}

}  // namespace
}  // namespace s3
