// Cross-cutting property tests: simulator-vs-analytic consistency, batch
// coverage invariants at the simulator level, and scheduler-independence of
// total work.
#include <gtest/gtest.h>

#include <map>

#include "sched/analytic.h"
#include "workloads/arrival.h"
#include "workloads/suite.h"

namespace s3 {
namespace {

using workloads::make_sim_jobs;

sim::RunResult simulate(const workloads::PaperSetup& setup,
                        sched::Scheduler& scheduler,
                        const std::vector<sim::SimJob>& jobs,
                        sim::SimConfig config = {}) {
  config.cost = setup.cost;
  sim::SimEngine engine(setup.topology, setup.catalog, config);
  auto result = engine.run(scheduler, jobs);
  EXPECT_TRUE(result.is_ok()) << result.status();
  return std::move(result).value();
}

// --- Simulator vs analytic model on the worked-example scenarios. ---

class SimVsAnalyticTest : public ::testing::TestWithParam<double> {};

TEST_P(SimVsAnalyticTest, FifoMatchesClosedForm) {
  const auto setup = workloads::make_paper_setup(64.0);
  const double offset_fraction = GetParam();

  // Measure a single job's duration D, then check the 2-job FIFO run
  // against the closed form with that D.
  auto fifo1 = workloads::make_fifo(setup.catalog);
  const auto solo = simulate(setup, *fifo1,
                             make_sim_jobs(setup.wordcount_file, {0.0},
                                           sim::WorkloadCost::wordcount_normal()));
  const double d = solo.summary.tet;
  const double offset = offset_fraction * d;

  auto fifo2 = workloads::make_fifo(setup.catalog);
  const auto pair = simulate(
      setup, *fifo2,
      make_sim_jobs(setup.wordcount_file, {0.0, offset},
                    sim::WorkloadCost::wordcount_normal()));

  sched::AnalyticScenario scenario;
  scenario.arrivals = {0.0, offset};
  scenario.job_duration = d;
  const auto expected = sched::analytic_fifo(scenario);
  EXPECT_NEAR(pair.summary.tet, expected.tet, 1e-6);
  EXPECT_NEAR(pair.summary.art, expected.art, 1e-6);
}

TEST_P(SimVsAnalyticTest, S3ResponseApproachesIdealWithinOverhead) {
  const auto setup = workloads::make_paper_setup(64.0);
  const double offset_fraction = GetParam();

  auto fifo = workloads::make_fifo(setup.catalog);
  const double d = simulate(setup, *fifo,
                            make_sim_jobs(setup.wordcount_file, {0.0},
                                          sim::WorkloadCost::wordcount_normal()))
                       .summary.tet;
  const double offset = offset_fraction * d;

  auto s3 = workloads::make_s3(setup.catalog, setup.topology,
                               setup.default_segment_blocks());
  const auto run = simulate(
      setup, *s3,
      make_sim_jobs(setup.wordcount_file, {0.0, offset},
                    sim::WorkloadCost::wordcount_normal()));

  // Idealized S3: each response = D. The discrete implementation pays
  // alignment wait (≤ one sub-job) + per-sub-job launch overheads + sharing
  // overheads — bounded by ~25% of D at this calibration.
  for (const auto& record : run.jobs) {
    EXPECT_GE(record.response_time(), d * 0.95);
    EXPECT_LE(record.response_time(), d * 1.25);
  }
}

INSTANTIATE_TEST_SUITE_P(OffsetSweep, SimVsAnalyticTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8));

// --- Block coverage at the simulator level. ---

TEST(SimCoverageTest, EveryJobCoversWholeFileUnderEveryScheduler) {
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = make_sim_jobs(setup.wordcount_file,
                                  workloads::paper_sparse_arrivals(),
                                  sim::WorkloadCost::wordcount_normal());
  struct Named {
    const char* name;
    std::unique_ptr<sched::Scheduler> scheduler;
  };
  std::vector<Named> schemes;
  schemes.push_back({"fifo", workloads::make_fifo(setup.catalog)});
  schemes.push_back({"mrs2", workloads::make_mrs2(setup.catalog)});
  schemes.push_back({"s3", workloads::make_s3(setup.catalog, setup.topology,
                                              setup.default_segment_blocks())});
  for (auto& scheme : schemes) {
    const auto run = simulate(setup, *scheme.scheduler, jobs);
    // Per job, blocks covered must equal the file size exactly once. The
    // sim's batch traces record per-batch member counts; recompute from
    // member * blocks accounting.
    std::map<std::size_t, std::uint64_t> per_batch_blocks;
    double logical_blocks = 0;
    for (const auto& batch : run.batches) {
      logical_blocks +=
          static_cast<double>(batch.members) * static_cast<double>(batch.num_blocks);
    }
    // 10 jobs x 2560 blocks each = 25,600 logical block-scans, allowing for
    // partial membership on final dynamic waves (none in fixed mode).
    EXPECT_GE(logical_blocks, 10.0 * 2560.0) << scheme.name;
    EXPECT_LE(logical_blocks, 10.0 * 2560.0 * 1.001) << scheme.name;
  }
}

TEST(SimWorkConservationTest, SharingNeverIncreasesBusyTime) {
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = make_sim_jobs(setup.wordcount_file,
                                  workloads::paper_sparse_arrivals(),
                                  sim::WorkloadCost::wordcount_normal());
  auto fifo = workloads::make_fifo(setup.catalog);
  auto s3 = workloads::make_s3(setup.catalog, setup.topology,
                               setup.default_segment_blocks());
  const auto r_fifo = simulate(setup, *fifo, jobs);
  const auto r_s3 = simulate(setup, *s3, jobs);
  // Cluster-busy seconds: shared scanning strictly reduces total work.
  EXPECT_LT(r_s3.trace_stats.total_busy, r_fifo.trace_stats.total_busy);
}

TEST(SimDeterminismTest, RepeatedRunsIdentical) {
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = make_sim_jobs(setup.wordcount_file,
                                  workloads::paper_sparse_arrivals(),
                                  sim::WorkloadCost::wordcount_normal());
  double tets[2];
  for (int i = 0; i < 2; ++i) {
    auto s3 = workloads::make_s3(setup.catalog, setup.topology,
                                 setup.default_segment_blocks());
    tets[i] = simulate(setup, *s3, jobs).summary.tet;
  }
  EXPECT_DOUBLE_EQ(tets[0], tets[1]);
}

// --- Arrival-density dominance properties. ---

class DensitySweepTest : public ::testing::TestWithParam<double> {};

TEST_P(DensitySweepTest, S3ArtNeverMuchWorseThanFifo) {
  const auto setup = workloads::make_paper_setup(64.0);
  const auto jobs = make_sim_jobs(
      setup.wordcount_file, workloads::uniform_pattern(6, GetParam()),
      sim::WorkloadCost::wordcount_normal());
  auto fifo = workloads::make_fifo(setup.catalog);
  auto s3 = workloads::make_s3(setup.catalog, setup.topology,
                               setup.default_segment_blocks());
  const auto r_fifo = simulate(setup, *fifo, jobs);
  const auto r_s3 = simulate(setup, *s3, jobs);
  // Across the density spectrum, S3's ART stays within a small factor of
  // FIFO's best case and usually far below it.
  EXPECT_LT(r_s3.summary.art, r_fifo.summary.art * 1.30);
  // TET: S3 never loses to FIFO by more than the launch-overhead slack.
  EXPECT_LT(r_s3.summary.tet, r_fifo.summary.tet * 1.15);
}

INSTANTIATE_TEST_SUITE_P(GapSweep, DensitySweepTest,
                         ::testing::Values(0.0, 20.0, 60.0, 150.0, 300.0,
                                           500.0));

}  // namespace
}  // namespace s3
