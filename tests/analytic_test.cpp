// The paper's worked examples (§III, Examples 1-3) as exact unit tests of
// the analytic models, plus structural properties.
#include <gtest/gtest.h>

#include "sched/analytic.h"

namespace s3::sched {
namespace {

AnalyticScenario two_jobs(double offset) {
  AnalyticScenario s;
  s.arrivals = {0.0, offset};
  s.job_duration = 100.0;
  return s;
}

TEST(AnalyticTest, Example1Fifo) {
  const auto out = analytic_fifo(two_jobs(20.0));
  EXPECT_DOUBLE_EQ(out.tet, 200.0);
  EXPECT_DOUBLE_EQ(out.art, 140.0);
  EXPECT_DOUBLE_EQ(out.completions[0], 100.0);
  EXPECT_DOUBLE_EQ(out.completions[1], 200.0);
}

TEST(AnalyticTest, Example1MRShare) {
  const auto out = analytic_mrshare(two_jobs(20.0), {2});
  EXPECT_DOUBLE_EQ(out.tet, 120.0);
  EXPECT_DOUBLE_EQ(out.art, 110.0);
}

TEST(AnalyticTest, Example3S3EarlyArrival) {
  const auto out = analytic_s3(two_jobs(20.0));
  EXPECT_DOUBLE_EQ(out.tet, 120.0);
  EXPECT_DOUBLE_EQ(out.art, 100.0);
}

TEST(AnalyticTest, Example2Fifo) {
  const auto out = analytic_fifo(two_jobs(80.0));
  EXPECT_DOUBLE_EQ(out.tet, 200.0);
  EXPECT_DOUBLE_EQ(out.art, 110.0);
}

TEST(AnalyticTest, Example2MRShare) {
  const auto out = analytic_mrshare(two_jobs(80.0), {2});
  EXPECT_DOUBLE_EQ(out.tet, 180.0);
  EXPECT_DOUBLE_EQ(out.art, 140.0);
}

TEST(AnalyticTest, Example3S3LateArrival) {
  const auto out = analytic_s3(two_jobs(80.0));
  EXPECT_DOUBLE_EQ(out.tet, 180.0);
  EXPECT_DOUBLE_EQ(out.art, 100.0);
}

TEST(AnalyticTest, FifoQueuesSequentially) {
  AnalyticScenario s;
  s.arrivals = {0.0, 0.0, 0.0};
  s.job_duration = 10.0;
  const auto out = analytic_fifo(s);
  EXPECT_DOUBLE_EQ(out.completions[2], 30.0);
  EXPECT_DOUBLE_EQ(out.tet, 30.0);
  EXPECT_DOUBLE_EQ(out.art, 20.0);
}

TEST(AnalyticTest, FifoIdleGapsRespectArrivals) {
  AnalyticScenario s;
  s.arrivals = {0.0, 1000.0};
  s.job_duration = 10.0;
  const auto out = analytic_fifo(s);
  EXPECT_DOUBLE_EQ(out.completions[1], 1010.0);
  EXPECT_DOUBLE_EQ(out.art, 10.0);
}

TEST(AnalyticTest, MRShareCombineOverhead) {
  AnalyticScenario s = two_jobs(0.0);
  s.combine_overhead = 0.1;
  const auto out = analytic_mrshare(s, {2});
  EXPECT_DOUBLE_EQ(out.tet, 110.0);  // 100 * (1 + 0.1)
}

TEST(AnalyticTest, MRShareMultipleGroupsSerialize) {
  AnalyticScenario s;
  s.arrivals = {0.0, 1.0, 2.0, 3.0};
  s.job_duration = 50.0;
  const auto out = analytic_mrshare(s, {2, 2});
  EXPECT_DOUBLE_EQ(out.completions[0], 51.0);   // starts at arrival of job 2
  EXPECT_DOUBLE_EQ(out.completions[2], 101.0);  // waits for group 1
  EXPECT_DOUBLE_EQ(out.tet, 101.0);
}

TEST(AnalyticTest, S3ResponseAlwaysEqualsJobDuration) {
  AnalyticScenario s;
  s.arrivals = {0.0, 3.0, 777.0, 1500.0};
  s.job_duration = 42.0;
  const auto out = analytic_s3(s);
  for (std::size_t i = 0; i < s.arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.completions[i] - s.arrivals[i], 42.0);
  }
  EXPECT_DOUBLE_EQ(out.art, 42.0);
}

TEST(AnalyticTest, S3NeverWorseThanMRShareInArt) {
  // With zero overhead, idealized S3's ART (= D) lower-bounds both.
  for (const double offset : {0.0, 10.0, 50.0, 90.0, 200.0}) {
    const auto s = two_jobs(offset);
    EXPECT_LE(analytic_s3(s).art, analytic_mrshare(s, {2}).art + 1e-9);
    EXPECT_LE(analytic_s3(s).art, analytic_fifo(s).art + 1e-9);
  }
}

class AnalyticDominanceTest : public ::testing::TestWithParam<double> {};

TEST_P(AnalyticDominanceTest, S3TetNeverWorseThanFifo) {
  const auto s = two_jobs(GetParam());
  EXPECT_LE(analytic_s3(s).tet, analytic_fifo(s).tet + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(OffsetSweep, AnalyticDominanceTest,
                         ::testing::Values(0.0, 5.0, 20.0, 50.0, 80.0, 99.0,
                                           100.0, 150.0, 400.0));

}  // namespace
}  // namespace s3::sched
