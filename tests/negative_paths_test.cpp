// Negative-path coverage: the logger sink, and the drivers' deadlock
// detection when a (buggy) scheduler holds jobs but never launches work.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/real_driver.h"
#include "sim/sim_engine.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/wordcount.h"

namespace s3 {
namespace {

TEST(LoggingTest, LevelsGateOutput) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kTrace);
  EXPECT_TRUE(logger.enabled(LogLevel::kDebug));
  // Exercise the sink (writes to stderr).
  S3_LOG(kError, "test") << "negative-path logging check " << 42;
  logger.set_level(original);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

// A scheduler that accepts jobs but never launches anything.
class StuckScheduler final : public sched::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "stuck"; }
  void on_job_arrival(const sched::JobArrival&, SimTime) override {
    ++jobs_;
  }
  std::optional<sched::Batch> next_batch(SimTime,
                                         const sched::ClusterStatus&) override {
    return std::nullopt;
  }
  void on_batch_complete(BatchId, SimTime) override {}
  [[nodiscard]] std::size_t pending_jobs() const override { return jobs_; }

 private:
  std::size_t jobs_ = 0;
};

TEST(DeadlockDetectionTest, SimEngineReportsStuckScheduler) {
  const auto setup = workloads::make_paper_setup(64.0);
  StuckScheduler stuck;
  sim::SimConfig config;
  config.cost = setup.cost;
  sim::SimEngine engine(setup.topology, setup.catalog, config);
  const auto result = engine.run(
      stuck, workloads::make_sim_jobs(setup.wordcount_file, {0.0},
                                      sim::WorkloadCost::wordcount_normal()));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("deadlock"), std::string::npos);
}

TEST(DeadlockDetectionTest, RealDriverReportsStuckScheduler) {
  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  dfs::PlacementTopology ptopo;
  ptopo.nodes.push_back({NodeId(0), RackId(0)});
  dfs::RoundRobinPlacement placement(ptopo);
  workloads::TextCorpusGenerator corpus;
  const FileId file =
      corpus.generate_file(ns, store, placement, "f", 2, ByteSize::kib(1))
          .value();
  sched::FileCatalog catalog;
  catalog.add(file, 2);
  engine::LocalEngineOptions opts;
  opts.map_workers = 1;
  opts.reduce_workers = 1;
  engine::LocalEngine engine(ns, store, opts);
  core::RealDriver driver(ns, engine, catalog);
  StuckScheduler stuck;
  std::vector<core::RealJob> jobs;
  jobs.push_back({workloads::make_wordcount_job(JobId(0), file, "a", 1), 0.0,
                  0});
  const auto result = driver.run(stuck, std::move(jobs));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace s3
