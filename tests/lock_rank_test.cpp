// Tests for the runtime lock-rank validator (src/common/lock_rank.h): the
// dynamic half of the deadlock defense. The abort path itself is proven in
// invariant_death_test.cpp; here we cover the bookkeeping — monotonic
// acquisition, address-based release (including out-of-LIFO order), the
// kUnranked exemption, and per-thread isolation of the held stack.
#include <gtest/gtest.h>

#include <thread>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace s3 {
namespace {

#if S3_LOCK_RANK_CHECKS

class LockRankTest : public ::testing::Test {
 protected:
  void TearDown() override { lock_rank::reset_for_test(); }
};

TEST_F(LockRankTest, MonotonicAcquisitionTracksHeldStack) {
  int a = 0, b = 0, c = 0;
  lock_rank::note_acquire(LockRank::kSchedJobQueue, &a);
  lock_rank::note_acquire(LockRank::kEngineState, &b);
  lock_rank::note_acquire(LockRank::kObsJournal, &c);
  const auto held = lock_rank::held_for_test();
  ASSERT_EQ(held.size(), 3u);
  EXPECT_EQ(held[0], LockRank::kSchedJobQueue);
  EXPECT_EQ(held[1], LockRank::kEngineState);
  EXPECT_EQ(held[2], LockRank::kObsJournal);
  lock_rank::note_release(LockRank::kObsJournal, &c);
  lock_rank::note_release(LockRank::kEngineState, &b);
  lock_rank::note_release(LockRank::kSchedJobQueue, &a);
  EXPECT_TRUE(lock_rank::held_for_test().empty());
}

TEST_F(LockRankTest, OutOfLifoReleaseIsTolerated) {
  // WriterMutexLock scopes can end in any order relative to unrelated
  // guards; release is by address, not stack position.
  int a = 0, b = 0;
  lock_rank::note_acquire(LockRank::kSchedJobQueue, &a);
  lock_rank::note_acquire(LockRank::kEngineState, &b);
  lock_rank::note_release(LockRank::kSchedJobQueue, &a);
  const auto held = lock_rank::held_for_test();
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0], LockRank::kEngineState);
  lock_rank::note_release(LockRank::kEngineState, &b);
}

TEST_F(LockRankTest, UnrankedIsExempt) {
  int a = 0, u = 0;
  lock_rank::note_acquire(LockRank::kLogging, &a);
  // kUnranked after the highest rank: no abort, no frame.
  lock_rank::note_acquire(LockRank::kUnranked, &u);
  EXPECT_EQ(lock_rank::held_for_test().size(), 1u);
  lock_rank::note_release(LockRank::kUnranked, &u);
  lock_rank::note_release(LockRank::kLogging, &a);
}

TEST_F(LockRankTest, HeldStacksArePerThread) {
  int a = 0;
  lock_rank::note_acquire(LockRank::kObsJournal, &a);
  std::thread other([] {
    // A lower rank on a different thread is fine: stacks are thread-local.
    int b = 0;
    lock_rank::note_acquire(LockRank::kSchedJobQueue, &b);
    EXPECT_EQ(lock_rank::held_for_test().size(), 1u);
    lock_rank::note_release(LockRank::kSchedJobQueue, &b);
  });
  other.join();
  EXPECT_EQ(lock_rank::held_for_test().size(), 1u);
  lock_rank::note_release(LockRank::kObsJournal, &a);
}

TEST_F(LockRankTest, AnnotatedMutexNotesThroughGuards) {
  AnnotatedMutex outer{LockRank::kSchedJobQueue};
  AnnotatedMutex inner{LockRank::kEngineState};
  {
    MutexLock a(outer);
    ASSERT_EQ(lock_rank::held_for_test().size(), 1u);
    {
      MutexLock b(inner);
      const auto held = lock_rank::held_for_test();
      ASSERT_EQ(held.size(), 2u);
      EXPECT_EQ(held[1], LockRank::kEngineState);
    }
    EXPECT_EQ(lock_rank::held_for_test().size(), 1u);
  }
  EXPECT_TRUE(lock_rank::held_for_test().empty());
}

TEST_F(LockRankTest, SharedMutexReadersNoteTheSameRank) {
  AnnotatedSharedMutex mu{LockRank::kShuffleRegistry};
  {
    ReaderMutexLock lock(mu);
    const auto held = lock_rank::held_for_test();
    ASSERT_EQ(held.size(), 1u);
    EXPECT_EQ(held[0], LockRank::kShuffleRegistry);
  }
  EXPECT_TRUE(lock_rank::held_for_test().empty());
}

#else  // !S3_LOCK_RANK_CHECKS

TEST(LockRankTest, CompiledOutInRelease) {
  // The no-op inline stubs must still be callable (and free).
  int a = 0;
  lock_rank::note_acquire(LockRank::kLogging, &a);
  EXPECT_TRUE(lock_rank::held_for_test().empty());
  lock_rank::note_release(LockRank::kLogging, &a);
}

#endif  // S3_LOCK_RANK_CHECKS

TEST(LockRankNames, EveryRankHasAName) {
  for (const LockRank rank :
       {LockRank::kUnranked, LockRank::kSchedJobQueue,
        LockRank::kEngineMapCollect, LockRank::kEngineReduceCollect,
        LockRank::kEngineState, LockRank::kEngineWaveCtx,
        LockRank::kShuffleRegistry, LockRank::kShuffleBucket,
        LockRank::kArenaShard, LockRank::kPoolCoordination,
        LockRank::kPoolQueue, LockRank::kDfsBlockStore,
        LockRank::kDfsReplicaHealth, LockRank::kClusterHeartbeat,
        LockRank::kObsJournal, LockRank::kObsMetrics,
        LockRank::kObsTraceSink, LockRank::kObsTraceRing,
        LockRank::kLogging}) {
    const char* name = lock_rank_name(rank);
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name[0], 'k') << static_cast<int>(rank);
  }
}

}  // namespace
}  // namespace s3
