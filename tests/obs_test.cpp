// Tests for the observability layer: histogram quantile edges, tracer ring
// spill/drain, journal ordering under concurrent late arrivals, the golden
// Chrome-trace export, the live sharing-efficiency gauge, and TraceSession
// file output.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/local_engine.h"
#include "obs/chrome_trace.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_session.h"
#include "sched/job_queue_manager.h"
#include "workloads/text_corpus.h"
#include "workloads/wordcount.h"

namespace s3::obs {
namespace {

// Every test leaves the global tracer/journal disabled and empty so suites
// sharing the binary do not observe each other's events.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
    EventJournal::instance().set_enabled(false);
    EventJournal::instance().clear();
  }
};

// ---------------------------------------------------------------------------
// LogHistogram

TEST(LogHistogramTest, BucketIndexEdges) {
  EXPECT_EQ(LogHistogram::bucket_index(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_index(2), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(3), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(4), 3u);
  EXPECT_EQ(LogHistogram::bucket_index((1ull << 61)), 62u);
  EXPECT_EQ(LogHistogram::bucket_index((1ull << 62)), 63u);
  EXPECT_EQ(LogHistogram::bucket_index(~0ull), 63u);
}

TEST(LogHistogramTest, EmptyHistogramQuantilesAreZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(LogHistogramTest, OneSampleReportsItsBucketForEveryQuantile) {
  LogHistogram h;
  h.observe(1000);  // bucket [512, 1024) upper edge 1024
  EXPECT_EQ(h.count(), 1u);
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 1024.0) << "q=" << q;
  }
}

TEST(LogHistogramTest, OverflowBucketReportsInfinity) {
  LogHistogram h;
  h.observe(~0ull);
  EXPECT_TRUE(std::isinf(h.p50()));
  h.observe(1);
  h.observe(1);
  // Two of three samples in bucket 1: p50 within range, p99 overflows.
  EXPECT_DOUBLE_EQ(h.p50(), 2.0);
  EXPECT_TRUE(std::isinf(h.p99()));
}

TEST(LogHistogramTest, QuantilesAreMonotoneAndClamped) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1024; ++v) h.observe(v);
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, FindOrCreateReturnsStableReferences) {
  auto& registry = Registry::instance();
  auto& c1 = registry.counter("obs_test.stable");
  c1.add(7);
  auto& c2 = registry.counter("obs_test.stable");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 7u);

  registry.gauge("obs_test.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("obs_test.gauge").value(), 2.5);

  const std::string jsonl = registry.to_jsonl();
  EXPECT_NE(jsonl.find("\"metric\":\"obs_test.stable\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"metric\":\"obs_test.gauge\""), std::string::npos);

  registry.reset_for_test();
  EXPECT_EQ(c1.value(), 0u);  // zeroed in place, reference still valid
}

// ---------------------------------------------------------------------------
// Tracer

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  { S3_TRACE_SPAN("test", "ignored"); }
  EXPECT_TRUE(Tracer::instance().drain().empty());
}

TEST_F(ObsTest, SpanGuardRecordsNameCategoryAndArgs) {
  Tracer::instance().set_enabled(true);
  {
    S3_TRACE_SPAN_NAMED(span, "cat", "work");
    ASSERT_TRUE(span.active());
    span.arg("n", std::uint64_t{42}).arg("label", std::string("x"));
  }
  const auto events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].category, "cat");
  EXPECT_GE(events[0].end_ns, events[0].start_ns);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].key, "n");
  EXPECT_EQ(events[0].args[0].number, 42u);
  EXPECT_EQ(events[0].args[1].text, "x");
}

TEST_F(ObsTest, RingOverflowSpillsEverySpanToTheSink) {
  Tracer::instance().set_enabled(true);
  const std::size_t total = Tracer::kRingCapacity * 2 + 17;
  for (std::size_t i = 0; i < total; ++i) {
    S3_TRACE_SPAN("test", "tick");
  }
  EXPECT_EQ(Tracer::instance().drain().size(), total);
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
  EXPECT_TRUE(Tracer::instance().drain().empty());  // drain empties
}

TEST_F(ObsTest, ConcurrentRecordersAllLand) {
  Tracer::instance().set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;  // > ring capacity: exercises spills
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        S3_TRACE_SPAN("test", "t");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Tracer::instance().drain().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// EventJournal

TEST_F(ObsTest, JournalStampsStrictlyIncreasingSeq) {
  auto& journal = EventJournal::instance();
  journal.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    JournalEvent event;
    event.type = JournalEventType::kJobAdmitted;
    journal.record(std::move(event));
  }
  const auto events = journal.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST_F(ObsTest, JournalOrderingUnderConcurrentLateArrivals) {
  auto& journal = EventJournal::instance();
  journal.set_enabled(true);

  sched::JobQueueManager jqm(FileId(0), 64);
  jqm.admit(JobId(0));
  auto batch = jqm.form_batch(BatchId(0), 8);
  ASSERT_EQ(batch.members.size(), 1u);

  // Late arrivals race while the batch is in flight: each must journal as a
  // late join, and the journal's seq order must match a valid serialization
  // (all seqs unique, every job present exactly once).
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 1; t <= kThreads; ++t) {
    threads.emplace_back(
        [&jqm, t] { jqm.admit(JobId(static_cast<std::uint64_t>(t))); });
  }
  for (auto& t : threads) t.join();
  jqm.complete_batch();

  const auto events = journal.drain();
  std::set<std::uint64_t> late_jobs;
  std::uint64_t last_seq = 0;
  bool first = true;
  for (const auto& event : events) {
    if (!first) {
      EXPECT_GT(event.seq, last_seq);
    }
    last_seq = event.seq;
    first = false;
    if (event.type == JournalEventType::kLateJobJoined) {
      EXPECT_TRUE(late_jobs.insert(event.job.value()).second)
          << "job journaled twice: " << event.job;
    }
  }
  EXPECT_EQ(late_jobs.size(), static_cast<std::size_t>(kThreads));
  // The admitted job + the wave it joined were journaled too.
  EXPECT_EQ(std::count_if(events.begin(), events.end(),
                          [](const JournalEvent& e) {
                            return e.type == JournalEventType::kJobAdmitted;
                          }),
            1);
  EXPECT_EQ(std::count_if(events.begin(), events.end(),
                          [](const JournalEvent& e) {
                            return e.type == JournalEventType::kBatchRetired;
                          }),
            1);
}

// ---------------------------------------------------------------------------
// Chrome trace export (golden)

TEST(ChromeTraceTest, GoldenExport) {
  std::vector<TraceEvent> spans;
  TraceEvent batch;
  batch.name = "batch";
  batch.category = "driver";
  batch.tid = 2;
  batch.start_ns = 1000;
  batch.end_ns = 9000;
  spans.push_back(batch);
  TraceEvent map_task;
  map_task.name = "map_task";
  map_task.category = "engine";
  map_task.tid = 1;
  map_task.start_ns = 2000;
  map_task.end_ns = 5500;
  map_task.args.push_back(TraceArg{"block", {}, 7, true});
  spans.push_back(map_task);

  std::vector<JournalEvent> journal;
  JournalEvent admitted;
  admitted.type = JournalEventType::kJobAdmitted;
  admitted.seq = 0;
  admitted.ts_ns = 1500;
  admitted.file = FileId(3);
  admitted.job = JobId(4);
  admitted.cursor = 2;
  admitted.remaining = 8;
  journal.push_back(admitted);
  JournalEvent launched;
  launched.type = JournalEventType::kBatchLaunched;
  launched.seq = 1;
  launched.ts_ns = 1800;
  launched.sim_time = 2.5;
  launched.file = FileId(3);
  launched.batch = BatchId(0);
  launched.wave = 8;
  launched.members = 2;
  launched.detail = "say \"hi\"";
  journal.push_back(launched);

  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"s3\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"scheduler journal\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":0.000,\"dur\":8.000,"
      "\"cat\":\"driver\",\"name\":\"batch\"},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1.000,\"dur\":3.500,"
      "\"cat\":\"engine\",\"name\":\"map_task\",\"args\":{\"block\":7}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":0.500,\"s\":\"p\","
      "\"cat\":\"journal\",\"name\":\"job_admitted\","
      "\"args\":{\"seq\":0,\"file\":3,\"job\":4,\"cursor\":2,\"wave\":0,"
      "\"members\":0,\"remaining\":8}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":0.800,\"s\":\"p\","
      "\"cat\":\"journal\",\"name\":\"batch_launched\","
      "\"args\":{\"seq\":1,\"file\":3,\"batch\":0,\"cursor\":0,\"wave\":8,"
      "\"members\":2,\"remaining\":0,\"sim_time\":2500000,"
      "\"detail\":\"say \\\"hi\\\"\"}}\n"
      "],\n"
      "\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(to_chrome_trace_json(spans, journal), expected);
}

TEST(ChromeTraceTest, TruncationIsAnnounced) {
  const std::string json = to_chrome_trace_json({}, {}, /*dropped=*/12);
  EXPECT_NE(json.find("\"trace_truncated\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":12"), std::string::npos);
}

TEST(ChromeTraceTest, SpansSortedByStartTime) {
  std::vector<TraceEvent> spans;
  for (const std::uint64_t start : {5000u, 1000u, 3000u}) {
    TraceEvent e;
    e.name = "s" + std::to_string(start);
    e.category = "t";
    e.start_ns = start;
    e.end_ns = start + 1;
    spans.push_back(e);
  }
  const std::string json = to_chrome_trace_json(std::move(spans), {});
  const auto p1 = json.find("\"name\":\"s1000\"");
  const auto p3 = json.find("\"name\":\"s3000\"");
  const auto p5 = json.find("\"name\":\"s5000\"");
  ASSERT_NE(p1, std::string::npos);
  EXPECT_LT(p1, p3);
  EXPECT_LT(p3, p5);
}

// ---------------------------------------------------------------------------
// Sharing-efficiency gauge (acceptance: n-job batch reports exactly n)

TEST_F(ObsTest, SharingGaugeReportsJobsPerPhysicalBlock) {
  Registry::instance().reset_for_test();

  dfs::DfsNamespace ns;
  dfs::BlockStore store;
  dfs::PlacementTopology topo;
  topo.nodes.push_back({NodeId(0), RackId(0)});
  dfs::RoundRobinPlacement placement(topo);
  workloads::TextCorpusGenerator corpus;
  const FileId file =
      corpus.generate_file(ns, store, placement, "gauge", 4, ByteSize::kib(4))
          .value();

  engine::LocalEngineOptions opts;
  opts.map_workers = 2;
  opts.reduce_workers = 1;
  engine::LocalEngine engine(ns, store, opts);
  constexpr std::uint64_t kJobs = 3;
  std::vector<JobId> jobs;
  for (std::uint64_t j = 0; j < kJobs; ++j) {
    const std::string prefix(1, static_cast<char>('a' + j));
    ASSERT_TRUE(engine
                    .register_job(workloads::make_wordcount_job(
                        JobId(j), file, prefix, 2))
                    .is_ok());
    jobs.push_back(JobId(j));
  }
  ASSERT_TRUE(
      engine.execute_batch({BatchId(0), ns.file(file).blocks, jobs}).is_ok());

  EXPECT_DOUBLE_EQ(
      Registry::instance().gauge("engine.sharing_efficiency").value(),
      static_cast<double>(kJobs));
  EXPECT_EQ(Registry::instance().counter("engine.blocks_physical").value(),
            4u);
  EXPECT_EQ(Registry::instance().counter("engine.blocks_logical").value(),
            4u * kJobs);
  for (const JobId j : jobs) ASSERT_TRUE(engine.finalize_job(j).is_ok());
}

// ---------------------------------------------------------------------------
// TraceSession

TEST_F(ObsTest, InertSessionLeavesTracingDisabled) {
  TraceSession session{std::string()};
  EXPECT_FALSE(session.active());
  EXPECT_FALSE(Tracer::instance().enabled());
}

TEST_F(ObsTest, SessionWritesTraceAndMetricsFiles) {
  const std::string path =
      ::testing::TempDir() + "obs_session_trace.json";
  {
    TraceSession session(path);
    ASSERT_TRUE(session.active());
    EXPECT_TRUE(Tracer::instance().enabled());
    EXPECT_TRUE(EventJournal::instance().enabled());
    { S3_TRACE_SPAN("test", "scoped_work"); }
    JournalEvent event;
    event.type = JournalEventType::kCursorAdvanced;
    EventJournal::instance().record(std::move(event));
  }
  EXPECT_FALSE(Tracer::instance().enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"scoped_work\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cursor_advanced\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  std::ifstream metrics(path + ".metrics.jsonl");
  EXPECT_TRUE(metrics.is_open());
  std::remove(path.c_str());
  std::remove((path + ".metrics.jsonl").c_str());
}

}  // namespace
}  // namespace s3::obs
