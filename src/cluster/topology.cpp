#include "cluster/topology.h"

namespace s3::cluster {

RackId Topology::add_rack() { return RackId(num_racks_++); }

NodeId Topology::add_node(RackId rack, int map_slots, int reduce_slots,
                          double speed_factor) {
  S3_CHECK_MSG(rack.value() < num_racks_, "rack does not exist");
  S3_CHECK(map_slots >= 0 && reduce_slots >= 0);
  S3_CHECK(speed_factor > 0.0);
  NodeInfo info;
  info.id = NodeId(nodes_.size());
  info.rack = rack;
  info.map_slots = map_slots;
  info.reduce_slots = reduce_slots;
  info.speed_factor = speed_factor;
  nodes_.push_back(info);
  return info.id;
}

const NodeInfo& Topology::node(NodeId id) const {
  S3_CHECK_MSG(id.value() < nodes_.size(), "unknown node " << id);
  return nodes_[id.value()];
}

NodeInfo& Topology::mutable_node(NodeId id) {
  S3_CHECK_MSG(id.value() < nodes_.size(), "unknown node " << id);
  return nodes_[id.value()];
}

int Topology::total_map_slots() const {
  int total = 0;
  for (const auto& n : nodes_) total += n.map_slots;
  return total;
}

int Topology::total_reduce_slots() const {
  int total = 0;
  for (const auto& n : nodes_) total += n.reduce_slots;
  return total;
}

bool Topology::same_rack(NodeId a, NodeId b) const {
  return node(a).rack == node(b).rack;
}

Topology Topology::paper_cluster() {
  Topology t;
  const std::size_t rack_sizes[] = {13, 13, 14};
  for (const std::size_t size : rack_sizes) {
    const RackId rack = t.add_rack();
    for (std::size_t i = 0; i < size; ++i) {
      t.add_node(rack, /*map_slots=*/1, /*reduce_slots=*/1);
    }
  }
  return t;
}

Topology Topology::uniform(std::size_t nodes, std::size_t racks,
                           int map_slots_per_node, int reduce_slots_per_node) {
  S3_CHECK(racks > 0);
  Topology t;
  std::vector<RackId> rack_ids;
  rack_ids.reserve(racks);
  for (std::size_t r = 0; r < racks; ++r) rack_ids.push_back(t.add_rack());
  for (std::size_t i = 0; i < nodes; ++i) {
    t.add_node(rack_ids[i % racks], map_slots_per_node, reduce_slots_per_node);
  }
  return t;
}

}  // namespace s3::cluster
