// Slot accounting: which map/reduce slots are free on which node. The
// JobTracker analogue consults this when assigning tasks; S3's periodic slot
// checking marks nodes excluded so the next wave is sized to the healthy
// subset of the cluster.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "cluster/topology.h"

namespace s3::cluster {

enum class SlotKind { kMap, kReduce };

class SlotLedger {
 public:
  explicit SlotLedger(const Topology& topology);

  // Acquires one slot of the given kind on the given node.
  [[nodiscard]] Status acquire(NodeId node, SlotKind kind);
  // Releases one previously acquired slot.
  [[nodiscard]] Status release(NodeId node, SlotKind kind);

  [[nodiscard]] int free_slots(NodeId node, SlotKind kind) const;
  [[nodiscard]] int total_free(SlotKind kind) const;

  // Nodes with at least one free slot of the kind, excluding excluded nodes.
  [[nodiscard]] std::vector<NodeId> available_nodes(SlotKind kind) const;

  // Slow-node exclusion (paper §IV-D-1): excluded nodes do not appear in
  // available_nodes() and do not count toward available_map_slots(), but
  // already-acquired slots keep running until released.
  void set_excluded(NodeId node, bool excluded);
  [[nodiscard]] bool is_excluded(NodeId node) const;
  [[nodiscard]] std::size_t num_excluded() const { return excluded_.size(); }

  // Permanent removal (node death): unlike exclusion, removal cannot be
  // undone, the node's unreleased slots are forfeited (acquire AND release
  // both fail), and the node's capacity leaves every total for good.
  [[nodiscard]] Status remove_node(NodeId node);
  [[nodiscard]] bool is_removed(NodeId node) const;
  [[nodiscard]] std::size_t num_removed() const { return removed_.size(); }

  // Total free map slots over non-excluded, non-removed nodes — S3's wave
  // size m. Floors at 0 when every node is excluded or removed.
  [[nodiscard]] int available_map_slots() const;

 private:
  struct Counts {
    int free_map = 0;
    int free_reduce = 0;
  };

  const Topology* topology_;
  std::unordered_map<NodeId, Counts> counts_;
  std::unordered_set<NodeId> excluded_;
  std::unordered_set<NodeId> removed_;
};

}  // namespace s3::cluster
