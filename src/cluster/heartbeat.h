// Periodic slot checking (paper §IV-D-1): every node reports job type, task
// start time and progress; the tracker estimates completion time and flags
// nodes whose estimated task duration exceeds `slow_threshold` times the
// cluster median. The Job Queue Manager uses the flagged set to exclude slow
// nodes from the next wave and recompute segment size.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace s3::cluster {

struct ProgressReport {
  NodeId node;
  TaskId task;
  SimTime task_start = 0.0;
  double progress = 0.0;  // fraction of the task done, in [0, 1]
  SimTime report_time = 0.0;
};

struct NodeEstimate {
  NodeId node;
  // Estimated total duration of the task currently running on the node.
  SimTime estimated_duration = 0.0;
  // Estimated absolute completion time.
  SimTime estimated_completion = 0.0;
};

class HeartbeatTracker {
 public:
  // `slow_threshold`: a node is slow if its estimated task duration exceeds
  // threshold * median estimated duration across reporting nodes.
  explicit HeartbeatTracker(double slow_threshold = 1.5);

  void report(const ProgressReport& report);

  // Forgets the node's current task (task finished or node idle).
  void clear(NodeId node);

  [[nodiscard]] std::optional<NodeEstimate> estimate(NodeId node) const;

  // Nodes currently flagged slow relative to the median.
  [[nodiscard]] std::vector<NodeId> slow_nodes() const;

  [[nodiscard]] std::size_t num_reporting() const { return latest_.size(); }
  [[nodiscard]] double slow_threshold() const { return slow_threshold_; }

 private:
  [[nodiscard]] static SimTime estimate_duration(const ProgressReport& r);

  double slow_threshold_;
  std::unordered_map<NodeId, ProgressReport> latest_;
};

}  // namespace s3::cluster
