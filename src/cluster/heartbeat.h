// Periodic slot checking (paper §IV-D-1): every node reports job type, task
// start time and progress; the tracker estimates completion time and flags
// nodes whose estimated task duration exceeds `slow_threshold` times the
// cluster median. The Job Queue Manager uses the flagged set to exclude slow
// nodes from the next wave and recompute segment size.
//
// Failure-domain extension: heartbeat-timeout detection. A node that stops
// reporting transitions healthy -> suspect (after `suspect_timeout` of
// silence) -> dead (after `dead_timeout`). Suspect is advisory — the node
// keeps its slots; dead is permanent — sweep() reports the transition once
// and the node's reports are ignored from then on. Both timeouts default to
// "never", so the original slow-node-only behavior is unchanged unless a
// caller opts in.
//
// Thread safety: all public methods are safe to call concurrently. The
// engine's on_node_death hook fires from worker threads while the scheduler
// sweeps from its own, so the tracker serializes on an internal
// kClusterHeartbeat-ranked mutex (a leaf: no lock is acquired under it).
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace s3::cluster {

struct ProgressReport {
  NodeId node;
  TaskId task;
  SimTime task_start = 0.0;
  double progress = 0.0;  // fraction of the task done, in [0, 1]
  SimTime report_time = 0.0;
};

struct NodeEstimate {
  NodeId node;
  // Estimated total duration of the task currently running on the node.
  SimTime estimated_duration = 0.0;
  // Estimated absolute completion time.
  SimTime estimated_completion = 0.0;
};

enum class NodeHealth { kHealthy, kSuspect, kDead };

// Newly-transitioned nodes from one sweep() call, sorted by id so the caller
// (and the journal) see a deterministic order.
struct HealthTransitions {
  std::vector<NodeId> suspected;
  std::vector<NodeId> died;
};

class HeartbeatTracker {
 public:
  // `slow_threshold`: a node is slow if its estimated task duration exceeds
  // threshold * median estimated duration across reporting nodes.
  // `suspect_timeout` / `dead_timeout`: heartbeat silence (seconds) before a
  // node is suspected / declared dead; kTimeNever disables the transition.
  explicit HeartbeatTracker(double slow_threshold = 1.5,
                            SimTime suspect_timeout = kTimeNever,
                            SimTime dead_timeout = kTimeNever);

  // Ignored for dead nodes (death is permanent); clears suspicion otherwise.
  void report(const ProgressReport& report);

  // Forgets the node's current task (task finished or node idle).
  void clear(NodeId node);

  // Declares a node dead out-of-band (the engine observed the crash before
  // any heartbeat timeout could). Idempotent.
  void mark_dead(NodeId node);

  // Applies the timeouts against `now`: returns the nodes that newly became
  // suspect or dead since the last sweep. Dead nodes stop reporting forever.
  HealthTransitions sweep(SimTime now);

  [[nodiscard]] NodeHealth health(NodeId node) const;
  [[nodiscard]] std::vector<NodeId> dead_nodes() const;  // sorted

  [[nodiscard]] std::optional<NodeEstimate> estimate(NodeId node) const;

  // Nodes currently flagged slow relative to the median (dead nodes never
  // appear — they have no live report to estimate from).
  [[nodiscard]] std::vector<NodeId> slow_nodes() const;

  [[nodiscard]] std::size_t num_reporting() const S3_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return latest_.size();
  }
  [[nodiscard]] double slow_threshold() const { return slow_threshold_; }
  [[nodiscard]] SimTime suspect_timeout() const { return suspect_timeout_; }
  [[nodiscard]] SimTime dead_timeout() const { return dead_timeout_; }

 private:
  [[nodiscard]] static SimTime estimate_duration(const ProgressReport& r);
  // sweep() kills nodes it timed out while already holding mu_.
  void mark_dead_locked(NodeId node) S3_REQUIRES(mu_);

  // Configuration, immutable after construction (read without mu_).
  double slow_threshold_;
  SimTime suspect_timeout_;
  SimTime dead_timeout_;

  mutable AnnotatedMutex mu_{LockRank::kClusterHeartbeat};
  std::unordered_map<NodeId, ProgressReport> latest_ S3_GUARDED_BY(mu_);
  std::unordered_set<NodeId> suspect_ S3_GUARDED_BY(mu_);
  std::unordered_set<NodeId> dead_ S3_GUARDED_BY(mu_);
};

}  // namespace s3::cluster
