#include "cluster/slot_ledger.h"

namespace s3::cluster {

SlotLedger::SlotLedger(const Topology& topology) : topology_(&topology) {
  for (const auto& node : topology.nodes()) {
    counts_[node.id] = Counts{node.map_slots, node.reduce_slots};
  }
}

Status SlotLedger::acquire(NodeId node, SlotKind kind) {
  const auto it = counts_.find(node);
  if (it == counts_.end()) return Status::not_found("unknown node");
  if (removed_.count(node) > 0) {
    return Status::failed_precondition("node permanently removed");
  }
  int& free = kind == SlotKind::kMap ? it->second.free_map
                                     : it->second.free_reduce;
  if (free <= 0) {
    return Status::failed_precondition("no free slot of requested kind");
  }
  --free;
  return Status::ok();
}

Status SlotLedger::release(NodeId node, SlotKind kind) {
  const auto it = counts_.find(node);
  if (it == counts_.end()) return Status::not_found("unknown node");
  if (removed_.count(node) > 0) {
    // Tasks running on a dead node are lost, not finished: their slots are
    // forfeited rather than released back into a pool nobody can use.
    return Status::failed_precondition("slots of a removed node are forfeit");
  }
  const NodeInfo& info = topology_->node(node);
  int& free = kind == SlotKind::kMap ? it->second.free_map
                                     : it->second.free_reduce;
  const int cap = kind == SlotKind::kMap ? info.map_slots : info.reduce_slots;
  if (free >= cap) {
    return Status::failed_precondition("release without matching acquire");
  }
  ++free;
  return Status::ok();
}

int SlotLedger::free_slots(NodeId node, SlotKind kind) const {
  const auto it = counts_.find(node);
  S3_CHECK_MSG(it != counts_.end(), "unknown node " << node);
  return kind == SlotKind::kMap ? it->second.free_map
                                : it->second.free_reduce;
}

int SlotLedger::total_free(SlotKind kind) const {
  int total = 0;
  for (const auto& [node, counts] : counts_) {
    total += kind == SlotKind::kMap ? counts.free_map : counts.free_reduce;
  }
  return total;
}

std::vector<NodeId> SlotLedger::available_nodes(SlotKind kind) const {
  std::vector<NodeId> out;
  for (const auto& node : topology_->nodes()) {
    if (excluded_.count(node.id) > 0 || removed_.count(node.id) > 0) continue;
    if (free_slots(node.id, kind) > 0) out.push_back(node.id);
  }
  return out;
}

Status SlotLedger::remove_node(NodeId node) {
  if (counts_.count(node) == 0) return Status::not_found("unknown node");
  if (!removed_.insert(node).second) {
    return Status::failed_precondition("node already removed");
  }
  // Dead capacity must never resurface through a stale count.
  counts_[node] = Counts{0, 0};
  return Status::ok();
}

bool SlotLedger::is_removed(NodeId node) const {
  return removed_.count(node) > 0;
}

void SlotLedger::set_excluded(NodeId node, bool excluded) {
  if (excluded) {
    excluded_.insert(node);
  } else {
    excluded_.erase(node);
  }
}

bool SlotLedger::is_excluded(NodeId node) const {
  return excluded_.count(node) > 0;
}

int SlotLedger::available_map_slots() const {
  int total = 0;
  for (const auto& node : topology_->nodes()) {
    if (excluded_.count(node.id) > 0 || removed_.count(node.id) > 0) continue;
    total += free_slots(node.id, SlotKind::kMap);
  }
  // free_slots never goes negative, so the sum cannot wrap; all-excluded
  // clusters legitimately yield a zero-size wave.
  S3_POSTCONDITION(total >= 0);
  return total;
}

}  // namespace s3::cluster
