#include "cluster/slot_ledger.h"

namespace s3::cluster {

SlotLedger::SlotLedger(const Topology& topology) : topology_(&topology) {
  for (const auto& node : topology.nodes()) {
    counts_[node.id] = Counts{node.map_slots, node.reduce_slots};
  }
}

Status SlotLedger::acquire(NodeId node, SlotKind kind) {
  const auto it = counts_.find(node);
  if (it == counts_.end()) return Status::not_found("unknown node");
  int& free = kind == SlotKind::kMap ? it->second.free_map
                                     : it->second.free_reduce;
  if (free <= 0) {
    return Status::failed_precondition("no free slot of requested kind");
  }
  --free;
  return Status::ok();
}

Status SlotLedger::release(NodeId node, SlotKind kind) {
  const auto it = counts_.find(node);
  if (it == counts_.end()) return Status::not_found("unknown node");
  const NodeInfo& info = topology_->node(node);
  int& free = kind == SlotKind::kMap ? it->second.free_map
                                     : it->second.free_reduce;
  const int cap = kind == SlotKind::kMap ? info.map_slots : info.reduce_slots;
  if (free >= cap) {
    return Status::failed_precondition("release without matching acquire");
  }
  ++free;
  return Status::ok();
}

int SlotLedger::free_slots(NodeId node, SlotKind kind) const {
  const auto it = counts_.find(node);
  S3_CHECK_MSG(it != counts_.end(), "unknown node " << node);
  return kind == SlotKind::kMap ? it->second.free_map
                                : it->second.free_reduce;
}

int SlotLedger::total_free(SlotKind kind) const {
  int total = 0;
  for (const auto& [node, counts] : counts_) {
    total += kind == SlotKind::kMap ? counts.free_map : counts.free_reduce;
  }
  return total;
}

std::vector<NodeId> SlotLedger::available_nodes(SlotKind kind) const {
  std::vector<NodeId> out;
  for (const auto& node : topology_->nodes()) {
    if (excluded_.count(node.id) > 0) continue;
    if (free_slots(node.id, kind) > 0) out.push_back(node.id);
  }
  return out;
}

void SlotLedger::set_excluded(NodeId node, bool excluded) {
  if (excluded) {
    excluded_.insert(node);
  } else {
    excluded_.erase(node);
  }
}

bool SlotLedger::is_excluded(NodeId node) const {
  return excluded_.count(node) > 0;
}

int SlotLedger::available_map_slots() const {
  int total = 0;
  for (const auto& node : topology_->nodes()) {
    if (excluded_.count(node.id) > 0) continue;
    total += free_slots(node.id, SlotKind::kMap);
  }
  return total;
}

}  // namespace s3::cluster
