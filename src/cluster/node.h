// Slave-node description. `speed_factor` scales task durations on that node
// (1.0 = nominal, 2.0 = twice as slow); the simulator uses it to model
// heterogeneous clusters and stragglers, and S3's periodic slot checking
// reacts to it.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace s3::cluster {

struct NodeInfo {
  NodeId id;
  RackId rack;
  int map_slots = 1;
  int reduce_slots = 1;
  double speed_factor = 1.0;
};

}  // namespace s3::cluster
