#include "cluster/heartbeat.h"

#include <algorithm>

#include "common/status.h"
#include "obs/flight_recorder.h"

namespace s3::cluster {

HeartbeatTracker::HeartbeatTracker(double slow_threshold,
                                   SimTime suspect_timeout,
                                   SimTime dead_timeout)
    : slow_threshold_(slow_threshold),
      suspect_timeout_(suspect_timeout),
      dead_timeout_(dead_timeout) {
  S3_CHECK(slow_threshold > 1.0);
  S3_CHECK(suspect_timeout > 0.0);
  S3_CHECK(dead_timeout > 0.0);
  // A node must pass through suspect before it can be declared dead.
  S3_CHECK(suspect_timeout <= dead_timeout);
}

void HeartbeatTracker::report(const ProgressReport& report) {
  S3_CHECK(report.progress >= 0.0 && report.progress <= 1.0);
  S3_CHECK(report.report_time >= report.task_start);
  MutexLock lock(mu_);
  if (dead_.count(report.node) > 0) return;  // death is permanent
  latest_[report.node] = report;
  suspect_.erase(report.node);  // a fresh heartbeat clears suspicion
}

void HeartbeatTracker::clear(NodeId node) {
  MutexLock lock(mu_);
  latest_.erase(node);
}

void HeartbeatTracker::mark_dead(NodeId node) {
  MutexLock lock(mu_);
  mark_dead_locked(node);
}

void HeartbeatTracker::mark_dead_locked(NodeId node) {
  dead_.insert(node);
  suspect_.erase(node);
  latest_.erase(node);
}

HealthTransitions HeartbeatTracker::sweep(SimTime now) {
  HealthTransitions out;
  MutexLock lock(mu_);
  std::vector<NodeId> to_kill;
  for (const auto& [node, report] : latest_) {
    const SimTime silence = now - report.report_time;
    if (silence >= dead_timeout_) {
      to_kill.push_back(node);
    } else if (silence >= suspect_timeout_ && suspect_.count(node) == 0) {
      suspect_.insert(node);
      out.suspected.push_back(node);
    }
  }
  for (const NodeId node : to_kill) {
    mark_dead_locked(node);
    out.died.push_back(node);
  }
  std::sort(out.suspected.begin(), out.suspected.end());
  std::sort(out.died.begin(), out.died.end());
  // Health transitions land in the flight record so a post-mortem shows
  // which nodes the tracker condemned just before a crash.
  for (const NodeId node : out.suspected) {
    obs::CorrelationScope corr(JobId(), BatchId(), node);
    S3_FLIGHT_MARK("heartbeat.suspect", node.value(), 0);
  }
  for (const NodeId node : out.died) {
    obs::CorrelationScope corr(JobId(), BatchId(), node);
    S3_FLIGHT_MARK("heartbeat.dead", node.value(), 0);
  }
  return out;
}

NodeHealth HeartbeatTracker::health(NodeId node) const {
  MutexLock lock(mu_);
  if (dead_.count(node) > 0) return NodeHealth::kDead;
  if (suspect_.count(node) > 0) return NodeHealth::kSuspect;
  return NodeHealth::kHealthy;
}

std::vector<NodeId> HeartbeatTracker::dead_nodes() const {
  MutexLock lock(mu_);
  std::vector<NodeId> out(dead_.begin(), dead_.end());
  std::sort(out.begin(), out.end());
  return out;
}

SimTime HeartbeatTracker::estimate_duration(const ProgressReport& r) {
  const SimTime elapsed = r.report_time - r.task_start;
  if (r.progress <= 0.0) {
    // No progress yet: the best lower bound is the elapsed time itself; we
    // conservatively double it so stalled tasks look slow quickly.
    return 2.0 * elapsed;
  }
  return elapsed / r.progress;
}

std::optional<NodeEstimate> HeartbeatTracker::estimate(NodeId node) const {
  MutexLock lock(mu_);
  const auto it = latest_.find(node);
  if (it == latest_.end()) return std::nullopt;
  NodeEstimate e;
  e.node = node;
  e.estimated_duration = estimate_duration(it->second);
  e.estimated_completion = it->second.task_start + e.estimated_duration;
  return e;
}

std::vector<NodeId> HeartbeatTracker::slow_nodes() const {
  MutexLock lock(mu_);
  if (latest_.size() < 2) return {};  // no basis for comparison
  std::vector<SimTime> durations;
  durations.reserve(latest_.size());
  for (const auto& [node, report] : latest_) {
    durations.push_back(estimate_duration(report));
  }
  std::sort(durations.begin(), durations.end());
  const SimTime median = durations[durations.size() / 2];
  if (median <= 0.0) return {};

  std::vector<NodeId> slow;
  for (const auto& [node, report] : latest_) {
    if (estimate_duration(report) > slow_threshold_ * median) {
      slow.push_back(node);
    }
  }
  std::sort(slow.begin(), slow.end());
  return slow;
}

}  // namespace s3::cluster
