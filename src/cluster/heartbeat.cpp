#include "cluster/heartbeat.h"

#include <algorithm>

#include "common/status.h"

namespace s3::cluster {

HeartbeatTracker::HeartbeatTracker(double slow_threshold)
    : slow_threshold_(slow_threshold) {
  S3_CHECK(slow_threshold > 1.0);
}

void HeartbeatTracker::report(const ProgressReport& report) {
  S3_CHECK(report.progress >= 0.0 && report.progress <= 1.0);
  S3_CHECK(report.report_time >= report.task_start);
  latest_[report.node] = report;
}

void HeartbeatTracker::clear(NodeId node) { latest_.erase(node); }

SimTime HeartbeatTracker::estimate_duration(const ProgressReport& r) {
  const SimTime elapsed = r.report_time - r.task_start;
  if (r.progress <= 0.0) {
    // No progress yet: the best lower bound is the elapsed time itself; we
    // conservatively double it so stalled tasks look slow quickly.
    return 2.0 * elapsed;
  }
  return elapsed / r.progress;
}

std::optional<NodeEstimate> HeartbeatTracker::estimate(NodeId node) const {
  const auto it = latest_.find(node);
  if (it == latest_.end()) return std::nullopt;
  NodeEstimate e;
  e.node = node;
  e.estimated_duration = estimate_duration(it->second);
  e.estimated_completion = it->second.task_start + e.estimated_duration;
  return e;
}

std::vector<NodeId> HeartbeatTracker::slow_nodes() const {
  if (latest_.size() < 2) return {};  // no basis for comparison
  std::vector<SimTime> durations;
  durations.reserve(latest_.size());
  for (const auto& [node, report] : latest_) {
    durations.push_back(estimate_duration(report));
  }
  std::sort(durations.begin(), durations.end());
  const SimTime median = durations[durations.size() / 2];
  if (median <= 0.0) return {};

  std::vector<NodeId> slow;
  for (const auto& [node, report] : latest_) {
    if (estimate_duration(report) > slow_threshold_ * median) {
      slow.push_back(node);
    }
  }
  std::sort(slow.begin(), slow.end());
  return slow;
}

}  // namespace s3::cluster
