// Cluster topology: racks and nodes. Provides the paper's experimental
// cluster as a preset (1 master + 40 slaves in 3 racks, 1 map slot per node,
// 30 reduce tasks cluster-wide).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "cluster/node.h"

namespace s3::cluster {

class Topology {
 public:
  // Adds a rack and returns its id.
  RackId add_rack();

  // Adds a node to an existing rack.
  NodeId add_node(RackId rack, int map_slots = 1, int reduce_slots = 1,
                  double speed_factor = 1.0);

  [[nodiscard]] const std::vector<NodeInfo>& nodes() const { return nodes_; }
  [[nodiscard]] const NodeInfo& node(NodeId id) const;
  [[nodiscard]] NodeInfo& mutable_node(NodeId id);
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_racks() const { return num_racks_; }

  [[nodiscard]] int total_map_slots() const;
  [[nodiscard]] int total_reduce_slots() const;

  // True if the two nodes are on the same rack (used by the network model).
  [[nodiscard]] bool same_rack(NodeId a, NodeId b) const;

  // The paper's cluster: 40 slave nodes over 3 racks (13/13/14), one map
  // slot per node.
  static Topology paper_cluster();

  // A uniform cluster: `nodes` nodes spread round-robin over `racks` racks.
  static Topology uniform(std::size_t nodes, std::size_t racks,
                          int map_slots_per_node = 1,
                          int reduce_slots_per_node = 1);

 private:
  std::size_t num_racks_ = 0;
  std::vector<NodeInfo> nodes_;  // NodeId value == index
};

}  // namespace s3::cluster
