// JobSpec: everything the engine needs to run one MapReduce job. The same
// spec is executed whole (FIFO), as part of a merged batch (MRShare), or
// segment-by-segment as sub-jobs (S3) — the spec itself is scheduler-
// agnostic, which is what makes S3 a *plugin* scheduler.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "engine/mapper.h"

namespace s3::engine {

struct JobSpec {
  JobId id;
  std::string name;
  FileId input;
  MapperFactory mapper_factory;
  ReducerFactory reducer_factory;
  // Optional map-side combiner (same contract as a reducer); nullptr = none.
  ReducerFactory combiner_factory;
  std::uint32_t num_reduce_tasks = 1;

  [[nodiscard]] bool valid() const {
    return id.valid() && mapper_factory != nullptr &&
           reducer_factory != nullptr && num_reduce_tasks > 0;
  }
};

// Final, merged output of a completed job.
struct JobResult {
  JobId id;
  std::vector<KeyValue> output;  // sorted by key
};

}  // namespace s3::engine
