#include "engine/shuffle.h"

#include <algorithm>

#include "common/status.h"

namespace s3::engine {

void ShuffleStore::register_job(JobId job, std::uint32_t partitions) {
  S3_CHECK(partitions > 0);
  std::lock_guard<std::mutex> lock(registry_mu_);
  S3_CHECK_MSG(jobs_.count(job) == 0, "job already registered: " << job);
  JobBuckets jb;
  jb.partitions = partitions;
  jb.buckets.reserve(partitions);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    jb.buckets.push_back(std::make_unique<Bucket>());
  }
  jobs_.emplace(job, std::move(jb));
}

void ShuffleStore::unregister_job(JobId job) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  jobs_.erase(job);
}

ShuffleStore::Bucket& ShuffleStore::bucket(JobId job, std::uint32_t partition) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = jobs_.find(job);
  S3_CHECK_MSG(it != jobs_.end(), "unregistered job " << job);
  S3_CHECK_MSG(partition < it->second.partitions,
               "partition " << partition << " out of range");
  return *it->second.buckets[partition];
}

const ShuffleStore::Bucket& ShuffleStore::bucket(
    JobId job, std::uint32_t partition) const {
  return const_cast<ShuffleStore*>(this)->bucket(job, partition);
}

void ShuffleStore::append(JobId job, std::uint32_t partition,
                          std::vector<KeyValue> run) {
  if (run.empty()) return;
  Bucket& b = bucket(job, partition);
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.records.empty()) {
    b.records = std::move(run);
  } else {
    b.records.insert(b.records.end(), std::make_move_iterator(run.begin()),
                     std::make_move_iterator(run.end()));
  }
}

std::vector<KeyValue> ShuffleStore::take(JobId job, std::uint32_t partition) {
  Bucket& b = bucket(job, partition);
  std::lock_guard<std::mutex> lock(b.mu);
  std::vector<KeyValue> out;
  out.swap(b.records);
  return out;
}

std::uint32_t ShuffleStore::partitions(JobId job) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = jobs_.find(job);
  S3_CHECK_MSG(it != jobs_.end(), "unregistered job " << job);
  return it->second.partitions;
}

std::uint64_t ShuffleStore::pending_records(JobId job) const {
  std::uint64_t total = 0;
  const std::uint32_t parts = partitions(job);
  for (std::uint32_t p = 0; p < parts; ++p) {
    const Bucket& b = bucket(job, p);
    std::lock_guard<std::mutex> lock(b.mu);
    total += b.records.size();
  }
  return total;
}

std::uint64_t sort_and_group(
    std::vector<KeyValue> records,
    const std::function<void(const std::string&,
                             const std::vector<std::string>&)>& fn) {
  std::sort(records.begin(), records.end(),
            [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
  std::uint64_t groups = 0;
  std::size_t i = 0;
  std::vector<std::string> values;
  while (i < records.size()) {
    const std::string& key = records[i].key;
    values.clear();
    std::size_t j = i;
    while (j < records.size() && records[j].key == key) {
      values.push_back(std::move(records[j].value));
      ++j;
    }
    fn(key, values);
    ++groups;
    i = j;
  }
  return groups;
}

}  // namespace s3::engine
