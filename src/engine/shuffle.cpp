#include "engine/shuffle.h"

#include <algorithm>

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"

namespace s3::engine {

void ShuffleStore::register_job(JobId job, std::uint32_t partitions) {
  S3_CHECK(partitions > 0);
  WriterMutexLock lock(registry_mu_);
  S3_CHECK_MSG(jobs_.count(job) == 0, "job already registered: " << job);
  JobBuckets jb;
  jb.partitions = partitions;
  jb.buckets.reserve(partitions);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    jb.buckets.push_back(std::make_unique<Bucket>());
  }
  jobs_.emplace(job, std::move(jb));
}

void ShuffleStore::unregister_job(JobId job) {
  WriterMutexLock lock(registry_mu_);
  jobs_.erase(job);
}

ShuffleStore::JobBuckets& ShuffleStore::job_buckets(JobId job) {
  ReaderMutexLock lock(registry_mu_);
  const auto it = jobs_.find(job);
  // Publish-before-consume ordering: register_job() must precede every
  // append/publish/take for the job (see the lock-order comment in the
  // header — this registration edge is the invariant TSA cannot see).
  S3_CHECK_MSG(it != jobs_.end(),
               "shuffle access before register_job: job " << job);
  return it->second;
}

const ShuffleStore::JobBuckets& ShuffleStore::job_buckets(JobId job) const {
  return const_cast<ShuffleStore*>(this)->job_buckets(job);
}

void ShuffleStore::append(JobId job, std::uint32_t partition, KVBatch run) {
  if (run.empty()) return;
  JobBuckets& jb = job_buckets(job);
  S3_CHECK_MSG(partition < jb.partitions,
               "partition " << partition << " out of range");
  Bucket& b = *jb.buckets[partition];
  MutexLock lock(b.mu);
  b.runs.push_back(std::move(run));
}

void ShuffleStore::publish(JobId job, std::vector<KVBatch> runs) {
  JobBuckets& jb = job_buckets(job);
  S3_CHECK_MSG(runs.size() == jb.partitions,
               "publish expects one run per partition");
  static auto& runs_published =
      obs::Registry::instance().counter("shuffle.runs_published");
  static auto& records_published =
      obs::Registry::instance().counter("shuffle.records_published");
  std::uint64_t published_runs = 0;
  std::uint64_t published_records = 0;
  for (std::uint32_t p = 0; p < jb.partitions; ++p) {
    if (runs[p].empty()) continue;
    ++published_runs;
    published_records += runs[p].size();
    runs_published.add();
    records_published.add(runs[p].size());
    Bucket& b = *jb.buckets[p];
    MutexLock lock(b.mu);
    b.runs.push_back(std::move(runs[p]));
  }
  S3_FLIGHT_MARK("shuffle.publish", published_runs, published_records);
}

std::vector<KVBatch> ShuffleStore::take(JobId job, std::uint32_t partition) {
  JobBuckets& jb = job_buckets(job);
  S3_CHECK_MSG(partition < jb.partitions,
               "partition " << partition << " out of range");
  Bucket& b = *jb.buckets[partition];
  MutexLock lock(b.mu);
  std::vector<KVBatch> out;
  out.swap(b.runs);
  return out;
}

std::uint32_t ShuffleStore::partitions(JobId job) const {
  return job_buckets(job).partitions;
}

std::uint64_t ShuffleStore::pending_records(JobId job) const {
  const JobBuckets& jb = job_buckets(job);
  std::uint64_t total = 0;
  for (const auto& bucket : jb.buckets) {
    MutexLock lock(bucket->mu);
    for (const KVBatch& run : bucket->runs) total += run.size();
  }
  return total;
}

std::uint64_t hash_group(const KVBatch& batch, const GroupFn& fn) {
  const std::size_t n = batch.size();
  if (n == 0) return 0;

  // Open addressing, linear probing, load factor <= 0.5. Slots hold group
  // indices; groups chain their member records through `next`.
  constexpr std::uint32_t kNil = 0xffffffffu;
  std::size_t capacity = 16;
  while (capacity < n * 2) capacity <<= 1;
  const std::size_t mask = capacity - 1;
  std::vector<std::uint32_t> slots(capacity, kNil);
  struct Group {
    std::uint32_t head;
    std::uint32_t tail;
  };
  std::vector<Group> groups;
  groups.reserve(n / 2 + 1);
  std::vector<std::uint32_t> next(n, kNil);

  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view key = batch.key(i);
    std::size_t slot = fast_hash(key) & mask;
    while (slots[slot] != kNil && batch.key(groups[slots[slot]].head) != key) {
      slot = (slot + 1) & mask;
    }
    if (slots[slot] == kNil) {
      slots[slot] = static_cast<std::uint32_t>(groups.size());
      groups.push_back(Group{static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(i)});
    } else {
      Group& g = groups[slots[slot]];
      next[g.tail] = static_cast<std::uint32_t>(i);
      g.tail = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<std::string_view> values;
  for (const Group& g : groups) {
    values.clear();
    for (std::uint32_t j = g.head; j != kNil; j = next[j]) {
      values.push_back(batch.value(j));
    }
    fn(batch.key(g.head), values);
  }
  return groups.size();
}

std::uint64_t merge_runs_and_group(const std::vector<KVBatch>& runs,
                                   const GroupFn& fn) {
  struct Cursor {
    const KVBatch* run;
    std::size_t pos;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(runs.size());
  for (const KVBatch& run : runs) {
    if (run.empty()) continue;
    S3_CHECK_MSG(run.sorted_by_key(), "merge requires sorted runs");
    cursors.push_back(Cursor{&run, 0});
  }

  // Binary min-heap of cursor indices ordered by current key (ties broken by
  // cursor index so the merge is deterministic for a given run order).
  std::vector<std::size_t> heap;
  heap.reserve(cursors.size());
  const auto key_of = [&](std::size_t c) {
    return cursors[c].run->key(cursors[c].pos);
  };
  const auto heap_less = [&](std::size_t a, std::size_t b) {
    const auto ka = key_of(a);
    const auto kb = key_of(b);
    if (ka != kb) return ka > kb;  // min-heap via greater-than
    return a > b;
  };
  for (std::size_t c = 0; c < cursors.size(); ++c) heap.push_back(c);
  std::make_heap(heap.begin(), heap.end(), heap_less);

  std::uint64_t num_groups = 0;
  std::vector<std::string_view> values;
  while (!heap.empty()) {
    // The smallest key across all runs starts a group; drain every run whose
    // front matches it (each run's equal keys are consecutive — sorted).
    const std::size_t first = heap.front();
    // Views into the run arenas stay valid while we advance cursors.
    const std::string_view group_key = key_of(first);
    values.clear();
    while (!heap.empty() && key_of(heap.front()) == group_key) {
      std::pop_heap(heap.begin(), heap.end(), heap_less);
      const std::size_t c = heap.back();
      heap.pop_back();
      Cursor& cur = cursors[c];
      while (cur.pos < cur.run->size() && cur.run->key(cur.pos) == group_key) {
        values.push_back(cur.run->value(cur.pos));
        ++cur.pos;
      }
      if (cur.pos < cur.run->size()) {
        heap.push_back(c);
        std::push_heap(heap.begin(), heap.end(), heap_less);
      }
    }
    fn(group_key, values);
    ++num_groups;
  }
  return num_groups;
}

std::uint64_t sort_and_group(
    std::vector<KeyValue> records,
    const std::function<void(const std::string&,
                             const std::vector<std::string>&)>& fn) {
  std::sort(records.begin(), records.end(),
            [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
  std::uint64_t groups = 0;
  std::size_t i = 0;
  std::vector<std::string> values;
  while (i < records.size()) {
    const std::string& key = records[i].key;
    values.clear();
    std::size_t j = i;
    while (j < records.size() && records[j].key == key) {
      values.push_back(std::move(records[j].value));
      ++j;
    }
    fn(key, values);
    ++groups;
    i = j;
  }
  return groups;
}

}  // namespace s3::engine
