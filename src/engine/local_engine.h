// LocalEngine — a real, multi-threaded MapReduce execution engine over the
// in-memory DFS. One worker thread per map slot and per reduce slot. The
// engine executes *batches*: a set of blocks scanned once for a set of member
// jobs. A FIFO job is one batch covering the whole file with one member; an
// MRShare group is one whole-file batch with n members; an S3 merged sub-job
// is a one-segment batch with the currently-aligned members.
//
// Contract for jobs executed across multiple batches (S3 sub-jobs): the
// reducer must be algebraic — reducing the concatenation of partial outputs
// must equal reducing the original data (true for counts, sums, min/max,
// selection; see paper §V-G on output collection).
//
// Failure domains (DESIGN.md §12): run_batch() survives injected node
// deaths (re-dispatch on a live replica), hung tasks (watchdog + modeled
// exponential backoff) and transient errors via the per-task retry loop, and
// quarantines poison members — a job whose own map/reduce fn keeps failing
// is retired with its error status and the shared scan re-runs for the
// surviving members instead of failing them all.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/pinned_thread_pool.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "dfs/block_source.h"
#include "dfs/block_store.h"
#include "dfs/dfs_namespace.h"
#include "dfs/failover.h"
#include "engine/arena_pool.h"
#include "engine/counters.h"
#include "engine/fault.h"
#include "engine/job.h"
#include "engine/map_runner.h"
#include "engine/reduce_runner.h"
#include "engine/shuffle.h"

namespace s3::engine {

struct BatchExec {
  BatchId id;
  std::vector<BlockId> blocks;  // scan scope (a segment, or a whole file)
  std::vector<JobId> jobs;      // member jobs sharing the scan
};

// Legacy fault injection hook: called before each task attempt; return true
// to make that attempt fail (a plain transient, never attributable to a
// member job). Invoked concurrently from worker threads. The typed
// FaultInjector in fault.h supersedes this; both may be set.
using FailureInjector =
    std::function<bool(TaskId task, int attempt)>;

struct LocalEngineOptions {
  std::size_t map_workers = 4;
  std::size_t reduce_workers = 2;
  // Pin each worker thread to its own core via sched_setaffinity (map
  // workers to cores [0, map_workers), reduce workers after them). Degrades
  // to a no-op on platforms without affinity support.
  bool pin_cores = false;
  // Run the Metis-style prefault pre-phases: before the timed map wave each
  // map worker touches its assigned input blocks' pages and warms its arena
  // shard; before the reduce wave each reduce worker warms its shard. Off by
  // default (as in Metis) — with a generated block source the input touch
  // synthesizes each block an extra time.
  bool prefault = false;
  // Paper §V-G extension: fold partial outputs into a running aggregate
  // after every batch instead of keeping all partials until finalize.
  bool incremental_merge = false;
  // Task-level fault tolerance: attempts per task before the batch fails.
  int max_task_attempts = 3;
  FailureInjector failure_injector;  // nullptr = no injected failures
  // Typed fault injection (transients, hangs, node deaths, poison members).
  FaultInjector fault_injector;  // nullptr = no injected faults
  // Shared dead-node / corrupt-replica registry. When set, injected node
  // deaths are recorded here (so a FailoverBlockSource built on the same
  // registry stops serving from the dead node) and map dispatch skips dead
  // replicas. When null the engine keeps a private dead-node set.
  dfs::ReplicaHealth* replica_health = nullptr;
  // Invoked (from a worker thread — must be thread-safe) the moment a node
  // death is first observed. Drivers that need the scheduler informed should
  // prefer BatchOutcome::nodes_died, which is delivered on their own thread.
  std::function<void(NodeId)> on_node_death;
  // Hung-task watchdog: how long an attempt may run before it is declared
  // hung and abandoned, and the base of the exponential backoff before the
  // re-attempt. Both are modeled (journaled) times — the engine never
  // sleeps; injected hangs are abandoned immediately with the would-be
  // timings recorded.
  double hung_task_timeout_s = 30.0;
  double retry_backoff_base_s = 0.5;
  // Record representation + grouping algorithm (see shuffle.h). kLegacySort
  // is the differential-testing oracle, not a production choice.
  DataPath data_path = DataPath::kFlatBatch;
};

// What run_batch recovered from (empty vectors = a clean batch).
struct BatchOutcome {
  struct QuarantinedJob {
    JobId job;
    Status reason;  // default-constructed OK until the quarantine fires
  };
  // Poison members retired from the batch; their engine state is released
  // and they must not be finalized.
  std::vector<QuarantinedJob> quarantined;
  // Nodes first observed dead during this batch (deduplicated).
  std::vector<NodeId> nodes_died;
  // Times the shared scan re-ran for the survivors after a quarantine.
  int reruns = 0;
};

class LocalEngine {
 public:
  // Reads payloads from a materialized block store.
  LocalEngine(const dfs::DfsNamespace& ns, const dfs::BlockStore& store,
              LocalEngineOptions options = {});
  // Reads payloads from any BlockSource (e.g. GeneratedBlockSource, which
  // synthesizes blocks on demand so inputs need not fit in memory; or a
  // FailoverBlockSource for replica failover). The source must outlive the
  // engine.
  LocalEngine(const dfs::DfsNamespace& ns, const dfs::BlockSource& source,
              LocalEngineOptions options = {});
  ~LocalEngine();

  LocalEngine(const LocalEngine&) = delete;
  LocalEngine& operator=(const LocalEngine&) = delete;

  // Registers a job before any batch that includes it.
  [[nodiscard]] Status register_job(JobSpec spec);

  // Executes one batch synchronously: a parallel map wave over all blocks
  // (each block read once for all member jobs), then a parallel reduce wave
  // per member job. Recovers from injected faults (see BatchOutcome);
  // returns an error only when the batch as a whole cannot make progress
  // (invalid options/batch, exhausted non-attributable retries, data loss).
  [[nodiscard]] StatusOr<BatchOutcome> run_batch(const BatchExec& batch);

  // Compatibility wrapper over run_batch(): a batch that quarantined any
  // member reports the first quarantine reason as the batch error (the
  // survivors' work is still committed).
  [[nodiscard]] Status execute_batch(const BatchExec& batch);

  // Merges a completed job's partial outputs into its final result and
  // releases its engine state. Must be called after the job's last batch.
  [[nodiscard]] StatusOr<JobResult> finalize_job(JobId job);

  // The returned reference escapes mu_; callers read it only between waves
  // (no batch in flight for the job), which the engine's drivers guarantee.
  [[nodiscard]] const JobCounters& counters(JobId job) const S3_EXCLUDES(mu_);
  [[nodiscard]] ScanCounters scan_counters() const S3_EXCLUDES(mu_);
  [[nodiscard]] std::size_t registered_jobs() const S3_EXCLUDES(mu_);
  // Task attempts that failed and were retried (fault-tolerance telemetry).
  [[nodiscard]] std::uint64_t failed_attempts() const S3_EXCLUDES(mu_);
  // Attempts the hung-task watchdog abandoned.
  [[nodiscard]] std::uint64_t hung_attempts() const S3_EXCLUDES(mu_);
  [[nodiscard]] bool node_is_dead(NodeId node) const S3_EXCLUDES(mu_);

 private:
  struct JobState {
    JobSpec spec;
    JobCounters counters;
    std::vector<KeyValue> partials;  // accumulated reduce outputs
    std::uint64_t batches_run = 0;
  };

  // Shared recovery bookkeeping for one map+reduce wave, written by worker
  // threads.
  struct WaveCtx {
    AnnotatedMutex mu{LockRank::kEngineWaveCtx};
    std::vector<NodeId> died S3_GUARDED_BY(mu);
    // First member whose attempts exhausted on a poison fault (quarantine
    // candidate) and the status to retire it with.
    JobId poison S3_GUARDED_BY(mu);
    Status poison_status S3_GUARDED_BY(mu);  // OK until a quarantine fires
  };

  // One full map+reduce pass over the batch for `specs`; commits member
  // state only on success, so a failed wave can be re-run.
  [[nodiscard]] Status run_wave(const BatchExec& batch,
                                const std::vector<const JobSpec*>& specs,
                                WaveCtx& ctx);

  // Metis-style prefault pre-phases (options_.prefault): fault in the input
  // block pages and the arena shards from the workers that will use them, so
  // the timed waves start on resident, locally-placed pages. Best-effort —
  // fetch errors are left for the map wave to surface and retry.
  void run_map_prefault(const BatchExec& batch);
  void run_reduce_prefault();

  // Publishes pool and arena telemetry (steals, pinned workers, recycle
  // hit rates) to the metrics registry.
  void export_locality_metrics() const;

  // Decides what (if anything) goes wrong with one attempt: the legacy
  // injector first, then the typed injector; poison faults naming a
  // non-member are dropped.
  [[nodiscard]] Fault decide_fault(
      const TaskAttempt& attempt,
      const std::vector<const JobSpec*>& specs) const;
  // Counts the failure, emits kTaskHung / kTaskAttemptFailed / kTaskRetried.
  void note_attempt_failure(const TaskAttempt& attempt, FaultKind kind,
                            const std::string& cause, bool will_retry)
      S3_EXCLUDES(mu_);
  // Marks a node dead (shared registry or private set); records first
  // observations in ctx and fires on_node_death.
  void record_node_death(NodeId node, WaveCtx& ctx) S3_EXCLUDES(mu_);
  // First live replica of the block (invalid without replica metadata).
  [[nodiscard]] NodeId pick_replica(BlockId block) const S3_EXCLUDES(mu_);

  // Re-reduces `records` with the job's reducer (used by finalize and by
  // incremental merging).
  [[nodiscard]] std::vector<KeyValue> re_reduce(const JobSpec& spec,
                                                std::vector<KeyValue> records);

  JobState& state(JobId job) S3_REQUIRES(mu_);
  [[nodiscard]] const JobState& state(JobId job) const S3_REQUIRES(mu_);

  const dfs::DfsNamespace* ns_;
  // Set when constructed from a BlockStore (keeps the adapter alive).
  std::unique_ptr<dfs::StoredBlocks> owned_adapter_;
  const dfs::BlockSource* source_;
  LocalEngineOptions options_;

  ShuffleStore shuffle_;
  MapRunner map_runner_;
  ReduceRunner reduce_runner_;
  std::unique_ptr<PinnedThreadPool> map_pool_;
  std::unique_ptr<PinnedThreadPool> reduce_pool_;
  // Recycled KVBatch arenas, one shard per worker: shards [0, map_workers)
  // belong to map workers, the rest to reduce workers.
  std::unique_ptr<BatchArenaPool> arena_pool_;

  // Held while register_job() registers with the ShuffleStore (so it ranks
  // below the shuffle registry), but never while calling into the pools.
  mutable AnnotatedMutex mu_{LockRank::kEngineState};
  std::unordered_map<JobId, JobState> jobs_ S3_GUARDED_BY(mu_);
  ScanCounters scan_counters_ S3_GUARDED_BY(mu_);
  IdGenerator<TaskId> task_ids_ S3_GUARDED_BY(mu_);
  std::uint64_t failed_attempts_ S3_GUARDED_BY(mu_) = 0;
  std::uint64_t hung_attempts_ S3_GUARDED_BY(mu_) = 0;
  // Private dead-node set, used when options_.replica_health is null.
  std::unordered_set<NodeId> dead_nodes_ S3_GUARDED_BY(mu_);
};

}  // namespace s3::engine
