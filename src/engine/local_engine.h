// LocalEngine — a real, multi-threaded MapReduce execution engine over the
// in-memory DFS. One worker thread per map slot and per reduce slot. The
// engine executes *batches*: a set of blocks scanned once for a set of member
// jobs. A FIFO job is one batch covering the whole file with one member; an
// MRShare group is one whole-file batch with n members; an S3 merged sub-job
// is a one-segment batch with the currently-aligned members.
//
// Contract for jobs executed across multiple batches (S3 sub-jobs): the
// reducer must be algebraic — reducing the concatenation of partial outputs
// must equal reducing the original data (true for counts, sums, min/max,
// selection; see paper §V-G on output collection).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "dfs/block_source.h"
#include "dfs/block_store.h"
#include "dfs/dfs_namespace.h"
#include "engine/counters.h"
#include "engine/job.h"
#include "engine/map_runner.h"
#include "engine/reduce_runner.h"
#include "engine/shuffle.h"

namespace s3::engine {

struct BatchExec {
  BatchId id;
  std::vector<BlockId> blocks;  // scan scope (a segment, or a whole file)
  std::vector<JobId> jobs;      // member jobs sharing the scan
};

// Fault injection hook: called before each task attempt; return true to make
// that attempt fail (MapReduce's "fine-grained fault tolerance" then retries
// it, up to max_task_attempts). Invoked concurrently from worker threads.
using FailureInjector =
    std::function<bool(TaskId task, int attempt)>;

struct LocalEngineOptions {
  std::size_t map_workers = 4;
  std::size_t reduce_workers = 2;
  // Paper §V-G extension: fold partial outputs into a running aggregate
  // after every batch instead of keeping all partials until finalize.
  bool incremental_merge = false;
  // Task-level fault tolerance: attempts per task before the batch fails.
  int max_task_attempts = 3;
  FailureInjector failure_injector;  // nullptr = no injected failures
  // Record representation + grouping algorithm (see shuffle.h). kLegacySort
  // is the differential-testing oracle, not a production choice.
  DataPath data_path = DataPath::kFlatBatch;
};

class LocalEngine {
 public:
  // Reads payloads from a materialized block store.
  LocalEngine(const dfs::DfsNamespace& ns, const dfs::BlockStore& store,
              LocalEngineOptions options = {});
  // Reads payloads from any BlockSource (e.g. GeneratedBlockSource, which
  // synthesizes blocks on demand so inputs need not fit in memory). The
  // source must outlive the engine.
  LocalEngine(const dfs::DfsNamespace& ns, const dfs::BlockSource& source,
              LocalEngineOptions options = {});
  ~LocalEngine();

  LocalEngine(const LocalEngine&) = delete;
  LocalEngine& operator=(const LocalEngine&) = delete;

  // Registers a job before any batch that includes it.
  [[nodiscard]] Status register_job(JobSpec spec);

  // Executes one batch synchronously: a parallel map wave over all blocks
  // (each block read once for all member jobs), then a parallel reduce wave
  // per member job.
  [[nodiscard]] Status execute_batch(const BatchExec& batch);

  // Merges a completed job's partial outputs into its final result and
  // releases its engine state. Must be called after the job's last batch.
  [[nodiscard]] StatusOr<JobResult> finalize_job(JobId job);

  // The returned reference escapes mu_; callers read it only between waves
  // (no batch in flight for the job), which the engine's drivers guarantee.
  [[nodiscard]] const JobCounters& counters(JobId job) const S3_EXCLUDES(mu_);
  [[nodiscard]] ScanCounters scan_counters() const S3_EXCLUDES(mu_);
  [[nodiscard]] std::size_t registered_jobs() const S3_EXCLUDES(mu_);
  // Task attempts that failed and were retried (fault-tolerance telemetry).
  [[nodiscard]] std::uint64_t failed_attempts() const S3_EXCLUDES(mu_);

 private:
  struct JobState {
    JobSpec spec;
    JobCounters counters;
    std::vector<KeyValue> partials;  // accumulated reduce outputs
    std::uint64_t batches_run = 0;
  };

  // Re-reduces `records` with the job's reducer (used by finalize and by
  // incremental merging).
  [[nodiscard]] std::vector<KeyValue> re_reduce(const JobSpec& spec,
                                                std::vector<KeyValue> records);

  JobState& state(JobId job) S3_REQUIRES(mu_);
  [[nodiscard]] const JobState& state(JobId job) const S3_REQUIRES(mu_);

  const dfs::DfsNamespace* ns_;
  // Set when constructed from a BlockStore (keeps the adapter alive).
  std::unique_ptr<dfs::StoredBlocks> owned_adapter_;
  const dfs::BlockSource* source_;
  LocalEngineOptions options_;

  ShuffleStore shuffle_;
  MapRunner map_runner_;
  ReduceRunner reduce_runner_;
  std::unique_ptr<ThreadPool> map_pool_;
  std::unique_ptr<ThreadPool> reduce_pool_;

  // Leaf lock: never held while calling into ShuffleStore or the pools.
  mutable AnnotatedMutex mu_;
  std::unordered_map<JobId, JobState> jobs_ S3_GUARDED_BY(mu_);
  ScanCounters scan_counters_ S3_GUARDED_BY(mu_);
  IdGenerator<TaskId> task_ids_ S3_GUARDED_BY(mu_);
  std::uint64_t failed_attempts_ S3_GUARDED_BY(mu_) = 0;
};

}  // namespace s3::engine
