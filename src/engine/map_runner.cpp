#include "engine/map_runner.h"

#include <memory>

#include "dfs/reader.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace s3::engine {
namespace {

// Buffers map output task-locally as one flat KVBatch per partition, applies
// the optional combiner, and publishes every partition with one registry
// resolve. Counters are task-local and read out once at publish time.
class PartitionedEmitter final : public Emitter {
 public:
  // `arenas` may be null (standalone runners, tests); with a pool, buffers
  // are recycled arenas from `shard` — the executing worker's shard, so the
  // pages a previous task on this worker faulted in get reused in place.
  PartitionedEmitter(std::uint32_t partitions, BatchArenaPool* arenas,
                     std::size_t shard)
      : arenas_(arenas), shard_(shard) {
    buffers_.reserve(partitions);
    for (std::uint32_t p = 0; p < partitions; ++p) {
      buffers_.push_back(arenas_ != nullptr ? arenas_->acquire(shard_)
                                            : KVBatch{});
    }
  }

  void emit(std::string_view key, std::string_view value) override {
    ++records_;
    bytes_ += key.size() + value.size();
    const std::uint32_t p =
        partition_for_key(key, static_cast<std::uint32_t>(buffers_.size()));
    buffers_[p].append(key, value);
  }

  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

  // Runs the combiner over each partition buffer in place; returns the
  // post-combine record count. The flat path groups by hashing (O(n) probes
  // over the arena); the legacy path is the original owned-string sort.
  std::uint64_t combine(Reducer& combiner, DataPath data_path) {
    std::uint64_t out_records = 0;
    for (auto& buffer : buffers_) {
      KVBatch combined =
          arenas_ != nullptr ? arenas_->acquire(shard_) : KVBatch{};
      combined.reserve(buffer.size() / 2 + 1, buffer.payload_bytes() / 2 + 1);
      // Collect combiner output through a lightweight inline emitter.
      class CollectEmitter final : public Emitter {
       public:
        explicit CollectEmitter(KVBatch& out) : out_(&out) {}
        void emit(std::string_view key, std::string_view value) override {
          out_->append(key, value);
        }

       private:
        KVBatch* out_;
      } collect(combined);
      if (data_path == DataPath::kFlatBatch) {
        hash_group(buffer,
                   [&](std::string_view key,
                       const std::vector<std::string_view>& values) {
                     combiner.reduce(key, values, collect);
                   });
      } else {
        std::vector<KeyValue> owned;
        owned.reserve(buffer.size());
        for (std::size_t i = 0; i < buffer.size(); ++i) {
          owned.push_back(KeyValue{std::string(buffer.key(i)),
                                   std::string(buffer.value(i))});
        }
        std::vector<std::string_view> value_views;
        sort_and_group(std::move(owned),
                       [&](const std::string& key,
                           const std::vector<std::string>& values) {
                         value_views.assign(values.begin(), values.end());
                         combiner.reduce(key, value_views, collect);
                       });
      }
      KVBatch consumed = std::move(buffer);
      buffer = std::move(combined);
      out_records += buffer.size();
      // The pre-combine buffer's arena goes back to this worker's shard.
      if (arenas_ != nullptr) arenas_->release(shard_, std::move(consumed));
    }
    return out_records;
  }

  void publish(ShuffleStore& shuffle, JobId job, DataPath data_path) {
    if (data_path == DataPath::kFlatBatch) {
      // Sorted-run shuffle: each partition buffer becomes one sorted run, so
      // the reduce side k-way merges instead of sorting from scratch.
      for (KVBatch& buffer : buffers_) buffer.sort_by_key();
    }
    shuffle.publish(job, std::move(buffers_));
    buffers_.clear();
  }

 private:
  std::vector<KVBatch> buffers_;
  BatchArenaPool* arenas_;
  std::size_t shard_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace

MapRunner::MapRunner(const dfs::BlockSource& source, ShuffleStore& shuffle,
                     DataPath data_path)
    : source_(&source), shuffle_(&shuffle), data_path_(data_path) {}

StatusOr<MapTaskOutcome> MapRunner::run(const MapTaskSpec& task) const {
  if (task.jobs.empty()) {
    return Status::invalid_argument("map task with no member jobs");
  }
  static auto& tasks_run = obs::Registry::instance().counter("engine.map_tasks");
  static auto& task_ns =
      obs::Registry::instance().histogram("engine.map_task_ns");
  const std::uint64_t run_start_ns = obs::now_ns();
  S3_TRACE_SPAN_NAMED(span, "engine", "map_task");
  span.arg("task", task.id.value())
      .arg("block", task.block.value())
      .arg("jobs", task.jobs.size());

  auto payload_or = source_->fetch(task.block);
  if (!payload_or.is_ok()) return payload_or.status();
  const dfs::Payload payload = std::move(payload_or).value();

  MapTaskOutcome outcome;

  // Arena shard of the executing worker (resolved at run time, not dispatch
  // time: a stolen task must use the thief's shard, not the victim's).
  std::size_t shard = shard_offset_;
  if (pool_ != nullptr) {
    const int worker = pool_->current_worker_index();
    if (worker >= 0) shard += static_cast<std::size_t>(worker);
  }

  // One mapper + emitter per member job; a single physical pass drives all.
  struct Member {
    const JobSpec* spec;
    std::unique_ptr<Mapper> mapper;
    std::unique_ptr<PartitionedEmitter> emitter;
  };
  std::vector<Member> members;
  members.reserve(task.jobs.size());
  for (const JobSpec* spec : task.jobs) {
    S3_CHECK(spec != nullptr && spec->valid());
    members.push_back(Member{spec, spec->mapper_factory(),
                             std::make_unique<PartitionedEmitter>(
                                 spec->num_reduce_tasks, arenas_, shard)});
  }

  dfs::SharedScanReader reader(payload);
  for (auto& member : members) {
    reader.add_consumer([&member](const dfs::Record& record) {
      member.mapper->map(record, *member.emitter);
    });
  }
  const std::uint64_t records = reader.scan();

  outcome.scan.blocks_physical += 1;
  outcome.scan.bytes_physical += payload->size();
  outcome.scan.blocks_logical += task.jobs.size();
  outcome.scan.bytes_logical += payload->size() * task.jobs.size();

  for (auto& member : members) {
    member.mapper->finish(*member.emitter);

    JobCounters& counters = outcome.per_job[member.spec->id];
    counters.map_input_records += records;
    counters.map_input_bytes += payload->size();
    counters.map_output_records += member.emitter->records();
    counters.map_output_bytes += member.emitter->bytes();
    counters.map_tasks += 1;
    counters.blocks_scanned += 1;

    if (member.spec->combiner_factory != nullptr) {
      auto combiner = member.spec->combiner_factory();
      counters.combine_output_records +=
          member.emitter->combine(*combiner, data_path_);
    }
    member.emitter->publish(*shuffle_, member.spec->id, data_path_);
  }
  tasks_run.add();
  task_ns.observe(obs::now_ns() - run_start_ns);
  return outcome;
}

}  // namespace s3::engine
