#include "engine/map_runner.h"

#include <memory>

#include "dfs/reader.h"

namespace s3::engine {
namespace {

// Buffers map output locally (per partition), applies the optional combiner,
// and publishes to the shuffle store in one append per partition.
class PartitionedEmitter final : public Emitter {
 public:
  PartitionedEmitter(std::uint32_t partitions) : buffers_(partitions) {}

  void emit(std::string key, std::string value) override {
    ++records_;
    bytes_ += key.size() + value.size();
    const std::uint32_t p =
        partition_for_key(key, static_cast<std::uint32_t>(buffers_.size()));
    buffers_[p].push_back(KeyValue{std::move(key), std::move(value)});
  }

  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

  // Runs the combiner over each partition buffer in place; returns the
  // post-combine record count.
  std::uint64_t combine(Reducer& combiner) {
    std::uint64_t out_records = 0;
    for (auto& buffer : buffers_) {
      std::vector<KeyValue> combined;
      combined.reserve(buffer.size() / 2 + 1);
      // Collect combiner output through a lightweight inline emitter.
      class CollectEmitter final : public Emitter {
       public:
        explicit CollectEmitter(std::vector<KeyValue>& out) : out_(&out) {}
        void emit(std::string key, std::string value) override {
          out_->push_back(KeyValue{std::move(key), std::move(value)});
        }

       private:
        std::vector<KeyValue>* out_;
      } collect(combined);
      sort_and_group(std::move(buffer),
                     [&](const std::string& key,
                         const std::vector<std::string>& values) {
                       combiner.reduce(key, values, collect);
                     });
      buffer = std::move(combined);
      out_records += buffer.size();
    }
    return out_records;
  }

  void publish(ShuffleStore& shuffle, JobId job) {
    for (std::uint32_t p = 0; p < buffers_.size(); ++p) {
      shuffle.append(job, p, std::move(buffers_[p]));
    }
    buffers_.clear();
  }

 private:
  std::vector<std::vector<KeyValue>> buffers_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace

MapRunner::MapRunner(const dfs::BlockSource& source, ShuffleStore& shuffle)
    : source_(&source), shuffle_(&shuffle) {}

StatusOr<MapTaskOutcome> MapRunner::run(const MapTaskSpec& task) const {
  if (task.jobs.empty()) {
    return Status::invalid_argument("map task with no member jobs");
  }
  auto payload_or = source_->fetch(task.block);
  if (!payload_or.is_ok()) return payload_or.status();
  const dfs::Payload payload = std::move(payload_or).value();

  MapTaskOutcome outcome;

  // One mapper + emitter per member job; a single physical pass drives all.
  struct Member {
    const JobSpec* spec;
    std::unique_ptr<Mapper> mapper;
    std::unique_ptr<PartitionedEmitter> emitter;
  };
  std::vector<Member> members;
  members.reserve(task.jobs.size());
  for (const JobSpec* spec : task.jobs) {
    S3_CHECK(spec != nullptr && spec->valid());
    members.push_back(Member{spec, spec->mapper_factory(),
                             std::make_unique<PartitionedEmitter>(
                                 spec->num_reduce_tasks)});
  }

  dfs::SharedScanReader reader(payload);
  for (auto& member : members) {
    reader.add_consumer([&member](const dfs::Record& record) {
      member.mapper->map(record, *member.emitter);
    });
  }
  const std::uint64_t records = reader.scan();

  outcome.scan.blocks_physical += 1;
  outcome.scan.bytes_physical += payload->size();
  outcome.scan.blocks_logical += task.jobs.size();
  outcome.scan.bytes_logical += payload->size() * task.jobs.size();

  for (auto& member : members) {
    member.mapper->finish(*member.emitter);

    JobCounters& counters = outcome.per_job[member.spec->id];
    counters.map_input_records += records;
    counters.map_input_bytes += payload->size();
    counters.map_output_records += member.emitter->records();
    counters.map_output_bytes += member.emitter->bytes();
    counters.map_tasks += 1;
    counters.blocks_scanned += 1;

    if (member.spec->combiner_factory != nullptr) {
      auto combiner = member.spec->combiner_factory();
      counters.combine_output_records += member.emitter->combine(*combiner);
    }
    member.emitter->publish(*shuffle_, member.spec->id);
  }
  return outcome;
}

}  // namespace s3::engine
