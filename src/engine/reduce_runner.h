// Reduce task execution: takes one (job, partition) run set from the shuffle
// store, k-way merges the sorted runs (or globally sorts, on the legacy
// oracle path), runs the user reducer per key group, and returns the
// partition's output.
#pragma once

#include "common/pinned_thread_pool.h"
#include "common/status.h"
#include "common/types.h"
#include "engine/arena_pool.h"
#include "engine/counters.h"
#include "engine/job.h"
#include "engine/shuffle.h"

namespace s3::engine {

struct ReduceTaskSpec {
  TaskId id;
  const JobSpec* job = nullptr;
  std::uint32_t partition = 0;
};

struct ReduceTaskOutcome {
  JobCounters counters;
  std::vector<KeyValue> output;  // sorted by key within the partition
};

class ReduceRunner {
 public:
  explicit ReduceRunner(ShuffleStore& shuffle,
                        DataPath data_path = DataPath::kFlatBatch);

  // Runs the task synchronously on the calling thread. Thread-safe across
  // distinct (job, partition) pairs.
  [[nodiscard]] StatusOr<ReduceTaskOutcome> run(
      const ReduceTaskSpec& task) const;

  // Optional locality wiring (see MapRunner::set_locality): consumed shuffle
  // runs are released to `arenas` under the executing worker's shard so
  // their pages get recycled instead of freed cold.
  void set_locality(BatchArenaPool* arenas, const PinnedThreadPool* pool,
                    std::size_t shard_offset) {
    arenas_ = arenas;
    pool_ = pool;
    shard_offset_ = shard_offset;
  }

 private:
  ShuffleStore* shuffle_;
  DataPath data_path_;
  BatchArenaPool* arenas_ = nullptr;
  const PinnedThreadPool* pool_ = nullptr;
  std::size_t shard_offset_ = 0;
};

}  // namespace s3::engine
