// KVBatch — the flat record representation of the engine's hot path. One
// contiguous byte arena holds every key and value back to back; a parallel
// entry array records {offset, key_len, value_len}. Appending copies the
// record bytes once and never allocates per record (amortized arena growth
// only).
//
// View-lifetime invariant: the {offset, len} entries survive arena
// reallocation — a held std::string_view does NOT. key()/value() compute a
// view from the arena's *current* base pointer, so any arena mutation
// (a reallocating append, clear(), prefault(), recycle through
// BatchArenaPool, a move, destruction) leaves previously-fetched views
// dangling. Re-fetch after any append; never hold a view across a mutation.
// The engine's phases respect this by construction (append-once, then
// read). Checked builds enforce it: key()/value() return an ArenaView
// (s3::DebugView) stamped with the arena's generation, and a stale
// dereference aborts with a witness (common/view_checks.h; the static half
// is tools/s3viewcheck).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/view_checks.h"

namespace s3::engine {

// What key()/value() hand out: a validating DebugView in checked builds, a
// plain std::string_view (zero overhead) in Release.
#if S3_VIEW_CHECKS
using ArenaView = ::s3::DebugView;
#else
using ArenaView = std::string_view;
#endif

class KVBatch {
 public:
  struct Entry {
    std::uint64_t offset = 0;      // first key byte within the arena
    std::uint32_t key_len = 0;
    std::uint32_t value_len = 0;
  };

  void append(std::string_view key, std::string_view value) {
#if S3_VIEW_CHECKS
    // Growth reallocates the arena: every outstanding view dangles.
    if (arena_.size() + key.size() + value.size() > arena_.capacity()) {
      stamp_.bump();
    }
#endif
    entries_.push_back(Entry{arena_.size(),
                             static_cast<std::uint32_t>(key.size()),
                             static_cast<std::uint32_t>(value.size())});
    arena_.append(key);
    arena_.append(value);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  // Total key+value bytes held (the map_output_bytes unit).
  [[nodiscard]] std::uint64_t payload_bytes() const { return arena_.size(); }

  [[nodiscard]] ArenaView key(std::size_t i) const {
    const Entry& e = entries_[i];
    return tag(std::string_view(arena_).substr(e.offset, e.key_len),
               "KVBatch::key");
  }
  [[nodiscard]] ArenaView value(std::size_t i) const {
    const Entry& e = entries_[i];
    return tag(
        std::string_view(arena_).substr(e.offset + e.key_len, e.value_len),
        "KVBatch::value");
  }

  void reserve(std::size_t records, std::size_t bytes) {
    entries_.reserve(records);
    arena_.reserve(bytes);
  }

  // Reserves AND touches one byte per page of the arena and entry storage,
  // so the pages are faulted in (and, under first-touch NUMA placement,
  // owned by the calling thread's node) before the timed phase starts —
  // Metis's map_prefault/reduce_prefault. The batch is left logically empty.
  void prefault(std::size_t records, std::size_t bytes);

  void clear() {
    entries_.clear();
    arena_.clear();
    sorted_ = false;
#if S3_VIEW_CHECKS
    stamp_.bump();
#endif
  }

  // Reorders the entry index so keys ascend (stable: equal keys keep their
  // append order). Only the 16-byte entries move; the arena is untouched,
  // so held views stay valid — they just no longer correspond to the same
  // index.
  void sort_by_key();

  // True iff keys ascend in index order (set by sort_by_key, cleared by
  // append; trivially true for <= 1 record).
  [[nodiscard]] bool sorted_by_key() const {
    return sorted_ || entries_.size() <= 1;
  }

#if S3_VIEW_CHECKS
  // Current arena generation (test hook: proves which mutations bump).
  [[nodiscard]] std::uint64_t generation_for_test() const {
    return stamp_.generation();
  }
#endif

 private:
  [[nodiscard]] ArenaView tag(std::string_view view,
                              const char* source) const {
#if S3_VIEW_CHECKS
    return ArenaView(view, stamp_.cell(), source);
#else
    (void)source;
    return view;
#endif
  }

  std::string arena_;
  std::vector<Entry> entries_;
  bool sorted_ = false;
#if S3_VIEW_CHECKS
  // Declared last: destroyed first, so a stale view dereferenced after the
  // batch dies fails the generation compare before the arena is freed.
  // ArenaStamp's copy/move semantics bump the right cells when batches are
  // copied, moved (vector growth in shuffle buckets / pool shards), or
  // overwritten — see common/view_checks.h.
  ArenaStamp stamp_;
#endif
};

}  // namespace s3::engine
