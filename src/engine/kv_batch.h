// KVBatch — the flat record representation of the engine's hot path. One
// contiguous byte arena holds every key and value back to back; a parallel
// entry array records {offset, key_len, value_len}. Appending copies the
// record bytes once and never allocates per record (amortized arena growth
// only); accessors hand out string_views computed from offsets, so they stay
// valid across arena reallocation as long as they are re-fetched (append-once,
// then read — the engine never interleaves the two on a shared batch).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace s3::engine {

class KVBatch {
 public:
  struct Entry {
    std::uint64_t offset = 0;      // first key byte within the arena
    std::uint32_t key_len = 0;
    std::uint32_t value_len = 0;
  };

  void append(std::string_view key, std::string_view value) {
    entries_.push_back(Entry{arena_.size(),
                             static_cast<std::uint32_t>(key.size()),
                             static_cast<std::uint32_t>(value.size())});
    arena_.append(key);
    arena_.append(value);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  // Total key+value bytes held (the map_output_bytes unit).
  [[nodiscard]] std::uint64_t payload_bytes() const { return arena_.size(); }

  [[nodiscard]] std::string_view key(std::size_t i) const {
    const Entry& e = entries_[i];
    return std::string_view(arena_).substr(e.offset, e.key_len);
  }
  [[nodiscard]] std::string_view value(std::size_t i) const {
    const Entry& e = entries_[i];
    return std::string_view(arena_).substr(e.offset + e.key_len, e.value_len);
  }

  void reserve(std::size_t records, std::size_t bytes) {
    entries_.reserve(records);
    arena_.reserve(bytes);
  }

  // Reserves AND touches one byte per page of the arena and entry storage,
  // so the pages are faulted in (and, under first-touch NUMA placement,
  // owned by the calling thread's node) before the timed phase starts —
  // Metis's map_prefault/reduce_prefault. The batch is left logically empty.
  void prefault(std::size_t records, std::size_t bytes);

  void clear() {
    entries_.clear();
    arena_.clear();
    sorted_ = false;
  }

  // Reorders the entry index so keys ascend (stable: equal keys keep their
  // append order). Only the 16-byte entries move; the arena is untouched.
  void sort_by_key();

  // True iff keys ascend in index order (set by sort_by_key, cleared by
  // append; trivially true for <= 1 record).
  [[nodiscard]] bool sorted_by_key() const {
    return sorted_ || entries_.size() <= 1;
  }

 private:
  std::string arena_;
  std::vector<Entry> entries_;
  bool sorted_ = false;
};

}  // namespace s3::engine
