// Merged map task execution — the "runtime sub-job initialization" data path.
// One map task = one block scanned once, feeding the mapper of *every* member
// job (n = 1 degenerates to a plain Hadoop map task). Output is partitioned
// per job, optionally combined, then published to the shuffle store.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/pinned_thread_pool.h"
#include "common/status.h"
#include "common/types.h"
#include "dfs/block_source.h"
#include "engine/arena_pool.h"
#include "engine/counters.h"
#include "engine/job.h"
#include "engine/shuffle.h"

namespace s3::engine {

struct MapTaskSpec {
  TaskId id;
  BlockId block;
  // Member jobs sharing this scan. Pointers are non-owning; the engine keeps
  // specs alive for the lifetime of the batch.
  std::vector<const JobSpec*> jobs;
};

struct MapTaskOutcome {
  std::unordered_map<JobId, JobCounters> per_job;
  ScanCounters scan;
};

class MapRunner {
 public:
  MapRunner(const dfs::BlockSource& source, ShuffleStore& shuffle,
            DataPath data_path = DataPath::kFlatBatch);

  // Runs the task synchronously on the calling thread. Thread-safe: many
  // runners may execute concurrently against the same stores.
  [[nodiscard]] StatusOr<MapTaskOutcome> run(const MapTaskSpec& task) const;

  // Optional locality wiring: partition buffers are acquired from / released
  // to `arenas`, sharded by the executing worker (shard_offset + the
  // caller's index in `pool`; shard_offset when run off-pool). Both pointers
  // must outlive the runner. Call before the first run().
  void set_locality(BatchArenaPool* arenas, const PinnedThreadPool* pool,
                    std::size_t shard_offset) {
    arenas_ = arenas;
    pool_ = pool;
    shard_offset_ = shard_offset;
  }

 private:
  const dfs::BlockSource* source_;
  ShuffleStore* shuffle_;
  DataPath data_path_;
  BatchArenaPool* arenas_ = nullptr;
  const PinnedThreadPool* pool_ = nullptr;
  std::size_t shard_offset_ = 0;
};

}  // namespace s3::engine
