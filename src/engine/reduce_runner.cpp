#include "engine/reduce_runner.h"

#include <memory>

namespace s3::engine {
namespace {

class CollectEmitter final : public Emitter {
 public:
  explicit CollectEmitter(std::vector<KeyValue>& out) : out_(&out) {}
  void emit(std::string key, std::string value) override {
    bytes_ += key.size() + value.size();
    out_->push_back(KeyValue{std::move(key), std::move(value)});
  }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  std::vector<KeyValue>* out_;
  std::uint64_t bytes_ = 0;
};

}  // namespace

ReduceRunner::ReduceRunner(ShuffleStore& shuffle) : shuffle_(&shuffle) {}

StatusOr<ReduceTaskOutcome> ReduceRunner::run(const ReduceTaskSpec& task) const {
  if (task.job == nullptr || !task.job->valid()) {
    return Status::invalid_argument("reduce task without a valid job");
  }
  if (task.partition >= task.job->num_reduce_tasks) {
    return Status::out_of_range("partition beyond job's reduce task count");
  }

  std::vector<KeyValue> records = shuffle_->take(task.job->id, task.partition);
  ReduceTaskOutcome outcome;
  outcome.counters.reduce_tasks = 1;

  auto reducer = task.job->reducer_factory();
  CollectEmitter collect(outcome.output);
  outcome.counters.reduce_input_groups = sort_and_group(
      std::move(records),
      [&](const std::string& key, const std::vector<std::string>& values) {
        reducer->reduce(key, values, collect);
      });
  outcome.counters.reduce_output_records = outcome.output.size();
  outcome.counters.reduce_output_bytes = collect.bytes();
  return outcome;
}

}  // namespace s3::engine
