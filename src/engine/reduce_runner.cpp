#include "engine/reduce_runner.h"

#include <memory>

#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace s3::engine {
namespace {

class CollectEmitter final : public Emitter {
 public:
  explicit CollectEmitter(std::vector<KeyValue>& out) : out_(&out) {}
  void emit(std::string_view key, std::string_view value) override {
    bytes_ += key.size() + value.size();
    out_->push_back(KeyValue{std::string(key), std::string(value)});
  }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  std::vector<KeyValue>* out_;
  std::uint64_t bytes_ = 0;
};

}  // namespace

ReduceRunner::ReduceRunner(ShuffleStore& shuffle, DataPath data_path)
    : shuffle_(&shuffle), data_path_(data_path) {}

StatusOr<ReduceTaskOutcome> ReduceRunner::run(const ReduceTaskSpec& task) const {
  if (task.job == nullptr || !task.job->valid()) {
    return Status::invalid_argument("reduce task without a valid job");
  }
  if (task.partition >= task.job->num_reduce_tasks) {
    return Status::out_of_range("partition beyond job's reduce task count");
  }

  static auto& tasks_run =
      obs::Registry::instance().counter("engine.reduce_tasks");
  static auto& task_ns =
      obs::Registry::instance().histogram("engine.reduce_task_ns");
  const std::uint64_t run_start_ns = obs::now_ns();
  S3_TRACE_SPAN_NAMED(span, "engine", "reduce_task");
  span.arg("task", task.id.value())
      .arg("job", task.job->id.value())
      .arg("partition", task.partition);

  std::vector<KVBatch> runs = shuffle_->take(task.job->id, task.partition);
  ReduceTaskOutcome outcome;
  outcome.counters.reduce_tasks = 1;

  auto reducer = task.job->reducer_factory();
  CollectEmitter collect(outcome.output);
  if (data_path_ == DataPath::kFlatBatch) {
    // Map tasks published sorted runs; grouping is a k-way merge.
    S3_TRACE_SPAN_NAMED(merge_span, "engine", "shuffle_merge");
    merge_span.arg("runs", runs.size());
    outcome.counters.reduce_input_groups = merge_runs_and_group(
        runs, [&](std::string_view key,
                  const std::vector<std::string_view>& values) {
          reducer->reduce(key, values, collect);
        });
  } else {
    // Legacy oracle: flatten to owned records and globally sort from scratch.
    S3_TRACE_SPAN("engine", "shuffle_sort");
    std::vector<KeyValue> records;
    for (const KVBatch& run : runs) {
      for (std::size_t i = 0; i < run.size(); ++i) {
        records.push_back(
            KeyValue{std::string(run.key(i)), std::string(run.value(i))});
      }
    }
    std::vector<std::string_view> value_views;
    outcome.counters.reduce_input_groups = sort_and_group(
        std::move(records),
        [&](const std::string& key, const std::vector<std::string>& values) {
          value_views.assign(values.begin(), values.end());
          reducer->reduce(key, value_views, collect);
        });
  }
  outcome.counters.reduce_output_records = outcome.output.size();
  outcome.counters.reduce_output_bytes = collect.bytes();
  if (arenas_ != nullptr) {
    std::size_t shard = shard_offset_;
    if (pool_ != nullptr) {
      const int worker = pool_->current_worker_index();
      if (worker >= 0) shard += static_cast<std::size_t>(worker);
    }
    for (KVBatch& run : runs) arenas_->release(shard, std::move(run));
  }
  tasks_run.add();
  task_ns.observe(obs::now_ns() - run_start_ns);
  return outcome;
}

}  // namespace s3::engine
