// In-memory shuffle: map tasks publish their per-partition KVBatch buffers as
// sorted runs, reduce tasks take the whole (job, partition) run set and k-way
// merge it (or, on the legacy oracle path, flatten and globally sort).
// Registry lookups take a shared lock; map tasks resolve their job's buckets
// once per publish, so the steady-state cost of an append is one per-bucket
// mutex acquisition.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "engine/kv.h"
#include "engine/kv_batch.h"

namespace s3::engine {

// Which record representation and grouping algorithm the runners use.
// kFlatBatch is the production path: hash combine + sorted-run merge.
// kLegacySort is the original owned-string global-sort path, kept as the
// reference oracle for differential tests.
enum class DataPath {
  kFlatBatch,
  kLegacySort,
};

// Lock order: registry_mu_ before any Bucket::mu; a bucket lock is never
// held while acquiring the registry. The JobBuckets reference returned by
// job_buckets() intentionally escapes the shared registry lock — it stays
// valid because register_job() precedes every append/take for that job and
// unregister_job() follows the last take (unordered_map references survive
// rehash and unrelated erases). TSA checks the accesses inside each method;
// that registration-ordering contract is the one invariant it cannot see.
class ShuffleStore {
 public:
  // Declares a job's partition count; must precede any append for the job.
  void register_job(JobId job, std::uint32_t partitions)
      S3_EXCLUDES(registry_mu_);
  void unregister_job(JobId job) S3_EXCLUDES(registry_mu_);

  // Appends one run to (job, partition). Thread-safe.
  void append(JobId job, std::uint32_t partition, KVBatch run)
      S3_EXCLUDES(registry_mu_);

  // Publishes one run per partition (runs[p] -> partition p) with a single
  // registry resolve. Thread-safe; empty runs are dropped.
  void publish(JobId job, std::vector<KVBatch> runs)
      S3_EXCLUDES(registry_mu_);

  // Takes (moves out) all runs of (job, partition). Thread-safe.
  [[nodiscard]] std::vector<KVBatch> take(JobId job, std::uint32_t partition)
      S3_EXCLUDES(registry_mu_);

  [[nodiscard]] std::uint32_t partitions(JobId job) const
      S3_EXCLUDES(registry_mu_);
  [[nodiscard]] std::uint64_t pending_records(JobId job) const
      S3_EXCLUDES(registry_mu_);

 private:
  struct Bucket {
    mutable AnnotatedMutex mu{LockRank::kShuffleBucket};
    std::vector<KVBatch> runs S3_GUARDED_BY(mu);
  };
  struct JobBuckets {
    std::uint32_t partitions = 0;
    std::vector<std::unique_ptr<Bucket>> buckets;
  };

  mutable AnnotatedSharedMutex registry_mu_{LockRank::kShuffleRegistry};
  std::unordered_map<JobId, JobBuckets> jobs_ S3_GUARDED_BY(registry_mu_);

  // Resolves a job's bucket set under a shared registry lock.
  [[nodiscard]] JobBuckets& job_buckets(JobId job) S3_EXCLUDES(registry_mu_);
  [[nodiscard]] const JobBuckets& job_buckets(JobId job) const
      S3_EXCLUDES(registry_mu_);
};

// Grouping callback over records that live in an arena: views are valid only
// for the duration of the call.
using GroupFn =
    std::function<void(std::string_view key,
                       const std::vector<std::string_view>& values)>;

// Groups a batch's records by key with an open-addressing hash table over the
// arena — no sort, O(n) probes. Calls `fn` per group in first-appearance
// order (callers that need key order sort afterwards). Returns group count.
std::uint64_t hash_group(const KVBatch& batch, const GroupFn& fn);

// K-way merges sorted runs and groups equal keys; calls `fn` per group in
// ascending key order. Every run must be sorted_by_key(). Returns the number
// of groups.
std::uint64_t merge_runs_and_group(const std::vector<KVBatch>& runs,
                                   const GroupFn& fn);

// Legacy oracle: sorts owned records by key and groups equal keys; calls
// `fn(key, values)` per group in ascending key order. Returns the number of
// groups. The flat-batch paths above must produce byte-identical job output
// to engines built on this.
std::uint64_t sort_and_group(
    std::vector<KeyValue> records,
    const std::function<void(const std::string&,
                             const std::vector<std::string>&)>& fn);

}  // namespace s3::engine
