// In-memory shuffle: map tasks append partitioned runs, reduce tasks take a
// whole (job, partition) bucket, sort it and group by key. Appends from many
// map worker threads are serialized per bucket, and map tasks buffer
// task-locally first, so lock traffic is one acquisition per (task, bucket).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "engine/kv.h"

namespace s3::engine {

class ShuffleStore {
 public:
  // Declares a job's partition count; must precede any append for the job.
  void register_job(JobId job, std::uint32_t partitions);
  void unregister_job(JobId job);

  // Appends a run of records to (job, partition). Thread-safe.
  void append(JobId job, std::uint32_t partition, std::vector<KeyValue> run);

  // Takes (moves out) all records of (job, partition). Thread-safe.
  [[nodiscard]] std::vector<KeyValue> take(JobId job, std::uint32_t partition);

  [[nodiscard]] std::uint32_t partitions(JobId job) const;
  [[nodiscard]] std::uint64_t pending_records(JobId job) const;

 private:
  struct Bucket {
    mutable std::mutex mu;
    std::vector<KeyValue> records;
  };
  struct JobBuckets {
    std::uint32_t partitions = 0;
    std::vector<std::unique_ptr<Bucket>> buckets;
  };

  mutable std::mutex registry_mu_;
  std::unordered_map<JobId, JobBuckets> jobs_;

  [[nodiscard]] Bucket& bucket(JobId job, std::uint32_t partition);
  [[nodiscard]] const Bucket& bucket(JobId job, std::uint32_t partition) const;
};

// Sorts records by key and groups equal keys; calls `fn(key, values)` per
// group in ascending key order. Returns the number of groups.
std::uint64_t sort_and_group(
    std::vector<KeyValue> records,
    const std::function<void(const std::string&,
                             const std::vector<std::string>&)>& fn);

}  // namespace s3::engine
