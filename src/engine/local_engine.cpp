#include "engine/local_engine.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace s3::engine {

LocalEngine::LocalEngine(const dfs::DfsNamespace& ns,
                         const dfs::BlockStore& store,
                         LocalEngineOptions options)
    : ns_(&ns),
      owned_adapter_(std::make_unique<dfs::StoredBlocks>(store)),
      source_(owned_adapter_.get()),
      options_(options),
      map_runner_(*source_, shuffle_, options.data_path),
      reduce_runner_(shuffle_, options.data_path),
      map_pool_(std::make_unique<ThreadPool>(options.map_workers)),
      reduce_pool_(std::make_unique<ThreadPool>(options.reduce_workers)) {}

LocalEngine::LocalEngine(const dfs::DfsNamespace& ns,
                         const dfs::BlockSource& source,
                         LocalEngineOptions options)
    : ns_(&ns),
      source_(&source),
      options_(options),
      map_runner_(source, shuffle_, options.data_path),
      reduce_runner_(shuffle_, options.data_path),
      map_pool_(std::make_unique<ThreadPool>(options.map_workers)),
      reduce_pool_(std::make_unique<ThreadPool>(options.reduce_workers)) {}

LocalEngine::~LocalEngine() = default;

Status LocalEngine::register_job(JobSpec spec) {
  if (!spec.valid()) return Status::invalid_argument("invalid job spec");
  if (!ns_->has_file(spec.input)) {
    return Status::not_found("job input file does not exist");
  }
  MutexLock lock(mu_);
  if (jobs_.count(spec.id) > 0) {
    return Status::already_exists("job already registered");
  }
  shuffle_.register_job(spec.id, spec.num_reduce_tasks);
  JobState state;
  state.spec = std::move(spec);
  const JobId id = state.spec.id;
  jobs_.emplace(id, std::move(state));
  return Status::ok();
}

LocalEngine::JobState& LocalEngine::state(JobId job) {
  const auto it = jobs_.find(job);
  S3_CHECK_MSG(it != jobs_.end(), "unregistered job " << job);
  return it->second;
}

const LocalEngine::JobState& LocalEngine::state(JobId job) const {
  const auto it = jobs_.find(job);
  S3_CHECK_MSG(it != jobs_.end(), "unregistered job " << job);
  return it->second;
}

Status LocalEngine::execute_batch(const BatchExec& batch) {
  if (batch.jobs.empty()) {
    return Status::invalid_argument("batch with no member jobs");
  }
  if (batch.blocks.empty()) {
    return Status::invalid_argument("batch with no blocks");
  }

  // Snapshot member specs (stable pointers: jobs_ values are node-based).
  std::vector<const JobSpec*> members;
  {
    MutexLock lock(mu_);
    members.reserve(batch.jobs.size());
    for (const JobId job : batch.jobs) {
      const auto it = jobs_.find(job);
      if (it == jobs_.end()) {
        return Status::not_found("batch references unregistered job");
      }
      members.push_back(&it->second.spec);
    }
  }
  // Batch membership uniqueness: a merged batch reads each block once for
  // all members, so a duplicated member would double-count its sub-job.
  S3_DCHECK_MSG(([&] {
                  std::vector<JobId> ids = batch.jobs;
                  std::sort(ids.begin(), ids.end());
                  return std::adjacent_find(ids.begin(), ids.end()) ==
                         ids.end();
                }()),
                "batch " << batch.id << " lists a member job twice");

  S3_LOG(kDebug, "engine") << "batch " << batch.id << ": "
                           << batch.blocks.size() << " blocks x "
                           << batch.jobs.size() << " jobs";
  S3_TRACE_SPAN_NAMED(batch_span, "engine", "execute_batch");
  batch_span.arg("batch", batch.id.value())
      .arg("blocks", batch.blocks.size())
      .arg("jobs", batch.jobs.size());
  static auto& batches_run =
      obs::Registry::instance().counter("engine.batches");
  batches_run.add();

  // --- Map wave: one merged map task per block, all slots in parallel. ---
  S3_TRACE_SPAN_NAMED(map_wave_span, "engine", "map_wave");
  map_wave_span.arg("batch", batch.id.value())
      .arg("blocks", batch.blocks.size());
  struct MapCollect {
    AnnotatedMutex mu;
    std::vector<MapTaskOutcome> outcomes S3_GUARDED_BY(mu);
    Status first_error S3_GUARDED_BY(mu) = Status::ok();
  } map_collect;
  for (const BlockId block : batch.blocks) {
    MapTaskSpec task;
    {
      MutexLock lock(mu_);
      task.id = task_ids_.next();
    }
    task.block = block;
    task.jobs = members;
    map_pool_->submit([this, task = std::move(task), &map_collect] {
      // Fault tolerance: injected failures model a node rejecting/losing the
      // attempt before any side effects; the attempt is simply re-run.
      StatusOr<MapTaskOutcome> outcome =
          Status::internal("map task never attempted");
      for (int attempt = 1; attempt <= options_.max_task_attempts; ++attempt) {
        if (options_.failure_injector != nullptr &&
            options_.failure_injector(task.id, attempt)) {
          MutexLock lock(mu_);
          ++failed_attempts_;
          outcome = Status::unavailable("injected task failure");
          continue;
        }
        outcome = map_runner_.run(task);
        if (outcome.is_ok()) break;
      }
      MutexLock lock(map_collect.mu);
      if (outcome.is_ok()) {
        map_collect.outcomes.push_back(std::move(outcome).value());
      } else if (map_collect.first_error.is_ok()) {
        map_collect.first_error = outcome.status();
      }
    });
  }
  try {
    map_pool_->wait_idle();
  } catch (const std::exception& e) {
    return Status::internal(std::string("map task threw: ") + e.what());
  }
  // Single-threaded from here until the reduce wave: the workers are idle,
  // but TSA still wants the collect locks for the guarded reads below.
  {
    MutexLock lock(map_collect.mu);
    if (!map_collect.first_error.is_ok()) return map_collect.first_error;
  }

  {
    MutexLock outcome_lock(map_collect.mu);
    MutexLock lock(mu_);
    static auto& physical =
        obs::Registry::instance().counter("engine.blocks_physical");
    static auto& logical =
        obs::Registry::instance().counter("engine.blocks_logical");
    for (const auto& outcome : map_collect.outcomes) {
      scan_counters_ += outcome.scan;
      physical.add(outcome.scan.blocks_physical);
      logical.add(outcome.scan.blocks_logical);
      for (const auto& [job, counters] : outcome.per_job) {
        state(job).counters += counters;
      }
    }
    // Live sharing efficiency: logical blocks served per physical block
    // read. An n-member merged scan reports exactly n.
    static auto& sharing =
        obs::Registry::instance().gauge("engine.sharing_efficiency");
    if (scan_counters_.blocks_physical > 0) {
      sharing.set(static_cast<double>(scan_counters_.blocks_logical) /
                  static_cast<double>(scan_counters_.blocks_physical));
    }
  }
  map_wave_span.end();

  // --- Reduce wave: per member job, per partition. ---
  S3_TRACE_SPAN_NAMED(reduce_wave_span, "engine", "reduce_wave");
  reduce_wave_span.arg("batch", batch.id.value()).arg("jobs", members.size());
  struct ReduceCollect {
    AnnotatedMutex mu;
    std::unordered_map<JobId, std::vector<KeyValue>> outputs S3_GUARDED_BY(mu);
    std::unordered_map<JobId, JobCounters> counters S3_GUARDED_BY(mu);
    Status error S3_GUARDED_BY(mu) = Status::ok();
  } collect;

  for (const JobSpec* spec : members) {
    for (std::uint32_t p = 0; p < spec->num_reduce_tasks; ++p) {
      ReduceTaskSpec task;
      {
        MutexLock lock(mu_);
        task.id = task_ids_.next();
      }
      task.job = spec;
      task.partition = p;
      reduce_pool_->submit([this, task, &collect] {
        StatusOr<ReduceTaskOutcome> outcome =
            Status::internal("reduce task never attempted");
        for (int attempt = 1; attempt <= options_.max_task_attempts;
             ++attempt) {
          if (options_.failure_injector != nullptr &&
              options_.failure_injector(task.id, attempt)) {
            MutexLock lock(mu_);
            ++failed_attempts_;
            outcome = Status::unavailable("injected task failure");
            continue;
          }
          outcome = reduce_runner_.run(task);
          if (outcome.is_ok()) break;
        }
        MutexLock lock(collect.mu);
        if (!outcome.is_ok()) {
          if (collect.error.is_ok()) collect.error = outcome.status();
          return;
        }
        auto value = std::move(outcome).value();
        auto& out = collect.outputs[task.job->id];
        out.insert(out.end(), std::make_move_iterator(value.output.begin()),
                   std::make_move_iterator(value.output.end()));
        collect.counters[task.job->id] += value.counters;
      });
    }
  }
  try {
    reduce_pool_->wait_idle();
  } catch (const std::exception& e) {
    return Status::internal(std::string("reduce task threw: ") + e.what());
  }
  {
    MutexLock lock(collect.mu);
    if (!collect.error.is_ok()) return collect.error;
  }
  reduce_wave_span.end();

  {
    MutexLock collect_lock(collect.mu);
    MutexLock lock(mu_);
    for (const JobSpec* spec : members) {
      JobState& st = state(spec->id);
      st.counters += collect.counters[spec->id];
      auto& partial = collect.outputs[spec->id];
      st.partials.insert(st.partials.end(),
                         std::make_move_iterator(partial.begin()),
                         std::make_move_iterator(partial.end()));
      st.batches_run += 1;
      if (options_.incremental_merge && st.batches_run > 1) {
        st.partials = re_reduce(st.spec, std::move(st.partials));
      }
    }
  }
  return Status::ok();
}

std::vector<KeyValue> LocalEngine::re_reduce(const JobSpec& spec,
                                             std::vector<KeyValue> records) {
  std::vector<KeyValue> merged;
  merged.reserve(records.size());
  class CollectEmitter final : public Emitter {
   public:
    explicit CollectEmitter(std::vector<KeyValue>& out) : out_(&out) {}
    void emit(std::string_view key, std::string_view value) override {
      out_->push_back(KeyValue{std::string(key), std::string(value)});
    }

   private:
    std::vector<KeyValue>* out_;
  } collector(merged);
  auto reducer = spec.reducer_factory();
  std::vector<std::string_view> value_views;
  sort_and_group(std::move(records),
                 [&](const std::string& key,
                     const std::vector<std::string>& values) {
                   value_views.assign(values.begin(), values.end());
                   reducer->reduce(key, value_views, collector);
                 });
  return merged;
}

StatusOr<JobResult> LocalEngine::finalize_job(JobId job) {
  std::optional<JobState> taken;
  {
    MutexLock lock(mu_);
    const auto it = jobs_.find(job);
    if (it == jobs_.end()) return Status::not_found("unregistered job");
    taken.emplace(std::move(it->second));
    jobs_.erase(it);
  }
  JobState& st = *taken;
  // mu_ released before touching the shuffle registry (lock order: never
  // hold the engine leaf lock while acquiring shuffle locks).
  shuffle_.unregister_job(job);

  JobResult result;
  result.id = job;
  if (st.batches_run <= 1 || options_.incremental_merge) {
    // Partition outputs within one batch have disjoint keys (and incremental
    // merging keeps the invariant): sorting is all that is left to do.
    std::sort(st.partials.begin(), st.partials.end(),
              [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
    result.output = std::move(st.partials);
  } else {
    // Sub-job execution: the same key may appear in several partial outputs;
    // fold them with the (algebraic) reducer.
    result.output = re_reduce(st.spec, std::move(st.partials));
  }
  return result;
}

const JobCounters& LocalEngine::counters(JobId job) const {
  MutexLock lock(mu_);
  return state(job).counters;
}

ScanCounters LocalEngine::scan_counters() const {
  MutexLock lock(mu_);
  return scan_counters_;
}

std::size_t LocalEngine::registered_jobs() const {
  MutexLock lock(mu_);
  return jobs_.size();
}

std::uint64_t LocalEngine::failed_attempts() const {
  MutexLock lock(mu_);
  return failed_attempts_;
}

}  // namespace s3::engine
