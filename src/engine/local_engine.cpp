#include "engine/local_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace s3::engine {

LocalEngine::LocalEngine(const dfs::DfsNamespace& ns,
                         const dfs::BlockStore& store,
                         LocalEngineOptions options)
    : ns_(&ns),
      owned_adapter_(std::make_unique<dfs::StoredBlocks>(store)),
      source_(owned_adapter_.get()),
      options_(options),
      map_runner_(*source_, shuffle_, options.data_path),
      reduce_runner_(shuffle_, options.data_path),
      map_pool_(std::make_unique<ThreadPool>(options.map_workers)),
      reduce_pool_(std::make_unique<ThreadPool>(options.reduce_workers)) {}

LocalEngine::LocalEngine(const dfs::DfsNamespace& ns,
                         const dfs::BlockSource& source,
                         LocalEngineOptions options)
    : ns_(&ns),
      source_(&source),
      options_(options),
      map_runner_(source, shuffle_, options.data_path),
      reduce_runner_(shuffle_, options.data_path),
      map_pool_(std::make_unique<ThreadPool>(options.map_workers)),
      reduce_pool_(std::make_unique<ThreadPool>(options.reduce_workers)) {}

LocalEngine::~LocalEngine() = default;

Status LocalEngine::register_job(JobSpec spec) {
  if (!spec.valid()) return Status::invalid_argument("invalid job spec");
  if (!ns_->has_file(spec.input)) {
    return Status::not_found("job input file does not exist");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (jobs_.count(spec.id) > 0) {
    return Status::already_exists("job already registered");
  }
  shuffle_.register_job(spec.id, spec.num_reduce_tasks);
  JobState state;
  state.spec = std::move(spec);
  const JobId id = state.spec.id;
  jobs_.emplace(id, std::move(state));
  return Status::ok();
}

LocalEngine::JobState& LocalEngine::state(JobId job) {
  const auto it = jobs_.find(job);
  S3_CHECK_MSG(it != jobs_.end(), "unregistered job " << job);
  return it->second;
}

const LocalEngine::JobState& LocalEngine::state(JobId job) const {
  const auto it = jobs_.find(job);
  S3_CHECK_MSG(it != jobs_.end(), "unregistered job " << job);
  return it->second;
}

Status LocalEngine::execute_batch(const BatchExec& batch) {
  if (batch.jobs.empty()) {
    return Status::invalid_argument("batch with no member jobs");
  }
  if (batch.blocks.empty()) {
    return Status::invalid_argument("batch with no blocks");
  }

  // Snapshot member specs (stable pointers: jobs_ values are node-based).
  std::vector<const JobSpec*> members;
  {
    std::lock_guard<std::mutex> lock(mu_);
    members.reserve(batch.jobs.size());
    for (const JobId job : batch.jobs) {
      const auto it = jobs_.find(job);
      if (it == jobs_.end()) {
        return Status::not_found("batch references unregistered job");
      }
      members.push_back(&it->second.spec);
    }
  }

  S3_LOG(kDebug, "engine") << "batch " << batch.id << ": "
                           << batch.blocks.size() << " blocks x "
                           << batch.jobs.size() << " jobs";

  // --- Map wave: one merged map task per block, all slots in parallel. ---
  std::mutex outcome_mu;
  std::vector<MapTaskOutcome> outcomes;
  Status first_error = Status::ok();
  for (const BlockId block : batch.blocks) {
    MapTaskSpec task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      task.id = task_ids_.next();
    }
    task.block = block;
    task.jobs = members;
    map_pool_->submit([this, task = std::move(task), &outcome_mu, &outcomes,
                       &first_error] {
      // Fault tolerance: injected failures model a node rejecting/losing the
      // attempt before any side effects; the attempt is simply re-run.
      StatusOr<MapTaskOutcome> outcome =
          Status::internal("map task never attempted");
      for (int attempt = 1; attempt <= options_.max_task_attempts; ++attempt) {
        if (options_.failure_injector != nullptr &&
            options_.failure_injector(task.id, attempt)) {
          std::lock_guard<std::mutex> lock(mu_);
          ++failed_attempts_;
          outcome = Status::unavailable("injected task failure");
          continue;
        }
        outcome = map_runner_.run(task);
        if (outcome.is_ok()) break;
      }
      std::lock_guard<std::mutex> lock(outcome_mu);
      if (outcome.is_ok()) {
        outcomes.push_back(std::move(outcome).value());
      } else if (first_error.is_ok()) {
        first_error = outcome.status();
      }
    });
  }
  map_pool_->wait_idle();
  if (!first_error.is_ok()) return first_error;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& outcome : outcomes) {
      scan_counters_ += outcome.scan;
      for (const auto& [job, counters] : outcome.per_job) {
        state(job).counters += counters;
      }
    }
  }

  // --- Reduce wave: per member job, per partition. ---
  struct ReduceCollect {
    std::mutex mu;
    std::unordered_map<JobId, std::vector<KeyValue>> outputs;
    std::unordered_map<JobId, JobCounters> counters;
    Status error = Status::ok();
  } collect;

  for (const JobSpec* spec : members) {
    for (std::uint32_t p = 0; p < spec->num_reduce_tasks; ++p) {
      ReduceTaskSpec task;
      {
        std::lock_guard<std::mutex> lock(mu_);
        task.id = task_ids_.next();
      }
      task.job = spec;
      task.partition = p;
      reduce_pool_->submit([this, task, &collect] {
        StatusOr<ReduceTaskOutcome> outcome =
            Status::internal("reduce task never attempted");
        for (int attempt = 1; attempt <= options_.max_task_attempts;
             ++attempt) {
          if (options_.failure_injector != nullptr &&
              options_.failure_injector(task.id, attempt)) {
            std::lock_guard<std::mutex> lock(mu_);
            ++failed_attempts_;
            outcome = Status::unavailable("injected task failure");
            continue;
          }
          outcome = reduce_runner_.run(task);
          if (outcome.is_ok()) break;
        }
        std::lock_guard<std::mutex> lock(collect.mu);
        if (!outcome.is_ok()) {
          if (collect.error.is_ok()) collect.error = outcome.status();
          return;
        }
        auto value = std::move(outcome).value();
        auto& out = collect.outputs[task.job->id];
        out.insert(out.end(), std::make_move_iterator(value.output.begin()),
                   std::make_move_iterator(value.output.end()));
        collect.counters[task.job->id] += value.counters;
      });
    }
  }
  reduce_pool_->wait_idle();
  if (!collect.error.is_ok()) return collect.error;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const JobSpec* spec : members) {
      JobState& st = state(spec->id);
      st.counters += collect.counters[spec->id];
      auto& partial = collect.outputs[spec->id];
      st.partials.insert(st.partials.end(),
                         std::make_move_iterator(partial.begin()),
                         std::make_move_iterator(partial.end()));
      st.batches_run += 1;
      if (options_.incremental_merge && st.batches_run > 1) {
        st.partials = re_reduce(st.spec, std::move(st.partials));
      }
    }
  }
  return Status::ok();
}

std::vector<KeyValue> LocalEngine::re_reduce(const JobSpec& spec,
                                             std::vector<KeyValue> records) {
  std::vector<KeyValue> merged;
  merged.reserve(records.size());
  class CollectEmitter final : public Emitter {
   public:
    explicit CollectEmitter(std::vector<KeyValue>& out) : out_(&out) {}
    void emit(std::string_view key, std::string_view value) override {
      out_->push_back(KeyValue{std::string(key), std::string(value)});
    }

   private:
    std::vector<KeyValue>* out_;
  } collector(merged);
  auto reducer = spec.reducer_factory();
  std::vector<std::string_view> value_views;
  sort_and_group(std::move(records),
                 [&](const std::string& key,
                     const std::vector<std::string>& values) {
                   value_views.assign(values.begin(), values.end());
                   reducer->reduce(key, value_views, collector);
                 });
  return merged;
}

StatusOr<JobResult> LocalEngine::finalize_job(JobId job) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return Status::not_found("unregistered job");
  JobState st = std::move(it->second);
  jobs_.erase(it);
  lock.unlock();
  shuffle_.unregister_job(job);

  JobResult result;
  result.id = job;
  if (st.batches_run <= 1 || options_.incremental_merge) {
    // Partition outputs within one batch have disjoint keys (and incremental
    // merging keeps the invariant): sorting is all that is left to do.
    std::sort(st.partials.begin(), st.partials.end(),
              [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
    result.output = std::move(st.partials);
  } else {
    // Sub-job execution: the same key may appear in several partial outputs;
    // fold them with the (algebraic) reducer.
    result.output = re_reduce(st.spec, std::move(st.partials));
  }
  return result;
}

const JobCounters& LocalEngine::counters(JobId job) const {
  std::lock_guard<std::mutex> lock(mu_);
  return state(job).counters;
}

ScanCounters LocalEngine::scan_counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scan_counters_;
}

std::size_t LocalEngine::registered_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

std::uint64_t LocalEngine::failed_attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_attempts_;
}

}  // namespace s3::engine
