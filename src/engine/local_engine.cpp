#include "engine/local_engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"
#include "obs/phase_profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace s3::engine {
namespace {

// Zero-worker options are rejected by run_batch, not the constructor: clamp
// the pools so the misconfigured engine can still report invalid_argument.
std::unique_ptr<PinnedThreadPool> make_pool(std::size_t workers,
                                            bool pin_cores, int cpu_offset) {
  PinnedThreadPoolOptions opts;
  opts.num_threads = std::max<std::size_t>(1, workers);
  opts.pin_cores = pin_cores;
  opts.cpu_offset = cpu_offset;
  return std::make_unique<PinnedThreadPool>(opts);
}

}  // namespace

LocalEngine::LocalEngine(const dfs::DfsNamespace& ns,
                         const dfs::BlockStore& store,
                         LocalEngineOptions options)
    : ns_(&ns),
      owned_adapter_(std::make_unique<dfs::StoredBlocks>(store)),
      source_(owned_adapter_.get()),
      options_(std::move(options)),
      map_runner_(*source_, shuffle_, options_.data_path),
      reduce_runner_(shuffle_, options_.data_path),
      map_pool_(make_pool(options_.map_workers, options_.pin_cores, 0)),
      reduce_pool_(make_pool(options_.reduce_workers, options_.pin_cores,
                             static_cast<int>(map_pool_->size()))),
      arena_pool_(std::make_unique<BatchArenaPool>(map_pool_->size() +
                                                   reduce_pool_->size())) {
  map_runner_.set_locality(arena_pool_.get(), map_pool_.get(), 0);
  reduce_runner_.set_locality(arena_pool_.get(), reduce_pool_.get(),
                              map_pool_->size());
}

LocalEngine::LocalEngine(const dfs::DfsNamespace& ns,
                         const dfs::BlockSource& source,
                         LocalEngineOptions options)
    : ns_(&ns),
      source_(&source),
      options_(std::move(options)),
      map_runner_(source, shuffle_, options_.data_path),
      reduce_runner_(shuffle_, options_.data_path),
      map_pool_(make_pool(options_.map_workers, options_.pin_cores, 0)),
      reduce_pool_(make_pool(options_.reduce_workers, options_.pin_cores,
                             static_cast<int>(map_pool_->size()))),
      arena_pool_(std::make_unique<BatchArenaPool>(map_pool_->size() +
                                                   reduce_pool_->size())) {
  map_runner_.set_locality(arena_pool_.get(), map_pool_.get(), 0);
  reduce_runner_.set_locality(arena_pool_.get(), reduce_pool_.get(),
                              map_pool_->size());
}

LocalEngine::~LocalEngine() = default;

Status LocalEngine::register_job(JobSpec spec) {
  if (!spec.valid()) return Status::invalid_argument("invalid job spec");
  if (!ns_->has_file(spec.input)) {
    return Status::not_found("job input file does not exist");
  }
  MutexLock lock(mu_);
  if (jobs_.count(spec.id) > 0) {
    return Status::already_exists("job already registered");
  }
  shuffle_.register_job(spec.id, spec.num_reduce_tasks);
  JobState state;
  state.spec = std::move(spec);
  const JobId id = state.spec.id;
  jobs_.emplace(id, std::move(state));
  return Status::ok();
}

LocalEngine::JobState& LocalEngine::state(JobId job) {
  const auto it = jobs_.find(job);
  S3_CHECK_MSG(it != jobs_.end(), "unregistered job " << job);
  return it->second;
}

const LocalEngine::JobState& LocalEngine::state(JobId job) const {
  const auto it = jobs_.find(job);
  S3_CHECK_MSG(it != jobs_.end(), "unregistered job " << job);
  return it->second;
}

bool LocalEngine::node_is_dead(NodeId node) const {
  if (options_.replica_health != nullptr) {
    return options_.replica_health->is_node_dead(node);
  }
  MutexLock lock(mu_);
  return dead_nodes_.count(node) > 0;
}

NodeId LocalEngine::pick_replica(BlockId block) const {
  const dfs::BlockInfo* info = ns_->find_block(block);
  if (info == nullptr) return NodeId();
  for (const NodeId replica : info->replicas) {
    if (!node_is_dead(replica)) return replica;
  }
  return NodeId();
}

void LocalEngine::record_node_death(NodeId node, WaveCtx& ctx) {
  bool newly = false;
  if (options_.replica_health != nullptr) {
    newly = options_.replica_health->mark_node_dead(node);
  } else {
    MutexLock lock(mu_);
    newly = dead_nodes_.insert(node).second;
  }
  if (!newly) return;
  static auto& deaths =
      obs::Registry::instance().counter("engine.node_deaths");
  deaths.add();
  auto& journal = obs::EventJournal::instance();
  if (journal.observed()) {
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kNodeDead;
    event.node = node;
    event.detail = "cause=injected_crash,observed_by=engine";
    journal.record(std::move(event));
  }
  {
    MutexLock lock(ctx.mu);
    ctx.died.push_back(node);
  }
  if (options_.on_node_death) options_.on_node_death(node);
}

Fault LocalEngine::decide_fault(
    const TaskAttempt& attempt,
    const std::vector<const JobSpec*>& specs) const {
  if (options_.failure_injector != nullptr &&
      options_.failure_injector(attempt.task, attempt.attempt)) {
    // Legacy hook: an anonymous transient, never attributable to a member.
    Fault fault;
    fault.kind = FaultKind::kTransient;
    return fault;
  }
  if (options_.fault_injector == nullptr) return {};
  Fault fault = options_.fault_injector(attempt);
  if (fault.kind == FaultKind::kPoison) {
    if (!fault.poison_job.valid()) return {};
    // A reduce attempt runs exactly one member's fn; poison aimed at another
    // job cannot fail it.
    if (!attempt.is_map && fault.poison_job != attempt.job) return {};
    const bool member =
        std::any_of(specs.begin(), specs.end(), [&](const JobSpec* spec) {
          return spec->id == fault.poison_job;
        });
    if (!member) return {};
  }
  return fault;
}

void LocalEngine::note_attempt_failure(const TaskAttempt& attempt,
                                       FaultKind kind,
                                       const std::string& cause,
                                       bool will_retry) {
  {
    MutexLock lock(mu_);
    ++failed_attempts_;
    if (kind == FaultKind::kHang) ++hung_attempts_;
  }
  static auto& failed =
      obs::Registry::instance().counter("engine.failed_attempts");
  failed.add();
  auto& journal = obs::EventJournal::instance();
  if (!journal.observed()) return;

  std::ostringstream ident;
  ident << "task=" << attempt.task.value() << ",attempt=" << attempt.attempt;
  if (attempt.is_map) {
    ident << ",block=" << attempt.block.value();
  } else {
    ident << ",partition=" << attempt.partition;
  }

  if (kind == FaultKind::kHang) {
    obs::JournalEvent hung;
    hung.type = obs::JournalEventType::kTaskHung;
    hung.node = attempt.node;
    hung.job = attempt.job;
    std::ostringstream detail;
    detail << ident.str() << ",timeout_s=" << options_.hung_task_timeout_s;
    hung.detail = detail.str();
    journal.record(std::move(hung));
  }

  obs::JournalEvent event;
  event.type = obs::JournalEventType::kTaskAttemptFailed;
  event.node = attempt.node;
  event.job = attempt.job;
  event.detail = ident.str() + ",cause=" + cause;
  journal.record(std::move(event));

  if (!will_retry) return;
  obs::JournalEvent retry;
  retry.type = obs::JournalEventType::kTaskRetried;
  retry.node = attempt.node;
  retry.job = attempt.job;
  // The watchdog models the backoff: it is journaled, never slept.
  const double backoff =
      options_.retry_backoff_base_s *
      std::pow(2.0, static_cast<double>(attempt.attempt - 1));
  std::ostringstream detail;
  detail << ident.str() << ",next_attempt=" << attempt.attempt + 1
         << ",backoff_s=" << backoff;
  retry.detail = detail.str();
  journal.record(std::move(retry));
}

namespace {

// Maps an injected fault to the status the failed attempt reports and the
// cause tag for the journal. Poison statuses are built at the call site
// (they need the job id).
const char* fault_cause_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kHang:
      return "hung";
    case FaultKind::kNodeDeath:
      return "node_death";
    case FaultKind::kPoison:
      return "poison";
    case FaultKind::kNone:
      break;
  }
  return "error";
}

}  // namespace

void LocalEngine::run_map_prefault(const BatchExec& batch) {
  obs::PhaseTimer timer(obs::EnginePhase::kMapPrefault);
  S3_TRACE_SPAN_NAMED(span, "engine", "map_prefault");
  span.arg("batch", batch.id.value()).arg("blocks", batch.blocks.size());
  const std::size_t workers = map_pool_->size();
  for (std::size_t w = 0; w < workers; ++w) {
    // Worker w touches the blocks whose map tasks will be submitted to it
    // (same round-robin as the map wave below), then warms its arena shard
    // to roughly one block's output footprint.
    std::vector<BlockId> mine;
    for (std::size_t i = w; i < batch.blocks.size(); i += workers) {
      mine.push_back(batch.blocks[i]);
    }
    if (mine.empty()) continue;
    const bool accepted = map_pool_->submit_to(w, [this, mine = std::move(
                                                             mine)] {
      std::size_t block_bytes = 0;
      volatile unsigned touch = 0;
      for (const BlockId block : mine) {
        auto payload_or = source_->fetch(block);
        if (!payload_or.is_ok()) continue;  // the map wave surfaces errors
        const dfs::Payload payload = std::move(payload_or).value();
        const std::string& data = *payload;
        for (std::size_t off = 0; off < data.size(); off += 4096) {
          touch = touch + static_cast<unsigned char>(data[off]);
        }
        block_bytes = std::max(block_bytes, data.size());
      }
      const int worker = map_pool_->current_worker_index();
      const std::size_t shard =
          worker >= 0 ? static_cast<std::size_t>(worker) : 0;
      // Two warm batches per shard: the emit buffer and the combine output.
      arena_pool_->prefault(shard, 2, block_bytes / 8 + 1, block_bytes + 1);
    });
    (void)accepted;  // best-effort: a shutting-down pool just skips the warm
  }
  try {
    map_pool_->wait_idle();
  } catch (...) {
    // Prefault is advisory; a throwing touch must not fail the batch.
  }
  const obs::PhaseSample sample = timer.stop();
  obs::PhaseTimer::annotate(span, sample);
}

void LocalEngine::run_reduce_prefault() {
  obs::PhaseTimer timer(obs::EnginePhase::kReducePrefault);
  S3_TRACE_SPAN_NAMED(span, "engine", "reduce_prefault");
  const std::size_t map_workers = map_pool_->size();
  for (std::size_t w = 0; w < reduce_pool_->size(); ++w) {
    const bool accepted = reduce_pool_->submit_to(w, [this, map_workers] {
      const int worker = reduce_pool_->current_worker_index();
      const std::size_t shard =
          map_workers + (worker >= 0 ? static_cast<std::size_t>(worker) : 0);
      // Reduce-side arenas only transit consumed runs, so a modest fixed
      // warm size suffices (the runs themselves arrive from the map side).
      arena_pool_->prefault(shard, 2, 4096, 256 * 1024);
    });
    (void)accepted;
  }
  try {
    reduce_pool_->wait_idle();
  } catch (...) {
  }
  const obs::PhaseSample sample = timer.stop();
  obs::PhaseTimer::annotate(span, sample);
}

void LocalEngine::export_locality_metrics() const {
  auto& registry = obs::Registry::instance();
  static auto& map_steals = registry.gauge("engine.map_pool.steals");
  static auto& reduce_steals = registry.gauge("engine.reduce_pool.steals");
  static auto& pinned = registry.gauge("engine.pool.pinned_workers");
  static auto& arena_hits = registry.gauge("engine.arena_pool.hits");
  static auto& arena_misses = registry.gauge("engine.arena_pool.misses");
  static auto& arena_steals = registry.gauge("engine.arena_pool.steals");
  map_steals.set(static_cast<double>(map_pool_->steals()));
  reduce_steals.set(static_cast<double>(reduce_pool_->steals()));
  pinned.set(static_cast<double>(map_pool_->pinned_workers() +
                                 reduce_pool_->pinned_workers()));
  arena_hits.set(static_cast<double>(arena_pool_->hits()));
  arena_misses.set(static_cast<double>(arena_pool_->misses()));
  arena_steals.set(static_cast<double>(arena_pool_->steals()));
}

Status LocalEngine::run_wave(const BatchExec& batch,
                             const std::vector<const JobSpec*>& specs,
                             WaveCtx& ctx) {
  if (options_.prefault) run_map_prefault(batch);

  // --- Map wave: one merged map task per block, all slots in parallel. ---
  S3_TRACE_SPAN_NAMED(map_wave_span, "engine", "map_wave");
  map_wave_span.arg("batch", batch.id.value())
      .arg("blocks", batch.blocks.size());
  obs::PhaseTimer map_timer(obs::EnginePhase::kMap);
  struct MapCollect {
    AnnotatedMutex mu{LockRank::kEngineMapCollect};
    std::vector<MapTaskOutcome> outcomes S3_GUARDED_BY(mu);
    Status first_error S3_GUARDED_BY(mu) = Status::ok();
  } map_collect;
  std::size_t block_index = 0;
  for (const BlockId block : batch.blocks) {
    MapTaskSpec task;
    {
      MutexLock lock(mu_);
      task.id = task_ids_.next();
    }
    task.block = block;
    task.jobs = specs;
    // Locality hint: the same round-robin the prefault phase warmed. The
    // task may still be stolen by an idle worker — the runner re-resolves
    // its arena shard at execution time.
    const std::size_t target = block_index++ % map_pool_->size();
    const bool accepted = map_pool_->submit_to(target, [this,
                                                        task = std::move(task),
                                                        batch_id = batch.id,
                                                        &map_collect, &specs,
                                                        &ctx] {
      // Fault tolerance: injected failures model a node losing the attempt
      // before any side effects; re-dispatch is therefore idempotent.
      StatusOr<MapTaskOutcome> outcome =
          Status::internal("map task never attempted");
      JobId poison;
      Status poison_status = Status::ok();
      NodeId node = pick_replica(task.block);
      // Flight correlation: every record this worker emits while running the
      // task names the batch and the first node the task was assigned to.
      obs::CorrelationScope task_corr(JobId(), batch_id, node);
      for (int attempt = 1; attempt <= options_.max_task_attempts; ++attempt) {
        if (node.valid() && node_is_dead(node)) {
          // The assigned node died since dispatch (possibly killed by a
          // previous attempt's fault): re-dispatch on a live replica.
          node = pick_replica(task.block);
        }
        TaskAttempt ident;
        ident.task = task.id;
        ident.attempt = attempt;
        ident.is_map = true;
        ident.block = task.block;
        ident.node = node;
        poison = JobId();
        const bool last = attempt == options_.max_task_attempts;
        const Fault fault = decide_fault(ident, specs);
        if (fault.kind != FaultKind::kNone) {
          std::string cause = fault_cause_name(fault.kind);
          if (!fault.detail.empty()) cause += ":" + fault.detail;
          switch (fault.kind) {
            case FaultKind::kNodeDeath: {
              const NodeId victim =
                  fault.dead_node.valid() ? fault.dead_node : node;
              if (victim.valid()) record_node_death(victim, ctx);
              std::ostringstream os;
              os << "node " << victim << " died during map attempt";
              outcome = Status::unavailable(os.str());
              break;
            }
            case FaultKind::kHang: {
              std::ostringstream os;
              os << "map attempt exceeded the " << options_.hung_task_timeout_s
                 << "s hung-task timeout";
              outcome = Status::unavailable(os.str());
              break;
            }
            case FaultKind::kPoison: {
              poison = fault.poison_job;
              std::ostringstream os;
              os << "poison member " << fault.poison_job << " map fn failed";
              if (!fault.detail.empty()) os << ": " << fault.detail;
              poison_status = Status::internal(os.str());
              outcome = poison_status;
              break;
            }
            default:
              outcome = Status::unavailable("injected task failure");
              break;
          }
          note_attempt_failure(ident, fault.kind, cause, !last);
          continue;
        }
        outcome = map_runner_.run(task);
        if (outcome.is_ok()) break;
        // Real read/map failure: retriable unless the data is gone for good.
        const bool permanent =
            outcome.status().code() == StatusCode::kDataLoss;
        note_attempt_failure(ident, FaultKind::kNone,
                             outcome.status().message(), !last && !permanent);
        if (permanent) break;
      }
      if (!outcome.is_ok() && poison.valid()) {
        MutexLock ctx_lock(ctx.mu);
        if (!ctx.poison.valid()) {
          ctx.poison = poison;
          ctx.poison_status = poison_status;
        }
      }
      MutexLock lock(map_collect.mu);
      if (outcome.is_ok()) {
        map_collect.outcomes.push_back(std::move(outcome).value());
      } else if (map_collect.first_error.is_ok()) {
        map_collect.first_error = outcome.status();
      }
    });
    if (!accepted) {
      // A rejected submit means the task never ran; surface it instead of
      // silently committing a short wave.
      MutexLock lock(map_collect.mu);
      if (map_collect.first_error.is_ok()) {
        map_collect.first_error =
            Status::internal("map pool rejected a task (pool shutting down)");
      }
    }
  }
  try {
    map_pool_->wait_idle();
  } catch (const std::exception& e) {
    return Status::internal(std::string("map task threw: ") + e.what());
  }
  // Single-threaded from here until the reduce wave: the workers are idle,
  // but TSA still wants the collect locks for the guarded reads below.
  {
    MutexLock lock(map_collect.mu);
    if (!map_collect.first_error.is_ok()) return map_collect.first_error;
  }
  obs::PhaseTimer::annotate(map_wave_span, map_timer.stop());
  map_wave_span.end();

  if (options_.prefault) run_reduce_prefault();

  // --- Reduce wave: per member job, per partition. ---
  S3_TRACE_SPAN_NAMED(reduce_wave_span, "engine", "reduce_wave");
  reduce_wave_span.arg("batch", batch.id.value()).arg("jobs", specs.size());
  obs::PhaseTimer reduce_timer(obs::EnginePhase::kReduce);
  struct ReduceCollect {
    AnnotatedMutex mu{LockRank::kEngineReduceCollect};
    std::unordered_map<JobId, std::vector<KeyValue>> outputs S3_GUARDED_BY(mu);
    std::unordered_map<JobId, JobCounters> counters S3_GUARDED_BY(mu);
    Status error S3_GUARDED_BY(mu) = Status::ok();
  } collect;

  for (const JobSpec* spec : specs) {
    for (std::uint32_t p = 0; p < spec->num_reduce_tasks; ++p) {
      ReduceTaskSpec task;
      {
        MutexLock lock(mu_);
        task.id = task_ids_.next();
      }
      task.job = spec;
      task.partition = p;
      // Partition-affine dispatch: partition p of every member lands on the
      // same worker, so one worker's arenas see one partition's runs.
      const bool accepted = reduce_pool_->submit_to(
          p % reduce_pool_->size(),
          [this, task, batch_id = batch.id, &collect, &specs, &ctx] {
        // Flight correlation: reduce tasks are job-affine, so records name
        // both the owning job and the batch whose wave scheduled them.
        obs::CorrelationScope task_corr(task.job->id, batch_id, NodeId());
        StatusOr<ReduceTaskOutcome> outcome =
            Status::internal("reduce task never attempted");
        JobId poison;
        Status poison_status = Status::ok();
        for (int attempt = 1; attempt <= options_.max_task_attempts;
             ++attempt) {
          TaskAttempt ident;
          ident.task = task.id;
          ident.attempt = attempt;
          ident.is_map = false;
          ident.job = task.job->id;
          ident.partition = task.partition;
          poison = JobId();
          const bool last = attempt == options_.max_task_attempts;
          const Fault fault = decide_fault(ident, specs);
          if (fault.kind != FaultKind::kNone) {
            std::string cause = fault_cause_name(fault.kind);
            if (!fault.detail.empty()) cause += ":" + fault.detail;
            switch (fault.kind) {
              case FaultKind::kNodeDeath: {
                if (fault.dead_node.valid()) {
                  record_node_death(fault.dead_node, ctx);
                }
                std::ostringstream os;
                os << "node " << fault.dead_node
                   << " died during reduce attempt";
                outcome = Status::unavailable(os.str());
                break;
              }
              case FaultKind::kHang: {
                std::ostringstream os;
                os << "reduce attempt exceeded the "
                   << options_.hung_task_timeout_s << "s hung-task timeout";
                outcome = Status::unavailable(os.str());
                break;
              }
              case FaultKind::kPoison: {
                poison = fault.poison_job;
                std::ostringstream os;
                os << "poison member " << fault.poison_job
                   << " reduce fn failed";
                if (!fault.detail.empty()) os << ": " << fault.detail;
                poison_status = Status::internal(os.str());
                outcome = poison_status;
                break;
              }
              default:
                outcome = Status::unavailable("injected task failure");
                break;
            }
            note_attempt_failure(ident, fault.kind, cause, !last);
            continue;
          }
          outcome = reduce_runner_.run(task);
          if (outcome.is_ok()) break;
          note_attempt_failure(ident, FaultKind::kNone,
                               outcome.status().message(), !last);
        }
        if (!outcome.is_ok() && poison.valid()) {
          MutexLock ctx_lock(ctx.mu);
          if (!ctx.poison.valid()) {
            ctx.poison = poison;
            ctx.poison_status = poison_status;
          }
        }
        MutexLock lock(collect.mu);
        if (!outcome.is_ok()) {
          if (collect.error.is_ok()) collect.error = outcome.status();
          return;
        }
        auto value = std::move(outcome).value();
        auto& out = collect.outputs[task.job->id];
        out.insert(out.end(), std::make_move_iterator(value.output.begin()),
                   std::make_move_iterator(value.output.end()));
        collect.counters[task.job->id] += value.counters;
      });
      if (!accepted) {
        MutexLock lock(collect.mu);
        if (collect.error.is_ok()) {
          collect.error = Status::internal(
              "reduce pool rejected a task (pool shutting down)");
        }
      }
    }
  }
  try {
    reduce_pool_->wait_idle();
  } catch (const std::exception& e) {
    return Status::internal(std::string("reduce task threw: ") + e.what());
  }
  {
    MutexLock lock(collect.mu);
    if (!collect.error.is_ok()) return collect.error;
  }
  obs::PhaseTimer::annotate(reduce_wave_span, reduce_timer.stop());
  reduce_wave_span.end();

  // --- Commit: member state is only touched after the whole wave succeeded,
  // so a failed wave leaves no trace and can be re-run exactly. ---
  obs::PhaseTimer merge_timer(obs::EnginePhase::kMerge);
  {
    MutexLock outcome_lock(map_collect.mu);
    MutexLock collect_lock(collect.mu);
    MutexLock lock(mu_);
    static auto& physical =
        obs::Registry::instance().counter("engine.blocks_physical");
    static auto& logical =
        obs::Registry::instance().counter("engine.blocks_logical");
    for (const auto& outcome : map_collect.outcomes) {
      scan_counters_ += outcome.scan;
      physical.add(outcome.scan.blocks_physical);
      logical.add(outcome.scan.blocks_logical);
      for (const auto& [job, counters] : outcome.per_job) {
        state(job).counters += counters;
      }
    }
    // Live sharing efficiency: logical blocks served per physical block
    // read. An n-member merged scan reports exactly n.
    static auto& sharing =
        obs::Registry::instance().gauge("engine.sharing_efficiency");
    if (scan_counters_.blocks_physical > 0) {
      sharing.set(static_cast<double>(scan_counters_.blocks_logical) /
                  static_cast<double>(scan_counters_.blocks_physical));
    }
    for (const JobSpec* spec : specs) {
      JobState& st = state(spec->id);
      st.counters += collect.counters[spec->id];
      auto& partial = collect.outputs[spec->id];
      st.partials.insert(st.partials.end(),
                         std::make_move_iterator(partial.begin()),
                         std::make_move_iterator(partial.end()));
      st.batches_run += 1;
      if (options_.incremental_merge && st.batches_run > 1) {
        st.partials = re_reduce(st.spec, std::move(st.partials));
      }
    }
  }
  merge_timer.stop();
  export_locality_metrics();
  return Status::ok();
}

StatusOr<BatchOutcome> LocalEngine::run_batch(const BatchExec& batch) {
  if (options_.max_task_attempts < 1) {
    return Status::invalid_argument(
        "LocalEngineOptions::max_task_attempts must be >= 1");
  }
  if (options_.map_workers == 0 || options_.reduce_workers == 0) {
    return Status::invalid_argument(
        "LocalEngineOptions needs at least one map and one reduce worker");
  }
  if (batch.jobs.empty()) {
    return Status::invalid_argument("batch with no member jobs");
  }
  if (batch.blocks.empty()) {
    return Status::invalid_argument("batch with no blocks");
  }

  S3_LOG(kDebug, "engine") << "batch " << batch.id << ": "
                           << batch.blocks.size() << " blocks x "
                           << batch.jobs.size() << " jobs";
  obs::CorrelationScope batch_corr(JobId(), batch.id, NodeId());
  S3_TRACE_SPAN_NAMED(batch_span, "engine", "execute_batch");
  batch_span.arg("batch", batch.id.value())
      .arg("blocks", batch.blocks.size())
      .arg("jobs", batch.jobs.size());
  static auto& batches_run =
      obs::Registry::instance().counter("engine.batches");
  batches_run.add();

  // Batch membership uniqueness: a merged batch reads each block once for
  // all members, so a duplicated member would double-count its sub-job.
  S3_DCHECK_MSG(([&] {
                  std::vector<JobId> ids = batch.jobs;
                  std::sort(ids.begin(), ids.end());
                  return std::adjacent_find(ids.begin(), ids.end()) ==
                         ids.end();
                }()),
                "batch " << batch.id << " lists a member job twice");

  BatchOutcome result;
  std::vector<JobId> members = batch.jobs;
  while (true) {
    // Snapshot member specs (stable pointers: jobs_ values are node-based).
    std::vector<const JobSpec*> specs;
    {
      MutexLock lock(mu_);
      specs.reserve(members.size());
      for (const JobId job : members) {
        const auto it = jobs_.find(job);
        if (it == jobs_.end()) {
          return Status::not_found("batch references unregistered job");
        }
        specs.push_back(&it->second.spec);
      }
    }

    WaveCtx ctx;
    const Status wave = run_wave(batch, specs, ctx);
    {
      MutexLock lock(ctx.mu);
      result.nodes_died.insert(result.nodes_died.end(), ctx.died.begin(),
                               ctx.died.end());
    }
    if (wave.is_ok()) return result;

    JobId poison;
    Status poison_status = Status::ok();
    {
      MutexLock lock(ctx.mu);
      poison = ctx.poison;
      poison_status = ctx.poison_status;
    }
    // Not attributable to one member: the batch as a whole cannot proceed.
    if (!poison.valid()) return wave;

    // Quarantine the poison member: retire it with its error status so the
    // survivors' shared scan is not held hostage by one bad job.
    S3_LOG(kWarn, "engine") << "batch " << batch.id << ": quarantining "
                            << poison << " (" << poison_status << ")";
    static auto& quarantines =
        obs::Registry::instance().counter("engine.quarantines");
    quarantines.add();
    auto& journal = obs::EventJournal::instance();
    if (journal.observed()) {
      obs::JournalEvent event;
      event.type = obs::JournalEventType::kJobQuarantined;
      event.job = poison;
      event.batch = batch.id;
      event.detail = "reason=" + poison_status.to_string();
      journal.record(std::move(event));
    }
    {
      MutexLock lock(mu_);
      jobs_.erase(poison);
    }
    shuffle_.unregister_job(poison);
    result.quarantined.push_back(BatchOutcome::QuarantinedJob{
        poison, std::move(poison_status)});
    members.erase(std::remove(members.begin(), members.end(), poison),
                  members.end());
    if (members.empty()) return result;

    // Reset the survivors' shuffle state: the aborted wave may have
    // published map runs (or consumed them) that the re-run will recreate.
    std::vector<std::pair<JobId, std::uint32_t>> survivors;
    {
      MutexLock lock(mu_);
      survivors.reserve(members.size());
      for (const JobId job : members) {
        survivors.emplace_back(job, state(job).spec.num_reduce_tasks);
      }
    }
    for (const auto& [job, partitions] : survivors) {
      shuffle_.unregister_job(job);
      shuffle_.register_job(job, partitions);
    }
    ++result.reruns;
    static auto& reruns =
        obs::Registry::instance().counter("engine.batch_reruns");
    reruns.add();
    if (journal.observed()) {
      obs::JournalEvent event;
      event.type = obs::JournalEventType::kBatchRerun;
      event.batch = batch.id;
      event.members = members.size();
      std::ostringstream detail;
      detail << "after_quarantine=" << poison << ",rerun=" << result.reruns;
      event.detail = detail.str();
      journal.record(std::move(event));
    }
  }
}

Status LocalEngine::execute_batch(const BatchExec& batch) {
  StatusOr<BatchOutcome> outcome = run_batch(batch);
  if (!outcome.is_ok()) return outcome.status();
  if (!outcome.value().quarantined.empty()) {
    return outcome.value().quarantined.front().reason;
  }
  return Status::ok();
}

std::vector<KeyValue> LocalEngine::re_reduce(const JobSpec& spec,
                                             std::vector<KeyValue> records) {
  std::vector<KeyValue> merged;
  merged.reserve(records.size());
  class CollectEmitter final : public Emitter {
   public:
    explicit CollectEmitter(std::vector<KeyValue>& out) : out_(&out) {}
    void emit(std::string_view key, std::string_view value) override {
      out_->push_back(KeyValue{std::string(key), std::string(value)});
    }

   private:
    std::vector<KeyValue>* out_;
  } collector(merged);
  auto reducer = spec.reducer_factory();
  std::vector<std::string_view> value_views;
  sort_and_group(std::move(records),
                 [&](const std::string& key,
                     const std::vector<std::string>& values) {
                   value_views.assign(values.begin(), values.end());
                   reducer->reduce(key, value_views, collector);
                 });
  return merged;
}

StatusOr<JobResult> LocalEngine::finalize_job(JobId job) {
  std::optional<JobState> taken;
  {
    MutexLock lock(mu_);
    const auto it = jobs_.find(job);
    if (it == jobs_.end()) return Status::not_found("unregistered job");
    taken.emplace(std::move(it->second));
    jobs_.erase(it);
  }
  JobState& st = *taken;
  // mu_ released before touching the shuffle registry (lock order: never
  // hold the engine leaf lock while acquiring shuffle locks).
  shuffle_.unregister_job(job);

  JobResult result;
  result.id = job;
  if (st.batches_run <= 1 || options_.incremental_merge) {
    // Partition outputs within one batch have disjoint keys (and incremental
    // merging keeps the invariant): sorting is all that is left to do.
    std::sort(st.partials.begin(), st.partials.end(),
              [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
    result.output = std::move(st.partials);
  } else {
    // Sub-job execution: the same key may appear in several partial outputs;
    // fold them with the (algebraic) reducer.
    result.output = re_reduce(st.spec, std::move(st.partials));
  }
  return result;
}

const JobCounters& LocalEngine::counters(JobId job) const {
  MutexLock lock(mu_);
  return state(job).counters;
}

ScanCounters LocalEngine::scan_counters() const {
  MutexLock lock(mu_);
  return scan_counters_;
}

std::size_t LocalEngine::registered_jobs() const {
  MutexLock lock(mu_);
  return jobs_.size();
}

std::uint64_t LocalEngine::failed_attempts() const {
  MutexLock lock(mu_);
  return failed_attempts_;
}

std::uint64_t LocalEngine::hung_attempts() const {
  MutexLock lock(mu_);
  return hung_attempts_;
}

}  // namespace s3::engine
