// Key/value vocabulary of the MapReduce engine. The hot path moves records as
// views into flat KVBatch arenas (see kv_batch.h); mappers and reducers emit
// through the string_view Emitter contract below, and the engine copies bytes
// into an owned arena exactly once, at the emit boundary. The owned-string
// KeyValue struct remains for job outputs and for the legacy sort-based data
// path that serves as the differential-testing oracle.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace s3::engine {

struct KeyValue {
  std::string key;
  std::string value;

  friend bool operator==(const KeyValue& a, const KeyValue& b) {
    return a.key == b.key && a.value == b.value;
  }
  friend bool operator<(const KeyValue& a, const KeyValue& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.value < b.value;
  }
};

// Where map output goes. Implementations partition by key and buffer; the
// views are only guaranteed to live for the duration of the call, so
// implementations must copy what they keep.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void emit(std::string_view key, std::string_view value) = 0;
};

// FNV-1a over arbitrary bytes. Kept as the reference hash (byte-at-a-time,
// easy to reason about); the hot paths use fast_hash below.
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Word-at-a-time string hash (murmur-style: unaligned loads folded with
// multiply/xor-shift, fmix64 avalanche); used by the partitioner and the
// hash combiner. Word-count keys are mostly 2-10 bytes, so the tail matters
// more than the loop: it is branch-light — two overlapping 4-byte loads for
// 4..7 leftover bytes, three byte picks for 1..3 — never a per-byte
// shift/or loop. Not a stable on-disk format — only in-memory bucket
// selection — so the function may change between versions without a data
// migration.
[[nodiscard]] inline std::uint64_t fast_hash(std::string_view bytes) {
  constexpr std::uint64_t kMul = 0x9DDFEA08EB382D69ULL;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ (n * kMul);
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    v *= kMul;
    v ^= v >> 47;
    h = (h ^ v * kMul) * kMul;
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    // Overlapping reads cover 4..7 bytes in two loads; the overlap double
    // counts some middle bytes, which is harmless for a hash.
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + n - sizeof(hi), sizeof(hi));
    const std::uint64_t tail = lo | (static_cast<std::uint64_t>(hi) << 32);
    h = (h ^ tail * kMul) * kMul;
  } else if (n > 0) {
    // 1..3 bytes: first, middle, last (the classic short-tail pick).
    const std::uint64_t tail =
        static_cast<unsigned char>(p[0]) |
        (static_cast<std::uint64_t>(static_cast<unsigned char>(p[n >> 1]))
         << 8) |
        (static_cast<std::uint64_t>(static_cast<unsigned char>(p[n - 1]))
         << 16);
    h = (h ^ tail * kMul) * kMul;
  }
  // fmix64 finalizer: full avalanche so the low bits are usable as a mask.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

// Hash partitioner (Hadoop's default shape): hash of the key, mod R.
[[nodiscard]] inline std::uint32_t partition_for_key(std::string_view key,
                                                     std::uint32_t partitions) {
  return static_cast<std::uint32_t>(fast_hash(key) % partitions);
}

}  // namespace s3::engine
