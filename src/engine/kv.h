// Key/value vocabulary of the MapReduce engine. The hot path moves records as
// views into flat KVBatch arenas (see kv_batch.h); mappers and reducers emit
// through the string_view Emitter contract below, and the engine copies bytes
// into an owned arena exactly once, at the emit boundary. The owned-string
// KeyValue struct remains for job outputs and for the legacy sort-based data
// path that serves as the differential-testing oracle.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace s3::engine {

struct KeyValue {
  std::string key;
  std::string value;

  friend bool operator==(const KeyValue& a, const KeyValue& b) {
    return a.key == b.key && a.value == b.value;
  }
  friend bool operator<(const KeyValue& a, const KeyValue& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.value < b.value;
  }
};

// Where map output goes. Implementations partition by key and buffer; the
// views are only guaranteed to live for the duration of the call, so
// implementations must copy what they keep.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void emit(std::string_view key, std::string_view value) = 0;
};

// FNV-1a over arbitrary bytes; shared by the partitioner and the hash
// combiner so both see the same distribution.
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Hash partitioner (Hadoop's default): FNV-1a over the key, mod R.
[[nodiscard]] inline std::uint32_t partition_for_key(std::string_view key,
                                                     std::uint32_t partitions) {
  return static_cast<std::uint32_t>(fnv1a(key) % partitions);
}

}  // namespace s3::engine
