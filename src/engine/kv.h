// Key/value vocabulary of the MapReduce engine. Keys and values are owned
// strings: records cross task (thread) boundaries, so views into block
// payloads would be a lifetime hazard for exactly the reason CP.mess warns
// about — we copy at the emit boundary instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace s3::engine {

struct KeyValue {
  std::string key;
  std::string value;

  friend bool operator==(const KeyValue& a, const KeyValue& b) {
    return a.key == b.key && a.value == b.value;
  }
  friend bool operator<(const KeyValue& a, const KeyValue& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.value < b.value;
  }
};

// Where map output goes. Implementations partition by key and buffer.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void emit(std::string key, std::string value) = 0;
};

// Hash partitioner (Hadoop's default): FNV-1a over the key, mod R.
[[nodiscard]] inline std::uint32_t partition_for_key(const std::string& key,
                                                     std::uint32_t partitions) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::uint32_t>(h % partitions);
}

}  // namespace s3::engine
