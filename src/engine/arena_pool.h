// Per-worker pools of recycled KVBatch arenas. A map task's emit buffers and
// a reduce task's consumed shuffle runs churn through large byte arenas; on
// a NUMA machine a freshly malloc'd arena lands wherever the allocator last
// cached pages, not where the worker runs. The pool shards free batches by
// worker index so a batch is reused by the worker that last touched it
// (first-touch placement keeps its pages local), and prefault() lets the
// engine's prefault phase warm each shard before the timed phase starts.
//
// A shard index is a locality hint, not an ownership rule: any shard index
// in [0, shards()) is valid from any thread, and callers that run off-pool
// (engine thread, tests) use shard 0. Lock discipline: one leaf mutex per
// shard, never held while calling out.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "common/thread_annotations.h"
#include "engine/kv_batch.h"

namespace s3::engine {

class BatchArenaPool {
 public:
  // Free batches kept per shard beyond which release() drops the batch on
  // the floor (frees its memory) instead of caching it.
  static constexpr std::size_t kMaxFreePerShard = 32;

  explicit BatchArenaPool(std::size_t shards) {
    S3_CHECK(shards > 0);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  [[nodiscard]] std::size_t shards() const { return shards_.size(); }

  // An empty batch, recycled from `shard`'s free list when possible (warm
  // capacity, local pages), stolen from another shard's list otherwise (warm
  // capacity, remote pages — still cheaper than a cold malloc), and freshly
  // constructed as the last resort.
  [[nodiscard]] KVBatch acquire(std::size_t shard) {
    const std::size_t home = shard % shards_.size();
    for (std::size_t hop = 0; hop < shards_.size(); ++hop) {
      Shard& s = *shards_[(home + hop) % shards_.size()];
      MutexLock lock(s.mu);
      if (s.free.empty()) continue;
      KVBatch batch = std::move(s.free.back());
      s.free.pop_back();
      (hop == 0 ? hits_ : steals_).fetch_add(1, std::memory_order_relaxed);
      return batch;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return KVBatch{};
  }

  // Clears the batch (keeping its arena capacity) and parks it on `shard`'s
  // free list; full shards drop the batch instead.
  void release(std::size_t shard, KVBatch batch) {
    batch.clear();
    Shard& s = *shards_[shard % shards_.size()];
    MutexLock lock(s.mu);
    if (s.free.size() < kMaxFreePerShard) s.free.push_back(std::move(batch));
  }

  // Warms `shard` with `count` batches whose pages are faulted in by the
  // calling thread (run this FROM the owning worker — that is what makes
  // first-touch placement local). Existing free batches count toward
  // `count`; they are re-prefaulted so recycled arenas are resident too.
  void prefault(std::size_t shard, std::size_t count, std::size_t records,
                std::size_t bytes) {
    for (std::size_t i = 0; i < count; ++i) {
      KVBatch batch = acquire(shard);
      batch.prefault(records, bytes);
      release(shard, std::move(batch));
    }
  }

  // Recycle telemetry (exported by the engine as engine.arena_pool.*).
  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable AnnotatedMutex mu{LockRank::kArenaShard};
    std::vector<KVBatch> free S3_GUARDED_BY(mu);
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace s3::engine
