#include "engine/kv_batch.h"

#include <algorithm>

namespace s3::engine {

void KVBatch::prefault(std::size_t records, std::size_t bytes) {
  // resize (not reserve) so every byte is written: value-initialization
  // faults every page in, and under first-touch placement the pages land on
  // the calling thread's node. reserve alone maps address space lazily and
  // the faults would bill to the timed phase instead.
  arena_.resize(bytes);
  arena_.clear();
  entries_.resize(records);
  entries_.clear();
  sorted_ = false;
#if S3_VIEW_CHECKS
  // resize may have reallocated, and the batch is logically reset either
  // way: outstanding views are invalid.
  stamp_.bump();
#endif
}

void KVBatch::sort_by_key() {
  const std::string_view arena(arena_);
  std::stable_sort(entries_.begin(), entries_.end(),
                   [arena](const Entry& a, const Entry& b) {
                     return arena.substr(a.offset, a.key_len) <
                            arena.substr(b.offset, b.key_len);
                   });
  sorted_ = true;
}

}  // namespace s3::engine
