#include "engine/kv_batch.h"

#include <algorithm>

namespace s3::engine {

void KVBatch::sort_by_key() {
  const std::string_view arena(arena_);
  std::stable_sort(entries_.begin(), entries_.end(),
                   [arena](const Entry& a, const Entry& b) {
                     return arena.substr(a.offset, a.key_len) <
                            arena.substr(b.offset, b.key_len);
                   });
  sorted_ = true;
}

}  // namespace s3::engine
