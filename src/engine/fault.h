// Fault-injection vocabulary for the real engine's failure domains. A
// FaultInjector is consulted before every task attempt and decides what (if
// anything) goes wrong with it. All injected faults model loss *before* any
// side effect (the attempt never published map output), which is what makes
// re-dispatch idempotent.
//
// Fault kinds and the recovery each exercises:
//   kTransient — the attempt fails once (lost container, flaky RPC); the
//                retry loop re-runs it, up to max_task_attempts.
//   kHang      — the attempt wedges; the hung-task watchdog abandons it
//                after hung_task_timeout_s and re-attempts with exponential
//                backoff. (The engine models the timeout and backoff as
//                bookkeeping in the journal — tests must never sleep.)
//   kNodeDeath — the node executing the attempt crashes, taking the attempt
//                with it; the engine marks the node dead (ReplicaHealth +
//                BatchOutcome::nodes_died) and re-dispatches on a replica.
//   kPoison    — the named member job's map/reduce fn itself fails. When its
//                attempts exhaust, the engine quarantines *that job* and
//                re-runs the shared scan for the surviving members.
//
// Decisions must be deterministic in the attempt's stable identity (block /
// job / partition / attempt number), never in call order: worker threads
// interleave nondeterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"

namespace s3::engine {

enum class FaultKind {
  kNone,
  kTransient,
  kHang,
  kNodeDeath,
  kPoison,
};

struct Fault {
  FaultKind kind = FaultKind::kNone;
  // kNodeDeath: the node that dies (defaults to the attempt's node).
  NodeId dead_node;
  // kPoison: the member whose function fails. A poison fault naming a job
  // that is not a member of the current wave is ignored.
  JobId poison_job;
  std::string detail;  // free-form cause, lands in the journal
};

// Stable identity of one task attempt, the injector's decision key.
struct TaskAttempt {
  TaskId task;
  int attempt = 1;
  bool is_map = true;
  // Map attempts: the block being scanned and the node the attempt was
  // dispatched to (the first live replica; invalid without replica
  // metadata). Reduce attempts: block/node are invalid.
  BlockId block;
  NodeId node;
  // Reduce attempts: the member job and partition. Invalid for (merged) map
  // attempts, which serve every member at once.
  JobId job;
  std::uint32_t partition = 0;
};

using FaultInjector = std::function<Fault(const TaskAttempt&)>;

}  // namespace s3::engine
