// User-facing processing interfaces, mirroring Hadoop's Mapper/Reducer/
// Combiner contracts. Factories produce a fresh instance per task so user
// code needs no internal synchronization (one mapper instance is only ever
// driven by one worker thread).
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "dfs/reader.h"
#include "engine/kv.h"

namespace s3::engine {

class Mapper {
 public:
  virtual ~Mapper() = default;

  // Called once per input record.
  virtual void map(const dfs::Record& record, Emitter& out) = 0;

  // Called after the last record of a task (flush opportunity).
  virtual void finish(Emitter& /*out*/) {}
};

class Reducer {
 public:
  virtual ~Reducer() = default;

  // Called once per distinct key with all values for that key. The views are
  // only valid for the duration of the call (they point into shuffle arenas).
  virtual void reduce(std::string_view key,
                      const std::vector<std::string_view>& values,
                      Emitter& out) = 0;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

}  // namespace s3::engine
