// Per-job counters, mirroring the Hadoop counter groups the paper reports in
// Table I. All fields are plain integers, deliberately without atomics or an
// internal lock: every instance is either task-local (one worker thread owns
// the outcome until the collect lock hands it over) or lives inside
// LocalEngine::JobState, where it is S3_GUARDED_BY(LocalEngine::mu_). The
// thread-safety annotations on those owners (common/thread_annotations.h)
// are what make this lock-free struct safe; do not share a JobCounters
// between threads without an external capability.
#pragma once

#include <cstdint>
#include <ostream>

namespace s3::engine {

struct JobCounters {
  std::uint64_t map_input_records = 0;
  std::uint64_t map_input_bytes = 0;
  std::uint64_t map_output_records = 0;
  std::uint64_t map_output_bytes = 0;
  std::uint64_t combine_output_records = 0;
  std::uint64_t reduce_input_groups = 0;
  std::uint64_t reduce_output_records = 0;
  std::uint64_t reduce_output_bytes = 0;
  std::uint64_t map_tasks = 0;
  std::uint64_t reduce_tasks = 0;
  std::uint64_t blocks_scanned = 0;

  JobCounters& operator+=(const JobCounters& o) {
    map_input_records += o.map_input_records;
    map_input_bytes += o.map_input_bytes;
    map_output_records += o.map_output_records;
    map_output_bytes += o.map_output_bytes;
    combine_output_records += o.combine_output_records;
    reduce_input_groups += o.reduce_input_groups;
    reduce_output_records += o.reduce_output_records;
    reduce_output_bytes += o.reduce_output_bytes;
    map_tasks += o.map_tasks;
    reduce_tasks += o.reduce_tasks;
    blocks_scanned += o.blocks_scanned;
    return *this;
  }
};

// Engine-wide I/O accounting used to verify the shared scan actually shares:
// a batch of n jobs over B blocks must show physical reads of B blocks while
// serving n*B logical block scans.
struct ScanCounters {
  std::uint64_t blocks_physical = 0;
  std::uint64_t bytes_physical = 0;
  std::uint64_t blocks_logical = 0;
  std::uint64_t bytes_logical = 0;

  ScanCounters& operator+=(const ScanCounters& o) {
    blocks_physical += o.blocks_physical;
    bytes_physical += o.bytes_physical;
    blocks_logical += o.blocks_logical;
    bytes_logical += o.bytes_logical;
    return *this;
  }
};

inline std::ostream& operator<<(std::ostream& os, const JobCounters& c) {
  return os << "map_in=" << c.map_input_records
            << " map_out=" << c.map_output_records
            << " reduce_out=" << c.reduce_output_records
            << " blocks=" << c.blocks_scanned;
}

}  // namespace s3::engine
