#include "core/real_driver.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "sched/segment_planner.h"

namespace s3::core {
namespace {

// Resolves a batch's circular block range to concrete BlockIds.
std::vector<BlockId> resolve_blocks(const dfs::FileInfo& file,
                                    const sched::Batch& batch) {
  std::vector<BlockId> blocks;
  blocks.reserve(batch.num_blocks);
  const std::uint64_t n = file.blocks.size();
  for (std::uint64_t i = 0; i < batch.num_blocks; ++i) {
    blocks.push_back(file.blocks[sched::advance_cursor(batch.start_block, i, n)]);
  }
  return blocks;
}

}  // namespace

RealDriver::RealDriver(const dfs::DfsNamespace& ns,
                       engine::LocalEngine& engine,
                       const sched::FileCatalog& catalog,
                       RealDriverOptions options)
    : ns_(&ns), engine_(&engine), catalog_(&catalog), options_(options) {
  S3_CHECK(options.time_scale > 0.0);
}

template <typename DeliverFn, typename FinishedFn>
Status RealDriver::execute_batch(sched::Scheduler& scheduler,
                                 const sched::Batch& batch, SimTime& now,
                                 metrics::JobTimeline& timeline,
                                 RealRunResult& result,
                                 const DeliverFn& deliver,
                                 const FinishedFn& on_finished) {
  // Execute the merged batch for real and charge its wall time.
  const dfs::FileInfo& file = ns_->file(batch.file);
  engine::BatchExec exec;
  exec.id = batch.id;
  exec.blocks = resolve_blocks(file, batch);
  exec.jobs = batch.member_jobs();
  for (const auto& member : batch.members) {
    timeline.on_first_started(member.job, now);
  }
  auto& journal = obs::EventJournal::instance();
  if (journal.observed()) {
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kBatchLaunched;
    event.sim_time = now;
    event.file = batch.file;
    event.batch = batch.id;
    event.cursor = batch.start_block;
    event.wave = batch.num_blocks;
    event.members = batch.members.size();
    journal.record(std::move(event));
  }
  // Batch-level correlation: every span edge, journal event, and flight
  // mark recorded below run_batch on this thread inherits the batch id.
  obs::CorrelationScope batch_corr(JobId(), batch.id, NodeId());
  S3_TRACE_SPAN_NAMED(batch_span, "driver", "batch");
  batch_span.arg("batch", batch.id.value())
      .arg("file", batch.file.value())
      .arg("start_block", batch.start_block)
      .arg("blocks", batch.num_blocks)
      .arg("jobs", exec.jobs.size());
  const std::uint64_t wall_start_ns = obs::now_ns();
  StatusOr<engine::BatchOutcome> outcome = engine_->run_batch(exec);
  if (!outcome.is_ok()) return outcome.status();
  const double wall_seconds = obs::seconds_since(wall_start_ns);
  batch_span.end();
  now += wall_seconds * options_.time_scale;
  ++result.batches_run;

  if (journal.observed()) {
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kBatchExecuted;
    event.sim_time = now;
    event.file = batch.file;
    event.batch = batch.id;
    event.wave = batch.num_blocks;
    event.members = batch.members.size();
    event.detail = "wall_us=" +
                   std::to_string(static_cast<std::uint64_t>(
                       wall_seconds * 1e6));
    journal.record(std::move(event));
  }

  // Recovery feedback: crashed nodes shrink every future wave; quarantined
  // members are retired from the queue *before* the batch is accounted, so
  // the wave is never credited to a job that did not finish it.
  for (const NodeId node : outcome.value().nodes_died) {
    result.nodes_died.push_back(node);
    scheduler.on_node_dead(node, now);
  }
  for (const auto& q : outcome.value().quarantined) {
    S3_LOG(kWarn, "driver") << "job " << q.job << " quarantined: "
                            << q.reason;
    scheduler.on_job_failed(q.job, now);
    timeline.on_failed(q.job, now);
    result.failed.emplace(q.job, q.reason);
    on_finished(q.job);
  }

  // Arrivals that (virtually) happened during the batch join afterwards.
  deliver(now);
  scheduler.on_batch_complete(batch.id, now);
  for (const JobId job : batch.completed_jobs()) {
    // A quarantined member may still be flagged `completes` in the batch
    // the scheduler formed; it has no output to collect.
    if (result.failed.count(job) > 0) continue;
    timeline.on_completed(job, now);
    result.counters.emplace(job, engine_->counters(job));
    auto output = engine_->finalize_job(job);
    if (!output.is_ok()) return output.status();
    result.outputs.emplace(job, std::move(output).value());
    on_finished(job);
  }
  return Status::ok();
}

StatusOr<RealRunResult> RealDriver::run(sched::Scheduler& scheduler,
                                        std::vector<RealJob> jobs) {
  if (jobs.empty()) return Status::invalid_argument("no jobs to run");
  std::sort(jobs.begin(), jobs.end(), [](const RealJob& a, const RealJob& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.spec.id < b.spec.id;
  });
  for (const auto& job : jobs) {
    S3_RETURN_IF_ERROR(engine_->register_job(job.spec));
  }

  metrics::JobTimeline timeline;
  RealRunResult result;

  const sched::ClusterStatus status{options_.map_slots, options_.map_slots};

  SimTime now = 0.0;
  std::size_t next_arrival = 0;
  bool flushed = false;

  const auto deliver = [&](SimTime t) {
    while (next_arrival < jobs.size() && jobs[next_arrival].arrival <= t) {
      const RealJob& job = jobs[next_arrival];
      timeline.on_submitted(job.spec.id, job.arrival);
      scheduler.on_job_arrival(
          sched::JobArrival{job.spec.id, job.spec.input, job.priority},
          job.arrival);
      ++next_arrival;
    }
  };
  const auto no_finished_feedback = [](JobId) {};

  while (true) {
    deliver(now);
    auto batch = scheduler.next_batch(now, status);
    if (!batch.has_value()) {
      if (next_arrival < jobs.size()) {
        now = jobs[next_arrival].arrival;
        continue;
      }
      if (scheduler.pending_jobs() == 0) break;
      if (const auto wake = scheduler.next_decision_time();
          wake.has_value() && *wake > now) {
        now = *wake;
        continue;
      }
      if (!flushed) {
        scheduler.flush(now);
        flushed = true;
        continue;
      }
      return Status::internal("scheduler deadlock in real driver");
    }

    S3_RETURN_IF_ERROR(execute_batch(scheduler, *batch, now, timeline, result,
                                     deliver, no_finished_feedback));
  }

  if (!timeline.all_done()) {
    return Status::internal("real run finished with incomplete jobs");
  }
  result.summary = metrics::summarize(timeline);
  result.job_records = timeline.records();
  result.scan = engine_->scan_counters();
  return result;
}

StatusOr<RealRunResult> RealDriver::run_service(
    sched::Scheduler& scheduler, service::SubmissionService& service) {
  metrics::JobTimeline timeline;
  RealRunResult result;

  const sched::ClusterStatus status{options_.map_slots, options_.map_slots};

  SimTime now = 0.0;
  bool flushed = false;
  std::size_t registered = 0;

  // Drains every submission the service is willing to release at `now` into
  // the scheduler. A release while a wave is in flight lands as a late
  // arrival — the JQM aligns it to the next wave (Partial Job
  // Initialization); nothing here distinguishes the two cases.
  const auto pump = [&](SimTime t) -> Status {
    for (auto& admitted : service.poll_admitted(t)) {
      const engine::JobSpec& spec = admitted.submission.spec;
      S3_RETURN_IF_ERROR(engine_->register_job(spec));
      ++registered;
      timeline.on_submitted(spec.id, admitted.submission.arrival);
      scheduler.on_job_arrival(
          sched::JobArrival{spec.id, spec.input, admitted.submission.priority},
          std::max(admitted.submission.arrival, t));
    }
    return Status::ok();
  };
  // execute_batch's deliver hook returns void, so registration failures are
  // parked here and re-raised right after the batch step.
  Status pump_status = Status::ok();
  const auto pump_hook = [&](SimTime t) {
    Status s = pump(t);
    if (pump_status.is_ok() && !s.is_ok()) pump_status = std::move(s);
  };
  const auto notify_service = [&](JobId job) { service.on_job_finished(job); };

  while (true) {
    S3_RETURN_IF_ERROR(pump(now));
    auto batch = scheduler.next_batch(now, status);
    if (!batch.has_value()) {
      // Queued work the service will only release later (future arrivals):
      // jump virtual time to the release point.
      if (const auto ready = service.next_ready_time(now);
          ready.has_value() && *ready > now) {
        now = *ready;
        flushed = false;
        continue;
      }
      if (scheduler.pending_jobs() > 0) {
        if (const auto wake = scheduler.next_decision_time();
            wake.has_value() && *wake > now) {
          now = *wake;
          continue;
        }
        if (!flushed) {
          scheduler.flush(now);
          flushed = true;
          continue;
        }
        return Status::internal("scheduler deadlock in service driver");
      }
      // Scheduler idle, nothing dispatchable. Exit when the front door is
      // closed and drained; otherwise park until submitters produce work.
      if (service.closed() && service.drained()) break;
      if (!service.wait_for_work()) break;
      flushed = false;
      continue;
    }
    flushed = false;

    S3_RETURN_IF_ERROR(execute_batch(scheduler, *batch, now, timeline, result,
                                     pump_hook, notify_service));
    S3_RETURN_IF_ERROR(pump_status);
  }

  if (!timeline.all_done()) {
    return Status::internal("service run finished with incomplete jobs");
  }
  if (registered > 0) {
    result.summary = metrics::summarize(timeline);
    result.job_records = timeline.records();
  }
  result.scan = engine_->scan_counters();
  return result;
}

}  // namespace s3::core
