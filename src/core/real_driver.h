// RealDriver: runs any Scheduler against the real multi-threaded LocalEngine
// over real bytes in the in-memory DFS. Arrival times are virtual (the
// workload script), while batch durations are measured wall-clock time
// scaled by `time_scale` — so scheduling semantics (who shares which scan)
// are identical to production, and TET/ART are reported in the virtual
// timebase. This is the "plugin scheduler" integration the paper describes:
// the engine underneath stays a plain MapReduce engine.
//
// Two entry points:
//  * run()         — batch mode: a pre-declared job list is replayed by
//                    arrival time and driven to completion.
//  * run_service() — resident mode: jobs stream in through a
//                    SubmissionService from any number of threads; the loop
//                    consumes weighted-fair admitted work, wires each
//                    release into the scheduler as a (possibly late)
//                    arrival — the paper's Partial Job Initialization — and
//                    parks when idle until new work or close(). Admission
//                    decisions (rejections, sheds) never reach this loop;
//                    every dispatched job runs to completion or quarantine.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "engine/local_engine.h"
#include "metrics/metrics.h"
#include "sched/file_catalog.h"
#include "sched/scheduler.h"
#include "service/submission_service.h"

namespace s3::core {

struct RealJob {
  engine::JobSpec spec;
  SimTime arrival = 0.0;
  int priority = 0;
};

struct RealRunResult {
  metrics::MetricsSummary summary;
  std::vector<metrics::JobRecord> job_records;
  std::unordered_map<JobId, engine::JobResult> outputs;
  std::unordered_map<JobId, engine::JobCounters> counters;
  // Jobs the engine quarantined (poison members), with the error status they
  // were retired with. Disjoint from `outputs`; a failed run is still a
  // successful run() — the co-members' outputs are intact.
  std::unordered_map<JobId, Status> failed;
  engine::ScanCounters scan;
  std::size_t batches_run = 0;
  // Nodes that crashed during the run (first observation order).
  std::vector<NodeId> nodes_died;
};

struct RealDriverOptions {
  // Virtual seconds per wall-clock second of batch execution.
  double time_scale = 1.0;
  // Map slots reported to the scheduler (dynamic wave sizing uses this);
  // should match the engine's map_workers.
  int map_slots = 4;
};

class RealDriver {
 public:
  RealDriver(const dfs::DfsNamespace& ns, engine::LocalEngine& engine,
             const sched::FileCatalog& catalog, RealDriverOptions options = {});

  // Registers all jobs with the engine, then replays the arrival schedule
  // through `scheduler`, executing every batch it forms. Returns per-job
  // outputs and timing metrics.
  [[nodiscard]] StatusOr<RealRunResult> run(sched::Scheduler& scheduler,
                              std::vector<RealJob> jobs);

  // Resident loop: consumes admitted jobs from `service` until it is closed
  // and drained. Submitters keep calling service.submit() concurrently; the
  // loop blocks (wait_for_work) only when the scheduler is empty and nothing
  // is dispatchable. Completion/quarantine feedback flows back through
  // service.on_job_finished so concurrency quotas release deterministically.
  [[nodiscard]] StatusOr<RealRunResult> run_service(
      sched::Scheduler& scheduler, service::SubmissionService& service);

 private:
  // Shared batch-execution step: resolves blocks, runs the engine, charges
  // scaled wall time, and feeds recovery/completion back into the scheduler.
  // `deliver` releases arrivals that virtually happened during the batch
  // (before on_batch_complete, so they join the next wave — Partial Job
  // Initialization); `on_finished` reports every completed or quarantined
  // job (the service loop returns concurrency slots through it).
  template <typename DeliverFn, typename FinishedFn>
  [[nodiscard]] Status execute_batch(sched::Scheduler& scheduler, const sched::Batch& batch,
                       SimTime& now, metrics::JobTimeline& timeline,
                       RealRunResult& result, const DeliverFn& deliver,
                       const FinishedFn& on_finished);

  const dfs::DfsNamespace* ns_;
  engine::LocalEngine* engine_;
  const sched::FileCatalog* catalog_;
  RealDriverOptions options_;
};

}  // namespace s3::core
