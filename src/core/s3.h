// Umbrella header — the public API surface of the S3 shared-scan scheduler
// library. Include this to get:
//
//   * the schedulers  (sched::FifoScheduler, sched::MRShareScheduler,
//                      sched::S3Scheduler — the paper's contribution)
//   * the substrates  (dfs::*, cluster::*, engine::LocalEngine)
//   * the drivers     (sim::SimEngine for paper-scale virtual-time runs,
//                      core::RealDriver for real threaded execution)
//   * the workloads   (workloads::* generators and paper presets)
//   * the metrics     (metrics::summarize → TET / ART)
//
// Quickstart: see examples/quickstart.cpp.
#pragma once

#include "cluster/heartbeat.h"
#include "cluster/slot_ledger.h"
#include "cluster/topology.h"
#include "common/bytes.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/types.h"
#include "core/real_driver.h"
#include "dfs/block_store.h"
#include "dfs/dfs_namespace.h"
#include "dfs/placement.h"
#include "dfs/reader.h"
#include "dfs/segment.h"
#include "engine/local_engine.h"
#include "metrics/metrics.h"
#include "metrics/jsonl.h"
#include "metrics/report.h"
#include "obs/chrome_trace.h"
#include "obs/clock.h"
#include "obs/crash_dump.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"
#include "obs/phase_profiler.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_session.h"
#include "sched/analytic.h"
#include "sched/fifo.h"
#include "sched/job_queue_manager.h"
#include "sched/mrshare.h"
#include "sched/round_robin.h"
#include "sched/s3_scheduler.h"
#include "sched/scheduler.h"
#include "sim/sim_engine.h"
#include "tasksim/tasksim.h"
#include "workloads/aggregation.h"
#include "workloads/arrival.h"
#include "workloads/suite.h"
#include "workloads/text_corpus.h"
#include "workloads/tpch.h"
#include "workloads/wordcount.h"
