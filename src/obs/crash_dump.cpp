#include "obs/crash_dump.h"

#include <csignal>
#include <ctime>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/contracts.h"
#include "common/lock_rank.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/sigsafe_format.h"

namespace s3::obs {
namespace {

using sigsafe::LineBuf;

// Fixed storage so the signal handler can read the directory without
// touching std::string. Written only from normal context.
char g_dump_dir[240] = ".";

// One real crash gets one dump: the fatal hook sets this, so the SIGABRT
// that std::abort raises right after does not write a second file.
std::atomic<bool> g_crash_dumped{false};

// Distinguishes dumps written in the same second by the same pid.
std::atomic<std::uint32_t> g_dump_counter{0};

const int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};

void write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

// Builds "<dir>/s3-crash-<pid>-<epoch_s>-<n>.txt" into `out` (cap bytes,
// always NUL-terminated). Signal-safe.
void build_dump_path(char* out, std::size_t cap) {
  LineBuf path;
  path.add_str(g_dump_dir);
  path.add_str("/s3-crash-");
  path.add_u64(static_cast<std::uint64_t>(::getpid()));
  path.add_char('-');
  path.add_u64(static_cast<std::uint64_t>(::time(nullptr)));
  path.add_char('-');
  path.add_u64(g_dump_counter.fetch_add(1, std::memory_order_relaxed));
  path.add_str(".txt");
  const std::size_t n = path.len < cap - 1 ? path.len : cap - 1;
  std::memcpy(out, path.data, n);
  out[n] = '\0';
}

void write_header(int fd, const char* reason) {
  LineBuf line;
  line.add_str("# s3-crash-dump v1\n");
  line.flush(fd);
  line.add_str("reason: ");
  // The reason is a formatted check/signal message: single line, bounded by
  // the LineBuf capacity (long check messages are truncated, never torn).
  for (const char* p = reason; p != nullptr && *p != '\0'; ++p) {
    line.add_char(*p == '\n' ? ' ' : *p);
  }
  line.add_char('\n');
  line.flush(fd);
  line.add_str("pid: ");
  line.add_u64(static_cast<std::uint64_t>(::getpid()));
  line.add_char('\n');
  line.add_str("walltime_s: ");
  line.add_u64(static_cast<std::uint64_t>(::time(nullptr)));
  line.add_char('\n');
  line.add_str("monotonic_ns: ");
  line.add_u64(now_ns());
  line.add_char('\n');
  line.flush(fd);
}

void write_held_locks(int fd) {
  LockRank held[64];
  const std::size_t total = lock_rank::held_ranks(held, 64);
  const std::size_t n = total < 64 ? total : 64;
  LineBuf line;
  line.add_str("== held-locks count=");
  line.add_u64(total);
  line.add_char('\n');
  line.flush(fd);
  for (std::size_t i = 0; i < n; ++i) {
    line.add_str("rank ");
    line.add_str(lock_rank_name(held[i]));
    line.add_char(' ');
    line.add_u64(static_cast<std::uint16_t>(held[i]));
    line.add_char('\n');
    line.flush(fd);
  }
}

// `signal_context` selects the async-signal-safe subset: the metrics
// section locks kObsMetrics and allocates, so it is written only from
// normal context — and even there only when the crashing thread does not
// already hold an observability-or-higher rank (taking the registry lock
// then would either invert the rank order, re-entering the fatal path
// mid-dump, or deadlock on the very lock the crash was raised under).
void write_dump_to_fd(int fd, const char* reason, bool signal_context) {
  write_header(fd, reason);
  write_held_locks(fd);
  FlightRecorder::instance().dump_to_fd(fd);
  bool metrics_safe = !signal_context;
  if (metrics_safe) {
    LockRank held[64];
    const std::size_t n = lock_rank::held_ranks(held, 64);
    for (std::size_t i = 0; i < n && i < 64; ++i) {
      if (held[i] >= LockRank::kObsMetrics) metrics_safe = false;
    }
  }
  LineBuf line;
  if (metrics_safe) {
    line.add_str("== metrics\n");
    line.flush(fd);
    const std::string text = Registry::instance().to_text();
    write_all(fd, text.data(), text.size());
  } else {
    line.add_str("== metrics skipped\n");
    line.flush(fd);
  }
  line.add_str("== end\n");
  line.flush(fd);
}

// Shared by the hook, the signal handler, and write_crash_dump. Returns the
// fd-written path length, 0 on failure. Signal-safe when signal_context.
std::size_t write_dump(char* path, std::size_t cap, const char* reason,
                       bool signal_context) {
  build_dump_path(path, cap);
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return 0;
  write_dump_to_fd(fd, reason, signal_context);
  ::close(fd);
  LineBuf notice;
  notice.add_str("s3: crash dump written to ");
  notice.add_str(path);
  notice.add_char('\n');
  notice.flush(STDERR_FILENO);
  return std::strlen(path);
}

void fatal_hook(const char* message) {
  // internal::fatal_abort guarantees single entry, but a fatal signal could
  // still land while this dump is being written; claiming the flag first
  // makes the signal handler skip its own dump.
  g_crash_dumped.store(true, std::memory_order_release);
  char path[320];
  write_dump(path, sizeof(path), message, /*signal_context=*/false);
}

void fatal_signal_handler(int sig) {
  if (!g_crash_dumped.exchange(true, std::memory_order_acq_rel)) {
    const char* name = "fatal signal";
    switch (sig) {
      case SIGSEGV:
        name = "fatal signal SIGSEGV";
        break;
      case SIGBUS:
        name = "fatal signal SIGBUS";
        break;
      case SIGILL:
        name = "fatal signal SIGILL";
        break;
      case SIGFPE:
        name = "fatal signal SIGFPE";
        break;
      case SIGABRT:
        name = "fatal signal SIGABRT";
        break;
      default:
        break;
    }
    char path[320];
    write_dump(path, sizeof(path), name, /*signal_context=*/true);
  }
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (exit status, core dumps, and gtest death-test
  // matchers are unaffected by the detour through this handler).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_crash_handler() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true, std::memory_order_acq_rel)) return;
  if (const char* env = std::getenv("S3_CRASH_DIR")) {
    if (env[0] != '\0') {
      std::strncpy(g_dump_dir, env, sizeof(g_dump_dir) - 1);
      g_dump_dir[sizeof(g_dump_dir) - 1] = '\0';
    }
  }
  internal::set_fatal_hook(&fatal_hook);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &fatal_signal_handler;
  sigemptyset(&action.sa_mask);
  for (const int sig : kFatalSignals) {
    struct sigaction previous;
    std::memset(&previous, 0, sizeof(previous));
    if (sigaction(sig, nullptr, &previous) == 0 &&
        previous.sa_handler != SIG_DFL) {
      // Another handler (a sanitizer's, typically) owns this signal; its
      // report matters more than a second copy of ours. The fatal hook
      // still covers every in-process abort path.
      continue;
    }
    sigaction(sig, &action, nullptr);
  }
}

void set_crash_dump_dir(const std::string& dir) {
  if (dir.empty()) return;
  std::strncpy(g_dump_dir, dir.c_str(), sizeof(g_dump_dir) - 1);
  g_dump_dir[sizeof(g_dump_dir) - 1] = '\0';
}

std::string write_crash_dump(const char* reason) {
  char path[320];
  if (write_dump(path, sizeof(path), reason, /*signal_context=*/false) == 0) {
    return {};
  }
  return std::string(path);
}

}  // namespace s3::obs
