// Prometheus text-exposition exporter over the metrics registry, plus the
// interval snapshot writer behind --snapshot-out= (the file tools/s3top
// polls for its live dashboard).
//
// Mapping (metric names are mangled "engine.map_task_ns" →
// "s3_engine_map_task_ns"; the golden test in tests/prometheus_test.cpp
// pins the exact output):
//  * Counter   → `# TYPE <n> counter` + one sample.
//  * Gauge     → `# TYPE <n> gauge` + one sample.
//  * Histogram → `# TYPE <n> summary` + quantile-labelled samples for
//    p50/p95/p99 and `<n>_count`. No `_sum` series: LogHistogram keeps
//    log2 buckets only, and a fabricated sum would be worse than none.
#pragma once

#include <memory>
#include <string>

#include "common/flags.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/registry.h"

namespace s3 {
class ThreadPool;
}

namespace s3::obs {

// "engine.map_task_ns" → "s3_engine_map_task_ns" (every character outside
// [a-zA-Z0-9_] becomes '_').
[[nodiscard]] std::string prometheus_metric_name(const std::string& name);

[[nodiscard]] std::string export_prometheus(const Registry& registry);

// Atomic publish: writes to <path>.tmp then renames over <path>, so a
// concurrent s3top poll always reads a complete exposition.
[[nodiscard]] Status write_prometheus_file(const Registry& registry,
                                           const std::string& path);

// Background interval writer: one pool thread rewriting `path` every
// `interval_ms` until stop()/destruction (which write one final snapshot).
// An empty path makes the exporter inert.
//
//   const s3::Flags flags = s3::Flags::parse(argc, argv);
//   s3::obs::SnapshotExporter exporter(flags);  // --snapshot-out=...
class SnapshotExporter {
 public:
  SnapshotExporter(std::string path, std::int64_t interval_ms);
  // Reads --snapshot-out and --snapshot-interval-ms (default 500).
  explicit SnapshotExporter(const Flags& flags)
      : SnapshotExporter(flags.get_string("snapshot-out"),
                         flags.get_int("snapshot-interval-ms", 500)) {}
  ~SnapshotExporter();

  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  [[nodiscard]] bool active() const { return pool_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }

  // Stops the interval loop, writes one final snapshot, joins. Idempotent;
  // called by the destructor.
  void stop();

 private:
  void run_loop();

  std::string path_;
  std::int64_t interval_ms_ = 500;
  mutable AnnotatedMutex mu_{LockRank::kObsSnapshot};
  std::condition_variable cv_;
  bool stop_ S3_GUARDED_BY(mu_) = false;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace s3::obs
